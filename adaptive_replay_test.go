package dynmis_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"dynmis"
	"dynmis/trace"
	"dynmis/trace/importer"
	"dynmis/workload"
)

// TestAdaptiveTraceReplayAcrossEngines closes the adaptive loop back
// into the oblivious world: an adaptive adversary's drive depends on
// the engine it watched, but the stream it *resolved to* is just a
// change sequence. Record one (warm-up + the changes DriveObserver saw)
// and it must pass the same two-tier cross-engine replay wall as any
// generated workload — byte-equal feeds on the π-equivalent engines,
// invariants on the competitors.
func TestAdaptiveTraceReplayAcrossEngines(t *testing.T) {
	for _, name := range []string{"adaptive-mis", "adaptive-hub", "adaptive-gk"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := workload.ScenarioByName(name)
			if !ok {
				t.Fatalf("scenario %s missing", name)
			}
			const seed, n, steps = 19, 80, 600
			rng := workload.Rand(seed)
			build := sc.Build(rng, n)
			rec := dynmis.MustNew(dynmis.WithSeed(seed), dynmis.WithEngine(dynmis.EngineTemplate))
			rec.Grow(n)
			if _, err := rec.Drive(context.Background(), slices.Values(build)); err != nil {
				t.Fatal(err)
			}
			src := sc.NewAdaptive(rng, workload.BuildGraph(build), rec.MIS(), steps)
			drive := make([]dynmis.Change, 0, steps)
			sum, err := rec.DriveInteractive(context.Background(), src,
				dynmis.DriveObserver(func(applied []dynmis.Change, _ dynmis.Report) {
					drive = append(drive, applied...)
				}))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Changes != steps || len(drive) != steps {
				t.Fatalf("resolved %d changes (observer saw %d), want %d", sum.Changes, len(drive), steps)
			}
			var file bytes.Buffer
			if err := trace.WriteAll(&file, slices.Values(slices.Concat(build, drive))); err != nil {
				t.Fatal(err)
			}
			replayTraceAcrossEngines(t, file.Bytes(), seed)
		})
	}
}

// TestImportedTraceReplayAcrossEngines holds the committed real-graph
// fixtures to the same wall: a SNAP-style edge list imported by
// trace/importer is a first-class trace, so it must drive all eight
// engines under the two-tier contract — including the temporal fixture
// through its sliding window, whose expiry deletions exercise the
// graceful-removal path.
func TestImportedTraceReplayAcrossEngines(t *testing.T) {
	cases := []struct {
		name string
		opts importer.Options
	}{
		{"karate.txt", importer.Options{}},
		{"florentine.txt", importer.Options{}},
		{"temporal-synthetic.txt", importer.Options{Window: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("trace", "importer", "testdata", tc.name))
			if err != nil {
				t.Fatal(err)
			}
			var imported bytes.Buffer
			if _, err := importer.Import(&imported, bytes.NewReader(raw), tc.opts); err != nil {
				t.Fatal(err)
			}
			replayTraceAcrossEngines(t, imported.Bytes(), 23)
		})
	}
}
