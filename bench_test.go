package dynmis

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/clustering"
	"dynmis/internal/coloring"
	"dynmis/internal/core"
	"dynmis/internal/direct"
	"dynmis/internal/expt"
	"dynmis/internal/graph"
	"dynmis/internal/luby"
	"dynmis/internal/matching"
	"dynmis/internal/order"
	"dynmis/internal/protocol"
	"dynmis/internal/seqdyn"
	"dynmis/workload"
)

// ---------------------------------------------------------------------
// Engine micro-benchmarks: cost of one topology change at steady state.
// The custom metrics (adjustments/op, broadcasts/op, rounds/op) are the
// paper's complexity measures; ns/op measures the simulator.
// ---------------------------------------------------------------------

// churnBench drives pre-generated edge churn through any engine.
func churnBench(b *testing.B, apply func(graph.Change) (core.Report, error), g *graph.Graph, seed uint64) {
	b.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	churn := workload.EdgeChurn(rng, g, 4096)
	var total core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := apply(churn[i%len(churn)])
		if err != nil {
			// Replay wraps around, so a change may be stale; skip it.
			continue
		}
		total.Add(rep)
	}
	n := float64(b.N)
	b.ReportMetric(float64(total.Adjustments)/n, "adjustments/op")
	b.ReportMetric(float64(total.SSize)/n, "Ssize/op")
	b.ReportMetric(float64(total.Rounds)/n, "rounds/op")
	b.ReportMetric(float64(total.Broadcasts)/n, "broadcasts/op")
}

func buildOn(b *testing.B, applyAll func([]graph.Change) (core.Report, error), n int, seed uint64) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewPCG(seed, 7))
	build := workload.GNP(rng, n, 8/float64(n))
	if _, err := applyAll(build); err != nil {
		b.Fatal(err)
	}
	return workload.BuildGraph(build)
}

func BenchmarkTemplateEdgeChange(b *testing.B) {
	eng := core.NewTemplate(1)
	g := buildOn(b, eng.ApplyAll, 500, 1)
	churnBench(b, eng.Apply, g, 1)
}

func BenchmarkDirectEdgeChange(b *testing.B) {
	eng := direct.New(2)
	g := buildOn(b, eng.ApplyAll, 500, 2)
	churnBench(b, eng.Apply, g, 2)
}

func BenchmarkProtocolEdgeChange(b *testing.B) {
	eng := protocol.New(3)
	g := buildOn(b, eng.ApplyAll, 500, 3)
	churnBench(b, eng.Apply, g, 3)
}

func BenchmarkAsyncDirectEdgeChange(b *testing.B) {
	eng := direct.NewAsync(4, nil)
	g := buildOn(b, eng.ApplyAll, 500, 4)
	churnBench(b, eng.Apply, g, 4)
}

func BenchmarkLubyRecomputePerChange(b *testing.B) {
	m := luby.NewMaintainer(5)
	g := buildOn(b, m.ApplyAll, 500, 5)
	churnBench(b, m.Apply, g, 5)
}

// BenchmarkProtocolNodeInsertDegree measures Lemma 10's O(d) broadcast
// cost directly.
func BenchmarkProtocolNodeInsertDegree32(b *testing.B) {
	eng := protocol.New(6)
	buildOn(b, eng.ApplyAll, 500, 6)
	rng := rand.New(rand.NewPCG(6, 6))
	next := graph.NodeID(100000)
	var bcasts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := eng.Graph().Nodes()
		perm := rng.Perm(len(nodes))
		nbrs := make([]graph.NodeID, 0, 32)
		for _, idx := range perm[:32] {
			nbrs = append(nbrs, nodes[idx])
		}
		rep, err := eng.Apply(graph.NodeChange(graph.NodeInsert, next, nbrs...))
		if err != nil {
			b.Fatal(err)
		}
		bcasts += rep.Broadcasts
		if _, err := eng.Apply(graph.NodeChange(graph.NodeDeleteGraceful, next)); err != nil {
			b.Fatal(err)
		}
		next++
	}
	b.ReportMetric(float64(bcasts)/float64(b.N), "broadcasts/op")
}

// BenchmarkGreedyOracle measures the static oracle (baseline for the
// dynamic engines' per-change costs).
func BenchmarkGreedyOracle(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	g := workload.BuildGraph(workload.GNP(rng, 1000, 0.008))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.GreedyMIS(g, order.New(uint64(i)))
	}
}

// ---------------------------------------------------------------------
// Experiment regeneration benchmarks: one per experiment table (E1-E14),
// each regenerating its table at quick scale. `go test -bench=E` times
// the entire reproduction pipeline.
// ---------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := expt.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(expt.Config{Seed: uint64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Adjustments(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2DirectRounds(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3AsyncDepth(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4ProtocolCosts(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5InsertionDegree(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6AbruptDeletion(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7LowerBound(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8StaticBaselines(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9Clustering(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Star(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11Matching(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Coloring(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13BroadcastBlowup(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14BitComplexity(b *testing.B)   { benchExperiment(b, "E14") }

func BenchmarkSeqdynEdgeChange(b *testing.B) {
	eng := seqdyn.New(7)
	g := buildOn(b, eng.ApplyAll, 2000, 7)
	rng := rand.New(rand.NewPCG(7, 99))
	churn := workload.EdgeChurn(rng, g, 4096)
	var work int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Apply(churn[i%len(churn)])
		if err != nil {
			continue
		}
		work += rep.Work
	}
	b.ReportMetric(float64(work)/float64(b.N), "work/op")
}

func BenchmarkMatchingEdgeChange(b *testing.B) {
	m := matching.New(8)
	g := buildOn(b, m.ApplyAll, 300, 8)
	churnBench(b, m.Apply, g, 8)
}

func BenchmarkClusteringEdgeChange(b *testing.B) {
	m := clustering.New(9)
	rng := rand.New(rand.NewPCG(9, 7))
	build := workload.GNP(rng, 300, 8/300.0)
	if _, err := m.ApplyAll(build); err != nil {
		b.Fatal(err)
	}
	g := workload.BuildGraph(build)
	churn := workload.EdgeChurn(rng, g, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Apply(churn[i%len(churn)]); err != nil {
			continue
		}
	}
}

func BenchmarkColoringEdgeChange(b *testing.B) {
	m, err := coloring.New(10, 16)
	if err != nil {
		b.Fatal(err)
	}
	// Bounded-degree build so the palette guard never trips.
	var nodes []graph.NodeID
	rng := rand.New(rand.NewPCG(10, 10))
	for v := graph.NodeID(0); v < 120; v++ {
		var nbrs []graph.NodeID
		for _, u := range nodes {
			if len(nbrs) >= 6 {
				break
			}
			if m.Graph().Degree(u) < 6 && rng.Float64() < 0.05 {
				nbrs = append(nbrs, u)
			}
		}
		if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...)); err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := m.Graph()
		es := g.Edges()
		if len(es) == 0 {
			b.Fatal("graph lost all edges")
		}
		e := es[i%len(es)]
		if _, err := m.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, e[0], e[1])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolParallelRounds(b *testing.B) {
	eng := protocol.New(11)
	eng.SetParallel(4)
	g := buildOn(b, eng.ApplyAll, 2000, 11)
	churnBench(b, eng.Apply, g, 11)
}

func BenchmarkTemplateBatch16(b *testing.B) {
	eng := core.NewTemplate(12)
	g := buildOn(b, eng.ApplyAll, 500, 12)
	rng := rand.New(rand.NewPCG(12, 99))
	churn := workload.EdgeChurn(rng, g, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 16) % (len(churn) - 16)
		if _, err := eng.ApplyBatch(churn[lo : lo+16]); err != nil {
			continue
		}
	}
}

func BenchmarkE15Batch(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkE16Seqdyn(b *testing.B) { benchExperiment(b, "E16") }

func BenchmarkE17History(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18Topologies(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19Adversary(b *testing.B)  { benchExperiment(b, "E19") }
