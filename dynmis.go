// Package dynmis is a Go implementation of "Optimal Dynamic Distributed
// MIS" (Censor-Hillel, Haramaty, Karnin; PODC 2016): maintenance of a
// maximal independent set over a fully dynamic graph — edge and node
// insertions and deletions, graceful and abrupt, plus muting/unmuting —
// with, in expectation, a single adjustment, O(1) rounds and O(1)
// broadcasts per topology change.
//
// The library exposes four engines implementing the same abstract
// algorithm (simulated sequential random greedy):
//
//   - EngineTemplate: the model-level cascade of the paper's Algorithm 1 —
//     fastest, no communication accounting.
//   - EngineDirect: the direct distributed implementation (Corollary 6)
//     over a synchronous broadcast network — 1 round in expectation, up to
//     |S|² broadcasts.
//   - EngineProtocol: Algorithm 2, the constant-broadcast implementation
//     with the M/M̄/C/R state machine — O(1) rounds and broadcasts.
//   - EngineAsyncDirect: the direct implementation over an asynchronous
//     event network with an adversarial scheduler — expected causal depth 1.
//   - EngineSharded: the sharded concurrent engine — the template cascade
//     executed by P worker goroutines over a partitioned vertex space,
//     built for sustained update throughput (see internal/shard and
//     docs/ARCHITECTURE.md).
//
// All engines are history independent (Definition 14): the distribution of
// the maintained MIS depends only on the current graph, never on the
// change history, and for a fixed seed the output equals the sequential
// greedy MIS under the same random order. Composed structures —
// correlation clustering (3-approximate in expectation), maximal matching,
// and (Δ+1)-coloring — inherit this property.
//
// # Quick start
//
//	m := dynmis.New(dynmis.WithSeed(42))
//	m.InsertNode(1)
//	m.InsertNode(2, 1)
//	rep, _ := m.RemoveNodeAbrupt(1)
//	fmt.Println(m.MIS(), rep.Adjustments)
package dynmis

import (
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/direct"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/protocol"
	"dynmis/internal/shard"
	"dynmis/internal/simnet"
)

// NodeID identifies a node; IDs are chosen by the caller.
type NodeID = graph.NodeID

// None is the "no node" sentinel.
const None = graph.None

// Change is a topology change; build them with the constructors below or
// the graph package helpers.
type Change = graph.Change

// ChangeKind enumerates the topology change types.
type ChangeKind = graph.ChangeKind

// Change kinds (see the paper's §2 for the graceful/abrupt and
// mute/unmute distinctions).
const (
	EdgeInsert         = graph.EdgeInsert
	EdgeDeleteGraceful = graph.EdgeDeleteGraceful
	EdgeDeleteAbrupt   = graph.EdgeDeleteAbrupt
	NodeInsert         = graph.NodeInsert
	NodeDeleteGraceful = graph.NodeDeleteGraceful
	NodeDeleteAbrupt   = graph.NodeDeleteAbrupt
	NodeMute           = graph.NodeMute
	NodeUnmute         = graph.NodeUnmute
)

// Report is the per-change cost account: adjustments, influence-set size,
// flips, rounds, broadcasts, bits and (async) causal depth.
type Report = core.Report

// Membership is a node's output (in or out of the MIS).
type Membership = core.Membership

// Membership values.
const (
	In  = core.In
	Out = core.Out
)

// Engine selects the maintenance implementation.
type Engine int

// Engine choices.
const (
	// EngineTemplate is the model-level cascade (Algorithm 1).
	EngineTemplate Engine = iota + 1
	// EngineDirect is the synchronous direct implementation (Cor. 6).
	EngineDirect
	// EngineProtocol is Algorithm 2, the O(1)-broadcast protocol.
	EngineProtocol
	// EngineAsyncDirect is the asynchronous direct implementation.
	EngineAsyncDirect
	// EngineSharded is the sharded concurrent engine: windows of updates
	// are staged serially and recovered by a parallel cascade across P
	// vertex shards. Same structure as every other engine for equal
	// seeds, highest sustained update throughput.
	EngineSharded
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineTemplate:
		return "template"
	case EngineDirect:
		return "direct"
	case EngineProtocol:
		return "protocol"
	case EngineAsyncDirect:
		return "async-direct"
	case EngineSharded:
		return "sharded"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// engineImpl is the common surface of all four engines.
type engineImpl interface {
	Apply(graph.Change) (core.Report, error)
	ApplyAll([]graph.Change) (core.Report, error)
	Graph() *graph.Graph
	Order() *order.Order
	InMIS(graph.NodeID) bool
	MIS() []graph.NodeID
	State() map[graph.NodeID]core.Membership
	Check() error
}

// Interface compliance for every engine.
var (
	_ engineImpl = (*core.Template)(nil)
	_ engineImpl = (*direct.Engine)(nil)
	_ engineImpl = (*protocol.Engine)(nil)
	_ engineImpl = (*direct.AsyncEngine)(nil)
	_ engineImpl = (*shard.Engine)(nil)
)

type config struct {
	seed     uint64
	engine   Engine
	sched    simnet.Scheduler
	parallel int
	shards   int
	window   int
}

// Option configures New.
type Option func(*config)

// WithSeed fixes the random seed (default 1). Engines with equal seeds and
// equal change sequences produce identical structures.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithEngine selects the implementation (default EngineProtocol).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithLIFOScheduler makes the asynchronous engine deliver newest-first
// (an adversarial reordering); default is FIFO.
func WithLIFOScheduler() Option {
	return func(c *config) { c.sched = simnet.LIFOScheduler{} }
}

// WithParallel runs synchronous protocol rounds on the given number of
// goroutines (EngineProtocol only); results are bit-identical to
// sequential execution.
func WithParallel(workers int) Option { return func(c *config) { c.parallel = workers } }

// WithShards sets the shard count P of EngineSharded (default GOMAXPROCS).
// The maintained structure is identical for every P; only throughput and
// the cross-shard hand-off account change.
func WithShards(p int) Option { return func(c *config) { c.shards = p } }

// WithWindow sets how many changes EngineSharded's ApplyAll groups into
// one parallel recovery window (default shard.DefaultWindow). Larger
// windows amortize worker startup over more updates.
func WithWindow(n int) Option { return func(c *config) { c.window = n } }

// Maintainer maintains an MIS over a fully dynamic graph.
type Maintainer struct {
	impl   engineImpl
	engine Engine
}

// New returns a Maintainer over the empty graph.
func New(opts ...Option) *Maintainer {
	cfg := config{seed: 1, engine: EngineProtocol}
	for _, o := range opts {
		o(&cfg)
	}
	var impl engineImpl
	switch cfg.engine {
	case EngineTemplate:
		impl = core.NewTemplate(cfg.seed)
	case EngineDirect:
		impl = direct.New(cfg.seed)
	case EngineAsyncDirect:
		impl = direct.NewAsync(cfg.seed, cfg.sched)
	case EngineSharded:
		e := shard.New(cfg.seed, cfg.shards)
		if cfg.window > 0 {
			e.SetWindow(cfg.window)
		}
		impl = e
	default:
		e := protocol.New(cfg.seed)
		if cfg.parallel > 1 {
			e.SetParallel(cfg.parallel)
		}
		impl = e
	}
	return &Maintainer{impl: impl, engine: cfg.engine}
}

// Engine reports which implementation backs this maintainer.
func (m *Maintainer) Engine() Engine { return m.engine }

// Apply performs one topology change and returns its cost report.
func (m *Maintainer) Apply(c Change) (Report, error) { return m.impl.Apply(c) }

// ApplyAll applies a change sequence, accumulating reports; it stops at
// the first error.
func (m *Maintainer) ApplyAll(cs []Change) (Report, error) { return m.impl.ApplyAll(cs) }

// ApplyBatch applies several changes and recovers once (the §6 "multiple
// failures at a time" extension). On EngineTemplate the recovery cascade
// runs a single time over the combined damage; on EngineSharded it runs
// as one parallel window; on EngineAsyncDirect all changes are staged
// before the network drains once. The remaining engines fall back to
// sequential application, which reaches the same final structure by
// history independence.
func (m *Maintainer) ApplyBatch(cs []Change) (Report, error) {
	switch impl := m.impl.(type) {
	case *core.Template:
		return impl.ApplyBatch(cs)
	case *shard.Engine:
		return impl.ApplyBatch(cs)
	case *direct.AsyncEngine:
		return impl.ApplyBatch(cs)
	default:
		return m.impl.ApplyAll(cs)
	}
}

// InsertNode adds a node with edges to the listed existing neighbors.
func (m *Maintainer) InsertNode(v NodeID, nbrs ...NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...))
}

// RemoveNode deletes a node gracefully (it relays until the structure is
// stable).
func (m *Maintainer) RemoveNode(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeDeleteGraceful, v))
}

// RemoveNodeAbrupt deletes a node abruptly (neighbors merely detect it).
func (m *Maintainer) RemoveNodeAbrupt(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, v))
}

// InsertEdge adds the edge {u,v}.
func (m *Maintainer) InsertEdge(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeInsert, u, v))
}

// RemoveEdge deletes the edge {u,v} gracefully.
func (m *Maintainer) RemoveEdge(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, u, v))
}

// RemoveEdgeAbrupt deletes the edge {u,v} abruptly.
func (m *Maintainer) RemoveEdgeAbrupt(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeDeleteAbrupt, u, v))
}

// Mute hides a node from its neighbors while it keeps listening
// (EngineTemplate, EngineDirect and EngineProtocol).
func (m *Maintainer) Mute(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeMute, v))
}

// Unmute re-activates a muted node with the given (previously known)
// neighbors; it costs O(1) broadcasts because the node kept listening.
func (m *Maintainer) Unmute(v NodeID, nbrs ...NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeUnmute, v, nbrs...))
}

// InMIS reports whether v is currently in the MIS.
func (m *Maintainer) InMIS(v NodeID) bool { return m.impl.InMIS(v) }

// MIS returns the sorted current MIS.
func (m *Maintainer) MIS() []NodeID { return m.impl.MIS() }

// State returns the full membership map.
func (m *Maintainer) State() map[NodeID]Membership { return m.impl.State() }

// Nodes returns the sorted visible node set.
func (m *Maintainer) Nodes() []NodeID { return m.impl.Graph().Nodes() }

// HasNode reports whether v is visible.
func (m *Maintainer) HasNode(v NodeID) bool { return m.impl.Graph().HasNode(v) }

// HasEdge reports whether the edge {u,v} is visible.
func (m *Maintainer) HasEdge(u, v NodeID) bool { return m.impl.Graph().HasEdge(u, v) }

// NodeCount and EdgeCount report the visible topology size.
func (m *Maintainer) NodeCount() int { return m.impl.Graph().NodeCount() }

// EdgeCount reports the visible edge count.
func (m *Maintainer) EdgeCount() int { return m.impl.Graph().EdgeCount() }

// Clusters returns the maintained correlation clustering (node → cluster
// head), derived from the MIS by the random-greedy pivot rule; in
// expectation its cost is within 3× of optimal.
func (m *Maintainer) Clusters() map[NodeID]NodeID {
	return core.GreedyClusters(m.impl.Graph(), m.impl.Order(), m.impl.State())
}

// Check verifies the maintained structure's invariants (for tests and
// debugging; it is never needed in normal operation).
func (m *Maintainer) Check() error { return m.impl.Check() }

// Snapshot is a serializable image of the maintained structure (graph,
// priorities, memberships); see Maintainer.Snapshot and Restore.
type Snapshot = core.Snapshot

// Snapshot captures the current state for persistence. It is supported by
// EngineTemplate; the message-passing engines carry per-node network
// knowledge that is not meaningfully persistable.
func (m *Maintainer) Snapshot() (*Snapshot, error) {
	tpl, ok := m.impl.(*core.Template)
	if !ok {
		return nil, fmt.Errorf("dynmis: Snapshot requires EngineTemplate, have %v", m.engine)
	}
	return tpl.Snapshot(), nil
}

// Restore rebuilds a template-backed Maintainer from a snapshot; fresh
// nodes inserted afterwards draw priorities from a stream seeded by seed.
// Tampered snapshots (violating the MIS invariant) are rejected.
func Restore(s *Snapshot, seed uint64) (*Maintainer, error) {
	tpl, err := core.RestoreTemplate(s, seed)
	if err != nil {
		return nil, err
	}
	return &Maintainer{impl: tpl, engine: EngineTemplate}, nil
}

// Verify additionally asserts history independence: the current structure
// must equal the sequential greedy MIS on the current graph under the
// maintainer's random order.
func (m *Maintainer) Verify() error {
	if err := m.impl.Check(); err != nil {
		return err
	}
	want := core.GreedyMIS(m.impl.Graph().Clone(), m.impl.Order())
	if !core.EqualStates(m.impl.State(), want) {
		return fmt.Errorf("dynmis: state diverged from the greedy oracle")
	}
	return nil
}
