// Package dynmis is a Go implementation of "Optimal Dynamic Distributed
// MIS" (Censor-Hillel, Haramaty, Karnin; PODC 2016): maintenance of a
// maximal independent set over a fully dynamic graph — edge and node
// insertions and deletions, graceful and abrupt, plus muting/unmuting —
// with, in expectation, a single adjustment, O(1) rounds and O(1)
// broadcasts per topology change.
//
// The library exposes eight engines behind one uniform surface. Six of
// them implement the paper's abstract algorithm (simulated sequential
// random greedy):
//
//   - EngineTemplate: the model-level cascade of the paper's Algorithm 1 —
//     fastest, no communication accounting.
//   - EngineDirect: the direct distributed implementation (Corollary 6)
//     over a synchronous broadcast network — 1 round in expectation, up to
//     |S|² broadcasts.
//   - EngineProtocol: Algorithm 2, the constant-broadcast implementation
//     with the M/M̄/C/R state machine — O(1) rounds and broadcasts.
//   - EngineAsyncDirect: the direct implementation over an asynchronous
//     event network with an adversarial scheduler — expected causal depth 1.
//   - EngineSharded: the sharded concurrent engine — the template cascade
//     executed by P worker goroutines over a partitioned vertex space,
//     built for sustained update throughput (see internal/shard and
//     docs/ARCHITECTURE.md).
//   - EngineSequential: the paper's §6 single-machine data structure —
//     the same greedy-under-π structure maintained with a π-ordered dirty
//     queue at O(Δ) expected update time (internal/seqdyn).
//
// The remaining two are competitor dynamic-MIS algorithms from the
// follow-up literature, implemented behind the same surface so the suite
// can benchmark the paper head to head (see Engine.Independent):
//
//   - EngineGuptaKhan: the deterministic blocker-count algorithm of
//     Gupta–Khan (arXiv:1804.01823) — O(Δ) amortized adjustments per
//     update, no random order (internal/guptakhan).
//   - EngineAOSS: the degree-bucketed algorithm in the style of
//     Assadi–Onak–Schieber–Solomon (arXiv:1806.10051) — prefers
//     low-degree vertices when repairing the MIS (internal/aoss).
//
// Every engine implements one uniform surface (Apply, ApplyAll,
// ApplyBatch, queries, Subscribe); optional abilities such as persistence
// are expressed as capability interfaces (Snapshotter) rather than by
// engine identity, so new backends are drop-ins. Because the paper's
// guarantee is a single adjustment per change in expectation, consumers
// should not re-poll MIS after every update: Subscribe delivers the
// (usually single) membership change as a typed Event instead.
//
// Bulk updates enter an engine as a stream: a Source is any iterator of
// changes (a dynmis/workload generator, a recorded dynmis/trace, a slice
// via slices.Values), and Maintainer.Drive ingests it —
// context-cancellable, optionally windowed through ApplyBatch — returning
// an aggregate Summary of the paper's cost measures. See Drive and the
// "Streaming ingestion & traces" section of the README.
//
// The paper's quantitative claims are measurable, not just asserted:
// WithInstrumentation attaches cheap complexity counters
// (dynmis/metrics) that every engine accounts its adjustments, cascade
// lengths, rounds, broadcasts and message traffic into — read them with
// Maintainer.Metrics or per drive via Summary.Metrics. The validation
// harness (cmd/validate, `make validate`) tabulates the measured
// amortized costs against the paper's O(1) bounds in docs/VALIDATION.md.
//
// The paper's engines are history independent (Definition 14): the
// distribution of the maintained MIS depends only on the current graph,
// never on the change history, and for a fixed seed the output equals the
// sequential greedy MIS under the same random order. Composed structures —
// correlation clustering (3-approximate in expectation), maximal matching,
// and (Δ+1)-coloring — inherit this property. The competitor engines
// (Engine.Independent reports true) maintain a valid MIS that may depend
// on history; they are verified against a per-engine reference model and
// the same greedy-certificate oracle instead (see Verify).
//
// # Quick start
//
//	m := dynmis.MustNew(dynmis.WithSeed(42))
//	m.Subscribe(func(ev dynmis.Event) { fmt.Println(ev) })
//	m.InsertNode(1)
//	m.InsertNode(2, 1)
//	rep, _ := m.RemoveNodeAbrupt(1)
//	fmt.Println(m.MIS(), rep.Adjustments)
package dynmis

import (
	"fmt"
	"strings"

	"dynmis/internal/aoss"
	"dynmis/internal/core"
	"dynmis/internal/direct"
	"dynmis/internal/graph"
	"dynmis/internal/guptakhan"
	"dynmis/internal/protocol"
	"dynmis/internal/seqdyn"
	"dynmis/internal/shard"
	"dynmis/internal/simnet"
	"dynmis/metrics"
)

// NodeID identifies a node; IDs are chosen by the caller.
type NodeID = graph.NodeID

// None is the "no node" sentinel.
const None = graph.None

// Change is a topology change; build them with the constructors below or
// the graph package helpers.
type Change = graph.Change

// ChangeKind enumerates the topology change types.
type ChangeKind = graph.ChangeKind

// Change kinds (see the paper's §2 for the graceful/abrupt and
// mute/unmute distinctions).
const (
	EdgeInsert         = graph.EdgeInsert
	EdgeDeleteGraceful = graph.EdgeDeleteGraceful
	EdgeDeleteAbrupt   = graph.EdgeDeleteAbrupt
	NodeInsert         = graph.NodeInsert
	NodeDeleteGraceful = graph.NodeDeleteGraceful
	NodeDeleteAbrupt   = graph.NodeDeleteAbrupt
	NodeMute           = graph.NodeMute
	NodeUnmute         = graph.NodeUnmute
)

// Report is the per-change cost account: adjustments, influence-set size,
// flips, rounds, broadcasts, bits and (async) causal depth.
type Report = core.Report

// Membership is a node's output (in or out of the MIS).
type Membership = core.Membership

// Membership values.
const (
	In  = core.In
	Out = core.Out
)

// Event is one record of the membership change feed; see
// Maintainer.Subscribe.
type Event = core.Event

// EventCause classifies a membership event.
type EventCause = core.EventCause

// Event causes: a node joining the visible topology, leaving it, or
// flipping its membership while staying present.
const (
	CauseJoin  = core.CauseJoin
	CauseLeave = core.CauseLeave
	CauseFlip  = core.CauseFlip
)

// ReplayEvents folds an event stream into the membership configuration it
// describes; replaying everything a maintainer has published reproduces
// its State() exactly.
func ReplayEvents(evs []Event) map[NodeID]Membership { return core.Replay(evs) }

// Engine selects the maintenance implementation.
type Engine int

// Engine choices.
const (
	// EngineTemplate is the model-level cascade (Algorithm 1).
	EngineTemplate Engine = iota + 1
	// EngineDirect is the synchronous direct implementation (Cor. 6).
	EngineDirect
	// EngineProtocol is Algorithm 2, the O(1)-broadcast protocol.
	EngineProtocol
	// EngineAsyncDirect is the asynchronous direct implementation.
	EngineAsyncDirect
	// EngineSharded is the sharded concurrent engine: windows of updates
	// are staged serially and recovered by a parallel cascade across P
	// vertex shards. Same structure as every other engine for equal
	// seeds, highest sustained update throughput.
	EngineSharded
	// EngineSequential is the §6 single-machine data structure: the same
	// greedy-under-π structure, maintained with a π-ordered dirty queue
	// at O(Δ) expected update time. π-equivalent to the engines above.
	EngineSequential
	// EngineGuptaKhan is the deterministic competitor of Gupta–Khan
	// (arXiv:1804.01823): blocker counts without a random order, O(Δ)
	// amortized adjustments. Maintains its own valid MIS (Independent).
	EngineGuptaKhan
	// EngineAOSS is the degree-bucketed competitor in the style of
	// Assadi–Onak–Schieber–Solomon (arXiv:1806.10051): repairs prefer
	// low-degree vertices. Maintains its own valid MIS (Independent).
	EngineAOSS
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineTemplate:
		return "template"
	case EngineDirect:
		return "direct"
	case EngineProtocol:
		return "protocol"
	case EngineAsyncDirect:
		return "async-direct"
	case EngineSharded:
		return "sharded"
	case EngineSequential:
		return "sequential"
	case EngineGuptaKhan:
		return "gupta-khan"
	case EngineAOSS:
		return "aoss"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Independent reports whether the engine maintains an MIS of its own
// (competitor algorithms: Gupta–Khan, AOSS) rather than the paper's
// greedy-under-π structure. Independent engines still satisfy every
// maximal-independent-set invariant and the greedy-certificate oracle
// (Verify), but their MIS may differ from the π-equivalent engines' and
// may depend on the change history, so byte-equality checks across
// engines must exclude them.
func (e Engine) Independent() bool {
	return e == EngineGuptaKhan || e == EngineAOSS
}

// Engines lists every selectable engine in declaration order.
func Engines() []Engine {
	return []Engine{
		EngineTemplate, EngineDirect, EngineProtocol, EngineAsyncDirect,
		EngineSharded, EngineSequential, EngineGuptaKhan, EngineAOSS,
	}
}

// EngineByName resolves an engine from its String name (the spelling the
// command-line tools accept). A few aliases are recognized: "async" for
// async-direct, "seqdyn" for sequential, "guptakhan" for gupta-khan.
func EngineByName(name string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "template":
		return EngineTemplate, nil
	case "direct":
		return EngineDirect, nil
	case "protocol":
		return EngineProtocol, nil
	case "async-direct", "async":
		return EngineAsyncDirect, nil
	case "sharded":
		return EngineSharded, nil
	case "sequential", "seqdyn":
		return EngineSequential, nil
	case "gupta-khan", "guptakhan":
		return EngineGuptaKhan, nil
	case "aoss":
		return EngineAOSS, nil
	default:
		names := make([]string, 0, len(Engines()))
		for _, e := range Engines() {
			names = append(names, e.String())
		}
		return 0, fmt.Errorf("%w: unknown engine %q (valid: %s)",
			ErrInvalidOption, name, strings.Join(names, ", "))
	}
}

// Interface compliance: every engine implements the uniform surface of
// core.Engine, and the persistable ones additionally core.Snapshotter.
var (
	_ core.Engine = (*core.Template)(nil)
	_ core.Engine = (*direct.Engine)(nil)
	_ core.Engine = (*protocol.Engine)(nil)
	_ core.Engine = (*direct.AsyncEngine)(nil)
	_ core.Engine = (*shard.Engine)(nil)
	_ core.Engine = (*seqdyn.Engine)(nil)
	_ core.Engine = (*guptakhan.Engine)(nil)
	_ core.Engine = (*aoss.Engine)(nil)

	_ core.Snapshotter = (*core.Template)(nil)
	_ core.Snapshotter = (*shard.Engine)(nil)

	_ core.Instrument = (*core.Template)(nil)
	_ core.Instrument = (*direct.Engine)(nil)
	_ core.Instrument = (*protocol.Engine)(nil)
	_ core.Instrument = (*direct.AsyncEngine)(nil)
	_ core.Instrument = (*shard.Engine)(nil)
	_ core.Instrument = (*seqdyn.Engine)(nil)
	_ core.Instrument = (*guptakhan.Engine)(nil)
	_ core.Instrument = (*aoss.Engine)(nil)

	_ core.MemoryReporter = (*core.Template)(nil)
	_ core.MemoryReporter = (*shard.Engine)(nil)
	_ core.MemoryReporter = (*seqdyn.Engine)(nil)
	_ core.MemoryReporter = (*guptakhan.Engine)(nil)
	_ core.MemoryReporter = (*aoss.Engine)(nil)
)

type config struct {
	seed        uint64
	engine      Engine
	sched       simnet.Scheduler
	parallel    int
	parallelSet bool
	shards      int
	shardsSet   bool
	window      int
	windowSet   bool
	instrument  bool
}

// Option configures New, Restore and the derived-structure constructors.
type Option func(*config)

// WithSeed fixes the random seed (default 1). Engines with equal seeds and
// equal change sequences produce identical structures.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithEngine selects the implementation (default EngineProtocol for New,
// EngineTemplate for Restore and the derived structures).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithLIFOScheduler makes the asynchronous engine deliver newest-first
// (an adversarial reordering); default is FIFO.
func WithLIFOScheduler() Option {
	return func(c *config) { c.sched = simnet.LIFOScheduler{} }
}

// WithParallel runs synchronous protocol rounds on the given number of
// goroutines (EngineProtocol only; selecting it with any other engine is
// an ErrInvalidOption); results are bit-identical to sequential execution.
func WithParallel(workers int) Option {
	return func(c *config) { c.parallel = workers; c.parallelSet = true }
}

// WithShards sets the shard count P of EngineSharded (0 selects
// GOMAXPROCS; negative values, or selecting it with any other engine, are
// an ErrInvalidOption). The maintained structure is identical for every
// P; only throughput and the cross-shard hand-off account change.
func WithShards(p int) Option {
	return func(c *config) { c.shards = p; c.shardsSet = true }
}

// WithWindow sets how many changes EngineSharded's ApplyAll groups into
// one parallel recovery window (0 selects shard.DefaultWindow; negative
// values, or selecting it with any other engine, are an
// ErrInvalidOption). Larger windows amortize worker startup over more
// updates. Window boundaries are also the granularity of the change
// feed: each window publishes one net membership delta.
func WithWindow(n int) Option {
	return func(c *config) { c.window = n; c.windowSet = true }
}

// WithInstrumentation attaches a complexity-instrumentation collector
// (dynmis/metrics) to the engine: every successful update accounts the
// paper's cost measures — adjustments, influence-set size, cascade
// steps, touched slots, rounds, broadcasts, message traffic — into
// cumulative counters read with Maintainer.Metrics, and Drive reports
// each drive's delta as Summary.Metrics. All engines support it.
//
// Without this option instrumentation is disabled and costs nothing:
// the accounting paths are guarded by a single nil check and the
// cascade hot loops are untouched (pinned by an allocation test).
func WithInstrumentation() Option {
	return func(c *config) { c.instrument = true }
}

// validate rejects option combinations no engine can honor.
func (c *config) validate() error {
	switch c.engine {
	case EngineTemplate, EngineDirect, EngineProtocol, EngineAsyncDirect, EngineSharded,
		EngineSequential, EngineGuptaKhan, EngineAOSS:
	default:
		return fmt.Errorf("%w: unknown engine %v", ErrInvalidOption, c.engine)
	}
	if c.shards < 0 {
		return fmt.Errorf("%w: WithShards(%d): shard count must be non-negative (0 selects GOMAXPROCS)", ErrInvalidOption, c.shards)
	}
	if c.window < 0 {
		return fmt.Errorf("%w: WithWindow(%d): window must be non-negative (0 selects the default)", ErrInvalidOption, c.window)
	}
	if c.shardsSet && c.engine != EngineSharded {
		return fmt.Errorf("%w: WithShards requires EngineSharded, have %v", ErrInvalidOption, c.engine)
	}
	if c.windowSet && c.engine != EngineSharded {
		return fmt.Errorf("%w: WithWindow requires EngineSharded, have %v", ErrInvalidOption, c.engine)
	}
	if c.parallelSet && c.engine != EngineProtocol {
		return fmt.Errorf("%w: WithParallel requires EngineProtocol, have %v", ErrInvalidOption, c.engine)
	}
	return nil
}

// build constructs the configured engine. The config must have been
// validated.
func (c *config) build() core.Engine {
	switch c.engine {
	case EngineTemplate:
		return core.NewTemplate(c.seed)
	case EngineDirect:
		return direct.New(c.seed)
	case EngineAsyncDirect:
		return direct.NewAsync(c.seed, c.sched)
	case EngineSharded:
		e := shard.New(c.seed, c.shards)
		if c.window > 0 {
			e.SetWindow(c.window)
		}
		return e
	case EngineSequential:
		return seqdyn.New(c.seed)
	case EngineGuptaKhan:
		return guptakhan.New(c.seed)
	case EngineAOSS:
		return aoss.New(c.seed)
	default:
		e := protocol.New(c.seed)
		if c.parallel > 1 {
			e.SetParallel(c.parallel)
		}
		return e
	}
}

// resolve applies opts over a default configuration and validates the
// result; it is the single option path shared by New, Restore and the
// derived-structure constructors.
func resolve(defaultEngine Engine, opts []Option) (config, error) {
	cfg := config{seed: 1, engine: defaultEngine}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// Maintainer maintains an MIS over a fully dynamic graph.
type Maintainer struct {
	impl   core.Engine
	engine Engine
	coll   *metrics.Collector // nil unless WithInstrumentation
	tap    *eventTap          // lazily registered by DriveInteractive
}

// eventTap is the internal feed subscriber behind DriveInteractive: the
// engine's Feed has no unsubscribe, so the maintainer registers one tap
// forever on first use and toggles it around each interactive apply. It
// costs one bool check per event while inactive.
type eventTap struct {
	active bool
	buf    []Event
}

// feedTap returns the maintainer's event tap, registering it on the
// change feed on first call.
func (m *Maintainer) feedTap() *eventTap {
	if m.tap == nil {
		tap := &eventTap{}
		m.impl.Subscribe(func(ev Event) {
			if tap.active {
				tap.buf = append(tap.buf, ev)
			}
		})
		m.tap = tap
	}
	return m.tap
}

// newMaintainer wraps a built engine, attaching an instrumentation
// collector when the configuration asked for one. It is the single
// construction path shared by New and Restore.
func newMaintainer(impl core.Engine, cfg config) *Maintainer {
	m := &Maintainer{impl: impl, engine: cfg.engine}
	if cfg.instrument {
		if ins, ok := impl.(core.Instrument); ok {
			m.coll = metrics.NewCollector()
			ins.Instrument(m.coll)
		}
	}
	return m
}

// New returns a Maintainer over the empty graph, or an ErrInvalidOption
// error for option values no engine can honor.
func New(opts ...Option) (*Maintainer, error) {
	cfg, err := resolve(EngineProtocol, opts)
	if err != nil {
		return nil, err
	}
	return newMaintainer(cfg.build(), cfg), nil
}

// MustNew is New for static option sets; it panics on invalid options.
func MustNew(opts ...Option) *Maintainer {
	m, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// Engine reports which implementation backs this maintainer.
func (m *Maintainer) Engine() Engine { return m.engine }

// Subscribe registers fn on the membership change feed. After every
// Apply, ApplyBatch or ApplyAll window the engine publishes the net
// membership delta between the stable configuration before the update and
// the one after it, as Events in ascending node order with a
// monotonically increasing Seq. Callbacks run synchronously on the
// goroutine that applied the change, after recovery has settled, so they
// always observe the maintainer in a consistent state.
//
// Among the π-equivalent engines the feed is engine-independent: for
// equal seeds, equal change sequences and equal update granularity — the
// same Apply calls, or ApplyBatch calls with the same batch boundaries —
// every such engine publishes the identical event stream (history
// independence fixes the stable configurations; the feed reports nothing
// else). The competitor engines (Engine.Independent) publish the same
// kind of net-delta stream over their own MIS, with the same
// replay-to-State guarantee, but its contents are engine-specific.
// Granularity
// matters because events are net deltas: a node that flips and flips
// back within one batch window produces no event, so EngineSharded's
// ApplyAll, which groups changes into WithWindow-sized windows, publishes
// per window where the other engines' ApplyAll publishes per change.
// Replaying all events reproduces State() exactly regardless of
// granularity; see ReplayEvents.
func (m *Maintainer) Subscribe(fn func(Event)) { m.impl.Subscribe(fn) }

// Apply performs one topology change and returns its cost report.
func (m *Maintainer) Apply(c Change) (Report, error) { return m.impl.Apply(c) }

// ApplyAll applies a change sequence, accumulating reports; it stops at
// the first error.
func (m *Maintainer) ApplyAll(cs []Change) (Report, error) { return m.impl.ApplyAll(cs) }

// ApplyBatch applies several changes and recovers once (the §6 "multiple
// failures at a time" extension). Every engine exposes the batch surface:
// EngineTemplate runs a single cascade over the combined damage,
// EngineSharded one parallel window, EngineAsyncDirect stages all changes
// before the network drains once, and the synchronous message-passing
// engines realize the batch sequentially — reaching the same final
// structure by history independence. The competitor engines stage the
// whole batch and settle once; because they are history dependent, the
// batched result is a valid MIS that may differ from applying the same
// changes one at a time.
func (m *Maintainer) ApplyBatch(cs []Change) (Report, error) { return m.impl.ApplyBatch(cs) }

// InsertNode adds a node with edges to the listed existing neighbors.
func (m *Maintainer) InsertNode(v NodeID, nbrs ...NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...))
}

// RemoveNode deletes a node gracefully (it relays until the structure is
// stable).
func (m *Maintainer) RemoveNode(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeDeleteGraceful, v))
}

// RemoveNodeAbrupt deletes a node abruptly (neighbors merely detect it).
func (m *Maintainer) RemoveNodeAbrupt(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, v))
}

// InsertEdge adds the edge {u,v}.
func (m *Maintainer) InsertEdge(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeInsert, u, v))
}

// RemoveEdge deletes the edge {u,v} gracefully.
func (m *Maintainer) RemoveEdge(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, u, v))
}

// RemoveEdgeAbrupt deletes the edge {u,v} abruptly.
func (m *Maintainer) RemoveEdgeAbrupt(u, v NodeID) (Report, error) {
	return m.impl.Apply(graph.EdgeChange(graph.EdgeDeleteAbrupt, u, v))
}

// Mute hides a node from its neighbors while it keeps listening. Every
// engine supports it except EngineAsyncDirect, which does not model
// muting (it is a synchronous-round notion) and returns an error matching
// ErrMutedUnsupported.
func (m *Maintainer) Mute(v NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeMute, v))
}

// Unmute re-activates a muted node with the given (previously known)
// neighbors; it costs O(1) broadcasts because the node kept listening.
// Engine support matches Mute.
func (m *Maintainer) Unmute(v NodeID, nbrs ...NodeID) (Report, error) {
	return m.impl.Apply(graph.NodeChange(graph.NodeUnmute, v, nbrs...))
}

// Grow hints the expected number of additional nodes, preallocating the
// storage arena (slots, adjacency, priority and membership lanes, and the
// node index table) so a known-size warm-up phase neither reallocates nor
// incrementally rehashes. It never changes observable state and is safe to
// skip or overshoot.
func (m *Maintainer) Grow(n int) { m.impl.Graph().Grow(n) }

// InMIS reports whether v is currently in the MIS.
func (m *Maintainer) InMIS(v NodeID) bool { return m.impl.InMIS(v) }

// MIS returns the sorted current MIS.
func (m *Maintainer) MIS() []NodeID { return m.impl.MIS() }

// State returns the full membership map.
func (m *Maintainer) State() map[NodeID]Membership { return m.impl.State() }

// Nodes returns the sorted visible node set.
func (m *Maintainer) Nodes() []NodeID { return m.impl.Graph().Nodes() }

// HasNode reports whether v is visible.
func (m *Maintainer) HasNode(v NodeID) bool { return m.impl.Graph().HasNode(v) }

// HasEdge reports whether the edge {u,v} is visible.
func (m *Maintainer) HasEdge(u, v NodeID) bool { return m.impl.Graph().HasEdge(u, v) }

// NodeCount and EdgeCount report the visible topology size.
func (m *Maintainer) NodeCount() int { return m.impl.Graph().NodeCount() }

// EdgeCount reports the visible edge count.
func (m *Maintainer) EdgeCount() int { return m.impl.Graph().EdgeCount() }

// Clusters returns the maintained correlation clustering (node → cluster
// head), derived from the MIS by the random-greedy pivot rule; in
// expectation its cost is within 3× of optimal.
func (m *Maintainer) Clusters() map[NodeID]NodeID {
	return core.GreedyClusters(m.impl.Graph(), m.impl.Order(), m.impl.State())
}

// Check verifies the maintained structure's invariants (for tests and
// debugging; it is never needed in normal operation).
func (m *Maintainer) Check() error { return m.impl.Check() }

// Metrics returns a snapshot of the cumulative complexity counters and
// whether instrumentation is enabled. The counters cover every
// successful update since construction (or the last ResetMetrics):
// amortized adjustments, cascade steps, touched slots, rounds,
// broadcasts and message traffic — the measured forms of the paper's
// O(1) bounds, tabulated against them by cmd/validate. Without
// WithInstrumentation the snapshot is zero and the second result is
// false.
func (m *Maintainer) Metrics() (metrics.Counters, bool) {
	if m.coll == nil {
		return metrics.Counters{}, false
	}
	return m.coll.Snapshot(), true
}

// ResetMetrics zeroes the instrumentation counters; it is a no-op
// without WithInstrumentation. Use it to scope the account to a
// measurement phase (e.g. after an untimed warm-up) — Drive callers get
// per-drive deltas in Summary.Metrics without resetting.
func (m *Maintainer) ResetMetrics() {
	if m.coll != nil {
		m.coll.Reset()
	}
}

// MemoryProfile returns the engine's live retained-bytes account —
// arena lanes, hash index, spill pool, free-lists, engine auxiliary
// storage, and the headline bytes/node — and whether the engine
// implements the core.MemoryReporter capability. The arena-backed
// engines (template, sharded, sequential, gupta-khan, aoss) do; the
// message-passing engines, whose state is per-node network knowledge,
// do not. The account is deterministic for a given change history, so
// harnesses commit it in artifacts (BENCH_dynmis.json's big-graph tier,
// docs/VALIDATION.md's head-to-head table, /metricsz).
func (m *Maintainer) MemoryProfile() (metrics.Memory, bool) {
	if r, ok := m.impl.(core.MemoryReporter); ok {
		return r.MemoryProfile(), true
	}
	return metrics.Memory{}, false
}

// Snapshot is a serializable image of the maintained structure (graph,
// priorities, memberships); see Maintainer.Snapshot and Restore.
type Snapshot = core.Snapshot

// Snapshotter is the persistence capability: engines that can serialize
// their maintained structure implement it. EngineTemplate and
// EngineSharded do (they share the same core state — graph, priorities,
// memberships); the message-passing engines carry per-node network
// knowledge that is not meaningfully persistable.
type Snapshotter = core.Snapshotter

// Snapshot captures the current state for persistence. It succeeds iff
// the backing engine implements the Snapshotter capability; otherwise it
// returns an error matching ErrSnapshotUnsupported.
func (m *Maintainer) Snapshot() (*Snapshot, error) {
	s, ok := m.impl.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: engine %v", ErrSnapshotUnsupported, m.engine)
	}
	return s.Snapshot(), nil
}

// Restore rebuilds a Maintainer from a snapshot; fresh nodes inserted
// afterwards draw priorities from a stream seeded by seed. Tampered
// snapshots (violating the MIS invariant) are rejected.
//
// By default the restored maintainer is template-backed; pass
// WithEngine(EngineSharded) (plus WithShards/WithWindow) to restore into
// the sharded engine — a snapshot taken on either Snapshotter engine
// restores into either, because they persist the same structure. Other
// engines return an error matching ErrSnapshotUnsupported. A WithSeed
// option is ignored: the seed parameter wins.
func Restore(s *Snapshot, seed uint64, opts ...Option) (*Maintainer, error) {
	cfg, err := resolve(EngineTemplate, opts)
	if err != nil {
		return nil, err
	}
	switch cfg.engine {
	case EngineTemplate:
		tpl, err := core.RestoreTemplate(s, seed)
		if err != nil {
			return nil, err
		}
		return newMaintainer(tpl, cfg), nil
	case EngineSharded:
		e, err := shard.Restore(s, seed, cfg.shards)
		if err != nil {
			return nil, err
		}
		if cfg.window > 0 {
			e.SetWindow(cfg.window)
		}
		return newMaintainer(e, cfg), nil
	default:
		return nil, fmt.Errorf("%w: engine %v cannot restore a snapshot", ErrSnapshotUnsupported, cfg.engine)
	}
}

// PriorityDraws reports how many fresh priorities the maintainer's random
// order has drawn so far. Persist it next to a Snapshot and pass it to
// RestoreAt and the restored maintainer continues the identical priority
// stream — the property the durability layer (dynmis/server) relies on for
// byte-identical crash recovery.
func (m *Maintainer) PriorityDraws() uint64 { return m.impl.Order().Draws() }

// RestoreAt is Restore plus stream repositioning: after rebuilding the
// structure it advances the priority stream past the first draws draws, so
// nodes inserted after the restore receive exactly the priorities the
// original maintainer would have assigned. Restore alone only guarantees a
// *valid* continuation (any seed keeps priorities uniform); RestoreAt
// guarantees the *same* continuation, which is what makes snapshot +
// change-log-tail replay reproduce an uninterrupted run bit for bit.
func RestoreAt(s *Snapshot, seed uint64, draws uint64, opts ...Option) (*Maintainer, error) {
	m, err := Restore(s, seed, opts...)
	if err != nil {
		return nil, err
	}
	m.impl.Order().Skip(draws)
	return m, nil
}

// Verify additionally asserts the greedy certificate: the current
// structure must equal the sequential greedy MIS on the current graph
// under the maintainer's order. For the π-equivalent engines this is
// history independence (Definition 14); the competitor engines expose a
// two-band certificate order (members before non-members) under which
// greedy reproduces their MIS, so the same oracle verifies every engine.
func (m *Maintainer) Verify() error {
	if err := m.impl.Check(); err != nil {
		return err
	}
	want := core.GreedyMIS(m.impl.Graph().Clone(), m.impl.Order())
	if !core.EqualStates(m.impl.State(), want) {
		return fmt.Errorf("dynmis: state diverged from the greedy oracle")
	}
	return nil
}
