package simnet

import (
	"sync"

	"dynmis/internal/graph"
)

// Mailbox is an unbounded, deduplicating, multi-producer single-consumer
// queue of node IDs. It is the routing primitive of the sharded concurrent
// engine: each shard worker owns one mailbox, and cascade hand-offs are
// pushed into the owner shard's mailbox from any worker.
//
// Deduplication merges pushes of a node that is already enqueued but not
// yet popped. The mark is cleared at Pop time, not after processing, so a
// push that races with an in-flight evaluation of the same node enqueues a
// fresh entry — exactly the re-evaluation the cascade's convergence
// argument requires (a node must be looked at again after any earlier
// neighbor flips).
//
// Being unbounded matters: shard workers push into each other's mailboxes
// while popping from their own, and a bounded channel mesh could deadlock
// with every worker blocked on a full peer. Pushes never block.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []graph.NodeID
	queued map[graph.NodeID]struct{}
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{queued: make(map[graph.NodeID]struct{})}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push enqueues v. It reports whether a new entry was created: false means
// the push was merged into an already-pending entry (or the mailbox is
// closed) and the caller must not account for an extra pending item.
func (m *Mailbox) Push(v graph.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if _, dup := m.queued[v]; dup {
		return false
	}
	m.queued[v] = struct{}{}
	m.queue = append(m.queue, v)
	m.cond.Signal()
	return true
}

// Pop blocks until an entry is available or the mailbox is closed. The
// second result is false only when the mailbox is closed and fully
// drained.
func (m *Mailbox) Pop() (graph.NodeID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return graph.None, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	delete(m.queued, v)
	return v, true
}

// Close wakes all blocked Pops; subsequent Pushes are rejected. Closing an
// already-closed mailbox is a no-op.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}

// Len returns the number of pending entries.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
