// Package simnet is the communication substrate of the reproduction: a
// discrete-event simulator of the paper's distributed model (§2). It
// provides a synchronous broadcast network — time divided into rounds, a
// node may broadcast one O(log n)-bit message per round to all its
// neighbors — and an asynchronous event-driven network whose "round"
// measure is the longest chain of causally dependent deliveries, matching
// the paper's asynchronous cost model.
//
// The simulator is the reproduction's substitute for a physical network; it
// preserves exactly the quantities the paper accounts for (rounds,
// broadcasts, bits, causal depth) and nothing else.
//
// Three execution substrates share this package:
//
//   - Network: the synchronous round model. Rounds can optionally be
//     stepped goroutine-parallel (SetParallel) with bit-identical results,
//     because procs are isolated and rounds are barrier-synchronized.
//   - AsyncNetwork: the event-driven asynchronous model, with the message
//     scheduler as the explicit adversary (FIFO, LIFO, random).
//   - Deque: the batched work-stealing worklist queue underlying the
//     sharded concurrent engine (internal/shard), where "messages" are
//     invariant re-evaluation requests routed between shard workers in
//     per-destination batches rather than simulated network packets.
package simnet

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/metrics"
)

// Metrics accumulates communication costs across a recovery period.
type Metrics struct {
	// Broadcasts is the number of broadcast operations (one per sending
	// node per round, regardless of degree) — the paper's
	// broadcast-complexity.
	Broadcasts int
	// Sent is the number of point-to-point copies produced by broadcast
	// fan-out (one per neighbor), whether or not they were delivered.
	// In the synchronous network Sent = Messages + Dropped; in the
	// asynchronous network a copy in flight to a node that departs
	// before delivery is sent but never delivered, so Sent may also
	// exceed Messages without any fault injection.
	Sent int
	// Messages is the number of point-to-point deliveries actually made
	// to a live recipient.
	Messages int
	// Bits is the total payload size of all broadcasts.
	Bits int
	// CausalDepth is the longest chain of causally dependent deliveries
	// (asynchronous networks only).
	CausalDepth int
	// Dropped counts deliveries suppressed by a fault injector.
	Dropped int
}

// Reset zeroes the metrics.
func (m *Metrics) Reset() { *m = Metrics{} }

// Add accumulates o into m; CausalDepth takes the maximum.
func (m *Metrics) Add(o Metrics) {
	m.Broadcasts += o.Broadcasts
	m.Sent += o.Sent
	m.Messages += o.Messages
	m.Bits += o.Bits
	m.Dropped += o.Dropped
	if o.CausalDepth > m.CausalDepth {
		m.CausalDepth = o.CausalDepth
	}
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("Metrics(bcasts=%d sent=%d msgs=%d bits=%d depth=%d)",
		m.Broadcasts, m.Sent, m.Messages, m.Bits, m.CausalDepth)
}

// Sample exports the readings as a metrics.NetworkSample — the shape
// Collector.ObserveNetworkWindow folds — for the engines' instrument
// accounting.
func (m Metrics) Sample() metrics.NetworkSample {
	return metrics.NetworkSample{
		Broadcasts:  m.Broadcasts,
		Sent:        m.Sent,
		Delivered:   m.Messages,
		Dropped:     m.Dropped,
		Bits:        m.Bits,
		CausalDepth: m.CausalDepth,
	}
}

// Payload is the content of a broadcast message. Bits reports its size in
// bits for the bit-complexity account; the paper restricts messages to
// O(log n) bits.
type Payload interface {
	Bits() int
}

// Message is a delivered payload tagged with its sender.
type Message struct {
	From    graph.NodeID
	Payload Payload
}
