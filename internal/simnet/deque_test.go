package simnet

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
)

func TestDequeBatchRoundTrip(t *testing.T) {
	var d Deque
	d.PushBatch([]int32{1, 2, 3, 4, 5})
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}

	// Owner pops from the newest end, LIFO.
	got := d.PopBatch(nil, 2)
	if !slices.Equal(got, []int32{5, 4}) {
		t.Fatalf("PopBatch = %v, want [5 4]", got)
	}
	// Thief takes from the oldest end, capped at half the remainder.
	stolen := d.Steal(nil, 10)
	if !slices.Equal(stolen, []int32{1, 2}) {
		t.Fatalf("Steal = %v, want [1 2] (half of 3)", stolen)
	}
	if rest := d.PopBatch(nil, 10); !slices.Equal(rest, []int32{3}) {
		t.Fatalf("remainder = %v, want [3]", rest)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after drain", d.Len())
	}
	if got := d.PopBatch(nil, 4); len(got) != 0 {
		t.Fatalf("PopBatch on empty = %v", got)
	}
	if got := d.Steal(nil, 4); len(got) != 0 {
		t.Fatalf("Steal on empty = %v", got)
	}
}

// Steal of a single entry must take it: the never-more-than-half rule
// rounds up, or a lone hand-off could be unstealable forever.
func TestDequeStealSingleton(t *testing.T) {
	var d Deque
	d.PushBatch([]int32{7})
	if got := d.Steal(nil, 8); !slices.Equal(got, []int32{7}) {
		t.Fatalf("Steal singleton = %v", got)
	}
}

func TestDequeGrowWraps(t *testing.T) {
	var d Deque
	// Force head/tail wrap-around before a grow.
	d.PushBatch(make([]int32, 48))
	d.PopBatch(nil, 40)
	batch := make([]int32, 100)
	for i := range batch {
		batch[i] = int32(i)
	}
	d.PushBatch(batch)
	if d.Len() != 108 {
		t.Fatalf("Len = %d, want 108", d.Len())
	}
	got := d.PopBatch(nil, 108)
	// The 100-entry batch comes back LIFO first, then the 8 zeros.
	for i := 0; i < 100; i++ {
		if got[i] != int32(99-i) {
			t.Fatalf("entry %d = %d, want %d", i, got[i], 99-i)
		}
	}
}

// Concurrent producers, one owner and several thieves: every pushed
// entry must come out exactly once.
func TestDequeConcurrent(t *testing.T) {
	var d Deque
	const producers, perProducer = 4, 2000

	var wg sync.WaitGroup
	for p := range producers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(p), 99))
			batch := make([]int32, 0, 16)
			for i := range perProducer {
				batch = append(batch, int32(p*perProducer+i))
				if len(batch) == cap(batch) || rng.IntN(8) == 0 {
					d.PushBatch(batch)
					batch = batch[:0]
				}
			}
			d.PushBatch(batch)
		}()
	}

	var mu sync.Mutex
	seen := make(map[int32]int)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := range 3 {
		cg.Add(1)
		go func() {
			defer cg.Done()
			buf := make([]int32, 0, 64)
			for {
				buf = buf[:0]
				if c == 0 {
					buf = d.PopBatch(buf, 32)
				} else {
					buf = d.Steal(buf, 32)
				}
				if len(buf) > 0 {
					mu.Lock()
					for _, v := range buf {
						seen[v]++
					}
					mu.Unlock()
					continue
				}
				select {
				case <-done:
					if d.Len() == 0 {
						return
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("drained %d distinct entries, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("entry %d drained %d times", v, n)
		}
	}
}
