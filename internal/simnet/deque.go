package simnet

import "sync"

// Deque is the batched work-distribution primitive of the sharded
// concurrent engine: a multi-producer, work-stealing double-ended queue
// of arena slot indices. Each shard worker owns one Deque; cascade
// hand-offs destined for that shard arrive as whole batches (the
// producers accumulate them in per-destination ring buffers and flush
// once per cascade round), the owner refills its private run stack from
// the newest end, and idle workers steal from the oldest end.
//
// It replaces the single-slot Mailbox hand-off of the original sharded
// engine: where the mailbox took one lock acquisition, one map lookup
// and one condvar signal per forwarded slot (~33k of them per 20k churn
// updates), the deque amortizes one lock acquisition over an entire
// batch, and deduplication has moved out of the queue into the engine's
// per-slot cascade state machine, so the deque itself is a plain ring.
//
// The two ends serve locality: the owner pops the newest entries (their
// neighborhoods are hottest in cache), thieves take the oldest, which
// are the entries the owner would reach last anyway. Deques are
// unbounded — workers push into each other's deques while draining
// their own, and a bounded mesh could deadlock with every worker
// blocked on a full peer — so pushes never block and never fail.
//
// A Deque has no parking: blocking and termination belong to the
// engine's cascade protocol (which knows the global pending count), not
// to any single queue. All methods are safe for concurrent use.
type Deque struct {
	mu   sync.Mutex
	buf  []int32 // ring storage
	head int     // index of the oldest entry (steal end)
	tail int     // index one past the newest entry (owner end)
	n    int     // live entries
}

// MemBytes returns the ring's retained storage. Callers must be the
// owner of a quiescent deque (the engine between windows); it takes the
// lock only to satisfy the race detector's discipline.
func (d *Deque) MemBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(cap(d.buf)) * 4
}

// grow doubles the ring so that at least need more entries fit. Caller
// holds mu.
func (d *Deque) grow(need int) {
	cap2 := max(2*len(d.buf), 64)
	for cap2 < d.n+need {
		cap2 *= 2
	}
	buf := make([]int32, cap2)
	if d.n > 0 {
		if d.head < d.tail {
			copy(buf, d.buf[d.head:d.tail])
		} else {
			k := copy(buf, d.buf[d.head:])
			copy(buf[k:], d.buf[:d.tail])
		}
	}
	d.buf, d.head, d.tail = buf, 0, d.n
}

// PushBatch appends all items at the newest end under a single lock
// acquisition. It never blocks.
func (d *Deque) PushBatch(items []int32) {
	if len(items) == 0 {
		return
	}
	d.mu.Lock()
	if d.n+len(items) > len(d.buf) {
		d.grow(len(items))
	}
	for _, v := range items {
		d.buf[d.tail] = v
		d.tail++
		if d.tail == len(d.buf) {
			d.tail = 0
		}
	}
	d.n += len(items)
	d.mu.Unlock()
}

// PopBatch moves up to max entries from the newest end into buf
// (appending) and returns the extended slice. It is the owner's refill
// path; an empty deque returns buf unchanged.
func (d *Deque) PopBatch(buf []int32, max int) []int32 {
	d.mu.Lock()
	k := min(max, d.n)
	for range k {
		d.tail--
		if d.tail < 0 {
			d.tail = len(d.buf) - 1
		}
		buf = append(buf, d.buf[d.tail])
	}
	d.n -= k
	d.mu.Unlock()
	return buf
}

// Steal moves up to max entries — but never more than half of what is
// queued, so the victim keeps the majority of its own work — from the
// oldest end into buf (appending) and returns the extended slice. An
// empty deque returns buf unchanged.
func (d *Deque) Steal(buf []int32, max int) []int32 {
	d.mu.Lock()
	k := min(max, (d.n+1)/2)
	for range k {
		buf = append(buf, d.buf[d.head])
		d.head++
		if d.head == len(d.buf) {
			d.head = 0
		}
	}
	d.n -= k
	d.mu.Unlock()
	return buf
}

// Len returns the number of queued entries.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}
