package simnet

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// AsyncProc is an asynchronous protocol node: it reacts to one delivered
// message at a time and may respond with broadcasts to all its neighbors.
// Unlike the synchronous model there is no one-broadcast-per-round limit,
// so a handler may emit several payloads.
type AsyncProc interface {
	// Handle processes one delivered message and returns the payloads to
	// broadcast (nil for silence).
	Handle(m Message) []Payload
}

// Scheduler chooses which in-flight message is delivered next; it is the
// asynchronous adversary. Pick receives the number of in-flight messages
// and returns an index into [0, n).
type Scheduler interface {
	Pick(n int) int
}

// FIFOScheduler delivers messages in send order (the "nicest" adversary).
type FIFOScheduler struct{}

// Pick implements Scheduler.
func (FIFOScheduler) Pick(int) int { return 0 }

// LIFOScheduler delivers the most recently sent message first, maximizing
// reordering between branches of the cascade.
type LIFOScheduler struct{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(n int) int { return n - 1 }

// RandomScheduler delivers a uniformly random in-flight message.
type RandomScheduler struct {
	Rng *rand.Rand
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(n int) int { return s.Rng.IntN(n) }

type inflight struct {
	to    graph.NodeID
	msg   Message
	depth int
}

// ErrAsyncBudget is returned when Run exceeds its delivery budget.
var ErrAsyncBudget = errors.New("simnet: async network exceeded delivery budget")

// AsyncNetwork is the event-driven asynchronous network. Time is measured
// by causal depth: a broadcast triggered by handling a depth-d message
// creates depth-(d+1) messages, and Metrics.CausalDepth records the longest
// chain — the paper's asynchronous round measure.
type AsyncNetwork struct {
	g     *graph.Graph
	procs map[graph.NodeID]AsyncProc
	queue []inflight
	sched Scheduler

	// Metrics accumulates costs; callers reset it per topology change.
	Metrics Metrics
}

// NewAsyncNetwork returns an empty asynchronous network driven by sched
// (FIFO if nil).
func NewAsyncNetwork(sched Scheduler) *AsyncNetwork {
	if sched == nil {
		sched = FIFOScheduler{}
	}
	return &AsyncNetwork{
		g:     graph.New(),
		procs: make(map[graph.NodeID]AsyncProc),
		sched: sched,
	}
}

// Graph exposes the live communication topology (read-only for callers).
func (n *AsyncNetwork) Graph() *graph.Graph { return n.g }

// Proc returns the proc registered at v, or nil.
func (n *AsyncNetwork) Proc(v graph.NodeID) AsyncProc { return n.procs[v] }

// AddNode attaches a proc at a fresh node.
func (n *AsyncNetwork) AddNode(v graph.NodeID, p AsyncProc) error {
	if err := n.g.AddNode(v); err != nil {
		return err
	}
	n.procs[v] = p
	return nil
}

// RemoveNode detaches v; in-flight messages to it are dropped at delivery
// time (the node is gone).
func (n *AsyncNetwork) RemoveNode(v graph.NodeID) error {
	if err := n.g.RemoveNode(v); err != nil {
		return err
	}
	delete(n.procs, v)
	return nil
}

// AddEdge and RemoveEdge mutate the communication topology.
func (n *AsyncNetwork) AddEdge(u, v graph.NodeID) error    { return n.g.AddEdge(u, v) }
func (n *AsyncNetwork) RemoveEdge(u, v graph.NodeID) error { return n.g.RemoveEdge(u, v) }

// Inject schedules a control event (depth 0, no communication cost).
func (n *AsyncNetwork) Inject(to graph.NodeID, m Message) {
	n.queue = append(n.queue, inflight{to: to, msg: m, depth: 0})
}

// Broadcast sends p from v to all current neighbors with the given causal
// depth, charging one broadcast. Copies are counted as Sent here and as
// Messages only on actual delivery (Run): a copy in flight to a node
// that departs before delivery is sent but never delivered.
func (n *AsyncNetwork) Broadcast(from graph.NodeID, p Payload, depth int) {
	n.Metrics.Broadcasts++
	n.Metrics.Bits += p.Bits()
	n.g.EachNeighbor(from, func(u graph.NodeID) {
		n.queue = append(n.queue, inflight{to: u, msg: Message{From: from, Payload: p}, depth: depth})
		n.Metrics.Sent++
	})
}

// Pending returns the number of in-flight messages.
func (n *AsyncNetwork) Pending() int { return len(n.queue) }

// Unqueue removes every in-flight message matching pred and reports how
// many were removed. Engines use it to cancel stale injected detection
// events when a later change in the same batch reverts the condition they
// announce (e.g. an edge deleted and re-inserted before the network ran):
// delivering the stale event after the revert would wipe knowledge that is
// correct again.
func (n *AsyncNetwork) Unqueue(pred func(to graph.NodeID, m Message) bool) int {
	removed := 0
	kept := n.queue[:0]
	for _, f := range n.queue {
		if pred(f.to, f.msg) {
			removed++
			continue
		}
		kept = append(kept, f)
	}
	n.queue = kept
	return removed
}

// Run delivers messages per the scheduler until the network drains,
// failing after maxDeliveries. Handlers run atomically per delivery, as in
// the standard asynchronous model.
func (n *AsyncNetwork) Run(maxDeliveries int) error {
	delivered := 0
	for len(n.queue) > 0 {
		if delivered >= maxDeliveries {
			return fmt.Errorf("%w (%d deliveries)", ErrAsyncBudget, delivered)
		}
		i := n.sched.Pick(len(n.queue))
		// Channels are FIFO per (sender, receiver) link, as in the
		// standard asynchronous model: if an older message on the same
		// link is still in flight, it is delivered instead.
		for j := 0; j < i; j++ {
			if n.queue[j].to == n.queue[i].to && n.queue[j].msg.From == n.queue[i].msg.From {
				i = j
				break
			}
		}
		f := n.queue[i]
		n.queue = append(n.queue[:i], n.queue[i+1:]...)
		delivered++

		proc, ok := n.procs[f.to]
		if !ok {
			continue // recipient departed while the message was in flight
		}
		if f.msg.From != graph.None {
			// An actual point-to-point delivery (injected control
			// events carry no communication cost).
			n.Metrics.Messages++
		}
		// A delivery at depth d extends the causal chain to d+1 hops of
		// communication when the message was an actual broadcast;
		// injected events sit at depth 0.
		depth := f.depth
		if f.msg.Payload != nil && f.msg.From != graph.None {
			depth++
		}
		if depth > n.Metrics.CausalDepth {
			n.Metrics.CausalDepth = depth
		}
		for _, out := range proc.Handle(f.msg) {
			if out != nil {
				n.Broadcast(f.to, out, depth)
			}
		}
	}
	return nil
}
