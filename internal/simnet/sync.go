package simnet

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"

	"dynmis/internal/graph"
)

// Proc is a synchronous protocol node. The network drives it once per
// round; it must touch only its own state and the delivered messages, which
// is what makes the optional goroutine-parallel round execution safe and
// deterministic.
type Proc interface {
	// Step consumes the messages delivered in this round (broadcast by
	// neighbors in the previous round, or injected) and returns the
	// payload to broadcast to all current neighbors, or nil for silence.
	Step(round int, inbox []Message) Payload
	// Quiescent reports whether the node is passive: it will not act in
	// a future round unless a new message arrives.
	Quiescent() bool
}

// ErrNotQuiet is returned when RunUntilQuiet exceeds its round budget,
// which indicates a protocol bug (the paper's recovery always terminates).
var ErrNotQuiet = errors.New("simnet: network did not quiesce")

// Network is the synchronous broadcast network. The zero value is not
// usable; call NewNetwork.
type Network struct {
	g     *graph.Graph
	procs map[graph.NodeID]Proc
	inbox map[graph.NodeID][]Message
	round int

	// Metrics accumulates costs; callers reset it per topology change.
	Metrics Metrics

	// Fault, if non-nil, is consulted for every point-to-point delivery
	// of a broadcast; returning true drops that copy. The paper's model
	// assumes reliable links — the fault hook exists to let tests
	// demonstrate that the protocol's correctness genuinely depends on
	// that assumption (dropped messages are counted in Metrics.Dropped).
	Fault func(from, to graph.NodeID, p Payload) bool

	// OnRound, if non-nil, is invoked after every executed round with
	// the global round number — the hook behind execution tracing.
	OnRound func(round int)

	workers int
}

// NewNetwork returns an empty synchronous network.
func NewNetwork() *Network {
	return &Network{
		g:     graph.New(),
		procs: make(map[graph.NodeID]Proc),
		inbox: make(map[graph.NodeID][]Message),
	}
}

// SetParallel enables goroutine-parallel round execution with the given
// worker count (values below 2 select the sequential path). Parallel and
// sequential execution are bit-for-bit identical because rounds are
// barrier-synchronized and procs are isolated.
func (n *Network) SetParallel(workers int) { n.workers = workers }

// Graph exposes the live communication topology (read-only for callers).
func (n *Network) Graph() *graph.Graph { return n.g }

// Round returns the number of rounds executed since construction.
func (n *Network) Round() int { return n.round }

// Proc returns the proc registered at v, or nil.
func (n *Network) Proc(v graph.NodeID) Proc { return n.procs[v] }

// AddNode attaches a proc at a fresh node.
func (n *Network) AddNode(v graph.NodeID, p Proc) error {
	if err := n.g.AddNode(v); err != nil {
		return err
	}
	n.procs[v] = p
	return nil
}

// RemoveNode detaches v abruptly: pending deliveries to it are dropped.
func (n *Network) RemoveNode(v graph.NodeID) error {
	if err := n.g.RemoveNode(v); err != nil {
		return err
	}
	delete(n.procs, v)
	delete(n.inbox, v)
	return nil
}

// AddEdge and RemoveEdge mutate the communication topology.
func (n *Network) AddEdge(u, v graph.NodeID) error    { return n.g.AddEdge(u, v) }
func (n *Network) RemoveEdge(u, v graph.NodeID) error { return n.g.RemoveEdge(u, v) }

// Inject delivers a control event to v in the next round. It models local
// physical-layer detection (e.g. "the edge to u vanished") and costs no
// communication.
func (n *Network) Inject(to graph.NodeID, m Message) {
	n.inbox[to] = append(n.inbox[to], m)
}

// Broadcast queues p from v to all of v's current neighbors for delivery
// in the next round, charging one broadcast and p.Bits() bits.
func (n *Network) Broadcast(from graph.NodeID, p Payload) {
	n.Metrics.Broadcasts++
	n.Metrics.Bits += p.Bits()
	n.g.EachNeighbor(from, func(u graph.NodeID) {
		n.Metrics.Sent++
		if n.Fault != nil && n.Fault(from, u, p) {
			n.Metrics.Dropped++
			return
		}
		n.inbox[u] = append(n.inbox[u], Message{From: from, Payload: p})
		n.Metrics.Messages++
	})
}

// pendingDeliveries reports whether any inbox is non-empty.
func (n *Network) pendingDeliveries() bool {
	for _, msgs := range n.inbox {
		if len(msgs) > 0 {
			return true
		}
	}
	return false
}

// Quiet reports whether the network is stable: no pending deliveries and
// every proc quiescent.
func (n *Network) Quiet() bool {
	if n.pendingDeliveries() {
		return false
	}
	for _, p := range n.procs {
		if !p.Quiescent() {
			return false
		}
	}
	return true
}

// StepRound executes one synchronous round: deliver all pending messages,
// step every proc, and queue the returned broadcasts for the next round.
func (n *Network) StepRound() {
	n.round++
	delivered := n.inbox
	n.inbox = make(map[graph.NodeID][]Message)

	ids := make([]graph.NodeID, 0, len(n.procs))
	for v := range n.procs {
		ids = append(ids, v)
	}
	slices.Sort(ids)

	outs := make([]Payload, len(ids))
	if n.workers >= 2 && len(ids) >= 2*n.workers {
		var wg sync.WaitGroup
		chunk := (len(ids) + n.workers - 1) / n.workers
		for w := 0; w < n.workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(ids))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					v := ids[i]
					// Sort inbox for determinism regardless of
					// enqueue order within the previous round.
					outs[i] = n.procs[v].Step(n.round, sortedInbox(delivered[v]))
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, v := range ids {
			outs[i] = n.procs[v].Step(n.round, sortedInbox(delivered[v]))
		}
	}

	for i, v := range ids {
		if outs[i] != nil {
			n.Broadcast(v, outs[i])
		}
	}
	if n.OnRound != nil {
		n.OnRound(n.round)
	}
}

// sortedInbox orders messages by sender for deterministic processing.
func sortedInbox(msgs []Message) []Message {
	slices.SortStableFunc(msgs, func(a, b Message) int { return cmp.Compare(a.From, b.From) })
	return msgs
}

// RunUntilQuiet steps rounds until the network is stable, returning the
// number of rounds executed. It fails with ErrNotQuiet after maxRounds.
func (n *Network) RunUntilQuiet(maxRounds int) (int, error) {
	rounds := 0
	for !n.Quiet() {
		if rounds >= maxRounds {
			return rounds, fmt.Errorf("%w after %d rounds", ErrNotQuiet, rounds)
		}
		n.StepRound()
		rounds++
	}
	return rounds, nil
}
