package simnet

import (
	"sync"
	"testing"

	"dynmis/internal/graph"
)

func TestMailboxDedupAndOrder(t *testing.T) {
	m := NewMailbox()
	if !m.Push(1) || !m.Push(2) {
		t.Fatal("fresh pushes must create entries")
	}
	if m.Push(1) {
		t.Fatal("duplicate pending push must merge")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	v, ok := m.Pop()
	if !ok || v != 1 {
		t.Fatalf("pop = %d,%v, want 1,true", v, ok)
	}
	// The mark clears at Pop, so a re-push of 1 enqueues again.
	if !m.Push(1) {
		t.Fatal("push after pop must create a fresh entry")
	}
	m.Close()
	if m.Push(3) {
		t.Fatal("push after close must be rejected")
	}
	// Close drains remaining entries before reporting closed.
	if v, ok := m.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v, want 2,true", v, ok)
	}
	if v, ok := m.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v, want 1,true", v, ok)
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("drained closed mailbox must report closed")
	}
}

// Many producers, one consumer, with dedup racing pops; -race exercises
// the locking.
func TestMailboxConcurrent(t *testing.T) {
	m := NewMailbox()
	const producers, perProducer = 8, 500

	var wg sync.WaitGroup
	var created int64
	var mu sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if m.Push(graph.NodeID(i % 97)) {
					mu.Lock()
					created++
					mu.Unlock()
				}
			}
		}(p)
	}

	done := make(chan int64)
	go func() {
		var popped int64
		for {
			if _, ok := m.Pop(); !ok {
				done <- popped
				return
			}
			popped++
		}
	}()

	wg.Wait()
	// Drain whatever remains, then close.
	for m.Len() > 0 {
	}
	m.Close()
	popped := <-done
	if popped != created {
		t.Fatalf("popped %d, created %d — entries lost or duplicated", popped, created)
	}
}
