package simnet

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
)

// intPayload is a trivial payload for tests.
type intPayload int

func (intPayload) Bits() int { return 8 }

// echoProc broadcasts a counter once when poked, then stays quiet. If
// chain > 0 it re-broadcasts on every received non-event message,
// decrementing chain — building a causal chain of known length.
type echoProc struct {
	poked bool
	chain int
	seen  []Message
}

func (p *echoProc) Step(_ int, inbox []Message) Payload {
	p.seen = append(p.seen, inbox...)
	for _, m := range inbox {
		if m.From == graph.None {
			p.poked = true
		} else if p.chain > 0 {
			p.chain--
			return intPayload(p.chain)
		}
	}
	if p.poked {
		p.poked = false
		return intPayload(100)
	}
	return nil
}

func (p *echoProc) Quiescent() bool { return !p.poked }

func TestNetworkBroadcastDelivery(t *testing.T) {
	n := NewNetwork()
	a, b, c := &echoProc{}, &echoProc{}, &echoProc{}
	for id, p := range map[graph.NodeID]Proc{1: a, 2: b, 3: c} {
		if err := n.AddNode(id, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if !n.Quiet() {
		t.Fatal("fresh network should be quiet")
	}
	n.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	rounds, err := n.RunUntilQuiet(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("expected at least one round")
	}
	// Node 1 broadcast once; 2 and 3 each received it.
	if n.Metrics.Broadcasts != 1 {
		t.Errorf("broadcasts = %d, want 1", n.Metrics.Broadcasts)
	}
	if n.Metrics.Messages != 2 {
		t.Errorf("messages = %d, want 2", n.Metrics.Messages)
	}
	if n.Metrics.Bits != 8 {
		t.Errorf("bits = %d, want 8", n.Metrics.Bits)
	}
	if len(b.seen) != 1 || b.seen[0].From != 1 {
		t.Errorf("node 2 saw %v", b.seen)
	}
	if len(c.seen) != 1 {
		t.Errorf("node 3 saw %v", c.seen)
	}
}

func TestNetworkTopologyErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode(1, &echoProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(1, &echoProc{}); !errors.Is(err, graph.ErrNodeExists) {
		t.Errorf("dup AddNode err = %v", err)
	}
	if err := n.RemoveNode(9); !errors.Is(err, graph.ErrNoNode) {
		t.Errorf("RemoveNode err = %v", err)
	}
	if err := n.AddEdge(1, 9); !errors.Is(err, graph.ErrNoNode) {
		t.Errorf("AddEdge err = %v", err)
	}
	if err := n.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if n.Proc(1) != nil {
		t.Error("proc survives node removal")
	}
}

// stuckProc never quiesces — RunUntilQuiet must fail cleanly.
type stuckProc struct{}

func (stuckProc) Step(int, []Message) Payload { return nil }
func (stuckProc) Quiescent() bool             { return false }

func TestRunUntilQuietBudget(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode(1, stuckProc{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunUntilQuiet(5); !errors.Is(err, ErrNotQuiet) {
		t.Errorf("err = %v, want ErrNotQuiet", err)
	}
}

func TestRemovedNodeDropsPendingInbox(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode(1, &echoProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	if err := n.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if !n.Quiet() {
		t.Error("network should be quiet after removing the only busy node")
	}
}

// asyncEcho chains: on each delivery it re-broadcasts until hops runs out.
type asyncEcho struct {
	hops int
}

func (p *asyncEcho) Handle(m Message) []Payload {
	if p.hops <= 0 {
		return nil
	}
	p.hops--
	return []Payload{intPayload(p.hops)}
}

func TestAsyncCausalDepth(t *testing.T) {
	n := NewAsyncNetwork(FIFOScheduler{})
	// Path 1-2-3-4; injection at 1 ripples right with depth 3.
	procs := map[graph.NodeID]*asyncEcho{1: {hops: 1}, 2: {hops: 1}, 3: {hops: 1}, 4: {hops: 0}}
	for id, p := range procs {
		if err := n.AddNode(id, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}} {
		if err := n.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	n.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	// 1 broadcasts (depth 1 on delivery), 2 re-broadcasts (depth 2),
	// 3 re-broadcasts (depth 3), 4 consumes.
	if n.Metrics.CausalDepth != 3 {
		t.Errorf("causal depth = %d, want 3", n.Metrics.CausalDepth)
	}
	if n.Metrics.Broadcasts != 3 {
		t.Errorf("broadcasts = %d, want 3", n.Metrics.Broadcasts)
	}
}

func TestAsyncBudget(t *testing.T) {
	n := NewAsyncNetwork(nil)
	a, b := &asyncEcho{hops: 1 << 30}, &asyncEcho{hops: 1 << 30}
	if err := n.AddNode(1, a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(2, b); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	if err := n.Run(50); !errors.Is(err, ErrAsyncBudget) {
		t.Errorf("err = %v, want ErrAsyncBudget", err)
	}
}

// fifoRecorder records the payload order it receives from each sender.
type fifoRecorder struct {
	got []int
}

func (p *fifoRecorder) Handle(m Message) []Payload {
	if v, ok := m.Payload.(intPayload); ok && m.From != graph.None {
		p.got = append(p.got, int(v))
	}
	return nil
}

// burstProc sends three numbered broadcasts when poked.
type burstProc struct{}

func (burstProc) Handle(m Message) []Payload {
	if m.From == graph.None {
		return []Payload{intPayload(1), intPayload(2), intPayload(3)}
	}
	return nil
}

func TestAsyncPerLinkFIFO(t *testing.T) {
	// Even under LIFO scheduling, messages on one link must arrive in
	// send order.
	n := NewAsyncNetwork(LIFOScheduler{})
	rec := &fifoRecorder{}
	if err := n.AddNode(1, burstProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(2, rec); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 3 || rec.got[0] != 1 || rec.got[1] != 2 || rec.got[2] != 3 {
		t.Errorf("delivery order %v, want [1 2 3]", rec.got)
	}
}

func TestSchedulers(t *testing.T) {
	if (FIFOScheduler{}).Pick(5) != 0 {
		t.Error("FIFO should pick 0")
	}
	if (LIFOScheduler{}).Pick(5) != 4 {
		t.Error("LIFO should pick n-1")
	}
	rs := &RandomScheduler{Rng: rand.New(rand.NewPCG(1, 1))}
	for i := 0; i < 100; i++ {
		if p := rs.Pick(7); p < 0 || p >= 7 {
			t.Fatalf("random pick %d out of range", p)
		}
	}
}

func TestMetricsAddAndString(t *testing.T) {
	a := Metrics{Broadcasts: 1, Messages: 2, Bits: 3, CausalDepth: 4}
	b := Metrics{Broadcasts: 10, Messages: 20, Bits: 30, CausalDepth: 2}
	a.Add(b)
	if a.Broadcasts != 11 || a.Messages != 22 || a.Bits != 33 || a.CausalDepth != 4 {
		t.Errorf("Add result %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
	a.Reset()
	if a != (Metrics{}) {
		t.Error("Reset incomplete")
	}
}
