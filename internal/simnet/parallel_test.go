package simnet

import (
	"testing"

	"dynmis/internal/graph"
)

// counterProc relays a hop-limited counter: on receiving intPayload(k>0)
// it broadcasts k-1. It is pure state, so it is safe under the parallel
// executor.
type counterProc struct {
	received []int
}

func (p *counterProc) Step(_ int, inbox []Message) Payload {
	for _, m := range inbox {
		if v, ok := m.Payload.(intPayload); ok {
			p.received = append(p.received, int(v))
			if v > 0 {
				return intPayload(v - 1)
			}
		}
	}
	return nil
}

func (p *counterProc) Quiescent() bool { return true }

// buildRing wires n counter procs in a ring and pokes node 0.
func buildRing(t *testing.T, workers int, n int) (*Network, []*counterProc) {
	t.Helper()
	net := NewNetwork()
	if workers > 1 {
		net.SetParallel(workers)
	}
	procs := make([]*counterProc, n)
	for i := 0; i < n; i++ {
		procs[i] = &counterProc{}
		if err := net.AddNode(graph.NodeID(i), procs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := net.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	net.Inject(0, Message{From: graph.None, Payload: intPayload(12)})
	return net, procs
}

// TestParallelRoundsMatchSequential runs the same deterministic protocol
// under the sequential and goroutine-parallel executors: every proc must
// see the exact same message history.
func TestParallelRoundsMatchSequential(t *testing.T) {
	const n = 32
	seqNet, seqProcs := buildRing(t, 1, n)
	parNet, parProcs := buildRing(t, 4, n)

	for round := 0; round < 20; round++ {
		seqNet.StepRound()
		parNet.StepRound()
	}
	if seqNet.Round() != parNet.Round() {
		t.Fatalf("round counters differ: %d vs %d", seqNet.Round(), parNet.Round())
	}
	if seqNet.Metrics != parNet.Metrics {
		t.Fatalf("metrics differ: %v vs %v", seqNet.Metrics, parNet.Metrics)
	}
	for i := range seqProcs {
		a, b := seqProcs[i].received, parProcs[i].received
		if len(a) != len(b) {
			t.Fatalf("proc %d histories differ: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("proc %d histories differ at %d: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	net := NewNetwork()
	if err := net.AddNode(1, &counterProc{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(2, &counterProc{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !net.Graph().HasEdge(1, 2) {
		t.Error("Graph accessor inconsistent")
	}
	if err := net.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if net.Graph().HasEdge(1, 2) {
		t.Error("edge survives RemoveEdge")
	}
	if net.Round() != 0 {
		t.Error("fresh network round != 0")
	}
	net.StepRound()
	if net.Round() != 1 {
		t.Error("Round not advancing")
	}
}

func TestAsyncNetworkAccessors(t *testing.T) {
	net := NewAsyncNetwork(nil)
	a := &asyncEcho{hops: 1}
	if err := net.AddNode(1, a); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(2, &asyncEcho{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if net.Proc(1) != a {
		t.Error("Proc accessor inconsistent")
	}
	if !net.Graph().HasEdge(1, 2) {
		t.Error("Graph accessor inconsistent")
	}
	net.Inject(1, Message{From: graph.None, Payload: intPayload(0)})
	if net.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", net.Pending())
	}
	if err := net.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if net.Proc(2) != nil {
		t.Error("proc survives RemoveNode")
	}
	if err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if net.Pending() != 0 {
		t.Error("queue not drained")
	}
}
