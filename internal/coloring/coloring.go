// Package coloring maintains a (Δ+1)-coloring of a dynamic graph through
// the clique-blowup reduction to MIS attributed to Luby, which the paper
// uses for its composability claim (§5): every node v of G becomes a
// clique of P = Δ+1 copies (v,1)…(v,P) in G', every G-edge {u,v} becomes
// the matching {(u,c),(v,c)} for all colors c, and an MIS of G' picks
// exactly one copy per node — its color. History independence of the MIS
// makes the derived coloring history independent.
//
// The palette size P is fixed at construction; callers must keep every
// degree below P (the classic reduction needs P ≥ Δ+1).
package coloring

import (
	"errors"
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// ErrPaletteExceeded is returned when a change would push a node's degree
// to the palette size, voiding the reduction's guarantee.
var ErrPaletteExceeded = errors.New("coloring: node degree would reach palette size")

// Maintainer keeps a proper P-coloring of a dynamic graph. The blown-up
// MIS may be backed by any core.Engine.
type Maintainer struct {
	g       *graph.Graph
	eng     core.Engine
	palette int
}

// New returns a template-backed maintainer with the given palette size
// (≥ 2).
func New(seed uint64, palette int) (*Maintainer, error) {
	return NewWithEngine(core.NewTemplate(seed), palette)
}

// NewWithEngine returns a maintainer running the blown-up MIS on the
// given engine (which must be empty) with the given palette size (≥ 2).
func NewWithEngine(e core.Engine, palette int) (*Maintainer, error) {
	if palette < 2 {
		return nil, fmt.Errorf("coloring: palette must be at least 2, got %d", palette)
	}
	return &Maintainer{
		g:       graph.New(),
		eng:     e,
		palette: palette,
	}, nil
}

// Palette returns the palette size P.
func (m *Maintainer) Palette() int { return m.palette }

// Graph exposes the primal topology (read-only for callers).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// copyID maps the copy (v, c) with color c ∈ [1, P] to a G' node ID.
// Node IDs must be non-negative for the encoding to be collision-free.
func (m *Maintainer) copyID(v graph.NodeID, c int) graph.NodeID {
	return v*graph.NodeID(m.palette) + graph.NodeID(c-1)
}

// Apply performs one primal topology change, expanding it into the
// corresponding blown-up changes.
func (m *Maintainer) Apply(c graph.Change) (core.Report, error) {
	if err := c.Validate(m.g); err != nil {
		return core.Report{}, err
	}
	var total core.Report
	apply := func(gc graph.Change) error {
		rep, err := m.eng.Apply(gc)
		if err != nil {
			return err
		}
		total.Add(rep)
		return nil
	}

	switch c.Kind {
	case graph.NodeInsert, graph.NodeUnmute:
		if c.Node < 0 {
			return core.Report{}, fmt.Errorf("coloring: node IDs must be non-negative, got %d", c.Node)
		}
		if len(c.Edges) >= m.palette {
			return core.Report{}, fmt.Errorf("%w: inserting %d with degree %d, palette %d",
				ErrPaletteExceeded, c.Node, len(c.Edges), m.palette)
		}
		for _, u := range c.Edges {
			if m.g.Degree(u)+1 >= m.palette {
				return core.Report{}, fmt.Errorf("%w: neighbor %d", ErrPaletteExceeded, u)
			}
		}
		if err := m.g.AddNode(c.Node); err != nil {
			return core.Report{}, err
		}
		for col := 1; col <= m.palette; col++ {
			// Each copy attaches to the earlier copies of the same
			// node (clique) and to the same-color copies of the
			// already-present neighbors (cross matching).
			nbrs := make([]graph.NodeID, 0, col-1+len(c.Edges))
			for prev := 1; prev < col; prev++ {
				nbrs = append(nbrs, m.copyID(c.Node, prev))
			}
			for _, u := range c.Edges {
				nbrs = append(nbrs, m.copyID(u, col))
			}
			if err := apply(graph.NodeChange(graph.NodeInsert, m.copyID(c.Node, col), nbrs...)); err != nil {
				return total, err
			}
		}
		for _, u := range c.Edges {
			if err := m.g.AddEdge(c.Node, u); err != nil {
				return total, err
			}
		}
		return total, nil

	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		kind := graph.NodeDeleteGraceful
		if c.Kind == graph.NodeDeleteAbrupt {
			kind = graph.NodeDeleteAbrupt
		}
		for col := 1; col <= m.palette; col++ {
			if err := apply(graph.NodeChange(kind, m.copyID(c.Node, col))); err != nil {
				return total, err
			}
		}
		if err := m.g.RemoveNode(c.Node); err != nil {
			return total, err
		}
		return total, nil

	case graph.EdgeInsert:
		if m.g.Degree(c.U)+1 >= m.palette || m.g.Degree(c.V)+1 >= m.palette {
			return core.Report{}, fmt.Errorf("%w: edge {%d,%d}", ErrPaletteExceeded, c.U, c.V)
		}
		if err := m.g.AddEdge(c.U, c.V); err != nil {
			return core.Report{}, err
		}
		for col := 1; col <= m.palette; col++ {
			if err := apply(graph.EdgeChange(graph.EdgeInsert, m.copyID(c.U, col), m.copyID(c.V, col))); err != nil {
				return total, err
			}
		}
		return total, nil

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := m.g.RemoveEdge(c.U, c.V); err != nil {
			return core.Report{}, err
		}
		for col := 1; col <= m.palette; col++ {
			if err := apply(graph.EdgeChange(c.Kind, m.copyID(c.U, col), m.copyID(c.V, col))); err != nil {
				return total, err
			}
		}
		return total, nil
	}
	return core.Report{}, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (m *Maintainer) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := m.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// ColorOf returns v's color in [1, P], or 0 if v is absent or (which the
// reduction precludes while degrees stay below P) uncolored.
func (m *Maintainer) ColorOf(v graph.NodeID) int {
	if !m.g.HasNode(v) {
		return 0
	}
	for col := 1; col <= m.palette; col++ {
		if m.eng.InMIS(m.copyID(v, col)) {
			return col
		}
	}
	return 0
}

// Colors returns the full coloring.
func (m *Maintainer) Colors() map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, m.g.NodeCount())
	for _, v := range m.g.Nodes() {
		out[v] = m.ColorOf(v)
	}
	return out
}

// ColorsUsed returns the number of distinct colors currently in use.
func (m *Maintainer) ColorsUsed() int {
	used := make(map[int]bool)
	for _, c := range m.Colors() {
		used[c] = true
	}
	return len(used)
}

// Check verifies the reduction invariants: the blown-up MIS is valid,
// every node has exactly one chosen copy, and the coloring is proper.
func (m *Maintainer) Check() error {
	if err := m.eng.Check(); err != nil {
		return err
	}
	colors := m.Colors()
	for v, c := range colors {
		if c == 0 {
			return fmt.Errorf("coloring: node %d has no color", v)
		}
		count := 0
		for col := 1; col <= m.palette; col++ {
			if m.eng.InMIS(m.copyID(v, col)) {
				count++
			}
		}
		if count != 1 {
			return fmt.Errorf("coloring: node %d has %d chosen copies", v, count)
		}
	}
	for _, e := range m.g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return fmt.Errorf("coloring: edge {%d,%d} endpoints share color %d", e[0], e[1], colors[e[0]])
		}
	}
	return nil
}
