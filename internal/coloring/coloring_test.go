package coloring

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/workload"
)

func mustNew(t *testing.T, seed uint64, palette int) *Maintainer {
	t.Helper()
	m, err := New(seed, palette)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("palette 1 accepted")
	}
	if _, err := New(1, 2); err != nil {
		t.Errorf("palette 2 rejected: %v", err)
	}
}

func TestProperColoringOnPath(t *testing.T) {
	m := mustNew(t, 1, 3)
	if _, err := m.ApplyAll(workload.Path(6)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if used := m.ColorsUsed(); used < 2 || used > 3 {
		t.Errorf("path colors used = %d", used)
	}
}

func TestProperColoringUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	const palette = 8
	m := mustNew(t, 3, palette)
	// Build a bounded-degree random graph and churn it, keeping every
	// degree below the palette.
	var nodes []graph.NodeID
	for v := graph.NodeID(0); v < 25; v++ {
		var nbrs []graph.NodeID
		for _, u := range nodes {
			if len(nbrs) >= palette-2 {
				break
			}
			if m.Graph().Degree(u) < palette-2 && rng.Float64() < 0.15 {
				nbrs = append(nbrs, u)
			}
		}
		if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...)); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, v)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		g := m.Graph()
		if step%2 == 0 {
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			if _, err := m.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])); err != nil {
				t.Fatal(err)
			}
		} else {
			u := nodes[rng.IntN(len(nodes))]
			v := nodes[rng.IntN(len(nodes))]
			if u == v || g.HasEdge(u, v) || g.Degree(u) >= palette-2 || g.Degree(v) >= palette-2 {
				continue
			}
			if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, u, v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestPaletteGuard(t *testing.T) {
	m := mustNew(t, 1, 3)
	if _, err := m.ApplyAll(workload.Path(3)); err != nil {
		t.Fatal(err)
	}
	// Node 1 has degree 2 = palette-1; pushing it to 3 must fail.
	if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, 9, 1)); !errors.Is(err, ErrPaletteExceeded) {
		t.Errorf("err = %v, want ErrPaletteExceeded", err)
	}
	// Inserting a node with degree ≥ palette must fail too.
	if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, 10, 0, 1, 2)); !errors.Is(err, ErrPaletteExceeded) {
		t.Errorf("err = %v, want ErrPaletteExceeded", err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeDeleteUncolors(t *testing.T) {
	m := mustNew(t, 2, 4)
	if _, err := m.ApplyAll(workload.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeDeleteGraceful, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.ColorOf(2) != 0 {
		t.Error("deleted node still colored")
	}
	if m.ColorOf(0) == 0 {
		t.Error("remaining node lost its color")
	}
}

func TestNegativeIDRejected(t *testing.T) {
	m := mustNew(t, 1, 3)
	if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, -5)); err == nil {
		t.Error("negative ID accepted")
	}
}

func TestBipartiteMinusMatchingExample(t *testing.T) {
	// §5 Example 3 distinguishes two coloring algorithms. The sequential
	// random greedy coloring 2-colors the complete bipartite graph
	// minus a perfect matching with probability 1 - O(1/n); the
	// clique-blowup reduction only guarantees properness within Δ+1
	// colors (the paper notes it does not simulate greedy coloring).
	const n = 10
	g := workload.BuildGraph(workload.BipartiteMinusMatching(n))

	// Part 1: random greedy (the paper's headline claim).
	twoColorRuns := 0
	const runs = 60
	for r := 0; r < runs; r++ {
		ord := order.New(uint64(1000 + r))
		colors := core.GreedyColoring(g, ord)
		used := map[int]bool{}
		for _, c := range colors {
			used[c] = true
		}
		if len(used) == 2 {
			twoColorRuns++
		}
	}
	if frac := float64(twoColorRuns) / runs; frac < 0.7 {
		t.Errorf("greedy 2-colored only %.0f%% of runs, want ≈ 1 - O(1/n)", 100*frac)
	}

	// Part 2: the blow-up maintainer stays proper on the same graph.
	m := mustNew(t, 5, n)
	if _, err := m.ApplyAll(workload.BipartiteMinusMatching(n)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if used := m.ColorsUsed(); used < 2 || used > n {
		t.Errorf("blow-up colors used = %d, want within [2, Δ+1]", used)
	}
}

func TestPaletteAccessorAndColors(t *testing.T) {
	m := mustNew(t, 6, 5)
	if m.Palette() != 5 {
		t.Errorf("Palette = %d", m.Palette())
	}
	if _, err := m.ApplyAll(workload.Path(4)); err != nil {
		t.Fatal(err)
	}
	colors := m.Colors()
	if len(colors) != 4 {
		t.Fatalf("Colors = %v", colors)
	}
	for v, c := range colors {
		if c != m.ColorOf(v) {
			t.Errorf("Colors[%d] = %d != ColorOf %d", v, c, m.ColorOf(v))
		}
	}
	if m.ColorOf(99) != 0 {
		t.Error("absent node has a color")
	}
}

func TestColoringEdgeDeleteAbsentRejected(t *testing.T) {
	m := mustNew(t, 7, 4)
	if _, err := m.ApplyAll(workload.Path(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, 0, 2)); err == nil {
		t.Error("deleting an absent edge accepted")
	}
	if _, err := m.Apply(graph.Change{Kind: graph.ChangeKind(50)}); err == nil {
		t.Error("unknown change kind accepted")
	}
}

func TestColoringAbruptNodeDelete(t *testing.T) {
	m := mustNew(t, 8, 4)
	if _, err := m.ApplyAll(workload.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Graph().HasNode(1) {
		t.Error("node survived abrupt delete")
	}
}
