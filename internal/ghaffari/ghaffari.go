// Package ghaffari implements the degree-adaptive randomized distributed
// MIS algorithm of Ghaffari (SODA 2016, arXiv:1506.05093), the second
// static baseline the paper cites (§1.2). Each node v keeps a desire
// level p_v, initially 1/2. In every two-round phase:
//
//   - v marks itself with probability p_v and broadcasts the mark together
//     with p_v;
//   - a marked node with no marked neighbor joins the MIS; MIS nodes and
//     their neighbors announce and retire;
//   - v computes its effective degree d(v) = Σ_{live u ∈ N(v)} p_u and
//     halves p_v if d(v) ≥ 2, otherwise doubles it (capping at 1/2).
//
// The local complexity is O(log deg + poly(log log n)) rounds w.h.p.; as a
// per-change recompute baseline it behaves like Luby's algorithm with a
// degree-sensitive round count.
package ghaffari

import (
	"fmt"
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// markBits is the phase broadcast payload: one mark bit plus the desire
// level (quantized exponent, O(log log) bits; accounted as 8).
const markBits = 1 + 8

// decidedBits is an "I joined"/"I left" announcement.
const decidedBits = 1

// maxPhases caps the run defensively; the algorithm finishes in O(log n)
// phases with high probability.
const maxPhases = 10000

// Result is the outcome of one static run.
type Result struct {
	State      map[graph.NodeID]core.Membership
	Rounds     int
	Broadcasts int
	Bits       int
}

// Run executes Ghaffari's algorithm on g, drawing randomness from rng.
func Run(g *graph.Graph, rng *rand.Rand) (Result, error) {
	res := Result{State: make(map[graph.NodeID]core.Membership, g.NodeCount())}
	live := make(map[graph.NodeID]bool, g.NodeCount())
	p := make(map[graph.NodeID]float64, g.NodeCount())
	nodes := g.Nodes()
	for _, v := range nodes {
		live[v] = true
		p[v] = 0.5
	}

	for phase := 0; len(live) > 0; phase++ {
		if phase > maxPhases {
			return res, fmt.Errorf("ghaffari: did not finish after %d phases", phase)
		}
		// Round 1: marks (and desire levels) are broadcast by all live
		// nodes.
		res.Rounds++
		res.Broadcasts += len(live)
		res.Bits += len(live) * markBits
		marked := make(map[graph.NodeID]bool, len(live))
		for _, v := range nodes {
			if live[v] && rng.Float64() < p[v] {
				marked[v] = true
			}
		}

		// Marked nodes with no marked live neighbor join the MIS.
		var joined []graph.NodeID
		for _, v := range nodes {
			if !marked[v] {
				continue
			}
			lonely := true
			g.EachNeighbor(v, func(u graph.NodeID) {
				if live[u] && marked[u] {
					lonely = false
				}
			})
			if lonely {
				joined = append(joined, v)
			}
		}

		// Round 2: winners and their neighbors announce and retire.
		res.Rounds++
		for _, v := range joined {
			if !live[v] {
				continue // already retired as a neighbor of an earlier winner
			}
			res.State[v] = core.In
			delete(live, v)
			res.Broadcasts++
			res.Bits += decidedBits
			g.EachNeighbor(v, func(u graph.NodeID) {
				if live[u] {
					res.State[u] = core.Out
					delete(live, u)
					res.Broadcasts++
					res.Bits += decidedBits
				}
			})
		}

		// Desire-level update from the broadcast values.
		for _, v := range nodes {
			if !live[v] {
				continue
			}
			d := 0.0
			g.EachNeighbor(v, func(u graph.NodeID) {
				if live[u] {
					d += p[u]
				}
			})
			if d >= 2 {
				p[v] /= 2
			} else {
				p[v] = min(2*p[v], 0.5)
			}
		}
	}
	return res, nil
}

// Maintainer is the static-recompute dynamic baseline over Ghaffari's
// algorithm, mirroring luby.Maintainer.
type Maintainer struct {
	g     *graph.Graph
	rng   *rand.Rand
	state map[graph.NodeID]core.Membership
}

// NewMaintainer returns a baseline maintainer over an empty graph.
func NewMaintainer(seed uint64) *Maintainer {
	return &Maintainer{
		g:     graph.New(),
		rng:   rand.New(rand.NewPCG(seed, seed^0x5ca1ab1e)),
		state: make(map[graph.NodeID]core.Membership),
	}
}

// Graph exposes the maintained topology (read-only for callers).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// InMIS reports whether v is in the current MIS.
func (m *Maintainer) InMIS(v graph.NodeID) bool { return m.state[v] == core.In }

// MIS returns the sorted current MIS.
func (m *Maintainer) MIS() []graph.NodeID { return core.MISOf(m.state) }

// Apply applies the change and recomputes the MIS from scratch.
func (m *Maintainer) Apply(c graph.Change) (core.Report, error) {
	if err := c.Apply(m.g); err != nil {
		return core.Report{}, err
	}
	before := m.state
	res, err := Run(m.g, m.rng)
	if err != nil {
		return core.Report{}, err
	}
	m.state = res.State
	rep := core.Report{
		Rounds:      res.Rounds,
		Broadcasts:  res.Broadcasts,
		Bits:        res.Bits,
		Adjustments: len(core.DiffStates(before, res.State)),
	}
	rep.SSize = rep.Adjustments
	return rep, nil
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (m *Maintainer) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := m.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Check verifies that the current state is a valid MIS.
func (m *Maintainer) Check() error { return core.CheckMIS(m.g, m.state) }
