package ghaffari

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestRunProducesValidMIS(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 15; trial++ {
		g := workload.BuildGraph(workload.GNP(rng, 80, 0.08))
		res, err := Run(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.CheckMIS(g, res.State); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRunDenseAndSparse(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for _, p := range []float64{0.0, 0.3, 0.9} {
		g := workload.BuildGraph(workload.GNP(rng, 50, p))
		res, err := Run(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.CheckMIS(g, res.State); err != nil {
			t.Fatalf("p=%.1f: %v", p, err)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(graph.New(), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.State) != 0 {
		t.Errorf("empty run = %+v", res)
	}
}

func TestMaintainer(t *testing.T) {
	m := NewMaintainer(3)
	rng := rand.New(rand.NewPCG(4, 4))
	if _, err := m.ApplyAll(workload.GNP(rng, 30, 0.15)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Apply(graph.NodeChange(graph.NodeInsert, 1000, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Broadcasts < m.Graph().NodeCount() {
		t.Errorf("broadcasts = %d, want ≥ n (full recompute)", rep.Broadcasts)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if len(m.MIS()) == 0 || m.InMIS(graph.None) {
		t.Error("MIS accessors inconsistent")
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, 1000)); err == nil {
		t.Error("duplicate insert should fail")
	}
}
