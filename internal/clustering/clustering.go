// Package clustering implements correlation clustering on top of the
// dynamic MIS, following Ailon, Charikar and Newman's random-greedy pivot
// scheme that the paper inherits (§1.1): every MIS node is a cluster
// center, and every other node joins the cluster of its earliest (in π)
// MIS neighbor. Because the dynamic MIS simulates random greedy, the
// maintained clustering is a 3-approximation to the optimal correlation
// clustering in expectation.
package clustering

import (
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Cost is the correlation clustering objective: the number of
// disagreements, i.e. non-adjacent pairs placed in the same cluster plus
// adjacent pairs placed in different clusters.
func Cost(g *graph.Graph, cluster map[graph.NodeID]graph.NodeID) int {
	size := make(map[graph.NodeID]int)
	for _, head := range cluster {
		size[head]++
	}
	intraPairs := 0
	for _, s := range size {
		intraPairs += s * (s - 1) / 2
	}
	intraEdges := 0
	m := 0
	for _, e := range g.Edges() {
		m++
		if cluster[e[0]] == cluster[e[1]] {
			intraEdges++
		}
	}
	// Missing intra-cluster edges plus present inter-cluster edges.
	return (intraPairs - intraEdges) + (m - intraEdges)
}

// Maintainer keeps a correlation clustering under topology changes by
// maintaining the random-greedy MIS and deriving pivots from it. It is
// generic over the MIS backend: any core.Engine works, because the pivot
// rule reads only the maintained graph, order and memberships.
type Maintainer struct {
	eng core.Engine
}

// New returns a template-backed maintainer over an empty graph.
func New(seed uint64) *Maintainer {
	return NewWithEngine(core.NewTemplate(seed))
}

// NewWithOrder returns a template-backed maintainer sharing a
// caller-supplied order.
func NewWithOrder(ord *order.Order) *Maintainer {
	return NewWithEngine(core.NewTemplateWithOrder(ord))
}

// NewWithEngine returns a maintainer deriving its clustering from the
// given MIS engine, which must be empty.
func NewWithEngine(e core.Engine) *Maintainer {
	return &Maintainer{eng: e}
}

// Graph exposes the maintained topology (read-only for callers).
func (m *Maintainer) Graph() *graph.Graph { return m.eng.Graph() }

// Order exposes the node order.
func (m *Maintainer) Order() *order.Order { return m.eng.Order() }

// Report extends the MIS cost report with the clustering-level adjustment
// count: the number of nodes whose cluster head changed.
type Report struct {
	core.Report
	// ClusterAdjustments counts nodes whose cluster assignment changed.
	// A single MIS adjustment can re-home a whole cluster, so this can
	// exceed Report.Adjustments.
	ClusterAdjustments int
}

// Apply performs one topology change and returns the combined report.
func (m *Maintainer) Apply(c graph.Change) (Report, error) {
	before := m.Clusters()
	rep, err := m.eng.Apply(c)
	if err != nil {
		return Report{}, err
	}
	after := m.Clusters()
	changed := 0
	for v, h := range after {
		if bh, ok := before[v]; !ok || bh != h {
			changed++
		}
	}
	for v := range before {
		if _, ok := after[v]; !ok {
			changed++
		}
	}
	return Report{Report: rep, ClusterAdjustments: changed}, nil
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (m *Maintainer) ApplyAll(cs []graph.Change) (Report, error) {
	var total Report
	for i, c := range cs {
		rep, err := m.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Report.Add(rep.Report)
		total.ClusterAdjustments += rep.ClusterAdjustments
	}
	return total, nil
}

// Clusters returns the current assignment: node -> cluster head (an MIS
// node; heads map to themselves).
func (m *Maintainer) Clusters() map[graph.NodeID]graph.NodeID {
	return core.GreedyClusters(m.eng.Graph(), m.eng.Order(), m.eng.State())
}

// Cost returns the current correlation clustering objective value.
func (m *Maintainer) Cost() int { return Cost(m.eng.Graph(), m.Clusters()) }

// Check verifies the underlying MIS invariant and the pivot structure.
func (m *Maintainer) Check() error {
	if err := m.eng.Check(); err != nil {
		return err
	}
	state := m.eng.State()
	g := m.eng.Graph()
	for v, head := range m.Clusters() {
		if state[head] != core.In {
			return fmt.Errorf("clustering: head %d of node %d not in MIS", head, v)
		}
		if v != head && !g.HasEdge(v, head) {
			return fmt.Errorf("clustering: node %d not adjacent to head %d", v, head)
		}
	}
	return nil
}
