package clustering

import (
	"fmt"

	"dynmis/internal/graph"
)

// MaxOptimalNodes bounds the brute-force optimum: Bell(11) partitions is
// already ~678k, so we stop at 11 nodes.
const MaxOptimalNodes = 11

// OptimalCost computes the exact optimal correlation clustering cost of g
// by enumerating all set partitions (restricted growth strings). It is the
// ground truth for the 3-approximation experiment (E9) and only works for
// small graphs.
func OptimalCost(g *graph.Graph) (int, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n > MaxOptimalNodes {
		return 0, fmt.Errorf("clustering: OptimalCost limited to %d nodes, got %d", MaxOptimalNodes, n)
	}
	if n == 0 {
		return 0, nil
	}

	idx := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		a, b := idx[e[0]], idx[e[1]]
		adj[a][b] = true
		adj[b][a] = true
	}

	cost := func(assign []int) int {
		c := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same := assign[i] == assign[j]
				if same && !adj[i][j] {
					c++
				}
				if !same && adj[i][j] {
					c++
				}
			}
		}
		return c
	}

	best := -1
	assign := make([]int, n)
	maxSoFar := make([]int, n) // maxSoFar[i] = max(assign[0..i-1])

	// Iterate restricted growth strings: assign[0] = 0 and
	// assign[i] ≤ max(assign[0..i-1]) + 1.
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if c := cost(assign); best < 0 || c < best {
				best = c
			}
			return
		}
		limit := 0
		if i > 0 {
			limit = maxSoFar[i-1] + 1
		}
		for b := 0; b <= limit; b++ {
			assign[i] = b
			if i == 0 {
				maxSoFar[0] = 0
			} else {
				maxSoFar[i] = maxSoFar[i-1]
				if b > maxSoFar[i] {
					maxSoFar[i] = b
				}
			}
			rec(i + 1)
		}
	}
	rec(0)
	return best, nil
}
