package clustering

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestCostTriangleOneCluster(t *testing.T) {
	g := workload.BuildGraph(workload.Cycle(3))
	all := map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0}
	if c := Cost(g, all); c != 0 {
		t.Errorf("triangle in one cluster: cost = %d, want 0", c)
	}
	split := map[graph.NodeID]graph.NodeID{0: 0, 1: 1, 2: 2}
	if c := Cost(g, split); c != 3 {
		t.Errorf("triangle in singletons: cost = %d, want 3 (all edges cut)", c)
	}
}

func TestCostPath(t *testing.T) {
	// Path 0-1-2: one cluster costs 1 (missing edge 0-2); singletons
	// cost 2 (both edges cut); {0,1},{2} costs 1.
	g := workload.BuildGraph(workload.Path(3))
	if c := Cost(g, map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0}); c != 1 {
		t.Errorf("one cluster: %d, want 1", c)
	}
	if c := Cost(g, map[graph.NodeID]graph.NodeID{0: 0, 1: 1, 2: 2}); c != 2 {
		t.Errorf("singletons: %d, want 2", c)
	}
	if c := Cost(g, map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 2}); c != 1 {
		t.Errorf("pair+single: %d, want 1", c)
	}
}

func TestOptimalCostSmall(t *testing.T) {
	// Triangle: optimum is a single cluster with cost 0.
	g := workload.BuildGraph(workload.Cycle(3))
	opt, err := OptimalCost(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 0 {
		t.Errorf("triangle optimum = %d, want 0", opt)
	}
	// Path 0-1-2: optimum cost 1.
	p := workload.BuildGraph(workload.Path(3))
	opt, err = OptimalCost(p)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("path optimum = %d, want 1", opt)
	}
	// Empty graph.
	opt, err = OptimalCost(graph.New())
	if err != nil || opt != 0 {
		t.Errorf("empty optimum = %d, %v", opt, err)
	}
}

func TestOptimalCostTooLarge(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := workload.BuildGraph(workload.GNP(rng, MaxOptimalNodes+1, 0.5))
	if _, err := OptimalCost(g); err == nil {
		t.Error("expected size-limit error")
	}
}

// TestThreeApproximation measures the random-greedy pivot cost against the
// brute-force optimum on many small random graphs. The guarantee is
// E[cost] ≤ 3·OPT; averaging over trials per graph must come in well under
// the bound, and no mean may exceed it meaningfully.
func TestThreeApproximation(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	for trial := 0; trial < 12; trial++ {
		cs := workload.GNP(rng, 8, 0.35)
		g := workload.BuildGraph(cs)
		opt, err := OptimalCost(g)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		const runs = 40
		for r := 0; r < runs; r++ {
			m := New(uint64(trial*1000 + r))
			if _, err := m.ApplyAll(cs); err != nil {
				t.Fatal(err)
			}
			total += float64(m.Cost())
		}
		mean := total / runs
		if opt == 0 {
			// A perfect clustering exists; random greedy may still
			// miss it, but only by a little on 8 nodes.
			if mean > 4 {
				t.Errorf("trial %d: OPT=0 but mean cost %.2f", trial, mean)
			}
			continue
		}
		if mean > 3.0*float64(opt)*1.15 { // 15% sampling slack
			t.Errorf("trial %d: mean cost %.2f exceeds 3·OPT=%d", trial, mean, 3*opt)
		}
	}
}

func TestMaintainerDynamic(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	m := New(99)
	if _, err := m.ApplyAll(workload.GNP(rng, 40, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	for _, c := range workload.RandomChurn(rng, m.Graph(), workload.DefaultChurn(150)) {
		rep, err := m.Apply(c)
		if err != nil {
			t.Fatalf("Apply(%s): %v", c, err)
		}
		if rep.ClusterAdjustments < rep.Adjustments-1 {
			// Every MIS adjustment re-homes at least the node
			// itself (heads map to themselves), except a deleted
			// node which vanishes from both maps.
			t.Errorf("cluster adjustments %d ≪ MIS adjustments %d", rep.ClusterAdjustments, rep.Adjustments)
		}
		if err := m.Check(); err != nil {
			t.Fatalf("after %s: %v", c, err)
		}
	}
}

func TestMaintainerInvalid(t *testing.T) {
	m := New(1)
	if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2)); err == nil {
		t.Error("expected validation error")
	}
}
