package guptakhan

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/indep/indeptest"
	"dynmis/metrics"
	"dynmis/workload"
)

// checkAll runs the engine's full invariant stack plus the
// band-certificate oracle: the engine's MIS must equal the sequential
// greedy MIS under its own (band) order — the property the facade's
// Verify and cmd/validate rely on.
func checkAll(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("band certificate broken:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

// TestGuptaKhanDifferential drives the engine and the from-scratch
// reference model (internal/indep/indeptest) through the same random
// churn stream and demands identical states after every change.
func TestGuptaKhanDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	e := New(1)
	m := indeptest.New(indeptest.GuptaKhanRules())
	for i, c := range workload.GNP(rng, 60, 0.08) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("build change %d: %v", i, err)
		}
		m.Apply(c)
	}
	if !core.EqualStates(e.State(), m.State()) {
		t.Fatal("states diverged after build")
	}
	for i, c := range workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(600)) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("change %d (%s): %v", i, c, err)
		}
		m.Apply(c)
		if !core.EqualStates(e.State(), m.State()) {
			t.Fatalf("change %d (%s): engine %v, model %v",
				i, c, core.MISOf(e.State()), core.MISOf(m.State()))
		}
		if i%25 == 0 {
			checkAll(t, e)
		}
	}
	checkAll(t, e)
}

// TestGuptaKhanBatchDifferential does the same through ApplyBatch
// windows: the model stages the same window and settles once, so the
// batched engine must match it exactly too.
func TestGuptaKhanBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	e := New(1)
	m := indeptest.New(indeptest.GuptaKhanRules())
	build := workload.GNP(rng, 50, 0.1)
	if _, err := e.ApplyBatch(build); err != nil {
		t.Fatal(err)
	}
	m.ApplyBatch(build)
	if !core.EqualStates(e.State(), m.State()) {
		t.Fatal("states diverged after batched build")
	}
	churn := workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(400))
	const window = 8
	for lo := 0; lo < len(churn); lo += window {
		batch := churn[lo:min(lo+window, len(churn))]
		if _, err := e.ApplyBatch(batch); err != nil {
			t.Fatalf("batch at %d: %v", lo, err)
		}
		m.ApplyBatch(batch)
		if !core.EqualStates(e.State(), m.State()) {
			t.Fatalf("batch at %d: engine and model diverged", lo)
		}
		checkAll(t, e)
	}
}

// TestGuptaKhanEviction pins the deterministic tie-break: inserting an
// edge between two MIS members evicts the larger ID, and the eviction's
// uncovered neighbors rejoin smallest-ID first.
func TestGuptaKhanEviction(t *testing.T) {
	e := New(1)
	mustApply := func(c graph.Change) {
		t.Helper()
		if _, err := e.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(graph.NodeChange(graph.NodeInsert, 1))
	mustApply(graph.NodeChange(graph.NodeInsert, 2))
	if len(e.MIS()) != 2 {
		t.Fatalf("isolated nodes must both join, got %v", e.MIS())
	}
	rep, err := e.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if e.InMIS(2) || !e.InMIS(1) {
		t.Fatalf("evicting the larger ID should leave MIS={1}, got %v", e.MIS())
	}
	if rep.Adjustments != 1 || rep.Flips != 1 {
		t.Fatalf("eviction must report one adjustment and one flip, got %+v", rep)
	}
	checkAll(t, e)
}

// TestGuptaKhanDivergesFromPi documents that this is genuinely a
// different algorithm: after a member's deletion, greedy-over-π may
// promote a π-early neighbor chain, whereas Gupta–Khan promotes only
// vertices the deletion uncovered. On a path 1–2–3 with MIS {1,3},
// deleting 1 changes nothing here (2 is still blocked by 3), while the
// paper's engines may flip 2 in if π(2) < π(3).
func TestGuptaKhanDivergesFromPi(t *testing.T) {
	e := New(1)
	if _, err := e.ApplyAll(workload.Path(3)); err != nil {
		t.Fatal(err)
	}
	// Path(3) inserts 0,1,2 with edges 0–1, 1–2: settle order 0 first,
	// then 2 (1 is blocked): MIS {0,2}.
	if got := e.MIS(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("expected MIS {0,2} on the path, got %v", got)
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 0)); err != nil {
		t.Fatal(err)
	}
	// 1 is still covered by 2 — no flip, unlike a π order with π(1)<π(2).
	if got := e.MIS(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("deletion must not flip covered vertex 1, got %v", got)
	}
	checkAll(t, e)
}

// TestGuptaKhanPrefixRecovery exercises the mid-batch error contract:
// the staged prefix stays applied, the settle pass restores the
// invariant, and the published feed delta folds to the engine's state.
func TestGuptaKhanPrefixRecovery(t *testing.T) {
	e := New(1)
	if _, err := e.ApplyAll(workload.Cycle(6)); err != nil {
		t.Fatal(err)
	}
	var evs []core.Event
	e.Subscribe(func(ev core.Event) { evs = append(evs, ev) })
	before := e.State()

	batch := []graph.Change{
		graph.NodeChange(graph.NodeDeleteAbrupt, 0), // valid: may uncover neighbors
		graph.EdgeChange(graph.EdgeInsert, 2, 3),    // invalid: edge exists
		graph.NodeChange(graph.NodeDeleteAbrupt, 4), // must never be staged
	}
	_, err := e.ApplyBatch(batch)
	if !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("want ErrInvalidChange, got %v", err)
	}
	if e.Graph().HasNode(0) {
		t.Fatal("staged prefix (delete 0) was rolled back")
	}
	if !e.Graph().HasNode(4) {
		t.Fatal("suffix after the failing change was applied")
	}
	checkAll(t, e)

	// The prefix's feed delta was published before the error returned.
	after := make(map[graph.NodeID]core.Membership, len(before))
	for v, m := range before {
		after[v] = m
	}
	for _, ev := range evs {
		if ev.Cause == core.CauseLeave {
			delete(after, ev.Node)
		} else {
			after[ev.Node] = ev.To
		}
	}
	if !core.EqualStates(after, e.State()) {
		t.Fatalf("prefix feed delta does not fold to the engine state:\nfold %v\nhave %v", after, e.State())
	}
}

// TestGuptaKhanRecycleReinsert deletes and re-inserts IDs so arena
// slots are recycled, checking that no stale blocker count or band
// priority survives the recycling.
func TestGuptaKhanRecycleReinsert(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	e := New(1)
	if _, err := e.ApplyAll(workload.GNP(rng, 30, 0.15)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		// Delete a third of the nodes, then re-insert them with fresh
		// random attachments: their slots are recycled.
		nodes := e.Graph().Nodes()
		var deleted []graph.NodeID
		for i, v := range nodes {
			if i%3 == round%3 {
				if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, v)); err != nil {
					t.Fatal(err)
				}
				deleted = append(deleted, v)
			}
		}
		for _, v := range deleted {
			alive := e.Graph().Nodes()
			var nbrs []graph.NodeID
			for _, u := range alive {
				if len(nbrs) < 3 && rng.IntN(4) == 0 {
					nbrs = append(nbrs, u)
				}
			}
			if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...)); err != nil {
				t.Fatal(err)
			}
		}
		checkAll(t, e)
	}
}

// TestGuptaKhanFeedAndMetrics folds the whole event stream back into a
// state map and checks the instrumentation counters account every
// successful window.
func TestGuptaKhanFeedAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	e := New(1)
	coll := metrics.NewCollector()
	e.Instrument(coll)
	var evs []core.Event
	e.Subscribe(func(ev core.Event) { evs = append(evs, ev) })

	changes := workload.GNP(rng, 40, 0.1)
	changes = append(changes, workload.RandomChurn(rng, workload.BuildGraph(changes), workload.DefaultChurn(300))...)
	for i, c := range changes {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
	}
	if !core.EqualStates(core.Replay(evs), e.State()) {
		t.Fatal("event stream does not fold back to the engine state")
	}
	snap := coll.Snapshot()
	if snap.Updates != uint64(len(changes)) || snap.Windows != uint64(len(changes)) {
		t.Fatalf("counters miss windows: %+v", snap)
	}
	if snap.Adjustments == 0 || snap.Flips == 0 || snap.TouchedSlots == 0 {
		t.Fatalf("counters not accounted: %+v", snap)
	}
	// Detach and confirm the account freezes.
	e.Instrument(nil)
	if e.Collector() != nil {
		t.Fatal("detach failed")
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, 10_000)); err != nil {
		t.Fatal(err)
	}
	if coll.Snapshot().Updates != snap.Updates {
		t.Fatal("detached collector still accounted")
	}
}

// TestGuptaKhanInvalidChange checks sentinel error wrapping and that a
// rejected single change leaves the engine untouched.
func TestGuptaKhanInvalidChange(t *testing.T) {
	e := New(1)
	if _, err := e.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2)); !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("edge between absent nodes: want ErrInvalidChange, got %v", err)
	}
	if _, err := e.Apply(graph.Change{Kind: graph.ChangeKind(42), Node: 1}); !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("unknown kind: want ErrInvalidChange, got %v", err)
	}
	if e.Graph().NodeCount() != 0 || e.Order().Len() != 0 {
		t.Fatal("rejected changes mutated the engine")
	}
}
