// Package guptakhan implements the dynamic MIS algorithm of Gupta & Khan,
// "Simple dynamic algorithms for Maximal Independent Set and other
// problems" (arXiv:1804.01823), as a drop-in core.Engine backend via the
// shared counter skeleton of internal/indep.
//
// The algorithm (their Theorem 1) maintains, for every vertex, the count
// of its MIS neighbors. An edge update touches two counts; inserting an
// edge between two MIS vertices evicts one endpoint, whose departure may
// uncover O(Δ) neighbors; every uncovered vertex (count zero, not in M)
// is promoted. Each vertex flips O(1) times per update amortized, giving
// O(Δ) amortized update time — the bound cmd/validate's flatness table
// measures as work/update against a constant-degree churn stream.
//
// Gupta–Khan leave both tie-breaks unspecified ("remove v from M",
// "add w to M"); this implementation fixes them deterministically so
// replays are bit-reproducible: the *larger NodeID* endpoint is evicted,
// and uncovered vertices are promoted in ascending NodeID order (a lazy
// min-heap; stale entries are revalidated by the engine on pop).
//
// Their §3 m^{3/4}-time variant for arbitrary (dense) graphs batches
// vertices by degree class and defers high-degree work; it optimizes a
// worst-case regime the repository's workloads (bounded expected degree)
// never enter, so it is deliberately not implemented — the degree-aware
// settle discipline is instead represented by internal/aoss, which is the
// stronger follow-up along exactly that axis.
package guptakhan

import (
	"container/heap"

	"dynmis/internal/graph"
	"dynmis/internal/indep"
)

// Engine is the Gupta–Khan dynamic MIS engine.
type Engine = indep.Engine

// New returns a Gupta–Khan engine over an empty graph. The seed is
// accepted for constructor uniformity with the π engines; the algorithm
// itself is deterministic and draws no random priorities.
func New(seed uint64) *Engine { return indep.New(seed, &policy{}) }

// policy fixes Gupta–Khan's unspecified choices: evict the larger-ID
// endpoint, settle uncovered vertices in ascending ID order.
type policy struct {
	h idHeap
}

func (p *policy) Evict(_ *graph.Graph, u, v graph.NodeID) graph.NodeID {
	if u > v {
		return u
	}
	return v
}

func (p *policy) Offer(_ *graph.Graph, v graph.NodeID) { heap.Push(&p.h, v) }

func (p *policy) Next(_ *graph.Graph) graph.NodeID {
	if p.h.Len() == 0 {
		return graph.None
	}
	return heap.Pop(&p.h).(graph.NodeID)
}

// idHeap is a min-heap of NodeIDs. Duplicates are allowed (a vertex can
// be uncovered, re-covered and uncovered again within one window); the
// engine's revalidation makes extra pops harmless.
type idHeap []graph.NodeID

func (h idHeap) Len() int           { return len(h) }
func (h idHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h idHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *idHeap) Push(x any)        { *h = append(*h, x.(graph.NodeID)) }
func (h *idHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
