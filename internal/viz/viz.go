// Package viz renders maintained structures to Graphviz DOT, the
// debugging companion of cmd/trace: MIS members are filled, protocol
// states are color-coded, cluster assignments become node groups.
package viz

import (
	"fmt"
	"io"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// MISDot writes a DOT rendering of g with MIS members filled.
func MISDot(w io.Writer, g *graph.Graph, state map[graph.NodeID]core.Membership, title string) {
	fmt.Fprintf(w, "graph mis {\n")
	if title != "" {
		fmt.Fprintf(w, "  label=%q;\n", title)
	}
	fmt.Fprintf(w, "  node [shape=circle];\n")
	for _, v := range g.Nodes() {
		if state[v] == core.In {
			fmt.Fprintf(w, "  n%d [label=\"%d\", style=filled, fillcolor=black, fontcolor=white];\n", v, v)
		} else {
			fmt.Fprintf(w, "  n%d [label=\"%d\"];\n", v, v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  n%d -- n%d;\n", e[0], e[1])
	}
	fmt.Fprintf(w, "}\n")
}

// ClustersDot writes a DOT rendering with one subgraph cluster per pivot.
func ClustersDot(w io.Writer, g *graph.Graph, assign map[graph.NodeID]graph.NodeID, title string) {
	fmt.Fprintf(w, "graph clusters {\n")
	if title != "" {
		fmt.Fprintf(w, "  label=%q;\n", title)
	}
	byHead := map[graph.NodeID][]graph.NodeID{}
	for v, h := range assign {
		byHead[h] = append(byHead[h], v)
	}
	heads := make([]graph.NodeID, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	slices.Sort(heads)
	for _, h := range heads {
		members := byHead[h]
		slices.Sort(members)
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=\"pivot %d\";\n", h, h)
		for _, v := range members {
			if v == h {
				fmt.Fprintf(w, "    n%d [label=\"%d\", style=filled];\n", v, v)
			} else {
				fmt.Fprintf(w, "    n%d [label=\"%d\"];\n", v, v)
			}
		}
		fmt.Fprintf(w, "  }\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  n%d -- n%d;\n", e[0], e[1])
	}
	fmt.Fprintf(w, "}\n")
}
