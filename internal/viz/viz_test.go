package viz

import (
	"strings"
	"testing"

	"dynmis/internal/core"
	"dynmis/workload"
)

func TestMISDot(t *testing.T) {
	eng := core.NewTemplate(1)
	if _, err := eng.ApplyAll(workload.Path(4)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	MISDot(&sb, eng.Graph(), eng.State(), "demo")
	out := sb.String()
	for _, want := range []string{"graph mis {", `label="demo"`, "n0 -- n1", "fillcolor=black", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Every node appears, filled count equals the MIS size.
	if got := strings.Count(out, "fillcolor=black"); got != len(eng.MIS()) {
		t.Errorf("filled nodes %d != |MIS| %d", got, len(eng.MIS()))
	}
}

func TestClustersDot(t *testing.T) {
	eng := core.NewTemplate(2)
	if _, err := eng.ApplyAll(workload.Star(5)); err != nil {
		t.Fatal(err)
	}
	assign := core.GreedyClusters(eng.Graph(), eng.Order(), eng.State())
	var sb strings.Builder
	ClustersDot(&sb, eng.Graph(), assign, "clusters")
	out := sb.String()
	if !strings.Contains(out, "subgraph cluster_") {
		t.Errorf("no cluster subgraphs:\n%s", out)
	}
	heads := map[any]bool{}
	for _, h := range assign {
		heads[h] = true
	}
	if got := strings.Count(out, "subgraph cluster_"); got != len(heads) {
		t.Errorf("cluster count %d != pivot count %d", got, len(heads))
	}
}
