// Package order implements the uniformly random node order π of the paper
// (§3): every node v draws an independent uniform priority ℓ_v on
// insertion, and π orders nodes by increasing priority. Ties — which occur
// with negligible probability for 64-bit priorities — are broken by node ID
// so that the order is always total and deterministic given the seed.
//
// The priority table (a map) is the source of truth: it survives a node's
// absence from any particular graph (muted nodes keep their priority). For
// the cascade hot path, an Order additionally writes every priority through
// into the dense priority lane of each attached graph arena (Attach), so
// engines compare π positions with graph.LessAt — two array reads — instead
// of two map lookups.
package order

import (
	"math/rand/v2"

	"dynmis/internal/graph"
)

// Priority is the random label ℓ_v of a node; smaller means earlier in π,
// i.e. stronger (a node joins the MIS iff no earlier neighbor is in it).
type Priority uint64

// Order assigns and remembers priorities. The zero value is not usable;
// call New.
type Order struct {
	rng    *rand.Rand
	draws  uint64
	prio   map[graph.NodeID]Priority
	arenas []*graph.Graph
}

// New returns an Order drawing priorities from a PCG stream seeded with
// seed. Two Orders with the same seed and the same Ensure call sequence
// assign identical priorities.
func New(seed uint64) *Order {
	return &Order{
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		prio: make(map[graph.NodeID]Priority),
	}
}

// Attach registers g's arena for priority write-through: every priority this
// Order knows — now (backfill) or in the future (Ensure, Set) — is mirrored
// into g's dense priority lane for the slots of nodes present in g. Engines
// attach their graph at construction; an Order may be attached to several
// arenas (differential tests share one π across engines). Attaching the
// same graph twice is a no-op.
func (o *Order) Attach(g *graph.Graph) {
	for _, a := range o.arenas {
		if a == g {
			return
		}
	}
	o.arenas = append(o.arenas, g)
	for i := range g.Slots() {
		if v := g.IDAt(i); v != graph.None {
			if p, ok := o.prio[v]; ok {
				g.SetPrioAt(i, uint64(p))
			}
		}
	}
}

// sync mirrors v's priority into every attached arena where v currently
// occupies a slot. Arenas where v is absent are skipped: their slot will be
// filled by the Ensure that accompanies v's insertion there.
func (o *Order) sync(v graph.NodeID, p Priority) {
	for _, g := range o.arenas {
		if i, ok := g.Index(v); ok {
			g.SetPrioAt(i, uint64(p))
		}
	}
}

// Ensure returns v's priority, drawing a fresh one if v has none yet, and
// writes it through to the attached arenas. Engines call Ensure after the
// node is present in their graph, so the arena lane is filled in the same
// step (see core.StageChange).
func (o *Order) Ensure(v graph.NodeID) Priority {
	p, ok := o.prio[v]
	if !ok {
		p = Priority(o.rng.Uint64())
		o.draws++
		o.prio[v] = p
	}
	o.sync(v, p)
	return p
}

// Draws returns how many fresh priorities this Order has drawn from its
// stream. Together with the seed it names the exact stream position, so a
// restored Order can be advanced with Skip to where the original stood —
// the durability layer persists it next to each snapshot.
func (o *Order) Draws() uint64 { return o.draws }

// Skip burns n draws from the priority stream without assigning them.
// Skipping the Draws() of a same-seed Order reproduces its stream
// position exactly: every later Ensure draws the same priority the
// original Order would have drawn.
func (o *Order) Skip(n uint64) {
	for range n {
		o.rng.Uint64()
	}
	o.draws += n
}

// Set forces v's priority. It is intended for tests and for adversarial
// constructions that need a specific order.
func (o *Order) Set(v graph.NodeID, p Priority) {
	o.prio[v] = p
	o.sync(v, p)
}

// Priority returns v's priority if assigned.
func (o *Order) Priority(v graph.NodeID) (Priority, bool) {
	p, ok := o.prio[v]
	return p, ok
}

// Drop forgets v's priority (used when a node is deleted for good; a muted
// node keeps its priority). Arena lanes need no cleanup: the graph zeroes a
// slot's lanes when it is freed or reallocated.
func (o *Order) Drop(v graph.NodeID) { delete(o.prio, v) }

// Less reports whether π(u) < π(v). Both nodes must have priorities; absent
// nodes compare by ID only, which keeps Less total for defensive callers.
func (o *Order) Less(u, v graph.NodeID) bool {
	pu, pv := o.prio[u], o.prio[v]
	if pu != pv {
		return pu < pv
	}
	return u < v
}

// Len returns the number of assigned priorities.
func (o *Order) Len() int { return len(o.prio) }

// MemBytes estimates the priority table's retained footprint: 16
// payload bytes per entry (NodeID key, uint64 priority) plus bucket
// metadata and load-factor slack amortized to half the payload again —
// deterministic in the entry count, so engines can fold it into their
// committed memory profiles (core.MemoryReporter).
func (o *Order) MemBytes() int64 { return int64(len(o.prio)) * 24 }

// Snapshot returns a copy of the priority table (for oracles and engines
// that must evaluate the same π on a different graph).
func (o *Order) Snapshot() map[graph.NodeID]Priority {
	out := make(map[graph.NodeID]Priority, len(o.prio))
	for v, p := range o.prio {
		out[v] = p
	}
	return out
}

// Less compares (p, u) against (q, v) with ID tie-break; it is the pure
// function underlying Order.Less so that snapshots can be compared without
// an Order instance.
func Less(p Priority, u graph.NodeID, q Priority, v graph.NodeID) bool {
	if p != q {
		return p < q
	}
	return u < v
}
