package order

import (
	"math"
	"testing"

	"dynmis/internal/graph"
)

func TestEnsureIsStable(t *testing.T) {
	o := New(7)
	p1 := o.Ensure(42)
	p2 := o.Ensure(42)
	if p1 != p2 {
		t.Fatalf("Ensure not idempotent: %d then %d", p1, p2)
	}
	if got, ok := o.Priority(42); !ok || got != p1 {
		t.Fatalf("Priority(42) = (%d,%v), want (%d,true)", got, ok, p1)
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	a, b := New(123), New(123)
	for v := graph.NodeID(0); v < 100; v++ {
		if a.Ensure(v) != b.Ensure(v) {
			t.Fatalf("same seed diverged at node %d", v)
		}
	}
	c := New(124)
	diff := 0
	for v := graph.NodeID(0); v < 100; v++ {
		if a.Ensure(v) != c.Ensure(v) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical priorities")
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	o := New(5)
	var ids []graph.NodeID
	for v := graph.NodeID(0); v < 50; v++ {
		o.Ensure(v)
		ids = append(ids, v)
	}
	for _, u := range ids {
		if o.Less(u, u) {
			t.Fatalf("Less(%d,%d) = true (irreflexivity)", u, u)
		}
		for _, v := range ids {
			if u == v {
				continue
			}
			if o.Less(u, v) == o.Less(v, u) {
				t.Fatalf("Less not antisymmetric for %d,%d", u, v)
			}
			for _, w := range ids[:10] {
				if w == u || w == v {
					continue
				}
				if o.Less(u, v) && o.Less(v, w) && !o.Less(u, w) {
					t.Fatalf("Less not transitive for %d,%d,%d", u, v, w)
				}
			}
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	o := New(1)
	o.Set(10, 500)
	o.Set(20, 500)
	if !o.Less(10, 20) || o.Less(20, 10) {
		t.Error("equal priorities must tie-break by smaller ID first")
	}
	if !Less(500, 10, 500, 20) {
		t.Error("package-level Less tie-break incorrect")
	}
	if Less(600, 1, 500, 2) {
		t.Error("package-level Less priority comparison incorrect")
	}
}

func TestDropForgetsPriority(t *testing.T) {
	o := New(9)
	p := o.Ensure(3)
	o.Drop(3)
	if _, ok := o.Priority(3); ok {
		t.Fatal("priority survived Drop")
	}
	// A re-inserted node draws a fresh value (it is a new node).
	if o.Ensure(3) == p {
		t.Log("note: redraw collided with previous value (possible but astronomically unlikely)")
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d, want 1", o.Len())
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	o := New(2)
	o.Ensure(1)
	snap := o.Snapshot()
	snap[1] = 0
	if p, _ := o.Priority(1); p == 0 && snap[1] == 0 {
		// p could legitimately be 0 with probability 2^-64; distinguish
		// by mutating again.
		o.Set(1, 77)
		if snap[1] == 77 {
			t.Error("Snapshot aliases internal map")
		}
	}
}

// TestUniformity sanity-checks that priorities look uniform: the mean of
// many draws should be near 2^63.
func TestUniformity(t *testing.T) {
	o := New(42)
	const n = 20000
	var sum float64
	for v := graph.NodeID(0); v < n; v++ {
		sum += float64(o.Ensure(v))
	}
	mean := sum / n
	center := math.Exp2(63)
	if math.Abs(mean-center)/center > 0.02 {
		t.Errorf("mean priority %.3g deviates from 2^63 by more than 2%%", mean)
	}
}
