package seqdyn

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/workload"
)

func checkOracle(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("seqdyn diverged from greedy oracle:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

func TestSeqdynBasics(t *testing.T) {
	e := New(1)
	if _, err := e.ApplyAll(workload.Path(6)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 0)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	if _, err := e.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 3)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	if _, err := e.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 4)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
}

func TestSeqdynRandomChurnDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	e := New(300)
	if _, err := e.ApplyAll(workload.GNP(rng, 60, 0.08)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	for i, c := range workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(500)) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("change %d (%s): %v", i, c, err)
		}
		if i%20 == 0 {
			checkOracle(t, e)
		}
	}
	checkOracle(t, e)
}

// TestSeqdynMatchesTemplateAdjustments: the sequential structure flips
// each node at most once per update, so its adjustment count must equal
// the template's (both count nodes whose final output changed).
func TestSeqdynMatchesTemplateAdjustments(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	// Separate but identically seeded orders: both engines Ensure nodes
	// in the same sequence, so they see the same π. (They cannot share
	// one live Order because each engine Drops priorities on deletion.)
	tpl := core.NewTemplateWithOrder(order.New(88))
	seq := NewWithOrder(order.New(88))

	build := workload.GNP(rng, 50, 0.1)
	if _, err := tpl.ApplyAll(build); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.ApplyAll(build); err != nil {
		t.Fatal(err)
	}
	for i, c := range workload.RandomChurn(rng, tpl.Graph(), workload.DefaultChurn(300)) {
		tr, err := tpl.Apply(c)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := seq.Apply(c)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Adjustments != sr.Adjustments {
			t.Fatalf("change %d (%s): template adj %d, seqdyn adj %d", i, c, tr.Adjustments, sr.Adjustments)
		}
		// The sequential structure never flips a node twice, so its
		// adjustment count is also its flip count — at most the
		// distributed |S|.
		if sr.Adjustments > tr.SSize {
			t.Fatalf("change %d: seqdyn flipped %d nodes, more than |S| = %d", i, sr.Adjustments, tr.SSize)
		}
		if !core.EqualStates(tpl.State(), seq.State()) {
			t.Fatalf("change %d: states diverged", i)
		}
	}
}

// TestSeqdynWorkScalesWithDegreeNotSize: the per-update work is
// O(deg(v*) + Σ_{flipped} deg), independent of n.
func TestSeqdynWorkScalesWithDegreeNotSize(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical")
	}
	meanWork := func(n int) float64 {
		rng := rand.New(rand.NewPCG(uint64(n), 3))
		e := New(uint64(n))
		if _, err := e.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
			t.Fatal(err)
		}
		total, count := 0, 0
		for _, c := range workload.EdgeChurn(rng, e.Graph(), 400) {
			rep, err := e.Apply(c)
			if err != nil {
				t.Fatal(err)
			}
			total += rep.Work
			count++
		}
		return float64(total) / float64(count)
	}
	small, large := meanWork(200), meanWork(2000)
	// Constant average degree: work per update must not grow with n.
	if large > 4*small+8 {
		t.Errorf("mean work grew from %.1f (n=200) to %.1f (n=2000); expected n-independence", small, large)
	}
	t.Logf("mean work/update: %.2f at n=200, %.2f at n=2000", small, large)
}

func TestSeqdynInvalidChange(t *testing.T) {
	e := New(1)
	if _, err := e.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2)); err == nil {
		t.Fatal("edge between absent nodes accepted")
	}
	if _, err := e.Apply(graph.Change{Kind: graph.ChangeKind(42), Node: 1}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSeqdynMuteKeepsPriority(t *testing.T) {
	e := New(4)
	if _, err := e.ApplyAll(workload.Cycle(5)); err != nil {
		t.Fatal(err)
	}
	before := e.State()
	if _, err := e.Apply(graph.NodeChange(graph.NodeMute, 2)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	if _, err := e.Apply(graph.NodeChange(graph.NodeUnmute, 2, 1, 3)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)
	if !core.EqualStates(before, e.State()) {
		t.Error("mute/unmute round trip changed the MIS")
	}
}
