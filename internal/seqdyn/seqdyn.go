// Package seqdyn is the sequential (single-machine) dynamic MIS data
// structure the paper sketches in §6: the template carried over to the
// classic dynamic-graph-algorithms setting, where the cost measure is
// update time rather than communication. It maintains, for every node,
// the count of its earlier MIS neighbors ("blockers"); a node is in the
// MIS iff its count is zero. A topology change dirties O(1) nodes, and
// recovery processes dirty nodes in increasing π order — so every node
// flips at most once per update (unlike the distributed cascade, which
// may flip a node several times), and the work is O(Σ_{flipped} deg),
// i.e. O(Δ) in expectation by Theorem 1.
//
// The Engine implements the full core.Engine surface (plus the
// core.Instrument capability), so the facade exposes it uniformly as
// EngineSequential. It draws priorities through ord.Ensure in the same
// per-change sequence as core.StageChange, which makes it π-equivalent
// to the distributed engines: equal seeds and equal change sequences
// produce byte-identical states and event feeds.
package seqdyn

import (
	"container/heap"
	"fmt"
	"maps"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
)

// Engine is the sequential dynamic MIS structure. The zero value is not
// usable; call New.
type Engine struct {
	g        *graph.Graph
	ord      *order.Order
	in       map[graph.NodeID]core.Membership
	blockers map[graph.NodeID]int // count of earlier In-neighbors

	queue  nodeHeap
	queued map[graph.NodeID]bool

	feed core.Feed
	coll *metrics.Collector // nil while instrumentation is disabled

	// Window scratch.
	one     [1]graph.Change
	touched map[graph.NodeID]core.Touched
	flips   int
	work    int
}

// Engine implements the uniform surface and the instrumentation
// capability.
var (
	_ core.Engine         = (*Engine)(nil)
	_ core.Instrument     = (*Engine)(nil)
	_ core.MemoryReporter = (*Engine)(nil)
)

// New returns an engine over an empty graph.
func New(seed uint64) *Engine { return NewWithOrder(order.New(seed)) }

// NewWithOrder returns an engine sharing a caller-supplied order.
func NewWithOrder(ord *order.Order) *Engine {
	return &Engine{
		g:        graph.New(),
		ord:      ord,
		in:       make(map[graph.NodeID]core.Membership),
		blockers: make(map[graph.NodeID]int),
		queued:   make(map[graph.NodeID]bool),
		touched:  make(map[graph.NodeID]core.Touched),
	}
}

// Graph exposes the maintained topology (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Order exposes the node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether v is in the MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.in[v] == core.In }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return core.MISOf(e.in) }

// State returns a copy of the membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership { return maps.Clone(e.in) }

// Subscribe registers a change-feed callback; see core.Feed.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// Instrument attaches a complexity collector (nil detaches).
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// MemoryProfile accounts the sequential engine: the arena plus its
// ID-space membership and blocker maps, the settle heap and the order's
// priority table. Map footprints use the same deterministic
// bytes-per-entry estimate as the arena index.
func (e *Engine) MemoryProfile() metrics.Memory {
	aux := int64(len(e.in))*17 + // NodeID key + 1-byte membership, ~2x for buckets
		int64(len(e.blockers))*24 +
		int64(len(e.queued))*17 +
		int64(cap(e.queue))*8 +
		e.ord.MemBytes()
	return core.ArenaMemory(e.g, aux)
}

// Apply performs one topology change and restores the MIS invariant,
// reporting the sequential work done (Report.Work counts adjacency
// entries touched — the update-time measure).
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	e.one[0] = c
	return e.applyWindow(e.one[:], false)
}

// ApplyBatch stages several changes and settles once: blocker counts
// are maintained per staged change, and one π-ordered settle pass
// restores the invariant over the combined damage. On a mid-batch
// validation error the staged prefix stays applied and the settle pass
// recovers it (publishing the prefix's feed delta) before the error
// returns. By history independence the batched result equals per-change
// application — only the cost accounting differs.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	return e.applyWindow(cs, true)
}

// ApplyAll applies a sequence of changes one window each, accumulating
// reports. It stops at the first error.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d (%s): %w", i, c, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// applyWindow stages every change, runs one π-ordered settle pass, then
// accounts the net adjustments and the feed delta from the touched set.
func (e *Engine) applyWindow(cs []graph.Change, batch bool) (core.Report, error) {
	clear(e.touched)
	e.flips, e.work = 0, 0

	var stageErr error
	for i, c := range cs {
		if !c.Kind.IsEdge() {
			if _, seen := e.touched[c.Node]; !seen {
				_, present := e.in[c.Node]
				e.touched[c.Node] = core.Touched{Present: present, M: e.in[c.Node]}
			}
		}
		if err := e.stage(c); err != nil {
			if batch {
				err = fmt.Errorf("batch change %d: %w", i, err)
			}
			stageErr = err
			break
		}
	}
	e.settle()

	adj, evs := core.DeltaFromTouchedOn(core.MapState(e.in), e.touched, e.feed.Active())
	e.feed.PublishSorted(evs)
	if stageErr != nil {
		return core.Report{}, stageErr
	}

	rep := core.Report{
		Adjustments: adj,
		SSize:       e.flips, // each node flips at most once per window
		Flips:       e.flips,
		Work:        e.work,
	}
	if mc := e.coll; mc != nil {
		mc.Updates += uint64(len(cs))
		mc.Windows++
		mc.Adjustments += uint64(adj)
		mc.Influence += uint64(rep.SSize)
		mc.Flips += uint64(rep.Flips)
		mc.TouchedSlots += uint64(len(e.touched))
	}
	return rep, nil
}

// stage validates and applies one change, maintaining the blocker
// counts and dirtying the nodes whose invariant it may have violated.
// On a validation error nothing has been mutated.
func (e *Engine) stage(c graph.Change) error {
	if err := c.Validate(e.g); err != nil {
		return err
	}
	switch c.Kind {
	case graph.EdgeInsert:
		if err := e.g.AddEdge(c.U, c.V); err != nil {
			return err
		}
		e.work++
		lo, hi := e.orient(c.U, c.V)
		if e.in[lo] == core.In {
			e.blockers[hi]++
			e.dirty(hi)
		}

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := e.g.RemoveEdge(c.U, c.V); err != nil {
			return err
		}
		e.work++
		lo, hi := e.orient(c.U, c.V)
		if e.in[lo] == core.In {
			e.blockers[hi]--
			e.dirty(hi)
		}

	case graph.NodeInsert, graph.NodeUnmute:
		e.ord.Ensure(c.Node)
		if err := c.Apply(e.g); err != nil {
			return err
		}
		count := 0
		e.g.EachNeighbor(c.Node, func(u graph.NodeID) {
			e.work++
			if e.ord.Less(u, c.Node) && e.in[u] == core.In {
				count++
			}
		})
		e.in[c.Node] = core.Out
		e.blockers[c.Node] = count
		e.dirty(c.Node)

	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		wasIn := e.in[c.Node] == core.In
		nbrs := e.g.Neighbors(c.Node)
		if err := c.Apply(e.g); err != nil {
			return err
		}
		if wasIn {
			e.flips++ // the departing MIS node itself
			for _, u := range nbrs {
				e.work++
				if !e.ord.Less(u, c.Node) {
					e.blockers[u]--
					e.dirty(u)
				}
			}
		}
		delete(e.in, c.Node)
		delete(e.blockers, c.Node)
		delete(e.queued, c.Node)
		if c.Kind != graph.NodeMute {
			e.ord.Drop(c.Node)
		}

	default:
		return fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
	}
	return nil
}

// orient returns the pair (earlier, later) by π.
func (e *Engine) orient(u, v graph.NodeID) (lo, hi graph.NodeID) {
	if e.ord.Less(u, v) {
		return u, v
	}
	return v, u
}

// dirty marks v for re-examination.
func (e *Engine) dirty(v graph.NodeID) {
	if e.queued[v] {
		return
	}
	e.queued[v] = true
	prio, _ := e.ord.Priority(v)
	heap.Push(&e.queue, nodeItem{id: v, prio: prio})
}

// settle processes dirty nodes in increasing π order. Because a node's
// membership depends only on earlier nodes, by the time a node is popped
// every earlier node is final — so each node flips at most once.
func (e *Engine) settle() {
	for e.queue.Len() > 0 {
		item := heap.Pop(&e.queue).(nodeItem)
		v := item.id
		if !e.queued[v] {
			continue // removed while queued
		}
		e.queued[v] = false
		if !e.g.HasNode(v) {
			continue
		}
		want := core.Membership(e.blockers[v] == 0)
		if e.in[v] == want {
			continue
		}
		// First touch records the pre-window membership for the net
		// delta; a settle pass flips each node at most once, so the
		// current value is still the pre-window one.
		if _, seen := e.touched[v]; !seen {
			e.touched[v] = core.Touched{Present: true, M: e.in[v]}
		}
		e.in[v] = want
		e.flips++
		delta := -1
		if want == core.In {
			delta = 1
		}
		e.g.EachNeighbor(v, func(u graph.NodeID) {
			e.work++
			if e.ord.Less(v, u) {
				e.blockers[u] += delta
				e.dirty(u)
			}
		})
	}
}

// Check verifies the MIS invariant and the blocker counts.
func (e *Engine) Check() error {
	if err := core.CheckInvariant(e.g, e.ord, e.in); err != nil {
		return err
	}
	for _, v := range e.g.Nodes() {
		count := 0
		e.g.EachNeighbor(v, func(u graph.NodeID) {
			if e.ord.Less(u, v) && e.in[u] == core.In {
				count++
			}
		})
		if count != e.blockers[v] {
			return fmt.Errorf("seqdyn: node %d blocker count %d, want %d", v, e.blockers[v], count)
		}
	}
	return nil
}

// nodeItem and nodeHeap implement the π-ordered dirty queue.
type nodeItem struct {
	id   graph.NodeID
	prio order.Priority
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	return order.Less(h[i].prio, h[i].id, h[j].prio, h[j].id)
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
