// Package seqdyn is the sequential (single-machine) dynamic MIS data
// structure the paper sketches in §6: the template carried over to the
// classic dynamic-graph-algorithms setting, where the cost measure is
// update time rather than communication. It maintains, for every node,
// the count of its earlier MIS neighbors ("blockers"); a node is in the
// MIS iff its count is zero. A topology change dirties O(1) nodes, and
// recovery processes dirty nodes in increasing π order — so every node
// flips at most once per update (unlike the distributed cascade, which
// may flip a node several times), and the work is O(Σ_{flipped} deg),
// i.e. O(Δ) in expectation by Theorem 1.
package seqdyn

import (
	"container/heap"
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Report is the sequential cost account for one update.
type Report struct {
	// Adjustments is the number of nodes whose membership changed.
	Adjustments int
	// Processed is the number of dirty nodes examined.
	Processed int
	// Work counts adjacency entries touched — the sequential update
	// time up to logarithmic heap factors.
	Work int
}

// Engine is the sequential dynamic MIS structure. The zero value is not
// usable; call New.
type Engine struct {
	g        *graph.Graph
	ord      *order.Order
	in       map[graph.NodeID]bool
	blockers map[graph.NodeID]int // count of earlier In-neighbors

	queue  nodeHeap
	queued map[graph.NodeID]bool
}

// New returns an engine over an empty graph.
func New(seed uint64) *Engine { return NewWithOrder(order.New(seed)) }

// NewWithOrder returns an engine sharing a caller-supplied order.
func NewWithOrder(ord *order.Order) *Engine {
	return &Engine{
		g:        graph.New(),
		ord:      ord,
		in:       make(map[graph.NodeID]bool),
		blockers: make(map[graph.NodeID]int),
		queued:   make(map[graph.NodeID]bool),
	}
}

// Graph exposes the maintained topology (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Order exposes the node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether v is in the MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.in[v] }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return core.MISOf(e.State()) }

// State returns the membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, len(e.in))
	for v, in := range e.in {
		if in {
			out[v] = core.In
		} else {
			out[v] = core.Out
		}
	}
	return out
}

// Apply performs one topology change and restores the MIS invariant,
// reporting the sequential work done.
func (e *Engine) Apply(c graph.Change) (Report, error) {
	if err := c.Validate(e.g); err != nil {
		return Report{}, err
	}
	var rep Report
	switch c.Kind {
	case graph.EdgeInsert:
		if err := e.g.AddEdge(c.U, c.V); err != nil {
			return Report{}, err
		}
		rep.Work++
		lo, hi := e.orient(c.U, c.V)
		if e.in[lo] {
			e.blockers[hi]++
			e.dirty(hi)
		}

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := e.g.RemoveEdge(c.U, c.V); err != nil {
			return Report{}, err
		}
		rep.Work++
		lo, hi := e.orient(c.U, c.V)
		if e.in[lo] {
			e.blockers[hi]--
			e.dirty(hi)
		}

	case graph.NodeInsert, graph.NodeUnmute:
		e.ord.Ensure(c.Node)
		if err := c.Apply(e.g); err != nil {
			return Report{}, err
		}
		count := 0
		e.g.EachNeighbor(c.Node, func(u graph.NodeID) {
			rep.Work++
			if e.ord.Less(u, c.Node) && e.in[u] {
				count++
			}
		})
		e.in[c.Node] = false
		e.blockers[c.Node] = count
		e.dirty(c.Node)

	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		wasIn := e.in[c.Node]
		nbrs := e.g.Neighbors(c.Node)
		if err := c.Apply(e.g); err != nil {
			return Report{}, err
		}
		if wasIn {
			rep.Adjustments++ // the departing MIS node itself
			for _, u := range nbrs {
				rep.Work++
				if !e.ord.Less(u, c.Node) {
					e.blockers[u]--
					e.dirty(u)
				}
			}
		}
		delete(e.in, c.Node)
		delete(e.blockers, c.Node)
		delete(e.queued, c.Node)
		if c.Kind != graph.NodeMute {
			e.ord.Drop(c.Node)
		}

	default:
		return Report{}, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
	}

	e.settle(&rep)
	return rep, nil
}

// orient returns the pair (earlier, later) by π.
func (e *Engine) orient(u, v graph.NodeID) (lo, hi graph.NodeID) {
	if e.ord.Less(u, v) {
		return u, v
	}
	return v, u
}

// dirty marks v for re-examination.
func (e *Engine) dirty(v graph.NodeID) {
	if e.queued[v] {
		return
	}
	e.queued[v] = true
	prio, _ := e.ord.Priority(v)
	heap.Push(&e.queue, nodeItem{id: v, prio: prio})
}

// settle processes dirty nodes in increasing π order. Because a node's
// membership depends only on earlier nodes, by the time a node is popped
// every earlier node is final — so each node flips at most once.
func (e *Engine) settle(rep *Report) {
	for e.queue.Len() > 0 {
		item := heap.Pop(&e.queue).(nodeItem)
		v := item.id
		if !e.queued[v] {
			continue // removed while queued
		}
		e.queued[v] = false
		if !e.g.HasNode(v) {
			continue
		}
		rep.Processed++
		want := e.blockers[v] == 0
		if e.in[v] == want {
			continue
		}
		e.in[v] = want
		rep.Adjustments++
		delta := -1
		if want {
			delta = 1
		}
		e.g.EachNeighbor(v, func(u graph.NodeID) {
			rep.Work++
			if e.ord.Less(v, u) {
				e.blockers[u] += delta
				e.dirty(u)
			}
		})
	}
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (e *Engine) ApplyAll(cs []graph.Change) (Report, error) {
	var total Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Adjustments += rep.Adjustments
		total.Processed += rep.Processed
		total.Work += rep.Work
	}
	return total, nil
}

// Check verifies the MIS invariant and the blocker counts.
func (e *Engine) Check() error {
	state := e.State()
	if err := core.CheckInvariant(e.g, e.ord, state); err != nil {
		return err
	}
	for _, v := range e.g.Nodes() {
		count := 0
		e.g.EachNeighbor(v, func(u graph.NodeID) {
			if e.ord.Less(u, v) && e.in[u] {
				count++
			}
		})
		if count != e.blockers[v] {
			return fmt.Errorf("seqdyn: node %d blocker count %d, want %d", v, e.blockers[v], count)
		}
	}
	return nil
}

// nodeItem and nodeHeap implement the π-ordered dirty queue.
type nodeItem struct {
	id   graph.NodeID
	prio order.Priority
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	return order.Less(h[i].prio, h[i].id, h[j].prio, h[j].id)
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
