package shard

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"runtime"
	"slices"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/trace"
	"dynmis/workload"
)

// fuzzMaxChanges bounds one fuzz execution so the engine comparisons
// stay fast enough for the mutator to explore broadly.
const fuzzMaxChanges = 2000

// decodeFuzzStream turns raw fuzz bytes into a change stream that is
// valid when applied in order from the empty graph. Bytes that parse as
// a JSONL trace (the seeded corpus, or any recorded trace dropped into
// testdata) are taken as-is; anything else goes through a byte-op
// decoder over a small ID space. Either way the stream is then filtered
// through a scratch sequential engine so only changes that stage cleanly
// survive — staging is identical across engines, so the surviving stream
// applies cleanly everywhere and the fuzz target compares behaviour, not
// error strings.
func decodeFuzzStream(data []byte) []graph.Change {
	cs, err := trace.ReadAll(bytes.NewReader(data))
	if err != nil || len(cs) == 0 {
		cs = cs[:0]
		for i := 0; i+2 < len(data) && len(cs) < fuzzMaxChanges; i += 3 {
			u := graph.NodeID(data[i+1] % 48)
			v := graph.NodeID(data[i+2] % 48)
			switch data[i] % 8 {
			case 0:
				cs = append(cs, graph.NodeChange(graph.NodeInsert, u))
			case 1:
				cs = append(cs, graph.NodeChange(graph.NodeInsert, u, v))
			case 2:
				cs = append(cs, graph.NodeChange(graph.NodeDeleteAbrupt, u))
			case 3:
				cs = append(cs, graph.NodeChange(graph.NodeDeleteGraceful, u))
			case 4:
				cs = append(cs, graph.EdgeChange(graph.EdgeInsert, u, v))
			case 5:
				cs = append(cs, graph.EdgeChange(graph.EdgeDeleteAbrupt, u, v))
			case 6:
				cs = append(cs, graph.NodeChange(graph.NodeMute, u))
			case 7:
				cs = append(cs, graph.NodeChange(graph.NodeUnmute, u, v))
			}
		}
	}
	if len(cs) > fuzzMaxChanges {
		cs = cs[:fuzzMaxChanges]
	}
	scratch := core.NewTemplate(1)
	valid := cs[:0]
	for _, c := range cs {
		if _, err := scratch.Apply(c); err == nil {
			valid = append(valid, c)
		}
	}
	return valid
}

// FuzzShardedEquivalence fuzzes the core claim the sharded engine rests
// on: for any valid change stream, any shard count, any window size and
// any GOMAXPROCS, the final state and graph are identical to the
// per-change sequential Template (history independence), and the
// published event feed is byte-identical to the sequential engine
// applying the same windows — Seq, Node, From, To and Cause all equal.
func FuzzShardedEquivalence(f *testing.F) {
	// Corpus: real workload streams in trace encoding, so the mutator
	// starts from structurally meaningful inputs.
	seedStream := func(cs []graph.Change) []byte {
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, slices.Values(cs)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rng := rand.New(rand.NewPCG(61, 67))
	gnp := workload.GNP(rng, 40, 0.1)
	churn := append(slices.Clone(gnp), workload.RandomChurn(rng, workload.BuildGraph(gnp), workload.DefaultChurn(300))...)
	f.Add(seedStream(gnp), uint64(42), uint8(4), uint8(16), uint8(2))
	f.Add(seedStream(churn), uint64(7), uint8(8), uint8(7), uint8(4))
	f.Add(seedStream(workload.Path(64)), uint64(3), uint8(3), uint8(64), uint8(1))
	f.Add([]byte{0, 1, 0, 0, 2, 0, 4, 1, 2, 1, 3, 1}, uint64(1), uint8(2), uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64, shardsB, windowB, procsB uint8) {
		cs := decodeFuzzStream(data)
		if len(cs) == 0 {
			t.Skip("no valid changes decoded")
		}
		shards := int(shardsB)%8 + 1
		window := int(windowB)%64 + 1
		procs := int(procsB)%4 + 1
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

		// Per-change sequential oracle for the final structure.
		ref := core.NewTemplate(seed)
		if _, err := ref.ApplyAll(cs); err != nil {
			t.Fatalf("sequential oracle rejected a sanitized stream: %v", err)
		}

		// Windowed sequential engine for the event-feed oracle: engines
		// publish per-window net deltas, so equal windows must yield the
		// identical event stream.
		wtpl := core.NewTemplate(seed)
		var wantEvents []core.Event
		wtpl.Subscribe(func(ev core.Event) { wantEvents = append(wantEvents, ev) })

		e := New(seed, shards)
		e.forceParallel = procs > 1
		var gotEvents []core.Event
		e.Subscribe(func(ev core.Event) { gotEvents = append(gotEvents, ev) })

		for lo := 0; lo < len(cs); lo += window {
			hi := min(lo+window, len(cs))
			if _, err := wtpl.ApplyBatch(cs[lo:hi]); err != nil {
				t.Fatalf("windowed template window at %d: %v", lo, err)
			}
			if _, err := e.ApplyBatch(cs[lo:hi]); err != nil {
				t.Fatalf("sharded window at %d: %v", lo, err)
			}
		}

		if err := e.Check(); err != nil {
			t.Fatalf("invariant violated (shards=%d window=%d procs=%d): %v", shards, window, procs, err)
		}
		if !core.EqualStates(ref.State(), e.State()) {
			t.Fatalf("final state diverged from sequential (shards=%d window=%d procs=%d)", shards, window, procs)
		}
		if !ref.Graph().Equal(e.Graph()) {
			t.Fatalf("graph diverged from sequential (shards=%d window=%d procs=%d)", shards, window, procs)
		}
		if !reflect.DeepEqual(wantEvents, gotEvents) {
			t.Fatalf("event feed diverged (shards=%d window=%d procs=%d):\n got %d events %v\nwant %d events %v",
				shards, window, procs, len(gotEvents), gotEvents, len(wantEvents), wantEvents)
		}
	})
}
