package shard

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
	"dynmis/workload"
)

// The instrumentation counters and the engine's own Stats are two
// accounts of the same cascade; they must agree window by window even
// under concurrent execution with stealing, and every steal must carry
// at least one slot.
func TestStealHandoffCounterProperty(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewPCG(41, 43))
	build := workload.GNP(rng, 300, 0.04)
	churn := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(4000))
	all := append(build, churn...)

	e := New(17, 8)
	e.forceParallel = true
	coll := metrics.NewCollector()
	e.Instrument(coll)

	const window = 256
	for lo := 0; lo < len(all); lo += window {
		hi := min(lo+window, len(all))
		stPrev, cPrev := e.Stats(), coll.Snapshot()
		if _, err := e.ApplyBatch(all[lo:hi]); err != nil {
			t.Fatal(err)
		}
		st, c := e.Stats(), coll.Snapshot()
		dLocal := st.LocalHandoffs - stPrev.LocalHandoffs
		dCross := st.CrossShard - stPrev.CrossShard
		dSteals := st.Steals - stPrev.Steals
		dStolen := st.StolenSlots - stPrev.StolenSlots
		if got := c.Handoffs - cPrev.Handoffs; got != uint64(dLocal+dCross) {
			t.Fatalf("window at %d: collector handoffs %d != stats local %d + cross %d",
				lo, got, dLocal, dCross)
		}
		if got := c.CrossShard - cPrev.CrossShard; got != uint64(dCross) {
			t.Fatalf("window at %d: collector cross-shard %d, stats %d", lo, got, dCross)
		}
		if got := c.Steals - cPrev.Steals; got != uint64(dSteals) {
			t.Fatalf("window at %d: collector steals %d, stats %d", lo, got, dSteals)
		}
		if dStolen < dSteals {
			t.Fatalf("window at %d: %d steals carried only %d slots", lo, dSteals, dStolen)
		}
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Steal totals are scheduling-dependent, so only log them.
	t.Logf("handoffs: %d local, %d cross; steals: %d (%d slots)",
		st.LocalHandoffs, st.CrossShard, st.Steals, st.StolenSlots)
}

// Hand-off attribution is by slot ownership, so the local/cross split is
// a property of the flip sequence, not of the execution mode. A delete
// at the head of a stable path cascades as a single chain — exactly one
// slot queued at any moment, every node flipping exactly once — so its
// flip sequence, and hence its hand-off account, is identical whichever
// path executes it. (Build-phase cascades from many seeds are NOT
// deterministic: parallel interleaving changes transient flips, which is
// fine — only the fixpoint is unique.)
func TestHandoffAttributionModeIndependent(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 400
	run := func(force bool) Stats {
		e := New(1, 4)
		for v := 0; v < n; v++ {
			e.Order().Set(graph.NodeID(v), order.Priority(v+1))
		}
		if _, err := e.ApplyAll(workload.Path(n)); err != nil {
			t.Fatal(err)
		}
		e.forceParallel = force
		before := e.Stats()
		if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 0)); err != nil {
			t.Fatal(err)
		}
		if err := e.Check(); err != nil {
			t.Fatal(err)
		}
		after := e.Stats()
		return Stats{
			LocalHandoffs: after.LocalHandoffs - before.LocalHandoffs,
			CrossShard:    after.CrossShard - before.CrossShard,
			Steals:        after.Steals - before.Steals,
		}
	}
	serial, parallel := run(false), run(true)
	if serial.LocalHandoffs != parallel.LocalHandoffs || serial.CrossShard != parallel.CrossShard {
		t.Fatalf("hand-off attribution depends on execution mode: serial %d/%d, parallel %d/%d",
			serial.LocalHandoffs, serial.CrossShard, parallel.LocalHandoffs, parallel.CrossShard)
	}
	if serial.LocalHandoffs+serial.CrossShard == 0 {
		t.Fatal("chain cascade produced no hand-offs")
	}
	if serial.Steals != 0 {
		t.Fatalf("serial drain reported %d steals", serial.Steals)
	}
}

// A window that fails staging must leave the metrics collector untouched
// — including the steal counter — even though the recovery cascade over
// the staged prefix runs (and moves the engine's own Stats).
func TestFailedWindowLeavesCountersUnchanged(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 400
	e := New(1, 4)
	e.forceParallel = true
	for v := 0; v < n; v++ {
		e.Order().Set(graph.NodeID(v), order.Priority(v+1))
	}
	if _, err := e.ApplyAll(workload.Path(n)); err != nil {
		t.Fatal(err)
	}
	coll := metrics.NewCollector()
	e.Instrument(coll)

	before := coll.Snapshot()
	stBefore := e.Stats()
	_, err := e.ApplyBatch([]graph.Change{
		graph.NodeChange(graph.NodeDeleteAbrupt, 0),        // cascades the whole chain
		graph.EdgeChange(graph.EdgeInsert, 77_777, 88_888), // fails validation
	})
	if err == nil {
		t.Fatal("expected staging failure")
	}
	if after := coll.Snapshot(); after != before {
		t.Fatalf("failed window moved the collector:\n got %+v\nwant %+v", after, before)
	}
	// The prefix cascade did run: the structure is consistent and the
	// engine's own account moved.
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LocalHandoffs+st.CrossShard == stBefore.LocalHandoffs+stBefore.CrossShard {
		t.Fatal("prefix cascade produced no hand-offs")
	}
}
