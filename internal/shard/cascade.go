package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/simnet"
)

// Per-slot cascade states. Every arena slot carries one uint32 in the
// engine's flags lane forming a tiny state machine that provides both
// deduplication (the old mailbox's queued-set) and single-flight
// execution (the old design's one-consumer-per-shard guarantee, which
// work-stealing would otherwise break):
//
//	stIdle ──enqueue──▶ stQueued ──pop──▶ stRunning ──done──▶ stIdle
//	                                          │  ▲
//	                                 enqueue  ▼  │ rerun
//	                                      stRequeued
//
// An enqueue of a queued slot merges (no new entry); an enqueue of a
// running slot marks it requeued, and the slot's current runner loops —
// re-reading neighbor states that now include the enqueuer's flip — so
// no two workers ever evaluate the same slot concurrently, yet no flip
// of an earlier-in-π neighbor can be missed. All transitions are
// sequentially consistent atomics, which is what carries the
// happens-before edge from a neighbor's lane write to the re-run's read.
const (
	stIdle uint32 = iota
	stQueued
	stRunning
	stRequeued
)

const (
	// serialSeedCutoff is the seed count below which a window's cascade
	// runs inline on the coordinator with no locks at all: spawning P
	// workers for a handful of seeds costs more than the cascade.
	serialSeedCutoff = 32
	// outboxFlush caps a per-destination outbox before it is force-flushed
	// mid-round, bounding the latency of a cross-shard hand-off batch.
	outboxFlush = 128
	// localSpill caps the private run stack; beyond it the oldest half is
	// published to the worker's own deque where idle shards can steal it.
	localSpill = 512
	// refillBatch is how many slots a worker moves from its shared deque
	// to its private stack per refill.
	refillBatch = 64
	// stealBatch caps one steal; Deque.Steal additionally never takes
	// more than half the victim's queue.
	stealBatch = 32
)

// worker is one cascade worker's private state: its shared deque (where
// cross-shard batches arrive and thieves steal from), its private run
// stack, per-destination outbox rings, and window scratch. Everything
// except the deque is touched only by the owning worker goroutine during
// a cascade and by the coordinator after the workers have joined.
type worker struct {
	deque   simnet.Deque
	local   []int32   // private LIFO run stack (not stealable)
	out     [][]int32 // per-destination outbox rings, flushed in batches
	touched []int32   // slots this worker first-flipped in the window

	localHops int // hand-offs staying inside the flipped slot's own shard
	crossHops int // hand-offs crossing an ownership boundary
	steals    int // successful steal operations by this worker
	stolen    int // slots acquired by those steals
}

// parkLot is the cascade's idle coordination: workers that find no
// runnable work anywhere sleep here, batch deliveries bump gen and wake
// them, and the worker that drives pending to zero sets done.
type parkLot struct {
	mu      sync.Mutex
	cond    *sync.Cond
	gen     uint64
	waiting int
	done    bool
}

// growScratch sizes the per-slot lanes (cascade flags, flip counts,
// first pre-flip memberships) to the arena. New entries are zero —
// stIdle, no flips — and the lanes are returned to all-zero by the
// cascade itself (flags) and by account (flip lanes), so no O(n) clear
// ever happens: per-window cost stays O(touched).
func (e *Engine) growScratch() {
	n := e.g.Slots()
	if len(e.flags) < n {
		e.flags = append(e.flags, make([]uint32, n-len(e.flags))...)
		e.flipCount = append(e.flipCount, make([]uint32, n-len(e.flipCount))...)
		e.firstBefore = append(e.firstBefore, make([]byte, n-len(e.firstBefore))...)
	}
}

// recordFlip accounts one flip of slot s, capturing the pre-flip
// membership the first time the window's cascade touches s. The flip
// lanes are written only by s's current runner (single-flight) and read
// by the coordinator after the workers join.
func (e *Engine) recordFlip(wk *worker, s int32, before core.Membership) {
	if e.flipCount[s] == 0 {
		if before == core.In {
			e.firstBefore[s] = 2
		} else {
			e.firstBefore[s] = 1
		}
		wk.touched = append(wk.touched, s)
	}
	e.flipCount[s]++
}

// runCascade executes the flip fixpoint from the given seed nodes.
// During the cascade the graph and order are frozen, so workers exchange
// raw slot indices. Small windows (and any window on a single-processor
// runtime, where parallel workers could only timeshare) drain inline on
// the coordinator with no locks; larger ones fan out to one worker per
// shard with work stealing.
func (e *Engine) runCascade(seeds []graph.NodeID) {
	for _, wk := range e.workers {
		wk.touched = wk.touched[:0]
		wk.local = wk.local[:0]
		wk.localHops, wk.crossHops, wk.steals, wk.stolen = 0, 0, 0, 0
	}
	e.growScratch()
	if len(seeds) == 0 {
		return
	}

	// Resolve and deduplicate the seeds into per-owner batches. Seeds
	// staged away later in the same window no longer resolve; their
	// former neighbors were seeded separately.
	npend := 0
	for _, v := range seeds {
		i, ok := e.g.Index(v)
		if !ok {
			continue
		}
		s := int32(i)
		if atomic.CompareAndSwapUint32(&e.flags[s], stIdle, stQueued) {
			npend++
			d := e.owner(s)
			e.seedBatch[d] = append(e.seedBatch[d], s)
		}
	}
	if npend == 0 {
		return
	}

	if !e.forceParallel && (len(e.shards) == 1 || npend <= serialSeedCutoff || runtime.GOMAXPROCS(0) == 1) {
		e.drainSerial()
		return
	}

	e.pending.Store(int64(npend))
	e.lot.done = false
	e.lot.gen = 0
	for d := range e.seedBatch {
		if len(e.seedBatch[d]) > 0 {
			e.workers[d].deque.PushBatch(e.seedBatch[d])
			e.seedBatch[d] = e.seedBatch[d][:0]
		}
	}
	var wg sync.WaitGroup
	for w := range e.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.runWorker(w)
		}()
	}
	wg.Wait()
}

// drainSerial is the inline fast path: the same fixpoint, run by the
// coordinator alone, so the membership lane needs no locks and the flags
// lane no contended atomics. Hand-offs are still attributed local/cross
// by slot ownership — the split measures ownership-boundary crossings,
// which are a property of the flip sequence, not of which goroutine
// happened to execute it.
func (e *Engine) drainSerial() {
	wk := e.workers[0]
	stack := wk.local[:0]
	for d := range e.seedBatch {
		stack = append(stack, e.seedBatch[d]...)
		e.seedBatch[d] = e.seedBatch[d][:0]
	}
	for len(stack) > 0 {
		n := len(stack) - 1
		s := stack[n]
		stack = stack[:n]
		atomic.StoreUint32(&e.flags[s], stIdle)

		cur := e.state.At(int(s))
		want := core.In
		for _, nb := range e.g.NeighborSlots(int(s)) {
			if e.g.LessAt(int(nb), int(s)) && e.state.At(int(nb)) == core.In {
				want = core.Out
				break
			}
		}
		if want == cur {
			continue
		}
		e.state.SetAt(int(s), want)
		e.recordFlip(wk, s, cur)
		so := e.owner(s)
		for _, nb := range e.g.NeighborSlots(int(s)) {
			if !e.g.LessAt(int(s), int(nb)) {
				continue
			}
			if e.owner(nb) == so {
				wk.localHops++
			} else {
				wk.crossHops++
			}
			if atomic.LoadUint32(&e.flags[nb]) == stIdle {
				atomic.StoreUint32(&e.flags[nb], stQueued)
				stack = append(stack, nb)
			}
		}
	}
	wk.local = stack
}

// runWorker is one parallel worker's main loop: drain the private stack,
// flush outbox batches, refill from the own deque, steal from busier
// shards, park when the whole cascade is quiet.
func (e *Engine) runWorker(w int) {
	wk := e.workers[w]
	for {
		for len(wk.local) > 0 {
			n := len(wk.local) - 1
			s := wk.local[n]
			wk.local = wk.local[:n]
			e.process(w, wk, s)
		}
		e.flushAll(wk)
		if e.refill(wk) {
			continue
		}
		if e.stealWork(w, wk) {
			continue
		}
		if !e.park(w, wk) {
			return
		}
	}
}

// process runs the state machine for one popped slot: evaluate (and
// maybe flip), looping while enqueues marked the slot requeued, then
// release the pending credit and detect termination.
func (e *Engine) process(w int, wk *worker, s int32) {
	fl := &e.flags[s]
	if old := atomic.SwapUint32(fl, stRunning); old != stQueued {
		panic(fmt.Sprintf("shard: popped slot %d in cascade state %d, want queued", s, old))
	}
	for {
		e.step(w, wk, s)
		if atomic.CompareAndSwapUint32(fl, stRunning, stIdle) {
			break
		}
		// An enqueue landed while we were running: consume its credit
		// and re-evaluate with the enqueuer's flip now visible.
		if old := atomic.SwapUint32(fl, stRunning); old != stRequeued {
			panic(fmt.Sprintf("shard: rerun of slot %d found cascade state %d, want requeued", s, old))
		}
		e.pending.Add(-1)
	}
	if e.pending.Add(-1) == 0 {
		e.shutdown()
	}
}

// step evaluates the MIS invariant at slot s and flips it if violated,
// forwarding the slots whose invariant the flip can affect. The
// membership lane is read under the slot-owning shard's RLock and
// written under its write lock; reads may be momentarily stale, but any
// later flip of an earlier neighbor re-enqueues (or re-runs) s, so
// staleness delays convergence and cannot corrupt the fixpoint.
func (e *Engine) step(w int, wk *worker, s int32) {
	own := e.shards[e.owner(s)]
	own.mu.RLock()
	cur := e.state.At(int(s))
	own.mu.RUnlock()

	want := core.In
	for _, nb := range e.g.NeighborSlots(int(s)) {
		if !e.g.LessAt(int(nb), int(s)) {
			continue
		}
		p := e.shards[e.owner(nb)]
		p.mu.RLock()
		nin := e.state.At(int(nb)) == core.In
		p.mu.RUnlock()
		if nin {
			want = core.Out
			break
		}
	}
	if want == cur {
		return
	}

	own.mu.Lock()
	e.state.SetAt(int(s), want)
	own.mu.Unlock()
	e.recordFlip(wk, s, cur)

	// Only nodes later in π can have been violated by this flip.
	so := e.owner(s)
	for _, nb := range e.g.NeighborSlots(int(s)) {
		if !e.g.LessAt(int(s), int(nb)) {
			continue
		}
		if e.owner(nb) == so {
			wk.localHops++
		} else {
			wk.crossHops++
		}
		e.enqueue(w, wk, nb)
	}
}

// enqueue routes slot s into the cascade: own-shard work goes onto the
// private stack, cross-shard work into the destination's outbox ring.
// Duplicate enqueues merge via the state machine; enqueues against a
// running slot become a rerun instead of a queue entry.
//
// The pending credit is taken after the CAS but before the slot becomes
// visible to any consumer; the count cannot meanwhile hit zero because
// the caller — a worker mid-process, or the coordinator before workers
// start — still holds its own credit.
func (e *Engine) enqueue(w int, wk *worker, s int32) {
	fl := &e.flags[s]
	for {
		switch atomic.LoadUint32(fl) {
		case stIdle:
			if atomic.CompareAndSwapUint32(fl, stIdle, stQueued) {
				e.pending.Add(1)
				d := e.owner(s)
				if d == w {
					wk.local = append(wk.local, s)
					if len(wk.local) > localSpill {
						e.spillLocal(wk)
					}
				} else {
					wk.out[d] = append(wk.out[d], s)
					if len(wk.out[d]) >= outboxFlush {
						e.flushDest(wk, d)
					}
				}
				return
			}
		case stQueued, stRequeued:
			return // merged into the already-pending entry
		case stRunning:
			if atomic.CompareAndSwapUint32(fl, stRunning, stRequeued) {
				e.pending.Add(1)
				return
			}
		}
	}
}

// spillLocal publishes the oldest half of the private stack to the
// worker's shared deque, where idle shards can steal it.
func (e *Engine) spillLocal(wk *worker) {
	half := len(wk.local) / 2
	wk.deque.PushBatch(wk.local[:half])
	n := copy(wk.local, wk.local[half:])
	wk.local = wk.local[:n]
	e.wake()
}

// flushDest delivers one destination's outbox as a single batch.
func (e *Engine) flushDest(wk *worker, d int) {
	e.workers[d].deque.PushBatch(wk.out[d])
	wk.out[d] = wk.out[d][:0]
	e.wake()
}

// flushAll delivers every non-empty outbox; it must run before a worker
// refills, steals or parks, so no hand-off can hide in a sleeping
// worker's outbox.
func (e *Engine) flushAll(wk *worker) {
	for d := range wk.out {
		if len(wk.out[d]) > 0 {
			e.flushDest(wk, d)
		}
	}
}

// refill moves a batch from the worker's shared deque onto its private
// stack, reporting whether anything arrived.
func (e *Engine) refill(wk *worker) bool {
	n := len(wk.local)
	wk.local = wk.deque.PopBatch(wk.local, refillBatch)
	return len(wk.local) > n
}

// stealWork scans the other shards' deques and steals a batch from the
// first non-empty one.
func (e *Engine) stealWork(w int, wk *worker) bool {
	for i := 1; i < len(e.workers); i++ {
		v := (w + i) % len(e.workers)
		n := len(wk.local)
		wk.local = e.workers[v].deque.Steal(wk.local, stealBatch)
		if got := len(wk.local) - n; got > 0 {
			wk.steals++
			wk.stolen += got
			return true
		}
	}
	return false
}

// park blocks until new work may exist (a batch delivery bumped gen) or
// the cascade terminated. It returns false exactly when the worker
// should exit. The gen re-check between the unlocked probe and the Wait
// closes the lost-wakeup window.
func (e *Engine) park(w int, wk *worker) bool {
	lot := &e.lot
	lot.mu.Lock()
	for {
		if lot.done {
			lot.mu.Unlock()
			return false
		}
		gen := lot.gen
		lot.mu.Unlock()
		if e.refill(wk) || e.stealWork(w, wk) {
			return true
		}
		lot.mu.Lock()
		if lot.gen == gen && !lot.done {
			lot.waiting++
			lot.cond.Wait()
			lot.waiting--
		}
	}
}

// wake records that work was published and rouses parked workers.
func (e *Engine) wake() {
	lot := &e.lot
	lot.mu.Lock()
	lot.gen++
	if lot.waiting > 0 {
		lot.cond.Broadcast()
	}
	lot.mu.Unlock()
}

// shutdown marks the cascade terminated and releases every parked worker.
func (e *Engine) shutdown() {
	lot := &e.lot
	lot.mu.Lock()
	lot.done = true
	lot.cond.Broadcast()
	lot.mu.Unlock()
}
