package shard

import (
	"cmp"
	"fmt"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/order"
)

// Snapshot captures the engine's current stable state. The sharded
// engine persists exactly what the template engine does — graph,
// priorities, memberships — because its core state is the same data,
// merely partitioned across shards; the partitioning itself is a runtime
// tuning knob, not part of the structure, so a snapshot taken at one
// shard count restores at any other.
func (e *Engine) Snapshot() *core.Snapshot {
	s := &core.Snapshot{}
	for _, v := range e.g.Nodes() {
		prio, _ := e.ord.Priority(v)
		s.Nodes = append(s.Nodes, core.SnapshotNode{
			ID:       v,
			Priority: prio,
			InMIS:    e.state.InMIS(v),
		})
	}
	s.Edges = e.g.Edges()
	return s
}

// Restore rebuilds a sharded engine from a snapshot with the given shard
// count (values below 1 select GOMAXPROCS). Fresh nodes inserted after
// the restore draw priorities from a new stream seeded with seed, as in
// core.RestoreTemplate. The snapshot is validated: a configuration
// violating the MIS invariant is rejected.
func Restore(s *core.Snapshot, seed uint64, shards int) (*Engine, error) {
	e := NewWithOrder(order.New(seed), shards)
	e.g.Grow(len(s.Nodes))
	sorted := slices.Clone(s.Nodes)
	slices.SortFunc(sorted, func(a, b core.SnapshotNode) int { return cmp.Compare(a.ID, b.ID) })
	for _, n := range sorted {
		if err := e.g.AddNode(n.ID); err != nil {
			return nil, fmt.Errorf("shard: restore: %w", err)
		}
		e.ord.Set(n.ID, n.Priority)
		e.state.Set(n.ID, core.Membership(n.InMIS))
	}
	for _, edge := range s.Edges {
		if err := e.g.AddEdge(edge[0], edge[1]); err != nil {
			return nil, fmt.Errorf("shard: restore: %w", err)
		}
	}
	if err := e.Check(); err != nil {
		return nil, fmt.Errorf("shard: restore: snapshot inconsistent: %w", err)
	}
	return e, nil
}
