package shard

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/workload"
)

// TestFeedSubscribedWindowsRace drives a subscribed sharded engine
// through many multi-shard parallel windows. Under -race it proves the
// feed adds no data races: events are assembled and published by the
// coordinator goroutine only, after the workers have joined, never from
// inside the parallel cascade.
func TestFeedSubscribedWindowsRace(t *testing.T) {
	e := New(99, 4)
	e.SetWindow(32)

	var events []core.Event
	e.Subscribe(func(ev core.Event) {
		// Touch every field so the race detector sees any unsynchronized
		// publication path.
		events = append(events, ev)
	})

	rng := rand.New(rand.NewPCG(21, 22))
	cs := workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(2000))
	if _, err := e.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}

	if len(events) == 0 {
		t.Fatal("no events published")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap between %v and %v", events[i-1], events[i])
		}
	}
	if state := core.Replay(events); !core.EqualStates(state, e.State()) {
		t.Fatal("replayed event stream diverges from engine state")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestShardSnapshotRoundTrip checks the package-level snapshot path,
// including restoring at a different shard count.
func TestShardSnapshotRoundTrip(t *testing.T) {
	e := New(7, 4)
	rng := rand.New(rand.NewPCG(8, 9))
	cs := workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(500))
	if _, err := e.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}

	snap := e.Snapshot()
	restored, err := Restore(snap, 123, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !core.EqualStates(e.State(), restored.State()) {
		t.Fatal("restored state differs")
	}
	if !e.Graph().Equal(restored.Graph()) {
		t.Fatal("restored graph differs")
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
}
