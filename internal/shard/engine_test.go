package shard

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/workload"
)

// The sharded engine must reproduce the sequential Template bit-for-bit on
// randomized update streams: same seed, same changes, same final state.
// This is the history-independence equivalence the design rests on, and it
// must hold for every shard count and window size.
func TestEquivalenceWithSequential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, window := range []int{1, 7, 64} {
			rng := rand.New(rand.NewPCG(11, 13))
			seq := workload.GNP(rng, 120, 0.05)
			seq = append(seq, workload.RandomChurn(rng, workload.BuildGraph(seq), workload.DefaultChurn(600))...)

			tpl := core.NewTemplate(42)
			if _, err := tpl.ApplyAll(seq); err != nil {
				t.Fatalf("template: %v", err)
			}

			// Once letting the engine pick its execution mode per window,
			// once with the serial fast path disabled, so the equivalence
			// covers the worker/stealing machinery even on hosts where
			// GOMAXPROCS would route everything through the serial drain.
			for _, force := range []bool{false, true} {
				e := New(42, shards)
				e.forceParallel = force
				e.SetWindow(window)
				if _, err := e.ApplyAll(seq); err != nil {
					t.Fatalf("shards=%d window=%d force=%v: %v", shards, window, force, err)
				}
				if err := e.Check(); err != nil {
					t.Fatalf("shards=%d window=%d force=%v: invariant: %v", shards, window, force, err)
				}
				if !core.EqualStates(tpl.State(), e.State()) {
					t.Fatalf("shards=%d window=%d force=%v: state diverged from sequential engine", shards, window, force)
				}
				if !tpl.Graph().Equal(e.Graph()) {
					t.Fatalf("shards=%d window=%d force=%v: graph diverged", shards, window, force)
				}
			}
		}
	}
}

// A long path with strictly increasing priorities is the worst case for
// cross-shard serialization: deleting the head MIS node cascades a flip
// down the entire path, and with hashed ownership nearly every hand-off
// crosses a shard boundary. The cascade must serialize those hand-offs
// correctly and still converge to the greedy fixpoint.
func TestCrossShardConflictSerialization(t *testing.T) {
	const n = 400
	e := New(1, 4)
	// Force π to follow the node IDs so the cascade travels the full path.
	for v := 0; v < n; v++ {
		e.Order().Set(graph.NodeID(v), order.Priority(v+1))
	}
	if _, err := e.ApplyAll(workload.Path(n)); err != nil {
		t.Fatal(err)
	}
	// Alternating MIS: 0, 2, 4, ...
	if got := len(e.MIS()); got != n/2 {
		t.Fatalf("path MIS size = %d, want %d", got, n/2)
	}

	rep, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Every remaining node flips: S = {0} ∪ {1..n-1}.
	if rep.SSize != n {
		t.Fatalf("S size = %d, want %d", rep.SSize, n)
	}
	if rep.CrossShard == 0 {
		t.Fatal("expected cross-shard hand-offs on a hashed path cascade")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	// The MIS shifted by one: 1, 3, 5, ...
	if got := len(e.MIS()); got != (n-1+1)/2 {
		t.Fatalf("post-delete MIS size = %d, want %d", got, n/2)
	}
}

// Window-level adjustment accounting must agree with the full state diff.
func TestBatchAdjustmentAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	build := workload.GNP(rng, 80, 0.08)
	churn := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(300))

	e := New(9, 4)
	if _, err := e.ApplyAll(build); err != nil {
		t.Fatal(err)
	}

	for lo := 0; lo < len(churn); lo += 25 {
		hi := min(lo+25, len(churn))
		before := e.State()
		rep, err := e.ApplyBatch(churn[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if want := len(core.DiffStates(before, e.State())); rep.Adjustments != want {
			t.Fatalf("window at %d: adjustments = %d, diff says %d", lo, rep.Adjustments, want)
		}
	}
}

// Staged deletions inside a window may seed the cascade with nodes that no
// longer exist (insert then delete of the same node); the cascade must
// skip them and the final structure must match the sequential engine.
func TestWindowWithTransientNodes(t *testing.T) {
	cs := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 2),
		graph.NodeChange(graph.NodeInsert, 4, 1, 3),
		graph.NodeChange(graph.NodeDeleteGraceful, 4),
	}
	e := New(3, 4)
	rep, err := e.ApplyBatch(cs)
	if err != nil {
		t.Fatal(err)
	}
	tpl := core.NewTemplate(3)
	if _, err := tpl.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}
	if !core.EqualStates(tpl.State(), e.State()) {
		t.Fatal("state diverged on transient-node window")
	}
	before := map[graph.NodeID]core.Membership{}
	if want := len(core.DiffStates(before, e.State())); rep.Adjustments != want {
		t.Fatalf("adjustments = %d, want %d", rep.Adjustments, want)
	}
}

// Validation failures surface with the change index and leave the engine
// with a consistent (cascaded) prefix? No — mirroring Template.ApplyBatch,
// the prefix mutations stay applied without a cascade and the caller must
// treat the engine as unusable. This test only pins the error contract.
func TestBatchValidationError(t *testing.T) {
	e := New(1, 2)
	_, err := e.ApplyBatch([]graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.EdgeChange(graph.EdgeInsert, 1, 99), // missing endpoint
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
}

// Mute/unmute round-trips through windows, retaining priorities.
func TestMuteUnmuteWindow(t *testing.T) {
	e := New(21, 4)
	seq := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1, 2),
	}
	if _, err := e.ApplyBatch(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeMute, 2)); err != nil {
		t.Fatal(err)
	}
	pMuted, _ := e.Order().Priority(2)
	if _, err := e.Apply(graph.NodeChange(graph.NodeUnmute, 2, 1, 3)); err != nil {
		t.Fatal(err)
	}
	pBack, _ := e.Order().Priority(2)
	if pMuted != pBack {
		t.Fatal("muted node lost its priority across unmute")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}

	tpl := core.NewTemplate(21)
	all := append(append([]graph.Change{}, seq...),
		graph.NodeChange(graph.NodeMute, 2),
		graph.NodeChange(graph.NodeUnmute, 2, 1, 3))
	if _, err := tpl.ApplyAll(all); err != nil {
		t.Fatal(err)
	}
	if !core.EqualStates(tpl.State(), e.State()) {
		t.Fatal("state diverged after mute/unmute")
	}
}

// Dense windows under many shards exercise the per-slot state-machine
// dedup, batch flushing, stealing and the termination protocol; run with
// -race to exercise the locking discipline. The serial fast path is
// disabled and GOMAXPROCS raised so the parallel machinery runs even on
// single-processor hosts.
func TestDenseWindowsRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewPCG(31, 37))
	build := workload.GNP(rng, 200, 0.1)
	churn := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(1500))

	e := New(8, 8)
	e.forceParallel = true
	e.SetWindow(128)
	if _, err := e.ApplyAll(build); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyAll(churn); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if err := core.CheckMIS(e.Graph(), e.State()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Windows == 0 || st.Updates != len(build)+len(churn) {
		t.Fatalf("stats miscounted: %+v", st)
	}
}
