// Package shard implements the sharded concurrent update engine: the
// template cascade of Algorithm 1 (internal/core) executed in parallel by
// P worker goroutines, each owning a partition of the vertex space.
//
// A window of topology changes is applied in two phases:
//
//  1. Staging (serial): every change is validated and its graph/order/
//     membership bookkeeping applied through core.StageChange — the same
//     staging path the sequential Template uses, so π evolves
//     identically and equal seeds yield bit-identical structures.
//     Staging collects the cascade seed set (the union of the per-change
//     candidate sets S0).
//  2. Recovery (parallel): the flip fixpoint runs as a distributed
//     worklist. Each shard worker pops candidate slots it owns from its
//     mailbox, re-evaluates the MIS invariant against current neighbor
//     states, flips its own slots under the shard lock, and forwards the
//     later-in-π neighbors of every flipped node to their owner shards.
//     Updates whose cascades stay inside one shard proceed with no
//     coordination at all; only hand-offs that cross a shard boundary
//     serialize, through the receiving shard's mailbox.
//
// Storage is the same dense arena every engine shares: memberships live in
// the graph's one-byte state lane and priorities in its priority lane, so
// a worker's invariant evaluation is an array walk over neighbor slots.
// The partition is over slots, not node IDs — contiguous blocks of
// ownerBlock slots per shard — which keeps a shard's lane bytes on its own
// cache lines. During a cascade the graph (and hence the slot space) is
// frozen, so workers exchange raw slot indices and never consult the
// NodeID index table.
//
// Correctness does not depend on scheduling: the membership assignment
// satisfying the invariant "v ∈ MIS iff no earlier-in-π neighbor is in the
// MIS" is unique for a fixed graph and order (it is the sequential greedy
// MIS), flips propagate strictly upward in π, and every flip re-enqueues
// exactly the nodes whose invariant it can affect — so the fixpoint the
// workers quiesce at is that unique assignment, regardless of shard count
// or interleaving. This is the same history-independence argument
// (Definition 14) that makes the paper's distributed engines agree with
// the sequential oracle. The paper's Theorem 1 (E[|S|] ≤ 1) is what makes
// the design scale: the expected number of cascade hand-offs — and hence
// of cross-shard serializations — is O(1) per change, independent of both
// the graph size and P.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
	"dynmis/metrics"
)

// DefaultWindow is the number of changes applied per parallel window by
// ApplyAll when SetWindow has not been called.
const DefaultWindow = 512

// ownerBlock is the slot-partition granularity: slots are assigned to
// shards in contiguous blocks of this size, aligning a shard's span of the
// one-byte state lane with whole cache lines so concurrent workers do not
// false-share.
const ownerBlock = 64

// Stats is the engine's cumulative concurrency account.
type Stats struct {
	// Windows is the number of parallel windows executed.
	Windows int
	// Updates is the total number of changes applied.
	Updates int
	// Seeds is the total number of cascade seed evaluations enqueued by
	// staging.
	Seeds int
	// LocalHandoffs counts cascade hand-offs that stayed on the
	// flipping node's own shard.
	LocalHandoffs int
	// CrossShard counts cascade hand-offs that crossed a shard boundary
	// (the serialization points).
	CrossShard int
}

// shardPart is one slot partition's synchronization point plus the
// per-window scratch the owning worker records flips into. The membership
// bytes themselves live in the shared arena lane; the shard lock guards
// exactly the lane bytes of the slots this shard owns.
type shardPart struct {
	mu sync.RWMutex

	// Owner-worker-only window scratch (reset by runCascade, read by
	// the coordinator after the workers have joined).
	flips      map[graph.NodeID]int
	before     map[graph.NodeID]core.Membership
	crossShard int
	localHops  int
}

// Engine is the sharded concurrent MIS maintainer. It implements the same
// engine surface as core.Template and the message-passing engines; the
// concurrency is confined to ApplyBatch windows, so between calls the
// engine is quiescent and all accessors are plain reads.
//
// An Engine must not be used from multiple goroutines simultaneously: the
// parallelism is inside a window, not across callers.
type Engine struct {
	g      *graph.Graph
	ord    *order.Order
	state  core.State
	shards []*shardPart
	window int
	stats  Stats
	feed   core.Feed
	coll   *metrics.Collector // nil while instrumentation is disabled
}

// Engine implements the full engine surface plus the persistence
// capability (its core state — graph, order, memberships — is the same
// data the template engine persists, merely partitioned) and the
// instrumentation capability.
var (
	_ core.Engine      = (*Engine)(nil)
	_ core.Snapshotter = (*Engine)(nil)
	_ core.Instrument  = (*Engine)(nil)
)

// New returns an engine over the empty graph with the given shard count
// (values below 1 select GOMAXPROCS) and a fresh order seeded by seed.
func New(seed uint64, shards int) *Engine {
	return NewWithOrder(order.New(seed), shards)
}

// NewWithOrder returns an engine sharing a caller-supplied order, so that
// differential tests can run several engines under the same π.
func NewWithOrder(ord *order.Order, shards int) *Engine {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	g := graph.New()
	ord.Attach(g)
	e := &Engine{
		g:      g,
		ord:    ord,
		state:  core.NewState(g),
		shards: make([]*shardPart, shards),
		window: DefaultWindow,
	}
	for i := range e.shards {
		e.shards[i] = &shardPart{}
	}
	return e
}

// Shards returns the shard count P.
func (e *Engine) Shards() int { return len(e.shards) }

// SetWindow sets the number of changes ApplyAll groups into one parallel
// window (values below 1 restore DefaultWindow).
func (e *Engine) SetWindow(n int) {
	if n < 1 {
		n = DefaultWindow
	}
	e.window = n
}

// Stats returns the cumulative concurrency account.
func (e *Engine) Stats() Stats { return e.stats }

// Instrument attaches a complexity collector (nil detaches); see
// core.Instrument. The collector is written only by the coordinator
// goroutine after a window's workers have joined, never by the shard
// workers, so instrumentation adds no synchronization to the parallel
// cascade.
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// owner maps a slot to its shard: contiguous ownerBlock-sized slot blocks,
// round-robin across shards.
func (e *Engine) owner(s int32) int {
	return int(uint32(s) / ownerBlock % uint32(len(e.shards)))
}

// Graph exposes the engine's live graph. Callers must treat it as
// read-only; mutate only through Apply.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Order exposes the engine's node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether v is currently in the maintained MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.state.InMIS(v) }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return e.state.MIS() }

// State returns the full membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership { return e.state.Map() }

// Check verifies the MIS invariant on the current configuration.
func (e *Engine) Check() error { return core.CheckInvariantOn(e.g, e.ord, e.state) }

// Subscribe registers a change-feed callback. Events are published by the
// coordinator goroutine after each window's cascade has quiesced — never
// by the shard workers — in ascending node order, so subscribing adds no
// synchronization to the parallel phase.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// Apply performs one topology change (a window of one) and returns its
// cost report. On validation error the engine is unchanged.
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	return e.ApplyBatch([]graph.Change{c})
}

// ApplyAll applies a change sequence in windows of the configured size,
// accumulating reports; it stops at the first error.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for lo := 0; lo < len(cs); lo += e.window {
		hi := min(lo+e.window, len(cs))
		rep, err := e.ApplyBatch(cs[lo:hi])
		if err != nil {
			return total, fmt.Errorf("window at change %d: %w", lo, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// ApplyBatch applies one window: all changes are staged serially (which
// fixes π deterministically), then a single parallel recovery cascade
// brings the structure back to the greedy fixpoint. The final state is
// identical to applying the changes one at a time on the sequential
// engine, by history independence; only the cost differs.
//
// On a staging error the already-staged prefix's mutations remain
// applied, and the recovery cascade runs over the prefix's damage (also
// publishing its feed delta) before the error returns, mirroring
// Template.ApplyBatch: the engine stays consistent and usable.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	var (
		seeds      []graph.NodeID
		preFlipped []graph.NodeID
		touched    = make(map[graph.NodeID]core.Touched)
	)
	for i, c := range cs {
		// Capture the pre-window configuration of the node a node-change
		// touches before staging mutates it (first touch wins). Edge
		// changes mutate no membership during staging, so they need no
		// capture.
		if !c.Kind.IsEdge() {
			if _, seen := touched[c.Node]; !seen {
				touched[c.Node] = core.Touched{Present: e.g.HasNode(c.Node), M: e.state.Get(c.Node)}
			}
		}
		staged, err := core.StageChange(e.g, e.ord, e.state, c)
		if err != nil {
			e.runCascade(seeds)
			e.account(touched, preFlipped)
			return core.Report{}, fmt.Errorf("batch change %d: %w", i, err)
		}
		if staged.PreFlipped != graph.None {
			preFlipped = append(preFlipped, staged.PreFlipped)
		}
		seeds = append(seeds, staged.Frontier...)
	}

	e.runCascade(seeds)

	e.stats.Windows++
	e.stats.Updates += len(cs)
	e.stats.Seeds += len(seeds)

	rep := e.account(touched, preFlipped)
	if mc := e.coll; mc != nil {
		// The per-shard hop counters are still intact here: runCascade
		// resets them at the start of the *next* window.
		mc.Updates += uint64(len(cs))
		mc.Windows++
		mc.Adjustments += uint64(rep.Adjustments)
		mc.Influence += uint64(rep.SSize)
		mc.Flips += uint64(rep.Flips)
		mc.TouchedSlots += uint64(len(touched))
		mc.CrossShard += uint64(rep.CrossShard)
		for _, s := range e.shards {
			mc.Handoffs += uint64(s.localHops + s.crossShard)
		}
	}
	return rep, nil
}

// runCascade executes the parallel flip fixpoint from the given seeds.
// During the cascade the graph and order are read-only — the slot space is
// frozen — so the workers exchange raw slot indices; the membership lane
// is read under the owning shard's RLock and written only by the owning
// worker under the shard write lock, making the run race-free and
// -race-clean.
func (e *Engine) runCascade(seeds []graph.NodeID) {
	for _, s := range e.shards {
		s.flips = make(map[graph.NodeID]int)
		s.before = make(map[graph.NodeID]core.Membership)
		s.crossShard = 0
		s.localHops = 0
	}
	if len(seeds) == 0 {
		return
	}

	boxes := make([]*simnet.Mailbox, len(e.shards))
	for i := range boxes {
		boxes[i] = simnet.NewMailbox()
	}
	var (
		pending int64
		finish  sync.Once
	)
	shutdown := func() {
		finish.Do(func() {
			for _, b := range boxes {
				b.Close()
			}
		})
	}
	// Mailboxes carry slot indices (as their NodeID payload type): the
	// slot space is frozen for the whole cascade, and slots — unlike IDs —
	// index the arena directly.
	enqueue := func(s int32) {
		// Increment before Push so a concurrent worker draining the
		// entry cannot observe pending == 0 early; a deduplicated push
		// gives the credit back.
		atomic.AddInt64(&pending, 1)
		if !boxes[e.owner(s)].Push(graph.NodeID(s)) {
			if atomic.AddInt64(&pending, -1) == 0 {
				shutdown()
			}
		}
	}

	for _, v := range seeds {
		// Seeds staged away later in the same window no longer resolve;
		// their former neighbors were seeded separately.
		if i, ok := e.g.Index(v); ok {
			enqueue(int32(i))
		}
	}
	if atomic.LoadInt64(&pending) == 0 {
		// Every seed deduplicated or staged away; nothing to do.
		shutdown()
		return
	}

	var wg sync.WaitGroup
	for w := range e.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s, ok := boxes[w].Pop()
				if !ok {
					return
				}
				e.step(w, int32(s), enqueue)
				if atomic.AddInt64(&pending, -1) == 0 {
					shutdown()
				}
			}
		}(w)
	}
	wg.Wait()
}

// step evaluates the MIS invariant at slot s (owned by shard w) and flips
// it if violated, forwarding the slots whose invariant the flip can affect.
func (e *Engine) step(w int, s int32, enqueue func(int32)) {
	own := e.shards[w]
	own.mu.RLock()
	cur := e.state.At(int(s))
	own.mu.RUnlock()

	// ShouldBeIn under current states, with per-read shard locking. Reads
	// may be momentarily stale; any later flip of an earlier neighbor
	// re-enqueues s, so staleness delays convergence but cannot corrupt
	// the fixpoint.
	want := core.In
	for _, nb := range e.g.NeighborSlots(int(s)) {
		if !e.g.LessAt(int(nb), int(s)) {
			continue
		}
		su := e.shards[e.owner(nb)]
		su.mu.RLock()
		nin := e.state.At(int(nb)) == core.In
		su.mu.RUnlock()
		if nin {
			want = core.Out
			break
		}
	}
	if want == cur {
		return
	}

	v := e.g.IDAt(int(s))
	own.mu.Lock()
	if _, seen := own.flips[v]; !seen {
		own.before[v] = cur
	}
	own.flips[v]++
	e.state.SetAt(int(s), want)
	own.mu.Unlock()

	// Only nodes later in π can have been violated by this flip.
	for _, nb := range e.g.NeighborSlots(int(s)) {
		if !e.g.LessAt(int(s), int(nb)) {
			continue
		}
		if e.owner(nb) == w {
			own.localHops++
		} else {
			own.crossShard++
		}
		enqueue(nb)
	}
}

// account assembles the window's cost report from the staging touch map
// and the per-shard flip records, in O(touched) rather than O(n).
func (e *Engine) account(touched map[graph.NodeID]core.Touched, preFlipped []graph.NodeID) core.Report {
	var rep core.Report

	inS := make(map[graph.NodeID]struct{})
	for _, v := range preFlipped {
		inS[v] = struct{}{}
		rep.Flips++
	}
	for _, s := range e.shards {
		for v, n := range s.flips {
			inS[v] = struct{}{}
			rep.Flips += n
		}
		// Cascade-flipped nodes that staging did not touch entered the
		// window present, with the recorded pre-flip membership.
		for v, m := range s.before {
			if _, seen := touched[v]; !seen {
				touched[v] = core.Touched{Present: true, M: m}
			}
		}
		rep.CrossShard += s.crossShard
		e.stats.CrossShard += s.crossShard
		e.stats.LocalHandoffs += s.localHops
	}
	rep.SSize = len(inS)

	// Adjustment accounting matches core.DiffStates restricted to touched
	// nodes — untouched nodes cannot have changed. The same touched set
	// yields the window's change-feed delta, so a subscribed feed costs
	// O(touched · log touched) (for the canonical node ordering), not
	// O(n).
	adj, evs := core.DeltaFromTouched(e.g, e.state, touched, e.feed.Active())
	rep.Adjustments = adj
	e.feed.PublishSorted(evs)
	return rep
}
