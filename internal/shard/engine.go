// Package shard implements the sharded concurrent update engine: the
// template cascade of Algorithm 1 (internal/core) executed in parallel by
// P worker goroutines, each anchored to a partition of the vertex space.
//
// A window of topology changes is applied in two phases:
//
//  1. Staging (serial): every change is validated and its graph/order/
//     membership bookkeeping applied through core.StageChange — the same
//     staging path the sequential Template uses, so π evolves
//     identically and equal seeds yield bit-identical structures.
//     Staging collects the cascade seed set (the union of the per-change
//     candidate sets S0).
//  2. Recovery (parallel): the flip fixpoint runs as a distributed
//     worklist with work stealing. Each worker drains a private run
//     stack of candidate slots, re-evaluates the MIS invariant against
//     current neighbor states, flips under the slot-owning shard's lock,
//     and routes the later-in-π neighbors of every flipped node: slots
//     of its own shard onto the private stack, foreign slots into
//     per-destination outbox rings that are flushed as whole batches
//     into the destination worker's deque (simnet.Deque). A worker whose
//     own shard runs dry steals batches from busier shards' deques, so a
//     skewed cascade no longer leaves P−1 cores parked. Per-slot
//     deduplication and single-flight execution are enforced by an
//     atomic state machine (see cascade.go), not by queue identity, so
//     stealing cannot double-evaluate a slot.
//
// Storage is the same dense arena every engine shares: memberships live in
// the graph's one-byte state lane and priorities in its priority lane, so
// a worker's invariant evaluation is an array walk over neighbor slots.
// The partition is over slots, not node IDs — contiguous blocks of
// ownerBlock slots per shard — which keeps a shard's lane bytes on its own
// cache lines, and the graph's free-list is partitioned the same way
// (graph.PartitionFreeList), so staging recycles slots round-robin across
// shards instead of clumping one shard's blocks with all the fresh nodes.
// During a cascade the graph (and hence the slot space) is frozen, so
// workers exchange raw slot indices and never consult the NodeID index
// table.
//
// Correctness does not depend on scheduling: the membership assignment
// satisfying the invariant "v ∈ MIS iff no earlier-in-π neighbor is in the
// MIS" is unique for a fixed graph and order (it is the sequential greedy
// MIS), flips propagate strictly upward in π, and every flip re-enqueues
// exactly the nodes whose invariant it can affect — so the fixpoint the
// workers quiesce at is that unique assignment, regardless of shard count,
// stealing, or interleaving. This is the same history-independence
// argument (Definition 14) that makes the paper's distributed engines
// agree with the sequential oracle. The paper's Theorem 1 (E[|S|] ≤ 1) is
// what makes the design scale: the expected number of cascade hand-offs —
// and hence of cross-shard batches — is O(1) per change, independent of
// both the graph size and P.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
)

// DefaultWindow is the number of changes applied per parallel window by
// ApplyAll when SetWindow has not been called.
const DefaultWindow = 512

// ownerBlock is the slot-partition granularity: slots are assigned to
// shards in contiguous blocks of this size, aligning a shard's span of the
// one-byte state lane with whole cache lines so concurrent workers do not
// false-share.
const ownerBlock = 64

// Stats is the engine's cumulative concurrency account.
type Stats struct {
	// Windows is the number of parallel windows executed.
	Windows int
	// Updates is the total number of changes applied.
	Updates int
	// Seeds is the total number of cascade seed evaluations enqueued by
	// staging.
	Seeds int
	// LocalHandoffs counts cascade hand-offs whose destination slot is
	// owned by the flipping node's own shard.
	LocalHandoffs int
	// CrossShard counts cascade hand-offs that crossed a shard-ownership
	// boundary (the batched hand-off points). The local/cross split is by
	// slot ownership, so it is a deterministic property of the flip
	// sequence, not of which worker executed a slot.
	CrossShard int
	// Steals counts successful steal operations: an idle worker taking a
	// batch from a busier shard's deque. Unlike the hand-off counters
	// this depends on runtime scheduling and is not deterministic.
	Steals int
	// StolenSlots counts the queued slots acquired by those steals.
	StolenSlots int
}

// shardPart is one slot partition's synchronization point. The membership
// bytes themselves live in the shared arena lane; the shard lock guards
// exactly the lane bytes of the slots this shard owns. The padding keeps
// neighboring shards' locks off one cache line, so lock traffic on one
// shard does not false-share with its neighbors.
type shardPart struct {
	mu sync.RWMutex
	_  [40]byte
}

// Engine is the sharded concurrent MIS maintainer. It implements the same
// engine surface as core.Template and the message-passing engines; the
// concurrency is confined to ApplyBatch windows, so between calls the
// engine is quiescent and all accessors are plain reads.
//
// An Engine must not be used from multiple goroutines simultaneously: the
// parallelism is inside a window, not across callers.
type Engine struct {
	g       *graph.Graph
	ord     *order.Order
	state   core.State
	shards  []*shardPart
	workers []*worker
	window  int
	stats   Stats
	feed    core.Feed
	coll    *metrics.Collector // nil while instrumentation is disabled

	// Per-slot cascade lanes, sized to the arena by growScratch and held
	// across windows so no per-window O(n) allocation or clearing occurs
	// (all three are all-zero whenever the engine is quiescent).
	flags       []uint32 // cascade state machine, accessed atomically
	flipCount   []uint32 // flips of this slot in the current window
	firstBefore []byte   // pre-flip membership at first flip: 1=Out, 2=In

	pending   atomic.Int64 // queued + requeued slots in the running cascade
	lot       parkLot      // idle-worker parking for the running cascade
	seedBatch [][]int32    // per-owner seed staging, reused across windows

	// Previous window's hand-off/steal totals, folded from the worker
	// scratch by account and read by the instrumentation hook.
	winLocal, winCross, winSteals, winStolen int

	// forceParallel disables the serial fast path so tests exercise the
	// worker/stealing machinery even on single-processor runtimes and for
	// tiny seed sets.
	forceParallel bool
}

// Engine implements the full engine surface plus the persistence
// capability (its core state — graph, order, memberships — is the same
// data the template engine persists, merely partitioned) and the
// instrumentation capability.
var (
	_ core.Engine         = (*Engine)(nil)
	_ core.Snapshotter    = (*Engine)(nil)
	_ core.Instrument     = (*Engine)(nil)
	_ core.MemoryReporter = (*Engine)(nil)
)

// New returns an engine over the empty graph with the given shard count
// (values below 1 select GOMAXPROCS) and a fresh order seeded by seed.
func New(seed uint64, shards int) *Engine {
	return NewWithOrder(order.New(seed), shards)
}

// NewWithOrder returns an engine sharing a caller-supplied order, so that
// differential tests can run several engines under the same π.
func NewWithOrder(ord *order.Order, shards int) *Engine {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	g := graph.New()
	ord.Attach(g)
	// Partition the arena free-list along shard-ownership blocks: each
	// shard recycles slots it owns, so staging-heavy workloads do not
	// funnel every insertion through one shard's slot range.
	g.PartitionFreeList(shards, ownerBlock)
	e := &Engine{
		g:         g,
		ord:       ord,
		state:     core.NewState(g),
		shards:    make([]*shardPart, shards),
		workers:   make([]*worker, shards),
		window:    DefaultWindow,
		seedBatch: make([][]int32, shards),
	}
	for i := range e.shards {
		e.shards[i] = &shardPart{}
		e.workers[i] = &worker{out: make([][]int32, shards)}
	}
	e.lot.cond = sync.NewCond(&e.lot.mu)
	return e
}

// Shards returns the shard count P.
func (e *Engine) Shards() int { return len(e.shards) }

// SetWindow sets the number of changes ApplyAll groups into one parallel
// window (values below 1 restore DefaultWindow).
func (e *Engine) SetWindow(n int) {
	if n < 1 {
		n = DefaultWindow
	}
	e.window = n
}

// Stats returns the cumulative concurrency account.
func (e *Engine) Stats() Stats { return e.stats }

// Instrument attaches a complexity collector (nil detaches); see
// core.Instrument. The collector is written only by the coordinator
// goroutine after a window's workers have joined, never by the shard
// workers, so instrumentation adds no synchronization to the parallel
// cascade.
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// MemoryProfile accounts the sharded engine: the arena plus its
// per-slot cascade lanes (flags, flip counts, pre-flip bytes), the
// per-owner seed staging, each worker's deque, run stack, outboxes and
// touched log, and the order's priority table. Safe only while the
// engine is quiescent (between windows), like every other accessor.
func (e *Engine) MemoryProfile() metrics.Memory {
	aux := int64(cap(e.flags)+cap(e.flipCount))*4 +
		int64(cap(e.firstBefore)) +
		e.ord.MemBytes()
	for _, b := range e.seedBatch {
		aux += int64(cap(b)) * 4
	}
	for _, w := range e.workers {
		aux += int64(cap(w.local)+cap(w.touched))*4 + w.deque.MemBytes()
		for _, o := range w.out {
			aux += int64(cap(o)) * 4
		}
	}
	return core.ArenaMemory(e.g, aux)
}

// owner maps a slot to its shard: contiguous ownerBlock-sized slot blocks,
// round-robin across shards.
func (e *Engine) owner(s int32) int {
	return int(uint32(s) / ownerBlock % uint32(len(e.shards)))
}

// Graph exposes the engine's live graph. Callers must treat it as
// read-only; mutate only through Apply.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Order exposes the engine's node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether v is currently in the maintained MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.state.InMIS(v) }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return e.state.MIS() }

// State returns the full membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership { return e.state.Map() }

// Check verifies the MIS invariant on the current configuration.
func (e *Engine) Check() error { return core.CheckInvariantOn(e.g, e.ord, e.state) }

// Subscribe registers a change-feed callback. Events are published by the
// coordinator goroutine after each window's cascade has quiesced — never
// by the shard workers — in ascending node order, so subscribing adds no
// synchronization to the parallel phase.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// Apply performs one topology change (a window of one) and returns its
// cost report. On validation error the engine is unchanged.
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	return e.ApplyBatch([]graph.Change{c})
}

// ApplyAll applies a change sequence in windows of the configured size,
// accumulating reports; it stops at the first error.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for lo := 0; lo < len(cs); lo += e.window {
		hi := min(lo+e.window, len(cs))
		rep, err := e.ApplyBatch(cs[lo:hi])
		if err != nil {
			return total, fmt.Errorf("window at change %d: %w", lo, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// ApplyBatch applies one window: all changes are staged serially (which
// fixes π deterministically), then a single parallel recovery cascade
// brings the structure back to the greedy fixpoint. The final state is
// identical to applying the changes one at a time on the sequential
// engine, by history independence; only the cost differs.
//
// On a staging error the already-staged prefix's mutations remain
// applied, and the recovery cascade runs over the prefix's damage (also
// publishing its feed delta) before the error returns, mirroring
// Template.ApplyBatch: the engine stays consistent and usable. The
// attached metrics collector is not advanced for a failed window.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	var (
		seeds      []graph.NodeID
		preFlipped []graph.NodeID
		touched    = make(map[graph.NodeID]core.Touched)
	)
	for i, c := range cs {
		// Capture the pre-window configuration of the node a node-change
		// touches before staging mutates it (first touch wins). Edge
		// changes mutate no membership during staging, so they need no
		// capture.
		if !c.Kind.IsEdge() {
			if _, seen := touched[c.Node]; !seen {
				touched[c.Node] = core.Touched{Present: e.g.HasNode(c.Node), M: e.state.Get(c.Node)}
			}
		}
		staged, err := core.StageChange(e.g, e.ord, e.state, c)
		if err != nil {
			e.runCascade(seeds)
			e.account(touched, preFlipped)
			return core.Report{}, fmt.Errorf("batch change %d: %w", i, err)
		}
		if staged.PreFlipped != graph.None {
			preFlipped = append(preFlipped, staged.PreFlipped)
		}
		seeds = append(seeds, staged.Frontier...)
	}

	e.runCascade(seeds)

	e.stats.Windows++
	e.stats.Updates += len(cs)
	e.stats.Seeds += len(seeds)

	rep := e.account(touched, preFlipped)
	if mc := e.coll; mc != nil {
		mc.Updates += uint64(len(cs))
		mc.Windows++
		mc.Adjustments += uint64(rep.Adjustments)
		mc.Influence += uint64(rep.SSize)
		mc.Flips += uint64(rep.Flips)
		mc.TouchedSlots += uint64(len(touched))
		mc.CrossShard += uint64(e.winCross)
		mc.Handoffs += uint64(e.winLocal + e.winCross)
		mc.Steals += uint64(e.winSteals)
	}
	return rep, nil
}

// account assembles the window's cost report from the staging touch map
// and the per-worker flip records, in O(touched) rather than O(n), and
// returns the per-slot flip lanes to all-zero for the next window.
func (e *Engine) account(touched map[graph.NodeID]core.Touched, preFlipped []graph.NodeID) core.Report {
	var rep core.Report

	// preFlipped entries (nodes deleted while In) may repeat, and may
	// collide with a cascade flip of the same node (deleted, re-inserted
	// and flipped within one window). Cascade-flipped slots are unique by
	// construction — flipCount transitions 0→1 exactly once per slot — so
	// only this small set needs a dedup map for the |S| count.
	var inS map[graph.NodeID]struct{}
	if len(preFlipped) > 0 {
		inS = make(map[graph.NodeID]struct{}, len(preFlipped))
		for _, v := range preFlipped {
			rep.Flips++
			if _, dup := inS[v]; !dup {
				inS[v] = struct{}{}
				rep.SSize++
			}
		}
	}

	e.winLocal, e.winCross, e.winSteals, e.winStolen = 0, 0, 0, 0
	for _, wk := range e.workers {
		for _, s := range wk.touched {
			v := e.g.IDAt(int(s))
			rep.Flips += int(e.flipCount[s])
			before := core.Out
			if e.firstBefore[s] == 2 {
				before = core.In
			}
			e.flipCount[s] = 0
			e.firstBefore[s] = 0
			if inS == nil {
				rep.SSize++
			} else if _, dup := inS[v]; !dup {
				rep.SSize++
			}
			// Cascade-flipped nodes that staging did not touch entered
			// the window present, with the recorded pre-flip membership.
			if _, seen := touched[v]; !seen {
				touched[v] = core.Touched{Present: true, M: before}
			}
		}
		e.winLocal += wk.localHops
		e.winCross += wk.crossHops
		e.winSteals += wk.steals
		e.winStolen += wk.stolen
	}
	rep.CrossShard = e.winCross
	rep.Steals = e.winSteals
	e.stats.CrossShard += e.winCross
	e.stats.LocalHandoffs += e.winLocal
	e.stats.Steals += e.winSteals
	e.stats.StolenSlots += e.winStolen

	// Adjustment accounting matches core.DiffStates restricted to touched
	// nodes — untouched nodes cannot have changed. The same touched set
	// yields the window's change-feed delta, so a subscribed feed costs
	// O(touched · log touched) (for the canonical node ordering), not
	// O(n).
	adj, evs := core.DeltaFromTouched(e.g, e.state, touched, e.feed.Active())
	rep.Adjustments = adj
	e.feed.PublishSorted(evs)
	return rep
}
