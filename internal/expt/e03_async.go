package expt

import (
	"math/rand/v2"

	"dynmis/internal/direct"
	"dynmis/internal/simnet"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e3.Run = runE3; register(e3) }

var e3 = Experiment{
	ID:    "E3",
	Name:  "Asynchronous direct implementation: causal depth",
	Claim: "Corollary 6 (async): a single round in expectation, where an asynchronous round is the longest path of communication (causal chain of deliveries), under any message scheduler.",
}

func runE3(cfg Config) (*Result, error) {
	res := result(e3)
	table := stats.NewTable("async engine causal depth per edge change on G(n, 8/n)",
		"n", "scheduler", "changes", "mean depth", "max depth", "mean adj", "mean bcasts")

	for _, n := range []int{100, 300} {
		for _, sc := range []struct {
			name  string
			sched simnet.Scheduler
		}{
			{"fifo", simnet.FIFOScheduler{}},
			{"lifo", simnet.LIFOScheduler{}},
			{"random", &simnet.RandomScheduler{Rng: rand.New(rand.NewPCG(cfg.Seed, 31))}},
		} {
			steps := cfg.scale(500, 60)
			rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 29))
			eng := direct.NewAsync(cfg.Seed+uint64(n), sc.sched)
			if _, err := eng.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
				return nil, err
			}
			var depth, adj, bcasts stats.Series
			for _, c := range workload.EdgeChurn(rng, eng.Graph(), steps) {
				rep, err := eng.Apply(c)
				if err != nil {
					return nil, err
				}
				depth.ObserveInt(rep.CausalDepth)
				adj.ObserveInt(rep.Adjustments)
				bcasts.ObserveInt(rep.Broadcasts)
			}
			table.AddRow(n, sc.name, depth.N(), depth.Mean(), int(depth.Max()), adj.Mean(), bcasts.Mean())
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The causal depth counts the detection hop plus the recovery chain; its n- and scheduler-independence is the claim.")
	return res, nil
}
