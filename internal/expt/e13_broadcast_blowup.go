package expt

import (
	"dynmis/internal/direct"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
)

func init() { e13.Run = runE13; register(e13) }

var e13 = Experiment{
	ID:    "E13",
	Name:  "Direct implementation's flip blow-up vs. Algorithm 2",
	Claim: "§4: the direct implementation may change states up to |S|² times (quadratic broadcasts), while Algorithm 2 caps every node at three state changes (Lemma 8).",
}

// blowupGadget builds the π-increasing fan: v* (earliest) adjacent to all
// of u_1 < u_2 < … < u_k, which also form a path u_1-u_2-…-u_k. While v*
// is in the MIS every u_i is out; deleting v* gracefully makes the direct
// algorithm oscillate (u_i flips ≈ i times), while Algorithm 2 flips each
// node once.
func blowupGadget(k int, ord *order.Order) []graph.Change {
	ord.Set(0, 1) // v*
	cs := []graph.Change{graph.NodeChange(graph.NodeInsert, 0)}
	for i := 1; i <= k; i++ {
		ord.Set(graph.NodeID(i), order.Priority(i+1))
		nbrs := []graph.NodeID{0}
		if i > 1 {
			nbrs = append(nbrs, graph.NodeID(i-1))
		}
		cs = append(cs, graph.NodeChange(graph.NodeInsert, graph.NodeID(i), nbrs...))
	}
	return cs
}

func runE13(cfg Config) (*Result, error) {
	res := result(e13)
	table := stats.NewTable("graceful deletion of v* in the fan-path gadget (|S| = k)",
		"k", "direct flips", "direct bcasts", "alg2 flips", "alg2 bcasts", "flip ratio")

	ks := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		ks = []int{4, 8, 16}
	}
	for _, k := range ks {
		dOrd := order.New(1)
		dEng := direct.NewWithOrder(dOrd)
		if _, err := dEng.ApplyAll(blowupGadget(k, dOrd)); err != nil {
			return nil, err
		}
		dRep, err := dEng.Apply(graph.NodeChange(graph.NodeDeleteGraceful, 0))
		if err != nil {
			return nil, err
		}

		pOrd := order.New(1)
		pEng := protocol.NewWithOrder(pOrd)
		if _, err := pEng.ApplyAll(blowupGadget(k, pOrd)); err != nil {
			return nil, err
		}
		pRep, err := pEng.Apply(graph.NodeChange(graph.NodeDeleteGraceful, 0))
		if err != nil {
			return nil, err
		}

		ratio := float64(dRep.Flips) / float64(pRep.Flips)
		table.AddRow(k, dRep.Flips, dRep.Broadcasts, pRep.Flips, pRep.Broadcasts, ratio)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Direct flips grow quadratically in k (each u_i oscillates ≈ i/2 times); Algorithm 2 flips each of the k+1 influenced nodes exactly once, at 3 broadcasts per node.")
	return res, nil
}
