package expt

import (
	"dynmis/internal/core"
	"dynmis/internal/detgreedy"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e7.Run = runE7; register(e7) }

var e7 = Experiment{
	ID:    "E7",
	Name:  "Deterministic lower bound on K_{k,k}",
	Claim: "§1.1: for any deterministic algorithm there is a topology change forcing n adjustments (deleting one side of K_{k,k}); the randomized algorithm averages ≈1 on the same adversarial sequence.",
}

func runE7(cfg Config) (*Result, error) {
	res := result(e7)
	table := stats.NewTable("adversarial deletion sequence on K_{k,k}: worst single-change adjustments",
		"k", "det max adj", "det total adj", "rand mean adj", "rand max adj", "rand total adj")

	ks := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		ks = []int{4, 8, 16}
	}
	for _, k := range ks {
		// Deterministic victim.
		det := detgreedy.New()
		if _, err := det.ApplyAll(workload.CompleteBipartite(k)); err != nil {
			return nil, err
		}
		detMax, detTotal := 0, 0
		for _, c := range workload.LowerBoundDeletions(k) {
			rep, err := det.Apply(c)
			if err != nil {
				return nil, err
			}
			detTotal += rep.Adjustments
			if rep.Adjustments > detMax {
				detMax = rep.Adjustments
			}
		}

		// Randomized algorithm on the same sequence, averaged over
		// seeds. The sequence deletes side L, which the adversary
		// cannot correlate with the algorithm's coins (oblivious
		// adversary), so the per-change expectation stays ≈ 1 until
		// the forced final flip, whose cost the adversary cannot
		// dodge either — but it pays on average once over k changes.
		var mean, maxAdj, totals stats.Series
		seeds := cfg.scale(40, 8)
		for s := 0; s < seeds; s++ {
			eng := core.NewTemplate(cfg.Seed + uint64(1000*k+s))
			if _, err := eng.ApplyAll(workload.CompleteBipartite(k)); err != nil {
				return nil, err
			}
			total, worst := 0, 0
			for _, c := range workload.LowerBoundDeletions(k) {
				rep, err := eng.Apply(c)
				if err != nil {
					return nil, err
				}
				total += rep.Adjustments
				if rep.Adjustments > worst {
					worst = rep.Adjustments
				}
			}
			mean.Observe(float64(total) / float64(k))
			maxAdj.ObserveInt(worst)
			totals.ObserveInt(total)
		}
		table.AddRow(k, detMax, detTotal, mean.Mean(), int(maxAdj.Max()), totals.Mean())
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"det max adj ≥ k shows the deterministic blow-up; the randomized mean stays ≈ 1 per change, and even the randomized max is bounded by the one unavoidable side-flip (the sequence forces total ≥ k on any algorithm, matching the paper's claim that 1 expected adjustment is optimal).")
	return res, nil
}
