package expt

import (
	"math/rand/v2"

	"dynmis/internal/graph"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e5.Run = runE5; register(e5) }

var e5 = Experiment{
	ID:    "E5",
	Name:  "Node insertion cost vs. degree",
	Claim: "Lemma 10: inserting a node v* costs O(d(v*)) broadcasts (the introduction replies) and O(1) rounds, in expectation.",
}

func runE5(cfg Config) (*Result, error) {
	res := result(e5)
	table := stats.NewTable("Algorithm 2 node-insertion cost into G(n=600, p=4/n), by attach degree",
		"degree d", "trials", "mean bcasts", "bcasts - d", "mean rounds", "mean adj")

	rng := rand.New(rand.NewPCG(cfg.Seed, 43))
	eng := protocol.New(cfg.Seed + 5)
	n := 600
	if _, err := eng.ApplyAll(workload.GNP(rng, n, 4/float64(n))); err != nil {
		return nil, err
	}

	nextID := graph.NodeID(10 * n)
	trials := cfg.scale(60, 8)
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		var bcasts, rounds, adj stats.Series
		for trial := 0; trial < trials; trial++ {
			nodes := eng.Graph().Nodes()
			// Choose d distinct attachment points.
			perm := rng.Perm(len(nodes))
			nbrs := make([]graph.NodeID, 0, d)
			for _, idx := range perm[:d] {
				nbrs = append(nbrs, nodes[idx])
			}
			rep, err := eng.Apply(graph.NodeChange(graph.NodeInsert, nextID, nbrs...))
			if err != nil {
				return nil, err
			}
			bcasts.ObserveInt(rep.Broadcasts)
			rounds.ObserveInt(rep.Rounds)
			adj.ObserveInt(rep.Adjustments)
			// Remove it again so trials are independent.
			if _, err := eng.Apply(graph.NodeChange(graph.NodeDeleteGraceful, nextID)); err != nil {
				return nil, err
			}
			nextID++
		}
		table.AddRow(d, bcasts.N(), bcasts.Mean(), bcasts.Mean()-float64(d), rounds.Mean(), adj.Mean())
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The 'bcasts - d' column isolates the O(1) recovery on top of the d introduction replies; it must stay flat as d grows.")
	return res, nil
}
