package expt

import (
	"math"
	"math/rand/v2"

	"dynmis/internal/graph"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e6.Run = runE6; register(e6) }

var e6 = Experiment{
	ID:    "E6",
	Name:  "Abrupt node deletion cost",
	Claim: "Lemma 13: abruptly deleting v* costs O(min(log n, d(v*))) broadcasts in expectation, with at most min(log₃|S|, d(v*)) re-entries to state C per node (Lemma 12).",
}

func runE6(cfg Config) (*Result, error) {
	res := result(e6)
	table := stats.NewTable("Algorithm 2 abrupt hub deletion from G(n=500, p=4/n), by hub degree",
		"degree d", "trials", "hub in MIS", "mean bcasts", "bcasts | in MIS", "mean flips/node", "max flips/node", "bound log3|S|+1")

	rng := rand.New(rand.NewPCG(cfg.Seed, 47))
	eng := protocol.New(cfg.Seed + 6)
	n := 500
	if _, err := eng.ApplyAll(workload.GNP(rng, n, 4/float64(n))); err != nil {
		return nil, err
	}

	nextID := graph.NodeID(10 * n)
	for _, d := range []int{2, 4, 8, 16, 32, 64} {
		// A hub of degree d is in the MIS with probability ≈ 1/(d+1);
		// scale trials so the conditional columns stay populated.
		trials := cfg.scale(40+12*d, 8+3*d)
		var bcasts, condBcasts, ssize, flipsPerNode stats.Series
		maxFlips, triggered := 0.0, 0
		for trial := 0; trial < trials; trial++ {
			nodes := eng.Graph().Nodes()
			perm := rng.Perm(len(nodes))
			nbrs := make([]graph.NodeID, 0, d)
			for _, idx := range perm[:d] {
				nbrs = append(nbrs, nodes[idx])
			}
			hub := nextID
			nextID++
			if _, err := eng.Apply(graph.NodeChange(graph.NodeInsert, hub, nbrs...)); err != nil {
				return nil, err
			}
			wasIn := eng.InMIS(hub)
			rep, err := eng.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, hub))
			if err != nil {
				return nil, err
			}
			bcasts.ObserveInt(rep.Broadcasts)
			ssize.ObserveInt(rep.SSize)
			if wasIn {
				triggered++
				condBcasts.ObserveInt(rep.Broadcasts)
			}
			if rep.SSize > 1 { // exclude the hub's own accounting entry
				perNode := float64(rep.Flips-1) / float64(rep.SSize-1)
				flipsPerNode.Observe(perNode)
				if perNode > maxFlips {
					maxFlips = perNode
				}
			}
		}
		bound := math.Log(math.Max(ssize.Max(), 3))/math.Log(3) + 1
		table.AddRow(d, trials, triggered, bcasts.Mean(), condBcasts.Mean(), flipsPerNode.Mean(), maxFlips, bound)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The expectation over π stays O(1) because a high-degree hub is rarely in the MIS; the flips/node columns verify the per-node re-entry bound that caps the worst case.")
	return res, nil
}
