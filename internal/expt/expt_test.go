package expt

import (
	"strconv"
	"strings"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registered %d experiments, want 19", len(all))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Name == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// TestAllExperimentsQuick runs every experiment at quick scale, checking
// they complete and render non-trivial tables. This is the end-to-end
// integration test of the whole reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are statistical")
	}
	cfg := Config{Seed: 12345, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q empty", tbl.Title)
				}
			}
			var sb strings.Builder
			res.Render(&sb)
			out := sb.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "paper claim") {
				t.Errorf("render missing header:\n%s", out)
			}
		})
	}
}

// TestE1MeanWithinTheorem1 measures Theorem 1 the way it is stated: a
// FIXED graph and a FIXED topology change, expectation over the random
// order only. Node deletion is the near-equality case (E[|S|] ≈ 1), so it
// is the sharpest check; sampling 3000 orders gives a standard error of
// about 0.04.
func TestE1MeanWithinTheorem1(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical")
	}
	var s stats.Series
	for seed := 0; seed < 3000; seed++ {
		eng := core.NewTemplate(uint64(seed))
		if _, err := eng.ApplyAll(workload.Grid(10, 10)); err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Apply(graph.NodeChange(graph.NodeDeleteGraceful, 45))
		if err != nil {
			t.Fatal(err)
		}
		s.ObserveInt(rep.SSize)
	}
	if mean := s.Mean(); mean > 1.0+4*s.StdErr() {
		t.Errorf("E[|S|] = %.4f ± %.4f over %d orders, exceeds Theorem 1's bound of 1",
			mean, s.StdErr(), s.N())
	}
	t.Logf("E[|S|] = %.4f ± %.4f over %d orders (Theorem 1 bound: 1)", s.Mean(), s.StdErr(), s.N())
}

// TestE1QuickBucketsSane keeps a loose sanity bound on the per-kind table
// at quick scale, where buckets are small and heavy-tailed.
func TestE1QuickBucketsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical")
	}
	res, err := e1.Run(Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		mean, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		if mean > 3.0 {
			t.Errorf("%s/%s: mean |S| = %.3f, implausibly high even for a small sample", row[0], row[1], mean)
		}
	}
}
