package expt

import (
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/order"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e15.Run = runE15; register(e15) }

var e15 = Experiment{
	ID:   "E15",
	Name: "Extension: batched changes (multiple failures at a time)",
	Claim: "§6 open question: can the analysis cope with more than a single change at a time? Measured answer: recovering once from k changes " +
		"costs no more adjustments than k single-change recoveries (intermediate flip-and-flip-back work is skipped), and E[|S|] grows at most linearly in k.",
}

func runE15(cfg Config) (*Result, error) {
	res := result(e15)
	table := stats.NewTable("batch of k edge changes on G(n=150, 8/n): one recovery vs. k recoveries",
		"batch k", "trials", "batch |S|", "seq |S| total", "batch adj", "seq adj total", "adj ratio")

	ks := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		ks = []int{1, 4, 16}
	}
	n := 150
	for _, k := range ks {
		trials := cfg.scale(120, 20)
		var bS, sS, bAdj, sAdj stats.Series
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(k*100000+trial)
			rng := rand.New(rand.NewPCG(seed, 71))
			build := workload.GNP(rng, n, 8/float64(n))
			batch := workload.EdgeChurn(rng, workload.BuildGraph(build), k)

			seq := core.NewTemplateWithOrder(order.New(seed))
			bat := core.NewTemplateWithOrder(order.New(seed))
			if _, err := seq.ApplyAll(build); err != nil {
				return nil, err
			}
			if _, err := bat.ApplyBatch(build); err != nil {
				return nil, err
			}
			rs, err := seq.ApplyAll(batch)
			if err != nil {
				return nil, err
			}
			rb, err := bat.ApplyBatch(batch)
			if err != nil {
				return nil, err
			}
			bS.ObserveInt(rb.SSize)
			sS.ObserveInt(rs.SSize)
			bAdj.ObserveInt(rb.Adjustments)
			sAdj.ObserveInt(rs.Adjustments)
		}
		ratio := 1.0
		if sAdj.Mean() > 0 {
			ratio = bAdj.Mean() / sAdj.Mean()
		}
		table.AddRow(k, trials, bS.Mean(), sS.Mean(), bAdj.Mean(), sAdj.Mean(), ratio)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Correctness under batching is exact (history independence: both paths end at greedy(G_final, π) — tested in internal/core); the table quantifies the cost: batch |S| ≲ k·E[|S|] and batched adjustments never exceed the sequential total.")
	return res, nil
}
