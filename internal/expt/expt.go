// Package expt is the experiment harness: one experiment per quantitative
// claim of the paper (theorems, lemmas, the lower bound, and the worked
// examples of §5). The paper has no measured tables of its own — it is a
// theory paper — so each experiment defines the table that *would* verify
// its claim and regenerates it from the implementation. EXPERIMENTS.md
// records claim vs. measurement for every entry.
package expt

import (
	"cmp"
	"fmt"
	"io"
	"slices"

	"dynmis/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed uint64
	// Quick shrinks trial counts for tests and benchmarks.
	Quick bool
}

// scale returns full when Quick is off, otherwise quick.
func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Result is an experiment's rendered outcome.
type Result struct {
	ID     string
	Name   string
	Claim  string
	Tables []*stats.Table
	Notes  []string
}

// Render writes the result to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s\n", r.ID, r.Name)
	fmt.Fprintf(w, "paper claim: %s\n\n", r.Claim)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Name  string
	Claim string
	Run   func(cfg Config) (*Result, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b Experiment) int {
		// Numeric-aware: E2 before E10.
		if c := cmp.Compare(len(a.ID), len(b.ID)); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
	}
	return e, nil
}

// result is a small helper for experiment constructors.
func result(e Experiment) *Result {
	return &Result{ID: e.ID, Name: e.Name, Claim: e.Claim}
}
