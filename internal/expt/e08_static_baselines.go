package expt

import (
	"math/rand/v2"

	"dynmis/internal/ghaffari"
	"dynmis/internal/luby"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e8.Run = runE8; register(e8) }

var e8 = Experiment{
	ID:    "E8",
	Name:  "Dynamic algorithm vs. static recompute baselines",
	Claim: "§1: re-running a static MIS algorithm per change costs Θ(log n) rounds and Θ(n) broadcasts (Luby/Ghaffari), while the dynamic algorithm stays O(1)/O(1) — the static/dynamic separation.",
}

func runE8(cfg Config) (*Result, error) {
	res := result(e8)
	table := stats.NewTable("per-edge-change cost on G(n, 8/n): static recompute vs. Algorithm 2",
		"n", "algorithm", "mean rounds", "mean bcasts", "mean adj")

	ns := []int{100, 200, 400, 800}
	if cfg.Quick {
		ns = []int{100, 200}
	}
	for _, n := range ns {
		steps := cfg.scale(120, 20)
		p := 8 / float64(n)

		// Shared workload for all three algorithms.
		wrng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 53))
		build := workload.GNP(wrng, n, p)
		churn := workload.EdgeChurn(wrng, workload.BuildGraph(build), steps)

		type algo struct {
			name  string
			apply func() (roundsMean, bcastMean, adjMean float64, err error)
		}
		algos := []algo{
			{"luby-recompute", func() (float64, float64, float64, error) {
				m := luby.NewMaintainer(cfg.Seed + uint64(n))
				if _, err := m.ApplyAll(build); err != nil {
					return 0, 0, 0, err
				}
				var r, b, a stats.Series
				for _, c := range churn {
					rep, err := m.Apply(c)
					if err != nil {
						return 0, 0, 0, err
					}
					r.ObserveInt(rep.Rounds)
					b.ObserveInt(rep.Broadcasts)
					a.ObserveInt(rep.Adjustments)
				}
				return r.Mean(), b.Mean(), a.Mean(), nil
			}},
			{"ghaffari-recompute", func() (float64, float64, float64, error) {
				m := ghaffari.NewMaintainer(cfg.Seed + uint64(n))
				if _, err := m.ApplyAll(build); err != nil {
					return 0, 0, 0, err
				}
				var r, b, a stats.Series
				for _, c := range churn {
					rep, err := m.Apply(c)
					if err != nil {
						return 0, 0, 0, err
					}
					r.ObserveInt(rep.Rounds)
					b.ObserveInt(rep.Broadcasts)
					a.ObserveInt(rep.Adjustments)
				}
				return r.Mean(), b.Mean(), a.Mean(), nil
			}},
			{"dynamic (Alg 2)", func() (float64, float64, float64, error) {
				m := protocol.New(cfg.Seed + uint64(n))
				if _, err := m.ApplyAll(build); err != nil {
					return 0, 0, 0, err
				}
				var r, b, a stats.Series
				for _, c := range churn {
					rep, err := m.Apply(c)
					if err != nil {
						return 0, 0, 0, err
					}
					r.ObserveInt(rep.Rounds)
					b.ObserveInt(rep.Broadcasts)
					a.ObserveInt(rep.Adjustments)
				}
				return r.Mean(), b.Mean(), a.Mean(), nil
			}},
		}
		for _, al := range algos {
			r, b, a, err := al.apply()
			if err != nil {
				return nil, err
			}
			table.AddRow(n, al.name, r, b, a)
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Static baselines also adjust many nodes per change (their output is resampled), destroying output stability — the second axis of the separation.")
	return res, nil
}
