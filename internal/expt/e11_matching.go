package expt

import (
	"dynmis/internal/matching"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e11.Run = runE11; register(e11) }

var e11 = Experiment{
	ID:    "E11",
	Name:  "History independence: matching on disjoint 3-edge paths",
	Claim: "§5 Example 2: on n/4 disjoint 3-edge paths, the maintained maximal matching has expected size 5n/12 (2 edges w.p. 2/3, 1 edge w.p. 1/3 per path) versus the worst case n/4.",
}

func runE11(cfg Config) (*Result, error) {
	res := result(e11)
	table := stats.NewTable("E[|matching|] on disjoint 3-edge paths (n = 4·paths nodes)",
		"paths", "n", "seeds", "measured", "predicted 5n/12", "worst n/4")

	pathCounts := []int{3, 10, 30}
	if cfg.Quick {
		pathCounts = []int{3, 10}
	}
	for _, paths := range pathCounts {
		n := 4 * paths
		seeds := cfg.scale(200, 30)
		var size stats.Series
		for s := 0; s < seeds; s++ {
			m := matching.New(cfg.Seed + uint64(paths*10000+s))
			if _, err := m.ApplyAll(workload.ThreePaths(paths)); err != nil {
				return nil, err
			}
			size.ObserveInt(len(m.Matching()))
		}
		table.AddRow(paths, n, seeds, size.Mean(), float64(5*n)/12, float64(n)/4)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Per path: the middle edge is the greedy minimum with probability 1/3 (matching size 1); otherwise both outer edges match (size 2). E = 1/3·1 + 2/3·2 = 5/3 per path.")
	return res, nil
}
