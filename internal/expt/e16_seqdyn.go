package expt

import (
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/order"
	"dynmis/internal/seqdyn"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e16.Run = runE16; register(e16) }

var e16 = Experiment{
	ID:   "E16",
	Name: "Extension: sequential dynamic MIS (update work vs. recompute)",
	Claim: "§6: the template carries over to the sequential dynamic setting at O(Δ) expected update cost. Measured: per-update work " +
		"(adjacency entries touched) is a small constant on bounded-average-degree graphs and does not grow with n, versus Θ(n+m) for recomputation.",
}

func runE16(cfg Config) (*Result, error) {
	res := result(e16)
	table := stats.NewTable("sequential dynamic MIS: work per edge-change update on G(n, 8/n)",
		"n", "m", "updates", "mean work", "max work", "mean flips", "recompute work (n+2m)")

	ns := []int{200, 800, 3200, 12800}
	if cfg.Quick {
		ns = []int{200, 800}
	}
	for _, n := range ns {
		steps := cfg.scale(1500, 150)
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 73))
		eng := seqdyn.New(cfg.Seed + uint64(n))
		if _, err := eng.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
			return nil, err
		}
		m := eng.Graph().EdgeCount()
		var work, flips stats.Series
		for _, c := range workload.EdgeChurn(rng, eng.Graph(), steps) {
			rep, err := eng.Apply(c)
			if err != nil {
				return nil, err
			}
			work.ObserveInt(rep.Work)
			flips.ObserveInt(rep.Flips)
		}
		if err := eng.Check(); err != nil {
			return nil, err
		}
		table.AddRow(n, m, work.N(), work.Mean(), int(work.Max()), flips.Mean(), n+2*m)
	}
	res.Tables = append(res.Tables, table)

	// Sanity cross-check: the sequential structure and the template agree
	// on adjustments (each seqdyn node flips at most once, to its final
	// value).
	check := stats.NewTable("cross-check vs. template on shared order (n=120)",
		"changes", "adj (seqdyn)", "adj (template)", "states equal")
	rng := rand.New(rand.NewPCG(cfg.Seed, 79))
	sEng := seqdyn.NewWithOrder(order.New(cfg.Seed + 16))
	tEng := core.NewTemplateWithOrder(order.New(cfg.Seed + 16))
	build := workload.GNP(rng, 120, 0.05)
	if _, err := sEng.ApplyAll(build); err != nil {
		return nil, err
	}
	if _, err := tEng.ApplyAll(build); err != nil {
		return nil, err
	}
	churn := workload.EdgeChurn(rng, sEng.Graph(), cfg.scale(400, 60))
	sAdj, tAdj := 0, 0
	for _, c := range churn {
		sr, err := sEng.Apply(c)
		if err != nil {
			return nil, err
		}
		tr, err := tEng.Apply(c)
		if err != nil {
			return nil, err
		}
		sAdj += sr.Adjustments
		tAdj += tr.Adjustments
	}
	check.AddRow(len(churn), sAdj, tAdj, core.EqualStates(sEng.State(), tEng.State()))
	res.Tables = append(res.Tables, check)
	res.Notes = append(res.Notes,
		"'work' counts adjacency entries touched per update; the recompute column is what re-running greedy from scratch costs. The gap grows linearly in graph size.")
	return res, nil
}
