package expt

import (
	"math/rand/v2"

	"dynmis/internal/clustering"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e9.Run = runE9; register(e9) }

var e9 = Experiment{
	ID:    "E9",
	Name:  "Correlation clustering 3-approximation",
	Claim: "§1.1 (after Ailon–Charikar–Newman): random-greedy pivot clustering derived from the MIS is a 3-approximation to optimal correlation clustering, in expectation.",
}

func runE9(cfg Config) (*Result, error) {
	res := result(e9)
	table := stats.NewTable("pivot clustering cost vs. brute-force optimum, G(9, p)",
		"p", "graphs", "mean OPT", "mean cost", "mean ratio", "worst graph ratio")

	runs := cfg.scale(60, 10)
	graphsPer := cfg.scale(12, 4)
	for _, p := range []float64{0.2, 0.4, 0.6} {
		var opts, costs, ratios stats.Series
		worst := 0.0
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(p*100), 59))
		for gi := 0; gi < graphsPer; gi++ {
			build := workload.GNP(rng, 9, p)
			g := workload.BuildGraph(build)
			opt, err := clustering.OptimalCost(g)
			if err != nil {
				return nil, err
			}
			var mean stats.Series
			for r := 0; r < runs; r++ {
				m := clustering.New(cfg.Seed + uint64(gi*1000+r))
				if _, err := m.ApplyAll(build); err != nil {
					return nil, err
				}
				mean.ObserveInt(m.Cost())
			}
			opts.ObserveInt(opt)
			costs.Observe(mean.Mean())
			if opt > 0 {
				ratio := mean.Mean() / float64(opt)
				ratios.Observe(ratio)
				if ratio > worst {
					worst = ratio
				}
			}
		}
		table.AddRow(p, graphsPer, opts.Mean(), costs.Mean(), ratios.Mean(), worst)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Ratios are per-graph means over seeds (the guarantee is in expectation); they must stay ≤ 3 up to sampling noise — typically ≈ 1.1-1.5.")
	return res, nil
}
