package expt

import (
	"fmt"
	"math"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/stats"
)

func init() { e17.Run = runE17; register(e17) }

var e17 = Experiment{
	ID:   "E17",
	Name: "History independence, distributionally (Definition 14)",
	Claim: "Def. 14: the distribution of the output structure depends only on the current graph, not on the history of changes that built it — " +
		"the adversary cannot bias the MIS by choosing the construction path.",
}

// e17HistoryA builds the path 0-1-2-3 directly.
func e17HistoryA() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 0),
		graph.NodeChange(graph.NodeInsert, 1, 0),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
	}
}

// e17HistoryB reaches the same path adversarially: decoy nodes, extra
// edges, deletions and reorderings.
func e17HistoryB() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 3),
		graph.NodeChange(graph.NodeInsert, 99),
		graph.NodeChange(graph.NodeInsert, 1, 3, 99),
		graph.NodeChange(graph.NodeInsert, 0, 99),
		graph.NodeChange(graph.NodeInsert, 2, 0, 1, 3, 99),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 3),
		graph.EdgeChange(graph.EdgeDeleteAbrupt, 0, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 99),
		graph.EdgeChange(graph.EdgeInsert, 0, 1),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 1),
		graph.EdgeChange(graph.EdgeInsert, 1, 2),
	}
}

func runE17(cfg Config) (*Result, error) {
	res := result(e17)
	runs := cfg.scale(8000, 800)

	sample := func(history []graph.Change, offset uint64) (map[string]int, error) {
		counts := map[string]int{}
		for s := 0; s < runs; s++ {
			eng := core.NewTemplate(cfg.Seed + offset + uint64(s))
			if _, err := eng.ApplyAll(history); err != nil {
				return nil, err
			}
			counts[fmt.Sprint(eng.MIS())]++
		}
		return counts, nil
	}

	countA, err := sample(e17HistoryA(), 0)
	if err != nil {
		return nil, err
	}
	countB, err := sample(e17HistoryB(), 10_000_000)
	if err != nil {
		return nil, err
	}

	// Exact distribution of random greedy on the path 0-1-2-3, computed
	// by enumerating all 24 orders.
	exact := exactPathDistribution()

	table := stats.NewTable(
		fmt.Sprintf("MIS outcome distribution on the path 0-1-2-3 (%d runs per history)", runs),
		"outcome", "P (direct history)", "P (adversarial history)", "P (exact, all 4! orders)")
	keys := map[string]bool{}
	for k := range countA {
		keys[k] = true
	}
	for k := range countB {
		keys[k] = true
	}
	for k := range exact {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	slices.Sort(sorted)
	tv := 0.0
	for _, k := range sorted {
		pa := float64(countA[k]) / float64(runs)
		pb := float64(countB[k]) / float64(runs)
		tv += math.Abs(pa - pb)
		table.AddRow(k, pa, pb, exact[k])
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("total variation distance between the two histories: %.4f (sampling noise scale ≈ %.4f); both match the exact random-greedy law.",
			tv/2, 1/math.Sqrt(float64(runs))))
	return res, nil
}

// exactPathDistribution enumerates all 24 orders of the path's nodes and
// returns the exact outcome law of greedy.
func exactPathDistribution() map[string]float64 {
	nodes := []graph.NodeID{0, 1, 2, 3}
	adj := map[graph.NodeID][]graph.NodeID{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
	out := map[string]float64{}
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			pos := make(map[graph.NodeID]int, 4)
			for i, p := range perm {
				pos[nodes[p]] = i
			}
			in := map[graph.NodeID]bool{}
			ordered := make([]graph.NodeID, 4)
			for v, i := range pos {
				ordered[i] = v
			}
			var mis []graph.NodeID
			for _, v := range ordered {
				ok := true
				for _, u := range adj[v] {
					if in[u] {
						ok = false
					}
				}
				if ok {
					in[v] = true
				}
			}
			for _, v := range nodes {
				if in[v] {
					mis = append(mis, v)
				}
			}
			out[fmt.Sprint(mis)] += 1.0 / 24
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}
