package expt

import (
	"math/rand/v2"

	"dynmis/internal/graph"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e18.Run = runE18; register(e18) }

var e18 = Experiment{
	ID:   "E18",
	Name: "Topology robustness of the O(1) guarantees",
	Claim: "Theorem 1 / Theorem 7 hold for every graph and every change: the per-change expectations stay O(1) across degree " +
		"distributions — uniform (G(n,p)), geometric (unit disk), heavy-tailed (preferential attachment), and structured (grid).",
}

func runE18(cfg Config) (*Result, error) {
	res := result(e18)
	table := stats.NewTable("Algorithm 2 per-edge-change cost by topology family (n ≈ 400)",
		"family", "n", "m", "max deg", "changes", "mean adj", "mean rounds", "mean bcasts", "max bcasts")

	families := []struct {
		name  string
		build func(rng *rand.Rand) []graph.Change
	}{
		{"gnp", func(rng *rand.Rand) []graph.Change { return workload.GNP(rng, 400, 8/400.0) }},
		{"unit-disk", func(rng *rand.Rand) []graph.Change { return workload.UnitDisk(rng, 400, 0.08) }},
		{"barabasi(m=3)", func(rng *rand.Rand) []graph.Change { return workload.Barabasi(rng, 400, 3) }},
		{"grid(20x20)", func(rng *rand.Rand) []graph.Change { return workload.Grid(20, 20) }},
	}
	steps := cfg.scale(600, 80)

	for fi, fam := range families {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(fi), 83))
		eng := protocol.New(cfg.Seed + uint64(18000+fi))
		if _, err := eng.ApplyAll(fam.build(rng)); err != nil {
			return nil, err
		}
		n := eng.Graph().NodeCount()
		m := eng.Graph().EdgeCount()
		maxDeg := eng.Graph().MaxDegree()
		var adj, rounds, bcasts stats.Series
		for _, c := range workload.EdgeChurn(rng, eng.Graph(), steps) {
			rep, err := eng.Apply(c)
			if err != nil {
				return nil, err
			}
			adj.ObserveInt(rep.Adjustments)
			rounds.ObserveInt(rep.Rounds)
			bcasts.ObserveInt(rep.Broadcasts)
		}
		if err := eng.Check(); err != nil {
			return nil, err
		}
		table.AddRow(fam.name, n, m, maxDeg, adj.N(), adj.Mean(), rounds.Mean(), bcasts.Mean(), int(bcasts.Max()))
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The means stay flat across families with very different degree tails (compare the max-deg column); only the per-change maxima move, as Theorem 1's expectation-only nature predicts.")
	return res, nil
}
