package expt

import (
	"math/rand/v2"

	"dynmis/internal/graph"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e4.Run = runE4; register(e4) }

var e4 = Experiment{
	ID:    "E4",
	Name:  "Algorithm 2 per-change-kind cost",
	Claim: "Theorem 7 / Lemma 9: O(1) rounds for all changes; O(1) broadcasts for edge insertions/deletions, graceful node deletion and unmuting, in expectation.",
}

func runE4(cfg Config) (*Result, error) {
	res := result(e4)
	table := stats.NewTable("Algorithm 2 cost per change on evolving G(n=300, p=8/n)",
		"kind", "trials", "mean rounds", "max rounds", "mean bcasts", "max bcasts", "mean bits", "mean adj")

	rng := rand.New(rand.NewPCG(cfg.Seed, 41))
	eng := protocol.New(cfg.Seed + 4)
	n := 300
	if _, err := eng.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
		return nil, err
	}

	type agg struct{ rounds, bcasts, bits, adj stats.Series }
	perKind := map[string]*agg{}
	observe := func(kind string, rounds, bcasts, bits, adj int) {
		a, ok := perKind[kind]
		if !ok {
			a = &agg{}
			perKind[kind] = a
		}
		a.rounds.ObserveInt(rounds)
		a.bcasts.ObserveInt(bcasts)
		a.bits.ObserveInt(bits)
		a.adj.ObserveInt(adj)
	}

	steps := cfg.scale(1500, 150)
	muted := map[graph.NodeID][]graph.NodeID{}
	for i := 0; i < steps; i++ {
		g := eng.Graph()
		nodes := g.Nodes()
		var c graph.Change
		var label string
		switch op := rng.IntN(10); {
		case op < 3: // edge insert
			u := nodes[rng.IntN(len(nodes))]
			v := nodes[rng.IntN(len(nodes))]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			c, label = graph.EdgeChange(graph.EdgeInsert, u, v), "edge-insert"
		case op < 6: // edge delete
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			kind, lab := graph.EdgeDeleteGraceful, "edge-delete-graceful"
			if rng.IntN(2) == 0 {
				kind, lab = graph.EdgeDeleteAbrupt, "edge-delete-abrupt"
			}
			c, label = graph.EdgeChange(kind, e[0], e[1]), lab
		case op < 8: // graceful node delete (re-inserted later to keep size)
			if len(nodes) < n/2 {
				continue
			}
			v := nodes[rng.IntN(len(nodes))]
			c, label = graph.NodeChange(graph.NodeDeleteGraceful, v), "node-delete-graceful"
		case op < 9: // mute (bookkeeping only; measured under unmute)
			if len(muted) > 4 || len(nodes) < 10 {
				continue
			}
			v := nodes[rng.IntN(len(nodes))]
			muted[v] = g.Neighbors(v)
			c, label = graph.NodeChange(graph.NodeMute, v), "node-mute"
		default: // unmute
			var v graph.NodeID = graph.None
			for m := range muted {
				v = m
				break
			}
			if v == graph.None {
				continue
			}
			var nbrs []graph.NodeID
			for _, u := range muted[v] {
				if g.HasNode(u) {
					nbrs = append(nbrs, u)
				}
			}
			delete(muted, v)
			c, label = graph.NodeChange(graph.NodeUnmute, v, nbrs...), "node-unmute"
		}
		rep, err := eng.Apply(c)
		if err != nil {
			return nil, err
		}
		observe(label, rep.Rounds, rep.Broadcasts, rep.Bits, rep.Adjustments)
	}

	for _, kind := range []string{"edge-insert", "edge-delete-graceful", "edge-delete-abrupt",
		"node-delete-graceful", "node-mute", "node-unmute"} {
		a, ok := perKind[kind]
		if !ok {
			continue
		}
		table.AddRow(kind, a.rounds.N(), a.rounds.Mean(), int(a.rounds.Max()),
			a.bcasts.Mean(), int(a.bcasts.Max()), a.bits.Mean(), a.adj.Mean())
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Node insertion and abrupt node deletion have their own degree-dependent bounds; see E5 and E6.")
	return res, nil
}
