package expt

import (
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e1.Run = runE1; register(e1) }

var e1 = Experiment{
	ID:    "E1",
	Name:  "Expected influence-set size and adjustments",
	Claim: "Theorem 1: for every topology change, E[|S|] ≤ 1 over the random order; hence a single adjustment in expectation.",
}

func runE1(cfg Config) (*Result, error) {
	res := result(e1)
	table := stats.NewTable("mean |S| and adjustments per change, by graph family and change kind",
		"family", "kind", "trials", "mean |S|", "max |S|", "mean adj", "max adj")

	families := []struct {
		name  string
		build func(rng *rand.Rand) []graph.Change
	}{
		{"gnp-sparse(n=200,p=0.02)", func(rng *rand.Rand) []graph.Change { return workload.GNP(rng, 200, 0.02) }},
		{"gnp-dense(n=120,p=0.2)", func(rng *rand.Rand) []graph.Change { return workload.GNP(rng, 120, 0.2) }},
		{"star(n=200)", func(rng *rand.Rand) []graph.Change { return workload.Star(200) }},
		{"grid(14x14)", func(rng *rand.Rand) []graph.Change { return workload.Grid(14, 14) }},
	}
	steps := cfg.scale(2000, 200)

	for fi, fam := range families {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(fi), 17))
		eng := core.NewTemplate(cfg.Seed*1000 + uint64(fi))
		if _, err := eng.ApplyAll(fam.build(rng)); err != nil {
			return nil, err
		}
		churn := workload.RandomChurn(rng, eng.Graph(), workload.DefaultChurn(steps))

		perKind := map[string]*[2]stats.Series{} // kind -> (|S|, adjustments)
		for _, c := range churn {
			rep, err := eng.Apply(c)
			if err != nil {
				return nil, err
			}
			key := kindBucket(c.Kind)
			pair, ok := perKind[key]
			if !ok {
				pair = &[2]stats.Series{}
				perKind[key] = pair
			}
			pair[0].ObserveInt(rep.SSize)
			pair[1].ObserveInt(rep.Adjustments)
		}
		for _, kind := range []string{"edge-insert", "edge-delete", "node-insert", "node-delete"} {
			pair, ok := perKind[kind]
			if !ok {
				continue
			}
			table.AddRow(fam.name, kind, pair[0].N(),
				pair[0].Mean(), int(pair[0].Max()), pair[1].Mean(), int(pair[1].Max()))
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Theorem 1 bounds the expectation only; individual changes can have large |S| (see max columns), which is why no high-probability bound is possible (§1.1).")
	return res, nil
}

// kindBucket folds graceful/abrupt variants together for reporting.
func kindBucket(k graph.ChangeKind) string {
	switch k {
	case graph.EdgeInsert:
		return "edge-insert"
	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		return "edge-delete"
	case graph.NodeInsert, graph.NodeUnmute:
		return "node-insert"
	default:
		return "node-delete"
	}
}
