package expt

import (
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e19.Run = runE19; register(e19) }

var e19 = Experiment{
	ID:   "E19",
	Name: "Oblivious vs. adaptive adversary",
	Claim: "§2: the guarantees assume an oblivious adversary; an adaptive one \"can always choose to delete MIS nodes and thereby force " +
		"worst-case behavior\". Measured: targeting the current MIS multiplies the per-change cost, while random (oblivious) deletions stay ≈ E[|S|] ≤ 1.",
}

func runE19(cfg Config) (*Result, error) {
	res := result(e19)
	table := stats.NewTable("node deletions on G(n=300, 8/n): oblivious vs. MIS-targeting adversary",
		"adversary", "deletions", "mean |S|", "mean adj", "max adj", "P[hit MIS]")

	type strategy struct {
		name string
		pick func(rng *rand.Rand, eng *core.Template) graph.NodeID
	}
	strategies := []strategy{
		{"oblivious (random node)", func(rng *rand.Rand, eng *core.Template) graph.NodeID {
			nodes := eng.Graph().Nodes()
			return nodes[rng.IntN(len(nodes))]
		}},
		{"adaptive (random MIS node)", func(rng *rand.Rand, eng *core.Template) graph.NodeID {
			mis := eng.MIS()
			return mis[rng.IntN(len(mis))]
		}},
		{"adaptive (max-degree MIS node)", func(rng *rand.Rand, eng *core.Template) graph.NodeID {
			best, bestDeg := graph.None, -1
			for _, v := range eng.MIS() {
				if d := eng.Graph().Degree(v); d > bestDeg {
					best, bestDeg = v, d
				}
			}
			return best
		}},
	}

	deletions := cfg.scale(400, 60)
	n := 300
	for si, st := range strategies {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(si), 89))
		eng := core.NewTemplate(cfg.Seed + uint64(19000+si))
		if _, err := eng.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
			return nil, err
		}
		var ssize, adj stats.Series
		hits := 0
		nextID := graph.NodeID(10 * n)
		for d := 0; d < deletions; d++ {
			victim := st.pick(rng, eng)
			if eng.InMIS(victim) {
				hits++
			}
			rep, err := eng.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, victim))
			if err != nil {
				return nil, err
			}
			ssize.ObserveInt(rep.SSize)
			adj.ObserveInt(rep.Adjustments)
			// Keep the graph size stable with an oblivious re-insertion
			// (attached like a fresh G(n,p) node).
			var nbrs []graph.NodeID
			for _, u := range eng.Graph().Nodes() {
				if rng.Float64() < 8/float64(n) {
					nbrs = append(nbrs, u)
				}
			}
			if _, err := eng.Apply(graph.NodeChange(graph.NodeInsert, nextID, nbrs...)); err != nil {
				return nil, err
			}
			nextID++
		}
		table.AddRow(st.name, deletions, ssize.Mean(), adj.Mean(), int(adj.Max()),
			float64(hits)/float64(deletions))
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The oblivious row realizes Theorem 1's bound; the adaptive rows exceed it — every targeted deletion hits an MIS node and pays the full cascade — which is exactly why the model assumes change sequences independent of the algorithm's coins.")
	return res, nil
}
