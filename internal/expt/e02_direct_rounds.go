package expt

import (
	"math/rand/v2"

	"dynmis/internal/direct"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e2.Run = runE2; register(e2) }

var e2 = Experiment{
	ID:    "E2",
	Name:  "Direct implementation: synchronous rounds and adjustments",
	Claim: "Corollary 6: the direct distributed implementation needs a single adjustment and a single round, in expectation, independent of n.",
}

func runE2(cfg Config) (*Result, error) {
	res := result(e2)
	table := stats.NewTable("direct (synchronous) engine cost per edge change on G(n, 8/n)",
		"n", "changes", "mean rounds", "max rounds", "mean adj", "mean |S|", "mean bcasts")

	for _, n := range []int{100, 300, 1000} {
		steps := cfg.scale(800, 80)
		if n >= 1000 {
			steps = cfg.scale(300, 40)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 23))
		eng := direct.New(cfg.Seed + uint64(n))
		if _, err := eng.ApplyAll(workload.GNP(rng, n, 8/float64(n))); err != nil {
			return nil, err
		}
		var rounds, adj, ssize, bcasts stats.Series
		for _, c := range workload.EdgeChurn(rng, eng.Graph(), steps) {
			rep, err := eng.Apply(c)
			if err != nil {
				return nil, err
			}
			// The engine's round count includes the detection round
			// and the trailing quiescence-confirmation round; the
			// paper's "single round" counts only rounds in which an
			// output changes, which is bounded by the flip rounds.
			rounds.ObserveInt(rep.Rounds)
			adj.ObserveInt(rep.Adjustments)
			ssize.ObserveInt(rep.SSize)
			bcasts.ObserveInt(rep.Broadcasts)
		}
		table.AddRow(n, rounds.N(), rounds.Mean(), int(rounds.Max()), adj.Mean(), ssize.Mean(), bcasts.Mean())
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"Mean rounds include one detection and one quiescence round of simulator overhead; the paper's single-round claim concerns the recovery cascade depth, visible as the n-independence of the column.")
	return res, nil
}
