package expt

import (
	"dynmis/internal/core"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e10.Run = runE10; register(e10) }

var e10 = Experiment{
	ID:    "E10",
	Name:  "History independence: MIS of an adversarially built star",
	Claim: "§5 Example 1: on a star, the maintained MIS has expected size (1/n)·1 + (1-1/n)(n-1) ≈ n-2 — within a constant factor of maximum — versus the worst-case history-dependent MIS of size 1.",
}

func runE10(cfg Config) (*Result, error) {
	res := result(e10)
	table := stats.NewTable("E[|MIS|] on star(n), measured over seeds",
		"n", "seeds", "measured E[|MIS|]", "predicted", "worst case")

	ns := []int{8, 32, 128, 512}
	if cfg.Quick {
		ns = []int{8, 32}
	}
	for _, n := range ns {
		seeds := cfg.scale(300, 40)
		var size stats.Series
		for s := 0; s < seeds; s++ {
			eng := core.NewTemplate(cfg.Seed + uint64(n*10000+s))
			if _, err := eng.ApplyAll(workload.Star(n)); err != nil {
				return nil, err
			}
			size.ObserveInt(len(eng.MIS()))
		}
		fn := float64(n)
		predicted := (1/fn)*1 + (1-1/fn)*(fn-1)
		table.AddRow(n, seeds, size.Mean(), predicted, 1)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"The adversary builds the star but cannot bias the output: the center is earliest in π with probability exactly 1/n regardless of insertion order.")
	return res, nil
}
