package expt

import (
	"dynmis/internal/coloring"
	"dynmis/internal/core"
	"dynmis/internal/order"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e12.Run = runE12; register(e12) }

var e12 = Experiment{
	ID:    "E12",
	Name:  "Coloring: greedy distribution vs. the blow-up reduction",
	Claim: "§5 Example 3: random greedy 2-colors K_{n/2,n/2} minus a perfect matching with probability 1-O(1/n); the (Δ+1) blow-up reduction is always proper but pays up to ~2Δ adjustments per change.",
}

func runE12(cfg Config) (*Result, error) {
	res := result(e12)

	// Part 1: sequential random greedy coloring distribution.
	greedy := stats.NewTable("sequential random greedy coloring of K_{n/2,n/2} minus a perfect matching",
		"n", "seeds", "P[2 colors]", "predicted ≥", "mean colors", "max colors")
	ns := []int{8, 16, 32, 64}
	if cfg.Quick {
		ns = []int{8, 16}
	}
	for _, n := range ns {
		g := workload.BuildGraph(workload.BipartiteMinusMatching(n))
		seeds := cfg.scale(400, 60)
		two := 0
		var colors stats.Series
		for s := 0; s < seeds; s++ {
			ord := order.New(cfg.Seed + uint64(n*100000+s))
			pal := core.GreedyColoring(g, ord)
			used := map[int]bool{}
			for _, c := range pal {
				used[c] = true
			}
			colors.ObserveInt(len(used))
			if len(used) == 2 {
				two++
			}
		}
		greedy.AddRow(n, seeds, float64(two)/float64(seeds), 1-2/float64(n), colors.Mean(), int(colors.Max()))
	}
	res.Tables = append(res.Tables, greedy)

	// Part 2: the blow-up maintainer's adjustment cost per change.
	blowup := stats.NewTable("blow-up (Δ+1)-coloring maintainer: adjustments per primal change, path graphs",
		"palette P", "changes", "mean adj", "max adj", "colors used")
	for _, p := range []int{3, 6, 12} {
		m, err := coloring.New(cfg.Seed+uint64(p), p)
		if err != nil {
			return nil, err
		}
		var adj stats.Series
		n := cfg.scale(60, 15)
		for _, c := range workload.Path(n) {
			rep, err := m.Apply(c)
			if err != nil {
				return nil, err
			}
			adj.ObserveInt(rep.Adjustments)
		}
		if err := m.Check(); err != nil {
			return nil, err
		}
		blowup.AddRow(p, adj.N(), adj.Mean(), int(adj.Max()), m.ColorsUsed())
	}
	res.Tables = append(res.Tables, blowup)
	res.Notes = append(res.Notes,
		"The blow-up pays Θ(P) adjustments per insertion (each primal node is P copies), the 2Δ cost the paper flags as the open question for dynamic coloring.")
	return res, nil
}
