package expt

import (
	"math/rand/v2"

	"dynmis/internal/bitorder"
	"dynmis/internal/order"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func init() { e14.Run = runE14; register(e14) }

var e14 = Experiment{
	ID:    "E14",
	Name:  "Bit complexity with lazy order revelation",
	Claim: "§1.1 (after Métivier et al.): a node only needs the order relative to its neighbors, so priorities can be revealed bit-by-bit — O(1) expected bits per broadcast instead of Θ(log n).",
}

func runE14(cfg Config) (*Result, error) {
	res := result(e14)

	// Part 1: pairwise and neighborhood revelation costs.
	reveal := stats.NewTable("bits of priority that must be revealed to order a node against d neighbors",
		"degree d", "samples", "mean bits", "max bits", "full width")
	rng := rand.New(rand.NewPCG(cfg.Seed, 61))
	for _, d := range []int{1, 4, 16, 64, 256} {
		samples := cfg.scale(5000, 500)
		var bits stats.Series
		for i := 0; i < samples; i++ {
			p := order.Priority(rng.Uint64())
			nbrs := make([]order.Priority, d)
			for j := range nbrs {
				nbrs[j] = order.Priority(rng.Uint64())
			}
			bits.ObserveInt(bitorder.RevealBits(p, nbrs))
		}
		reveal.AddRow(d, samples, bits.Mean(), int(bits.Max()), 64)
	}
	res.Tables = append(res.Tables, reveal)

	// Part 2: protocol bit accounting, eager (64-bit Hello) vs. lazy
	// (state messages unchanged at 2 bits; Hello replaced by a
	// revelation session costing RevealBits against the neighborhood).
	acct := stats.NewTable("Algorithm 2 bits per change on G(n=300, 8/n) edge churn, eager vs. lazy priorities",
		"metric", "eager", "lazy")
	eng := protocol.New(cfg.Seed + 14)
	n := 300
	wrng := rand.New(rand.NewPCG(cfg.Seed, 67))
	if _, err := eng.ApplyAll(workload.GNP(wrng, n, 8/float64(n))); err != nil {
		return nil, err
	}
	var eagerBits, lazyBits, bcasts stats.Series
	for _, c := range workload.EdgeChurn(wrng, eng.Graph(), cfg.scale(600, 80)) {
		rep, err := eng.Apply(c)
		if err != nil {
			return nil, err
		}
		eagerBits.ObserveInt(rep.Bits)
		// Lazy accounting: each edge change ships two Hellos whose
		// 64-bit priorities are replaced by ≈2-bit revelations; the
		// state machine's 2-bit messages are unchanged.
		helloOverhead := rep.Bits - 2*rep.Broadcasts // the 65-bit surplus of Hello payloads
		lazy := 2*rep.Broadcasts + helloOverhead/32  // 64+3 bits -> ≈ 2 bits expected
		lazyBits.ObserveInt(lazy)
		bcasts.ObserveInt(rep.Broadcasts)
	}
	acct.AddRow("mean bits/change", eagerBits.Mean(), lazyBits.Mean())
	acct.AddRow("mean bits/broadcast", eagerBits.Mean()/bcasts.Mean(), lazyBits.Mean()/bcasts.Mean())
	res.Tables = append(res.Tables, acct)
	res.Notes = append(res.Notes,
		"Part 1 measures the exact revelation cost (≈2 bits per pair, +log₂ per 2× degree); part 2 applies it as an accounting substitution on real protocol runs — the interactive streaming variant is simulated by bitorder.Run.")
	return res, nil
}
