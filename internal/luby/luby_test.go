package luby

import (
	"math"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestRunProducesValidMIS(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 15; trial++ {
		g := workload.BuildGraph(workload.GNP(rng, 80, 0.08))
		res := Run(g, rng)
		if err := core.CheckMIS(g, res.State); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.State) != g.NodeCount() {
			t.Fatalf("trial %d: %d states for %d nodes", trial, len(res.State), g.NodeCount())
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res := Run(graph.New(), rand.New(rand.NewPCG(1, 1)))
	if res.Rounds != 0 || res.Broadcasts != 0 || len(res.State) != 0 {
		t.Errorf("empty run = %+v", res)
	}
}

func TestRunLogarithmicRounds(t *testing.T) {
	// Luby finishes in O(log n) phases w.h.p.; sanity-check the growth
	// on G(n, 10/n) graphs.
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{100, 400, 1600} {
		g := workload.BuildGraph(workload.GNP(rng, n, 10/float64(n)))
		res := Run(g, rng)
		bound := int(8*math.Log2(float64(n))) + 8
		if res.Rounds > bound {
			t.Errorf("n=%d: rounds = %d, want ≤ %d", n, res.Rounds, bound)
		}
		// Every node broadcasts at least once (its first phase value).
		if res.Broadcasts < n {
			t.Errorf("n=%d: broadcasts = %d, want ≥ n", n, res.Broadcasts)
		}
	}
}

func TestMaintainerRecomputes(t *testing.T) {
	m := NewMaintainer(7)
	rng := rand.New(rand.NewPCG(5, 6))
	cs := workload.GNP(rng, 40, 0.1)
	if _, err := m.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Every change triggers a full static re-run: Θ(n) broadcasts each.
	rep, err := m.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, m.Graph().Edges()[0][0], m.Graph().Edges()[0][1]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Broadcasts < m.Graph().NodeCount() {
		t.Errorf("broadcasts = %d, want ≥ n = %d (full recompute)", rep.Broadcasts, m.Graph().NodeCount())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.InMIS(graph.None) {
		t.Error("InMIS(None) = true")
	}
	if len(m.MIS()) == 0 {
		t.Error("empty MIS on non-empty graph")
	}
}

func TestMaintainerInvalidChange(t *testing.T) {
	m := NewMaintainer(1)
	if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2)); err == nil {
		t.Fatal("expected error for edge between absent nodes")
	}
}
