// Package luby implements Luby's classic randomized distributed MIS
// algorithm (SIAM J. Comput. 1986) as the paper's static baseline: the
// standard way to maintain an MIS dynamically before this paper was to
// re-run a static algorithm after every topology change (§1).
//
// The algorithm proceeds in synchronous phases over the live (undecided)
// subgraph. In each phase every live node draws a fresh random value and
// broadcasts it; a node whose value is a strict local minimum joins the
// MIS, announces it, and its neighbors announce their exit. The number of
// phases is O(log n) with high probability, and every phase costs one
// broadcast per live node — which is exactly the Θ(log n)-rounds /
// Θ(n log n)-broadcasts-per-change behavior experiment E8 contrasts with
// the dynamic algorithm's O(1).
package luby

import (
	"fmt"
	"math/rand/v2"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// valueBits is the size of a phase value broadcast: the standard choice of
// Θ(log n) bits makes collisions unlikely; ties are broken by node ID.
const valueBits = 64

// decidedBits is the size of an "I joined" / "I left" announcement.
const decidedBits = 1

// Result is the outcome of one static run.
type Result struct {
	State      map[graph.NodeID]core.Membership
	Rounds     int
	Broadcasts int
	Bits       int
}

// Run executes Luby's algorithm on g, drawing randomness from rng. Each
// phase is two synchronous rounds: value exchange, then decision
// announcements.
func Run(g *graph.Graph, rng *rand.Rand) Result {
	res := Result{State: make(map[graph.NodeID]core.Membership, g.NodeCount())}
	live := make(map[graph.NodeID]bool, g.NodeCount())
	for _, v := range g.Nodes() {
		live[v] = true
	}

	for len(live) > 0 {
		// Round 1 of the phase: every live node broadcasts a fresh
		// value.
		res.Rounds++
		res.Broadcasts += len(live)
		res.Bits += len(live) * valueBits
		value := make(map[graph.NodeID]uint64, len(live))
		ids := sortedKeys(live)
		for _, v := range ids {
			value[v] = rng.Uint64()
		}

		// Local minima join the MIS.
		var joined []graph.NodeID
		for _, v := range ids {
			minimal := true
			g.EachNeighbor(v, func(u graph.NodeID) {
				if !live[u] {
					return
				}
				if value[u] < value[v] || (value[u] == value[v] && u < v) {
					minimal = false
				}
			})
			if minimal {
				joined = append(joined, v)
			}
		}

		// Round 2 of the phase: winners and their neighbors announce
		// their decisions and leave the live subgraph.
		res.Rounds++
		for _, v := range joined {
			res.State[v] = core.In
			delete(live, v)
			res.Broadcasts++
			res.Bits += decidedBits
			g.EachNeighbor(v, func(u graph.NodeID) {
				if live[u] {
					res.State[u] = core.Out
					delete(live, u)
					res.Broadcasts++
					res.Bits += decidedBits
				}
			})
		}
	}
	return res
}

func sortedKeys(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Maintainer is the static-recompute dynamic baseline: it answers every
// topology change by re-running Luby's algorithm from scratch on the whole
// graph. Correct, simple — and expensive, which is the separation the
// paper proves away.
type Maintainer struct {
	g     *graph.Graph
	rng   *rand.Rand
	state map[graph.NodeID]core.Membership
}

// NewMaintainer returns a baseline maintainer over an empty graph.
func NewMaintainer(seed uint64) *Maintainer {
	return &Maintainer{
		g:     graph.New(),
		rng:   rand.New(rand.NewPCG(seed, seed^0xabcdef12345)),
		state: make(map[graph.NodeID]core.Membership),
	}
}

// Graph exposes the maintained topology (read-only for callers).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// InMIS reports whether v is in the current MIS.
func (m *Maintainer) InMIS(v graph.NodeID) bool { return m.state[v] == core.In }

// MIS returns the sorted current MIS.
func (m *Maintainer) MIS() []graph.NodeID { return core.MISOf(m.state) }

// State returns a copy of the current membership map.
func (m *Maintainer) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, len(m.state))
	for v, s := range m.state {
		out[v] = s
	}
	return out
}

// Apply applies the change and recomputes the MIS from scratch,
// reporting the full cost of the static re-run.
func (m *Maintainer) Apply(c graph.Change) (core.Report, error) {
	if err := c.Apply(m.g); err != nil {
		return core.Report{}, err
	}
	before := m.state
	res := Run(m.g, m.rng)
	m.state = res.State
	rep := core.Report{
		Rounds:      res.Rounds,
		Broadcasts:  res.Broadcasts,
		Bits:        res.Bits,
		Adjustments: len(core.DiffStates(before, res.State)),
	}
	rep.SSize = rep.Adjustments
	return rep, nil
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (m *Maintainer) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := m.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Check verifies that the current state is a valid MIS.
func (m *Maintainer) Check() error { return core.CheckMIS(m.g, m.state) }
