package graph

// Differential suite for the dense arena storage: a map-of-maps reference
// model (the pre-arena implementation of this package) is driven through
// the same randomized mutation streams as the dense Graph, and the full
// observable surface — node/edge sets, degrees, neighborhoods, counts,
// error classes — must agree at every step. The property test covers many
// seeded streams; the fuzz target lets `go test -fuzz` explore op
// sequences adversarially (its corpus seeds run in normal `go test` too).

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"
	"testing"
)

// refGraph is the reference model: the map-centric storage the dense arena
// replaced.
type refGraph struct {
	adj   map[NodeID]map[NodeID]struct{}
	edges int
}

func newRef() *refGraph {
	return &refGraph{adj: make(map[NodeID]map[NodeID]struct{})}
}

func (g *refGraph) hasNode(v NodeID) bool { _, ok := g.adj[v]; return ok }

func (g *refGraph) hasEdge(u, v NodeID) bool {
	nb, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = nb[v]
	return ok
}

func (g *refGraph) addNode(v NodeID) error {
	if v == None {
		return ErrReservedID
	}
	if g.hasNode(v) {
		return ErrNodeExists
	}
	g.adj[v] = make(map[NodeID]struct{})
	return nil
}

func (g *refGraph) removeNode(v NodeID) error {
	nb, ok := g.adj[v]
	if !ok {
		return ErrNoNode
	}
	for u := range nb {
		delete(g.adj[u], v)
		g.edges--
	}
	delete(g.adj, v)
	return nil
}

func (g *refGraph) addEdge(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	if !g.hasNode(u) || !g.hasNode(v) {
		return ErrNoNode
	}
	if g.hasEdge(u, v) {
		return ErrEdgeExists
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return nil
}

func (g *refGraph) removeEdge(u, v NodeID) error {
	if !g.hasEdge(u, v) {
		return ErrNoEdge
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return nil
}

func (g *refGraph) nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

func (g *refGraph) neighbors(v NodeID) []NodeID {
	nb, ok := g.adj[v]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(nb))
	for u := range nb {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

func (g *refGraph) maxDegree() int {
	m := 0
	for _, nb := range g.adj {
		m = max(m, len(nb))
	}
	return m
}

// op is one mutation of the differential stream.
type op struct {
	kind byte // 0 addNode, 1 removeNode, 2 addEdge, 3 removeEdge
	u, v NodeID
}

// applyBoth applies o to both implementations and fails the test unless
// the outcomes (success, or error class) match.
func applyBoth(t *testing.T, g *Graph, ref *refGraph, o op) {
	t.Helper()
	var gotErr, refErr error
	switch o.kind % 4 {
	case 0:
		gotErr, refErr = g.AddNode(o.u), ref.addNode(o.u)
	case 1:
		gotErr, refErr = g.RemoveNode(o.u), ref.removeNode(o.u)
	case 2:
		gotErr, refErr = g.AddEdge(o.u, o.v), ref.addEdge(o.u, o.v)
	case 3:
		gotErr, refErr = g.RemoveEdge(o.u, o.v), ref.removeEdge(o.u, o.v)
	}
	if (gotErr == nil) != (refErr == nil) {
		t.Fatalf("op %+v: dense err %v, reference err %v", o, gotErr, refErr)
	}
	if refErr != nil && !errors.Is(gotErr, refErr) {
		t.Fatalf("op %+v: dense err %v, want class %v", o, gotErr, refErr)
	}
}

// compareAll checks the whole observable surface of g against ref.
func compareAll(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	if g.NodeCount() != len(ref.adj) {
		t.Fatalf("node count: dense %d, reference %d", g.NodeCount(), len(ref.adj))
	}
	if g.EdgeCount() != ref.edges {
		t.Fatalf("edge count: dense %d, reference %d", g.EdgeCount(), ref.edges)
	}
	if g.MaxDegree() != ref.maxDegree() {
		t.Fatalf("max degree: dense %d, reference %d", g.MaxDegree(), ref.maxDegree())
	}
	nodes := g.Nodes()
	if want := ref.nodes(); !slices.Equal(nodes, want) {
		t.Fatalf("nodes: dense %v, reference %v", nodes, want)
	}
	seq := slices.Collect(g.NodeSeq())
	slices.Sort(seq)
	if !slices.Equal(seq, nodes) {
		t.Fatalf("NodeSeq disagrees with Nodes: %v vs %v", seq, nodes)
	}
	edgeTotal := 0
	for _, v := range nodes {
		nb := g.Neighbors(v)
		if want := ref.neighbors(v); !slices.Equal(nb, want) {
			t.Fatalf("neighbors(%d): dense %v, reference %v", v, nb, want)
		}
		if g.Degree(v) != len(nb) {
			t.Fatalf("degree(%d): %d, want %d", v, g.Degree(v), len(nb))
		}
		var viaEach []NodeID
		g.EachNeighbor(v, func(u NodeID) { viaEach = append(viaEach, u) })
		slices.Sort(viaEach)
		if !slices.Equal(viaEach, nb) {
			t.Fatalf("EachNeighbor(%d) disagrees with Neighbors: %v vs %v", v, viaEach, nb)
		}
		for _, u := range nb {
			if !g.HasEdge(v, u) || !g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) false for listed neighbor", v, u)
			}
		}
		edgeTotal += len(nb)
	}
	if edgeTotal != 2*ref.edges {
		t.Fatalf("degree sum %d, want %d", edgeTotal, 2*ref.edges)
	}
	edges := g.Edges()
	if len(edges) != ref.edges {
		t.Fatalf("Edges() length %d, want %d", len(edges), ref.edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] || !ref.hasEdge(e[0], e[1]) {
			t.Fatalf("Edges() lists %v, not a reference edge", e)
		}
	}
	// Arena invariants: every live node resolves to a slot that maps back
	// to it, and slot-space adjacency agrees with the ID-space view.
	for _, v := range nodes {
		i, ok := g.Index(v)
		if !ok || g.IDAt(i) != v {
			t.Fatalf("Index/IDAt roundtrip broken for %d", v)
		}
		if g.DegreeAt(i) != g.Degree(v) {
			t.Fatalf("DegreeAt(%d) %d, want %d", i, g.DegreeAt(i), g.Degree(v))
		}
		var viaSlots []NodeID
		for _, j := range g.NeighborSlots(i) {
			viaSlots = append(viaSlots, g.IDAt(int(j)))
		}
		slices.Sort(viaSlots)
		if !slices.Equal(viaSlots, g.Neighbors(v)) {
			t.Fatalf("NeighborSlots(%d) disagrees with Neighbors(%d)", i, v)
		}
	}
}

// randOp draws a mutation biased toward valid targets so streams build
// real graphs instead of erroring constantly. The ID range starts at the
// reserved None (-1) so every stream also probes the sentinel rejection.
func randOp(rng *rand.Rand, idSpace int64) op {
	return op{
		kind: byte(rng.IntN(4)),
		u:    NodeID(rng.Int64N(idSpace+1) - 1),
		v:    NodeID(rng.Int64N(idSpace+1) - 1),
	}
}

// TestDenseVsReferenceModel drives dense and reference storage through
// randomized change streams over a small ID space (maximizing collisions,
// deletions and slot recycling) and requires full observable equality.
func TestDenseVsReferenceModel(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0xdead))
		g, ref := New(), newRef()
		idSpace := int64(8 + 8*seed) // small spaces recycle slots hard
		for i := 0; i < 3000; i++ {
			applyBoth(t, g, ref, randOp(rng, idSpace))
			if i%251 == 0 {
				compareAll(t, g, ref)
			}
		}
		compareAll(t, g, ref)

		// Clone must observably equal the original and be independent.
		c := g.Clone()
		if !c.Equal(g) || !g.Equal(c) {
			t.Fatalf("seed %d: clone not Equal to original", seed)
		}
		compareAll(t, c, ref)
		// Keep mutating the clone (with ref tracking it); the original
		// must not move.
		wantNodes, wantEdges := g.Nodes(), g.Edges()
		for i := 0; i < 200; i++ {
			applyBoth(t, c, ref, randOp(rng, idSpace))
		}
		compareAll(t, c, ref)
		if !slices.Equal(g.Nodes(), wantNodes) || !slices.Equal(g.Edges(), wantEdges) {
			t.Fatalf("seed %d: mutating a clone changed the original", seed)
		}
	}
}

// TestGrowPreservesContent: growing mid-stream never changes observable
// state, and subsequent inserts use the reserved capacity.
func TestGrowPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	g, ref := New(), newRef()
	for i := 0; i < 500; i++ {
		applyBoth(t, g, ref, randOp(rng, 32))
		if i%100 == 0 {
			g.Grow(64)
			compareAll(t, g, ref)
		}
	}
	compareAll(t, g, ref)
}

// TestSlotRecycling pins the arena's free-list behavior: a deleted node's
// slot is reused, and both lanes (priority, state) plus the adjacency of
// the recycled slot read as zero for the new tenant.
func TestSlotRecycling(t *testing.T) {
	g := New()
	for v := NodeID(0); v < 4; v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	i1, _ := g.Index(1)
	g.SetPrioAt(i1, 42)
	g.SetStateAt(i1, 1)

	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if g.Slots() != 4 {
		t.Fatalf("arena grew on delete: %d slots", g.Slots())
	}
	if err := g.AddNode(99); err != nil {
		t.Fatal(err)
	}
	i99, ok := g.Index(99)
	if !ok || i99 != i1 {
		t.Fatalf("slot not recycled: node 99 in slot %d, want %d", i99, i1)
	}
	if g.Slots() != 4 {
		t.Fatalf("arena grew despite free slot: %d slots", g.Slots())
	}
	if g.PrioAt(i99) != 0 || g.StateAt(i99) != 0 {
		t.Fatalf("recycled slot leaks lanes: prio %d, state %d", g.PrioAt(i99), g.StateAt(i99))
	}
	if g.DegreeAt(i99) != 0 || len(g.NeighborSlots(i99)) != 0 {
		t.Fatalf("recycled slot leaks adjacency: degree %d", g.DegreeAt(i99))
	}
	if g.HasEdge(99, 2) || g.HasEdge(2, 99) {
		t.Fatal("recycled slot inherited an edge")
	}
}

// TestAdjacencySpill exercises the inline→sorted-spill transition in both
// directions against the reference model.
func TestAdjacencySpill(t *testing.T) {
	g, ref := New(), newRef()
	const hub, n = NodeID(1000), 3 * inlineDegree
	applyBoth(t, g, ref, op{kind: 0, u: hub})
	for v := NodeID(0); v < n; v++ {
		applyBoth(t, g, ref, op{kind: 0, u: v})
		applyBoth(t, g, ref, op{kind: 2, u: hub, v: v})
		compareAll(t, g, ref)
	}
	for v := NodeID(0); v < n; v++ {
		applyBoth(t, g, ref, op{kind: 3, u: hub, v: v})
		compareAll(t, g, ref)
	}
}

// FuzzDenseVsReference lets the fuzzer synthesize op streams; every 5-byte
// group decodes to one mutation over a 16-ID space.
func FuzzDenseVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 8, 1, 2, 12, 4, 3})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 1, 1, 1, 0, 0, 0, 0, 0})
	rng := rand.New(rand.NewPCG(1, 2))
	long := make([]byte, 600)
	for i := range long {
		long[i] = byte(rng.UintN(256))
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ref := New(), newRef()
		for len(data) >= 3 {
			// IDs cover [-1, 14]: -1 is the reserved sentinel.
			o := op{kind: data[0], u: NodeID(data[1]%16) - 1, v: NodeID(data[2]%16) - 1}
			data = data[3:]
			applyBoth(t, g, ref, o)
		}
		compareAll(t, g, ref)
	})
}

// TestReservedIDRejected: the free-slot sentinel can never become a node,
// at the graph boundary and at change validation.
func TestReservedIDRejected(t *testing.T) {
	g := New()
	if err := g.AddNode(None); !errors.Is(err, ErrReservedID) {
		t.Fatalf("AddNode(None) = %v, want ErrReservedID", err)
	}
	if g.NodeCount() != 0 || g.HasNode(None) {
		t.Fatal("rejected sentinel insert left state behind")
	}
	c := NodeChange(NodeInsert, None)
	if err := c.Validate(g); !errors.Is(err, ErrReservedID) || !errors.Is(err, ErrInvalidChange) {
		t.Fatalf("Validate(insert None) = %v, want ErrInvalidChange wrapping ErrReservedID", err)
	}
}

// TestGrowIdempotent: a Grow that is already satisfied must not rebuild
// the index table (rehashing a large live graph would be O(n) per call).
func TestGrowIdempotent(t *testing.T) {
	g := New()
	g.Grow(100)
	for v := NodeID(0); v < 50; v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.idxCap != 100 {
		t.Fatalf("idxCap %d after Grow(100), want 100", g.idxCap)
	}
	g.Grow(10) // 50 live + 10 <= 100 already reserved
	if g.idxCap != 100 {
		t.Fatalf("satisfied Grow rebuilt the index table (idxCap %d)", g.idxCap)
	}
	g.Grow(100) // 50 live + 100 > 100: genuine growth
	if g.idxCap != 150 {
		t.Fatalf("idxCap %d after Grow(100) at 50 live, want 150", g.idxCap)
	}
}

// TestErrorMessagesKeepContext: mutation errors still wrap the sentinel
// and name the operands (callers match with errors.Is; humans read the
// text).
func TestErrorMessagesKeepContext(t *testing.T) {
	g := New()
	if err := g.AddEdge(3, 3); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop: %v", err)
	}
	err := g.AddEdge(1, 2)
	if !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing endpoint: %v", err)
	}
	if want := fmt.Sprintf("add edge {%d,%d}", 1, 2); err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the edge", err)
	}
}

// TestDenseVsReferenceModelLargeStream is the scale variant of the
// differential test: one long randomized stream over an ID space wide
// enough to build real hubs, with Grow and free-list repartitioning
// mixed in mid-stream, so the spill pool crosses class promotions,
// downshifts, shrink-to-inline reversions and block recycling many
// thousands of times under full observable-equality checking.
func TestDenseVsReferenceModelLargeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential stream skipped with -short")
	}
	rng := rand.New(rand.NewPCG(0xb16, 0x57a6e))
	g, ref := New(), newRef()
	const (
		steps   = 150_000
		idSpace = 384 // wide enough for degree ≫ inlineDegree hubs, small enough to recycle
	)
	for i := 0; i < steps; i++ {
		switch i {
		case steps / 5:
			g.Grow(idSpace)
		case steps / 3:
			g.PartitionFreeList(8, 16)
		case 2 * steps / 3:
			g.PartitionFreeList(1, 1)
		}
		applyBoth(t, g, ref, randOp(rng, idSpace))
		if i%12_500 == 0 {
			compareAll(t, g, ref)
		}
	}
	compareAll(t, g, ref)

	// The stream's churn must leave the pool consistent: live spill can
	// never exceed slab storage, and utilization is a valid fraction.
	m := g.Mem()
	if m.SpillLiveBytes > m.SpillSlabBytes {
		t.Fatalf("live spill %d exceeds slab %d", m.SpillLiveBytes, m.SpillSlabBytes)
	}
	if u := m.SpillUtilization(); u < 0 || u > 1 {
		t.Fatalf("SpillUtilization = %v", u)
	}
}
