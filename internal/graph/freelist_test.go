package graph

import (
	"math/rand/v2"
	"testing"
)

// A partitioned free-list must recycle every freed slot exactly once and
// never change observable graph state — only which slot an insertion gets.
func TestPartitionedFreeListRecycles(t *testing.T) {
	g := New()
	const n = 256
	for v := range NodeID(n) {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	g.PartitionFreeList(4, 64)

	// Free a skewed range: all of the first block-aligned region, which
	// an unpartitioned LIFO list would hand back in one clump.
	for v := range NodeID(128) {
		if err := g.RemoveNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.FreeSlots() != 128 {
		t.Fatalf("FreeSlots = %d, want 128", g.FreeSlots())
	}

	// Re-insert: every freed slot must be reused before the arena grows.
	slots := g.Slots()
	for v := NodeID(1000); v < 1000+128; v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.Slots() != slots {
		t.Fatalf("arena grew from %d to %d slots despite %d free", slots, g.Slots(), 128)
	}
	if g.FreeSlots() != 0 {
		t.Fatalf("FreeSlots = %d after refill", g.FreeSlots())
	}
	if g.NodeCount() != n {
		t.Fatalf("NodeCount = %d, want %d", g.NodeCount(), n)
	}
}

// Round-robin allocation must spread recycled slots across the
// partitions rather than draining one block's worth at a time.
func TestPartitionedFreeListSpreadsAllocations(t *testing.T) {
	g := New()
	const parts, block = 4, 8
	for v := range NodeID(parts * block * 4) {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	g.PartitionFreeList(parts, block)
	for v := range NodeID(parts * block * 4) {
		if err := g.RemoveNode(v); err != nil {
			t.Fatal(err)
		}
	}

	// The first `parts` allocations must land in `parts` distinct
	// partitions (the round-robin guarantee).
	seen := make(map[int]bool)
	for v := NodeID(10_000); v < 10_000+parts; v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
		i, _ := g.Index(v)
		seen[i/block%parts] = true
	}
	if len(seen) != parts {
		t.Fatalf("first %d allocations hit %d partitions, want %d", parts, len(seen), parts)
	}
}

// Repartitioning (including back to 1) must preserve the free slot set,
// and a partitioned graph must keep passing random churn.
func TestRepartitionPreservesFreeSet(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewPCG(3, 5))
	live := map[NodeID]bool{}
	next := NodeID(0)
	for step := 0; step < 2000; step++ {
		if step%500 == 250 {
			g.PartitionFreeList(1+rng.IntN(8), 16)
		}
		if len(live) == 0 || rng.IntN(3) > 0 {
			if err := g.AddNode(next); err != nil {
				t.Fatal(err)
			}
			live[next] = true
			next++
		} else {
			var victim NodeID
			for v := range live {
				victim = v
				break
			}
			if err := g.RemoveNode(victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
		if g.NodeCount() != len(live) {
			t.Fatalf("step %d: NodeCount %d, live %d", step, g.NodeCount(), len(live))
		}
		if g.Slots()-g.FreeSlots() != len(live) {
			t.Fatalf("step %d: slots %d - free %d != live %d", step, g.Slots(), g.FreeSlots(), len(live))
		}
	}
	c := g.Clone()
	if !g.Equal(c) || c.FreeSlots() != g.FreeSlots() {
		t.Fatal("clone diverged from partitioned original")
	}
}

// Satellite coverage for the million-node tier: Grow and the
// partitioned free-list must compose at n = 10^5 — grow-after-partition
// keeps the block-cyclic spread, a bulk delete/re-insert wave recycles
// every slot without growing the arena (O(1) pops, no rebucketing), and
// a final Grow stays watermark-idempotent.
func TestGrowAfterPartitionAtScale(t *testing.T) {
	const (
		n     = 100_000
		parts = 8
		block = 512
	)
	g := New()
	g.PartitionFreeList(parts, block)
	g.Grow(n)

	slots := g.Slots() // 0: Grow reserves capacity, not slots
	for v := range NodeID(n) {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.Slots() != slots+n {
		t.Fatalf("Slots = %d after %d inserts over %d", g.Slots(), n, slots)
	}

	// Delete a skewed contiguous half — the pattern that pathologically
	// clumps an unpartitioned LIFO list.
	for v := range NodeID(n / 2) {
		if err := g.RemoveNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.FreeSlots() != n/2 {
		t.Fatalf("FreeSlots = %d, want %d", g.FreeSlots(), n/2)
	}

	// Round-robin: the first `parts` reallocations must land in distinct
	// partitions even though the freed range was contiguous.
	seen := make(map[int]bool)
	for v := NodeID(n); v < NodeID(n)+parts; v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
		i, _ := g.Index(v)
		seen[i/block%parts] = true
	}
	if len(seen) != parts {
		t.Fatalf("first %d allocations hit %d partitions, want %d", parts, len(seen), parts)
	}

	// The rest of the wave must drain the free-list before the arena
	// grows a single slot.
	for v := NodeID(n) + parts; v < NodeID(n)+NodeID(n/2); v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if g.FreeSlots() != 0 {
		t.Fatalf("FreeSlots = %d after refill", g.FreeSlots())
	}
	if g.Slots() != slots+n {
		t.Fatalf("arena grew to %d slots despite full recycling", g.Slots())
	}

	// A satisfied Grow (the free-list can supply the slot and the index
	// has reached the watermark before) must not rebuild the index.
	if err := g.RemoveNode(NodeID(n)); err != nil {
		t.Fatal(err)
	}
	capBefore := g.idxCap
	g.Grow(1)
	if g.idxCap != capBefore {
		t.Fatalf("satisfied Grow rebuilt the index watermark: %d -> %d", capBefore, g.idxCap)
	}
}
