package graph

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, ids ...NodeID) {
	t.Helper()
	for _, id := range ids {
		if err := g.AddNode(id); err != nil {
			t.Fatalf("AddNode(%d): %v", id, err)
		}
	}
}

func mustEdge(t *testing.T, g *Graph, pairs ...[2]NodeID) {
	t.Helper()
	for _, p := range pairs {
		if err := g.AddEdge(p[0], p[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", p[0], p[1], err)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NodeCount() != 0 || g.EdgeCount() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NodeCount(), g.EdgeCount())
	}
	if g.HasNode(1) {
		t.Error("HasNode(1) on empty graph")
	}
	if g.Neighbors(1) != nil {
		t.Error("Neighbors of absent node should be nil")
	}
	if g.Degree(1) != 0 {
		t.Error("Degree of absent node should be 0")
	}
	if g.MaxDegree() != 0 {
		t.Error("MaxDegree of empty graph should be 0")
	}
}

func TestAddRemoveNode(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3)
	if got := g.NodeCount(); got != 3 {
		t.Fatalf("NodeCount = %d, want 3", got)
	}
	if err := g.AddNode(2); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate AddNode: err = %v, want ErrNodeExists", err)
	}
	if err := g.RemoveNode(9); !errors.Is(err, ErrNoNode) {
		t.Errorf("RemoveNode(9): err = %v, want ErrNoNode", err)
	}
	if err := g.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode(2): %v", err)
	}
	if g.HasNode(2) {
		t.Error("node 2 still present after removal")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3)
	mustEdge(t, g, [2]NodeID{1, 2})

	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge {1,2} should be present in both directions")
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if err := g.AddEdge(1, 2); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("duplicate AddEdge: err = %v, want ErrEdgeExists", err)
	}
	if err := g.AddEdge(2, 1); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("reversed duplicate AddEdge: err = %v, want ErrEdgeExists", err)
	}
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: err = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(1, 9); !errors.Is(err, ErrNoNode) {
		t.Errorf("edge to absent node: err = %v, want ErrNoNode", err)
	}
	if err := g.RemoveEdge(1, 3); !errors.Is(err, ErrNoEdge) {
		t.Errorf("RemoveEdge absent: err = %v, want ErrNoEdge", err)
	}
	if err := g.RemoveEdge(2, 1); err != nil {
		t.Fatalf("RemoveEdge(2,1): %v", err)
	}
	if g.HasEdge(1, 2) || g.EdgeCount() != 0 {
		t.Error("edge {1,2} still present after removal")
	}
}

func TestRemoveNodeRemovesIncidentEdges(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3, 4)
	mustEdge(t, g, [2]NodeID{1, 2}, [2]NodeID{1, 3}, [2]NodeID{2, 3}, [2]NodeID{3, 4})
	if err := g.RemoveNode(3); err != nil {
		t.Fatalf("RemoveNode(3): %v", err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount after removing hub = %d, want 1", g.EdgeCount())
	}
	if g.HasEdge(1, 3) || g.HasEdge(2, 3) || g.HasEdge(3, 4) {
		t.Error("edges incident to removed node remain")
	}
	if !g.HasEdge(1, 2) {
		t.Error("unrelated edge {1,2} was removed")
	}
	if g.Degree(4) != 0 {
		t.Errorf("Degree(4) = %d, want 0", g.Degree(4))
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := New()
	mustAdd(t, g, 5, 1, 9, 3)
	mustEdge(t, g, [2]NodeID{5, 9}, [2]NodeID{5, 1}, [2]NodeID{5, 3})
	nb := g.Neighbors(5)
	want := []NodeID{1, 3, 9}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", nb, want)
		}
	}
	nb[0] = 777 // mutating the copy must not affect the graph
	if !g.HasEdge(5, 1) {
		t.Error("mutating Neighbors result affected the graph")
	}
}

func TestNodesAndEdgesSorted(t *testing.T) {
	g := New()
	mustAdd(t, g, 4, 2, 7, 1)
	mustEdge(t, g, [2]NodeID{7, 2}, [2]NodeID{4, 1}, [2]NodeID{4, 2})
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v, want 3 entries", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized", e)
		}
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("Edges not sorted: %v", edges)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3)
	mustEdge(t, g, [2]NodeID{1, 2}, [2]NodeID{2, 3})
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal to original")
	}
	if err := c.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.Equal(c) {
		t.Error("graphs equal after diverging")
	}
	if !g.HasEdge(1, 2) {
		t.Error("mutating clone affected original")
	}
	h := New()
	mustAdd(t, h, 1, 2, 3)
	mustEdge(t, h, [2]NodeID{1, 2}, [2]NodeID{1, 3})
	if g.Equal(h) {
		t.Error("graphs with same counts but different edges compare equal")
	}
}

func TestEachNeighborVisitsAll(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3, 4)
	mustEdge(t, g, [2]NodeID{1, 2}, [2]NodeID{1, 3}, [2]NodeID{1, 4})
	seen := map[NodeID]bool{}
	g.EachNeighbor(1, func(u NodeID) { seen[u] = true })
	if len(seen) != 3 || !seen[2] || !seen[3] || !seen[4] {
		t.Errorf("EachNeighbor visited %v", seen)
	}
}

func TestMaxDegree(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3, 4)
	mustEdge(t, g, [2]NodeID{1, 2}, [2]NodeID{1, 3}, [2]NodeID{1, 4})
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
}

// TestRandomMutationConsistency drives a random mutation sequence and
// checks structural bookkeeping invariants throughout.
func TestRandomMutationConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := New()
	present := map[NodeID]bool{}
	next := NodeID(0)

	for step := 0; step < 5000; step++ {
		switch rng.IntN(4) {
		case 0: // add node
			if err := g.AddNode(next); err != nil {
				t.Fatalf("step %d: AddNode: %v", step, err)
			}
			present[next] = true
			next++
		case 1: // remove random node
			if len(present) == 0 {
				continue
			}
			v := pick(rng, present)
			if err := g.RemoveNode(v); err != nil {
				t.Fatalf("step %d: RemoveNode: %v", step, err)
			}
			delete(present, v)
		case 2: // add random edge
			if len(present) < 2 {
				continue
			}
			u, v := pick(rng, present), pick(rng, present)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatalf("step %d: AddEdge: %v", step, err)
			}
		case 3: // remove random edge
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			if err := g.RemoveEdge(e[0], e[1]); err != nil {
				t.Fatalf("step %d: RemoveEdge: %v", step, err)
			}
		}
		// Bookkeeping invariants.
		if g.NodeCount() != len(present) {
			t.Fatalf("step %d: NodeCount=%d, want %d", step, g.NodeCount(), len(present))
		}
		sum := 0
		for v := range present {
			sum += g.Degree(v)
		}
		if sum != 2*g.EdgeCount() {
			t.Fatalf("step %d: handshake failed: sum deg=%d, 2m=%d", step, sum, 2*g.EdgeCount())
		}
	}
}

func pick(rng *rand.Rand, set map[NodeID]bool) NodeID {
	i := rng.IntN(len(set))
	for v := range set {
		if i == 0 {
			return v
		}
		i--
	}
	panic("unreachable")
}

// TestEdgeSymmetryProperty checks via testing/quick that after inserting an
// arbitrary edge set over a fixed node universe, adjacency is symmetric.
func TestEdgeSymmetryProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for i := NodeID(0); i < 32; i++ {
			if err := g.AddNode(i); err != nil {
				return false
			}
		}
		for _, p := range pairs {
			u, v := NodeID(p[0]%32), NodeID(p[1]%32)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e[1], e[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
