package graph

import (
	"math/rand/v2"
	"testing"
)

func TestSpillRefEncoding(t *testing.T) {
	for _, c := range []int{0, 1, 5, spillClasses - 1} {
		for _, idx := range []uint32{0, 1, 7, spillIdxMask - 1} {
			r := makeSpillRef(c, idx)
			if r == 0 {
				t.Fatalf("makeSpillRef(%d, %d) = 0, collides with the inline sentinel", c, idx)
			}
			if r.class() != c || r.index() != idx {
				t.Fatalf("roundtrip(%d, %d) = (%d, %d)", c, idx, r.class(), r.index())
			}
		}
	}
	if got := spillClassCap(0); got != 2*inlineDegree {
		t.Fatalf("spillClassCap(0) = %d, want %d", got, 2*inlineDegree)
	}
	for c := 1; c < spillClasses; c++ {
		if spillClassCap(c) != 2*spillClassCap(c-1) {
			t.Fatalf("class %d capacity %d is not double class %d's %d",
				c, spillClassCap(c), c-1, spillClassCap(c-1))
		}
	}
}

// A block index whose bias carry would overflow the 27-bit lane must
// panic rather than silently alias another class's storage.
func TestSpillRefIndexOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("makeSpillRef accepted an index that overflows the 27-bit lane")
		}
	}()
	makeSpillRef(0, spillIdxMask)
}

// star wires hub 0 to leaves 1..deg on a fresh graph.
func star(t *testing.T, deg int) *Graph {
	t.Helper()
	g := New()
	if err := g.AddNode(0); err != nil {
		t.Fatal(err)
	}
	for v := NodeID(1); v <= NodeID(deg); v++ {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// A spilled node whose degree falls back to inlineDegree must return to
// inline storage and release its block to the pool — the
// spill-never-shrinks fix.
func TestSpillShrinksBackInline(t *testing.T) {
	const deg = 64
	g := star(t, deg)
	hub, _ := g.Index(0)
	if g.adj[hub].ref == 0 {
		t.Fatalf("degree-%d hub is not spilled", deg)
	}
	if live := g.Mem().SpillLiveBytes; live == 0 {
		t.Fatal("SpillLiveBytes = 0 with a spilled hub")
	}
	for v := NodeID(1); v <= NodeID(deg-inlineDegree); v++ {
		if err := g.RemoveEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(0) != inlineDegree {
		t.Fatalf("Degree(0) = %d, want %d", g.Degree(0), inlineDegree)
	}
	if r := g.adj[hub].ref; r != 0 {
		t.Fatalf("hub still spilled (ref %#x) at degree %d", r, inlineDegree)
	}
	if live := g.Mem().SpillLiveBytes; live != 0 {
		t.Fatalf("SpillLiveBytes = %d after shrink, want 0", live)
	}
	// The neighbor set must have survived the inline migration.
	want := []NodeID{NodeID(deg - inlineDegree + 1), NodeID(deg - inlineDegree + 2), NodeID(deg - 1), NodeID(deg)}
	got := g.Neighbors(0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
}

// Degree drops must also step down size classes (at quarter occupancy),
// and the hysteresis gap must prevent immediate re-promotion.
func TestSpillClassDownshift(t *testing.T) {
	const deg = 256 // class 5 (cap 256) once it exceeds 128
	g := star(t, deg)
	hub, _ := g.Index(0)
	startClass := g.adj[hub].ref.class()
	if cap := spillClassCap(startClass); cap < deg {
		t.Fatalf("class %d (cap %d) cannot hold degree %d", startClass, cap, deg)
	}
	// Remove down to cap/4 of the starting class: exactly the downshift
	// threshold.
	target := spillClassCap(startClass) / 4
	for v := NodeID(1); g.Degree(0) > target; v++ {
		if err := g.RemoveEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	c := g.adj[hub].ref.class()
	if c >= startClass {
		t.Fatalf("class %d did not shrink from %d at degree %d", c, startClass, target)
	}
	// Hysteresis: the post-shrink block must absorb at least one insert
	// without promoting (deg ≤ cap/2 after a downshift).
	if spillClassCap(c) < 2*target {
		t.Fatalf("post-shrink class %d (cap %d) violates the half-full bound at degree %d",
			c, spillClassCap(c), target)
	}
}

// Satellite: retained bytes must return to baseline across hub
// delete/re-insert cycles — the pool recycles blocks instead of
// allocating fresh spill per incarnation, and no cycle leaks.
func TestSpillChurnRetainedBytesStable(t *testing.T) {
	const deg = 128
	g := star(t, deg)
	leaves := g.Neighbors(0)

	cycle := func() {
		if err := g.RemoveNode(0); err != nil {
			t.Fatal(err)
		}
		if err := g.AddNode(0); err != nil {
			t.Fatal(err)
		}
		for _, v := range leaves {
			if err := g.AddEdge(0, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	cycle() // settle: the first cycle may size pool free-lists
	base := g.Mem()
	for i := 0; i < 50; i++ {
		cycle()
		m := g.Mem()
		if m.TotalBytes != base.TotalBytes {
			t.Fatalf("cycle %d: retained bytes %d, baseline %d (spill slab %d → %d)",
				i, m.TotalBytes, base.TotalBytes, base.SpillSlabBytes, m.SpillSlabBytes)
		}
		if m.SpillLiveBytes != base.SpillLiveBytes {
			t.Fatalf("cycle %d: live spill %d, baseline %d", i, m.SpillLiveBytes, base.SpillLiveBytes)
		}
	}
}

// The pool's block accounting must stay consistent under random churn:
// every live slot's ref resolves to a distinct block, and MemStats'
// live-block census agrees with the refs actually held.
func TestSpillPoolCensus(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewPCG(7, 7))
	const ids = 64
	for step := 0; step < 20000; step++ {
		u, v := NodeID(rng.IntN(ids)), NodeID(rng.IntN(ids))
		switch rng.IntN(5) {
		case 0:
			g.AddNode(u)
		case 1:
			g.RemoveNode(u)
		default:
			if !g.HasNode(u) || !g.HasNode(v) || u == v {
				continue
			}
			if g.HasEdge(u, v) {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v)
			}
		}
	}

	owned := make(map[spillRef]int32)
	liveBytes := int64(0)
	for i := range g.adj {
		a := &g.adj[i]
		if g.ids[i] == None {
			if a.ref != 0 {
				t.Fatalf("free slot %d holds spill ref %#x", i, a.ref)
			}
			continue
		}
		if a.ref == 0 {
			if int(a.deg) > inlineDegree {
				t.Fatalf("slot %d: degree %d without spill", i, a.deg)
			}
			continue
		}
		if prev, dup := owned[a.ref]; dup {
			t.Fatalf("slots %d and %d share spill block %#x", prev, i, a.ref)
		}
		owned[a.ref] = int32(i)
		bcap := spillClassCap(a.ref.class())
		if int(a.deg) > bcap || int(a.deg) <= inlineDegree {
			t.Fatalf("slot %d: degree %d outside (inline, cap %d]", i, a.deg, bcap)
		}
		liveBytes += int64(bcap) * 4
	}
	if m := g.Mem(); m.SpillLiveBytes != liveBytes {
		t.Fatalf("MemStats.SpillLiveBytes = %d, refs hold %d", m.SpillLiveBytes, liveBytes)
	}
}

func TestMemStatsAccounting(t *testing.T) {
	g := New()
	if m := g.Mem(); m.TotalBytes != 0 || m.BytesPerNode() != 0 || m.SpillUtilization() != 1 {
		t.Fatalf("empty graph MemStats = %+v", m)
	}
	const n = 1000
	g.Grow(n)
	for v := range NodeID(n) {
		if err := g.AddNode(v); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 4*n; i++ {
		u, v := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	m := g.Mem()
	if m.Nodes != n || m.Slots != n {
		t.Fatalf("MemStats nodes/slots = %d/%d, want %d/%d", m.Nodes, m.Slots, n, n)
	}
	if m.Edges != g.EdgeCount() {
		t.Fatalf("MemStats.Edges = %d, want %d", m.Edges, g.EdgeCount())
	}
	if sum := m.LaneBytes + m.IndexBytes + m.FreeBytes + m.SpillSlabBytes; sum != m.TotalBytes {
		t.Fatalf("TotalBytes %d != component sum %d", m.TotalBytes, sum)
	}
	if m.BytesPerNode() <= 0 {
		t.Fatalf("BytesPerNode = %v", m.BytesPerNode())
	}
	if u := m.SpillUtilization(); u <= 0 || u > 1 {
		t.Fatalf("SpillUtilization = %v", u)
	}
	if m.SpillLiveBytes > m.SpillSlabBytes {
		t.Fatalf("live spill %d exceeds slab %d", m.SpillLiveBytes, m.SpillSlabBytes)
	}
}

// Steady-state edge churn on a warm arena must not allocate: inserts
// and deletes recycle pool blocks and free slots without touching the
// GC. This is the allocation-regression gate for the storage layer.
func BenchmarkSteadyStateEdgeChurn(b *testing.B) {
	const n = 1024
	g := New()
	g.Grow(n)
	for v := range NodeID(n) {
		if err := g.AddNode(v); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(1, 2))
	// Warm up degrees past the spill boundary so churn crosses it.
	var edges [][2]NodeID
	for i := 0; i < 8*n; i++ {
		u, v := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
			edges = append(edges, [2]NodeID{u, v})
		}
	}
	// Settle pool free-list capacities with one pass of delete+re-insert
	// before measuring.
	for _, e := range edges {
		g.RemoveEdge(e[0], e[1])
		g.AddEdge(e[0], e[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[rng.IntN(len(edges))]
		g.RemoveEdge(e[0], e[1])
		g.AddEdge(e[0], e[1])
	}
}
