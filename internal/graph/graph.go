package graph

import (
	"cmp"
	"errors"
	"fmt"
	"iter"
	"slices"
)

// NodeID identifies a node. IDs are chosen by the caller and are stable
// for the lifetime of the node — unlike slot indices, which are
// recycled when nodes are deleted (see the package documentation for
// the ID/slot distinction). None (-1) is reserved and rejected by
// AddNode.
type NodeID int64

// None is the zero-like sentinel for "no node": the value IDAt returns
// for a free arena slot, and the conventional "absent" NodeID
// throughout the engines. Because free slots are marked with it, it can
// never name a real node (ErrReservedID).
const None NodeID = -1

// Errors returned by graph mutations. They are sentinel values so callers
// can match them with errors.Is.
var (
	ErrNodeExists = errors.New("graph: node already exists")
	ErrNoNode     = errors.New("graph: node does not exist")
	ErrEdgeExists = errors.New("graph: edge already exists")
	ErrNoEdge     = errors.New("graph: edge does not exist")
	ErrSelfLoop   = errors.New("graph: self loops are not allowed")
	// ErrReservedID rejects NodeID None (-1): the arena marks free slots
	// with it, so it cannot name a real node.
	ErrReservedID = errors.New("graph: NodeID None (-1) is reserved")
)

// inlineDegree is the number of neighbor slots stored inline in the node
// slot itself; only nodes of larger degree allocate a spill slice.
const inlineDegree = 4

// adjacency is one slot's neighbor-list header: 24 bytes, down from the
// ~48 of the former {deg, inline, spill []int32} layout. Neighbors are
// slot indices in ascending order. While ref is zero they live in
// inline[:deg]; once the degree first exceeds inlineDegree they move
// into a spill-pool block named by ref (see spill.go). Degree drops
// revert the migration: back down a size class at quarter-occupancy,
// back inline once the list fits again — so a once-hot hub releases its
// peak allocation to the shared pool instead of pinning it forever.
type adjacency struct {
	deg    int32
	ref    spillRef // 0 = inline; else the spill-pool block holding the list
	inline [inlineDegree]int32
}

// adjSlots returns slot i's neighbor slots in ascending slot order. The
// returned slice aliases the arena and is valid only until the next
// mutation of slot i's own list (mutating other slots' lists may retire
// the backing slab, but the returned snapshot stays intact and current —
// RemoveNode relies on this while unlinking a victim's neighbors).
func (g *Graph) adjSlots(i int32) []int32 {
	a := &g.adj[i]
	if a.ref != 0 {
		return g.pool.block(a.ref)[:a.deg]
	}
	return a.inline[:a.deg]
}

// adjContains reports whether j is a neighbor slot of i.
func (g *Graph) adjContains(i, j int32) bool {
	a := &g.adj[i]
	if a.ref != 0 {
		_, ok := slices.BinarySearch(g.pool.block(a.ref)[:a.deg], j)
		return ok
	}
	for _, s := range a.inline[:a.deg] {
		if s == j {
			return true
		}
	}
	return false
}

// adjInsert adds neighbor slot j to slot i, keeping ascending order. j
// must not be present.
func (g *Graph) adjInsert(i, j int32) {
	a := &g.adj[i]
	if a.ref == 0 {
		if int(a.deg) < inlineDegree {
			k := a.deg
			for k > 0 && a.inline[k-1] > j {
				a.inline[k] = a.inline[k-1]
				k--
			}
			a.inline[k] = j
			a.deg++
			return
		}
		// First overflow: migrate inline into a class-0 block.
		r := g.pool.alloc(0)
		copy(g.pool.block(r), a.inline[:a.deg])
		a.ref = r
	}
	if int(a.deg) == spillClassCap(a.ref.class()) {
		// Block full: promote one size class (doubling the capacity).
		r := g.pool.alloc(a.ref.class() + 1)
		copy(g.pool.block(r), g.pool.block(a.ref)[:a.deg])
		g.pool.release(a.ref)
		a.ref = r
	}
	blk := g.pool.block(a.ref)
	k, _ := slices.BinarySearch(blk[:a.deg], j)
	copy(blk[k+1:int(a.deg)+1], blk[k:a.deg])
	blk[k] = j
	a.deg++
}

// adjRemove deletes neighbor slot j from slot i. j must be present.
func (g *Graph) adjRemove(i, j int32) {
	a := &g.adj[i]
	if a.ref == 0 {
		for k := int32(0); k < a.deg; k++ {
			if a.inline[k] == j {
				copy(a.inline[k:a.deg-1], a.inline[k+1:a.deg])
				a.deg--
				return
			}
		}
		return
	}
	blk := g.pool.block(a.ref)
	k, _ := slices.BinarySearch(blk[:a.deg], j)
	copy(blk[k:int(a.deg)-1], blk[k+1:a.deg])
	a.deg--
	g.adjShrink(a)
}

// adjShrink reverts spill storage as churn drops the degree: back into
// the inline header once the list fits there, or down one size class
// once the block is at most quarter-full. The quarter threshold is
// hysteresis — after the downshift the new block is at most half-full,
// so the very next insert can never force an immediate re-promotion,
// and a node oscillating around a class boundary does plain O(1)
// free-list pushes and pops rather than GC traffic.
func (g *Graph) adjShrink(a *adjacency) {
	if int(a.deg) <= inlineDegree {
		copy(a.inline[:a.deg], g.pool.block(a.ref)[:a.deg])
		g.pool.release(a.ref)
		a.ref = 0
		return
	}
	if c := a.ref.class(); c > 0 && int(a.deg) <= spillClassCap(c)/4 {
		r := g.pool.alloc(c - 1)
		copy(g.pool.block(r), g.pool.block(a.ref)[:a.deg])
		g.pool.release(a.ref)
		a.ref = r
	}
}

// adjReset empties slot i's list for slot recycling, returning any spill
// block to the pool (where any future hub, not just this slot's next
// tenant, can reuse it).
func (g *Graph) adjReset(i int32) {
	a := &g.adj[i]
	if a.ref != 0 {
		g.pool.release(a.ref)
		a.ref = 0
	}
	a.deg = 0
}

// Graph is a mutable undirected simple graph. The zero value is not ready to
// use; call New.
type Graph struct {
	idx    map[NodeID]int32 // NodeID → dense slot
	idxCap int              // size hint the idx map was last built with
	ids    []NodeID         // slot → NodeID; None when the slot is free
	adj    []adjacency      // slot → neighbor-list header
	pool   spillPool        // shared storage for lists that outgrow the header
	prio   []uint64         // slot → priority lane (see Order.Attach)
	state  []byte           // slot → membership lane (owned by internal/core)
	free   [][]int32        // recycled slots per partition, popped LIFO
	freeRR int              // round-robin allocation cursor over partitions
	freeBk int32            // slot-block granularity keying the partitions
	n      int              // live node count
	edges  int
}

// New returns an empty graph with a single (unpartitioned) free-list.
func New() *Graph {
	return &Graph{idx: make(map[NodeID]int32), free: make([][]int32, 1)}
}

// freeKey returns the free-list partition owning slot i.
func (g *Graph) freeKey(i int32) int {
	if len(g.free) == 1 {
		return 0
	}
	return int(uint32(i) / uint32(g.freeBk) % uint32(len(g.free)))
}

// freeCount returns the total number of recycled slots awaiting reuse.
func (g *Graph) freeCount() int {
	n := 0
	for _, part := range g.free {
		n += len(part)
	}
	return n
}

// FreeSlots returns the number of recycled slots on the free-list(s).
func (g *Graph) FreeSlots() int { return g.freeCount() }

// PartitionFreeList splits the arena free-list into parts independent
// pools keyed by contiguous blockSlots-sized slot blocks — the same
// block-cyclic keying a sharded engine uses for slot ownership. Freed
// slots return to the pool of their owning partition, and allocations
// draw from the pools round-robin, so a burst of insertions spreads its
// recycled slots evenly across all partitions instead of replaying the
// free-list's LIFO history (which, after skewed churn, can hand every
// new node to one partition and leave its owner doing the whole
// cascade). With parts == 1 the graph behaves exactly as before:
// one LIFO free-list.
//
// Repartitioning rebuckets the current free slots; it never changes
// observable graph state, only which free slot a future insertion gets.
func (g *Graph) PartitionFreeList(parts int, blockSlots int) {
	if parts < 1 {
		parts = 1
	}
	if blockSlots < 1 {
		blockSlots = 1
	}
	if parts == len(g.free) && (parts == 1 || int32(blockSlots) == g.freeBk) {
		return
	}
	old := g.free
	g.free = make([][]int32, parts)
	g.freeBk = int32(blockSlots)
	g.freeRR = 0
	for _, part := range old {
		for _, i := range part {
			k := g.freeKey(i)
			g.free[k] = append(g.free[k], i)
		}
	}
}

// Grow arranges capacity for at least n additional nodes, so that a
// warm-up phase inserting a known number of nodes neither reallocates
// the arena nor incrementally rehashes the index table. It never
// changes observable state, and it is watermarked: the index table is
// rebuilt only when the projected size exceeds every size it has
// already reached, so repeating a satisfied Grow (or shrinking the
// request) is a no-op rather than a rehash.
func (g *Graph) Grow(n int) {
	if n <= 0 {
		return
	}
	// Fresh insertions drain the free-list first; only the remainder
	// needs new arena capacity.
	if extra := n - g.freeCount(); extra > 0 {
		g.ids = slices.Grow(g.ids, extra)
		g.adj = slices.Grow(g.adj, extra)
		g.prio = slices.Grow(g.prio, extra)
		g.state = slices.Grow(g.state, extra)
	}
	// Rebuild the index map only when the request exceeds every size it
	// has already reached — a Grow that is already satisfied must not
	// rehash (it is documented as safe to repeat).
	if need := g.n + n; need > max(g.idxCap, len(g.idx)) {
		idx := make(map[NodeID]int32, need)
		for v, i := range g.idx {
			idx[v] = i
		}
		g.idx = idx
		g.idxCap = need
	}
}

// Index returns v's dense slot index. Slots are stable for the lifetime
// of the node (until it is deleted) and recycled afterwards, so they
// must not be cached across mutations; they are the key into the arena
// accessors (IDAt, NeighborSlots, DegreeAt, PrioAt, StateAt, LessAt).
// This lookup is the only hashing in the structure — engines resolve
// IDs to slots once per operation and then stay in slot space.
func (g *Graph) Index(v NodeID) (int, bool) {
	i, ok := g.idx[v]
	return int(i), ok
}

// Slots returns the arena size: slot indices range over [0, Slots()).
// Some slots may be free (IDAt returns None for those); the size only
// ever grows, since deleted nodes' slots are recycled through the
// free-list rather than compacted away.
func (g *Graph) Slots() int { return len(g.ids) }

// IDAt returns the NodeID occupying slot i, or None if the slot is free
// (on the free-list, awaiting recycling).
func (g *Graph) IDAt(i int) NodeID { return g.ids[i] }

// NeighborSlots returns the neighbor slots of the node in slot i, in
// ascending slot order. The slice aliases the arena: it is read-only and
// valid only until the next mutation.
func (g *Graph) NeighborSlots(i int) []int32 { return g.adjSlots(int32(i)) }

// DegreeAt returns the degree of the node in slot i.
func (g *Graph) DegreeAt(i int) int { return int(g.adj[i].deg) }

// PrioAt returns slot i's entry of the priority lane. The lane is written
// by an attached internal/order.Order (the source of truth for priorities);
// it exists so that the cascade inner loop can compare π positions with
// two array reads instead of two map lookups.
func (g *Graph) PrioAt(i int) uint64 { return g.prio[i] }

// SetPrioAt writes slot i's entry of the priority lane.
func (g *Graph) SetPrioAt(i int, p uint64) { g.prio[i] = p }

// StateAt returns slot i's entry of the membership lane, a single byte
// owned by the engine layered above (internal/core stores the MIS
// membership here; 0 is "out"). Freed and newly allocated slots read 0
// — both free and alloc zero the lane, so a recycled slot can never
// leak its previous tenant's membership.
func (g *Graph) StateAt(i int) byte { return g.state[i] }

// SetStateAt writes slot i's entry of the membership lane.
func (g *Graph) SetStateAt(i int, b byte) { g.state[i] = b }

// LessAt reports whether the node in slot i precedes the node in slot j in
// the random order π recorded in the priority lane (ties broken by NodeID,
// matching order.Less). Both slots must be occupied.
func (g *Graph) LessAt(i, j int) bool {
	if g.prio[i] != g.prio[j] {
		return g.prio[i] < g.prio[j]
	}
	return g.ids[i] < g.ids[j]
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.idx[v]
	return ok
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	i, ok := g.idx[u]
	if !ok {
		return false
	}
	j, ok := g.idx[v]
	if !ok {
		return false
	}
	return g.adjContains(i, j)
}

// alloc claims a slot for v: a recycled one if available (drawn from the
// free-list partitions round-robin), else a fresh one. Lanes and
// adjacency of the returned slot are zeroed.
func (g *Graph) alloc(v NodeID) int32 {
	i := int32(-1)
	for range g.free {
		p := g.freeRR
		g.freeRR = (g.freeRR + 1) % len(g.free)
		if k := len(g.free[p]); k > 0 {
			i = g.free[p][k-1]
			g.free[p] = g.free[p][:k-1]
			break
		}
	}
	if i < 0 {
		i = int32(len(g.ids))
		g.ids = append(g.ids, None)
		g.adj = append(g.adj, adjacency{})
		g.prio = append(g.prio, 0)
		g.state = append(g.state, 0)
	}
	g.ids[i] = v
	g.adjReset(i)
	g.prio[i] = 0
	g.state[i] = 0
	g.idx[v] = i
	g.n++
	return i
}

// AddNode inserts an isolated node.
func (g *Graph) AddNode(v NodeID) error {
	if v == None {
		return fmt.Errorf("add node %d: %w", v, ErrReservedID)
	}
	if g.HasNode(v) {
		return fmt.Errorf("add node %d: %w", v, ErrNodeExists)
	}
	g.alloc(v)
	return nil
}

// RemoveNode deletes v and all incident edges. v's slot is zeroed
// (lanes and adjacency; any spill block returns to the shared pool) and
// pushed onto the free-list for recycling by a future insertion.
func (g *Graph) RemoveNode(v NodeID) error {
	i, ok := g.idx[v]
	if !ok {
		return fmt.Errorf("remove node %d: %w", v, ErrNoNode)
	}
	// Unlinking i from each neighbor may shrink that neighbor's block and
	// grow a smaller class's slab, but never mutates i's own list — so
	// the adjSlots snapshot stays correct even if its backing slab is
	// retired mid-loop (see adjSlots).
	for _, j := range g.adjSlots(i) {
		g.adjRemove(j, i)
		g.edges--
	}
	g.adjReset(i)
	g.prio[i] = 0
	g.state[i] = 0
	g.ids[i] = None
	delete(g.idx, v)
	k := g.freeKey(i)
	g.free[k] = append(g.free[k], i)
	g.n--
	return nil
}

// AddEdge inserts the undirected edge {u,v}. Both endpoints must exist.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrSelfLoop)
	}
	i, ok := g.idx[u]
	if !ok {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, u, ErrNoNode)
	}
	j, ok := g.idx[v]
	if !ok {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, v, ErrNoNode)
	}
	if g.adjContains(i, j) {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrEdgeExists)
	}
	g.adjInsert(i, j)
	g.adjInsert(j, i)
	g.edges++
	return nil
}

// RemoveEdge deletes the undirected edge {u,v}.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	i, iok := g.idx[u]
	j, jok := g.idx[v]
	if !iok || !jok || !g.adjContains(i, j) {
		return fmt.Errorf("remove edge {%d,%d}: %w", u, v, ErrNoEdge)
	}
	g.adjRemove(i, j)
	g.adjRemove(j, i)
	g.edges--
	return nil
}

// Neighbors returns the neighbors of v in ascending ID order. The returned
// slice is a copy owned by the caller. Neighbors of an absent node are nil.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	i, ok := g.idx[v]
	if !ok {
		return nil
	}
	nb := g.adjSlots(i)
	out := make([]NodeID, len(nb))
	for k, j := range nb {
		out[k] = g.ids[j]
	}
	slices.Sort(out)
	return out
}

// EachNeighbor calls fn for every neighbor of v in unspecified order. It
// avoids the sort and allocation of Neighbors for hot paths.
func (g *Graph) EachNeighbor(v NodeID, fn func(u NodeID)) {
	i, ok := g.idx[v]
	if !ok {
		return
	}
	for _, j := range g.adjSlots(i) {
		fn(g.ids[j])
	}
}

// Degree returns the degree of v, or 0 if absent.
func (g *Graph) Degree(v NodeID) int {
	i, ok := g.idx[v]
	if !ok {
		return 0
	}
	return int(g.adj[i].deg)
}

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for i := range g.ids {
		if g.ids[i] != None {
			maxDeg = max(maxDeg, int(g.adj[i].deg))
		}
	}
	return maxDeg
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return g.n }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edges }

// NodeSeq iterates over the node IDs in unspecified order, without the
// sort and allocation of Nodes — the hot-path form for full scans. The
// graph must not be mutated during iteration.
func (g *Graph) NodeSeq() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for _, v := range g.ids {
			if v == None {
				continue
			}
			if !yield(v) {
				return
			}
		}
	}
}

// Nodes returns all node IDs in ascending order. The slice is a copy.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, g.n)
	for _, v := range g.ids {
		if v != None {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.edges)
	for i := range g.ids {
		if g.ids[i] == None {
			continue
		}
		for _, j := range g.adjSlots(int32(i)) {
			if g.ids[i] < g.ids[j] {
				out = append(out, [2]NodeID{g.ids[i], g.ids[j]})
			}
		}
	}
	slices.SortFunc(out, func(a, b [2]NodeID) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out
}

// Clone returns a deep copy of g, preallocated to exactly g's size:
// slot assignment, lanes and free-list carry over (every node keeps its
// slot index), so a clone is immediately usable by the same attached
// order without rebuilding, and slot-space scratch computed against g
// remains meaningful for the clone.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		idx:    make(map[NodeID]int32, len(g.idx)),
		ids:    slices.Clone(g.ids),
		adj:    slices.Clone(g.adj), // headers are plain values; refs stay valid
		pool:   g.pool.clone(),      // …against the cloned pool's identical layout
		prio:   slices.Clone(g.prio),
		state:  slices.Clone(g.state),
		free:   make([][]int32, len(g.free)),
		freeRR: g.freeRR,
		freeBk: g.freeBk,
		n:      g.n,
		edges:  g.edges,
	}
	for k, part := range g.free {
		c.free[k] = slices.Clone(part)
	}
	for v, i := range g.idx {
		c.idx[v] = i
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets (slot
// assignment and lanes are representation details and do not participate).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.edges != h.edges {
		return false
	}
	for i := range g.ids {
		v := g.ids[i]
		if v == None {
			continue
		}
		j, ok := h.idx[v]
		if !ok || g.adj[i].deg != h.adj[j].deg {
			return false
		}
		for _, k := range g.adjSlots(int32(i)) {
			hj, ok := h.idx[g.ids[k]]
			if !ok || !h.adjContains(j, hj) {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "Graph(n=3, m=2)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.edges)
}
