package graph

import (
	"cmp"
	"errors"
	"fmt"
	"iter"
	"slices"
)

// NodeID identifies a node. IDs are chosen by the caller and are stable
// for the lifetime of the node — unlike slot indices, which are
// recycled when nodes are deleted (see the package documentation for
// the ID/slot distinction). None (-1) is reserved and rejected by
// AddNode.
type NodeID int64

// None is the zero-like sentinel for "no node": the value IDAt returns
// for a free arena slot, and the conventional "absent" NodeID
// throughout the engines. Because free slots are marked with it, it can
// never name a real node (ErrReservedID).
const None NodeID = -1

// Errors returned by graph mutations. They are sentinel values so callers
// can match them with errors.Is.
var (
	ErrNodeExists = errors.New("graph: node already exists")
	ErrNoNode     = errors.New("graph: node does not exist")
	ErrEdgeExists = errors.New("graph: edge already exists")
	ErrNoEdge     = errors.New("graph: edge does not exist")
	ErrSelfLoop   = errors.New("graph: self loops are not allowed")
	// ErrReservedID rejects NodeID None (-1): the arena marks free slots
	// with it, so it cannot name a real node.
	ErrReservedID = errors.New("graph: NodeID None (-1) is reserved")
)

// inlineDegree is the number of neighbor slots stored inline in the node
// slot itself; only nodes of larger degree allocate a spill slice.
const inlineDegree = 4

// adjacency is one slot's neighbor list, as slot indices in ascending
// order. While spill is nil the neighbors live in inline[:deg]; once the
// degree first exceeds inlineDegree they move into the spill slice (kept
// with len == deg) and stay there — including across slot recycling, so a
// hot slot's capacity is reused instead of reallocated.
type adjacency struct {
	deg    int32
	inline [inlineDegree]int32
	spill  []int32
}

// slots returns the neighbor slots in ascending slot order. The returned
// slice aliases the arena and is valid only until the next mutation.
func (a *adjacency) slots() []int32 {
	if a.spill != nil {
		return a.spill
	}
	return a.inline[:a.deg]
}

// contains reports whether j is a neighbor slot.
func (a *adjacency) contains(j int32) bool {
	if a.spill != nil {
		_, ok := slices.BinarySearch(a.spill, j)
		return ok
	}
	for _, s := range a.inline[:a.deg] {
		if s == j {
			return true
		}
	}
	return false
}

// insert adds neighbor slot j, keeping ascending order. j must not be
// present.
func (a *adjacency) insert(j int32) {
	if a.spill == nil {
		if int(a.deg) < inlineDegree {
			k := a.deg
			for k > 0 && a.inline[k-1] > j {
				a.inline[k] = a.inline[k-1]
				k--
			}
			a.inline[k] = j
			a.deg++
			return
		}
		a.spill = make([]int32, a.deg, 2*inlineDegree)
		copy(a.spill, a.inline[:a.deg])
	}
	k, _ := slices.BinarySearch(a.spill, j)
	a.spill = slices.Insert(a.spill, k, j)
	a.deg++
}

// remove deletes neighbor slot j. j must be present.
func (a *adjacency) remove(j int32) {
	if a.spill != nil {
		k, _ := slices.BinarySearch(a.spill, j)
		a.spill = slices.Delete(a.spill, k, k+1)
		a.deg--
		return
	}
	for k := int32(0); k < a.deg; k++ {
		if a.inline[k] == j {
			copy(a.inline[k:a.deg-1], a.inline[k+1:a.deg])
			a.deg--
			return
		}
	}
}

// reset empties the list for slot recycling, retaining spill capacity.
func (a *adjacency) reset() {
	a.deg = 0
	if a.spill != nil {
		a.spill = a.spill[:0]
	}
}

// Graph is a mutable undirected simple graph. The zero value is not ready to
// use; call New.
type Graph struct {
	idx    map[NodeID]int32 // NodeID → dense slot
	idxCap int              // size hint the idx map was last built with
	ids    []NodeID         // slot → NodeID; None when the slot is free
	adj    []adjacency      // slot → neighbor slots
	prio   []uint64         // slot → priority lane (see Order.Attach)
	state  []byte           // slot → membership lane (owned by internal/core)
	free   [][]int32        // recycled slots per partition, popped LIFO
	freeRR int              // round-robin allocation cursor over partitions
	freeBk int32            // slot-block granularity keying the partitions
	n      int              // live node count
	edges  int
}

// New returns an empty graph with a single (unpartitioned) free-list.
func New() *Graph {
	return &Graph{idx: make(map[NodeID]int32), free: make([][]int32, 1)}
}

// freeKey returns the free-list partition owning slot i.
func (g *Graph) freeKey(i int32) int {
	if len(g.free) == 1 {
		return 0
	}
	return int(uint32(i) / uint32(g.freeBk) % uint32(len(g.free)))
}

// freeCount returns the total number of recycled slots awaiting reuse.
func (g *Graph) freeCount() int {
	n := 0
	for _, part := range g.free {
		n += len(part)
	}
	return n
}

// FreeSlots returns the number of recycled slots on the free-list(s).
func (g *Graph) FreeSlots() int { return g.freeCount() }

// PartitionFreeList splits the arena free-list into parts independent
// pools keyed by contiguous blockSlots-sized slot blocks — the same
// block-cyclic keying a sharded engine uses for slot ownership. Freed
// slots return to the pool of their owning partition, and allocations
// draw from the pools round-robin, so a burst of insertions spreads its
// recycled slots evenly across all partitions instead of replaying the
// free-list's LIFO history (which, after skewed churn, can hand every
// new node to one partition and leave its owner doing the whole
// cascade). With parts == 1 the graph behaves exactly as before:
// one LIFO free-list.
//
// Repartitioning rebuckets the current free slots; it never changes
// observable graph state, only which free slot a future insertion gets.
func (g *Graph) PartitionFreeList(parts int, blockSlots int) {
	if parts < 1 {
		parts = 1
	}
	if blockSlots < 1 {
		blockSlots = 1
	}
	if parts == len(g.free) && (parts == 1 || int32(blockSlots) == g.freeBk) {
		return
	}
	old := g.free
	g.free = make([][]int32, parts)
	g.freeBk = int32(blockSlots)
	g.freeRR = 0
	for _, part := range old {
		for _, i := range part {
			k := g.freeKey(i)
			g.free[k] = append(g.free[k], i)
		}
	}
}

// Grow arranges capacity for at least n additional nodes, so that a
// warm-up phase inserting a known number of nodes neither reallocates
// the arena nor incrementally rehashes the index table. It never
// changes observable state, and it is watermarked: the index table is
// rebuilt only when the projected size exceeds every size it has
// already reached, so repeating a satisfied Grow (or shrinking the
// request) is a no-op rather than a rehash.
func (g *Graph) Grow(n int) {
	if n <= 0 {
		return
	}
	// Fresh insertions drain the free-list first; only the remainder
	// needs new arena capacity.
	if extra := n - g.freeCount(); extra > 0 {
		g.ids = slices.Grow(g.ids, extra)
		g.adj = slices.Grow(g.adj, extra)
		g.prio = slices.Grow(g.prio, extra)
		g.state = slices.Grow(g.state, extra)
	}
	// Rebuild the index map only when the request exceeds every size it
	// has already reached — a Grow that is already satisfied must not
	// rehash (it is documented as safe to repeat).
	if need := g.n + n; need > max(g.idxCap, len(g.idx)) {
		idx := make(map[NodeID]int32, need)
		for v, i := range g.idx {
			idx[v] = i
		}
		g.idx = idx
		g.idxCap = need
	}
}

// Index returns v's dense slot index. Slots are stable for the lifetime
// of the node (until it is deleted) and recycled afterwards, so they
// must not be cached across mutations; they are the key into the arena
// accessors (IDAt, NeighborSlots, DegreeAt, PrioAt, StateAt, LessAt).
// This lookup is the only hashing in the structure — engines resolve
// IDs to slots once per operation and then stay in slot space.
func (g *Graph) Index(v NodeID) (int, bool) {
	i, ok := g.idx[v]
	return int(i), ok
}

// Slots returns the arena size: slot indices range over [0, Slots()).
// Some slots may be free (IDAt returns None for those); the size only
// ever grows, since deleted nodes' slots are recycled through the
// free-list rather than compacted away.
func (g *Graph) Slots() int { return len(g.ids) }

// IDAt returns the NodeID occupying slot i, or None if the slot is free
// (on the free-list, awaiting recycling).
func (g *Graph) IDAt(i int) NodeID { return g.ids[i] }

// NeighborSlots returns the neighbor slots of the node in slot i, in
// ascending slot order. The slice aliases the arena: it is read-only and
// valid only until the next mutation.
func (g *Graph) NeighborSlots(i int) []int32 { return g.adj[i].slots() }

// DegreeAt returns the degree of the node in slot i.
func (g *Graph) DegreeAt(i int) int { return int(g.adj[i].deg) }

// PrioAt returns slot i's entry of the priority lane. The lane is written
// by an attached internal/order.Order (the source of truth for priorities);
// it exists so that the cascade inner loop can compare π positions with
// two array reads instead of two map lookups.
func (g *Graph) PrioAt(i int) uint64 { return g.prio[i] }

// SetPrioAt writes slot i's entry of the priority lane.
func (g *Graph) SetPrioAt(i int, p uint64) { g.prio[i] = p }

// StateAt returns slot i's entry of the membership lane, a single byte
// owned by the engine layered above (internal/core stores the MIS
// membership here; 0 is "out"). Freed and newly allocated slots read 0
// — both free and alloc zero the lane, so a recycled slot can never
// leak its previous tenant's membership.
func (g *Graph) StateAt(i int) byte { return g.state[i] }

// SetStateAt writes slot i's entry of the membership lane.
func (g *Graph) SetStateAt(i int, b byte) { g.state[i] = b }

// LessAt reports whether the node in slot i precedes the node in slot j in
// the random order π recorded in the priority lane (ties broken by NodeID,
// matching order.Less). Both slots must be occupied.
func (g *Graph) LessAt(i, j int) bool {
	if g.prio[i] != g.prio[j] {
		return g.prio[i] < g.prio[j]
	}
	return g.ids[i] < g.ids[j]
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.idx[v]
	return ok
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	i, ok := g.idx[u]
	if !ok {
		return false
	}
	j, ok := g.idx[v]
	if !ok {
		return false
	}
	return g.adj[i].contains(j)
}

// alloc claims a slot for v: a recycled one if available (drawn from the
// free-list partitions round-robin), else a fresh one. Lanes and
// adjacency of the returned slot are zeroed.
func (g *Graph) alloc(v NodeID) int32 {
	i := int32(-1)
	for range g.free {
		p := g.freeRR
		g.freeRR = (g.freeRR + 1) % len(g.free)
		if k := len(g.free[p]); k > 0 {
			i = g.free[p][k-1]
			g.free[p] = g.free[p][:k-1]
			break
		}
	}
	if i < 0 {
		i = int32(len(g.ids))
		g.ids = append(g.ids, None)
		g.adj = append(g.adj, adjacency{})
		g.prio = append(g.prio, 0)
		g.state = append(g.state, 0)
	}
	g.ids[i] = v
	g.adj[i].reset()
	g.prio[i] = 0
	g.state[i] = 0
	g.idx[v] = i
	g.n++
	return i
}

// AddNode inserts an isolated node.
func (g *Graph) AddNode(v NodeID) error {
	if v == None {
		return fmt.Errorf("add node %d: %w", v, ErrReservedID)
	}
	if g.HasNode(v) {
		return fmt.Errorf("add node %d: %w", v, ErrNodeExists)
	}
	g.alloc(v)
	return nil
}

// RemoveNode deletes v and all incident edges. v's slot is zeroed
// (lanes and adjacency, retaining spill capacity) and pushed onto the
// free-list for recycling by a future insertion.
func (g *Graph) RemoveNode(v NodeID) error {
	i, ok := g.idx[v]
	if !ok {
		return fmt.Errorf("remove node %d: %w", v, ErrNoNode)
	}
	for _, j := range g.adj[i].slots() {
		g.adj[j].remove(i)
		g.edges--
	}
	g.adj[i].reset()
	g.prio[i] = 0
	g.state[i] = 0
	g.ids[i] = None
	delete(g.idx, v)
	k := g.freeKey(i)
	g.free[k] = append(g.free[k], i)
	g.n--
	return nil
}

// AddEdge inserts the undirected edge {u,v}. Both endpoints must exist.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrSelfLoop)
	}
	i, ok := g.idx[u]
	if !ok {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, u, ErrNoNode)
	}
	j, ok := g.idx[v]
	if !ok {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, v, ErrNoNode)
	}
	if g.adj[i].contains(j) {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrEdgeExists)
	}
	g.adj[i].insert(j)
	g.adj[j].insert(i)
	g.edges++
	return nil
}

// RemoveEdge deletes the undirected edge {u,v}.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	i, iok := g.idx[u]
	j, jok := g.idx[v]
	if !iok || !jok || !g.adj[i].contains(j) {
		return fmt.Errorf("remove edge {%d,%d}: %w", u, v, ErrNoEdge)
	}
	g.adj[i].remove(j)
	g.adj[j].remove(i)
	g.edges--
	return nil
}

// Neighbors returns the neighbors of v in ascending ID order. The returned
// slice is a copy owned by the caller. Neighbors of an absent node are nil.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	i, ok := g.idx[v]
	if !ok {
		return nil
	}
	nb := g.adj[i].slots()
	out := make([]NodeID, len(nb))
	for k, j := range nb {
		out[k] = g.ids[j]
	}
	slices.Sort(out)
	return out
}

// EachNeighbor calls fn for every neighbor of v in unspecified order. It
// avoids the sort and allocation of Neighbors for hot paths.
func (g *Graph) EachNeighbor(v NodeID, fn func(u NodeID)) {
	i, ok := g.idx[v]
	if !ok {
		return
	}
	for _, j := range g.adj[i].slots() {
		fn(g.ids[j])
	}
}

// Degree returns the degree of v, or 0 if absent.
func (g *Graph) Degree(v NodeID) int {
	i, ok := g.idx[v]
	if !ok {
		return 0
	}
	return int(g.adj[i].deg)
}

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for i := range g.ids {
		if g.ids[i] != None {
			maxDeg = max(maxDeg, int(g.adj[i].deg))
		}
	}
	return maxDeg
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return g.n }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edges }

// NodeSeq iterates over the node IDs in unspecified order, without the
// sort and allocation of Nodes — the hot-path form for full scans. The
// graph must not be mutated during iteration.
func (g *Graph) NodeSeq() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for _, v := range g.ids {
			if v == None {
				continue
			}
			if !yield(v) {
				return
			}
		}
	}
}

// Nodes returns all node IDs in ascending order. The slice is a copy.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, g.n)
	for _, v := range g.ids {
		if v != None {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.edges)
	for i := range g.ids {
		if g.ids[i] == None {
			continue
		}
		for _, j := range g.adj[i].slots() {
			if g.ids[i] < g.ids[j] {
				out = append(out, [2]NodeID{g.ids[i], g.ids[j]})
			}
		}
	}
	slices.SortFunc(out, func(a, b [2]NodeID) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out
}

// Clone returns a deep copy of g, preallocated to exactly g's size:
// slot assignment, lanes and free-list carry over (every node keeps its
// slot index), so a clone is immediately usable by the same attached
// order without rebuilding, and slot-space scratch computed against g
// remains meaningful for the clone.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		idx:    make(map[NodeID]int32, len(g.idx)),
		ids:    slices.Clone(g.ids),
		adj:    make([]adjacency, len(g.adj)),
		prio:   slices.Clone(g.prio),
		state:  slices.Clone(g.state),
		free:   make([][]int32, len(g.free)),
		freeRR: g.freeRR,
		freeBk: g.freeBk,
		n:      g.n,
		edges:  g.edges,
	}
	for k, part := range g.free {
		c.free[k] = slices.Clone(part)
	}
	for v, i := range g.idx {
		c.idx[v] = i
	}
	for i := range g.adj {
		c.adj[i] = adjacency{deg: g.adj[i].deg, inline: g.adj[i].inline}
		if g.adj[i].spill != nil {
			c.adj[i].spill = slices.Clone(g.adj[i].spill)
		}
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets (slot
// assignment and lanes are representation details and do not participate).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.edges != h.edges {
		return false
	}
	for i := range g.ids {
		v := g.ids[i]
		if v == None {
			continue
		}
		j, ok := h.idx[v]
		if !ok || g.adj[i].deg != h.adj[j].deg {
			return false
		}
		for _, k := range g.adj[i].slots() {
			hj, ok := h.idx[g.ids[k]]
			if !ok || !h.adj[j].contains(hj) {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "Graph(n=3, m=2)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.edges)
}
