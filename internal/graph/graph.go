// Package graph provides the dynamic undirected graph that underlies the
// dynamic distributed model of Censor-Hillel, Haramaty and Karnin (PODC
// 2016): an evolving node/edge set subject to typed topology changes
// (insertions and deletions of edges and nodes, graceful or abrupt, plus
// muting/unmuting of nodes).
package graph

import (
	"errors"
	"fmt"
	"iter"
	"sort"
)

// NodeID identifies a node. IDs are chosen by the caller and are stable for
// the lifetime of the node.
type NodeID int64

// None is the zero-like sentinel for "no node".
const None NodeID = -1

// Errors returned by graph mutations. They are sentinel values so callers
// can match them with errors.Is.
var (
	ErrNodeExists = errors.New("graph: node already exists")
	ErrNoNode     = errors.New("graph: node does not exist")
	ErrEdgeExists = errors.New("graph: edge already exists")
	ErrNoEdge     = errors.New("graph: edge does not exist")
	ErrSelfLoop   = errors.New("graph: self loops are not allowed")
)

// Graph is a mutable undirected simple graph. The zero value is not ready to
// use; call New.
type Graph struct {
	adj   map[NodeID]map[NodeID]struct{}
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]struct{})}
}

// HasNode reports whether v is present.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.adj[v]
	return ok
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	nb, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = nb[v]
	return ok
}

// AddNode inserts an isolated node.
func (g *Graph) AddNode(v NodeID) error {
	if g.HasNode(v) {
		return fmt.Errorf("add node %d: %w", v, ErrNodeExists)
	}
	g.adj[v] = make(map[NodeID]struct{})
	return nil
}

// RemoveNode deletes v and all incident edges.
func (g *Graph) RemoveNode(v NodeID) error {
	nb, ok := g.adj[v]
	if !ok {
		return fmt.Errorf("remove node %d: %w", v, ErrNoNode)
	}
	for u := range nb {
		delete(g.adj[u], v)
		g.edges--
	}
	delete(g.adj, v)
	return nil
}

// AddEdge inserts the undirected edge {u,v}. Both endpoints must exist.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrSelfLoop)
	}
	if !g.HasNode(u) {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, u, ErrNoNode)
	}
	if !g.HasNode(v) {
		return fmt.Errorf("add edge {%d,%d}: endpoint %d: %w", u, v, v, ErrNoNode)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrEdgeExists)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return nil
}

// RemoveEdge deletes the undirected edge {u,v}.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("remove edge {%d,%d}: %w", u, v, ErrNoEdge)
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return nil
}

// Neighbors returns the neighbors of v in ascending ID order. The returned
// slice is a copy owned by the caller. Neighbors of an absent node are nil.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	nb, ok := g.adj[v]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(nb))
	for u := range nb {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachNeighbor calls fn for every neighbor of v in unspecified order. It
// avoids the sort and allocation of Neighbors for hot paths.
func (g *Graph) EachNeighbor(v NodeID, fn func(u NodeID)) {
	for u := range g.adj[v] {
		fn(u)
	}
}

// Degree returns the degree of v, or 0 if absent.
func (g *Graph) Degree(v NodeID) int {
	return len(g.adj[v])
}

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.adj) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edges }

// NodeSeq iterates over the node IDs in unspecified order, without the
// sort and allocation of Nodes — the hot-path form for full scans. The
// graph must not be mutated during iteration.
func (g *Graph) NodeSeq() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for v := range g.adj {
			if !yield(v) {
				return
			}
		}
	}
}

// Nodes returns all node IDs in ascending order. The slice is a copy.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.edges)
	for u, nb := range g.adj {
		for v := range nb {
			if u < v {
				out = append(out, [2]NodeID{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[NodeID]map[NodeID]struct{}, len(g.adj)), edges: g.edges}
	for v, nb := range g.adj {
		cnb := make(map[NodeID]struct{}, len(nb))
		for u := range nb {
			cnb[u] = struct{}{}
		}
		c.adj[v] = cnb
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if len(g.adj) != len(h.adj) || g.edges != h.edges {
		return false
	}
	for v, nb := range g.adj {
		hnb, ok := h.adj[v]
		if !ok || len(nb) != len(hnb) {
			return false
		}
		for u := range nb {
			if _, ok := hnb[u]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "Graph(n=3, m=2)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", len(g.adj), g.edges)
}
