package graph

import (
	"errors"
	"fmt"
)

// ChangeKind enumerates the topology changes of the dynamic distributed
// model (paper §2). Deletions are split into graceful (the departing
// node/edge relays messages until the system is stable again) and abrupt
// (it disappears immediately); insertions are split into fresh insertions
// and unmuting of a node that was invisible but kept listening.
type ChangeKind uint8

const (
	// EdgeInsert adds edge {U,V}.
	EdgeInsert ChangeKind = iota + 1
	// EdgeDeleteGraceful removes edge {U,V}; the edge can relay during
	// recovery.
	EdgeDeleteGraceful
	// EdgeDeleteAbrupt removes edge {U,V} immediately.
	EdgeDeleteAbrupt
	// NodeInsert adds node Node with edges to Edges.
	NodeInsert
	// NodeDeleteGraceful removes Node; it relays until stability.
	NodeDeleteGraceful
	// NodeDeleteAbrupt removes Node immediately; neighbors merely detect
	// its disappearance.
	NodeDeleteAbrupt
	// NodeMute hides Node from its neighbors; it keeps listening. Its
	// topological effect equals a graceful deletion.
	NodeMute
	// NodeUnmute re-inserts a muted node. It already knows its neighbors'
	// states, so only one Hello broadcast is needed (paper §2, §4).
	NodeUnmute
)

// String returns the canonical lower-case name of the change kind.
func (k ChangeKind) String() string {
	switch k {
	case EdgeInsert:
		return "edge-insert"
	case EdgeDeleteGraceful:
		return "edge-delete-graceful"
	case EdgeDeleteAbrupt:
		return "edge-delete-abrupt"
	case NodeInsert:
		return "node-insert"
	case NodeDeleteGraceful:
		return "node-delete-graceful"
	case NodeDeleteAbrupt:
		return "node-delete-abrupt"
	case NodeMute:
		return "node-mute"
	case NodeUnmute:
		return "node-unmute"
	default:
		return fmt.Sprintf("ChangeKind(%d)", uint8(k))
	}
}

// IsEdge reports whether the change concerns an edge.
func (k ChangeKind) IsEdge() bool {
	return k == EdgeInsert || k == EdgeDeleteGraceful || k == EdgeDeleteAbrupt
}

// IsDeletion reports whether the change removes something from the visible
// topology.
func (k ChangeKind) IsDeletion() bool {
	switch k {
	case EdgeDeleteGraceful, EdgeDeleteAbrupt, NodeDeleteGraceful, NodeDeleteAbrupt, NodeMute:
		return true
	}
	return false
}

// Change is one topology change. For edge changes U and V are the
// endpoints; for node changes Node is the subject and Edges lists the
// neighbors attached on insertion/unmuting (ignored for deletions).
type Change struct {
	Kind  ChangeKind
	U, V  NodeID
	Node  NodeID
	Edges []NodeID
}

// ErrInvalidChange wraps all change-validation failures.
var ErrInvalidChange = errors.New("graph: invalid change")

// EdgeChange builds an edge change.
func EdgeChange(kind ChangeKind, u, v NodeID) Change {
	return Change{Kind: kind, U: u, V: v}
}

// NodeChange builds a node change; edges may be nil for deletions.
func NodeChange(kind ChangeKind, node NodeID, edges ...NodeID) Change {
	return Change{Kind: kind, Node: node, Edges: edges}
}

// String renders the change, e.g. "edge-insert{3,7}" or "node-insert(9; 1 2)".
func (c Change) String() string {
	if c.Kind.IsEdge() {
		return fmt.Sprintf("%s{%d,%d}", c.Kind, c.U, c.V)
	}
	if len(c.Edges) == 0 {
		return fmt.Sprintf("%s(%d)", c.Kind, c.Node)
	}
	return fmt.Sprintf("%s(%d; %v)", c.Kind, c.Node, c.Edges)
}

// Validate reports whether c can be applied to g. Unmuting is validated
// like a node insertion: the node must be absent from the visible topology.
func (c Change) Validate(g *Graph) error {
	switch c.Kind {
	case EdgeInsert:
		if c.U == c.V {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrSelfLoop)
		}
		if !g.HasNode(c.U) || !g.HasNode(c.V) {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrNoNode)
		}
		if g.HasEdge(c.U, c.V) {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrEdgeExists)
		}
	case EdgeDeleteGraceful, EdgeDeleteAbrupt:
		if !g.HasEdge(c.U, c.V) {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrNoEdge)
		}
	case NodeInsert, NodeUnmute:
		if c.Node == None {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrReservedID)
		}
		if g.HasNode(c.Node) {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrNodeExists)
		}
		seen := make(map[NodeID]struct{}, len(c.Edges))
		for _, u := range c.Edges {
			if u == c.Node {
				return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrSelfLoop)
			}
			if !g.HasNode(u) {
				return fmt.Errorf("%w: %s: neighbor %d: %w", ErrInvalidChange, c, u, ErrNoNode)
			}
			if _, dup := seen[u]; dup {
				return fmt.Errorf("%w: %s: duplicate neighbor %d", ErrInvalidChange, c, u)
			}
			seen[u] = struct{}{}
		}
	case NodeDeleteGraceful, NodeDeleteAbrupt, NodeMute:
		if !g.HasNode(c.Node) {
			return fmt.Errorf("%w: %s: %w", ErrInvalidChange, c, ErrNoNode)
		}
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrInvalidChange, c.Kind)
	}
	return nil
}

// Apply validates c and mutates g accordingly.
func (c Change) Apply(g *Graph) error {
	if err := c.Validate(g); err != nil {
		return err
	}
	switch c.Kind {
	case EdgeInsert:
		return g.AddEdge(c.U, c.V)
	case EdgeDeleteGraceful, EdgeDeleteAbrupt:
		return g.RemoveEdge(c.U, c.V)
	case NodeInsert, NodeUnmute:
		if err := g.AddNode(c.Node); err != nil {
			return err
		}
		for _, u := range c.Edges {
			if err := g.AddEdge(c.Node, u); err != nil {
				return err
			}
		}
		return nil
	case NodeDeleteGraceful, NodeDeleteAbrupt, NodeMute:
		return g.RemoveNode(c.Node)
	}
	return fmt.Errorf("%w: unknown kind %v", ErrInvalidChange, c.Kind)
}
