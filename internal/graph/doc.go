// Package graph provides the dynamic undirected graph that underlies the
// dynamic distributed model of Censor-Hillel, Haramaty and Karnin (PODC
// 2016): an evolving node/edge set subject to typed topology changes
// (insertions and deletions of edges and nodes, graceful or abrupt, plus
// muting/unmuting of nodes — see Change and ChangeKind).
//
// # Storage model: a dense slot arena
//
// Since the PR-4 storage rewrite the graph is arena-backed. Every live
// node occupies a dense *slot* — an index into a set of parallel arrays
// — and a single NodeID → slot hash table (Index) is the only map in the
// structure. The parallel arrays ("lanes") per slot are:
//
//   - the node ID (IDAt; None marks a free slot),
//   - the adjacency list, stored as *neighbor slots* in ascending slot
//     order — inline in the 24-byte slot header up to 4 neighbors,
//     spilling into a block of the shared CSR-style spill pool beyond
//     that (NeighborSlots, DegreeAt; see spill.go for the pool's
//     size-class layout and the shrink-back policy),
//   - a uint64 priority lane written through by an attached
//     internal/order.Order (PrioAt, SetPrioAt, LessAt),
//   - a one-byte membership lane owned by internal/core's State view
//     (StateAt, SetStateAt).
//
// # Slot and index semantics
//
// IDs are the stable public names of nodes; slots are the transient
// physical addresses. A slot index is valid from the node's insertion
// until its deletion, and may then be *recycled* for a different node —
// so slots must never be cached across mutations. The engines exploit
// exactly this contract: during a recovery cascade the topology is
// frozen, so the cascade inner loops resolve IDs to slots once and then
// work entirely in slot space (array reads, no hashing). Slot indices
// range over [0, Slots()); free slots are observable only as
// IDAt(i) == None.
//
// # The None sentinel
//
// None (-1) is the "no node" value. It is what IDAt returns for a free
// slot, which is why AddNode rejects it as a real node ID
// (ErrReservedID): a node named None would be indistinguishable from a
// hole in the arena. Callers use it wherever an optional NodeID needs a
// zero-like value (e.g. core.Staged.PreFlipped).
//
// # Free-list recycling
//
// Deleting a node zeroes its lanes, resets its adjacency (returning any
// spill block to the shared pool), marks the slot None and pushes it
// onto a LIFO free-list; the next insertion pops it. Consequences: the
// arena's footprint tracks the *live* node count, not the insertion
// history; steady-state churn allocates almost nothing (spill capacity
// recycles through the pool's per-class free-lists, shared by all hubs
// rather than pinned per slot); and because both auxiliary lanes are
// zeroed on free *and* on reallocation, a recycled slot can never leak
// the previous tenant's priority or membership — the delete/re-insert
// aliasing tests (ref_test.go, the root recycle_test.go) pin this.
// Mem reports the resulting retained-bytes account (MemStats),
// deterministically for a given operation history.
//
// # Grow and the index watermark
//
// Grow(n) arranges capacity for n *additional* nodes: it grows the
// lanes by whatever the free-list cannot already supply and rebuilds
// the index map at the projected size. The map rebuild is guarded by a
// watermark (the largest size the table has already been built or grown
// to), so Grow is idempotent and monotone: repeating a satisfied Grow —
// or requesting less than a previous high-water mark — never rehashes.
// Grow changes no observable state; it exists so a known-size warm-up
// phase neither reallocates the arena nor incrementally rehashes the
// table (the facade exposes it as Maintainer.Grow).
package graph
