package graph

import "unsafe"

// indexBytesPerEntry estimates the NodeID→slot hash table's footprint
// per entry: 12 payload bytes (8-byte key, 4-byte value) plus bucket
// metadata and load-factor slack, amortized to roughly twice the
// payload. It is a documented estimate — Go does not expose map
// footprints — chosen deterministic (a function of entry count only) so
// that arena-derived memory numbers are reproducible across runs and
// machines and can be committed in artifacts.
const indexBytesPerEntry = 24

// MemStats is a live memory account of the arena, computed from slice
// capacities — the bytes the structure retains, not the bytes it
// happens to touch. All figures are deterministic for a given operation
// history (no runtime introspection), so callers can commit them in
// benchmark and validation artifacts.
type MemStats struct {
	Nodes int // live nodes
	Slots int // arena size including free slots
	Edges int

	// LaneBytes covers the parallel slot lanes (ids, adjacency headers,
	// priority, state) at capacity.
	LaneBytes int64
	// IndexBytes is the estimated NodeID→slot hash index footprint (see
	// indexBytesPerEntry), sized by its capacity watermark.
	IndexBytes int64
	// FreeBytes covers the slot free-list partitions and the spill
	// pool's per-class free-lists, at capacity.
	FreeBytes int64
	// SpillSlabBytes is the spill pool's total slab storage at capacity;
	// SpillLiveBytes is the portion in blocks currently assigned to a
	// slot (so SpillLiveBytes/SpillSlabBytes is pool utilization).
	SpillSlabBytes int64
	SpillLiveBytes int64
	// SpillFreeBlocks counts recycled blocks awaiting reuse, across all
	// size classes.
	SpillFreeBlocks int

	// TotalBytes is the sum of the retained-bytes figures above
	// (slab bytes count fully; the live subset is informational).
	TotalBytes int64
}

// BytesPerNode is the headline figure: total retained bytes amortized
// over live nodes (0 for an empty graph).
func (s MemStats) BytesPerNode() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Nodes)
}

// SpillUtilization is the fraction of spill slab storage in live blocks
// (1 when no slab exists: an all-inline graph wastes nothing).
func (s MemStats) SpillUtilization() float64 {
	if s.SpillSlabBytes == 0 {
		return 1
	}
	return float64(s.SpillLiveBytes) / float64(s.SpillSlabBytes)
}

// Mem returns the arena's current memory account.
func (g *Graph) Mem() MemStats {
	s := MemStats{Nodes: g.n, Slots: len(g.ids), Edges: g.edges}
	s.LaneBytes = int64(cap(g.ids))*int64(unsafe.Sizeof(NodeID(0))) +
		int64(cap(g.adj))*int64(unsafe.Sizeof(adjacency{})) +
		int64(cap(g.prio))*8 +
		int64(cap(g.state))
	s.IndexBytes = int64(max(len(g.idx), g.idxCap)) * indexBytesPerEntry
	for _, part := range g.free {
		s.FreeBytes += int64(cap(part)) * 4
	}
	for c := range g.pool.classes {
		sc := &g.pool.classes[c]
		bcap := spillClassCap(c)
		s.SpillSlabBytes += int64(cap(sc.slab)) * 4
		s.FreeBytes += int64(cap(sc.free)) * 4
		live := len(sc.slab)/bcap - len(sc.free)
		s.SpillLiveBytes += int64(live) * int64(bcap) * 4
		s.SpillFreeBlocks += len(sc.free)
	}
	s.TotalBytes = s.LaneBytes + s.IndexBytes + s.FreeBytes + s.SpillSlabBytes
	return s
}
