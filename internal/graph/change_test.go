package graph

import (
	"errors"
	"strings"
	"testing"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustAdd(t, g, 1, 2, 3)
	mustEdge(t, g, [2]NodeID{1, 2}, [2]NodeID{2, 3}, [2]NodeID{1, 3})
	return g
}

func TestChangeKindString(t *testing.T) {
	cases := map[ChangeKind]string{
		EdgeInsert:         "edge-insert",
		EdgeDeleteGraceful: "edge-delete-graceful",
		EdgeDeleteAbrupt:   "edge-delete-abrupt",
		NodeInsert:         "node-insert",
		NodeDeleteGraceful: "node-delete-graceful",
		NodeDeleteAbrupt:   "node-delete-abrupt",
		NodeMute:           "node-mute",
		NodeUnmute:         "node-unmute",
		ChangeKind(99):     "ChangeKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestChangeKindPredicates(t *testing.T) {
	if !EdgeInsert.IsEdge() || !EdgeDeleteAbrupt.IsEdge() || NodeInsert.IsEdge() {
		t.Error("IsEdge misclassifies")
	}
	for _, k := range []ChangeKind{EdgeDeleteGraceful, EdgeDeleteAbrupt, NodeDeleteGraceful, NodeDeleteAbrupt, NodeMute} {
		if !k.IsDeletion() {
			t.Errorf("%v.IsDeletion() = false", k)
		}
	}
	for _, k := range []ChangeKind{EdgeInsert, NodeInsert, NodeUnmute} {
		if k.IsDeletion() {
			t.Errorf("%v.IsDeletion() = true", k)
		}
	}
}

func TestValidateEdgeChanges(t *testing.T) {
	g := buildTriangle(t)
	tests := []struct {
		name string
		c    Change
		want error
	}{
		{"insert existing", EdgeChange(EdgeInsert, 1, 2), ErrEdgeExists},
		{"insert self loop", EdgeChange(EdgeInsert, 1, 1), ErrSelfLoop},
		{"insert absent endpoint", EdgeChange(EdgeInsert, 1, 9), ErrNoNode},
		{"delete absent edge", EdgeChange(EdgeDeleteGraceful, 1, 9), ErrNoEdge},
		{"abrupt delete absent edge", EdgeChange(EdgeDeleteAbrupt, 7, 8), ErrNoEdge},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate(g)
			if !errors.Is(err, tc.want) {
				t.Errorf("Validate = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrInvalidChange) {
				t.Errorf("Validate error does not wrap ErrInvalidChange: %v", err)
			}
		})
	}
}

func TestValidateNodeChanges(t *testing.T) {
	g := buildTriangle(t)
	tests := []struct {
		name string
		c    Change
		want error
	}{
		{"insert existing node", NodeChange(NodeInsert, 2), ErrNodeExists},
		{"unmute existing node", NodeChange(NodeUnmute, 2), ErrNodeExists},
		{"insert with self edge", NodeChange(NodeInsert, 9, 9), ErrSelfLoop},
		{"insert with absent neighbor", NodeChange(NodeInsert, 9, 42), ErrNoNode},
		{"delete absent node", NodeChange(NodeDeleteAbrupt, 42), ErrNoNode},
		{"mute absent node", NodeChange(NodeMute, 42), ErrNoNode},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(g); !errors.Is(err, tc.want) {
				t.Errorf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
	dup := NodeChange(NodeInsert, 9, 1, 1)
	if err := dup.Validate(g); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate neighbor: err = %v, want duplicate error", err)
	}
}

func TestApplyEdgeChanges(t *testing.T) {
	g := buildTriangle(t)
	if err := EdgeChange(EdgeDeleteGraceful, 1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Error("edge {1,2} remains after graceful delete")
	}
	if err := EdgeChange(EdgeInsert, 1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) {
		t.Error("edge {1,2} missing after insert")
	}
	if err := EdgeChange(EdgeDeleteAbrupt, 1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Error("edge {1,2} remains after abrupt delete")
	}
}

func TestApplyNodeChanges(t *testing.T) {
	g := buildTriangle(t)
	if err := NodeChange(NodeInsert, 9, 1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.HasNode(9) || !g.HasEdge(9, 1) || !g.HasEdge(9, 2) || g.HasEdge(9, 3) {
		t.Error("node-insert applied incorrectly")
	}
	if err := NodeChange(NodeDeleteAbrupt, 9).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasNode(9) {
		t.Error("node 9 remains after abrupt delete")
	}
	if err := NodeChange(NodeMute, 3).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasNode(3) {
		t.Error("muted node still visible in topology")
	}
	if err := NodeChange(NodeUnmute, 3, 1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if !g.HasNode(3) || !g.HasEdge(3, 1) {
		t.Error("unmute did not restore node")
	}
}

func TestApplyInvalidLeavesGraphUnchanged(t *testing.T) {
	g := buildTriangle(t)
	before := g.Clone()
	bad := []Change{
		EdgeChange(EdgeInsert, 1, 2),
		EdgeChange(EdgeDeleteAbrupt, 1, 42),
		NodeChange(NodeInsert, 2),
		NodeChange(NodeDeleteGraceful, 42),
		NodeChange(NodeInsert, 10, 42),
		{Kind: ChangeKind(77)},
	}
	for _, c := range bad {
		if err := c.Apply(g); err == nil {
			t.Errorf("Apply(%v) succeeded, want error", c)
		}
		if !g.Equal(before) {
			t.Fatalf("graph mutated by invalid change %v", c)
		}
	}
}

func TestChangeString(t *testing.T) {
	tests := []struct {
		c    Change
		want string
	}{
		{EdgeChange(EdgeInsert, 3, 7), "edge-insert{3,7}"},
		{NodeChange(NodeDeleteAbrupt, 9), "node-delete-abrupt(9)"},
		{NodeChange(NodeInsert, 9, 1, 2), "node-insert(9; [1 2])"},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
