package graph

import "slices"

// The spill pool holds every neighbor list that outgrew the inline
// header. Instead of one GC-tracked []int32 per hub node (a pointer, a
// length, a capacity and a separate heap object each), lists live as
// fixed-capacity blocks carved back to back out of a handful of large
// per-size-class slabs — a CSR-style compacted layout with O(1)
// recycling:
//
//	class 0:  [ blk0 | blk1 | blk2 | ... ]   8 slots per block
//	class 1:  [ blk0 | blk1 | ...        ]  16 slots per block
//	class c:  [ ...                      ]  (8 << c) slots per block
//
// A slot's adjacency header stores a 4-byte spillRef naming its block;
// freed blocks go onto a per-class LIFO free-list and are handed out
// again without allocating. The GC sees ~2·classes objects total instead
// of one per hub, and capacity released by one node is reusable by any
// other node of the same class — a once-hot hub no longer pins its peak
// allocation forever.
//
// Growth doubles per class (slices.Grow), so slab bytes stay within 2x
// of the high-water block demand, and each block's capacity is within 2x
// of the degree that forced it (power-of-two classes).

// spillRef names a block in the spill pool. The zero value means "no
// spill: neighbors are inline". Otherwise the top 5 bits carry the size
// class and the low 27 bits carry the block index within the class,
// biased by one so that class-0 block 0 is distinguishable from "none".
type spillRef uint32

const (
	spillIdxBits = 27
	spillIdxMask = 1<<spillIdxBits - 1

	// spillClasses bounds the class lane: class 23 blocks hold 8<<23 =
	// 67M neighbors, beyond any graph the 27-bit block index can arise
	// from.
	spillClasses = 24
)

func makeSpillRef(class int, idx uint32) spillRef {
	if idx+1 > spillIdxMask {
		panic("graph: spill block index overflows the 27-bit ref lane")
	}
	return spillRef(class)<<spillIdxBits | spillRef(idx+1)
}

func (r spillRef) class() int    { return int(r >> spillIdxBits) }
func (r spillRef) index() uint32 { return uint32(r&spillIdxMask) - 1 }

// spillClassCap returns the neighbor capacity of class-c blocks:
// 8, 16, 32, … (power-of-two multiples of 2·inlineDegree).
func spillClassCap(c int) int { return (2 * inlineDegree) << c }

// spillClass is one size class: a slab of back-to-back blocks plus the
// LIFO free-list of recycled block indices.
type spillClass struct {
	slab []int32
	free []uint32
}

// spillPool is the per-Graph shared spill store. The zero value is ready
// to use.
type spillPool struct {
	classes [spillClasses]spillClass
}

// alloc hands out a class-c block: a recycled one if available, else a
// fresh block appended to the class slab. Block contents are NOT zeroed;
// the caller copies the live list in before raising deg.
func (p *spillPool) alloc(c int) spillRef {
	sc := &p.classes[c]
	if k := len(sc.free); k > 0 {
		idx := sc.free[k-1]
		sc.free = sc.free[:k-1]
		return makeSpillRef(c, idx)
	}
	bcap := spillClassCap(c)
	idx := uint32(len(sc.slab) / bcap)
	need := len(sc.slab) + bcap
	sc.slab = slices.Grow(sc.slab, bcap)[:need]
	return makeSpillRef(c, idx)
}

// block returns r's full-capacity storage. The slice aliases the slab
// and is valid until the slab next grows; the live list is block[:deg].
func (p *spillPool) block(r spillRef) []int32 {
	bcap := spillClassCap(r.class())
	off := int(r.index()) * bcap
	return p.classes[r.class()].slab[off : off+bcap : off+bcap]
}

// release returns r's block to its class free-list for O(1) reuse.
func (p *spillPool) release(r spillRef) {
	c := r.class()
	p.classes[c].free = append(p.classes[c].free, r.index())
}

// clone deep-copies the pool; block indices (and hence every spillRef
// held by adjacency headers) stay valid against the copy.
func (p *spillPool) clone() spillPool {
	var c spillPool
	for i := range p.classes {
		c.classes[i].slab = slices.Clone(p.classes[i].slab)
		c.classes[i].free = slices.Clone(p.classes[i].free)
	}
	return c
}
