package workload

import (
	"math/rand/v2"

	"dynmis/internal/graph"
)

// Scenario is a named dynamic workload for the benchmark harness: a
// warm-up phase that constructs the initial graph and a drive phase that
// produces the timed update stream. Both phases are generated from the
// caller's rng only — the oblivious-adversary assumption of the paper —
// so every engine can be driven with an identical stream.
type Scenario struct {
	// Name is the stable identifier used in BENCH_dynmis.json.
	Name string
	// Description says what the workload stresses.
	Description string
	// Build returns the warm-up sequence constructing the initial graph
	// of roughly n nodes.
	Build func(rng *rand.Rand, n int) []graph.Change
	// Drive returns exactly steps timed changes, valid when applied
	// after the warm-up. g is the warmed-up graph (read-only).
	Drive func(rng *rand.Rand, g *graph.Graph, steps int) []graph.Change
}

// Scenarios returns the benchmark suite: mixed churn, a sliding window
// over a node stream, preferential-attachment (power-law) growth with
// random decay, and the adversarial deletion pattern of the paper's §1.1
// lower-bound gadget.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "churn",
			Description: "balanced node/edge insert+delete mix on G(n,p), graph size roughly stable",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 8/float64(n))
			},
			Drive: func(rng *rand.Rand, g *graph.Graph, steps int) []graph.Change {
				return RandomChurn(rng, g, DefaultChurn(steps))
			},
		},
		{
			Name:        "sliding-window",
			Description: "streaming graph: arrivals attach to recent nodes, oldest nodes expire",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 6/float64(n))
			},
			Drive: SlidingWindow,
		},
		{
			Name:        "power-law",
			Description: "preferential attachment growth with uniform decay — hubs accumulate high degree",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 4/float64(n))
			},
			Drive: PowerLawChurn,
		},
		{
			Name:        "adversarial-deletion",
			Description: "K_{k,k} lower-bound gadget (§1.1): repeatedly strip one side and rebuild it",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return CompleteBipartite(n / 2)
			},
			Drive: AdversarialDeletions,
		},
	}
}

// ScenarioByName returns the named scenario, or false.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// SlidingWindow generates a streaming workload: each step either inserts a
// fresh node attached to up to 4 uniformly chosen members of the current
// window or deletes the oldest node, keeping the window near its starting
// size. It models time-decaying graphs (connection tables, session
// overlays) where membership is dominated by arrival order.
func SlidingWindow(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	window := start.Nodes() // ascending IDs = arrival order
	next := graph.NodeID(0)
	if len(window) > 0 {
		next = window[len(window)-1] + 1
	}
	target := len(window)

	var cs []graph.Change
	for len(cs) < steps {
		insert := len(window) <= 1 || (len(window) < 2*target && rng.IntN(2) == 0)
		if insert {
			var nbrs []graph.NodeID
			for _, i := range rng.Perm(len(window)) {
				nbrs = append(nbrs, window[i])
				if len(nbrs) == 4 {
					break
				}
			}
			cs = append(cs, graph.NodeChange(graph.NodeInsert, next, nbrs...))
			window = append(window, next)
			next++
		} else {
			oldest := window[0]
			window = window[1:]
			kind := graph.NodeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.NodeDeleteAbrupt
			}
			cs = append(cs, graph.NodeChange(kind, oldest))
		}
	}
	return cs
}

// PowerLawChurn generates preferential-attachment growth with uniform
// decay: most steps insert a node whose ~3 attachments are sampled with
// probability proportional to degree+1 (the Barabási–Albert rule), and the
// rest delete a uniform node. Hubs emerge quickly, so updates concentrate
// on a few high-degree vertices — the hardest case for a vertex-sharded
// engine because hub neighborhoods span every shard.
func PowerLawChurn(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	g := start.Clone()
	// endpoint list with one entry per half-edge plus one per node:
	// sampling uniformly from it is degree+1-proportional sampling.
	var endpoints []graph.NodeID
	for _, v := range g.Nodes() {
		endpoints = append(endpoints, v)
		for range g.Neighbors(v) {
			endpoints = append(endpoints, v)
		}
	}
	next := graph.NodeID(0)
	if ns := g.Nodes(); len(ns) > 0 {
		next = ns[len(ns)-1] + 1
	}

	var cs []graph.Change
	for len(cs) < steps {
		if g.NodeCount() > 1 && rng.IntN(4) == 0 {
			nodes := g.Nodes()
			victim := nodes[rng.IntN(len(nodes))]
			c := graph.NodeChange(graph.NodeDeleteAbrupt, victim)
			mustApply(c, g)
			cs = append(cs, c)
			// Lazily repair the endpoint list: drop stale entries when
			// sampled (below) instead of rebuilding it per deletion.
			continue
		}
		seen := make(map[graph.NodeID]bool, 3)
		var nbrs []graph.NodeID
		for tries := 0; len(nbrs) < 3 && tries < 32 && len(endpoints) > 0; tries++ {
			i := rng.IntN(len(endpoints))
			u := endpoints[i]
			if !g.HasNode(u) {
				endpoints[i] = endpoints[len(endpoints)-1]
				endpoints = endpoints[:len(endpoints)-1]
				continue
			}
			if !seen[u] {
				seen[u] = true
				nbrs = append(nbrs, u)
			}
		}
		c := graph.NodeChange(graph.NodeInsert, next, nbrs...)
		mustApply(c, g)
		cs = append(cs, c)
		endpoints = append(endpoints, next)
		for range nbrs {
			endpoints = append(endpoints, next)
		}
		endpoints = append(endpoints, nbrs...)
		next++
	}
	return cs
}

// AdversarialDeletions drives the §1.1 lower-bound pattern on a warmed-up
// K_{k,k} (sides L = first half of the node IDs, R = second half):
// repeatedly delete all of L node by node — the pattern that forces a
// deterministic greedy algorithm into Ω(k) adjustments on the last
// deletion — then rebuild L with its full bipartite attachment. The
// random order π keeps the expected adjustment cost O(1) per change
// (Theorem 1); this scenario is what demonstrates it.
func AdversarialDeletions(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	nodes := start.Nodes()
	half := len(nodes) / 2
	left, right := nodes[:half], nodes[half:]
	if len(left) == 0 {
		// A warm-up of fewer than two nodes has no L side; the loop
		// below would never make progress.
		return nil
	}

	var cs []graph.Change
	for len(cs) < steps {
		for _, v := range left {
			if len(cs) >= steps {
				break
			}
			cs = append(cs, graph.NodeChange(graph.NodeDeleteGraceful, v))
		}
		for _, v := range left {
			if len(cs) >= steps {
				break
			}
			cs = append(cs, graph.NodeChange(graph.NodeInsert, v, right...))
		}
	}
	return cs
}
