// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moments (Welford), confidence intervals
// and fixed-width table rendering.
package stats

import (
	"fmt"
	"math"
)

// Series accumulates a stream of observations with Welford's algorithm.
// The zero value is an empty series ready to use.
type Series struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one observation.
func (s *Series) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// ObserveInt adds one integer observation.
func (s *Series) ObserveInt(x int) { s.Observe(float64(x)) }

// N returns the number of observations.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 for an empty series).
func (s *Series) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Series) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Series) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Series) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Series) CI95() float64 { return 1.96 * s.StdErr() }

// Min and Max return the extreme observations (0 for an empty series).
func (s *Series) Min() float64 { return s.min }
func (s *Series) Max() float64 { return s.max }

// Sum returns n·mean.
func (s *Series) Sum() float64 { return s.mean * float64(s.n) }

// String renders "mean ± ci95 (n=…, max=…)".
func (s *Series) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d, max=%g)", s.Mean(), s.CI95(), s.n, s.max)
}
