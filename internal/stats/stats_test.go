package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestSeriesMoments(t *testing.T) {
	var s Series
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-12 {
		t.Errorf("sum = %v", s.Sum())
	}
}

func TestSeriesEmptyAndSingle(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Error("empty series should be all zeros")
	}
	s.ObserveInt(7)
	if s.Mean() != 7 || s.Var() != 0 {
		t.Errorf("single observation: mean=%v var=%v", s.Mean(), s.Var())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSeriesCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var small, large Series
	for i := 0; i < 100; i++ {
		small.Observe(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Observe(rng.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
	if math.Abs(large.Mean()-0.5) > 0.02 {
		t.Errorf("uniform mean = %v", large.Mean())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0: demo", "n", "mean adj", "note")
	tb.AddRow(100, 1.0325, "ok")
	tb.AddRow(2000, 0.98, "also ok")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E0: demo", "mean adj", "1.032", "2000", "also ok", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
