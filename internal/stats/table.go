package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple fixed-width text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w. Widths are computed in runes so that
// headers like "|S|" or "≥" align.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
