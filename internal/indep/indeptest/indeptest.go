// Package indeptest provides the naive reference model the independent
// engines (internal/guptakhan, internal/aoss) are differentially tested
// against. The model recomputes everything from scratch with maps and
// full scans — no counters, no queues, no arenas — so a bookkeeping bug
// in the real engines (a missed blocker decrement, a stale queue entry,
// a recycled-slot leak) cannot also be present here. Both engines fix
// their papers' unspecified tie-breaks deterministically; Rules encodes
// those same tie-breaks declaratively, which makes the model's settle
// loop ("repeatedly promote the best uncovered vertex") an executable
// statement of each algorithm's specification.
package indeptest

import (
	"math/bits"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// Rules fixes the two decisions that distinguish the independent
// engines: which endpoint of a fresh M–M edge is evicted, and which
// uncovered vertex the settle loop promotes next.
type Rules struct {
	Evict func(m *Model, u, v graph.NodeID) graph.NodeID
	Next  func(m *Model) graph.NodeID // graph.None when no uncovered vertex remains
}

// Model is the from-scratch reference implementation.
type Model struct {
	Adj map[graph.NodeID]map[graph.NodeID]struct{}
	In  map[graph.NodeID]bool // false ⇒ present but out of M
	R   Rules
}

// New returns an empty model governed by r.
func New(r Rules) *Model {
	return &Model{
		Adj: make(map[graph.NodeID]map[graph.NodeID]struct{}),
		In:  make(map[graph.NodeID]bool),
		R:   r,
	}
}

// Degree returns v's current degree.
func (m *Model) Degree(v graph.NodeID) int { return len(m.Adj[v]) }

// Covered reports whether v has an MIS neighbor.
func (m *Model) Covered(v graph.NodeID) bool {
	for u := range m.Adj[v] {
		if m.In[u] {
			return true
		}
	}
	return false
}

// Uncovered returns every present vertex that is out of M with no MIS
// neighbor, sorted by ID.
func (m *Model) Uncovered() []graph.NodeID {
	var out []graph.NodeID
	for v := range m.Adj {
		if !m.In[v] && !m.Covered(v) {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// Stage mirrors one change's staging: the topology mutation plus the
// M–M eviction, without settling. Changes must be valid (the tests feed
// streams generated against the live engine's graph).
func (m *Model) Stage(c graph.Change) {
	switch c.Kind {
	case graph.EdgeInsert:
		m.Adj[c.U][c.V] = struct{}{}
		m.Adj[c.V][c.U] = struct{}{}
		if m.In[c.U] && m.In[c.V] {
			m.In[m.R.Evict(m, c.U, c.V)] = false
		}
	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		delete(m.Adj[c.U], c.V)
		delete(m.Adj[c.V], c.U)
	case graph.NodeInsert, graph.NodeUnmute:
		m.Adj[c.Node] = make(map[graph.NodeID]struct{}, len(c.Edges))
		for _, u := range c.Edges {
			m.Adj[c.Node][u] = struct{}{}
			m.Adj[u][c.Node] = struct{}{}
		}
		m.In[c.Node] = false
	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		for u := range m.Adj[c.Node] {
			delete(m.Adj[u], c.Node)
		}
		delete(m.Adj, c.Node)
		delete(m.In, c.Node)
	}
}

// Settle promotes uncovered vertices in the rules' order until none
// remains.
func (m *Model) Settle() {
	for {
		v := m.R.Next(m)
		if v == graph.None {
			return
		}
		m.In[v] = true
	}
}

// Apply is one single-change window: stage, then settle.
func (m *Model) Apply(c graph.Change) { m.Stage(c); m.Settle() }

// ApplyBatch is one multi-change window: stage everything, settle once.
func (m *Model) ApplyBatch(cs []graph.Change) {
	for _, c := range cs {
		m.Stage(c)
	}
	m.Settle()
}

// State returns the membership map in the Engine.State wire format.
func (m *Model) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, len(m.In))
	for v, in := range m.In {
		out[v] = core.Membership(in)
	}
	return out
}

// GuptaKhanRules is the reference statement of internal/guptakhan's
// discipline: evict the larger-ID endpoint, promote the smallest-ID
// uncovered vertex first.
func GuptaKhanRules() Rules {
	return Rules{
		Evict: func(_ *Model, u, v graph.NodeID) graph.NodeID {
			if u > v {
				return u
			}
			return v
		},
		Next: func(m *Model) graph.NodeID {
			if un := m.Uncovered(); len(un) > 0 {
				return un[0]
			}
			return graph.None
		},
	}
}

// AOSSRules is the reference statement of internal/aoss's discipline:
// evict the higher-degree endpoint (tie: larger ID), promote the
// uncovered vertex with the smallest (degree class, ID) first.
func AOSSRules() Rules {
	bucket := func(deg int) int { return bits.Len(uint(deg)) }
	return Rules{
		Evict: func(m *Model, u, v graph.NodeID) graph.NodeID {
			du, dv := m.Degree(u), m.Degree(v)
			if du != dv {
				if du > dv {
					return u
				}
				return v
			}
			if u > v {
				return u
			}
			return v
		},
		Next: func(m *Model) graph.NodeID {
			best, bestB := graph.None, 0
			for _, v := range m.Uncovered() {
				if b := bucket(m.Degree(v)); best == graph.None || b < bestB {
					best, bestB = v, b
				}
			}
			return best
		},
	}
}
