// Package indep is the shared machinery of the *independent* dynamic MIS
// engines — competitors from the related work (Gupta–Khan 2018,
// Assadi–Onak–Schieber–Solomon 2018) that maintain a valid maximal
// independent set which legitimately differs from this repository's
// greedy-over-π structure. Both competitors share one skeleton: maintain,
// for every vertex v, the blocker count cnt(v) = |N(v) ∩ M|; the MIS
// invariant is v ∈ M ⟺ cnt(v) = 0. An update adjusts the counts of the
// O(Δ) affected vertices, evicts one endpoint of a freshly created M–M
// edge, and then *settles*: repeatedly promotes an uncovered vertex
// (cnt = 0, out of M) into M until none remains. The algorithms differ
// only in two decisions, abstracted as a Policy: which endpoint an M–M
// edge insertion evicts, and in which order uncovered vertices are
// settled. internal/guptakhan and internal/aoss supply the two policies.
//
// # The band-certificate order
//
// This repository's oracles — core.CheckInvariantOn, the facade's
// Verify (greedy-MIS comparison), GreedyClusters — are all phrased over
// a random order π that the independent engines do not use. Instead of
// special-casing them everywhere, each Engine maintains a *membership
// band certificate* in its order.Order: priority BandIn (0) for every
// MIS member, BandOut (1) for everyone else, updated on each flip.
// Under this order the engine's own MIS is exactly the sequential
// greedy MIS: members come first and are mutually non-adjacent, so
// greedy takes them all; every non-member has an (earlier) member
// neighbor by maximality, so greedy skips it. CheckInvariantOn, Verify
// and every derived structure therefore work unchanged on an engine
// whose MIS is not the paper's.
package indep

import (
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
)

// Band priorities of the membership certificate order: MIS members carry
// BandIn, everyone else BandOut, so "earlier in π" coincides with "in M".
const (
	BandIn  order.Priority = 0
	BandOut order.Priority = 1
)

// Policy is the pair of decisions distinguishing the independent
// engines. Implementations may keep internal queue state; the Engine
// revalidates every popped candidate (present, out of M, zero blocker
// count), so policies are free to return stale entries.
type Policy interface {
	// Evict picks which endpoint of a freshly inserted M–M edge leaves
	// the MIS. Both endpoints are present and in M when it is called.
	Evict(g *graph.Graph, u, v graph.NodeID) graph.NodeID
	// Offer enqueues v as a join candidate: at the time of the call v is
	// present, out of M, and has blocker count zero.
	Offer(g *graph.Graph, v graph.NodeID)
	// Next pops the next join candidate, or graph.None when the queue is
	// drained. Entries may be stale; the Engine revalidates.
	Next(g *graph.Graph) graph.NodeID
}

// Engine is a counter-based independent dynamic MIS engine implementing
// the full core.Engine surface plus the core.Instrument capability. The
// zero value is not usable; call New.
type Engine struct {
	g     *graph.Graph
	ord   *order.Order
	state core.State
	pol   Policy
	cnt   []int32 // slot-indexed blocker counts: cnt[i] = |N(i) ∩ M|
	feed  core.Feed
	coll  *metrics.Collector // nil while instrumentation is disabled

	// Window scratch.
	one     [1]graph.Change
	touched map[graph.NodeID]core.Touched
	flipCnt map[graph.NodeID]int
	flips   int
	work    int
}

// Engine implements the uniform surface and the instrumentation
// capability (but not Snapshotter: the band certificate is derivable
// from the membership lane, so there is no extra structure to persist,
// and the priority stream of a π engine's snapshot is meaningless here).
var (
	_ core.Engine         = (*Engine)(nil)
	_ core.Instrument     = (*Engine)(nil)
	_ core.MemoryReporter = (*Engine)(nil)
)

// New returns an engine over an empty graph. The seed only initializes
// the order's (unused) priority stream: independent engines draw no
// random priorities, so their output is deterministic in the change
// sequence alone — unlike the π engines, equal inputs with different
// seeds still produce identical structures.
func New(seed uint64, pol Policy) *Engine {
	g := graph.New()
	ord := order.New(seed)
	ord.Attach(g)
	return &Engine{
		g:       g,
		ord:     ord,
		state:   core.NewState(g),
		pol:     pol,
		touched: make(map[graph.NodeID]core.Touched),
		flipCnt: make(map[graph.NodeID]int),
	}
}

// Graph exposes the engine's live graph (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Order exposes the band-certificate order; see the package comment.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether v is currently in the maintained MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.state.InMIS(v) }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return e.state.MIS() }

// State returns a copy of the full membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership { return e.state.Map() }

// Subscribe registers a change-feed callback; see core.Feed.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// Instrument attaches a complexity collector (nil detaches).
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// MemoryProfile accounts a counter-skeleton engine: the arena plus the
// slot-indexed blocker-count lane and the order's (typically empty)
// priority table. Policy-internal scratch (settle heaps, buckets) is
// O(pending work) and transient, so it is not estimated.
func (e *Engine) MemoryProfile() metrics.Memory {
	return core.ArenaMemory(e.g, int64(cap(e.cnt))*4+e.ord.MemBytes())
}

// Apply performs one topology change and restores the MIS invariant. On
// a validation error the engine is unchanged.
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	e.one[0] = c
	return e.applyWindow(e.one[:], false)
}

// ApplyBatch stages several changes and settles once over the combined
// damage. On a mid-batch validation error the already-staged prefix's
// mutations remain applied and the settle pass restores the invariant
// (publishing the prefix's feed delta) before the error returns — the
// engine stays consistent and usable, exactly like the π engines'
// prefix-recovery contract. Note that because eviction and settle
// decisions observe intermediate configurations, a batch may legally
// reach a different (still valid, still policy-conforming) MIS than
// per-change application of the same changes.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	return e.applyWindow(cs, true)
}

// ApplyAll applies a sequence of changes one window each, accumulating
// reports. It stops at the first error.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d (%s): %w", i, c, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// applyWindow is the shared application path of Apply (a window of one)
// and ApplyBatch: stage every change (adjusting blocker counts and
// evicting M–M conflicts), run a single settle pass over the collected
// join candidates, then account adjustments and the feed delta from the
// touched set alone — O(touched), never O(n).
func (e *Engine) applyWindow(cs []graph.Change, batch bool) (core.Report, error) {
	clear(e.touched)
	clear(e.flipCnt)
	e.flips, e.work = 0, 0

	var stageErr error
	for i, c := range cs {
		// Capture the pre-window configuration of the node a node-change
		// touches before staging mutates it (first touch wins). Edge
		// changes mutate no membership during staging; endpoints that
		// flip are captured by noteFlip.
		if !c.Kind.IsEdge() {
			if _, seen := e.touched[c.Node]; !seen {
				e.touched[c.Node] = core.Touched{Present: e.g.HasNode(c.Node), M: e.state.Get(c.Node)}
			}
		}
		if err := e.stage(c); err != nil {
			if batch {
				err = fmt.Errorf("batch change %d: %w", i, err)
			}
			stageErr = err
			break
		}
	}
	e.settle()

	adj, evs := core.DeltaFromTouched(e.g, e.state, e.touched, e.feed.Active())
	e.feed.PublishSorted(evs)
	if stageErr != nil {
		return core.Report{}, stageErr
	}

	rep := core.Report{
		Adjustments: adj,
		SSize:       len(e.flipCnt),
		Flips:       e.flips,
		Work:        e.work,
	}
	if mc := e.coll; mc != nil {
		mc.Updates += uint64(len(cs))
		mc.Windows++
		mc.Adjustments += uint64(adj)
		mc.Influence += uint64(rep.SSize)
		mc.Flips += uint64(rep.Flips)
		mc.TouchedSlots += uint64(len(e.touched))
	}
	return rep, nil
}

// noteFlip records one membership flip of a present node for the
// window's cost account: first touch captures the pre-window
// configuration, every flip counts toward Flips and SSize.
func (e *Engine) noteFlip(v graph.NodeID, before core.Membership) {
	if _, seen := e.touched[v]; !seen {
		e.touched[v] = core.Touched{Present: true, M: before}
	}
	e.flipCnt[v]++
	e.flips++
}

// stage validates and applies one change, maintaining the blocker-count
// invariant cnt(v) = |N(v) ∩ M| and collecting join candidates. On a
// validation error nothing has been mutated.
func (e *Engine) stage(c graph.Change) error {
	if err := c.Validate(e.g); err != nil {
		return err
	}
	switch c.Kind {
	case graph.EdgeInsert:
		if err := c.Apply(e.g); err != nil {
			return err
		}
		iu, _ := e.g.Index(c.U)
		iv, _ := e.g.Index(c.V)
		uIn, vIn := e.state.At(iu) == core.In, e.state.At(iv) == core.In
		if uIn {
			e.cnt[iv]++
		}
		if vIn {
			e.cnt[iu]++
		}
		e.work += 2
		if uIn && vIn {
			// The new edge joins two MIS members; the policy picks the
			// one that leaves. Its departure may uncover neighbors.
			e.leave(e.pol.Evict(e.g, c.U, c.V))
		}

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		iu, _ := e.g.Index(c.U)
		iv, _ := e.g.Index(c.V)
		if err := c.Apply(e.g); err != nil {
			return err
		}
		// At most one endpoint is in M (independence), so at most one
		// count drops — possibly uncovering the other endpoint.
		if e.state.At(iu) == core.In {
			e.cnt[iv]--
			if e.cnt[iv] == 0 && e.state.At(iv) == core.Out {
				e.pol.Offer(e.g, c.V)
			}
		}
		if e.state.At(iv) == core.In {
			e.cnt[iu]--
			if e.cnt[iu] == 0 && e.state.At(iu) == core.Out {
				e.pol.Offer(e.g, c.U)
			}
		}
		e.work += 2

	case graph.NodeInsert, graph.NodeUnmute:
		if err := c.Apply(e.g); err != nil {
			return err
		}
		e.growCnt()
		i, _ := e.g.Index(c.Node)
		e.ord.Set(c.Node, BandOut)
		n := int32(0)
		for _, nb := range e.g.NeighborSlots(i) {
			if e.state.At(int(nb)) == core.In {
				n++
			}
			e.work++
		}
		e.cnt[i] = n
		if n == 0 {
			e.pol.Offer(e.g, c.Node)
		}

	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		i, _ := e.g.Index(c.Node)
		wasIn := e.state.At(i) == core.In
		var nbrs []graph.NodeID
		if wasIn {
			nbrs = e.g.Neighbors(c.Node)
		}
		if err := c.Apply(e.g); err != nil {
			return err
		}
		// The band is recomputed whenever the node re-enters (muted or
		// not), so the certificate never retains stale priorities.
		e.ord.Drop(c.Node)
		if wasIn {
			// The departing member counts as the window's first flip
			// (the touched entry was captured above), and its neighbors
			// lose a blocker each.
			e.flipCnt[c.Node]++
			e.flips++
			for _, u := range nbrs {
				j, ok := e.g.Index(u)
				if !ok {
					continue
				}
				e.cnt[j]--
				e.work++
				if e.cnt[j] == 0 && e.state.At(j) == core.Out {
					e.pol.Offer(e.g, u)
				}
			}
		}

	default:
		return fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
	}
	return nil
}

// leave removes w from the MIS (an eviction), decrementing its
// neighbors' blocker counts and offering any vertex this uncovers. w
// itself keeps at least one blocker — the M neighbor whose edge caused
// the eviction — so it is never its own candidate.
func (e *Engine) leave(w graph.NodeID) {
	i, _ := e.g.Index(w)
	e.noteFlip(w, core.In)
	e.state.SetAt(i, core.Out)
	e.ord.Set(w, BandOut)
	for _, nb := range e.g.NeighborSlots(i) {
		e.cnt[nb]--
		e.work++
		if e.cnt[nb] == 0 && e.state.At(int(nb)) == core.Out {
			e.pol.Offer(e.g, e.g.IDAt(int(nb)))
		}
	}
}

// settle drains the policy's candidate queue, promoting every still
// uncovered vertex into the MIS in the policy's order. Promotions only
// add blockers, so the pass monotonically converges: each pop either
// discards a stale entry or performs one promotion, and promotions
// never enqueue new candidates.
func (e *Engine) settle() {
	for {
		v := e.pol.Next(e.g)
		if v == graph.None {
			return
		}
		i, ok := e.g.Index(v)
		if !ok || e.state.At(i) == core.In || e.cnt[i] != 0 {
			continue // stale: deleted, already promoted, or re-covered
		}
		e.noteFlip(v, core.Out)
		e.state.SetAt(i, core.In)
		e.ord.Set(v, BandIn)
		for _, nb := range e.g.NeighborSlots(i) {
			e.cnt[nb]++
			e.work++
		}
	}
}

// growCnt extends the blocker-count lane to cover the arena. Recycled
// slots need no cleanup: a slot's count is rewritten by the NodeInsert
// staging that reuses it.
func (e *Engine) growCnt() {
	if n := e.g.Slots(); len(e.cnt) < n {
		e.cnt = append(e.cnt, make([]int32, n-len(e.cnt))...)
	}
}

// Check verifies the engine's full invariant stack: the blocker counts
// against a recount, independence and maximality directly (CheckMISOn),
// the band certificate's consistency with the membership lane, and —
// through the certificate — the π-phrased MIS invariant the rest of the
// repository checks engines with (CheckInvariantOn).
func (e *Engine) Check() error {
	for i := range e.g.Slots() {
		v := e.g.IDAt(i)
		if v == graph.None {
			continue
		}
		n := int32(0)
		for _, nb := range e.g.NeighborSlots(i) {
			if e.state.At(int(nb)) == core.In {
				n++
			}
		}
		if e.cnt[i] != n {
			return fmt.Errorf("indep: node %d blocker count %d, want %d", v, e.cnt[i], n)
		}
		p, ok := e.ord.Priority(v)
		if !ok {
			return fmt.Errorf("indep: node %d has no band priority", v)
		}
		if in := e.state.At(i) == core.In; (p == BandIn) != in {
			return fmt.Errorf("indep: node %d band %d disagrees with membership %v", v, p, e.state.At(i))
		}
	}
	if err := core.CheckMISOn(e.g, e.state); err != nil {
		return err
	}
	return core.CheckInvariantOn(e.g, e.ord, e.state)
}
