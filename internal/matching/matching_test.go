package matching

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestNewEdgeCanonical(t *testing.T) {
	if NewEdge(5, 2) != (Edge{U: 2, V: 5}) {
		t.Error("NewEdge did not canonicalize")
	}
	if NewEdge(2, 5) != NewEdge(5, 2) {
		t.Error("NewEdge not symmetric")
	}
}

func TestMatchingOnTriangle(t *testing.T) {
	m := New(1)
	if _, err := m.ApplyAll(workload.Cycle(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// A triangle's maximal matching has exactly one edge.
	if got := len(m.Matching()); got != 1 {
		t.Errorf("matching size = %d, want 1", got)
	}
}

func TestMatchingDynamicChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := New(7)
	if _, err := m.ApplyAll(workload.GNP(rng, 30, 0.12)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	for i, c := range workload.RandomChurn(rng, m.Graph(), workload.DefaultChurn(200)) {
		if _, err := m.Apply(c); err != nil {
			t.Fatalf("change %d (%s): %v", i, c, err)
		}
		if err := m.Check(); err != nil {
			t.Fatalf("after change %d (%s): %v", i, c, err)
		}
	}
}

func TestMatchedReflectsMatching(t *testing.T) {
	m := New(2)
	if _, err := m.ApplyAll(workload.Path(4)); err != nil {
		t.Fatal(err)
	}
	covered := 0
	for v := graph.NodeID(0); v < 4; v++ {
		if m.Matched(v) {
			covered++
		}
	}
	if covered != 2*len(m.Matching()) {
		t.Errorf("covered %d nodes for %d matched edges", covered, len(m.Matching()))
	}
}

func TestNodeDeleteRemovesIncidentEdges(t *testing.T) {
	m := New(5)
	if _, err := m.ApplyAll(workload.Star(6)); err != nil {
		t.Fatal(err)
	}
	// Star matching has exactly 1 edge (all share the center).
	if got := len(m.Matching()); got != 1 {
		t.Fatalf("star matching = %d, want 1", got)
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if len(m.Matching()) != 0 {
		t.Errorf("matching after center deletion = %v, want empty", m.Matching())
	}
	if m.Graph().EdgeCount() != 0 {
		t.Error("edges remain after hub deletion")
	}
}

func TestThreePathsExpectation(t *testing.T) {
	// §5 Example 2: on a 3-edge path, random greedy matches 2 edges with
	// probability 2/3 and 1 edge with probability 1/3: E = 5/3 per path.
	var total float64
	const runs = 600
	for r := 0; r < runs; r++ {
		m := New(uint64(r))
		if _, err := m.ApplyAll(workload.ThreePaths(1)); err != nil {
			t.Fatal(err)
		}
		total += float64(len(m.Matching()))
	}
	mean := total / runs
	if mean < 1.55 || mean > 1.78 {
		t.Errorf("mean matching size = %.3f, want ≈ 5/3 ≈ 1.667", mean)
	}
}

func TestMatchingInvalidChanges(t *testing.T) {
	m := New(1)
	if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 2)); err == nil {
		t.Error("edge between absent nodes accepted")
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 7)); err == nil {
		t.Error("deleting absent node accepted")
	}
}

// TestLineGraphStructureProperty: the internal line graph always has one
// node per primal edge, and the L-degree of an edge {u,v} equals
// deg(u) + deg(v) - 2.
func TestLineGraphStructureProperty(t *testing.T) {
	f := func(pairs [][2]uint8, seed uint64) bool {
		m := New(seed)
		for v := graph.NodeID(0); v < 16; v++ {
			if _, err := m.Apply(graph.NodeChange(graph.NodeInsert, v)); err != nil {
				return false
			}
		}
		for _, p := range pairs {
			u, v := graph.NodeID(p[0]%16), graph.NodeID(p[1]%16)
			if u == v || m.Graph().HasEdge(u, v) {
				continue
			}
			if _, err := m.Apply(graph.EdgeChange(graph.EdgeInsert, u, v)); err != nil {
				return false
			}
		}
		g := m.Graph()
		L := m.eng.Graph()
		if L.NodeCount() != g.EdgeCount() {
			return false
		}
		for _, ge := range g.Edges() {
			id, ok := m.ids[NewEdge(ge[0], ge[1])]
			if !ok {
				return false
			}
			want := g.Degree(ge[0]) + g.Degree(ge[1]) - 2
			if L.Degree(id) != want {
				return false
			}
		}
		return m.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMatchingMuteExpandsToEdgeDeletes: muting a node removes its edges
// from the matching's view.
func TestMatchingMuteExpandsToEdgeDeletes(t *testing.T) {
	m := New(9)
	if _, err := m.ApplyAll(workload.Cycle(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(graph.NodeChange(graph.NodeMute, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Graph().HasNode(2) {
		t.Error("muted node still in primal graph")
	}
}
