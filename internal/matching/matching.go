// Package matching maintains a maximal matching under topology changes by
// simulating the dynamic MIS on the line graph L(G), the standard
// reduction the paper invokes for its composability claim (§5): because
// the MIS algorithm is history independent, so is the derived matching.
//
// Topology changes in G translate to changes in L(G): a new G-edge is a
// new L-node adjacent to all L-nodes sharing an endpoint; a deleted G-edge
// is a deleted L-node; node insertions/deletions expand to their incident
// edge set (the paper notes this translation is "only technical").
package matching

import (
	"cmp"
	"fmt"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// Edge is an undirected G-edge in canonical (U < V) form.
type Edge struct {
	U, V graph.NodeID
}

// NewEdge canonicalizes an edge.
func NewEdge(u, v graph.NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Maintainer keeps a maximal matching of a dynamic graph. The dynamic
// MIS over the line graph may be backed by any core.Engine; the
// reduction only translates primal changes into line-graph node changes.
type Maintainer struct {
	g   *graph.Graph // the primal graph G
	eng core.Engine  // dynamic MIS over L(G)

	ids    map[Edge]graph.NodeID // G-edge -> L-node
	edges  map[graph.NodeID]Edge // L-node -> G-edge
	nextID graph.NodeID
}

// New returns a template-backed maintainer over an empty graph.
func New(seed uint64) *Maintainer {
	return NewWithEngine(core.NewTemplate(seed))
}

// NewWithEngine returns a maintainer running the line-graph MIS on the
// given engine, which must be empty.
func NewWithEngine(e core.Engine) *Maintainer {
	return &Maintainer{
		g:     graph.New(),
		eng:   e,
		ids:   make(map[Edge]graph.NodeID),
		edges: make(map[graph.NodeID]Edge),
	}
}

// Graph exposes the primal topology (read-only for callers).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// lineNeighbors returns the L-node IDs of all current G-edges sharing an
// endpoint with e (excluding e itself).
func (m *Maintainer) lineNeighbors(e Edge) []graph.NodeID {
	var out []graph.NodeID
	add := func(end graph.NodeID) {
		m.g.EachNeighbor(end, func(u graph.NodeID) {
			other := NewEdge(end, u)
			if other == e {
				return
			}
			if id, ok := m.ids[other]; ok {
				out = append(out, id)
			}
		})
	}
	add(e.U)
	add(e.V)
	slices.Sort(out)
	// An edge can share both endpoints only with itself, so no
	// duplicates arise, but triangles contribute each neighbor once per
	// shared endpoint; dedupe defensively.
	dedup := out[:0]
	var prev graph.NodeID = graph.None
	for _, id := range out {
		if id != prev {
			dedup = append(dedup, id)
		}
		prev = id
	}
	return dedup
}

// insertEdge adds a G-edge and its L-node.
func (m *Maintainer) insertEdge(u, v graph.NodeID) (core.Report, error) {
	e := NewEdge(u, v)
	nbrs := m.lineNeighbors(e)
	if err := m.g.AddEdge(u, v); err != nil {
		return core.Report{}, err
	}
	id := m.nextID
	m.nextID++
	m.ids[e] = id
	m.edges[id] = e
	return m.eng.Apply(graph.NodeChange(graph.NodeInsert, id, nbrs...))
}

// deleteEdge removes a G-edge and its L-node.
func (m *Maintainer) deleteEdge(u, v graph.NodeID, abrupt bool) (core.Report, error) {
	e := NewEdge(u, v)
	id, ok := m.ids[e]
	if !ok {
		return core.Report{}, fmt.Errorf("matching: %w: {%d,%d}", graph.ErrNoEdge, u, v)
	}
	if err := m.g.RemoveEdge(u, v); err != nil {
		return core.Report{}, err
	}
	delete(m.ids, e)
	delete(m.edges, id)
	kind := graph.NodeDeleteGraceful
	if abrupt {
		kind = graph.NodeDeleteAbrupt
	}
	return m.eng.Apply(graph.NodeChange(kind, id))
}

// Apply performs one primal topology change, expanding it into the
// corresponding line-graph changes.
func (m *Maintainer) Apply(c graph.Change) (core.Report, error) {
	if err := c.Validate(m.g); err != nil {
		return core.Report{}, err
	}
	var total core.Report
	switch c.Kind {
	case graph.EdgeInsert:
		return m.insertEdge(c.U, c.V)
	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		return m.deleteEdge(c.U, c.V, c.Kind == graph.EdgeDeleteAbrupt)
	case graph.NodeInsert, graph.NodeUnmute:
		if err := m.g.AddNode(c.Node); err != nil {
			return core.Report{}, err
		}
		for _, u := range c.Edges {
			rep, err := m.insertEdge(c.Node, u)
			if err != nil {
				return total, err
			}
			total.Add(rep)
		}
		return total, nil
	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		abrupt := c.Kind == graph.NodeDeleteAbrupt
		for _, u := range m.g.Neighbors(c.Node) {
			rep, err := m.deleteEdge(c.Node, u, abrupt)
			if err != nil {
				return total, err
			}
			total.Add(rep)
		}
		if err := m.g.RemoveNode(c.Node); err != nil {
			return total, err
		}
		return total, nil
	}
	return core.Report{}, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (m *Maintainer) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := m.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Matching returns the current maximal matching as canonical edges, sorted.
func (m *Maintainer) Matching() []Edge {
	var out []Edge
	for _, id := range m.eng.MIS() {
		out = append(out, m.edges[id])
	}
	slices.SortFunc(out, func(a, b Edge) int {
		if c := cmp.Compare(a.U, b.U); c != 0 {
			return c
		}
		return cmp.Compare(a.V, b.V)
	})
	return out
}

// Matched reports whether node v is covered by the current matching.
func (m *Maintainer) Matched(v graph.NodeID) bool {
	for _, e := range m.Matching() {
		if e.U == v || e.V == v {
			return true
		}
	}
	return false
}

// Check verifies that the maintained edge set is a maximal matching: no
// two matched edges share an endpoint, and every unmatched edge touches a
// matched one. It also checks the line-graph MIS invariant.
func (m *Maintainer) Check() error {
	if err := m.eng.Check(); err != nil {
		return err
	}
	matched := make(map[graph.NodeID]Edge)
	for _, e := range m.Matching() {
		for _, end := range []graph.NodeID{e.U, e.V} {
			if prev, ok := matched[end]; ok {
				return fmt.Errorf("matching: edges %v and %v share endpoint %d", prev, e, end)
			}
			matched[end] = e
		}
	}
	for _, ge := range m.g.Edges() {
		_, uOK := matched[ge[0]]
		_, vOK := matched[ge[1]]
		if !uOK && !vOK {
			return fmt.Errorf("matching: edge {%d,%d} uncovered (not maximal)", ge[0], ge[1])
		}
	}
	return nil
}
