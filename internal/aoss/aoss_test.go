package aoss

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/indep/indeptest"
	"dynmis/workload"
)

// checkAll runs the engine's invariant stack plus the band-certificate
// oracle (greedy-over-band-order equals the engine's own MIS).
func checkAll(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("band certificate broken:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

// TestAOSSDifferential drives the engine and the from-scratch reference
// model through the same random churn stream in lockstep.
func TestAOSSDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	e := New(1)
	m := indeptest.New(indeptest.AOSSRules())
	for i, c := range workload.GNP(rng, 60, 0.08) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("build change %d: %v", i, err)
		}
		m.Apply(c)
	}
	if !core.EqualStates(e.State(), m.State()) {
		t.Fatal("states diverged after build")
	}
	for i, c := range workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(600)) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("change %d (%s): %v", i, c, err)
		}
		m.Apply(c)
		if !core.EqualStates(e.State(), m.State()) {
			t.Fatalf("change %d (%s): engine %v, model %v",
				i, c, core.MISOf(e.State()), core.MISOf(m.State()))
		}
		if i%25 == 0 {
			checkAll(t, e)
		}
	}
	checkAll(t, e)
}

// TestAOSSBatchDifferential mirrors ApplyBatch windows against the
// model's stage-all-then-settle.
func TestAOSSBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	e := New(1)
	m := indeptest.New(indeptest.AOSSRules())
	build := workload.GNP(rng, 50, 0.1)
	if _, err := e.ApplyBatch(build); err != nil {
		t.Fatal(err)
	}
	m.ApplyBatch(build)
	if !core.EqualStates(e.State(), m.State()) {
		t.Fatal("states diverged after batched build")
	}
	churn := workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(400))
	const window = 8
	for lo := 0; lo < len(churn); lo += window {
		batch := churn[lo:min(lo+window, len(churn))]
		if _, err := e.ApplyBatch(batch); err != nil {
			t.Fatalf("batch at %d: %v", lo, err)
		}
		m.ApplyBatch(batch)
		if !core.EqualStates(e.State(), m.State()) {
			t.Fatalf("batch at %d: engine and model diverged", lo)
		}
		checkAll(t, e)
	}
}

// TestAOSSPrefersLowDegree pins the settle discipline on a star plus an
// isolated pendant: when the hub and a leaf are uncovered together, the
// leaf (lower degree class) joins first, covering the hub's... nothing —
// but when the hub competes with a *neighbor* leaf, promoting the leaf
// first blocks the hub.
func TestAOSSPrefersLowDegree(t *testing.T) {
	e := New(1)
	mustApply := func(c graph.Change) {
		t.Helper()
		if _, err := e.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	// Hub 1 with leaves 2..5, built as one batch so everything settles
	// together: leaves are degree 1 (class 1), hub degree 4 (class 3).
	batch := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1),
		graph.NodeChange(graph.NodeInsert, 4, 1),
		graph.NodeChange(graph.NodeInsert, 5, 1),
	}
	if _, err := e.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if e.InMIS(1) {
		t.Fatalf("hub joined before its leaves, MIS %v", e.MIS())
	}
	for _, leaf := range []graph.NodeID{2, 3, 4, 5} {
		if !e.InMIS(leaf) {
			t.Fatalf("leaf %d missing from MIS %v", leaf, e.MIS())
		}
	}
	checkAll(t, e)
	// Compare with Gupta–Khan's ID order, which would promote hub 1
	// first and block every leaf — the policies are observably different.
	mustApply(graph.NodeChange(graph.NodeDeleteAbrupt, 1))
	checkAll(t, e)
}

// TestAOSSEvictsHigherDegree pins the eviction rule: connecting two MIS
// members evicts the higher-degree endpoint.
func TestAOSSEvictsHigherDegree(t *testing.T) {
	e := New(1)
	// 1 is a hub over 2,3,4 (all out once 1 settles first as a lone
	// node); 9 is isolated. Build sequentially: insert 1 alone (joins),
	// then its leaves (blocked), then 9 (joins).
	for _, c := range []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1),
		graph.NodeChange(graph.NodeInsert, 4, 1),
		graph.NodeChange(graph.NodeInsert, 9),
	} {
		if _, err := e.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if !e.InMIS(1) || !e.InMIS(9) {
		t.Fatalf("setup failed, MIS %v", e.MIS())
	}
	// Edge 1–9: deg(1)=4 > deg(9)=1 ⇒ evict 1; its leaves are uncovered
	// and rejoin (all degree 1, ascending ID).
	if _, err := e.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 9)); err != nil {
		t.Fatal(err)
	}
	if e.InMIS(1) {
		t.Fatalf("higher-degree endpoint survived the eviction, MIS %v", e.MIS())
	}
	for _, v := range []graph.NodeID{2, 3, 4, 9} {
		if !e.InMIS(v) {
			t.Fatalf("expected MIS {2,3,4,9}, got %v", e.MIS())
		}
	}
	checkAll(t, e)
}

// TestAOSSPrefixRecovery exercises the mid-batch error contract for the
// second independent engine.
func TestAOSSPrefixRecovery(t *testing.T) {
	e := New(1)
	if _, err := e.ApplyAll(workload.Cycle(6)); err != nil {
		t.Fatal(err)
	}
	var evs []core.Event
	e.Subscribe(func(ev core.Event) { evs = append(evs, ev) })
	before := e.State()

	batch := []graph.Change{
		graph.NodeChange(graph.NodeDeleteAbrupt, 0),
		graph.EdgeChange(graph.EdgeInsert, 2, 3), // invalid: edge exists
		graph.NodeChange(graph.NodeDeleteAbrupt, 4),
	}
	_, err := e.ApplyBatch(batch)
	if !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("want ErrInvalidChange, got %v", err)
	}
	if e.Graph().HasNode(0) || !e.Graph().HasNode(4) {
		t.Fatal("prefix-recovery boundary wrong")
	}
	checkAll(t, e)

	after := make(map[graph.NodeID]core.Membership, len(before))
	for v, m := range before {
		after[v] = m
	}
	for _, ev := range evs {
		if ev.Cause == core.CauseLeave {
			delete(after, ev.Node)
		} else {
			after[ev.Node] = ev.To
		}
	}
	if !core.EqualStates(after, e.State()) {
		t.Fatalf("prefix feed delta does not fold to the engine state:\nfold %v\nhave %v", after, e.State())
	}
}

// TestAOSSRecycleReinsert recycles arena slots under the bucketed queue.
func TestAOSSRecycleReinsert(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	e := New(1)
	m := indeptest.New(indeptest.AOSSRules())
	build := workload.GNP(rng, 30, 0.15)
	for _, c := range build {
		if _, err := e.Apply(c); err != nil {
			t.Fatal(err)
		}
		m.Apply(c)
	}
	for round := 0; round < 10; round++ {
		nodes := e.Graph().Nodes()
		var deleted []graph.NodeID
		for i, v := range nodes {
			if i%3 == round%3 {
				if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, v)); err != nil {
					t.Fatal(err)
				}
				m.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, v))
				deleted = append(deleted, v)
			}
		}
		for _, v := range deleted {
			var nbrs []graph.NodeID
			for _, u := range e.Graph().Nodes() {
				if len(nbrs) < 3 && rng.IntN(4) == 0 {
					nbrs = append(nbrs, u)
				}
			}
			c := graph.NodeChange(graph.NodeInsert, v, nbrs...)
			if _, err := e.Apply(c); err != nil {
				t.Fatal(err)
			}
			m.Apply(c)
		}
		if !core.EqualStates(e.State(), m.State()) {
			t.Fatalf("round %d: engine and model diverged", round)
		}
		checkAll(t, e)
	}
}
