// Package aoss implements the degree-bucketed dynamic MIS of Assadi,
// Onak, Schieber & Solomon, "Fully Dynamic Maximal Independent Set with
// Sublinear in n Update Time" (arXiv:1806.10051), as a drop-in
// core.Engine backend via the shared counter skeleton of internal/indep.
//
// AOSS's central idea is to make the *low-degree* vertices do the
// flipping: joining the MIS costs deg(v) count increments, so when
// several uncovered vertices compete, promoting the cheapest first both
// bounds the work of the settle pass and maximizes the chance that its
// promotion re-covers the expensive ones. Their analysis groups vertices
// into O(log n) degree classes (bucket k holds degrees in [2^{k-1},
// 2^k)) and charges each eviction's O(Δ) work against the edge updates
// that built the evicted vertex's degree, giving sublinear-in-n
// amortized update time.
//
// This implementation reproduces the algorithmic content — bucketed,
// prefer-low-degree settling (a lazy min-heap over (bucket, ID) with
// re-bucketing on pop) and eviction of the higher-degree endpoint of an
// M–M edge — but not the deamortized worst-case machinery of their §4
// (spread-out eviction scheduling), which trades large constants for a
// worst-case guarantee the amortized engine already meets on every
// workload in this repository. docs/VALIDATION.md quantifies the effect:
// against Gupta–Khan's ID-ordered settling, the degree-ordered rule
// settles the same streams with measurably less work per update on
// skewed-degree (power-law) graphs.
package aoss

import (
	"container/heap"
	"math/bits"

	"dynmis/internal/graph"
	"dynmis/internal/indep"
)

// Engine is the AOSS dynamic MIS engine.
type Engine = indep.Engine

// New returns an AOSS engine over an empty graph. The seed is accepted
// for constructor uniformity with the π engines; the algorithm itself is
// deterministic and draws no random priorities.
func New(seed uint64) *Engine { return indep.New(seed, &policy{}) }

// bucketOf is the AOSS degree class: 0 for isolated vertices, else
// 1 + floor(log2 deg) — class k covers degrees [2^{k-1}, 2^k).
func bucketOf(deg int) int { return bits.Len(uint(deg)) }

// policy is the AOSS discipline: evict the higher-degree endpoint
// (its departure uncovers more, but its degree was paid for by the edge
// insertions that built it), settle lowest degree class first.
type policy struct {
	pending []graph.NodeID // offered during staging, not yet bucketed
	h       bucketHeap     // stamped and heapified at settle start
}

func (p *policy) Evict(g *graph.Graph, u, v graph.NodeID) graph.NodeID {
	du, dv := g.Degree(u), g.Degree(v)
	if du != dv {
		if du > dv {
			return u
		}
		return v
	}
	if u > v {
		return u
	}
	return v
}

func (p *policy) Offer(_ *graph.Graph, v graph.NodeID) {
	// Do not bucket yet: later changes in the same staging window may
	// still move v's degree class, and a stale stamp would bury v below
	// heavier candidates. Degrees are final once staging ends, so Next
	// stamps the whole batch at the start of the settle pass.
	p.pending = append(p.pending, v)
}

// Next pops the candidate with the smallest (degree class, ID). The
// topology is static during a settle pass, so stamping the pending
// offers once — at the pass's first pop — keeps every bucket exact for
// the rest of the pass.
func (p *policy) Next(g *graph.Graph) graph.NodeID {
	if len(p.pending) > 0 {
		for _, v := range p.pending {
			if g.HasNode(v) {
				p.h = append(p.h, entry{bucket: int32(bucketOf(g.Degree(v))), id: v})
			}
		}
		p.pending = p.pending[:0]
		heap.Init(&p.h)
	}
	if p.h.Len() == 0 {
		return graph.None
	}
	return heap.Pop(&p.h).(entry).id
}

// entry is a queued candidate stamped with its degree class at offer
// time; bucketHeap orders by (bucket, ID).
type entry struct {
	bucket int32
	id     graph.NodeID
}

type bucketHeap []entry

func (h bucketHeap) Len() int { return len(h) }
func (h bucketHeap) Less(i, j int) bool {
	if h[i].bucket != h[j].bucket {
		return h[i].bucket < h[j].bucket
	}
	return h[i].id < h[j].id
}
func (h bucketHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *bucketHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *bucketHeap) Pop() any {
	old := *h
	n := len(old)
	en := old[n-1]
	*h = old[:n-1]
	return en
}
