package bitorder

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/order"
)

func TestPairBits(t *testing.T) {
	tests := []struct {
		a, b order.Priority
		want int
	}{
		{0, 1 << 63, 1},                 // differ in the first bit
		{0, 1, 64},                      // differ only in the last bit
		{0, 0, 64},                      // equal: full width (ID tie-break)
		{0b1010 << 60, 0b1011 << 60, 4}, // differ in the 4th bit
	}
	for _, tc := range tests {
		if got := PairBits(tc.a, tc.b); got != tc.want {
			t.Errorf("PairBits(%x, %x) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := PairBits(tc.b, tc.a); got != tc.want {
			t.Errorf("PairBits not symmetric for (%x, %x)", tc.a, tc.b)
		}
	}
}

func TestPairBitsExpectationIsTwo(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var sum float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		sum += float64(PairBits(order.Priority(rng.Uint64()), order.Priority(rng.Uint64())))
	}
	mean := sum / trials
	if mean < 1.9 || mean > 2.1 {
		t.Errorf("mean pair bits = %.3f, want ≈ 2", mean)
	}
}

func TestRevealBitsGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	meanFor := func(d int) float64 {
		var sum float64
		const trials = 2000
		for i := 0; i < trials; i++ {
			p := order.Priority(rng.Uint64())
			nbrs := make([]order.Priority, d)
			for j := range nbrs {
				nbrs[j] = order.Priority(rng.Uint64())
			}
			sum += float64(RevealBits(p, nbrs))
		}
		return sum / trials
	}
	m1, m16, m256 := meanFor(1), meanFor(16), meanFor(256)
	if m1 < 1.8 || m1 > 2.2 {
		t.Errorf("d=1 mean = %.2f, want ≈ 2", m1)
	}
	// Each 16× in degree should add ≈ 4 bits (log₂ growth).
	if d := m16 - m1; d < 2.5 || d > 5.5 {
		t.Errorf("d=16 over d=1 delta = %.2f, want ≈ 4", d)
	}
	if d := m256 - m16; d < 2.5 || d > 5.5 {
		t.Errorf("d=256 over d=16 delta = %.2f, want ≈ 4", d)
	}
}

func TestRevealBitsNoNeighbors(t *testing.T) {
	if got := RevealBits(42, nil); got != 1 {
		t.Errorf("RevealBits with no neighbors = %d, want 1", got)
	}
}

func TestSessionConsistentWithRevealBits(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 200; trial++ {
		p := order.Priority(rng.Uint64())
		nbrs := make([]order.Priority, 1+rng.IntN(20))
		for j := range nbrs {
			nbrs[j] = order.Priority(rng.Uint64())
		}
		s := Run(p, nbrs)
		if s.Rounds != RevealBits(p, nbrs) {
			t.Fatalf("session rounds %d != reveal bits %d", s.Rounds, RevealBits(p, nbrs))
		}
		if s.NodeBits != s.Rounds {
			t.Fatalf("node bits %d != rounds %d", s.NodeBits, s.Rounds)
		}
		// Every neighbor contributes exactly PairBits bits.
		want := 0
		for _, q := range nbrs {
			want += PairBits(p, q)
		}
		if s.NeighborBits != want {
			t.Fatalf("neighbor bits %d, want %d", s.NeighborBits, want)
		}
	}
}
