// Package bitorder implements the lazy bit-revelation technique the paper
// borrows from Métivier, Robson, Saheb-Djahromi and Zemmari ("An optimal
// bit complexity randomized distributed MIS algorithm") to reach O(1)
// expected bits per broadcast: a node never ships its full random
// priority ℓ_v; instead adjacent nodes reveal successive bits of their
// priorities, most significant first, until the order between them is
// decided. For two independent uniform priorities each extra bit decides
// with probability 1/2, so a pair needs 2 bits in expectation, and a node
// of degree d needs O(log d) revealed bits to separate from all neighbors.
package bitorder

import (
	"math/bits"

	"dynmis/internal/order"
)

// PairBits returns the number of leading bits each endpoint must reveal to
// decide the order between two priorities: the length of their common
// prefix plus the deciding bit. Equal priorities (the ID tie-break case)
// need the full width.
func PairBits(a, b order.Priority) int {
	if a == b {
		return 64
	}
	return bits.LeadingZeros64(uint64(a)^uint64(b)) + 1
}

// RevealBits returns how many leading bits of p must be revealed so that
// p's order relative to every priority in nbrs is decided: the maximum
// PairBits over the neighborhood. A node with no neighbors reveals one
// bit (its announcement still must be non-empty).
func RevealBits(p order.Priority, nbrs []order.Priority) int {
	need := 1
	for _, q := range nbrs {
		if b := PairBits(p, q); b > need {
			need = b
		}
	}
	return need
}

// Session simulates the interactive revelation between one node and its
// neighborhood, one bit per synchronous round, and reports the transcript
// cost. It is the model for how an insertion's Hello would be streamed in
// rounds instead of shipped as a 64-bit word.
type Session struct {
	// Rounds is the number of bit-revelation rounds until every pairwise
	// order is decided.
	Rounds int
	// NodeBits is the number of bits the center node broadcast.
	NodeBits int
	// NeighborBits is the total number of bits neighbors broadcast back.
	NeighborBits int
}

// Run simulates the session for center priority p against nbrs. In each
// round the center and every still-undecided neighbor broadcast one bit;
// a neighbor stops once its order against the center is decided.
func Run(p order.Priority, nbrs []order.Priority) Session {
	var s Session
	undecided := len(nbrs)
	decidedAt := make([]int, len(nbrs))
	for i, q := range nbrs {
		decidedAt[i] = PairBits(p, q)
	}
	for round := 1; undecided > 0; round++ {
		s.Rounds = round
		s.NodeBits++
		for _, d := range decidedAt {
			if d >= round {
				s.NeighborBits++
			}
		}
		undecided = 0
		for _, d := range decidedAt {
			if d > round {
				undecided++
			}
		}
	}
	return s
}
