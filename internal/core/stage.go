package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// StateStore is the mutable membership table that change staging operates
// on. The template and sharded engines use the dense State view over their
// graph arena; MapState adapts a plain map for reference models and tests.
type StateStore interface {
	// Get returns v's membership (Out for unknown nodes, matching the
	// zero value of a map lookup).
	Get(v graph.NodeID) Membership
	// Set records v's membership.
	Set(v graph.NodeID, m Membership)
	// Delete forgets v entirely.
	Delete(v graph.NodeID)
}

// MapState adapts a plain membership map to StateStore.
type MapState map[graph.NodeID]Membership

// Get implements StateStore.
func (s MapState) Get(v graph.NodeID) Membership { return s[v] }

// Set implements StateStore.
func (s MapState) Set(v graph.NodeID, m Membership) { s[v] = m }

// Delete implements StateStore.
func (s MapState) Delete(v graph.NodeID) { delete(s, v) }

// Has implements Stater.
func (s MapState) Has(v graph.NodeID) bool {
	_, ok := s[v]
	return ok
}

// Staged is the outcome of staging a single topology change: the graph and
// state mutations have been applied, and the recovery cascade still has to
// run from the returned seeds.
type Staged struct {
	// Frontier holds the nodes whose MIS invariant the change may have
	// violated — the candidate set S0 seeding the cascade (§3).
	Frontier []graph.NodeID
	// PreFlipped is the node that left the structure while in the MIS
	// (a deleted or muted MIS node), or graph.None. The paper counts it
	// as the single violated node v* with S0 = {v*}: it "flips" to M̄ by
	// departing, so it contributes one flip and one member of S even
	// though it no longer exists to be cascaded over.
	PreFlipped graph.NodeID
	// Touched lists every node whose graph presence or membership the
	// staging itself altered (the inserted or deleted node). Batch
	// engines use it for exact adjustment accounting without a full
	// state diff.
	Touched []graph.NodeID
}

// StageChange validates c against g, applies its topology mutation, and
// performs the order and membership bookkeeping that must precede the
// recovery cascade. It is the single staging path shared by
// Template.Apply, Template.ApplyBatch and the sharded concurrent engine,
// so all of them agree exactly on how π evolves (priorities are drawn by
// ord.Ensure in staging order, which is what makes engines with equal
// seeds and equal change sequences bit-compatible).
//
// On a validation error nothing has been mutated.
func StageChange(g *graph.Graph, ord *order.Order, state StateStore, c graph.Change) (Staged, error) {
	if err := c.Validate(g); err != nil {
		return Staged{}, err
	}
	st := Staged{PreFlipped: graph.None}

	switch c.Kind {
	case graph.EdgeInsert, graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := c.Apply(g); err != nil {
			return Staged{}, err
		}
		// v* is the endpoint ordered later in π; only its invariant can
		// break (§3).
		vstar := c.U
		if !ord.Less(c.V, c.U) {
			vstar = c.V
		}
		st.Frontier = []graph.NodeID{vstar}

	case graph.NodeInsert, graph.NodeUnmute:
		if err := c.Apply(g); err != nil {
			return Staged{}, err
		}
		// Ensure after Apply, so the node occupies its slot when the
		// priority is written through to the arena lane (unmuting reuses
		// the retained priority). The Ensure call sequence — which is what
		// fixes the priority stream — is unchanged.
		ord.Ensure(c.Node)
		// The inserted node starts with the temporary state M̄ (§4.1);
		// only it can be violated.
		state.Set(c.Node, Out)
		st.Frontier = []graph.NodeID{c.Node}
		st.Touched = []graph.NodeID{c.Node}

	case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
		wasIn := state.Get(c.Node) == In
		nbrs := g.Neighbors(c.Node)
		if err := c.Apply(g); err != nil {
			return Staged{}, err
		}
		state.Delete(c.Node)
		if c.Kind != graph.NodeMute {
			ord.Drop(c.Node) // muted nodes keep their priority
		}
		st.Touched = []graph.NodeID{c.Node}
		if wasIn {
			// Deleting an MIS node is the v* flip; its former neighbors
			// are the candidates of the next cascade layer. Deleting a
			// non-MIS node violates no invariant: S = ∅.
			st.PreFlipped = c.Node
			st.Frontier = nbrs
		}

	default:
		return Staged{}, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
	}
	return st, nil
}
