package core

import (
	"cmp"
	"fmt"
	"slices"

	"dynmis/internal/graph"
)

// EventCause classifies a membership event on the change feed.
type EventCause uint8

const (
	// CauseJoin: the node entered the visible topology. To is its
	// membership once the recovery settled (joining nodes start Out and
	// may be promoted by the cascade before the event is published).
	CauseJoin EventCause = iota + 1
	// CauseLeave: the node left the visible topology (deleted or muted).
	// From is its membership in the stable configuration before the
	// change; To is always Out.
	CauseLeave
	// CauseFlip: the recovery cascade flipped a node that stayed present.
	CauseFlip
)

// String names the cause.
func (c EventCause) String() string {
	switch c {
	case CauseJoin:
		return "join"
	case CauseLeave:
		return "leave"
	case CauseFlip:
		return "flip"
	default:
		return fmt.Sprintf("EventCause(%d)", uint8(c))
	}
}

// Event is one record of the membership change feed: node Node went from
// membership From to membership To because of Cause. Seq is the engine's
// monotonically increasing sequence number, starting at 1.
//
// Engines publish the *net* membership delta of every update (or batch
// window) in ascending node order, between stable configurations. That
// canonicalization is what makes the feed engine-independent: for equal
// seeds and equal change sequences every engine emits the identical event
// stream, because history independence (Definition 14) fixes the stable
// configurations themselves. Transient flips inside a recovery (a node
// flipping twice, §3's u2) are invisible — consumers only ever observe
// states that actually satisfied the MIS invariant.
type Event struct {
	Seq   uint64
	Node  graph.NodeID
	From  Membership
	To    Membership
	Cause EventCause
}

// String renders the event, e.g. "#3 flip 7 M̄→M".
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %d %v→%v", e.Seq, e.Cause, e.Node, e.From, e.To)
}

// Feed is the engine-side publisher of membership events. The zero value
// is ready to use. Subscribers are invoked synchronously, on the
// goroutine that applied the change, after the recovery has settled — so
// a callback always observes the engine in a stable configuration. A Feed
// is not safe for concurrent use; engines publish only from their (single)
// caller goroutine.
type Feed struct {
	seq       uint64
	suspended bool
	subs      []func(Event)
}

// Subscribe registers fn for every future event.
func (f *Feed) Subscribe(fn func(Event)) { f.subs = append(f.subs, fn) }

// Active reports whether anyone is listening; engines use it to skip
// delta assembly entirely when the feed is unused or suspended.
func (f *Feed) Active() bool { return len(f.subs) > 0 && !f.suspended }

// Suspend silences the feed and returns a resume function. Engines whose
// batch surface delegates to per-change application wrap the delegation
// in Suspend/resume and emit a single net delta afterwards, so ApplyBatch
// publishes with the same per-window granularity on every engine.
func (f *Feed) Suspend() (resume func()) {
	f.suspended = true
	return func() { f.suspended = false }
}

// Seq returns the sequence number of the most recently published event.
func (f *Feed) Seq() uint64 { return f.seq }

// Publish assigns the next sequence number and delivers one event.
func (f *Feed) Publish(node graph.NodeID, from, to Membership, cause EventCause) {
	f.seq++
	ev := Event{Seq: f.seq, Node: node, From: from, To: to, Cause: cause}
	for _, fn := range f.subs {
		fn(ev)
	}
}

// PublishSorted sorts the events by node ID, assigns sequence numbers and
// delivers them. Engines that assemble a delta in map order (the sharded
// engine's O(touched) accounting) use it to publish in the canonical
// order; the Seq fields of the input are overwritten.
func (f *Feed) PublishSorted(evs []Event) {
	slices.SortFunc(evs, func(a, b Event) int { return cmp.Compare(a.Node, b.Node) })
	for _, ev := range evs {
		f.Publish(ev.Node, ev.From, ev.To, ev.Cause)
	}
}

// EmitDiff publishes the canonical delta between two stable membership
// configurations: a join for every node present only in after, a leave
// for every node present only in before, and a flip for every node whose
// membership changed — all in ascending node order. It is a no-op with no
// subscribers.
func (f *Feed) EmitDiff(before, after map[graph.NodeID]Membership) {
	if !f.Active() {
		return
	}
	var evs []Event
	for v, m := range after {
		bm, ok := before[v]
		switch {
		case !ok:
			evs = append(evs, Event{Node: v, From: Out, To: m, Cause: CauseJoin})
		case bm != m:
			evs = append(evs, Event{Node: v, From: bm, To: m, Cause: CauseFlip})
		}
	}
	for v, bm := range before {
		if _, ok := after[v]; !ok {
			evs = append(evs, Event{Node: v, From: bm, To: Out, Cause: CauseLeave})
		}
	}
	f.PublishSorted(evs)
}

// Touched is a node's pre-window configuration, captured at first touch:
// whether it was present in the stable configuration before the update
// window, and with which membership. The template and sharded engines
// record one Touched per staged or flipped node and account the whole
// window from that set alone — O(touched), never O(n).
type Touched struct {
	Present bool
	M       Membership
}

// DeltaFromTouched computes the window's adjustment count and — when emit
// is set — its canonical feed delta, by comparing each touched node's
// pre-window configuration against the current arena state. Untouched
// nodes cannot have changed, so the result equals DiffStates/EmitDiff over
// full before/after maps (the events still need PublishSorted for the
// canonical node order).
func DeltaFromTouched(g *graph.Graph, s State, touched map[graph.NodeID]Touched, emit bool) (adjustments int, evs []Event) {
	for v, b := range touched {
		i, present := g.Index(v)
		switch {
		case b.Present && present:
			if cur := s.At(i); cur != b.M {
				adjustments++
				if emit {
					evs = append(evs, Event{Node: v, From: b.M, To: cur, Cause: CauseFlip})
				}
			}
		case b.Present && !present:
			if b.M == In {
				adjustments++
			}
			if emit {
				evs = append(evs, Event{Node: v, From: b.M, To: Out, Cause: CauseLeave})
			}
		case !b.Present && present:
			cur := s.At(i)
			if cur == In {
				adjustments++
			}
			if emit {
				evs = append(evs, Event{Node: v, From: Out, To: cur, Cause: CauseJoin})
			}
		}
	}
	return adjustments, evs
}

// DeltaFromTouchedOn is DeltaFromTouched over any membership lookup
// instead of the dense arena view: presence is s.Has, membership s.Get.
// Map-backed engines (internal/seqdyn) use it with MapState; the result
// is identical to DeltaFromTouched when both views describe the same
// configuration.
func DeltaFromTouchedOn(s Stater, touched map[graph.NodeID]Touched, emit bool) (adjustments int, evs []Event) {
	for v, b := range touched {
		present := s.Has(v)
		switch {
		case b.Present && present:
			if cur := s.Get(v); cur != b.M {
				adjustments++
				if emit {
					evs = append(evs, Event{Node: v, From: b.M, To: cur, Cause: CauseFlip})
				}
			}
		case b.Present && !present:
			if b.M == In {
				adjustments++
			}
			if emit {
				evs = append(evs, Event{Node: v, From: b.M, To: Out, Cause: CauseLeave})
			}
		case !b.Present && present:
			cur := s.Get(v)
			if cur == In {
				adjustments++
			}
			if emit {
				evs = append(evs, Event{Node: v, From: Out, To: cur, Cause: CauseJoin})
			}
		}
	}
	return adjustments, evs
}

// Replay folds an event stream into the membership configuration it
// describes, starting from the empty graph: joins and flips set the
// node's membership, leaves forget it. Replaying every event an engine
// has published reproduces the engine's State() exactly.
func Replay(evs []Event) map[graph.NodeID]Membership {
	state := make(map[graph.NodeID]Membership)
	for _, ev := range evs {
		switch ev.Cause {
		case CauseLeave:
			delete(state, ev.Node)
		default:
			state[ev.Node] = ev.To
		}
	}
	return state
}
