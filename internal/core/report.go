package core

import "fmt"

// Report is the per-change cost account shared by all engines. Fields that
// a given engine does not model are left zero (e.g. the template engine has
// no broadcasts; the async engine reports CausalDepth instead of Rounds).
type Report struct {
	// Adjustments is the number of nodes whose output changed between the
	// stable configuration before the change and the one after it — the
	// paper's adjustment-complexity. Theorem 1 bounds its expectation by 1.
	Adjustments int
	// SSize is the number of distinct nodes in the influence set S of
	// Eq. (1): every node that changed state at least once during
	// recovery. Adjustments ≤ SSize; nodes that flip an even number of
	// times (like u2 in the §3 path example) are in S but not adjusted.
	SSize int
	// Flips is the total number of state flips including repeats; the
	// naive template may make up to |S|² of them (§4).
	Flips int
	// Rounds is the synchronous round-complexity: rounds until the system
	// is stable again.
	Rounds int
	// Broadcasts counts O(log n)-bit broadcast messages sent to all
	// neighbors (the paper's broadcast-complexity).
	Broadcasts int
	// Bits is the total message payload size in bits across the recovery.
	Bits int
	// CausalDepth is the asynchronous "round" measure: the longest chain
	// of causally dependent message deliveries.
	CausalDepth int
	// CrossShard counts cascade hand-offs that crossed a shard boundary
	// in the sharded concurrent engine — the serialization points of a
	// parallel window. Theorem 1's E[|S|] ≤ 1 bounds its expectation by
	// O(1) per change regardless of the shard count.
	CrossShard int
	// Steals counts work-steal operations in the sharded concurrent
	// engine: an idle worker taking queued slots from a busier shard.
	// Scheduling-dependent, so not deterministic across runs.
	Steals int
	// Work counts primitive adjacency-entry examinations — the
	// single-machine update-time measure used by the sequential structure
	// (internal/seqdyn) and the competitor engines (internal/guptakhan,
	// internal/aoss), where the cost model is data-structure work rather
	// than communication. Zero for the distributed engines.
	Work int
}

// Add accumulates o into r (for sequence-level totals).
func (r *Report) Add(o Report) {
	r.Adjustments += o.Adjustments
	r.SSize += o.SSize
	r.Flips += o.Flips
	r.Rounds += o.Rounds
	r.Broadcasts += o.Broadcasts
	r.Bits += o.Bits
	if o.CausalDepth > r.CausalDepth {
		r.CausalDepth = o.CausalDepth
	}
	r.CrossShard += o.CrossShard
	r.Steals += o.Steals
	r.Work += o.Work
}

// MaxOf raises each field of r to the corresponding field of o — the
// field-wise maximum used for Summary.Max.
func (r *Report) MaxOf(o Report) {
	r.Adjustments = max(r.Adjustments, o.Adjustments)
	r.SSize = max(r.SSize, o.SSize)
	r.Flips = max(r.Flips, o.Flips)
	r.Rounds = max(r.Rounds, o.Rounds)
	r.Broadcasts = max(r.Broadcasts, o.Broadcasts)
	r.Bits = max(r.Bits, o.Bits)
	r.CausalDepth = max(r.CausalDepth, o.CausalDepth)
	r.CrossShard = max(r.CrossShard, o.CrossShard)
	r.Steals = max(r.Steals, o.Steals)
	r.Work = max(r.Work, o.Work)
}

// String renders the non-zero fields compactly.
func (r Report) String() string {
	return fmt.Sprintf("Report(adj=%d |S|=%d flips=%d rounds=%d bcasts=%d bits=%d depth=%d xshard=%d)",
		r.Adjustments, r.SSize, r.Flips, r.Rounds, r.Broadcasts, r.Bits, r.CausalDepth, r.CrossShard)
}
