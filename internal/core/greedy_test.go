package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// randomGraph builds a G(n,p) graph with nodes 0..n-1.
func randomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for v := graph.NodeID(0); v < graph.NodeID(n); v++ {
		if err := g.AddNode(v); err != nil {
			panic(err)
		}
	}
	for u := graph.NodeID(0); u < graph.NodeID(n); u++ {
		for v := u + 1; v < graph.NodeID(n); v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestGreedyMISSatisfiesInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 60, 0.1)
		ord := order.New(uint64(trial))
		state := GreedyMIS(g, ord)
		if err := CheckInvariant(g, ord, state); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckMIS(g, state); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGreedyMISEmptyAndSingleton(t *testing.T) {
	g := graph.New()
	ord := order.New(1)
	if got := GreedyMIS(g, ord); len(got) != 0 {
		t.Errorf("empty graph MIS = %v", got)
	}
	if err := g.AddNode(7); err != nil {
		t.Fatal(err)
	}
	state := GreedyMIS(g, ord)
	if state[7] != In {
		t.Error("isolated node must be in the MIS")
	}
}

func TestGreedyMISLowestNodeAlwaysIn(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	g := randomGraph(rng, 40, 0.2)
	ord := order.New(11)
	state := GreedyMIS(g, ord)
	lowest := graph.None
	for _, v := range g.Nodes() {
		if lowest == graph.None || ord.Less(v, lowest) {
			lowest = v
		}
	}
	if state[lowest] != In {
		t.Errorf("globally earliest node %d not in MIS", lowest)
	}
}

func TestGreedyMISDependsOnlyOnOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := randomGraph(rng, 50, 0.15)
	ord := order.New(77)
	a := GreedyMIS(g, ord)
	b := GreedyMIS(g.Clone(), ord)
	if !EqualStates(a, b) {
		t.Error("greedy MIS differs across identical runs")
	}
}

func TestGreedyClustersStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 50, 0.15)
		ord := order.New(uint64(100 + trial))
		state := GreedyMIS(g, ord)
		cl := GreedyClusters(g, ord, state)
		for v, head := range cl {
			if state[head] != In {
				t.Fatalf("cluster head %d of %d not in MIS", head, v)
			}
			if state[v] == In && head != v {
				t.Fatalf("MIS node %d assigned to foreign head %d", v, head)
			}
			if state[v] == Out {
				if !g.HasEdge(v, head) {
					t.Fatalf("node %d not adjacent to its head %d", v, head)
				}
				// head must be the earliest MIS neighbor
				g.EachNeighbor(v, func(u graph.NodeID) {
					if state[u] == In && ord.Less(u, head) {
						t.Fatalf("node %d head %d not minimal (nbr %d earlier)", v, head, u)
					}
				})
			}
		}
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 50, 0.2)
		ord := order.New(uint64(trial))
		color := GreedyColoring(g, ord)
		for _, e := range g.Edges() {
			if color[e[0]] == color[e[1]] {
				t.Fatalf("edge %v endpoints share color %d", e, color[e[0]])
			}
		}
		maxDeg := g.MaxDegree()
		for v, c := range color {
			if c < 1 || c > maxDeg+1 {
				t.Fatalf("node %d color %d outside [1, Δ+1]=%d", v, c, maxDeg+1)
			}
		}
	}
}

// TestGreedyMISProperty: for arbitrary small graphs, greedy output is a
// valid MIS regardless of seed.
func TestGreedyMISProperty(t *testing.T) {
	f := func(edges [][2]uint8, seed uint64) bool {
		g := graph.New()
		for v := graph.NodeID(0); v < 20; v++ {
			if err := g.AddNode(v); err != nil {
				return false
			}
		}
		for _, e := range edges {
			u, v := graph.NodeID(e[0]%20), graph.NodeID(e[1]%20)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		ord := order.New(seed)
		state := GreedyMIS(g, ord)
		return CheckMIS(g, state) == nil && CheckInvariant(g, ord, state) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
