package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/metrics"
)

// Summary is the aggregate cost account of driving a change stream into
// an engine: totals, per-application maxima and per-change means of the
// paper's complexity measures, plus change counts by kind. It is built by
// folding the per-application Reports with Observe, so by construction it
// carries no information beyond that fold — the facade's Drive property
// tests pin this down. The one addition outside the fold is the optional
// Metrics field, which the facade attaches from the engine's
// instrumentation collector when one is present.
type Summary struct {
	// Changes is the number of changes successfully applied.
	Changes int
	// Applies is the number of engine applications the changes were
	// delivered in: equal to Changes when driving change-by-change, and
	// the number of windows when driving through ApplyBatch.
	Applies int
	// ByKind counts the applied changes by change kind.
	ByKind map[graph.ChangeKind]int
	// Total accumulates every observed Report (Report.Add semantics:
	// sums everywhere, except CausalDepth which is a maximum).
	Total Report
	// Max is the field-wise maximum over the observed Reports. When
	// driving windowed, maxima are per window, not per change.
	Max Report
	// Metrics is the engine's instrumentation delta over the drive that
	// produced this summary — the complexity counters accumulated
	// between the drive's first and last application. It is set by
	// Maintainer.Drive when the engine has a metrics.Collector attached
	// (WithInstrumentation) and nil otherwise; Observe never populates
	// it, so the fold property over Reports (Total, Max, ByKind, the
	// means) is unaffected by instrumentation.
	Metrics *metrics.Counters
}

// Observe folds one engine application — the Report it returned and the
// changes it applied — into the summary.
func (s *Summary) Observe(rep Report, cs ...graph.Change) {
	if s.ByKind == nil {
		s.ByKind = make(map[graph.ChangeKind]int)
	}
	s.Applies++
	s.Changes += len(cs)
	for _, c := range cs {
		s.ByKind[c.Kind]++
	}
	s.Total.Add(rep)
	s.Max.MaxOf(rep)
}

// MeanAdjustments is the mean adjustment count per change — the measure
// Theorem 1 bounds by 1 in expectation.
func (s Summary) MeanAdjustments() float64 { return s.mean(s.Total.Adjustments) }

// MeanRounds is the mean round count per change.
func (s Summary) MeanRounds() float64 { return s.mean(s.Total.Rounds) }

// MeanBroadcasts is the mean broadcast count per change.
func (s Summary) MeanBroadcasts() float64 { return s.mean(s.Total.Broadcasts) }

// MeanBits is the mean message payload per change, in bits.
func (s Summary) MeanBits() float64 { return s.mean(s.Total.Bits) }

func (s Summary) mean(total int) float64 {
	if s.Changes == 0 {
		return 0
	}
	return float64(total) / float64(s.Changes)
}

// String renders the headline numbers compactly.
func (s Summary) String() string {
	return fmt.Sprintf("Summary(changes=%d applies=%d adj=%d mean-adj=%.3f max-adj=%d rounds=%d bcasts=%d bits=%d)",
		s.Changes, s.Applies, s.Total.Adjustments, s.MeanAdjustments(), s.Max.Adjustments,
		s.Total.Rounds, s.Total.Broadcasts, s.Total.Bits)
}
