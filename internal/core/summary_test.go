package core

import (
	"testing"

	"dynmis/internal/graph"
)

func TestSummaryObserve(t *testing.T) {
	var s Summary
	s.Observe(Report{Adjustments: 2, Rounds: 3, Broadcasts: 5, Bits: 64, CausalDepth: 2},
		graph.NodeChange(graph.NodeInsert, 1))
	s.Observe(Report{Adjustments: 1, Rounds: 7, Broadcasts: 2, Bits: 16, CausalDepth: 1},
		graph.EdgeChange(graph.EdgeInsert, 1, 2), graph.NodeChange(graph.NodeInsert, 2, 1))

	if s.Changes != 3 || s.Applies != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ByKind[graph.NodeInsert] != 2 || s.ByKind[graph.EdgeInsert] != 1 {
		t.Fatalf("ByKind: %v", s.ByKind)
	}
	if s.Total.Adjustments != 3 || s.Total.Rounds != 10 || s.Total.Broadcasts != 7 || s.Total.Bits != 80 {
		t.Fatalf("Total: %+v", s.Total)
	}
	// Total.CausalDepth uses Report.Add semantics (max), matching the
	// async engine's notion of stream depth.
	if s.Total.CausalDepth != 2 {
		t.Fatalf("Total.CausalDepth = %d", s.Total.CausalDepth)
	}
	if s.Max.Adjustments != 2 || s.Max.Rounds != 7 || s.Max.Broadcasts != 5 || s.Max.Bits != 64 {
		t.Fatalf("Max: %+v", s.Max)
	}
	if got := s.MeanAdjustments(); got != 1.0 {
		t.Fatalf("MeanAdjustments = %v", got)
	}
	if got := s.MeanBits(); got*3 != 80 {
		t.Fatalf("MeanBits = %v", got)
	}
}

func TestSummaryZeroValue(t *testing.T) {
	var s Summary
	if s.MeanAdjustments() != 0 || s.MeanRounds() != 0 || s.MeanBroadcasts() != 0 || s.MeanBits() != 0 {
		t.Fatal("zero-value means must be 0, not NaN")
	}
	if s.String() == "" {
		t.Fatal("String on zero value")
	}
}

func TestReportMaxOf(t *testing.T) {
	a := Report{Adjustments: 1, SSize: 9, Flips: 2, Rounds: 3, Broadcasts: 1, Bits: 10, CausalDepth: 4, CrossShard: 0}
	b := Report{Adjustments: 5, SSize: 2, Flips: 7, Rounds: 1, Broadcasts: 6, Bits: 3, CausalDepth: 1, CrossShard: 8}
	a.MaxOf(b)
	want := Report{Adjustments: 5, SSize: 9, Flips: 7, Rounds: 3, Broadcasts: 6, Bits: 10, CausalDepth: 4, CrossShard: 8}
	if a != want {
		t.Fatalf("MaxOf: got %+v, want %+v", a, want)
	}
}
