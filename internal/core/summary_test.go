package core

import (
	"testing"

	"dynmis/internal/graph"
	"dynmis/metrics"
)

func TestSummaryObserve(t *testing.T) {
	var s Summary
	s.Observe(Report{Adjustments: 2, Rounds: 3, Broadcasts: 5, Bits: 64, CausalDepth: 2},
		graph.NodeChange(graph.NodeInsert, 1))
	s.Observe(Report{Adjustments: 1, Rounds: 7, Broadcasts: 2, Bits: 16, CausalDepth: 1},
		graph.EdgeChange(graph.EdgeInsert, 1, 2), graph.NodeChange(graph.NodeInsert, 2, 1))

	if s.Changes != 3 || s.Applies != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ByKind[graph.NodeInsert] != 2 || s.ByKind[graph.EdgeInsert] != 1 {
		t.Fatalf("ByKind: %v", s.ByKind)
	}
	if s.Total.Adjustments != 3 || s.Total.Rounds != 10 || s.Total.Broadcasts != 7 || s.Total.Bits != 80 {
		t.Fatalf("Total: %+v", s.Total)
	}
	// Total.CausalDepth uses Report.Add semantics (max), matching the
	// async engine's notion of stream depth.
	if s.Total.CausalDepth != 2 {
		t.Fatalf("Total.CausalDepth = %d", s.Total.CausalDepth)
	}
	if s.Max.Adjustments != 2 || s.Max.Rounds != 7 || s.Max.Broadcasts != 5 || s.Max.Bits != 64 {
		t.Fatalf("Max: %+v", s.Max)
	}
	if got := s.MeanAdjustments(); got != 1.0 {
		t.Fatalf("MeanAdjustments = %v", got)
	}
	if got := s.MeanBits(); got*3 != 80 {
		t.Fatalf("MeanBits = %v", got)
	}
}

// TestSummaryFoldWithMetricsPresent pins that the Metrics field rides
// outside the Report fold: populating it changes neither Total nor Max
// nor the means, Observe never touches it, and two summaries folding
// identical Reports agree on every folded field regardless of which one
// carries counters.
func TestSummaryFoldWithMetricsPresent(t *testing.T) {
	reports := []Report{
		{Adjustments: 2, SSize: 3, Flips: 4, Rounds: 3, Broadcasts: 5, Bits: 64},
		{Adjustments: 0, SSize: 1, Flips: 1, Rounds: 7, Broadcasts: 2, Bits: 16},
		{Adjustments: 4, SSize: 4, Flips: 9, Rounds: 1, Broadcasts: 9, Bits: 8},
	}
	changes := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.EdgeChange(graph.EdgeInsert, 1, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 1),
	}

	var plain, metered Summary
	metered.Metrics = &metrics.Counters{Updates: 3, Adjustments: 6, Broadcasts: 16}
	for i, rep := range reports {
		plain.Observe(rep, changes[i])
		metered.Observe(rep, changes[i])
	}

	if plain.Total != metered.Total {
		t.Fatalf("Metrics presence changed Total:\n%+v\n%+v", plain.Total, metered.Total)
	}
	if plain.Max != metered.Max {
		t.Fatalf("Metrics presence changed Max:\n%+v\n%+v", plain.Max, metered.Max)
	}
	if want := (Report{Adjustments: 4, SSize: 4, Flips: 9, Rounds: 7, Broadcasts: 9, Bits: 64}); metered.Max != want {
		t.Fatalf("Max fold: got %+v, want %+v", metered.Max, want)
	}
	if got := metered.MeanAdjustments(); got != 2.0 {
		t.Fatalf("MeanAdjustments = %v, want 2", got)
	}
	if got := metered.MeanBroadcasts(); got*3 != 16 {
		t.Fatalf("MeanBroadcasts = %v", got)
	}
	// Observe must never invent or mutate counters.
	if plain.Metrics != nil {
		t.Fatal("Observe populated Metrics")
	}
	if *metered.Metrics != (metrics.Counters{Updates: 3, Adjustments: 6, Broadcasts: 16}) {
		t.Fatalf("Observe mutated Metrics: %+v", *metered.Metrics)
	}
}

func TestSummaryZeroValue(t *testing.T) {
	var s Summary
	if s.MeanAdjustments() != 0 || s.MeanRounds() != 0 || s.MeanBroadcasts() != 0 || s.MeanBits() != 0 {
		t.Fatal("zero-value means must be 0, not NaN")
	}
	if s.String() == "" {
		t.Fatal("String on zero value")
	}
}

func TestReportMaxOf(t *testing.T) {
	a := Report{Adjustments: 1, SSize: 9, Flips: 2, Rounds: 3, Broadcasts: 1, Bits: 10, CausalDepth: 4, CrossShard: 0}
	b := Report{Adjustments: 5, SSize: 2, Flips: 7, Rounds: 1, Broadcasts: 6, Bits: 3, CausalDepth: 1, CrossShard: 8}
	a.MaxOf(b)
	want := Report{Adjustments: 5, SSize: 9, Flips: 7, Rounds: 3, Broadcasts: 6, Bits: 10, CausalDepth: 4, CrossShard: 8}
	if a != want {
		t.Fatalf("MaxOf: got %+v, want %+v", a, want)
	}
}
