package core

import (
	"fmt"

	"dynmis/internal/graph"
)

// ApplyBatch applies several topology changes at once and runs a single
// recovery cascade, instead of recovering after each change. This
// addresses the paper's first open question (§6: "whether our analysis
// can be extended to cope with more than a single failure at a time").
//
// Correctness is inherited from history independence: the final state
// equals the sequential greedy MIS on the resulting graph, exactly as if
// the changes had been applied one at a time — only the cost differs
// (experiment E15 measures how E[|S|] scales with the batch size).
//
// The changes are validated and applied in order; on a validation error
// the engine keeps the already-staged prefix's topology, and a recovery
// cascade over the prefix's damage restores the MIS invariant (and
// publishes the prefix's feed delta) before the error returns — the
// engine stays consistent and usable.
func (t *Template) ApplyBatch(cs []graph.Change) (Report, error) {
	before := t.State()

	var rep Report
	flipped := make(map[graph.NodeID]int)
	var frontier []graph.NodeID

	for i, c := range cs {
		staged, err := StageChange(t.g, t.ord, MapState(t.state), c)
		if err != nil {
			err = fmt.Errorf("batch change %d: %w", i, err)
			if _, cerr := t.cascade(frontier, flipped); cerr != nil {
				return Report{}, fmt.Errorf("%w (and prefix recovery failed: %v)", err, cerr)
			}
			t.feed.EmitDiff(before, t.state)
			return Report{}, err
		}
		if staged.PreFlipped != graph.None {
			flipped[staged.PreFlipped] = 1
		}
		frontier = append(frontier, staged.Frontier...)
	}

	steps, err := t.cascade(frontier, flipped)
	if err != nil {
		return Report{}, err
	}
	t.steps = steps

	rep.Rounds = steps
	rep.SSize = len(flipped)
	for _, n := range flipped {
		rep.Flips += n
	}
	rep.Adjustments = len(DiffStates(before, t.state))
	t.feed.EmitDiff(before, t.state)
	return rep, nil
}
