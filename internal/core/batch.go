package core

import "dynmis/internal/graph"

// ApplyBatch applies several topology changes at once and runs a single
// recovery cascade, instead of recovering after each change. This
// addresses the paper's first open question (§6: "whether our analysis
// can be extended to cope with more than a single failure at a time").
//
// Correctness is inherited from history independence: the final state
// equals the sequential greedy MIS on the resulting graph, exactly as if
// the changes had been applied one at a time — only the cost differs
// (experiment E15 measures how E[|S|] scales with the batch size).
//
// The changes are validated and applied in order; on a validation error
// the engine keeps the already-staged prefix's topology, and a recovery
// cascade over the prefix's damage restores the MIS invariant (and
// publishes the prefix's feed delta) before the error returns — the
// engine stays consistent and usable.
func (t *Template) ApplyBatch(cs []graph.Change) (Report, error) {
	return t.applyWindow(cs, true)
}
