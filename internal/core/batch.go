package core

import (
	"fmt"

	"dynmis/internal/graph"
)

// ApplyBatch applies several topology changes at once and runs a single
// recovery cascade, instead of recovering after each change. This
// addresses the paper's first open question (§6: "whether our analysis
// can be extended to cope with more than a single failure at a time").
//
// Correctness is inherited from history independence: the final state
// equals the sequential greedy MIS on the resulting graph, exactly as if
// the changes had been applied one at a time — only the cost differs
// (experiment E15 measures how E[|S|] scales with the batch size).
//
// The changes are validated and applied in order; on a validation error
// the engine is left with the previously applied prefix's topology but an
// already-consistent state (the cascade runs only after all mutations).
func (t *Template) ApplyBatch(cs []graph.Change) (Report, error) {
	before := t.State()

	var rep Report
	flipped := make(map[graph.NodeID]int)
	var frontier []graph.NodeID

	for i, c := range cs {
		staged, err := StageChange(t.g, t.ord, MapState(t.state), c)
		if err != nil {
			return Report{}, fmt.Errorf("batch change %d: %w", i, err)
		}
		if staged.PreFlipped != graph.None {
			flipped[staged.PreFlipped] = 1
		}
		frontier = append(frontier, staged.Frontier...)
	}

	steps, err := t.cascade(frontier, flipped)
	if err != nil {
		return Report{}, err
	}
	t.steps = steps

	rep.Rounds = steps
	rep.SSize = len(flipped)
	for _, n := range flipped {
		rep.Flips += n
	}
	rep.Adjustments = len(DiffStates(before, t.state))
	return rep, nil
}
