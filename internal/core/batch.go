package core

import (
	"fmt"

	"dynmis/internal/graph"
)

// ApplyBatch applies several topology changes at once and runs a single
// recovery cascade, instead of recovering after each change. This
// addresses the paper's first open question (§6: "whether our analysis
// can be extended to cope with more than a single failure at a time").
//
// Correctness is inherited from history independence: the final state
// equals the sequential greedy MIS on the resulting graph, exactly as if
// the changes had been applied one at a time — only the cost differs
// (experiment E15 measures how E[|S|] scales with the batch size).
//
// The changes are validated and applied in order; on a validation error
// the engine is left with the previously applied prefix's topology but an
// already-consistent state (the cascade runs only after all mutations).
func (t *Template) ApplyBatch(cs []graph.Change) (Report, error) {
	before := t.State()

	var rep Report
	flipped := make(map[graph.NodeID]int)
	var frontier []graph.NodeID

	for i, c := range cs {
		if err := c.Validate(t.g); err != nil {
			return Report{}, fmt.Errorf("batch change %d: %w", i, err)
		}
		switch c.Kind {
		case graph.EdgeInsert, graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
			if err := c.Apply(t.g); err != nil {
				return Report{}, err
			}
			vstar := c.U
			if !t.ord.Less(c.V, c.U) {
				vstar = c.V
			}
			frontier = append(frontier, vstar)

		case graph.NodeInsert, graph.NodeUnmute:
			t.ord.Ensure(c.Node)
			if err := c.Apply(t.g); err != nil {
				return Report{}, err
			}
			t.state[c.Node] = Out
			frontier = append(frontier, c.Node)

		case graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt, graph.NodeMute:
			wasIn := t.state[c.Node] == In
			nbrs := t.g.Neighbors(c.Node)
			if err := c.Apply(t.g); err != nil {
				return Report{}, err
			}
			delete(t.state, c.Node)
			if c.Kind != graph.NodeMute {
				t.ord.Drop(c.Node)
			}
			if wasIn {
				flipped[c.Node] = 1
				frontier = append(frontier, nbrs...)
			}

		default:
			return Report{}, fmt.Errorf("batch change %d: %w: unknown kind %v", i, graph.ErrInvalidChange, c.Kind)
		}
	}

	steps, err := t.cascade(frontier, flipped)
	if err != nil {
		return Report{}, err
	}
	t.steps = steps

	rep.Rounds = steps
	rep.SSize = len(flipped)
	for _, n := range flipped {
		rep.Flips += n
	}
	rep.Adjustments = len(DiffStates(before, t.state))
	return rep, nil
}
