package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

func apply(t *testing.T, eng *Template, c graph.Change) Report {
	t.Helper()
	rep, err := eng.Apply(c)
	if err != nil {
		t.Fatalf("Apply(%s): %v", c, err)
	}
	return rep
}

// checkOracle asserts the history-independence property: the engine's state
// must equal the sequential greedy output on the current graph under the
// same order (Definition 14).
func checkOracle(t *testing.T, eng *Template) {
	t.Helper()
	if err := eng.Check(); err != nil {
		t.Fatal(err)
	}
	want := GreedyMIS(eng.Graph().Clone(), eng.Order())
	if !EqualStates(eng.State(), want) {
		t.Fatalf("engine state diverged from greedy oracle:\n got: %v\nwant: %v",
			MISOf(eng.State()), MISOf(want))
	}
}

func TestTemplateBasicLifecycle(t *testing.T) {
	eng := NewTemplate(1)
	rep := apply(t, eng, graph.NodeChange(graph.NodeInsert, 1))
	if rep.Adjustments != 1 {
		t.Errorf("first node adjustments = %d, want 1 (it joins the MIS)", rep.Adjustments)
	}
	if !eng.InMIS(1) {
		t.Error("isolated node not in MIS")
	}
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 2, 1))
	checkOracle(t, eng)
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 3, 1, 2))
	checkOracle(t, eng)
	apply(t, eng, graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2))
	checkOracle(t, eng)
	apply(t, eng, graph.NodeChange(graph.NodeDeleteAbrupt, 1))
	checkOracle(t, eng)
	if eng.Graph().HasNode(1) {
		t.Error("deleted node still present")
	}
}

func TestTemplateInvalidChangeLeavesEngineIntact(t *testing.T) {
	eng := NewTemplate(2)
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 2, 1))
	before := eng.State()
	if _, err := eng.Apply(graph.EdgeChange(graph.EdgeInsert, 1, 9)); !errors.Is(err, graph.ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
	if !EqualStates(before, eng.State()) {
		t.Error("state mutated by invalid change")
	}
}

// TestTemplatePathExample reproduces the worked example of §3: inserting an
// edge that evicts v* from the MIS causes the cascade
// S1={u1,u2}, S2={w1}, S3={w2}, S4={u2}, with u2 flipping twice and ending
// at its original output.
func TestTemplatePathExample(t *testing.T) {
	eng := NewTemplate(0)
	ord := eng.Order()

	const (
		x     = graph.NodeID(0)
		vstar = graph.NodeID(1)
		u1    = graph.NodeID(2)
		w1    = graph.NodeID(3)
		w2    = graph.NodeID(4)
		u2    = graph.NodeID(5)
	)
	// Force the order x < v* < u1 < w1 < w2 < u2 before the nodes draw
	// random priorities.
	for i, v := range []graph.NodeID{x, vstar, u1, w1, w2, u2} {
		ord.Set(v, order.Priority(i+1))
	}
	apply(t, eng, graph.NodeChange(graph.NodeInsert, x))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, vstar))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, u1, vstar))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, w1, u1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, w2, w1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, u2, vstar, w2))

	// Stable pre-change configuration of the example.
	for _, tc := range []struct {
		v    graph.NodeID
		want Membership
	}{{x, In}, {vstar, In}, {u1, Out}, {w1, In}, {w2, Out}, {u2, Out}} {
		if eng.State()[tc.v] != tc.want {
			t.Fatalf("pre-change state[%d] = %v, want %v", tc.v, eng.State()[tc.v], tc.want)
		}
	}

	rep := apply(t, eng, graph.EdgeChange(graph.EdgeInsert, x, vstar))
	checkOracle(t, eng)

	if rep.SSize != 5 {
		t.Errorf("|S| = %d, want 5 (v*, u1, u2, w1, w2)", rep.SSize)
	}
	if rep.Flips != 6 {
		t.Errorf("flips = %d, want 6 (u2 flips twice)", rep.Flips)
	}
	if rep.Rounds != 5 {
		t.Errorf("cascade steps = %d, want 5", rep.Rounds)
	}
	if rep.Adjustments != 4 {
		t.Errorf("adjustments = %d, want 4 (u2 returns to its original state)", rep.Adjustments)
	}
	for _, tc := range []struct {
		v    graph.NodeID
		want Membership
	}{{x, In}, {vstar, Out}, {u1, In}, {w1, Out}, {w2, In}, {u2, Out}} {
		if eng.State()[tc.v] != tc.want {
			t.Errorf("post-change state[%d] = %v, want %v", tc.v, eng.State()[tc.v], tc.want)
		}
	}
}

func TestTemplateDeleteOutNodeIsFree(t *testing.T) {
	eng := NewTemplate(3)
	ord := eng.Order()
	ord.Set(1, 10)
	ord.Set(2, 20)
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 2, 1))
	if eng.InMIS(2) {
		t.Fatal("node 2 should be out (neighbor 1 is earlier)")
	}
	rep := apply(t, eng, graph.NodeChange(graph.NodeDeleteAbrupt, 2))
	if rep.SSize != 0 || rep.Adjustments != 0 || rep.Flips != 0 {
		t.Errorf("deleting a non-MIS node should be free, got %v", rep)
	}
	checkOracle(t, eng)
}

func TestTemplateDeleteMISNodeCascades(t *testing.T) {
	eng := NewTemplate(4)
	ord := eng.Order()
	// Path 1-2-3 with order 1 < 2 < 3: MIS = {1,3}.
	ord.Set(1, 10)
	ord.Set(2, 20)
	ord.Set(3, 30)
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 3, 2))
	if !eng.InMIS(1) || eng.InMIS(2) || !eng.InMIS(3) {
		t.Fatalf("unexpected MIS %v", eng.MIS())
	}
	rep := apply(t, eng, graph.NodeChange(graph.NodeDeleteGraceful, 1))
	checkOracle(t, eng)
	// Deleting 1 promotes 2 and demotes 3: S = {1,2,3}.
	if rep.SSize != 3 {
		t.Errorf("|S| = %d, want 3", rep.SSize)
	}
	if rep.Adjustments != 3 {
		t.Errorf("adjustments = %d, want 3", rep.Adjustments)
	}
	if eng.InMIS(3) || !eng.InMIS(2) {
		t.Errorf("post-delete MIS = %v, want [2]", eng.MIS())
	}
}

func TestTemplateMuteUnmuteRoundTrip(t *testing.T) {
	eng := NewTemplate(5)
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, eng, graph.NodeChange(graph.NodeInsert, 3, 1, 2))
	beforeMIS := eng.State()

	apply(t, eng, graph.NodeChange(graph.NodeMute, 2))
	checkOracle(t, eng)
	if eng.Graph().HasNode(2) {
		t.Fatal("muted node visible")
	}
	// Unmuting with the same neighborhood must restore the exact same MIS:
	// the priority is retained, so the configuration is history
	// independent.
	apply(t, eng, graph.NodeChange(graph.NodeUnmute, 2, 1, 3))
	checkOracle(t, eng)
	if !EqualStates(beforeMIS, eng.State()) {
		t.Errorf("mute/unmute round trip changed the MIS: %v -> %v",
			MISOf(beforeMIS), MISOf(eng.State()))
	}
}

func TestTemplateRandomChurnAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	eng := NewTemplate(99)
	next := graph.NodeID(0)
	present := map[graph.NodeID]bool{}

	randNode := func() graph.NodeID {
		i := rng.IntN(len(present))
		for v := range present {
			if i == 0 {
				return v
			}
			i--
		}
		panic("unreachable")
	}

	for step := 0; step < 1200; step++ {
		g := eng.Graph()
		var c graph.Change
		switch op := rng.IntN(10); {
		case op < 3: // node insert with random attachments
			var nbrs []graph.NodeID
			for v := range present {
				if rng.Float64() < 0.15 {
					nbrs = append(nbrs, v)
				}
			}
			c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
			present[next] = true
			next++
		case op < 5: // node delete
			if len(present) == 0 {
				continue
			}
			v := randNode()
			kind := graph.NodeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.NodeDeleteAbrupt
			}
			c = graph.NodeChange(kind, v)
			delete(present, v)
		case op < 8: // edge insert
			if len(present) < 2 {
				continue
			}
			u, v := randNode(), randNode()
			if u == v || g.HasEdge(u, v) {
				continue
			}
			c = graph.EdgeChange(graph.EdgeInsert, u, v)
		default: // edge delete
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			kind := graph.EdgeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.EdgeDeleteAbrupt
			}
			c = graph.EdgeChange(kind, e[0], e[1])
		}
		rep, err := eng.Apply(c)
		if err != nil {
			t.Fatalf("step %d: Apply(%s): %v", step, c, err)
		}
		if rep.SSize < rep.Adjustments {
			t.Fatalf("step %d: |S|=%d < adjustments=%d", step, rep.SSize, rep.Adjustments)
		}
		if step%50 == 0 {
			checkOracle(t, eng)
		}
	}
	checkOracle(t, eng)
}

// TestTemplateExpectedSSize measures E[|S|] over many random single changes
// on a fixed random graph — Theorem 1 says the expectation is at most 1.
// With 4000 trials the sample mean should comfortably sit below 1.15.
func TestTemplateExpectedSSize(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	rng := rand.New(rand.NewPCG(21, 22))
	var totalS, trials float64

	for rep := 0; rep < 40; rep++ {
		eng := NewTemplate(uint64(rep))
		n := graph.NodeID(80)
		var changes []graph.Change
		for v := graph.NodeID(0); v < n; v++ {
			changes = append(changes, graph.NodeChange(graph.NodeInsert, v))
		}
		for u := graph.NodeID(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.06 {
					changes = append(changes, graph.EdgeChange(graph.EdgeInsert, u, v))
				}
			}
		}
		if _, err := eng.ApplyAll(changes); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			g := eng.Graph()
			var c graph.Change
			if rng.IntN(2) == 0 {
				es := g.Edges()
				e := es[rng.IntN(len(es))]
				c = graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])
			} else {
				nodes := g.Nodes()
				u, v := nodes[rng.IntN(len(nodes))], nodes[rng.IntN(len(nodes))]
				if u == v || g.HasEdge(u, v) {
					continue
				}
				c = graph.EdgeChange(graph.EdgeInsert, u, v)
			}
			r, err := eng.Apply(c)
			if err != nil {
				t.Fatal(err)
			}
			totalS += float64(r.SSize)
			trials++
		}
	}
	mean := totalS / trials
	if mean > 1.15 {
		t.Errorf("empirical E[|S|] = %.3f over %d trials, want ≤ 1 (Theorem 1)", mean, int(trials))
	}
	t.Logf("empirical E[|S|] = %.3f over %d trials", mean, int(trials))
}

func TestDiffStates(t *testing.T) {
	before := map[graph.NodeID]Membership{1: In, 2: Out, 3: In, 4: Out}
	after := map[graph.NodeID]Membership{1: Out, 2: Out, 4: In, 5: In, 6: Out}
	// 1 flipped, 3 removed while In, 4 flipped, 5 appeared In; 6 appeared
	// Out (not counted), 2 unchanged.
	got := DiffStates(before, after)
	want := []graph.NodeID{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("DiffStates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DiffStates = %v, want %v", got, want)
		}
	}
}

func TestMembershipString(t *testing.T) {
	if In.String() != "M" || Out.String() != "M̄" {
		t.Error("Membership.String mismatch")
	}
}

func TestReportAddAndString(t *testing.T) {
	a := Report{Adjustments: 1, SSize: 2, Flips: 3, Rounds: 4, Broadcasts: 5, Bits: 6, CausalDepth: 2}
	b := Report{Adjustments: 1, CausalDepth: 7}
	a.Add(b)
	if a.Adjustments != 2 || a.CausalDepth != 7 {
		t.Errorf("Add result %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}
