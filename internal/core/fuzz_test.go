package core

import (
	"testing"

	"dynmis/internal/graph"
)

// FuzzTemplateChurn interprets fuzz bytes as a change program over a
// bounded node universe and asserts the engine's two safety properties
// after every valid change: the MIS invariant holds, and the state equals
// the greedy oracle. Invalid changes must be rejected without mutating
// the engine. Run the seed corpus with `go test`; fuzz with
// `go test -fuzz FuzzTemplateChurn ./internal/core`.
func FuzzTemplateChurn(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 0, 2, 1, 0x12, 4, 1})
	f.Add(uint64(2), []byte{0, 1, 0, 2, 0, 3, 1, 0x12, 1, 0x13, 1, 0x23, 3, 1, 5, 2})
	f.Add(uint64(3), []byte{0, 5, 0, 6, 1, 0x56, 2, 0x56, 0, 5})

	f.Fuzz(func(t *testing.T, seed uint64, program []byte) {
		eng := NewTemplate(seed)
		const universe = 16
		for i := 0; i+1 < len(program); i += 2 {
			op := program[i] % 6
			arg := program[i+1]
			var c graph.Change
			switch op {
			case 0: // insert isolated node
				c = graph.NodeChange(graph.NodeInsert, graph.NodeID(arg%universe))
			case 1: // insert edge (arg encodes both endpoints)
				c = graph.EdgeChange(graph.EdgeInsert,
					graph.NodeID(arg>>4), graph.NodeID(arg&0x0f))
			case 2: // delete edge
				c = graph.EdgeChange(graph.EdgeDeleteAbrupt,
					graph.NodeID(arg>>4), graph.NodeID(arg&0x0f))
			case 3: // delete node
				c = graph.NodeChange(graph.NodeDeleteGraceful, graph.NodeID(arg%universe))
			case 4: // insert node attached to one neighbor
				c = graph.NodeChange(graph.NodeInsert,
					graph.NodeID(arg>>4), graph.NodeID(arg&0x0f))
			default: // abrupt node delete
				c = graph.NodeChange(graph.NodeDeleteAbrupt, graph.NodeID(arg%universe))
			}
			before := eng.State()
			if _, err := eng.Apply(c); err != nil {
				if !EqualStates(before, eng.State()) {
					t.Fatalf("rejected change %s mutated the engine", c)
				}
				continue
			}
			if err := eng.Check(); err != nil {
				t.Fatalf("after %s: %v", c, err)
			}
		}
		want := GreedyMIS(eng.Graph().Clone(), eng.Order())
		if !EqualStates(eng.State(), want) {
			t.Fatal("final state diverged from the greedy oracle")
		}
	})
}
