package core

import (
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
)

// buildPathTemplate returns a template maintaining a short path, plus
// the edge change pair used to exercise the cascade hot path (removing
// and re-adding an edge whose endpoint membership flips).
func buildPathTemplate(t *testing.T, seed uint64) *Template {
	t.Helper()
	tpl := NewTemplate(seed)
	cs := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
		graph.NodeChange(graph.NodeInsert, 4, 3),
	}
	if _, err := tpl.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}
	return tpl
}

// TestDisabledInstrumentationAddsZeroAllocations pins the zero-cost
// contract of the Instrument capability on the cascade hot path: the
// steady-state allocation count of Apply must be identical with no
// collector attached and with one attached — the accounting is plain
// integer adds behind a nil check, so instrumentation can stay compiled
// into production binaries.
func TestDisabledInstrumentationAddsZeroAllocations(t *testing.T) {
	measure := func(coll *metrics.Collector) float64 {
		tpl := buildPathTemplate(t, 7)
		tpl.Instrument(coll)
		del := graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 3)
		ins := graph.EdgeChange(graph.EdgeInsert, 2, 3)
		// Warm the scratch (first applications grow the slot-indexed
		// arrays) before measuring steady state.
		for i := 0; i < 4; i++ {
			if _, err := tpl.Apply(del); err != nil {
				t.Fatal(err)
			}
			if _, err := tpl.Apply(ins); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := tpl.Apply(del); err != nil {
				t.Fatal(err)
			}
			if _, err := tpl.Apply(ins); err != nil {
				t.Fatal(err)
			}
		})
	}

	disabled := measure(nil)
	enabled := measure(metrics.NewCollector())
	if enabled != disabled {
		t.Fatalf("instrumentation changed the hot-path allocation count: disabled=%v enabled=%v", disabled, enabled)
	}
	// The cascade itself is allocation-free; the only steady-state
	// allocations in Apply are the staging frontier slices (one per
	// change, two changes per run). A rise here means a regression on
	// the hot path regardless of instrumentation.
	if disabled > 4 {
		t.Fatalf("cascade hot path allocates %v per delete+insert pair, want <= 4", disabled)
	}
}

// TestTemplateInstrumentCounters checks the template's counter
// semantics against its own Reports: updates, windows, adjustments,
// cascade steps and touched slots must all be the fold of what Apply
// already returns.
func TestTemplateInstrumentCounters(t *testing.T) {
	tpl := buildPathTemplate(t, 11)
	coll := metrics.NewCollector()
	tpl.Instrument(coll)
	if tpl.Collector() != coll {
		t.Fatal("Collector did not return the attached collector")
	}

	var adj, steps int
	for i := 0; i < 10; i++ {
		rep, err := tpl.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 3))
		if err != nil {
			t.Fatal(err)
		}
		adj += rep.Adjustments
		steps += rep.Rounds
		rep, err = tpl.Apply(graph.EdgeChange(graph.EdgeInsert, 2, 3))
		if err != nil {
			t.Fatal(err)
		}
		adj += rep.Adjustments
		steps += rep.Rounds
	}

	c := coll.Snapshot()
	if c.Updates != 20 || c.Windows != 20 {
		t.Fatalf("updates/windows: %+v", c)
	}
	if c.Adjustments != uint64(adj) {
		t.Fatalf("Adjustments = %d, Reports say %d", c.Adjustments, adj)
	}
	if c.CascadeSteps != uint64(steps) {
		t.Fatalf("CascadeSteps = %d, Reports say %d", c.CascadeSteps, steps)
	}
	if c.TouchedSlots == 0 {
		t.Fatal("TouchedSlots stayed zero across flipping edge churn")
	}
	// The model-level engine has no network.
	if c.Rounds != 0 || c.Broadcasts != 0 || c.MessagesSent != 0 || c.Bits != 0 {
		t.Fatalf("template reported network metrics: %+v", c)
	}

	// Detaching stops the account; the snapshot is unaffected.
	tpl.Instrument(nil)
	if tpl.Collector() != nil {
		t.Fatal("detach did not clear the collector")
	}
	if _, err := tpl.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := coll.Snapshot(); got.Updates != 20 {
		t.Fatalf("detached collector still counting: %+v", got)
	}
}

// TestInstrumentFailedWindowNotCounted pins that applications ending in
// an error do not move the counters, matching the capability contract.
func TestInstrumentFailedWindowNotCounted(t *testing.T) {
	tpl := buildPathTemplate(t, 13)
	coll := metrics.NewCollector()
	tpl.Instrument(coll)

	// Duplicate insert: validation error, nothing staged.
	if _, err := tpl.Apply(graph.NodeChange(graph.NodeInsert, 1)); err == nil {
		t.Fatal("expected validation error")
	}
	// Mid-batch failure: the valid prefix stays applied, but the window
	// errored, so nothing is counted.
	batch := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 9, 1),
		graph.NodeChange(graph.NodeInsert, 9), // duplicate of the prefix insert
	}
	if _, err := tpl.ApplyBatch(batch); err == nil {
		t.Fatal("expected batch error")
	}
	if got := coll.Snapshot(); got != (metrics.Counters{}) {
		t.Fatalf("failed applications were counted: %+v", got)
	}
}

// TestLastCascadeStepsSurvivesRejectedApply pins Apply's
// unchanged-engine contract down to the step counter: a validation
// error must not reset LastCascadeSteps.
func TestLastCascadeStepsSurvivesRejectedApply(t *testing.T) {
	// Force π = 1 < 2 < 3 < 4 on the path 1-2-3-4, so deleting edge
	// {1,2} always cascades: 2 joins, 3 leaves, 4 joins — three steps.
	ord := order.New(1)
	for v := graph.NodeID(1); v <= 4; v++ {
		ord.Set(v, order.Priority(v)*10)
	}
	tpl := NewTemplateWithOrder(ord)
	cs := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
		graph.NodeChange(graph.NodeInsert, 4, 3),
	}
	if _, err := tpl.ApplyAll(cs); err != nil {
		t.Fatal(err)
	}

	if _, err := tpl.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2)); err != nil {
		t.Fatal(err)
	}
	steps := tpl.LastCascadeSteps()
	if steps != 3 {
		t.Fatalf("forced-order cascade ran %d steps, want 3", steps)
	}
	if _, err := tpl.Apply(graph.NodeChange(graph.NodeInsert, 1)); err == nil {
		t.Fatal("expected validation error")
	}
	if got := tpl.LastCascadeSteps(); got != steps {
		t.Fatalf("rejected Apply changed LastCascadeSteps: %d -> %d", steps, got)
	}
}
