package core

import (
	"cmp"
	"encoding/json"
	"fmt"
	"slices"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// SnapshotNode is one node's persisted state.
type SnapshotNode struct {
	ID       graph.NodeID   `json:"id"`
	Priority order.Priority `json:"priority"`
	InMIS    bool           `json:"in_mis"`
}

// Snapshot is a serializable image of a maintained MIS: the graph, the
// random priorities and the memberships. It lets a long-lived deployment
// restart a maintainer without replaying its change history; history
// independence guarantees the restored structure is exactly as valid as
// the original.
type Snapshot struct {
	Nodes []SnapshotNode    `json:"nodes"`
	Edges [][2]graph.NodeID `json:"edges"`
}

// Snapshot captures the engine's current stable state.
func (t *Template) Snapshot() *Snapshot {
	s := &Snapshot{}
	for _, v := range t.g.Nodes() {
		prio, _ := t.ord.Priority(v)
		s.Nodes = append(s.Nodes, SnapshotNode{ID: v, Priority: prio, InMIS: t.state.InMIS(v)})
	}
	s.Edges = t.g.Edges()
	return s
}

// Marshal encodes the snapshot as JSON.
func (s *Snapshot) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot decodes a JSON snapshot.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	return &s, nil
}

// RestoreTemplate rebuilds an engine from a snapshot. Fresh nodes
// inserted after the restore draw their priorities from a new stream
// seeded with seed (the original stream position is not part of the
// snapshot; any seed keeps priorities uniform and independent). The
// snapshot is validated: the restored configuration must satisfy the MIS
// invariant, so a tampered snapshot is rejected.
func RestoreTemplate(s *Snapshot, seed uint64) (*Template, error) {
	t := NewTemplateWithOrder(order.New(seed))
	// Insert nodes in ascending ID order, then edges; memberships are
	// restored verbatim and validated at the end. The arena is presized so
	// the rebuild neither reallocates nor rehashes.
	t.g.Grow(len(s.Nodes))
	sorted := slices.Clone(s.Nodes)
	slices.SortFunc(sorted, func(a, b SnapshotNode) int { return cmp.Compare(a.ID, b.ID) })
	for _, n := range sorted {
		if err := t.g.AddNode(n.ID); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
		t.ord.Set(n.ID, n.Priority)
		t.state.Set(n.ID, Membership(n.InMIS))
	}
	for _, e := range s.Edges {
		if err := t.g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
	}
	if err := t.Check(); err != nil {
		return nil, fmt.Errorf("core: restore: snapshot inconsistent: %w", err)
	}
	return t, nil
}
