package core

import (
	"testing"

	"dynmis/internal/graph"
)

func TestFeedPublishSeq(t *testing.T) {
	var f Feed
	var got []Event
	f.Subscribe(func(ev Event) { got = append(got, ev) })
	if !f.Active() {
		t.Fatal("feed with a subscriber is not active")
	}
	f.Publish(3, Out, In, CauseJoin)
	f.Publish(1, In, Out, CauseFlip)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("events = %v, want Seq 1,2", got)
	}
	if f.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", f.Seq())
	}
}

func TestFeedInactiveEmitDiffCheap(t *testing.T) {
	var f Feed
	// No subscriber: EmitDiff must not advance the sequence counter
	// (publishing nothing keeps later subscribers' numbering dense).
	f.EmitDiff(map[graph.NodeID]Membership{1: In}, map[graph.NodeID]Membership{1: Out})
	if f.Seq() != 0 {
		t.Fatalf("inactive feed advanced to seq %d", f.Seq())
	}
}

func TestFeedEmitDiffCanonical(t *testing.T) {
	var f Feed
	var got []Event
	f.Subscribe(func(ev Event) { got = append(got, ev) })

	before := map[graph.NodeID]Membership{1: In, 2: Out, 3: Out, 5: In}
	after := map[graph.NodeID]Membership{2: Out, 3: In, 5: In, 9: Out}
	// 1 left (was In), 3 flipped Out→In, 9 joined as Out; 2 and 5
	// unchanged.
	f.EmitDiff(before, after)

	want := []Event{
		{Seq: 1, Node: 1, From: In, To: Out, Cause: CauseLeave},
		{Seq: 2, Node: 3, From: Out, To: In, Cause: CauseFlip},
		{Seq: 3, Node: 9, From: Out, To: Out, Cause: CauseJoin},
	}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReplayReproducesState(t *testing.T) {
	var got []Event
	tpl := NewTemplate(7)
	tpl.Subscribe(func(ev Event) { got = append(got, ev) })
	cs := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1, 2),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 3),
	}
	for _, c := range cs {
		if _, err := tpl.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if state := Replay(got); !EqualStates(state, tpl.State()) {
		t.Fatalf("replayed state %v != engine state %v", state, tpl.State())
	}
}

func TestEventAndCauseStrings(t *testing.T) {
	ev := Event{Seq: 3, Node: 7, From: Out, To: In, Cause: CauseFlip}
	if ev.String() == "" || CauseJoin.String() != "join" || CauseLeave.String() != "leave" ||
		CauseFlip.String() != "flip" || EventCause(99).String() == "" {
		t.Error("event string rendering broken")
	}
}

func TestTemplateBatchFeed(t *testing.T) {
	tpl := NewTemplate(42)
	var got []Event
	tpl.Subscribe(func(ev Event) { got = append(got, ev) })
	batch := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 1),
	}
	if _, err := tpl.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	// One batch, one delta: node 1 never appears (inserted and deleted in
	// the same window), and the events replay to the final state.
	for _, ev := range got {
		if ev.Node == 1 {
			t.Fatalf("transient node 1 leaked into the feed: %v", ev)
		}
	}
	if state := Replay(got); !EqualStates(state, tpl.State()) {
		t.Fatalf("replayed state %v != engine state %v", state, tpl.State())
	}
}
