package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// ShouldBeIn evaluates the MIS invariant's right-hand side for v: true iff
// no neighbor earlier in π is currently in the MIS. A node satisfies the
// invariant iff state[v] == ShouldBeIn(v).
func ShouldBeIn(g *graph.Graph, ord *order.Order, state map[graph.NodeID]Membership, v graph.NodeID) Membership {
	in := In
	g.EachNeighbor(v, func(u graph.NodeID) {
		if ord.Less(u, v) && state[u] == In {
			in = Out
		}
	})
	return in
}

// CheckInvariant verifies that state satisfies the MIS invariant on every
// node of g (which implies that the In-set is a maximal independent set,
// §3). It returns nil on success and a descriptive error naming the first
// violated node otherwise.
func CheckInvariant(g *graph.Graph, ord *order.Order, state map[graph.NodeID]Membership) error {
	for _, v := range g.Nodes() {
		m, ok := state[v]
		if !ok {
			return fmt.Errorf("core: node %d has no state", v)
		}
		if want := ShouldBeIn(g, ord, state, v); m != want {
			return fmt.Errorf("core: MIS invariant violated at node %d: state %v, want %v", v, m, want)
		}
	}
	return nil
}

// CheckMIS verifies maximality and independence directly (without reference
// to π): no two In-nodes are adjacent, and every Out-node has an In
// neighbor. It is the model-level acceptance test used when an engine's
// internal order is not observable.
func CheckMIS(g *graph.Graph, state map[graph.NodeID]Membership) error {
	for _, v := range g.Nodes() {
		m, ok := state[v]
		if !ok {
			return fmt.Errorf("core: node %d has no state", v)
		}
		if m == In {
			var bad graph.NodeID = graph.None
			g.EachNeighbor(v, func(u graph.NodeID) {
				if state[u] == In {
					bad = u
				}
			})
			if bad != graph.None {
				return fmt.Errorf("core: independence violated: both %d and %d in MIS", v, bad)
			}
			continue
		}
		covered := false
		g.EachNeighbor(v, func(u graph.NodeID) {
			if state[u] == In {
				covered = true
			}
		})
		if !covered {
			return fmt.Errorf("core: maximality violated: node %d and all its neighbors are out", v)
		}
	}
	return nil
}
