package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Stater is a read-only membership lookup: the dense State view and the
// MapState adapter both satisfy it, so the invariant checkers run
// unchanged over an arena-backed engine or a plain map.
type Stater interface {
	// Get returns v's membership (Out for unknown nodes).
	Get(v graph.NodeID) Membership
	// Has reports whether v has a membership at all.
	Has(v graph.NodeID) bool
}

// ShouldBeIn evaluates the MIS invariant's right-hand side for v: true iff
// no neighbor earlier in π is currently in the MIS. A node satisfies the
// invariant iff state.Get(v) == ShouldBeIn(v). (The template engine's
// cascade evaluates the same predicate in slot space — graph.LessAt over
// the priority lane — without the map lookups of ord.Less.)
func ShouldBeIn(g *graph.Graph, ord *order.Order, state Stater, v graph.NodeID) Membership {
	in := In
	g.EachNeighbor(v, func(u graph.NodeID) {
		if ord.Less(u, v) && state.Get(u) == In {
			in = Out
		}
	})
	return in
}

// CheckInvariantOn verifies that state satisfies the MIS invariant on every
// node of g (which implies that the In-set is a maximal independent set,
// §3). It returns nil on success and a descriptive error naming the first
// violated node otherwise.
func CheckInvariantOn(g *graph.Graph, ord *order.Order, state Stater) error {
	for _, v := range g.Nodes() {
		if !state.Has(v) {
			return fmt.Errorf("core: node %d has no state", v)
		}
		m := state.Get(v)
		if want := ShouldBeIn(g, ord, state, v); m != want {
			return fmt.Errorf("core: MIS invariant violated at node %d: state %v, want %v", v, m, want)
		}
	}
	return nil
}

// CheckInvariant is CheckInvariantOn over a plain membership map.
func CheckInvariant(g *graph.Graph, ord *order.Order, state map[graph.NodeID]Membership) error {
	return CheckInvariantOn(g, ord, MapState(state))
}

// CheckMISOn verifies maximality and independence directly (without
// reference to π): no two In-nodes are adjacent, and every Out-node has an
// In neighbor. It is the model-level acceptance test used when an engine's
// internal order is not observable.
func CheckMISOn(g *graph.Graph, state Stater) error {
	for _, v := range g.Nodes() {
		if !state.Has(v) {
			return fmt.Errorf("core: node %d has no state", v)
		}
		if state.Get(v) == In {
			var bad graph.NodeID = graph.None
			g.EachNeighbor(v, func(u graph.NodeID) {
				if state.Get(u) == In {
					bad = u
				}
			})
			if bad != graph.None {
				return fmt.Errorf("core: independence violated: both %d and %d in MIS", v, bad)
			}
			continue
		}
		covered := false
		g.EachNeighbor(v, func(u graph.NodeID) {
			if state.Get(u) == In {
				covered = true
			}
		})
		if !covered {
			return fmt.Errorf("core: maximality violated: node %d and all its neighbors are out", v)
		}
	}
	return nil
}

// CheckMIS is CheckMISOn over a plain membership map.
func CheckMIS(g *graph.Graph, state map[graph.NodeID]Membership) error {
	return CheckMISOn(g, MapState(state))
}
