package core

import (
	"errors"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Engine is the uniform surface of every MIS maintenance engine: the
// model-level template (this package), the sharded concurrent engine
// (internal/shard), and the three message-passing realizations
// (internal/direct, internal/protocol). The facade and the derived
// structures (clustering, matching, coloring) program against this
// interface only, so any future backend that implements it is a drop-in.
//
// Semantics every implementation must honor:
//
//   - Apply/ApplyAll/ApplyBatch leave the engine in a stable configuration
//     equal to the sequential greedy MIS on the current graph under the
//     engine's order (history independence, Definition 14). ApplyBatch may
//     recover once for the whole batch; engines without a combined
//     recovery fall back to sequential application, which reaches the
//     same structure.
//   - Subscribe registers a change-feed callback; after every Apply or
//     ApplyBatch the engine publishes the net membership delta as Events
//     in ascending node order (see Feed).
//   - Graph and Order expose live internals that callers must treat as
//     read-only.
type Engine interface {
	Apply(graph.Change) (Report, error)
	ApplyAll([]graph.Change) (Report, error)
	ApplyBatch([]graph.Change) (Report, error)
	Graph() *graph.Graph
	Order() *order.Order
	InMIS(graph.NodeID) bool
	MIS() []graph.NodeID
	State() map[graph.NodeID]Membership
	Check() error
	Subscribe(func(Event))
}

// Snapshotter is the optional persistence capability: an Engine that can
// serialize its maintained structure implements it. Engines whose state
// is per-node network knowledge (the message-passing realizations) do
// not; the template and sharded engines do.
type Snapshotter interface {
	Snapshot() *Snapshot
}

// ErrMuteUnsupported is the sentinel for engines that do not model the
// mute/unmute change kinds (currently the asynchronous direct engine,
// where muting is a synchronous-round notion). Match with errors.Is.
var ErrMuteUnsupported = errors.New("mute/unmute unsupported by this engine")
