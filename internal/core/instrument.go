package core

import "dynmis/metrics"

// Instrument is the optional complexity-instrumentation capability: an
// Engine that can account the paper's cost measures (adjustments,
// cascade length, touched slots, rounds, broadcasts, message traffic)
// into an attached metrics.Collector implements it. All five engines in
// this repository do; the capability exists — rather than a mandatory
// Engine method — so that future backends without meaningful accounting
// remain valid engines, mirroring Snapshotter.
//
// The contract is zero cost when disabled: with no collector attached
// (the default), the only overhead an implementation may add to its
// accounting path is a nil pointer check, and it must not allocate. The
// cascade inner loops are never touched at all — engines fold the
// per-window Report and scratch sizes they already compute into the
// collector after recovery has settled. A pinned allocation test
// (instrument_test.go) keeps this honest.
//
// Engines update the collector only from their applying goroutine (the
// sharded engine from its coordinator after the workers have joined), so
// the Collector needs no synchronization. Applications that end in an
// error are not counted, even when a failed batch leaves its staged
// prefix applied: instrumentation tracks successful windows only.
type Instrument interface {
	// Instrument attaches a collector; nil detaches and disables
	// instrumentation.
	Instrument(*metrics.Collector)
	// Collector returns the attached collector, or nil when
	// instrumentation is disabled.
	Collector() *metrics.Collector
}
