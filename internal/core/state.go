// Package core implements the paper's primary contribution in its purest
// form: the MIS invariant over a random order π (§3), the sequential greedy
// oracle that defines history independence, and the template of Algorithm 1
// — the influence-set cascade whose expected size is at most 1 (Theorem 1).
//
// The distributed implementations (internal/direct, internal/protocol) are
// message-passing realizations of this template; every engine is tested to
// produce exactly the output of GreedyMIS on the current graph with the
// current priorities, which is the paper's history-independence property
// (Definition 14).
package core

import (
	"sort"

	"dynmis/internal/graph"
)

// Membership is a node's output: in the MIS or not. The paper writes M and
// M̄ for the two values.
type Membership bool

const (
	// In is the MIS state M.
	In Membership = true
	// Out is the non-MIS state M̄.
	Out Membership = false
)

// String returns "M" for In and "M̄" for Out.
func (m Membership) String() string {
	if m == In {
		return "M"
	}
	return "M̄"
}

// MISOf extracts the sorted list of MIS members from a state map.
func MISOf(state map[graph.NodeID]Membership) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(state))
	for v, m := range state {
		if m == In {
			out = append(out, v)
		}
	}
	sortIDs(out)
	return out
}

// EqualStates reports whether two state maps agree on every node.
func EqualStates(a, b map[graph.NodeID]Membership) bool {
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if bm, ok := b[v]; !ok || bm != m {
			return false
		}
	}
	return true
}

// DiffStates returns the nodes present in both maps whose membership
// differs, plus nodes present in exactly one map with membership In in it.
// It is the adjustment count between two stable configurations.
func DiffStates(before, after map[graph.NodeID]Membership) []graph.NodeID {
	var out []graph.NodeID
	for v, m := range after {
		if bm, ok := before[v]; ok {
			if bm != m {
				out = append(out, v)
			}
		} else if m == In {
			out = append(out, v) // appeared directly in the MIS
		}
	}
	for v, m := range before {
		if _, ok := after[v]; !ok && m == In {
			out = append(out, v) // left while in the MIS
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []graph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
