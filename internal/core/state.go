// Package core implements the paper's primary contribution in its purest
// form: the MIS invariant over a random order π (§3), the sequential greedy
// oracle that defines history independence, and the template of Algorithm 1
// — the influence-set cascade whose expected size is at most 1 (Theorem 1).
//
// The distributed implementations (internal/direct, internal/protocol) are
// message-passing realizations of this template; every engine is tested to
// produce exactly the output of GreedyMIS on the current graph with the
// current priorities, which is the paper's history-independence property
// (Definition 14).
package core

import (
	"slices"

	"dynmis/internal/graph"
)

// Membership is a node's output: in the MIS or not. The paper writes M and
// M̄ for the two values.
type Membership bool

const (
	// In is the MIS state M.
	In Membership = true
	// Out is the non-MIS state M̄.
	Out Membership = false
)

// String returns "M" for In and "M̄" for Out.
func (m Membership) String() string {
	if m == In {
		return "M"
	}
	return "M̄"
}

// State is the dense membership view of a graph arena: memberships live in
// the graph's one-byte state lane, indexed by dense slot, so the cascade
// inner loop reads and writes them as array elements with zero map lookups.
// A node is "known" to the view exactly while it occupies a slot, which
// makes presence queries free and guarantees — because the graph zeroes a
// slot's lanes on free and on reallocation — that a recycled slot can never
// surface a deleted node's membership.
//
// State is a view, not a container: copying it is free and every copy reads
// and writes the same arena. It implements both StateStore (staging) and
// Stater (invariant checking).
type State struct {
	g *graph.Graph
}

// NewState returns the membership view over g's arena.
func NewState(g *graph.Graph) State { return State{g: g} }

// Get returns v's membership (Out for unknown nodes, matching the zero
// value of a map lookup).
func (s State) Get(v graph.NodeID) Membership {
	i, ok := s.g.Index(v)
	if !ok {
		return Out
	}
	return Membership(s.g.StateAt(i) != 0)
}

// Has reports whether v currently has a membership (i.e. occupies a slot).
func (s State) Has(v graph.NodeID) bool { return s.g.HasNode(v) }

// At returns the membership in slot i — the cascade's array-walk accessor.
func (s State) At(i int) Membership { return s.g.StateAt(i) != 0 }

// SetAt writes the membership in slot i.
func (s State) SetAt(i int, m Membership) {
	var b byte
	if m == In {
		b = 1
	}
	s.g.SetStateAt(i, b)
}

// Set records v's membership. Setting an absent node is a no-op: a
// membership exists only while the node occupies a slot.
func (s State) Set(v graph.NodeID, m Membership) {
	if i, ok := s.g.Index(v); ok {
		s.SetAt(i, m)
	}
}

// Delete forgets v's membership. Deleting an absent node is a no-op (the
// graph already zeroed the slot's lane when the node was removed).
func (s State) Delete(v graph.NodeID) {
	if i, ok := s.g.Index(v); ok {
		s.g.SetStateAt(i, 0)
	}
}

// InMIS reports whether v is currently in the MIS.
func (s State) InMIS(v graph.NodeID) bool { return s.Get(v) == In }

// MIS returns the sorted list of MIS members.
func (s State) MIS() []graph.NodeID {
	out := make([]graph.NodeID, 0, s.g.NodeCount())
	for i := range s.g.Slots() {
		if s.g.IDAt(i) != graph.None && s.g.StateAt(i) != 0 {
			out = append(out, s.g.IDAt(i))
		}
	}
	slices.Sort(out)
	return out
}

// Map materializes the view as a plain membership map (the Engine.State
// wire format).
func (s State) Map() map[graph.NodeID]Membership {
	out := make(map[graph.NodeID]Membership, s.g.NodeCount())
	for i := range s.g.Slots() {
		if v := s.g.IDAt(i); v != graph.None {
			out[v] = s.g.StateAt(i) != 0
		}
	}
	return out
}

// MISOf extracts the sorted list of MIS members from a state map.
func MISOf(state map[graph.NodeID]Membership) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(state))
	for v, m := range state {
		if m == In {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// EqualStates reports whether two state maps agree on every node.
func EqualStates(a, b map[graph.NodeID]Membership) bool {
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if bm, ok := b[v]; !ok || bm != m {
			return false
		}
	}
	return true
}

// DiffStates returns the nodes present in both maps whose membership
// differs, plus nodes present in exactly one map with membership In in it.
// It is the adjustment count between two stable configurations.
func DiffStates(before, after map[graph.NodeID]Membership) []graph.NodeID {
	var out []graph.NodeID
	for v, m := range after {
		if bm, ok := before[v]; ok {
			if bm != m {
				out = append(out, v)
			}
		} else if m == In {
			out = append(out, v) // appeared directly in the MIS
		}
	}
	for v, m := range before {
		if _, ok := after[v]; !ok && m == In {
			out = append(out, v) // left while in the MIS
		}
	}
	slices.Sort(out)
	return out
}
