package core_test // see batch_test.go for why these tests are external

import (
	. "dynmis/internal/core"

	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	orig := NewTemplate(44)
	if _, err := orig.ApplyAll(workload.GNP(rng, 60, 0.08)); err != nil {
		t.Fatal(err)
	}

	data, err := orig.Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTemplate(snap, 777)
	if err != nil {
		t.Fatal(err)
	}

	if !orig.Graph().Equal(restored.Graph()) {
		t.Fatal("restored graph differs")
	}
	if !EqualStates(orig.State(), restored.State()) {
		t.Fatal("restored memberships differ")
	}
	// The restored engine keeps working and stays oracle-consistent:
	// surviving nodes kept their priorities, so even continued churn
	// that only touches existing nodes behaves identically.
	for i, c := range workload.EdgeChurn(rng, restored.Graph(), 100) {
		if _, err := restored.Apply(c); err != nil {
			t.Fatalf("post-restore change %d: %v", i, err)
		}
	}
	if err := restored.Check(); err != nil {
		t.Fatal(err)
	}
	want := GreedyMIS(restored.Graph().Clone(), restored.Order())
	if !EqualStates(restored.State(), want) {
		t.Fatal("restored engine diverged from oracle under churn")
	}
}

func TestSnapshotRejectsTampering(t *testing.T) {
	orig := NewTemplate(45)
	if _, err := orig.ApplyAll(workload.Path(5)); err != nil {
		t.Fatal(err)
	}
	snap := orig.Snapshot()
	// Flip one membership: the restored configuration violates the MIS
	// invariant and must be rejected.
	snap.Nodes[2].InMIS = !snap.Nodes[2].InMIS
	if _, err := RestoreTemplate(snap, 1); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

func TestSnapshotRejectsBadTopology(t *testing.T) {
	snap := &Snapshot{
		Nodes: []SnapshotNode{{ID: 1, Priority: 10, InMIS: true}},
		Edges: [][2]graph.NodeID{{1, 2}}, // endpoint 2 missing
	}
	if _, err := RestoreTemplate(snap, 1); err == nil {
		t.Fatal("snapshot with dangling edge accepted")
	}
	dup := &Snapshot{
		Nodes: []SnapshotNode{{ID: 1, Priority: 1, InMIS: true}, {ID: 1, Priority: 2, InMIS: false}},
	}
	if _, err := RestoreTemplate(dup, 1); err == nil {
		t.Fatal("snapshot with duplicate node accepted")
	}
}

func TestUnmarshalSnapshotErrors(t *testing.T) {
	if _, err := UnmarshalSnapshot([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSnapshotEmptyEngine(t *testing.T) {
	snap := NewTemplate(1).Snapshot()
	restored, err := RestoreTemplate(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Graph().NodeCount() != 0 {
		t.Fatal("empty snapshot restored non-empty engine")
	}
}
