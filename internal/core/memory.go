package core

import (
	"dynmis/internal/graph"
	"dynmis/metrics"
)

// MemoryReporter is the optional memory-accounting capability: an
// arena-backed Engine that can account the bytes its maintained state
// retains implements it. The profile is deterministic for a given
// change history (capacities and entry counts, no runtime
// introspection), so harnesses commit it in artifacts — the big-graph
// benchmark tier's bytes/node column, cmd/validate's head-to-head
// table, and dynmisd's /metricsz all read this capability.
//
// The message-passing engines do not implement it: their state is
// per-node network knowledge spread across simulated nodes, which has
// no meaningful single-arena byte account.
type MemoryReporter interface {
	MemoryProfile() metrics.Memory
}

// ArenaMemory folds a graph arena's retained-bytes account plus
// auxBytes of engine-owned storage (slot-indexed scratch lanes, blocker
// counts, worker deques, the order's priority table) into the wire
// form. It is the shared constructor behind every engine's
// MemoryProfile, so the arena portion can never be double-counted or
// accounted inconsistently between engines.
func ArenaMemory(g *graph.Graph, auxBytes int64) metrics.Memory {
	s := g.Mem()
	total := s.TotalBytes + auxBytes
	m := metrics.Memory{
		Nodes:            int64(s.Nodes),
		Slots:            int64(s.Slots),
		Edges:            int64(s.Edges),
		ArenaBytes:       s.LaneBytes,
		IndexBytes:       s.IndexBytes,
		FreeBytes:        s.FreeBytes,
		SpillSlabBytes:   s.SpillSlabBytes,
		SpillLiveBytes:   s.SpillLiveBytes,
		SpillFreeBlocks:  int64(s.SpillFreeBlocks),
		AuxBytes:         auxBytes,
		TotalBytes:       total,
		SpillUtilization: s.SpillUtilization(),
	}
	if s.Nodes > 0 {
		m.BytesPerNode = float64(total) / float64(s.Nodes)
	}
	return m
}

// MemoryProfile accounts the template engine: the arena plus the
// slot-indexed cascade scratch lanes, the ID-space window scratch and
// the order's priority table. The touched/flips maps are O(window)
// scratch cleared between windows and are deliberately not estimated.
func (t *Template) MemoryProfile() metrics.Memory {
	aux := int64(cap(t.seen))*8 +
		int64(cap(t.flipCnt)+cap(t.flipped)+cap(t.cand)+cap(t.next)+cap(t.violated))*4 +
		int64(cap(t.frontier)+cap(t.preFlips))*8 +
		t.ord.MemBytes()
	return ArenaMemory(t.g, aux)
}
