package core

import (
	"slices"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// GreedyMIS runs the sequential greedy MIS algorithm on g under the order
// π defined by ord: nodes are inspected by increasing priority, and a node
// joins the MIS iff none of its earlier neighbors did. This is the oracle
// that every dynamic engine must reproduce (history independence, Def. 14).
func GreedyMIS(g *graph.Graph, ord *order.Order) map[graph.NodeID]Membership {
	nodes := sortedByOrder(g, ord)
	state := make(map[graph.NodeID]Membership, len(nodes))
	for _, v := range nodes {
		in := In
		g.EachNeighbor(v, func(u graph.NodeID) {
			if ord.Less(u, v) && state[u] == In {
				in = Out
			}
		})
		state[v] = in
	}
	return state
}

// sortedByOrder returns g's nodes in increasing π position, ensuring every
// node has a priority.
func sortedByOrder(g *graph.Graph, ord *order.Order) []graph.NodeID {
	nodes := g.Nodes()
	for _, v := range nodes {
		ord.Ensure(v)
	}
	slices.SortFunc(nodes, func(a, b graph.NodeID) int {
		if ord.Less(a, b) {
			return -1
		}
		if ord.Less(b, a) {
			return 1
		}
		return 0
	})
	return nodes
}

// GreedyClusters computes the random-greedy pivot clustering of Ailon,
// Charikar and Newman used by the paper for 3-approximate correlation
// clustering: every MIS node is a cluster center, and every non-MIS node
// joins the cluster of its earliest (minimum-π) MIS neighbor.
//
// The state argument must satisfy the MIS invariant for ord on g; pass the
// output of GreedyMIS or of any dynamic engine.
func GreedyClusters(g *graph.Graph, ord *order.Order, state map[graph.NodeID]Membership) map[graph.NodeID]graph.NodeID {
	cluster := make(map[graph.NodeID]graph.NodeID, len(state))
	for v, m := range state {
		if m == In {
			cluster[v] = v
			continue
		}
		head := graph.None
		g.EachNeighbor(v, func(u graph.NodeID) {
			if state[u] != In {
				return
			}
			if head == graph.None || ord.Less(u, head) {
				head = u
			}
		})
		// Under the MIS invariant a non-MIS node always has an MIS
		// neighbor, so head is never None here; keep the fallback to
		// self so that a corrupted state surfaces as a singleton
		// cluster in tests rather than a panic.
		if head == graph.None {
			head = v
		}
		cluster[v] = head
	}
	return cluster
}

// GreedyColoring runs sequential greedy (first-fit) coloring by increasing
// π: each node takes the smallest color unused by its earlier neighbors.
// Colors are 1-based. It is the random-greedy coloring discussed in the
// paper's Example 3 (§5).
func GreedyColoring(g *graph.Graph, ord *order.Order) map[graph.NodeID]int {
	nodes := sortedByOrder(g, ord)
	color := make(map[graph.NodeID]int, len(nodes))
	for _, v := range nodes {
		used := make(map[int]bool)
		g.EachNeighbor(v, func(u graph.NodeID) {
			if c, ok := color[u]; ok && ord.Less(u, v) {
				used[c] = true
			}
		})
		c := 1
		for used[c] {
			c++
		}
		color[v] = c
	}
	return color
}
