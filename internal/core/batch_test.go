// Package core_test holds the workload-driven core tests: workload now
// imports core (the adaptive adversary folds core.Events), so tests that
// drive core engines with workload generators must live outside the
// package to keep the test build acyclic.
package core_test

import (
	. "dynmis/internal/core"

	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/workload"
)

// TestBatchEqualsSequential is the batch extension's central property:
// applying a batch at once and applying it change-by-change reach the
// same stable state (both equal the greedy MIS on the final graph under
// the same order).
func TestBatchEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 30; trial++ {
		// Identically seeded but separate orders: each engine Drops
		// priorities on deletion, so a live Order cannot be shared.
		seq := NewTemplateWithOrder(order.New(uint64(500 + trial)))
		bat := NewTemplateWithOrder(order.New(uint64(500 + trial)))

		build := workload.GNP(rng, 50, 0.08)
		if _, err := seq.ApplyAll(build); err != nil {
			t.Fatal(err)
		}
		if _, err := bat.ApplyBatch(build); err != nil {
			t.Fatal(err)
		}
		if !EqualStates(seq.State(), bat.State()) {
			t.Fatalf("trial %d: batch build diverged from sequential", trial)
		}

		// Now a random mixed batch on the same live graph.
		batch := workload.RandomChurn(rng, seq.Graph(), workload.DefaultChurn(20))
		if _, err := seq.ApplyAll(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := bat.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		if !EqualStates(seq.State(), bat.State()) {
			t.Fatalf("trial %d: batch churn diverged from sequential", trial)
		}
		if err := bat.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBatchSingleChangeMatchesApply(t *testing.T) {
	a := NewTemplateWithOrder(order.New(77))
	b := NewTemplateWithOrder(order.New(77))
	build := workload.Path(10)
	if _, err := a.ApplyAll(build); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyBatch(build); err != nil {
		t.Fatal(err)
	}
	c := graph.NodeChange(graph.NodeDeleteGraceful, 0)
	ra, err := a.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ApplyBatch([]graph.Change{c})
	if err != nil {
		t.Fatal(err)
	}
	if ra.SSize != rb.SSize || ra.Adjustments != rb.Adjustments || ra.Flips != rb.Flips {
		t.Errorf("single-change batch report %v != Apply report %v", rb, ra)
	}
}

func TestBatchValidationError(t *testing.T) {
	eng := NewTemplate(9)
	if _, err := eng.Apply(graph.NodeChange(graph.NodeInsert, 1)); err != nil {
		t.Fatal(err)
	}
	batch := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.EdgeChange(graph.EdgeInsert, 1, 99), // invalid
	}
	if _, err := eng.ApplyBatch(batch); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

func TestBatchInsertThenDeleteSameNode(t *testing.T) {
	eng := NewTemplate(10)
	if _, err := eng.Apply(graph.NodeChange(graph.NodeInsert, 1)); err != nil {
		t.Fatal(err)
	}
	batch := []graph.Change{
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 2),
	}
	if _, err := eng.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Check(); err != nil {
		t.Fatal(err)
	}
	if eng.Graph().HasNode(2) || !eng.InMIS(1) {
		t.Errorf("unexpected state after self-canceling batch: %v", eng.MIS())
	}
}

// TestBatchAdjustmentsSublinear measures the batching benefit: recovering
// once from k changes adjusts fewer nodes than k separate recoveries in
// total (flip-and-flip-back work is skipped).
func TestBatchAdjustmentsSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical")
	}
	rng := rand.New(rand.NewPCG(41, 42))
	var seqTotal, batTotal int
	for trial := 0; trial < 20; trial++ {
		seq := NewTemplateWithOrder(order.New(uint64(900 + trial)))
		bat := NewTemplateWithOrder(order.New(uint64(900 + trial)))
		build := workload.GNP(rng, 60, 0.08)
		if _, err := seq.ApplyAll(build); err != nil {
			t.Fatal(err)
		}
		if _, err := bat.ApplyBatch(build); err != nil {
			t.Fatal(err)
		}
		batch := workload.EdgeChurn(rng, seq.Graph(), 30)
		rs, err := seq.ApplyAll(batch)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := bat.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += rs.Adjustments
		batTotal += rb.Adjustments
	}
	if batTotal > seqTotal {
		t.Errorf("batched adjustments %d exceed sequential total %d", batTotal, seqTotal)
	}
	t.Logf("adjustments: sequential %d vs batched %d", seqTotal, batTotal)
}
