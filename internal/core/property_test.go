package core_test // see batch_test.go for why these tests are external

import (
	. "dynmis/internal/core"

	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynmis/internal/graph"
	"dynmis/workload"
)

// buildFromBytes deterministically turns fuzz bytes into a small graph
// engine, giving testing/quick structural diversity beyond G(n,p).
func buildFromBytes(seed uint64, edges []uint16, n byte) (*Template, error) {
	nodes := graph.NodeID(n%24) + 2
	eng := NewTemplate(seed)
	for v := graph.NodeID(0); v < nodes; v++ {
		if _, err := eng.Apply(graph.NodeChange(graph.NodeInsert, v)); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		u := graph.NodeID(e>>8) % nodes
		v := graph.NodeID(e&0xff) % nodes
		if u == v || eng.Graph().HasEdge(u, v) {
			continue
		}
		if _, err := eng.Apply(graph.EdgeChange(graph.EdgeInsert, u, v)); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// TestCascadeReportInvariants: for arbitrary graphs and arbitrary single
// changes, the cost report obeys adjustments ≤ |S| ≤ flips and
// steps ≤ flips, and the result matches the oracle.
func TestCascadeReportInvariants(t *testing.T) {
	f := func(seed uint64, edges []uint16, n byte, pick uint16) bool {
		eng, err := buildFromBytes(seed, edges, n)
		if err != nil {
			return false
		}
		g := eng.Graph()
		nodes := g.Nodes()
		var c graph.Change
		switch pick % 4 {
		case 0:
			u := nodes[int(pick/4)%len(nodes)]
			v := nodes[int(pick/7)%len(nodes)]
			if u == v || g.HasEdge(u, v) {
				return true
			}
			c = graph.EdgeChange(graph.EdgeInsert, u, v)
		case 1:
			es := g.Edges()
			if len(es) == 0 {
				return true
			}
			e := es[int(pick/4)%len(es)]
			c = graph.EdgeChange(graph.EdgeDeleteAbrupt, e[0], e[1])
		case 2:
			c = graph.NodeChange(graph.NodeDeleteGraceful, nodes[int(pick/4)%len(nodes)])
		default:
			c = graph.NodeChange(graph.NodeInsert, 1000, nodes[int(pick/4)%len(nodes)])
		}
		rep, err := eng.Apply(c)
		if err != nil {
			return false
		}
		if rep.Adjustments > rep.SSize || rep.SSize > rep.Flips {
			return false
		}
		if rep.Rounds > rep.Flips {
			return false
		}
		want := GreedyMIS(eng.Graph().Clone(), eng.Order())
		return EqualStates(eng.State(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEdgeInvolution: deleting an edge and re-inserting it (same
// priorities) restores the exact previous structure — the template is an
// involution under inverse changes.
func TestEdgeInvolution(t *testing.T) {
	f := func(seed uint64, edges []uint16, n byte, pick uint16) bool {
		eng, err := buildFromBytes(seed, edges, n)
		if err != nil {
			return false
		}
		es := eng.Graph().Edges()
		if len(es) == 0 {
			return true
		}
		before := eng.State()
		e := es[int(pick)%len(es)]
		if _, err := eng.Apply(graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])); err != nil {
			return false
		}
		if _, err := eng.Apply(graph.EdgeChange(graph.EdgeInsert, e[0], e[1])); err != nil {
			return false
		}
		return EqualStates(before, eng.State())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBatchPropertyEqualsSequential drives random batches through the
// quick harness: batched and sequential application agree on the final
// structure for arbitrary inputs.
func TestBatchPropertyEqualsSequential(t *testing.T) {
	f := func(seed uint64, edges []uint16, n byte, steps byte) bool {
		a, err := buildFromBytes(seed, edges, n)
		if err != nil {
			return false
		}
		b, err := buildFromBytes(seed, edges, n)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		batch := workload.RandomChurn(rng, a.Graph(), workload.DefaultChurn(int(steps%24)+1))
		if _, err := a.ApplyAll(batch); err != nil {
			return false
		}
		if _, err := b.ApplyBatch(batch); err != nil {
			return false
		}
		return EqualStates(a.State(), b.State())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMISOfSortedAndComplete: MISOf returns exactly the In nodes, sorted.
func TestMISOfSortedAndComplete(t *testing.T) {
	f := func(bits []bool) bool {
		state := make(map[graph.NodeID]Membership, len(bits))
		want := 0
		for i, b := range bits {
			state[graph.NodeID(i)] = Membership(b)
			if b {
				want++
			}
		}
		mis := MISOf(state)
		if len(mis) != want {
			return false
		}
		for i := 1; i < len(mis); i++ {
			if mis[i-1] >= mis[i] {
				return false
			}
		}
		for _, v := range mis {
			if state[v] != In {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
