package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Template is the model-level engine of Algorithm 1 (§3): it maintains the
// MIS invariant under topology changes by simulating the influence-set
// cascade. It is not tied to a computation model; the distributed engines
// realize the same cascade with messages. Its outputs define the ground
// truth the distributed engines are differentially tested against.
//
// The cascade is the synchronous fixpoint reading of Eq. (1): starting from
// the single node v* whose invariant the change may violate, repeatedly
// flip — simultaneously — every node whose state disagrees with
// ShouldBeIn under the current states. Violations propagate strictly
// upward in π (a node's invariant depends only on earlier neighbors), so
// the process terminates; the set of distinct flipped nodes is S and
// E[|S|] ≤ 1 over the random order (Theorem 1).
type Template struct {
	g     *graph.Graph
	ord   *order.Order
	state map[graph.NodeID]Membership
	steps int // safety counter for the last cascade
	feed  Feed
}

// Template implements the full engine surface plus the persistence
// capability.
var (
	_ Engine      = (*Template)(nil)
	_ Snapshotter = (*Template)(nil)
)

// NewTemplate returns an engine over an empty graph with a fresh random
// order seeded by seed.
func NewTemplate(seed uint64) *Template {
	return NewTemplateWithOrder(order.New(seed))
}

// NewTemplateWithOrder returns an engine using a caller-supplied order,
// allowing several engines (or an oracle) to share the same π.
func NewTemplateWithOrder(ord *order.Order) *Template {
	return &Template{
		g:     graph.New(),
		ord:   ord,
		state: make(map[graph.NodeID]Membership),
	}
}

// Graph exposes the engine's live graph. Callers must treat it as
// read-only; mutate only through Apply.
func (t *Template) Graph() *graph.Graph { return t.g }

// Order exposes the engine's node order.
func (t *Template) Order() *order.Order { return t.ord }

// InMIS reports whether v is currently in the maintained MIS.
func (t *Template) InMIS(v graph.NodeID) bool { return t.state[v] == In }

// MIS returns the sorted current MIS.
func (t *Template) MIS() []graph.NodeID { return MISOf(t.state) }

// State returns a copy of the full membership map.
func (t *Template) State() map[graph.NodeID]Membership {
	out := make(map[graph.NodeID]Membership, len(t.state))
	for v, m := range t.state {
		out[v] = m
	}
	return out
}

// Check verifies the MIS invariant on the current configuration.
func (t *Template) Check() error { return CheckInvariant(t.g, t.ord, t.state) }

// Subscribe registers a change-feed callback; see Feed.
func (t *Template) Subscribe(fn func(Event)) { t.feed.Subscribe(fn) }

// Apply performs one topology change and runs the recovery cascade,
// returning the cost report. On validation error the engine is unchanged.
func (t *Template) Apply(c graph.Change) (Report, error) {
	// Validate before the O(n) state snapshot so rejected changes stay
	// cheap; StageChange re-validates, which is redundant but harmless.
	if err := c.Validate(t.g); err != nil {
		return Report{}, err
	}
	before := t.State()

	var rep Report
	flipped := make(map[graph.NodeID]int) // node -> flip count

	staged, err := StageChange(t.g, t.ord, MapState(t.state), c)
	if err != nil {
		return Report{}, err
	}
	if staged.PreFlipped != graph.None {
		flipped[staged.PreFlipped] = 1
	}

	steps, err := t.cascade(staged.Frontier, flipped)
	if err != nil {
		return Report{}, err
	}
	t.steps = steps

	rep.Rounds = steps
	rep.SSize = len(flipped)
	for _, n := range flipped {
		rep.Flips += n
	}
	rep.Adjustments = len(DiffStates(before, t.state))
	t.feed.EmitDiff(before, t.state)
	return rep, nil
}

// cascade runs the synchronous flip fixpoint starting from the given
// candidate set, recording flips. It returns the number of synchronous
// steps in which at least one node flipped.
func (t *Template) cascade(candidates []graph.NodeID, flipped map[graph.NodeID]int) (int, error) {
	steps := 0
	limit := 2*t.g.NodeCount() + 10
	for len(candidates) > 0 {
		var violated []graph.NodeID
		seen := make(map[graph.NodeID]struct{}, len(candidates))
		for _, u := range candidates {
			if _, dup := seen[u]; dup {
				continue
			}
			seen[u] = struct{}{}
			if !t.g.HasNode(u) {
				continue
			}
			if t.state[u] != ShouldBeIn(t.g, t.ord, t.state, u) {
				violated = append(violated, u)
			}
		}
		if len(violated) == 0 {
			return steps, nil
		}
		steps++
		if steps > limit {
			return steps, fmt.Errorf("core: cascade did not converge after %d steps", steps)
		}
		// Flip simultaneously: compute targets first, then commit.
		targets := make([]Membership, len(violated))
		for i, u := range violated {
			targets[i] = ShouldBeIn(t.g, t.ord, t.state, u)
		}
		for i, u := range violated {
			t.state[u] = targets[i]
			flipped[u]++
		}
		// New violations can only appear at nodes ordered after a node
		// that just flipped (the invariant looks only at earlier
		// neighbors).
		candidates = candidates[:0]
		for _, u := range violated {
			t.g.EachNeighbor(u, func(w graph.NodeID) {
				if t.ord.Less(u, w) {
					candidates = append(candidates, w)
				}
			})
		}
	}
	return steps, nil
}

// LastCascadeSteps returns the step count of the most recent Apply; it is
// exposed for tests exercising the §3 path example.
func (t *Template) LastCascadeSteps() int { return t.steps }

// ApplyAll applies a sequence of changes, accumulating reports. It stops at
// the first error.
func (t *Template) ApplyAll(cs []graph.Change) (Report, error) {
	var total Report
	for i, c := range cs {
		rep, err := t.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d (%s): %w", i, c, err)
		}
		total.Add(rep)
	}
	return total, nil
}
