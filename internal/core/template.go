package core

import (
	"fmt"

	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
)

// Template is the model-level engine of Algorithm 1 (§3): it maintains the
// MIS invariant under topology changes by simulating the influence-set
// cascade. It is not tied to a computation model; the distributed engines
// realize the same cascade with messages. Its outputs define the ground
// truth the distributed engines are differentially tested against.
//
// The cascade is the synchronous fixpoint reading of Eq. (1): starting from
// the single node v* whose invariant the change may violate, repeatedly
// flip — simultaneously — every node whose state disagrees with
// ShouldBeIn under the current states. Violations propagate strictly
// upward in π (a node's invariant depends only on earlier neighbors), so
// the process terminates; the set of distinct flipped nodes is S and
// E[|S|] ≤ 1 over the random order (Theorem 1).
//
// Storage-wise the engine is arena-backed: memberships live in the graph's
// dense state lane (the State view) and priorities are written through into
// the graph's priority lane by the attached Order, so the cascade inner
// loop — invariant evaluation, flipping, frontier expansion — is pure array
// walks over slot indices with no hashing and no steady-state allocation.
// Per-update cost accounting is O(touched): only the nodes a window staged
// or flipped are examined, never the whole state (Theorem 1 makes that set
// expected-constant per change).
type Template struct {
	g     *graph.Graph
	ord   *order.Order
	state State
	steps int // safety counter for the last cascade
	feed  Feed
	coll  *metrics.Collector // nil while instrumentation is disabled

	// Slot-indexed cascade scratch, reused across windows. seen carries a
	// per-step epoch stamp (deduplicates candidates without a map);
	// flipCnt/flipped record the cascade's flips sparsely so resetting is
	// O(|S|), not O(n).
	seen     []uint64
	epoch    uint64
	flipCnt  []int32
	flipped  []int32
	cand     []int32
	next     []int32
	violated []int32

	// Window scratch.
	one      [1]graph.Change
	frontier []graph.NodeID
	preFlips []graph.NodeID
	touched  map[graph.NodeID]Touched
	flips    map[graph.NodeID]int
}

// Template implements the full engine surface plus the persistence and
// instrumentation capabilities.
var (
	_ Engine         = (*Template)(nil)
	_ Snapshotter    = (*Template)(nil)
	_ Instrument     = (*Template)(nil)
	_ MemoryReporter = (*Template)(nil)
)

// NewTemplate returns an engine over an empty graph with a fresh random
// order seeded by seed.
func NewTemplate(seed uint64) *Template {
	return NewTemplateWithOrder(order.New(seed))
}

// NewTemplateWithOrder returns an engine using a caller-supplied order,
// allowing several engines (or an oracle) to share the same π.
func NewTemplateWithOrder(ord *order.Order) *Template {
	g := graph.New()
	ord.Attach(g)
	return &Template{
		g:       g,
		ord:     ord,
		state:   NewState(g),
		touched: make(map[graph.NodeID]Touched),
		flips:   make(map[graph.NodeID]int),
	}
}

// Graph exposes the engine's live graph. Callers must treat it as
// read-only; mutate only through Apply.
func (t *Template) Graph() *graph.Graph { return t.g }

// Order exposes the engine's node order.
func (t *Template) Order() *order.Order { return t.ord }

// InMIS reports whether v is currently in the maintained MIS.
func (t *Template) InMIS(v graph.NodeID) bool { return t.state.InMIS(v) }

// MIS returns the sorted current MIS.
func (t *Template) MIS() []graph.NodeID { return t.state.MIS() }

// State returns a copy of the full membership map.
func (t *Template) State() map[graph.NodeID]Membership { return t.state.Map() }

// View returns the live dense membership view (read-only for callers).
func (t *Template) View() State { return t.state }

// Check verifies the MIS invariant on the current configuration.
func (t *Template) Check() error { return CheckInvariantOn(t.g, t.ord, t.state) }

// Subscribe registers a change-feed callback; see Feed.
func (t *Template) Subscribe(fn func(Event)) { t.feed.Subscribe(fn) }

// Instrument attaches a complexity collector (nil detaches); see the
// Instrument capability.
func (t *Template) Instrument(c *metrics.Collector) { t.coll = c }

// Collector returns the attached collector, or nil.
func (t *Template) Collector() *metrics.Collector { return t.coll }

// Apply performs one topology change and runs the recovery cascade,
// returning the cost report. On validation error the engine is unchanged.
func (t *Template) Apply(c graph.Change) (Report, error) {
	t.one[0] = c
	return t.applyWindow(t.one[:], false)
}

// applyWindow is the shared application path of Apply (a window of one)
// and ApplyBatch: stage every change, run a single recovery cascade over
// the combined damage, then account adjustments and the feed delta from
// the touched set alone.
//
// On a staging error the already-staged prefix's mutations remain applied,
// and the recovery cascade runs over the prefix's damage (also publishing
// its feed delta) before the error returns: the engine stays consistent
// and usable. For a window of one nothing has been staged when that
// happens, so Apply's contract — unchanged engine on validation error —
// holds.
func (t *Template) applyWindow(cs []graph.Change, batch bool) (Report, error) {
	clear(t.touched)
	t.frontier = t.frontier[:0]
	t.preFlips = t.preFlips[:0]

	var stageErr error
	for i, c := range cs {
		// Capture the pre-window configuration of the node a node-change
		// touches before staging mutates it (first touch wins). Edge
		// changes mutate no membership during staging; their endpoints are
		// captured by the cascade's flip records if they flip.
		if !c.Kind.IsEdge() {
			if _, seen := t.touched[c.Node]; !seen {
				t.touched[c.Node] = Touched{Present: t.g.HasNode(c.Node), M: t.state.Get(c.Node)}
			}
		}
		staged, err := StageChange(t.g, t.ord, t.state, c)
		if err != nil {
			if batch {
				err = fmt.Errorf("batch change %d: %w", i, err)
			}
			stageErr = err
			break
		}
		if staged.PreFlipped != graph.None {
			t.preFlips = append(t.preFlips, staged.PreFlipped)
		}
		t.frontier = append(t.frontier, staged.Frontier...)
	}

	steps, cerr := t.cascade(t.frontier)
	if cerr != nil {
		if stageErr != nil {
			return Report{}, fmt.Errorf("%w (and prefix recovery failed: %v)", stageErr, cerr)
		}
		return Report{}, cerr
	}
	if stageErr == nil {
		// Record the step count only for successful windows: a rejected
		// Apply stages nothing and must leave the engine — including
		// LastCascadeSteps — unchanged.
		t.steps = steps
	}

	// Fold the cascade's flip records into the cost account and the
	// touched set. A cascade flip only ever toggles, so a node's
	// pre-cascade membership is its current one complemented iff its flip
	// count is odd.
	clear(t.flips)
	for _, v := range t.preFlips {
		t.flips[v] = 1
	}
	for _, s := range t.flipped {
		v := t.g.IDAt(int(s))
		t.flips[v] += int(t.flipCnt[s])
		if _, seen := t.touched[v]; !seen {
			m := t.state.At(int(s))
			if t.flipCnt[s]%2 == 1 {
				m = !m
			}
			t.touched[v] = Touched{Present: true, M: m}
		}
	}

	adj, evs := DeltaFromTouched(t.g, t.state, t.touched, t.feed.Active())
	t.feed.PublishSorted(evs)
	if stageErr != nil {
		return Report{}, stageErr
	}

	var rep Report
	rep.Rounds = steps
	rep.SSize = len(t.flips)
	for _, n := range t.flips {
		rep.Flips += n
	}
	rep.Adjustments = adj

	// Instrumentation folds quantities already computed for the Report
	// and the O(touched) accounting — nothing is measured twice, and a
	// detached collector costs exactly this nil check.
	if mc := t.coll; mc != nil {
		mc.Updates += uint64(len(cs))
		mc.Windows++
		mc.Adjustments += uint64(adj)
		mc.Influence += uint64(rep.SSize)
		mc.Flips += uint64(rep.Flips)
		mc.CascadeSteps += uint64(steps)
		mc.TouchedSlots += uint64(len(t.touched))
	}
	return rep, nil
}

// cascade runs the synchronous flip fixpoint starting from the given
// candidate set, recording flips in the slot-indexed scratch. It returns
// the number of synchronous steps in which at least one node flipped.
func (t *Template) cascade(frontier []graph.NodeID) (int, error) {
	// Reset the previous window's flip records sparsely, then make sure
	// the slot-indexed scratch covers the arena.
	for _, s := range t.flipped {
		t.flipCnt[s] = 0
	}
	t.flipped = t.flipped[:0]
	if n := t.g.Slots(); len(t.seen) < n {
		t.seen = append(t.seen, make([]uint64, n-len(t.seen))...)
		t.flipCnt = append(t.flipCnt, make([]int32, n-len(t.flipCnt))...)
	}

	cand, next, violated := t.cand[:0], t.next[:0], t.violated[:0]
	defer func() { t.cand, t.next, t.violated = cand[:0], next[:0], violated[:0] }()
	for _, v := range frontier {
		// Frontier entries staged away later in the same window no longer
		// resolve; their former neighbors were seeded separately.
		if i, ok := t.g.Index(v); ok {
			cand = append(cand, int32(i))
		}
	}

	steps := 0
	limit := 2*t.g.NodeCount() + 10
	for len(cand) > 0 {
		t.epoch++
		violated = violated[:0]
		for _, s := range cand {
			if t.seen[s] == t.epoch {
				continue
			}
			t.seen[s] = t.epoch
			if t.state.At(int(s)) != t.shouldBeInAt(int(s)) {
				violated = append(violated, s)
			}
		}
		if len(violated) == 0 {
			break
		}
		steps++
		if steps > limit {
			return steps, fmt.Errorf("core: cascade did not converge after %d steps", steps)
		}
		// Flip simultaneously. A violated node's target is always the
		// complement of its current state (membership is binary), so the
		// simultaneous commit is a plain toggle.
		for _, s := range violated {
			t.state.SetAt(int(s), !t.state.At(int(s)))
			if t.flipCnt[s] == 0 {
				t.flipped = append(t.flipped, s)
			}
			t.flipCnt[s]++
		}
		// New violations can only appear at nodes ordered after a node
		// that just flipped (the invariant looks only at earlier
		// neighbors).
		next = next[:0]
		for _, s := range violated {
			for _, nb := range t.g.NeighborSlots(int(s)) {
				if t.g.LessAt(int(s), int(nb)) {
					next = append(next, nb)
				}
			}
		}
		cand, next = next, cand
	}
	return steps, nil
}

// shouldBeInAt is ShouldBeIn in slot space: an array walk over the
// neighbor slots, the state lane and the priority lane.
func (t *Template) shouldBeInAt(i int) Membership {
	for _, nb := range t.g.NeighborSlots(i) {
		if t.state.At(int(nb)) == In && t.g.LessAt(int(nb), i) {
			return Out
		}
	}
	return In
}

// LastCascadeSteps returns the step count of the most recent successful
// Apply or ApplyBatch (failed applications leave it unchanged); it is
// exposed for tests exercising the §3 path example.
func (t *Template) LastCascadeSteps() int { return t.steps }

// ApplyAll applies a sequence of changes, accumulating reports. It stops at
// the first error.
func (t *Template) ApplyAll(cs []graph.Change) (Report, error) {
	var total Report
	for i, c := range cs {
		rep, err := t.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d (%s): %w", i, c, err)
		}
		total.Add(rep)
	}
	return total, nil
}
