package core

import (
	"fmt"
	"math"
	"testing"

	"dynmis/internal/graph"
)

// historyA builds the path 0-1-2-3 the straightforward way.
func historyA() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 0),
		graph.NodeChange(graph.NodeInsert, 1, 0),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
	}
}

// historyB reaches the same path through a devious route: extra nodes and
// edges that are later removed, insertions in a different order, and an
// abrupt deletion. An adversary choosing this history gains nothing.
func historyB() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 3),
		graph.NodeChange(graph.NodeInsert, 99),
		graph.NodeChange(graph.NodeInsert, 1, 3, 99),
		graph.NodeChange(graph.NodeInsert, 0, 99),
		graph.NodeChange(graph.NodeInsert, 2, 0, 1, 3, 99),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 3),
		graph.EdgeChange(graph.EdgeDeleteAbrupt, 0, 2),
		graph.NodeChange(graph.NodeDeleteAbrupt, 99),
		graph.EdgeChange(graph.EdgeInsert, 0, 1),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 2, 1),
		graph.EdgeChange(graph.EdgeInsert, 1, 2),
	}
}

func misKey(eng *Template) string {
	return fmt.Sprint(eng.MIS())
}

// TestHistoryIndependenceDistribution verifies Definition 14 in its
// distributional form: over fresh random seeds, the distribution of the
// output MIS depends only on the final graph, not on the topology-change
// history that produced it. The two histories above both end at the path
// 0-1-2-3; their output distributions must match (small total-variation
// distance) and must match the closed-form random-greedy distribution.
func TestHistoryIndependenceDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical")
	}
	const runs = 6000
	countA := map[string]int{}
	countB := map[string]int{}
	for s := 0; s < runs; s++ {
		a := NewTemplate(uint64(s))
		if _, err := a.ApplyAll(historyA()); err != nil {
			t.Fatal(err)
		}
		countA[misKey(a)]++

		b := NewTemplate(uint64(s) + 1_000_000)
		if _, err := b.ApplyAll(historyB()); err != nil {
			t.Fatal(err)
		}
		countB[misKey(b)]++
	}

	// Sanity: both histories end at the same graph.
	a := NewTemplate(1)
	if _, err := a.ApplyAll(historyA()); err != nil {
		t.Fatal(err)
	}
	b := NewTemplate(1)
	if _, err := b.ApplyAll(historyB()); err != nil {
		t.Fatal(err)
	}
	if !a.Graph().Equal(b.Graph()) {
		t.Fatal("test bug: histories end at different graphs")
	}

	// Total variation distance between the two empirical distributions.
	keys := map[string]bool{}
	for k := range countA {
		keys[k] = true
	}
	for k := range countB {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		tv += math.Abs(float64(countA[k])-float64(countB[k])) / runs
	}
	tv /= 2
	if tv > 0.03 {
		t.Errorf("output distributions differ by TV distance %.4f:\nA=%v\nB=%v", tv, countA, countB)
	}

	// Closed form for the path 0-1-2-3 under a uniform random order:
	// exactly three MIS outcomes are possible. {0,2} requires the order
	// to pick 0 before 1 and 2 before 3 "greedily"; enumerating the 24
	// permutations gives P[{0,2}] = 1/3, P[{0,3}] = 1/4 + ... — rather
	// than hand-derive, compare against direct greedy sampling.
	ref := map[string]int{}
	for s := 0; s < runs; s++ {
		eng := NewTemplate(uint64(s) + 9_000_000)
		if _, err := eng.ApplyAll(historyA()); err != nil {
			t.Fatal(err)
		}
		// A third independent sample set, drawn like A but with fresh
		// seeds, as the reference.
		ref[misKey(eng)]++
	}
	tvRef := 0.0
	for k := range keys {
		tvRef += math.Abs(float64(countB[k])-float64(ref[k])) / runs
	}
	tvRef /= 2
	if tvRef > 0.03 {
		t.Errorf("history-B distribution differs from fresh reference: TV %.4f", tvRef)
	}
	t.Logf("TV(A,B) = %.4f, TV(B,ref) = %.4f over %d runs; support %d outcomes", tv, tvRef, runs, len(keys))
}

// TestHistoryIndependencePerSeed is the exact per-seed form used
// throughout the test suite: with the same priorities, any history ending
// at graph G yields exactly GreedyMIS(G, π).
func TestHistoryIndependencePerSeed(t *testing.T) {
	for s := uint64(0); s < 50; s++ {
		eng := NewTemplate(s)
		if _, err := eng.ApplyAll(historyB()); err != nil {
			t.Fatal(err)
		}
		want := GreedyMIS(eng.Graph().Clone(), eng.Order())
		if !EqualStates(eng.State(), want) {
			t.Fatalf("seed %d: engine MIS %v != greedy %v", s, eng.MIS(), MISOf(want))
		}
	}
}
