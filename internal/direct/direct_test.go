package direct

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
)

func apply(t *testing.T, e *Engine, c graph.Change) core.Report {
	t.Helper()
	rep, err := e.Apply(c)
	if err != nil {
		t.Fatalf("Apply(%s): %v", c, err)
	}
	return rep
}

func checkOracle(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("direct state diverged from greedy oracle:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

func TestDirectBasics(t *testing.T) {
	e := New(1)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	if !e.InMIS(1) {
		t.Fatal("isolated node must join")
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 2))
	checkOracle(t, e)
	apply(t, e, graph.EdgeChange(graph.EdgeDeleteAbrupt, 1, 2))
	checkOracle(t, e)
	apply(t, e, graph.NodeChange(graph.NodeDeleteGraceful, 3))
	checkOracle(t, e)
}

// TestDirectMatchesTemplate runs the same change sequence through the
// model-level template and the message-passing direct engine under a
// shared order: the influence sets, flip counts and adjustments must agree
// exactly — the direct engine is the template, realized with messages.
func TestDirectMatchesTemplate(t *testing.T) {
	ord := order.New(50)
	tpl := core.NewTemplateWithOrder(ord)
	eng := NewWithOrder(ord)
	rng := rand.New(rand.NewPCG(4, 5))

	next := graph.NodeID(0)
	present := map[graph.NodeID]bool{}
	randPresent := func() graph.NodeID {
		i := rng.IntN(len(present))
		for v := range present {
			if i == 0 {
				return v
			}
			i--
		}
		panic("unreachable")
	}

	for step := 0; step < 400; step++ {
		g := tpl.Graph()
		var c graph.Change
		switch op := rng.IntN(10); {
		case op < 3:
			var nbrs []graph.NodeID
			for v := range present {
				if rng.Float64() < 0.12 {
					nbrs = append(nbrs, v)
				}
			}
			c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
			present[next] = true
			next++
		case op < 5:
			if len(present) == 0 {
				continue
			}
			v := randPresent()
			kind := graph.NodeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.NodeDeleteAbrupt
			}
			c = graph.NodeChange(kind, v)
			delete(present, v)
		case op < 8:
			if len(present) < 2 {
				continue
			}
			u, v := randPresent(), randPresent()
			if u == v || g.HasEdge(u, v) {
				continue
			}
			c = graph.EdgeChange(graph.EdgeInsert, u, v)
		default:
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			c = graph.EdgeChange(graph.EdgeDeleteAbrupt, e[0], e[1])
		}

		trep, err := tpl.Apply(c)
		if err != nil {
			t.Fatalf("step %d: template: %v", step, err)
		}
		drep, err := eng.Apply(c)
		if err != nil {
			t.Fatalf("step %d: direct: %v", step, err)
		}
		if trep.SSize != drep.SSize || trep.Flips != drep.Flips || trep.Adjustments != drep.Adjustments {
			t.Fatalf("step %d (%s): template %v vs direct %v", step, c, trep, drep)
		}
		if !core.EqualStates(tpl.State(), eng.State()) {
			t.Fatalf("step %d: states diverged", step)
		}
	}
	checkOracle(t, eng)
}

func TestDirectMuteUnmute(t *testing.T) {
	e := New(7)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 1, 2))
	before := e.State()
	apply(t, e, graph.NodeChange(graph.NodeMute, 3))
	checkOracle(t, e)
	apply(t, e, graph.NodeChange(graph.NodeUnmute, 3, 1, 2))
	checkOracle(t, e)
	if !core.EqualStates(before, e.State()) {
		t.Error("mute/unmute round trip changed the MIS")
	}
}

func TestDirectQuadraticBroadcastGadget(t *testing.T) {
	// The §3 path example: the direct algorithm flips u2 twice (6 flips
	// for |S| = 5), whereas Algorithm 2 would flip each node once. This
	// is the seed of the |S|² broadcast blow-up motivating Algorithm 2.
	e := New(0)
	ord := e.Order()
	for i, v := range []graph.NodeID{0, 1, 2, 3, 4, 5} {
		ord.Set(v, order.Priority(i+1))
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, 0))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 2))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 4, 3))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 5, 1, 4))
	rep := apply(t, e, graph.EdgeChange(graph.EdgeInsert, 0, 1))
	checkOracle(t, e)
	if rep.SSize != 5 || rep.Flips != 6 {
		t.Errorf("got |S|=%d flips=%d, want 5 and 6", rep.SSize, rep.Flips)
	}
}

func asyncApply(t *testing.T, e *AsyncEngine, c graph.Change) core.Report {
	t.Helper()
	rep, err := e.Apply(c)
	if err != nil {
		t.Fatalf("Apply(%s): %v", c, err)
	}
	return rep
}

func checkAsyncOracle(t *testing.T, e *AsyncEngine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("async state diverged from greedy oracle:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

// TestAsyncSchedulers drives the asynchronous engine under three
// adversarial delivery orders; the final structure must always match the
// greedy oracle (history independence does not depend on scheduling).
func TestAsyncSchedulers(t *testing.T) {
	scheds := map[string]simnet.Scheduler{
		"fifo":   simnet.FIFOScheduler{},
		"lifo":   simnet.LIFOScheduler{},
		"random": &simnet.RandomScheduler{Rng: rand.New(rand.NewPCG(9, 9))},
	}
	for name, sched := range scheds {
		t.Run(name, func(t *testing.T) {
			e := NewAsync(33, sched)
			rng := rand.New(rand.NewPCG(6, 7))
			next := graph.NodeID(0)
			present := map[graph.NodeID]bool{}
			randPresent := func() graph.NodeID {
				i := rng.IntN(len(present))
				for v := range present {
					if i == 0 {
						return v
					}
					i--
				}
				panic("unreachable")
			}
			for step := 0; step < 250; step++ {
				g := e.Graph()
				var c graph.Change
				switch op := rng.IntN(10); {
				case op < 3:
					var nbrs []graph.NodeID
					for v := range present {
						if rng.Float64() < 0.12 {
							nbrs = append(nbrs, v)
						}
					}
					c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
					present[next] = true
					next++
				case op < 5:
					if len(present) == 0 {
						continue
					}
					v := randPresent()
					kind := graph.NodeDeleteGraceful
					if rng.IntN(2) == 0 {
						kind = graph.NodeDeleteAbrupt
					}
					c = graph.NodeChange(kind, v)
					delete(present, v)
				case op < 8:
					if len(present) < 2 {
						continue
					}
					u, v := randPresent(), randPresent()
					if u == v || g.HasEdge(u, v) {
						continue
					}
					c = graph.EdgeChange(graph.EdgeInsert, u, v)
				default:
					es := g.Edges()
					if len(es) == 0 {
						continue
					}
					edge := es[rng.IntN(len(es))]
					c = graph.EdgeChange(graph.EdgeDeleteAbrupt, edge[0], edge[1])
				}
				asyncApply(t, e, c)
				checkAsyncOracle(t, e)
			}
		})
	}
}

func TestAsyncCausalDepthSmall(t *testing.T) {
	// Corollary 6: the expected asynchronous round complexity (longest
	// causal chain) is constant. Measure the mean over random edge
	// changes.
	e := NewAsync(11, simnet.FIFOScheduler{})
	rng := rand.New(rand.NewPCG(14, 15))
	var nodes []graph.NodeID
	for v := graph.NodeID(0); v < 60; v++ {
		var nbrs []graph.NodeID
		for _, u := range nodes {
			if rng.Float64() < 0.08 {
				nbrs = append(nbrs, u)
			}
		}
		asyncApply(t, e, graph.NodeChange(graph.NodeInsert, v, nbrs...))
		nodes = append(nodes, v)
	}
	total, trials := 0, 0
	for i := 0; i < 80; i++ {
		g := e.Graph()
		if i%2 == 0 {
			es := g.Edges()
			edge := es[rng.IntN(len(es))]
			rep := asyncApply(t, e, graph.EdgeChange(graph.EdgeDeleteAbrupt, edge[0], edge[1]))
			total += rep.CausalDepth
		} else {
			u, v := nodes[rng.IntN(len(nodes))], nodes[rng.IntN(len(nodes))]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			rep := asyncApply(t, e, graph.EdgeChange(graph.EdgeInsert, u, v))
			total += rep.CausalDepth
		}
		trials++
	}
	mean := float64(total) / float64(trials)
	if mean > 3.5 {
		t.Errorf("mean causal depth = %.2f, want small constant", mean)
	}
	t.Logf("mean causal depth %.2f over %d changes", mean, trials)
}

func TestAsyncRejectsMute(t *testing.T) {
	e := NewAsync(1, nil)
	asyncApply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	if _, err := e.Apply(graph.NodeChange(graph.NodeMute, 1)); err == nil {
		t.Fatal("mute should be unsupported in the async engine")
	}
}

func TestDirectAccessorsAndApplyAll(t *testing.T) {
	e := New(20)
	if _, err := e.ApplyAll([]graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.MIS(); len(got) != 1 {
		t.Errorf("MIS = %v", got)
	}
	if e.InMIS(1) == e.InMIS(2) {
		t.Error("exactly one endpoint should be in the MIS")
	}
	if _, err := e.ApplyAll([]graph.Change{graph.NodeChange(graph.NodeInsert, 1)}); err == nil {
		t.Error("ApplyAll accepted a duplicate insert")
	}
}

func TestAsyncAccessorsAndApplyAll(t *testing.T) {
	e := NewAsync(21, nil)
	if _, err := e.ApplyAll([]graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.MIS(); len(got) == 0 {
		t.Errorf("MIS = %v", got)
	}
	if e.InMIS(99) {
		t.Error("absent node reported in MIS")
	}
	if e.Order() == nil || e.Graph().NodeCount() != 3 {
		t.Error("accessors inconsistent")
	}
	if _, err := e.ApplyAll([]graph.Change{graph.EdgeChange(graph.EdgeInsert, 1, 99)}); err == nil {
		t.Error("ApplyAll accepted an invalid change")
	}
}

// TestEventPayloadsAreFree documents the zero-bit cost of local detection
// events: they model physical-layer observation, not communication.
func TestEventPayloadsAreFree(t *testing.T) {
	events := []interface{ Bits() int }{
		evEdgeAttached{}, evEdgeDown{}, evNodeGone{}, evRetire{}, evInserted{}, evUnmute{},
	}
	for _, ev := range events {
		if ev.Bits() != 0 {
			t.Errorf("%T costs %d bits, want 0", ev, ev.Bits())
		}
	}
	if (stateMsg{}).Bits() != 1 {
		t.Error("direct state messages should cost exactly one bit")
	}
	if (helloMsg{}).Bits() <= 1 || (retireMsg{}).Bits() != 1 {
		t.Error("payload sizes inconsistent")
	}
}
