package direct

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/simnet"
	"dynmis/workload"
)

// Batch staging under every scheduler must quiesce at the same structure
// as sequential application — the §6 multi-failure extension in the
// asynchronous model.
func TestAsyncApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	build := workload.GNP(rng, 60, 0.06)
	churn := workload.RandomChurn(rng, workload.BuildGraph(build), workload.ChurnOptions{
		Steps:            120,
		NodeInsertWeight: 1,
		EdgeInsertWeight: 2,
		EdgeDeleteWeight: 2,
		// Node deletions are left out: a batch may not reference a
		// gracefully deleted node, and RandomChurn does not know that
		// constraint. Node deletion recovery is covered by the
		// per-change async tests.
		AbruptFraction: 0.5,
		AttachProb:     0.05,
		MaxAttach:      8,
	})

	for _, tc := range []struct {
		name  string
		sched simnet.Scheduler
	}{
		{"fifo", simnet.FIFOScheduler{}},
		{"lifo", simnet.LIFOScheduler{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqEng := NewAsync(33, nil)
			if _, err := seqEng.ApplyAll(append(append([]graph.Change{}, build...), churn...)); err != nil {
				t.Fatal(err)
			}

			batchEng := NewAsync(33, tc.sched)
			if _, err := batchEng.ApplyBatch(build); err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(churn); lo += 16 {
				hi := min(lo+16, len(churn))
				if _, err := batchEng.ApplyBatch(churn[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := batchEng.Check(); err != nil {
				t.Fatal(err)
			}
			if !core.EqualStates(seqEng.State(), batchEng.State()) {
				t.Fatal("batched async state diverged from sequential application")
			}
		})
	}
}

// A batch change referencing a node gracefully deleted earlier in the
// same batch must be rejected: the node is still visible (it departs only
// at drain), so plain validation would wire new edges to a retiring proc.
func TestAsyncApplyBatchRejectsRetiringReference(t *testing.T) {
	for _, bad := range [][]graph.Change{
		{graph.NodeChange(graph.NodeDeleteGraceful, 1), graph.NodeChange(graph.NodeInsert, 9, 1)},
		{graph.NodeChange(graph.NodeDeleteGraceful, 1), graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2)},
		{graph.NodeChange(graph.NodeDeleteGraceful, 1), graph.NodeChange(graph.NodeDeleteAbrupt, 1)},
	} {
		// Fresh engine per case: a failed batch leaves staged events
		// undrained, so the engine is not reusable afterwards (the same
		// contract as a failed Apply).
		e := NewAsync(2, nil)
		if _, err := e.ApplyBatch([]graph.Change{
			graph.NodeChange(graph.NodeInsert, 1),
			graph.NodeChange(graph.NodeInsert, 2, 1),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ApplyBatch(bad); !errors.Is(err, graph.ErrInvalidChange) {
			t.Fatalf("batch %v: err = %v, want ErrInvalidChange", bad, err)
		}
	}
}

func TestAsyncApplyBatchRejectsMute(t *testing.T) {
	e := NewAsync(1, nil)
	if _, err := e.ApplyBatch([]graph.Change{graph.NodeChange(graph.NodeInsert, 1)}); err != nil {
		t.Fatal(err)
	}
	_, err := e.ApplyBatch([]graph.Change{graph.NodeChange(graph.NodeMute, 1)})
	if !errors.Is(err, ErrAsyncUnsupported) {
		t.Fatalf("err = %v, want ErrAsyncUnsupported", err)
	}
}

// TestAsyncApplyBatchErrorRecoversPrefix: a mid-batch validation error
// must not strand the already-staged prefix — in particular a graceful
// deletion staged before the failing change completes its departure, and
// the engine stays consistent and usable.
func TestAsyncApplyBatchErrorRecoversPrefix(t *testing.T) {
	e := NewAsync(5, nil)
	if _, err := e.ApplyBatch([]graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
	}); err != nil {
		t.Fatal(err)
	}

	_, err := e.ApplyBatch([]graph.Change{
		graph.NodeChange(graph.NodeDeleteGraceful, 1),
		graph.EdgeChange(graph.EdgeInsert, 2, 99), // invalid: 99 absent
	})
	if !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("err = %v, want ErrInvalidChange", err)
	}
	if e.Graph().HasNode(1) {
		t.Fatal("gracefully deleted node 1 still visible after failed batch")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("engine inconsistent after failed batch: %v", err)
	}
	// The engine keeps maintaining normally.
	if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}
