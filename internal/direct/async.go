package direct

import (
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
	"dynmis/metrics"
)

// asyncNode adapts view to simnet.AsyncProc: it reacts to each delivered
// message immediately, emitting every due broadcast (the asynchronous
// model has no one-broadcast-per-round limit).
type asyncNode struct {
	view
}

var _ simnet.AsyncProc = (*asyncNode)(nil)

// Handle implements simnet.AsyncProc.
func (n *asyncNode) Handle(m simnet.Message) []simnet.Payload {
	evaluate := n.ingest(m)
	return n.reactAll(evaluate)
}

// reactAll emits every action the view owes. It mirrors view.react but
// without the one-payload restriction of the synchronous round model.
func (v *view) reactAll(evaluate bool) []simnet.Payload {
	if v.muted || v.gone {
		return nil
	}
	var out []simnet.Payload
	if v.pendingHello {
		v.pendingHello = false
		need := v.helloNeedInfo
		v.helloNeedInfo = false
		out = append(out, helloMsg{Prio: v.prio, In: v.in, NeedInfo: need})
	}
	if v.pendingReply {
		v.pendingReply = false
		out = append(out, helloMsg{Prio: v.prio, In: v.in, NeedInfo: false})
	}
	if v.retiring {
		v.retiring = false
		if v.in {
			v.in = false
			v.flips++
		}
		if v.mute {
			v.muted = true
			v.mute = false
		} else {
			v.gone = true
		}
		return append(out, retireMsg{})
	}
	if v.pendingEval {
		if v.awaitInfo > 0 {
			return out
		}
		v.pendingEval = false
		evaluate = true
	}
	if evaluate {
		if want := v.shouldBeIn(); want != v.in {
			v.in = want
			v.flips++
			out = append(out, stateMsg{In: want})
		}
	}
	return out
}

// AsyncEngine runs the direct algorithm over the asynchronous network.
// Its round measure is the causal depth of the recovery (the longest chain
// of dependent deliveries), which Corollary 6 bounds by |S| — hence 1 in
// expectation.
type AsyncEngine struct {
	net     *simnet.AsyncNetwork
	ord     *order.Order
	visible *graph.Graph
	procs   map[graph.NodeID]*asyncNode
	feed    core.Feed
	coll    *metrics.Collector // nil while instrumentation is disabled

	// MaxDeliveries bounds each recovery; 0 selects an automatic bound.
	MaxDeliveries int
}

var (
	_ core.Engine     = (*AsyncEngine)(nil)
	_ core.Instrument = (*AsyncEngine)(nil)
)

// Instrument attaches a complexity collector (nil detaches); see
// core.Instrument.
func (e *AsyncEngine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *AsyncEngine) Collector() *metrics.Collector { return e.coll }

// NewAsync returns an asynchronous engine; sched nil means FIFO delivery.
func NewAsync(seed uint64, sched simnet.Scheduler) *AsyncEngine {
	return NewAsyncWithOrder(order.New(seed), sched)
}

// NewAsyncWithOrder returns an asynchronous engine sharing an order.
func NewAsyncWithOrder(ord *order.Order, sched simnet.Scheduler) *AsyncEngine {
	return &AsyncEngine{
		net:     simnet.NewAsyncNetwork(sched),
		ord:     ord,
		visible: graph.New(),
		procs:   make(map[graph.NodeID]*asyncNode),
	}
}

// Graph exposes the visible topology (read-only for callers).
func (e *AsyncEngine) Graph() *graph.Graph { return e.visible }

// Order exposes the node order.
func (e *AsyncEngine) Order() *order.Order { return e.ord }

// InMIS reports whether visible node v is in the MIS.
func (e *AsyncEngine) InMIS(v graph.NodeID) bool {
	p, ok := e.procs[v]
	return ok && !p.muted && p.in
}

// MIS returns the sorted current MIS.
func (e *AsyncEngine) MIS() []graph.NodeID { return core.MISOf(e.State()) }

// State returns the membership map over visible nodes.
func (e *AsyncEngine) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, e.visible.NodeCount())
	for _, v := range e.visible.Nodes() {
		if p := e.procs[v]; p != nil && p.in {
			out[v] = core.In
		} else {
			out[v] = core.Out
		}
	}
	return out
}

func (e *AsyncEngine) maxDeliveries() int {
	if e.MaxDeliveries > 0 {
		return e.MaxDeliveries
	}
	n := e.visible.NodeCount()
	m := e.visible.EdgeCount()
	return 100*(n+m) + 1000
}

// ErrAsyncUnsupported is returned for change kinds the asynchronous engine
// does not model. It wraps core.ErrMuteUnsupported, so callers can match
// either sentinel with errors.Is.
var ErrAsyncUnsupported = fmt.Errorf("direct: async engine: %w", core.ErrMuteUnsupported)

// Subscribe registers a change-feed callback; see core.Feed.
func (e *AsyncEngine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// Apply performs one topology change, drains the network and reports
// costs. The asynchronous engine supports the full change repertoire
// except muting (which is a synchronous-round notion in the paper).
func (e *AsyncEngine) Apply(c graph.Change) (core.Report, error) {
	if c.Kind == graph.NodeMute || c.Kind == graph.NodeUnmute {
		return core.Report{}, fmt.Errorf("%w: %s", ErrAsyncUnsupported, c)
	}
	if err := c.Validate(e.visible); err != nil {
		return core.Report{}, err
	}
	before := e.State()
	e.net.Metrics.Reset()
	for _, p := range e.procs {
		p.flips = 0
	}

	var rep core.Report
	cleanup, err := e.stage(c, &rep)
	if err != nil {
		return core.Report{}, err
	}
	if err := e.net.Run(e.maxDeliveries()); err != nil {
		return core.Report{}, fmt.Errorf("direct: %s: %w", c, err)
	}
	for _, p := range e.procs {
		if p.flips > 0 {
			rep.SSize++
			rep.Flips += p.flips
		}
	}
	if cleanup != nil {
		cleanup()
	}
	rep.Broadcasts = e.net.Metrics.Broadcasts
	rep.Bits = e.net.Metrics.Bits
	rep.CausalDepth = e.net.Metrics.CausalDepth
	after := e.State()
	rep.Adjustments = len(core.DiffStates(before, after))
	e.feed.EmitDiff(before, after)
	if mc := e.coll; mc != nil {
		mc.ObserveNetworkWindow(1, rep.Adjustments, rep.SSize, rep.Flips, rep.Rounds, e.net.Metrics.Sample())
	}
	return rep, nil
}

func (e *AsyncEngine) stage(c graph.Change, rep *core.Report) (func(), error) {
	none := graph.None
	switch c.Kind {
	case graph.EdgeInsert:
		if err := e.visible.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		// If this batch deleted the same edge earlier (nothing has been
		// delivered yet, so its evEdgeDown pair is still in flight),
		// cancel it instead of layering attach events on top: the net
		// topology change is zero and both endpoints' quiesced knowledge
		// is still exact. Delivering the stale down after the peer's
		// attach hello would wipe a correct neighbor entry for good.
		if e.cancelEdgeEvents(c.U, c.V, func(p simnet.Payload) graph.NodeID {
			if ev, ok := p.(evEdgeDown); ok {
				return ev.Peer
			}
			return none
		}) {
			return nil, nil
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.U}})
		return nil, nil

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := e.visible.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		// Symmetric to EdgeInsert: an insert earlier in this batch whose
		// attach events are still in flight is simply cancelled.
		if e.cancelEdgeEvents(c.U, c.V, func(p simnet.Payload) graph.NodeID {
			if ev, ok := p.(evEdgeAttached); ok {
				return ev.Peer
			}
			return none
		}) {
			return nil, nil
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.U}})
		return nil, nil

	case graph.NodeInsert:
		prio := e.ord.Ensure(c.Node)
		p := &asyncNode{view: *newView(c.Node, prio)}
		if err := e.net.AddNode(c.Node, p); err != nil {
			return nil, err
		}
		if err := e.visible.AddNode(c.Node); err != nil {
			return nil, err
		}
		for _, u := range c.Edges {
			if err := e.net.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
			if err := e.visible.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
		}
		e.procs[c.Node] = p
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evInserted{Expect: len(c.Edges)}})
		return nil, nil

	case graph.NodeDeleteAbrupt:
		if e.procs[c.Node].in {
			rep.SSize++
			rep.Flips++
		}
		nbrs := e.net.Graph().Neighbors(c.Node)
		if err := e.net.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		if err := e.visible.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		e.ord.Drop(c.Node)
		delete(e.procs, c.Node)
		for _, u := range nbrs {
			e.net.Inject(u, simnet.Message{From: none, Payload: evNodeGone{Peer: c.Node}})
		}
		return nil, nil

	case graph.NodeDeleteGraceful:
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evRetire{}})
		node := c.Node
		return func() {
			_ = e.visible.RemoveNode(node)
			_ = e.net.RemoveNode(node)
			e.ord.Drop(node)
			delete(e.procs, node)
		}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
}

// ApplyBatch stages several changes at once and drains the network a
// single time — the asynchronous reading of the paper's §6 "multiple
// failures at a time" extension: all detection events enter the queue
// before any recovery delivery, so the adversarial scheduler may
// interleave the recoveries arbitrarily. By history independence the
// quiesced structure still equals the sequential greedy MIS on the final
// graph.
//
// Each change is validated against the topology left by the changes
// staged before it. Gracefully deleted nodes depart only when the network
// has drained, so later changes in the same batch must not reference them
// (delete-then-reinsert of one node needs two batches); such changes are
// rejected with ErrInvalidChange rather than staged against a retiring
// proc. Muting is unsupported, as in Apply.
//
// On a mid-batch validation error the already-staged prefix is recovered
// (the network drains and graceful departures complete) before the error
// returns, mirroring the other engines: the engine keeps the prefix's
// topology and stays consistent and usable.
func (e *AsyncEngine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	before := e.State()
	e.net.Metrics.Reset()
	for _, p := range e.procs {
		p.flips = 0
	}

	var rep core.Report
	var cleanups []func()
	drain := func() error {
		if err := e.net.Run(e.maxDeliveries() * max(len(cs), 1)); err != nil {
			return fmt.Errorf("direct: batch of %d: %w", len(cs), err)
		}
		return nil
	}
	runCleanups := func() {
		for _, cleanup := range cleanups {
			cleanup()
		}
	}
	// fail recovers the already-staged prefix (drain, then complete the
	// graceful departures) before returning the error, so an error return
	// never strands a retiring proc in the visible topology — the
	// cleanups run even when the drain itself fails.
	fail := func(err error) (core.Report, error) {
		rerr := drain()
		runCleanups()
		if e.feed.Active() {
			e.feed.EmitDiff(before, e.State())
		}
		if rerr != nil {
			return core.Report{}, fmt.Errorf("%w (and prefix recovery failed: %v)", err, rerr)
		}
		return core.Report{}, err
	}

	retiring := make(map[graph.NodeID]bool)
	for i, c := range cs {
		if c.Kind == graph.NodeMute || c.Kind == graph.NodeUnmute {
			return fail(fmt.Errorf("batch change %d: %w: %s", i, ErrAsyncUnsupported, c))
		}
		if err := c.Validate(e.visible); err != nil {
			return fail(fmt.Errorf("batch change %d: %w", i, err))
		}
		if len(retiring) > 0 {
			if v, refs := referencesAny(c, retiring); refs {
				return fail(fmt.Errorf("batch change %d: %w: %s references node %d gracefully deleted earlier in the batch",
					i, graph.ErrInvalidChange, c, v))
			}
		}
		if c.Kind == graph.NodeDeleteGraceful {
			retiring[c.Node] = true
		}
		cleanup, err := e.stage(c, &rep)
		if cleanup != nil {
			cleanups = append(cleanups, cleanup)
		}
		if err != nil {
			return fail(fmt.Errorf("batch change %d: %w", i, err))
		}
	}
	if err := drain(); err != nil {
		runCleanups()
		if e.feed.Active() {
			e.feed.EmitDiff(before, e.State())
		}
		return core.Report{}, err
	}
	// Collect S statistics before the cleanups remove departed procs.
	for _, p := range e.procs {
		if p.flips > 0 {
			rep.SSize++
			rep.Flips += p.flips
		}
	}
	runCleanups()
	rep.Broadcasts = e.net.Metrics.Broadcasts
	rep.Bits = e.net.Metrics.Bits
	rep.CausalDepth = e.net.Metrics.CausalDepth
	after := e.State()
	rep.Adjustments = len(core.DiffStates(before, after))
	e.feed.EmitDiff(before, after)
	if mc := e.coll; mc != nil {
		mc.ObserveNetworkWindow(len(cs), rep.Adjustments, rep.SSize, rep.Flips, rep.Rounds, e.net.Metrics.Sample())
	}
	return rep, nil
}

// cancelEdgeEvents removes the in-flight injected event pair for edge
// {u, v} whose peer is extracted by peerOf (evEdgeDown or evEdgeAttached),
// reporting whether a pair was cancelled. Injected events are only ever
// consumed during a drain and all of a batch's changes are staged before
// the drain starts, so the pair is either fully in flight or fully absent.
func (e *AsyncEngine) cancelEdgeEvents(u, v graph.NodeID, peerOf func(simnet.Payload) graph.NodeID) bool {
	removed := e.net.Unqueue(func(to graph.NodeID, m simnet.Message) bool {
		if m.From != graph.None {
			return false
		}
		peer := peerOf(m.Payload)
		return (to == u && peer == v) || (to == v && peer == u)
	})
	return removed > 0
}

// referencesAny reports whether c names any node in the given set, and
// which one.
func referencesAny(c graph.Change, set map[graph.NodeID]bool) (graph.NodeID, bool) {
	if c.Kind.IsEdge() {
		if set[c.U] {
			return c.U, true
		}
		if set[c.V] {
			return c.V, true
		}
		return graph.None, false
	}
	if set[c.Node] {
		return c.Node, true
	}
	for _, u := range c.Edges {
		if set[u] {
			return u, true
		}
	}
	return graph.None, false
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (e *AsyncEngine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Check verifies the MIS invariant and exact knowledge after quiescence.
func (e *AsyncEngine) Check() error {
	if err := core.CheckInvariant(e.visible, e.ord, e.State()); err != nil {
		return err
	}
	for v, p := range e.procs {
		count := 0
		for _, u := range e.net.Graph().Neighbors(v) {
			q := e.procs[u]
			if q == nil {
				continue
			}
			count++
			info, ok := p.nbr[u]
			if !ok {
				return fmt.Errorf("direct/async: node %d missing knowledge of %d", v, u)
			}
			if info.in != q.in {
				return fmt.Errorf("direct/async: node %d has stale state for %d", v, u)
			}
		}
		if len(p.nbr) != count {
			return fmt.Errorf("direct/async: node %d knows %d neighbors, want %d", v, len(p.nbr), count)
		}
	}
	return nil
}
