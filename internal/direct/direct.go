// Package direct implements the direct distributed realization of the
// paper's template (Corollary 6): every node continuously enforces the MIS
// invariant against its current knowledge of its earlier neighbors, and
// flips its output the moment the invariant is violated, announcing the
// flip with a broadcast.
//
// In expectation this needs a single adjustment and a single round
// (E[|S|] ≤ 1, Theorem 1), in both the synchronous and the asynchronous
// model — but a node may flip several times during one recovery, so the
// broadcast complexity can reach |S|² (§4's motivation for Algorithm 2,
// measured by experiment E13).
//
// Two engines realize the algorithm:
//
//   - Engine runs over the synchronous broadcast network (simnet.Network):
//     one potential broadcast per node per round, recovery measured in
//     rounds.
//   - AsyncEngine runs over the event network (simnet.AsyncNetwork) under
//     an adversarial scheduler; its round measure is causal depth. Its
//     ApplyBatch stages several changes before the network drains once —
//     the asynchronous reading of the paper's §6 multiple-failures
//     extension, in which concurrent recoveries interleave arbitrarily
//     and still quiesce at the greedy fixpoint.
//
// Both are differentially tested against the model-level template
// (internal/core) and the greedy oracle: equal seeds must give equal
// structures after every change.
package direct

import (
	"errors"
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
	"dynmis/metrics"
)

// Payloads. The direct algorithm announces only outputs, so its state
// messages carry a single bit.

type stateMsg struct {
	In bool
}

// Bits implements simnet.Payload.
func (stateMsg) Bits() int { return 1 }

type helloMsg struct {
	Prio     order.Priority
	In       bool
	NeedInfo bool
}

// Bits implements simnet.Payload.
func (helloMsg) Bits() int { return 64 + 2 }

type retireMsg struct{}

// Bits implements simnet.Payload.
func (retireMsg) Bits() int { return 1 }

// Control events (local detection, no communication cost).

type evEdgeAttached struct{ Peer graph.NodeID }
type evEdgeDown struct{ Peer graph.NodeID }
type evNodeGone struct{ Peer graph.NodeID }
type evRetire struct{ Mute bool }
type evInserted struct{ Expect int }
type evUnmute struct{}

func (evEdgeAttached) Bits() int { return 0 }
func (evEdgeDown) Bits() int     { return 0 }
func (evNodeGone) Bits() int     { return 0 }
func (evRetire) Bits() int       { return 0 }
func (evInserted) Bits() int     { return 0 }
func (evUnmute) Bits() int       { return 0 }

// nbrInfo is a node's knowledge about one neighbor.
type nbrInfo struct {
	prio order.Priority
	in   bool
}

// view is the node-local knowledge shared by the synchronous and
// asynchronous procs.
type view struct {
	id   graph.NodeID
	prio order.Priority
	in   bool
	nbr  map[graph.NodeID]*nbrInfo

	retiring bool
	mute     bool
	muted    bool
	gone     bool

	pendingHello  bool
	helloNeedInfo bool
	pendingReply  bool
	awaitInfo     int
	pendingEval   bool

	// flips counts output changes during the current recovery.
	flips int
}

func newView(id graph.NodeID, prio order.Priority) *view {
	return &view{id: id, prio: prio, nbr: make(map[graph.NodeID]*nbrInfo)}
}

func (v *view) lower(u graph.NodeID, p order.Priority) bool {
	return order.Less(p, u, v.prio, v.id)
}

// shouldBeIn is the MIS invariant's right-hand side under v's knowledge.
func (v *view) shouldBeIn() bool {
	for u, info := range v.nbr {
		if v.lower(u, info.prio) && info.in {
			return false
		}
	}
	return true
}

// ingest applies one message to the knowledge. It returns true if the
// node should evaluate its invariant afterwards.
func (v *view) ingest(m simnet.Message) bool {
	switch p := m.Payload.(type) {
	case stateMsg:
		if info, ok := v.nbr[m.From]; ok {
			info.in = p.In
		}
		return true
	case helloMsg:
		if info, ok := v.nbr[m.From]; ok {
			info.prio = p.Prio
			info.in = p.In
		} else {
			v.nbr[m.From] = &nbrInfo{prio: p.Prio, in: p.In}
		}
		// Honor NeedInfo even when the sender is already known: under an
		// adversarial asynchronous scheduler this node may have learned
		// the sender from an incidental broadcast before the sender's
		// NeedInfo hello arrives, and a dropped reply would starve the
		// sender's awaitInfo count forever.
		if p.NeedInfo {
			v.pendingReply = true
		}
		if v.awaitInfo > 0 {
			v.awaitInfo--
		}
		return true
	case retireMsg:
		delete(v.nbr, m.From)
		if v.awaitInfo > 0 {
			v.awaitInfo--
		}
		return true
	case evEdgeAttached:
		v.pendingHello = true
		return false
	case evEdgeDown:
		delete(v.nbr, p.Peer)
		// A lost edge resolves one pending expectation: if this node was
		// inserted in the same batch and awaits the peer's hello, that
		// hello is never coming (the peer is no longer a neighbor).
		if v.awaitInfo > 0 {
			v.awaitInfo--
		}
		return true
	case evNodeGone:
		delete(v.nbr, p.Peer)
		if v.awaitInfo > 0 {
			v.awaitInfo--
		}
		return true
	case evRetire:
		v.retiring = true
		v.mute = p.Mute
		return false
	case evInserted:
		v.awaitInfo = p.Expect
		v.pendingHello = true
		v.helloNeedInfo = true
		v.pendingEval = true
		return false
	case evUnmute:
		v.muted = false
		v.in = false
		v.pendingHello = true
		v.pendingEval = true
		return false
	}
	return false
}

// react decides the node's single outgoing broadcast after ingesting a
// batch of messages, applying the direct rule: flip whenever the invariant
// is violated.
func (v *view) react(evaluate bool) simnet.Payload {
	if v.muted || v.gone {
		return nil
	}
	if v.pendingHello {
		v.pendingHello = false
		need := v.helloNeedInfo
		v.helloNeedInfo = false
		return helloMsg{Prio: v.prio, In: v.in, NeedInfo: need}
	}
	if v.pendingReply {
		v.pendingReply = false
		return helloMsg{Prio: v.prio, In: v.in, NeedInfo: false}
	}
	if v.retiring {
		// A retiring MIS node leaves the structure outright; the
		// Retire announcement doubles as its "now out" signal, and the
		// departure counts as its flip (the template's S0 = {v*}).
		v.retiring = false
		if v.in {
			v.in = false
			v.flips++
		}
		if v.mute {
			v.muted = true
			v.mute = false
		} else {
			v.gone = true
		}
		return retireMsg{}
	}
	if v.pendingEval {
		if v.awaitInfo > 0 {
			return nil
		}
		v.pendingEval = false
		evaluate = true
	}
	if !evaluate {
		return nil
	}
	if want := v.shouldBeIn(); want != v.in {
		v.in = want
		v.flips++
		return stateMsg{In: want}
	}
	return nil
}

// quiescent reports whether the node owes no action.
func (v *view) quiescent() bool {
	if v.muted || v.gone {
		return true
	}
	return !v.pendingHello && !v.pendingReply && !v.pendingEval && !v.retiring
}

// syncNode adapts view to simnet.Proc.
type syncNode struct {
	view
}

var _ simnet.Proc = (*syncNode)(nil)

// Step implements simnet.Proc.
func (n *syncNode) Step(_ int, inbox []simnet.Message) simnet.Payload {
	evaluate := false
	for _, m := range inbox {
		if n.ingest(m) {
			evaluate = true
		}
	}
	return n.react(evaluate)
}

// Quiescent implements simnet.Proc.
func (n *syncNode) Quiescent() bool { return n.quiescent() }

// Engine runs the direct algorithm over a synchronous broadcast network.
// Its public surface mirrors protocol.Engine.
type Engine struct {
	net     *simnet.Network
	ord     *order.Order
	visible *graph.Graph
	procs   map[graph.NodeID]*syncNode
	feed    core.Feed
	coll    *metrics.Collector // nil while instrumentation is disabled

	// MaxRounds bounds each recovery; 0 selects an automatic O(n) bound.
	MaxRounds int
}

var (
	_ core.Engine     = (*Engine)(nil)
	_ core.Instrument = (*Engine)(nil)
)

// Instrument attaches a complexity collector (nil detaches); see
// core.Instrument.
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// New returns an engine over an empty graph with a fresh order.
func New(seed uint64) *Engine { return NewWithOrder(order.New(seed)) }

// NewWithOrder returns an engine sharing a caller-supplied order.
func NewWithOrder(ord *order.Order) *Engine {
	return &Engine{
		net:     simnet.NewNetwork(),
		ord:     ord,
		visible: graph.New(),
		procs:   make(map[graph.NodeID]*syncNode),
	}
}

// Graph exposes the visible topology (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.visible }

// Order exposes the node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether visible node v is in the MIS.
func (e *Engine) InMIS(v graph.NodeID) bool {
	p, ok := e.procs[v]
	return ok && !p.muted && p.in
}

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return core.MISOf(e.State()) }

// State returns the membership map over visible nodes.
func (e *Engine) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, e.visible.NodeCount())
	for _, v := range e.visible.Nodes() {
		if p := e.procs[v]; p != nil && p.in {
			out[v] = core.In
		} else {
			out[v] = core.Out
		}
	}
	return out
}

func (e *Engine) maxRounds() int {
	if e.MaxRounds > 0 {
		return e.MaxRounds
	}
	return 10*e.visible.NodeCount() + 60
}

// Apply performs one topology change, runs to quiescence and reports
// costs.
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	if err := e.validate(c); err != nil {
		return core.Report{}, err
	}
	before := e.State()
	e.net.Metrics.Reset()
	for _, p := range e.procs {
		p.flips = 0
	}

	var rep core.Report
	cleanup, err := e.stage(c, &rep)
	if err != nil {
		return core.Report{}, err
	}
	rounds, err := e.net.RunUntilQuiet(e.maxRounds())
	if err != nil {
		return core.Report{}, fmt.Errorf("direct: %s: %w", c, err)
	}
	for _, p := range e.procs {
		if p.flips > 0 {
			rep.SSize++
			rep.Flips += p.flips
		}
	}
	if cleanup != nil {
		cleanup()
	}
	rep.Rounds = rounds
	rep.Broadcasts = e.net.Metrics.Broadcasts
	rep.Bits = e.net.Metrics.Bits
	after := e.State()
	rep.Adjustments = len(core.DiffStates(before, after))
	e.feed.EmitDiff(before, after)
	if mc := e.coll; mc != nil {
		mc.ObserveNetworkWindow(1, rep.Adjustments, rep.SSize, rep.Flips, rep.Rounds, e.net.Metrics.Sample())
	}
	return rep, nil
}

// Subscribe registers a change-feed callback; see core.Feed.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// ErrUnmuteUnknownNeighbor mirrors protocol.ErrUnmuteUnknownNeighbor.
var ErrUnmuteUnknownNeighbor = errors.New("direct: unmute attaches unknown neighbor")

func (e *Engine) validate(c graph.Change) error {
	if c.Kind == graph.NodeUnmute {
		p, ok := e.procs[c.Node]
		if !ok || !p.muted {
			return fmt.Errorf("%w: %s: node is not muted", graph.ErrInvalidChange, c)
		}
		for _, u := range c.Edges {
			if !e.visible.HasNode(u) {
				return fmt.Errorf("%w: %s: neighbor %d: %w", graph.ErrInvalidChange, c, u, graph.ErrNoNode)
			}
			if !e.net.Graph().HasEdge(c.Node, u) {
				return fmt.Errorf("%w: %s: neighbor %d: %w", graph.ErrInvalidChange, c, u, ErrUnmuteUnknownNeighbor)
			}
		}
		return nil
	}
	return c.Validate(e.visible)
}

func (e *Engine) stage(c graph.Change, rep *core.Report) (func(), error) {
	none := graph.None
	switch c.Kind {
	case graph.EdgeInsert:
		if err := e.visible.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.U}})
		return nil, nil

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		if err := e.visible.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.U}})
		return nil, nil

	case graph.NodeInsert:
		prio := e.ord.Ensure(c.Node)
		p := &syncNode{view: *newView(c.Node, prio)}
		if err := e.net.AddNode(c.Node, p); err != nil {
			return nil, err
		}
		if err := e.visible.AddNode(c.Node); err != nil {
			return nil, err
		}
		for _, u := range c.Edges {
			if err := e.net.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
			if err := e.visible.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
		}
		e.procs[c.Node] = p
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evInserted{Expect: len(c.Edges)}})
		return nil, nil

	case graph.NodeDeleteAbrupt:
		if e.procs[c.Node].in {
			rep.SSize++
			rep.Flips++
		}
		nbrs := e.net.Graph().Neighbors(c.Node)
		if err := e.net.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		if err := e.visible.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		e.ord.Drop(c.Node)
		delete(e.procs, c.Node)
		for _, u := range nbrs {
			e.net.Inject(u, simnet.Message{From: none, Payload: evNodeGone{Peer: c.Node}})
		}
		return nil, nil

	case graph.NodeDeleteGraceful, graph.NodeMute:
		mute := c.Kind == graph.NodeMute
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evRetire{Mute: mute}})
		node := c.Node
		return func() {
			_ = e.visible.RemoveNode(node)
			if !mute {
				_ = e.net.RemoveNode(node)
				e.ord.Drop(node)
				delete(e.procs, node)
			}
		}, nil

	case graph.NodeUnmute:
		want := make(map[graph.NodeID]bool, len(c.Edges))
		for _, u := range c.Edges {
			want[u] = true
		}
		for _, u := range e.net.Graph().Neighbors(c.Node) {
			if want[u] {
				continue
			}
			if q := e.procs[u]; q != nil && q.muted {
				continue
			}
			if err := e.net.RemoveEdge(c.Node, u); err != nil {
				return nil, err
			}
			e.net.Inject(c.Node, simnet.Message{From: none, Payload: evEdgeDown{Peer: u}})
		}
		if err := e.visible.AddNode(c.Node); err != nil {
			return nil, err
		}
		for _, u := range c.Edges {
			if err := e.visible.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
		}
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evUnmute{}})
		return nil, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// ApplyBatch applies several changes with per-change recovery. The
// synchronous direct algorithm reacts to each detection event as it runs,
// so it realizes the batch sequentially; history independence guarantees
// the final structure equals a genuinely combined recovery. The change
// feed still publishes one net delta for the whole batch (even on a
// mid-batch error, for the applied prefix), matching the genuinely
// batching engines event for event.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	// Mirror protocol.Engine.ApplyBatch: the per-change delegation
	// instruments per change, so snapshot the counters and repair
	// afterwards — one window per batch, nothing counted on error.
	var snap metrics.Counters
	if e.coll != nil {
		snap = e.coll.Counters
	}
	rep, err := e.applyBatch(cs)
	if e.coll != nil {
		switch {
		case err != nil:
			e.coll.Counters = snap
		case len(cs) > 0:
			e.coll.Windows = snap.Windows + 1
		}
	}
	return rep, err
}

// applyBatch is ApplyBatch without the instrumentation repair.
func (e *Engine) applyBatch(cs []graph.Change) (core.Report, error) {
	if !e.feed.Active() {
		return e.ApplyAll(cs)
	}
	before := e.State()
	resume := e.feed.Suspend()
	rep, err := e.ApplyAll(cs)
	resume()
	e.feed.EmitDiff(before, e.State())
	return rep, err
}

// Check verifies the steady-state invariants: MIS invariant on the visible
// graph and exact neighbor knowledge everywhere.
func (e *Engine) Check() error {
	if err := core.CheckInvariant(e.visible, e.ord, e.State()); err != nil {
		return err
	}
	for v, p := range e.procs {
		visibleCount := 0
		for _, u := range e.net.Graph().Neighbors(v) {
			q := e.procs[u]
			if q == nil || q.muted {
				continue
			}
			visibleCount++
			info, ok := p.nbr[u]
			if !ok {
				return fmt.Errorf("direct: node %d missing knowledge of %d", v, u)
			}
			if info.in != q.in {
				return fmt.Errorf("direct: node %d has stale state for %d", v, u)
			}
		}
		if len(p.nbr) != visibleCount {
			return fmt.Errorf("direct: node %d knows %d neighbors, want %d", v, len(p.nbr), visibleCount)
		}
	}
	return nil
}
