// Package detgreedy is the deterministic dynamic MIS baseline used to
// reproduce the paper's lower bound (§1.1): any deterministic algorithm
// admits a topology change that forces n adjustments. This engine is "the
// natural deterministic algorithm" — greedy over the fixed order of node
// IDs — maintained with the same cascade as the randomized template; on
// the complete bipartite construction K_{k,k} it is forced to flip an
// entire side at once, which experiment E7 measures.
package detgreedy

import (
	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// Engine maintains the ID-ordered greedy MIS dynamically.
type Engine struct {
	tpl *core.Template
}

// New returns an engine over an empty graph.
func New() *Engine {
	return &Engine{tpl: core.NewTemplateWithOrder(order.New(0))}
}

// Apply performs one topology change. Node priorities are pinned to the
// node IDs, making the algorithm fully deterministic.
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	if c.Kind == graph.NodeInsert || c.Kind == graph.NodeUnmute {
		e.tpl.Order().Set(c.Node, order.Priority(c.Node))
	}
	return e.tpl.Apply(c)
}

// ApplyAll applies a sequence of changes, accumulating reports.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for _, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, err
		}
		total.Add(rep)
	}
	return total, nil
}

// Graph exposes the maintained topology (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.tpl.Graph() }

// InMIS reports whether v is in the current MIS.
func (e *Engine) InMIS(v graph.NodeID) bool { return e.tpl.InMIS(v) }

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return e.tpl.MIS() }

// State returns a copy of the membership map.
func (e *Engine) State() map[graph.NodeID]core.Membership { return e.tpl.State() }

// Check verifies the MIS invariant.
func (e *Engine) Check() error { return e.tpl.Check() }
