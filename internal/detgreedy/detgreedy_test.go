package detgreedy

import (
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestDeterministicByID(t *testing.T) {
	e := New()
	if _, err := e.ApplyAll(workload.Path(5)); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	// Greedy by ID on a path 0-1-2-3-4 picks {0, 2, 4}.
	want := []graph.NodeID{0, 2, 4}
	got := e.MIS()
	if len(got) != len(want) {
		t.Fatalf("MIS = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MIS = %v, want %v", got, want)
		}
	}
}

// TestLowerBoundCascade reproduces the §1.1 adversarial argument: on
// K_{k,k} the deterministic algorithm picks side L (smaller IDs); deleting
// L node by node forces a change that flips the entire side R — k
// adjustments in a single topology change.
func TestLowerBoundCascade(t *testing.T) {
	const k = 12
	e := New()
	if _, err := e.ApplyAll(workload.CompleteBipartite(k)); err != nil {
		t.Fatal(err)
	}
	// Side L = IDs 0..k-1 must be the MIS initially.
	for v := graph.NodeID(0); v < k; v++ {
		if !e.InMIS(v) {
			t.Fatalf("node %d of side L not in MIS: %v", v, e.MIS())
		}
	}
	maxAdjust := 0
	for _, c := range workload.LowerBoundDeletions(k) {
		rep, err := e.Apply(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Adjustments > maxAdjust {
			maxAdjust = rep.Adjustments
		}
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	// The final deletion flips all k nodes of R (plus removes the last
	// L node): at least k adjustments in one change.
	if maxAdjust < k {
		t.Errorf("max adjustments per change = %d, want ≥ k = %d", maxAdjust, k)
	}
	// After all deletions, R is the MIS.
	for v := graph.NodeID(k); v < 2*k; v++ {
		if !e.InMIS(v) {
			t.Errorf("node %d of side R not in MIS after deletions", v)
		}
	}
}

func TestReinsertionStaysDeterministic(t *testing.T) {
	e := New()
	if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, 3, 5)); err != nil {
		t.Fatal(err)
	}
	if !e.InMIS(3) || e.InMIS(5) {
		t.Fatalf("MIS = %v, want [3] (ID order)", e.MIS())
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(graph.NodeChange(graph.NodeInsert, 3, 5)); err != nil {
		t.Fatal(err)
	}
	if !e.InMIS(3) {
		t.Error("re-inserted node 3 must win again under ID order")
	}
	if e.State()[5] != false {
		t.Error("node 5 should be out")
	}
}
