package protocol

import (
	"errors"
	"fmt"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
	"dynmis/metrics"
)

// ErrUnmuteUnknownNeighbor is returned when a node is unmuted with an edge
// to a neighbor it was not listening to while muted; such attachments must
// use NodeInsert semantics instead (the muted node has no knowledge to
// reuse, so the O(1)-broadcast unmute guarantee cannot hold).
var ErrUnmuteUnknownNeighbor = errors.New("protocol: unmute attaches unknown neighbor")

// Engine runs Algorithm 2 over a synchronous broadcast network. It owns
// the network, the visible topology (the MIS-relevant graph, which
// excludes muted listeners), and the random order.
type Engine struct {
	net     *simnet.Network
	ord     *order.Order
	visible *graph.Graph
	procs   map[graph.NodeID]*node
	feed    core.Feed
	coll    *metrics.Collector // nil while instrumentation is disabled

	// MaxRounds bounds each recovery; 0 selects an automatic bound of
	// O(n) rounds, far above the paper's 3|S|+2 worst case.
	MaxRounds int
}

var (
	_ core.Engine     = (*Engine)(nil)
	_ core.Instrument = (*Engine)(nil)
)

// New returns an engine over an empty graph with a fresh order.
func New(seed uint64) *Engine { return NewWithOrder(order.New(seed)) }

// NewWithOrder returns an engine sharing a caller-supplied order, so that
// differential tests can run several engines under the same π.
func NewWithOrder(ord *order.Order) *Engine {
	return &Engine{
		net:     simnet.NewNetwork(),
		ord:     ord,
		visible: graph.New(),
		procs:   make(map[graph.NodeID]*node),
	}
}

// SetParallel enables goroutine-parallel round execution.
func (e *Engine) SetParallel(workers int) { e.net.SetParallel(workers) }

// Graph exposes the visible topology (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.visible }

// Order exposes the node order.
func (e *Engine) Order() *order.Order { return e.ord }

// InMIS reports whether visible node v is currently in the MIS.
func (e *Engine) InMIS(v graph.NodeID) bool {
	p, ok := e.procs[v]
	return ok && !p.muted && p.st == StateIn
}

// MIS returns the sorted current MIS.
func (e *Engine) MIS() []graph.NodeID { return core.MISOf(e.State()) }

// State returns the membership map over visible nodes.
func (e *Engine) State() map[graph.NodeID]core.Membership {
	out := make(map[graph.NodeID]core.Membership, e.visible.NodeCount())
	for _, v := range e.visible.Nodes() {
		if p := e.procs[v]; p != nil && p.st == StateIn {
			out[v] = core.In
		} else {
			out[v] = core.Out
		}
	}
	return out
}

func (e *Engine) maxRounds() int {
	if e.MaxRounds > 0 {
		return e.MaxRounds
	}
	n := e.visible.NodeCount()
	return 10*n + 60
}

// Apply performs one topology change, runs the protocol to quiescence and
// returns the cost report. On error the engine may be mid-recovery and
// must not be reused (tests treat any error as fatal).
func (e *Engine) Apply(c graph.Change) (core.Report, error) {
	if err := e.validate(c); err != nil {
		return core.Report{}, err
	}
	before := e.State()
	e.net.Metrics.Reset()
	for _, p := range e.procs {
		p.cEntries = 0
		p.resolved = 0
	}

	var rep core.Report
	cleanup, err := e.stage(c, &rep)
	if err != nil {
		return core.Report{}, err
	}

	rounds, err := e.net.RunUntilQuiet(e.maxRounds())
	if err != nil {
		return core.Report{}, fmt.Errorf("protocol: %s: %w", c, err)
	}
	// Collect S statistics before cleanup removes departed procs.
	for _, p := range e.procs {
		if p.cEntries > 0 {
			rep.SSize++
			rep.Flips += p.cEntries
		}
	}
	if cleanup != nil {
		cleanup()
	}
	rep.Rounds = rounds
	rep.Broadcasts = e.net.Metrics.Broadcasts
	rep.Bits = e.net.Metrics.Bits
	after := e.State()
	rep.Adjustments = len(core.DiffStates(before, after))
	e.feed.EmitDiff(before, after)
	if mc := e.coll; mc != nil {
		mc.ObserveNetworkWindow(1, rep.Adjustments, rep.SSize, rep.Flips, rep.Rounds, e.net.Metrics.Sample())
	}
	return rep, nil
}

// Instrument attaches a complexity collector (nil detaches); see
// core.Instrument.
func (e *Engine) Instrument(c *metrics.Collector) { e.coll = c }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *metrics.Collector { return e.coll }

// Subscribe registers a change-feed callback; see core.Feed.
func (e *Engine) Subscribe(fn func(core.Event)) { e.feed.Subscribe(fn) }

// validate extends Change.Validate with protocol-specific checks for
// unmuting.
func (e *Engine) validate(c graph.Change) error {
	if c.Kind == graph.NodeUnmute {
		p, ok := e.procs[c.Node]
		if !ok || !p.muted {
			return fmt.Errorf("%w: %s: node is not muted", graph.ErrInvalidChange, c)
		}
		for _, u := range c.Edges {
			if !e.visible.HasNode(u) {
				return fmt.Errorf("%w: %s: neighbor %d: %w", graph.ErrInvalidChange, c, u, graph.ErrNoNode)
			}
			if !e.net.Graph().HasEdge(c.Node, u) {
				return fmt.Errorf("%w: %s: neighbor %d: %w", graph.ErrInvalidChange, c, u, ErrUnmuteUnknownNeighbor)
			}
		}
		return nil
	}
	return c.Validate(e.visible)
}

// stage mutates the topology and injects the change's detection events.
// It returns an optional cleanup to run after quiescence (for graceful
// departures) and pre-fills report fields that must be captured before the
// run (abruptly deleted nodes lose their procs).
func (e *Engine) stage(c graph.Change, rep *core.Report) (func(), error) {
	none := graph.None
	switch c.Kind {
	case graph.EdgeInsert:
		if err := e.visible.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.AddEdge(c.U, c.V); err != nil {
			return nil, err
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeAttached{Peer: c.U}})
		return nil, nil

	case graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt:
		// The protocol never needs to send over the departing edge, so
		// graceful and abrupt edge deletions behave identically (§4).
		if err := e.visible.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		if err := e.net.RemoveEdge(c.U, c.V); err != nil {
			return nil, err
		}
		e.net.Inject(c.U, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.V}})
		e.net.Inject(c.V, simnet.Message{From: none, Payload: evEdgeDown{Peer: c.U}})
		return nil, nil

	case graph.NodeInsert:
		prio := e.ord.Ensure(c.Node)
		p := newNode(c.Node, prio, StateOut)
		if err := e.net.AddNode(c.Node, p); err != nil {
			return nil, err
		}
		if err := e.visible.AddNode(c.Node); err != nil {
			return nil, err
		}
		for _, u := range c.Edges {
			if err := e.net.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
			if err := e.visible.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
		}
		e.procs[c.Node] = p
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evInserted{Expect: len(c.Edges)}})
		return nil, nil

	case graph.NodeDeleteAbrupt:
		p := e.procs[c.Node]
		if p.st == StateIn {
			// The departed MIS node is the template's v* with
			// S0 = {v*}; its proc is gone, so account for it here.
			rep.SSize++
			rep.Flips++
		}
		nbrs := e.net.Graph().Neighbors(c.Node)
		if err := e.net.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		if err := e.visible.RemoveNode(c.Node); err != nil {
			return nil, err
		}
		e.ord.Drop(c.Node)
		delete(e.procs, c.Node)
		for _, u := range nbrs {
			e.net.Inject(u, simnet.Message{From: none, Payload: evNodeGone{Peer: c.Node}})
		}
		return nil, nil

	case graph.NodeDeleteGraceful, graph.NodeMute:
		mute := c.Kind == graph.NodeMute
		e.net.Inject(c.Node, simnet.Message{From: none, Payload: evRetire{Mute: mute}})
		node := c.Node
		return func() {
			// The retiree relayed until quiescence; now it leaves the
			// visible topology. A muted node keeps its comm edges and
			// priority so it can listen and later unmute for O(1)
			// broadcasts.
			_ = e.visible.RemoveNode(node)
			if !mute {
				_ = e.net.RemoveNode(node)
				e.ord.Drop(node)
				delete(e.procs, node)
			}
		}, nil

	case graph.NodeUnmute:
		// Detach comm edges that are not part of the new neighborhood,
		// letting the listener forget those peers.
		want := make(map[graph.NodeID]bool, len(c.Edges))
		for _, u := range c.Edges {
			want[u] = true
		}
		for _, u := range e.net.Graph().Neighbors(c.Node) {
			if want[u] {
				continue
			}
			if q := e.procs[u]; q != nil && q.muted {
				// Keep latent links between listeners: a muted peer
				// must still hear this node so that either side can
				// later unmute with fresh knowledge.
				continue
			}
			if err := e.net.RemoveEdge(c.Node, u); err != nil {
				return nil, err
			}
			e.net.Inject(c.Node, simnet.Message{From: graph.None, Payload: evEdgeDown{Peer: u}})
		}
		if err := e.visible.AddNode(c.Node); err != nil {
			return nil, err
		}
		for _, u := range c.Edges {
			if err := e.visible.AddEdge(c.Node, u); err != nil {
				return nil, err
			}
		}
		e.net.Inject(c.Node, simnet.Message{From: graph.None, Payload: evUnmute{}})
		return nil, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %v", graph.ErrInvalidChange, c.Kind)
}

// ApplyAll applies a sequence of changes, accumulating reports; it stops
// at the first error.
func (e *Engine) ApplyAll(cs []graph.Change) (core.Report, error) {
	var total core.Report
	for i, c := range cs {
		rep, err := e.Apply(c)
		if err != nil {
			return total, fmt.Errorf("change %d: %w", i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// ApplyBatch applies several changes with per-change recovery. Algorithm 2
// is round-synchronous and its C/R hand-shake assumes a single recovery in
// flight, so the protocol engine realizes the batch sequentially; history
// independence (Definition 14) guarantees the final structure equals a
// genuinely combined recovery, which the template and sharded engines
// perform. It exists so that batch-driving harnesses can treat every
// engine uniformly. The change feed still publishes one net delta for the
// whole batch (even on a mid-batch error, for the applied prefix),
// matching the genuinely batching engines event for event.
func (e *Engine) ApplyBatch(cs []graph.Change) (core.Report, error) {
	// The per-change delegation would also instrument per change: one
	// window per change, and a failed batch's applied prefix counted.
	// Snapshot the counters and repair afterwards so the batch surface
	// honors the capability contract — one window per batch, nothing on
	// error — on every engine.
	var snap metrics.Counters
	if e.coll != nil {
		snap = e.coll.Counters
	}
	rep, err := e.applyBatch(cs)
	if e.coll != nil {
		switch {
		case err != nil:
			e.coll.Counters = snap
		case len(cs) > 0:
			e.coll.Windows = snap.Windows + 1
		}
	}
	return rep, err
}

// applyBatch is ApplyBatch without the instrumentation repair: the
// sequential realization of the batch with a single net feed delta.
func (e *Engine) applyBatch(cs []graph.Change) (core.Report, error) {
	if !e.feed.Active() {
		return e.ApplyAll(cs)
	}
	before := e.State()
	resume := e.feed.Suspend()
	rep, err := e.ApplyAll(cs)
	resume()
	e.feed.EmitDiff(before, e.State())
	return rep, err
}

// Check verifies the engine's steady-state invariants: every visible node
// is settled, the configuration satisfies the MIS invariant, and every
// node's knowledge of its neighbors (priority and state) is exact — for
// muted listeners too.
func (e *Engine) Check() error {
	state := e.State()
	for _, v := range e.visible.Nodes() {
		p := e.procs[v]
		if p == nil {
			return fmt.Errorf("protocol: visible node %d has no proc", v)
		}
		if p.st != StateIn && p.st != StateOut {
			return fmt.Errorf("protocol: node %d not settled: state %v", v, p.st)
		}
	}
	if err := core.CheckInvariant(e.visible, e.ord, state); err != nil {
		return err
	}
	for v, p := range e.procs {
		commNbrs := e.net.Graph().Neighbors(v)
		visibleCount := 0
		for _, u := range commNbrs {
			q := e.procs[u]
			if q == nil || q.muted {
				continue // listeners are invisible to everyone
			}
			visibleCount++
			info, ok := p.nbr[u]
			if !ok {
				return fmt.Errorf("protocol: node %d missing knowledge of neighbor %d", v, u)
			}
			if info.st != q.st {
				return fmt.Errorf("protocol: node %d thinks %d is %v, actually %v", v, u, info.st, q.st)
			}
			if wantPrio, _ := e.ord.Priority(u); info.prio != wantPrio {
				return fmt.Errorf("protocol: node %d has stale priority for %d", v, u)
			}
		}
		if len(p.nbr) != visibleCount {
			return fmt.Errorf("protocol: node %d knows %d neighbors, want %d", v, len(p.nbr), visibleCount)
		}
	}
	return nil
}
