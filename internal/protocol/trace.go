package protocol

import (
	"slices"
	"strconv"

	"dynmis/internal/graph"
)

// TraceRound is one round's snapshot of the protocol's visible states.
type TraceRound struct {
	Round  int
	States map[graph.NodeID]State
}

// Tracer receives a snapshot after every executed round; install it with
// Engine.SetTracer to watch a recovery unfold (see cmd/trace).
type Tracer func(TraceRound)

// SetTracer installs (or, with nil, removes) a per-round observer. The
// snapshot contains every visible node's current protocol state; muted
// listeners are omitted.
func (e *Engine) SetTracer(fn Tracer) {
	if fn == nil {
		e.net.OnRound = nil
		return
	}
	e.net.OnRound = func(round int) {
		snap := TraceRound{Round: round, States: make(map[graph.NodeID]State, len(e.procs))}
		for v, p := range e.procs {
			if p.muted {
				continue
			}
			snap.States[v] = p.st
		}
		fn(snap)
	}
}

// StatesLine renders a snapshot as a fixed-order single line, e.g.
// "1:M 2:M̄ 3:C 4:R" — the format used by cmd/trace.
func (tr TraceRound) StatesLine() string {
	ids := make([]graph.NodeID, 0, len(tr.States))
	for v := range tr.States {
		ids = append(ids, v)
	}
	slices.Sort(ids)
	out := ""
	for i, v := range ids {
		if i > 0 {
			out += " "
		}
		out += strconv.FormatInt(int64(v), 10) + ":" + tr.States[v].String()
	}
	return out
}
