// Package protocol implements Algorithm 2 of the paper (§4): the
// constant-broadcast dynamic distributed MIS. Each node is a four-state
// machine — M (in the MIS), M̄ (out), C (may need to change), R (ready to
// change) — driven only by broadcasts received from its neighbors:
//
//  1. v ∈ M:  if some earlier neighbor changes to C, change to C.
//  2. v ∈ M̄: if some earlier neighbor changes to C and no other earlier
//     neighbor is in M, change to C.
//  3. v ∈ C:  if no later neighbor is in C and v entered C at least two
//     rounds ago, change to R.
//  4. v ∈ R:  once every earlier neighbor is in M or M̄, change to M if
//     they are all in M̄ and to M̄ otherwise.
//
// Every state change is announced with a single 2-bit broadcast, which is
// how the protocol achieves O(1) broadcasts in expectation (Theorem 7):
// each node in the influence set S changes state at most three times
// (Lemma 8), and E[|S|] ≤ 1 (Theorem 1).
//
// Engine drives the state machines over a synchronous simnet.Network and
// owns the topology bookkeeping for the full change repertoire, including
// muting (a node that disappears from the MIS-relevant graph but keeps
// listening, so it can rejoin with O(1) broadcasts). Rounds can be
// executed goroutine-parallel (SetParallel) with bit-identical results.
// Batches are applied change-by-change (ApplyBatch = ApplyAll): the
// C/R hand-shake assumes one recovery in flight; combined single-cascade
// recovery is the domain of the template (internal/core) and sharded
// (internal/shard) engines, which reach the same structures by history
// independence.
package protocol

import (
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
)

// State is the Algorithm 2 node state.
type State uint8

const (
	// StateOut is M̄ — not in the MIS.
	StateOut State = iota + 1
	// StateIn is M — in the MIS.
	StateIn
	// StateC marks a node that may need to change its output.
	StateC
	// StateR marks a node that is ready to change its output.
	StateR
	// StateGone marks a retired node (graceful departure completed).
	StateGone
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case StateOut:
		return "M̄"
	case StateIn:
		return "M"
	case StateC:
		return "C"
	case StateR:
		return "R"
	case StateGone:
		return "gone"
	default:
		return "?"
	}
}

// stateBits is the payload size of a bare state announcement: four live
// states fit in 2 bits.
const stateBits = 2

// prioBits is the payload size of a full priority. The paper's ℓ_v ∈ [0,1]
// is realized as a uint64; with the lazy bit-revelation option
// (internal/bitorder) the expected cost drops to O(1) bits, which
// experiment E14 measures separately.
const prioBits = 64

// stateMsg announces a state change (rules 1-4). It is the protocol's
// workhorse 2-bit broadcast.
type stateMsg struct {
	St State
}

// Bits implements simnet.Payload.
func (stateMsg) Bits() int { return stateBits }

// helloMsg announces a node's priority and current output to its
// neighbors. It is sent on node insertion, edge insertion and unmuting
// (§4.1). NeedInfo asks recipients to reply with their own Hello —
// needed only by a fresh node, which is what makes insertion cost
// O(d(v*)) broadcasts while unmuting costs O(1).
type helloMsg struct {
	Prio     order.Priority
	St       State
	NeedInfo bool
}

// Bits implements simnet.Payload.
func (helloMsg) Bits() int { return prioBits + stateBits + 1 }

// retireMsg announces the sender's graceful departure; recipients forget
// it. A retiring node is never in the MIS when it sends this (it resolves
// to M̄ first), so no further information is needed.
type retireMsg struct{}

// Bits implements simnet.Payload.
func (retireMsg) Bits() int { return stateBits }

// Control events are injected by the engine to model local physical-layer
// detection; they cost no communication (Bits 0) and always carry
// From == graph.None.

// evEdgeAttached tells a node it gained an edge to Peer; it must introduce
// itself with a Hello.
type evEdgeAttached struct {
	Peer graph.NodeID
}

// Bits implements simnet.Payload.
func (evEdgeAttached) Bits() int { return 0 }

// evEdgeDown tells a node the edge to Peer is gone.
type evEdgeDown struct {
	Peer graph.NodeID
}

// Bits implements simnet.Payload.
func (evEdgeDown) Bits() int { return 0 }

// evNodeGone tells a node that neighbor Peer vanished abruptly.
type evNodeGone struct {
	Peer graph.NodeID
}

// Bits implements simnet.Payload.
func (evNodeGone) Bits() int { return 0 }

// evRetire tells a node to depart gracefully (deletion or muting).
type evRetire struct {
	// Mute keeps the node listening after retirement.
	Mute bool
}

// Bits implements simnet.Payload.
func (evRetire) Bits() int { return 0 }

// evInserted bootstraps a freshly inserted node; Expect is the number of
// neighbors whose Hello replies it must await before evaluating its
// invariant (it physically knows how many links it was attached with).
type evInserted struct {
	Expect int
}

// Bits implements simnet.Payload.
func (evInserted) Bits() int { return 0 }

// evUnmute re-activates a muted node: it already knows its neighbors'
// states from listening, so it only announces itself.
type evUnmute struct{}

// Bits implements simnet.Payload.
func (evUnmute) Bits() int { return 0 }

// Interface compliance checks.
var (
	_ simnet.Payload = stateMsg{}
	_ simnet.Payload = helloMsg{}
	_ simnet.Payload = retireMsg{}
	_ simnet.Payload = evEdgeAttached{}
	_ simnet.Payload = evEdgeDown{}
	_ simnet.Payload = evNodeGone{}
	_ simnet.Payload = evRetire{}
	_ simnet.Payload = evInserted{}
	_ simnet.Payload = evUnmute{}
)
