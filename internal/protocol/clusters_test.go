package protocol

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/workload"
)

// TestLocalClustersMatchModel: the clustering assembled from node-local
// knowledge must equal the model-level pivot clustering after every
// change — the paper's "directly translates to our model" claim.
func TestLocalClustersMatchModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 33))
	e := New(500)
	if _, err := e.ApplyAll(workload.GNP(rng, 50, 0.1)); err != nil {
		t.Fatal(err)
	}
	for i, c := range workload.RandomChurn(rng, e.Graph(), workload.DefaultChurn(150)) {
		if _, err := e.Apply(c); err != nil {
			t.Fatalf("change %d: %v", i, err)
		}
		got, err := e.Clusters()
		if err != nil {
			t.Fatalf("change %d: Clusters: %v", i, err)
		}
		want := core.GreedyClusters(e.Graph(), e.Order(), e.State())
		if len(got) != len(want) {
			t.Fatalf("change %d: %d assignments, want %d", i, len(got), len(want))
		}
		for v, h := range want {
			if got[v] != h {
				t.Fatalf("change %d: node %d head %d, want %d", i, v, got[v], h)
			}
		}
	}
}

func TestHeadErrors(t *testing.T) {
	e := New(1)
	if _, err := e.Head(42); err == nil {
		t.Error("Head of absent node succeeded")
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeMute, 2))
	if _, err := e.Head(2); err == nil {
		t.Error("Head of muted node succeeded")
	}
	h, err := e.Head(1)
	if err != nil || h != 1 {
		t.Errorf("Head(1) = %d, %v; want 1 (it is in the MIS)", h, err)
	}
}
