package protocol

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/simnet"
	"dynmis/workload"
)

// TestFaultInjectionDetected demonstrates that the reliable-links
// assumption of the model is load-bearing: when broadcasts are randomly
// dropped, either the network fails to quiesce or the stable-state checker
// reports the inconsistency (stale knowledge or a broken invariant). The
// protocol must never silently "succeed" into a wrong structure that the
// checker also blesses.
func TestFaultInjectionDetected(t *testing.T) {
	corrupted := 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		e := New(uint64(trial))
		rng := rand.New(rand.NewPCG(uint64(trial), 5))
		if _, err := e.ApplyAll(workload.GNP(rng, 40, 0.12)); err != nil {
			t.Fatal(err)
		}
		if err := e.Check(); err != nil {
			t.Fatalf("pre-fault check: %v", err)
		}

		// Drop 30% of state announcements from here on.
		dropRng := rand.New(rand.NewPCG(uint64(trial), 6))
		e.net.Fault = func(_, _ graph.NodeID, _ simnet.Payload) bool {
			return dropRng.Float64() < 0.3
		}
		var sawError bool
		for _, c := range workload.EdgeChurn(rng, e.Graph(), 30) {
			if _, err := e.Apply(c); err != nil {
				sawError = true // failed to quiesce — acceptable detection
				break
			}
			if err := e.Check(); err != nil {
				sawError = true // checker caught the corruption
				break
			}
			want := core.GreedyMIS(e.Graph().Clone(), e.Order())
			if !core.EqualStates(e.State(), want) {
				sawError = true // structure silently diverged, but tests see it
				break
			}
		}
		if sawError {
			corrupted++
		}
		if e.net.Metrics.Dropped == 0 && !sawError {
			t.Fatalf("trial %d: fault injector never fired", trial)
		}
	}
	// With a 30% drop rate over 30 changes, essentially every trial must
	// surface the corruption through one of the three detectors.
	if corrupted < trials*8/10 {
		t.Errorf("only %d/%d faulty trials were detected", corrupted, trials)
	}
	t.Logf("detected corruption in %d/%d faulty runs", corrupted, trials)
}

// TestKnowledgeCorruptionCaughtByCheck verifies the checker itself: if a
// node's view of a neighbor is tampered with, Check must fail loudly.
func TestKnowledgeCorruptionCaughtByCheck(t *testing.T) {
	e := New(3)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 1, 2))
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}

	// Flip node 3's belief about node 1's state.
	info := e.procs[3].nbr[1]
	if info.st == StateIn {
		info.st = StateOut
	} else {
		info.st = StateIn
	}
	if err := e.Check(); err == nil {
		t.Error("Check missed corrupted neighbor knowledge")
	}
	// Restore, then corrupt the priority instead.
	want, _ := e.Order().Priority(1)
	q := e.procs[1]
	info.st = stateOf(q)
	info.prio = want + 1
	if err := e.Check(); err == nil {
		t.Error("Check missed corrupted neighbor priority")
	}
}

// stateOf returns a proc's current protocol state (test helper).
func stateOf(n *node) State { return n.st }

// TestOutputCorruptionCaughtByCheck verifies that a tampered output
// violates the MIS invariant check.
func TestOutputCorruptionCaughtByCheck(t *testing.T) {
	e := New(4)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	p := e.procs[2]
	if p.st == StateIn {
		p.st = StateOut
	} else {
		p.st = StateIn
	}
	if err := e.Check(); err == nil {
		t.Error("Check missed a corrupted output")
	}
}
