package protocol

import (
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
)

// nbrInfo is a node's knowledge about one neighbor: its priority and the
// last state it announced. In a stable configuration this knowledge is
// exact, which is the protocol's steady-state invariant.
type nbrInfo struct {
	prio order.Priority
	st   State
}

// node is the Algorithm 2 state machine. It only ever reads its own fields
// and the messages delivered to it, so procs can be stepped in parallel.
type node struct {
	id   graph.NodeID
	prio order.Priority
	st   State

	nbr map[graph.NodeID]*nbrInfo

	// enteredC is the round of the most recent transition into C.
	enteredC int
	// retiring is set by evRetire: on resolution the node broadcasts
	// retireMsg instead of a state, and mute keeps it listening.
	retiring bool
	mute     bool
	// muted marks a retired-but-listening node.
	muted bool

	// pendingHello, helloNeedInfo: a Hello broadcast is due.
	pendingHello  bool
	helloNeedInfo bool
	// pendingReply: a Hello reply (NeedInfo=false) is due to introduce
	// this node to a newcomer.
	pendingReply bool
	// awaitInfo is the number of neighbor Hellos a fresh node still
	// expects before it may evaluate its invariant.
	awaitInfo int
	// pendingEval requests an invariant evaluation once awaitInfo is 0.
	pendingEval bool

	// cEntries counts transitions into C during the current recovery
	// (the engine resets it per change); it drives |S| and flip
	// accounting.
	cEntries int
	// resolved counts R -> {M, M̄} transitions during the current
	// recovery.
	resolved int
}

var _ simnet.Proc = (*node)(nil)

func newNode(id graph.NodeID, prio order.Priority, st State) *node {
	return &node{
		id:       id,
		prio:     prio,
		st:       st,
		nbr:      make(map[graph.NodeID]*nbrInfo),
		enteredC: -1,
	}
}

// lower reports whether neighbor u (with priority p) precedes this node in
// π.
func (n *node) lower(u graph.NodeID, p order.Priority) bool {
	return order.Less(p, u, n.prio, n.id)
}

// lowerInMIS reports whether any known earlier neighbor is in state M.
func (n *node) lowerInMIS() bool {
	for u, info := range n.nbr {
		if n.lower(u, info.prio) && info.st == StateIn {
			return true
		}
	}
	return false
}

// higherInC reports whether any known later neighbor is in state C.
func (n *node) higherInC() bool {
	for u, info := range n.nbr {
		if !n.lower(u, info.prio) && info.st == StateC {
			return true
		}
	}
	return false
}

// lowersSettled reports whether every known earlier neighbor is in M or M̄.
func (n *node) lowersSettled() bool {
	for u, info := range n.nbr {
		if n.lower(u, info.prio) && info.st != StateIn && info.st != StateOut {
			return false
		}
	}
	return true
}

// enterC transitions into C and returns the announcement payload.
func (n *node) enterC(round int) simnet.Payload {
	n.st = StateC
	n.enteredC = round
	n.cEntries++
	return stateMsg{St: StateC}
}

// Step implements simnet.Proc. It ingests this round's messages, applies
// at most one state transition, and returns the corresponding broadcast.
func (n *node) Step(round int, inbox []simnet.Message) simnet.Payload {
	// Phase 1: ingest all messages, updating knowledge and collecting
	// triggers.
	lowerNewlyC := false   // some earlier neighbor announced C this round
	topoViolation := false // a topology event may have broken my invariant
	retireNow := false

	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case stateMsg:
			info, ok := n.nbr[m.From]
			if !ok {
				continue // unknown sender (e.g. heard while being introduced)
			}
			if p.St == StateC && info.st != StateC && n.lower(m.From, info.prio) {
				lowerNewlyC = true
			}
			info.st = p.St
		case helloMsg:
			if info, ok := n.nbr[m.From]; ok {
				info.prio = p.Prio
				info.st = p.St
			} else {
				n.nbr[m.From] = &nbrInfo{prio: p.Prio, st: p.St}
				if p.NeedInfo {
					n.pendingReply = true
				}
			}
			if n.awaitInfo > 0 {
				n.awaitInfo--
			}
			// A new or refreshed earlier M-neighbor can violate an
			// M-node (edge insertion, §4.1).
			topoViolation = true
		case retireMsg:
			delete(n.nbr, m.From)
			topoViolation = true
		case evEdgeAttached:
			n.pendingHello = true
			// The peer's Hello will arrive and trigger evaluation.
		case evEdgeDown:
			delete(n.nbr, p.Peer)
			topoViolation = true
		case evNodeGone:
			delete(n.nbr, p.Peer)
			topoViolation = true
		case evRetire:
			n.retiring = true
			n.mute = p.Mute
			retireNow = true
		case evInserted:
			n.awaitInfo = p.Expect
			n.pendingHello = true
			n.helloNeedInfo = true
			n.pendingEval = true
		case evUnmute:
			n.muted = false
			n.retiring = false
			n.mute = false
			n.st = StateOut
			n.pendingHello = true
			n.pendingEval = true
		}
	}

	// A muted node only listens.
	if n.muted {
		return nil
	}
	if n.st == StateGone {
		return nil
	}

	// Phase 2: at most one broadcast per round, in priority order:
	// introductions first (they carry information others are waiting
	// for), then state transitions.
	if n.pendingHello {
		n.pendingHello = false
		need := n.helloNeedInfo
		n.helloNeedInfo = false
		return helloMsg{Prio: n.prio, St: n.st, NeedInfo: need}
	}
	if n.pendingReply {
		n.pendingReply = false
		return helloMsg{Prio: n.prio, St: n.st, NeedInfo: false}
	}

	switch n.st {
	case StateIn:
		if retireNow {
			// A retiring MIS node must leave: its invariant is
			// violated by definition, so it enters C (template's
			// S0 = {v*}).
			return n.enterC(round)
		}
		// Rule 1.
		if lowerNewlyC {
			return n.enterC(round)
		}
		// Topology-induced violation (edge insertion joining two
		// M-nodes; the later endpoint reacts).
		if topoViolation && n.lowerInMIS() {
			return n.enterC(round)
		}
	case StateOut:
		if retireNow {
			// A retiring non-MIS node constrains nobody: it can
			// depart immediately (S = ∅).
			return n.finishRetirement()
		}
		if n.pendingEval {
			if n.awaitInfo > 0 {
				return nil // still gathering introductions
			}
			n.pendingEval = false
			if !n.lowerInMIS() {
				return n.enterC(round)
			}
			return nil
		}
		// Rule 2.
		if lowerNewlyC && !n.lowerInMIS() {
			return n.enterC(round)
		}
		// Topology-induced violation (lost the only earlier
		// M-neighbor).
		if topoViolation && !n.lowerInMIS() {
			return n.enterC(round)
		}
	case StateC:
		// Rule 3: leave C for R once no later neighbor is in C and at
		// least two rounds passed since entering C.
		if round >= n.enteredC+2 && !n.higherInC() {
			n.st = StateR
			return stateMsg{St: StateR}
		}
	case StateR:
		// Rule 4: resolve once every earlier neighbor has settled.
		if n.lowersSettled() {
			n.resolved++
			if n.retiring {
				return n.finishRetirement()
			}
			if n.lowerInMIS() {
				n.st = StateOut
			} else {
				n.st = StateIn
			}
			return stateMsg{St: n.st}
		}
	}
	return nil
}

// finishRetirement completes a graceful departure: the node leaves with
// output M̄ and tells its neighbors to forget it. A muting node stays as a
// listener.
func (n *node) finishRetirement() simnet.Payload {
	n.retiring = false
	if n.mute {
		n.muted = true
		n.st = StateOut
	} else {
		n.st = StateGone
	}
	return retireMsg{}
}

// Quiescent implements simnet.Proc: the node is passive iff it is settled
// and owes no broadcast.
func (n *node) Quiescent() bool {
	if n.muted || n.st == StateGone {
		return true
	}
	if n.pendingHello || n.pendingReply || n.pendingEval || n.retiring {
		return false
	}
	return n.st == StateIn || n.st == StateOut
}
