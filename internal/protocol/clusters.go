package protocol

import (
	"fmt"

	"dynmis/internal/graph"
)

// Head returns v's correlation-clustering pivot computed purely from v's
// local knowledge, the way the paper describes the distributed clustering
// (§1.1): an MIS node is its own head; any other node picks its earliest
// (minimum-π) MIS neighbor. It requires a stable configuration and only
// reads state the node already has — no extra communication.
func (e *Engine) Head(v graph.NodeID) (graph.NodeID, error) {
	p, ok := e.procs[v]
	if !ok || p.muted {
		return graph.None, fmt.Errorf("protocol: node %d is not visible", v)
	}
	switch p.st {
	case StateIn:
		return v, nil
	case StateOut:
		head := graph.None
		var headPrio uint64
		for u, info := range p.nbr {
			if info.st != StateIn {
				continue
			}
			if head == graph.None || uint64(info.prio) < headPrio ||
				(uint64(info.prio) == headPrio && u < head) {
				head = u
				headPrio = uint64(info.prio)
			}
		}
		if head == graph.None {
			return graph.None, fmt.Errorf("protocol: node %d sees no MIS neighbor (unstable or corrupt)", v)
		}
		return head, nil
	default:
		return graph.None, fmt.Errorf("protocol: node %d is mid-recovery (%v)", v, p.st)
	}
}

// Clusters assembles the full pivot clustering from the node-local views.
// In a stable configuration it equals the model-level clustering derived
// from the greedy MIS (tested against core.GreedyClusters).
func (e *Engine) Clusters() (map[graph.NodeID]graph.NodeID, error) {
	out := make(map[graph.NodeID]graph.NodeID, e.visible.NodeCount())
	for _, v := range e.visible.Nodes() {
		h, err := e.Head(v)
		if err != nil {
			return nil, err
		}
		out[v] = h
	}
	return out, nil
}
