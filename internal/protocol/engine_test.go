package protocol

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
)

func apply(t *testing.T, e *Engine, c graph.Change) core.Report {
	t.Helper()
	rep, err := e.Apply(c)
	if err != nil {
		t.Fatalf("Apply(%s): %v", c, err)
	}
	return rep
}

// checkOracle asserts history independence: after quiescence the protocol
// state must equal the sequential greedy MIS on the visible graph under the
// same order, and all knowledge must be exact.
func checkOracle(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	want := core.GreedyMIS(e.Graph().Clone(), e.Order())
	if !core.EqualStates(e.State(), want) {
		t.Fatalf("protocol state diverged from greedy oracle:\n got %v\nwant %v",
			core.MISOf(e.State()), core.MISOf(want))
	}
}

func TestSingleNodeJoins(t *testing.T) {
	e := New(1)
	rep := apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	if !e.InMIS(1) {
		t.Fatal("isolated node must join the MIS")
	}
	if rep.Adjustments != 1 {
		t.Errorf("adjustments = %d, want 1", rep.Adjustments)
	}
	if rep.Rounds == 0 || rep.Rounds > 8 {
		t.Errorf("rounds = %d, want small constant", rep.Rounds)
	}
	checkOracle(t, e)
}

func TestEdgeInsertEvictsLaterEndpoint(t *testing.T) {
	e := New(2)
	ord := e.Order()
	ord.Set(1, 10)
	ord.Set(2, 20)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2))
	if !e.InMIS(1) || !e.InMIS(2) {
		t.Fatal("both isolated nodes should be in the MIS")
	}
	rep := apply(t, e, graph.EdgeChange(graph.EdgeInsert, 1, 2))
	checkOracle(t, e)
	if !e.InMIS(1) || e.InMIS(2) {
		t.Errorf("MIS = %v, want [1]", e.MIS())
	}
	if rep.Adjustments != 1 {
		t.Errorf("adjustments = %d, want 1 (only node 2 leaves)", rep.Adjustments)
	}
	if rep.SSize != 1 {
		t.Errorf("|S| = %d, want 1", rep.SSize)
	}
}

func TestEdgeDeletePromotesLaterEndpoint(t *testing.T) {
	e := New(3)
	ord := e.Order()
	ord.Set(1, 10)
	ord.Set(2, 20)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	for _, kind := range []graph.ChangeKind{graph.EdgeDeleteGraceful} {
		rep := apply(t, e, graph.EdgeChange(kind, 1, 2))
		checkOracle(t, e)
		if !e.InMIS(2) {
			t.Fatalf("%v: node 2 should join after losing its blocker", kind)
		}
		if rep.Adjustments != 1 {
			t.Errorf("%v: adjustments = %d, want 1", kind, rep.Adjustments)
		}
	}
}

func TestPathExampleCascade(t *testing.T) {
	// The §3 worked example, driven through the full protocol.
	e := New(0)
	ord := e.Order()
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5} // x, v*, u1, w1, w2, u2
	for i, v := range ids {
		ord.Set(v, order.Priority(i+1))
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, 0))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 2))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 4, 3))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 5, 1, 4))
	checkOracle(t, e)

	rep := apply(t, e, graph.EdgeChange(graph.EdgeInsert, 0, 1))
	checkOracle(t, e)
	if rep.SSize != 5 {
		t.Errorf("|S| = %d, want 5", rep.SSize)
	}
	if rep.Adjustments != 4 {
		t.Errorf("adjustments = %d, want 4", rep.Adjustments)
	}
	// Algorithm 2 guarantees each node changes output at most once: the
	// C-entry count per node must be 1 for a single-source change
	// (Lemma 8), so flips equals |S|.
	if rep.Flips != rep.SSize {
		t.Errorf("flips = %d, want %d (single C entry per node)", rep.Flips, rep.SSize)
	}
}

func TestGracefulNodeDeleteCascades(t *testing.T) {
	e := New(4)
	ord := e.Order()
	ord.Set(1, 10)
	ord.Set(2, 20)
	ord.Set(3, 30)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 2))
	rep := apply(t, e, graph.NodeChange(graph.NodeDeleteGraceful, 1))
	checkOracle(t, e)
	if e.Graph().HasNode(1) {
		t.Fatal("deleted node still visible")
	}
	if !e.InMIS(2) || e.InMIS(3) {
		t.Errorf("MIS = %v, want [2]", e.MIS())
	}
	if rep.SSize != 3 || rep.Adjustments != 3 {
		t.Errorf("got |S|=%d adj=%d, want 3 and 3", rep.SSize, rep.Adjustments)
	}
}

func TestAbruptNodeDeleteMultiSource(t *testing.T) {
	// A star whose center is in the MIS: abrupt deletion makes every
	// leaf a seed of the cascade (S1 = all leaves).
	e := New(5)
	ord := e.Order()
	ord.Set(0, 1) // center, earliest
	for leaf := graph.NodeID(1); leaf <= 6; leaf++ {
		ord.Set(leaf, order.Priority(10*leaf))
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, 0))
	for leaf := graph.NodeID(1); leaf <= 6; leaf++ {
		apply(t, e, graph.NodeChange(graph.NodeInsert, leaf, 0))
	}
	if !e.InMIS(0) {
		t.Fatal("center should be in MIS")
	}
	rep := apply(t, e, graph.NodeChange(graph.NodeDeleteAbrupt, 0))
	checkOracle(t, e)
	for leaf := graph.NodeID(1); leaf <= 6; leaf++ {
		if !e.InMIS(leaf) {
			t.Errorf("leaf %d should join after center vanishes", leaf)
		}
	}
	// S = {center} ∪ all 6 leaves.
	if rep.SSize != 7 {
		t.Errorf("|S| = %d, want 7", rep.SSize)
	}
	if rep.Adjustments != 7 {
		t.Errorf("adjustments = %d, want 7", rep.Adjustments)
	}
}

func TestMuteUnmuteRoundTripO1Broadcasts(t *testing.T) {
	e := New(6)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 1, 2))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 4, 3))
	before := e.State()

	apply(t, e, graph.NodeChange(graph.NodeMute, 2))
	checkOracle(t, e)
	if e.Graph().HasNode(2) {
		t.Fatal("muted node still visible")
	}

	// While node 2 listens, change the rest of the world: it must keep
	// its knowledge fresh.
	apply(t, e, graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 3))
	checkOracle(t, e)
	apply(t, e, graph.EdgeChange(graph.EdgeInsert, 1, 3))
	checkOracle(t, e)

	rep := apply(t, e, graph.NodeChange(graph.NodeUnmute, 2, 1, 3))
	checkOracle(t, e)
	if !core.EqualStates(before, e.State()) {
		t.Errorf("mute/unmute round trip changed the MIS: %v -> %v",
			core.MISOf(before), core.MISOf(e.State()))
	}
	// Unmuting costs one Hello plus at most three state announcements
	// per influenced node (Lemma 8); O(1) holds in expectation because
	// E[|S|] ≤ 1.
	if rep.Broadcasts > 3*rep.SSize+2 {
		t.Errorf("unmute broadcasts = %d, want ≤ 3|S|+2 = %d", rep.Broadcasts, 3*rep.SSize+2)
	}
}

func TestUnmuteWithUnknownNeighborRejected(t *testing.T) {
	e := New(7)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))
	apply(t, e, graph.NodeChange(graph.NodeMute, 2))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 3, 1))
	if _, err := e.Apply(graph.NodeChange(graph.NodeUnmute, 2, 1, 3)); !errors.Is(err, ErrUnmuteUnknownNeighbor) {
		t.Fatalf("err = %v, want ErrUnmuteUnknownNeighbor", err)
	}
}

func TestUnmuteNotMutedRejected(t *testing.T) {
	e := New(8)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	if _, err := e.Apply(graph.NodeChange(graph.NodeUnmute, 9)); !errors.Is(err, graph.ErrInvalidChange) {
		t.Fatalf("err = %v, want ErrInvalidChange", err)
	}
}

func TestNodeInsertBroadcastsScaleWithDegree(t *testing.T) {
	// Lemma 10: node insertion costs O(d(v*)) broadcasts — the degree-d
	// introduction replies dominate.
	e := New(9)
	var hub []graph.NodeID
	for v := graph.NodeID(0); v < 20; v++ {
		apply(t, e, graph.NodeChange(graph.NodeInsert, v))
		hub = append(hub, v)
	}
	rep := apply(t, e, graph.NodeChange(graph.NodeInsert, 100, hub...))
	checkOracle(t, e)
	if rep.Broadcasts < 20 {
		t.Errorf("broadcasts = %d, want ≥ degree 20 (introduction replies)", rep.Broadcasts)
	}
	if rep.Broadcasts > 20+10 {
		t.Errorf("broadcasts = %d, want ≈ d + O(1)", rep.Broadcasts)
	}
}

func TestConstantBroadcastsForEdgeChanges(t *testing.T) {
	// Lemma 9: edge changes cost O(1) broadcasts regardless of scale;
	// with |S| small the protocol sends at most ~3|S|+2 broadcasts.
	e := New(10)
	rng := rand.New(rand.NewPCG(1, 1))
	var nodes []graph.NodeID
	for v := graph.NodeID(0); v < 60; v++ {
		var nbrs []graph.NodeID
		for _, u := range nodes {
			if rng.Float64() < 0.08 {
				nbrs = append(nbrs, u)
			}
		}
		apply(t, e, graph.NodeChange(graph.NodeInsert, v, nbrs...))
		nodes = append(nodes, v)
	}
	checkOracle(t, e)

	total, trials := 0, 0
	for i := 0; i < 60; i++ {
		g := e.Graph()
		if i%2 == 0 {
			es := g.Edges()
			edge := es[rng.IntN(len(es))]
			rep := apply(t, e, graph.EdgeChange(graph.EdgeDeleteAbrupt, edge[0], edge[1]))
			total += rep.Broadcasts
		} else {
			u := nodes[rng.IntN(len(nodes))]
			v := nodes[rng.IntN(len(nodes))]
			if u == v || g.HasEdge(u, v) || !g.HasNode(u) || !g.HasNode(v) {
				continue
			}
			rep := apply(t, e, graph.EdgeChange(graph.EdgeInsert, u, v))
			total += rep.Broadcasts
		}
		trials++
	}
	checkOracle(t, e)
	mean := float64(total) / float64(trials)
	if mean > 6 {
		t.Errorf("mean broadcasts per edge change = %.2f, want small constant", mean)
	}
}

// TestRandomChurnDifferential is the central correctness test: a long
// random sequence over all eight change kinds, checking after every change
// that the protocol's stable state equals the greedy oracle and that all
// neighbor knowledge is exact.
func TestRandomChurnDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	e := New(1000)
	next := graph.NodeID(0)
	present := map[graph.NodeID]bool{}
	muted := map[graph.NodeID][]graph.NodeID{} // muted node -> comm nbrs at mute

	randPresent := func() graph.NodeID {
		i := rng.IntN(len(present))
		for v := range present {
			if i == 0 {
				return v
			}
			i--
		}
		panic("unreachable")
	}

	steps := 600
	if testing.Short() {
		steps = 150
	}
	for step := 0; step < steps; step++ {
		g := e.Graph()
		var c graph.Change
		op := rng.IntN(100)
		switch {
		case op < 22: // node insert
			var nbrs []graph.NodeID
			for v := range present {
				if rng.Float64() < 0.12 {
					nbrs = append(nbrs, v)
				}
			}
			c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
			present[next] = true
			next++
		case op < 32: // node delete
			if len(present) == 0 {
				continue
			}
			v := randPresent()
			kind := graph.NodeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.NodeDeleteAbrupt
			}
			c = graph.NodeChange(kind, v)
			delete(present, v)
		case op < 40: // mute
			if len(present) < 2 || len(muted) > 3 {
				continue
			}
			v := randPresent()
			c = graph.NodeChange(graph.NodeMute, v)
			muted[v] = g.Neighbors(v)
			delete(present, v)
		case op < 48: // unmute with surviving known neighbors
			if len(muted) == 0 {
				continue
			}
			var v graph.NodeID
			for m := range muted {
				v = m
				break
			}
			var nbrs []graph.NodeID
			for _, u := range muted[v] {
				if present[u] {
					nbrs = append(nbrs, u)
				}
			}
			c = graph.NodeChange(graph.NodeUnmute, v, nbrs...)
			delete(muted, v)
			present[v] = true
		case op < 78: // edge insert
			if len(present) < 2 {
				continue
			}
			u, v := randPresent(), randPresent()
			if u == v || g.HasEdge(u, v) {
				continue
			}
			c = graph.EdgeChange(graph.EdgeInsert, u, v)
		default: // edge delete
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			edge := es[rng.IntN(len(es))]
			kind := graph.EdgeDeleteGraceful
			if rng.IntN(2) == 0 {
				kind = graph.EdgeDeleteAbrupt
			}
			c = graph.EdgeChange(kind, edge[0], edge[1])
		}

		rep, err := e.Apply(c)
		if err != nil {
			t.Fatalf("step %d: Apply(%s): %v", step, c, err)
		}
		if rep.SSize < rep.Adjustments {
			t.Fatalf("step %d: |S|=%d < adjustments=%d", step, rep.SSize, rep.Adjustments)
		}
		checkOracle(t, e)
	}
}

// TestParallelExecutionIdentical verifies that goroutine-parallel round
// execution produces exactly the sequential result.
func TestParallelExecutionIdentical(t *testing.T) {
	run := func(workers int) ([]graph.NodeID, core.Report) {
		e := New(77)
		if workers > 1 {
			e.SetParallel(workers)
		}
		rng := rand.New(rand.NewPCG(7, 8))
		var total core.Report
		var nodes []graph.NodeID
		for v := graph.NodeID(0); v < 50; v++ {
			var nbrs []graph.NodeID
			for _, u := range nodes {
				if rng.Float64() < 0.1 {
					nbrs = append(nbrs, u)
				}
			}
			rep, err := e.Apply(graph.NodeChange(graph.NodeInsert, v, nbrs...))
			if err != nil {
				t.Fatal(err)
			}
			total.Add(rep)
			nodes = append(nodes, v)
		}
		for i := 0; i < 30; i++ {
			es := e.Graph().Edges()
			if len(es) == 0 {
				break
			}
			edge := es[rng.IntN(len(es))]
			rep, err := e.Apply(graph.EdgeChange(graph.EdgeDeleteAbrupt, edge[0], edge[1]))
			if err != nil {
				t.Fatal(err)
			}
			total.Add(rep)
		}
		return e.MIS(), total
	}
	misSeq, repSeq := run(1)
	misPar, repPar := run(4)
	if len(misSeq) != len(misPar) {
		t.Fatalf("parallel MIS differs: %v vs %v", misSeq, misPar)
	}
	for i := range misSeq {
		if misSeq[i] != misPar[i] {
			t.Fatalf("parallel MIS differs at %d: %v vs %v", i, misSeq, misPar)
		}
	}
	if repSeq != repPar {
		t.Fatalf("parallel reports differ: %+v vs %+v", repSeq, repPar)
	}
}

func TestInvalidChangesRejected(t *testing.T) {
	e := New(11)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	bad := []graph.Change{
		graph.EdgeChange(graph.EdgeInsert, 1, 9),
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeDeleteAbrupt, 9),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2),
	}
	for _, c := range bad {
		if _, err := e.Apply(c); err == nil {
			t.Errorf("Apply(%s) succeeded, want error", c)
		}
	}
	checkOracle(t, e)
}
