package protocol

import (
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/simnet"
)

// mkNode builds a node with the given state and known neighbors
// (id -> prio, st).
func mkNode(id graph.NodeID, prio order.Priority, st State, nbrs map[graph.NodeID]nbrInfo) *node {
	n := newNode(id, prio, st)
	for u, info := range nbrs {
		cp := info
		n.nbr[u] = &cp
	}
	return n
}

func stateChange(from graph.NodeID, st State) simnet.Message {
	return simnet.Message{From: from, Payload: stateMsg{St: st}}
}

func TestRule1InNodeFollowsLowerC(t *testing.T) {
	n := mkNode(10, 100, StateIn, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateOut},
		2: {prio: 200, st: StateOut}, // later neighbor: must not trigger
	})
	// A later neighbor entering C is not a rule-1 trigger.
	if out := n.Step(1, []simnet.Message{stateChange(2, StateC)}); out != nil {
		t.Fatalf("later neighbor's C triggered a transition: %v", out)
	}
	if n.st != StateIn {
		t.Fatalf("state = %v, want M", n.st)
	}
	// An earlier neighbor entering C is.
	out := n.Step(2, []simnet.Message{stateChange(1, StateC)})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateC {
		t.Fatalf("expected C announcement, got %v", out)
	}
	if n.st != StateC || n.enteredC != 2 || n.cEntries != 1 {
		t.Fatalf("node after rule 1: st=%v enteredC=%d entries=%d", n.st, n.enteredC, n.cEntries)
	}
}

func TestRule2OutNodeGuardedByOtherMIS(t *testing.T) {
	n := mkNode(10, 100, StateOut, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateIn},
		2: {prio: 20, st: StateIn},
	})
	// Neighbor 1 enters C, but neighbor 2 still pins the node out: no
	// transition (rule 2's guard).
	if out := n.Step(1, []simnet.Message{stateChange(1, StateC)}); out != nil {
		t.Fatalf("guarded rule 2 fired: %v", out)
	}
	// Now neighbor 2 enters C too: all earlier MIS neighbors are in C.
	out := n.Step(2, []simnet.Message{stateChange(2, StateC)})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateC {
		t.Fatalf("expected C announcement, got %v", out)
	}
}

func TestRule3TwoRoundWaitAndHigherC(t *testing.T) {
	n := mkNode(10, 100, StateIn, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateOut},
		2: {prio: 200, st: StateOut},
	})
	if out := n.Step(5, []simnet.Message{stateChange(1, StateC)}); out == nil {
		t.Fatal("rule 1 should fire")
	}
	// Round 6: only one round since entering C — must wait.
	if out := n.Step(6, nil); out != nil {
		t.Fatalf("left C before the two-round wait: %v", out)
	}
	// Round 7, but a later neighbor is now in C — must keep waiting.
	if out := n.Step(7, []simnet.Message{stateChange(2, StateC)}); out != nil {
		t.Fatalf("left C with a later neighbor in C: %v", out)
	}
	// Later neighbor leaves C: now the node may move to R.
	out := n.Step(8, []simnet.Message{stateChange(2, StateR)})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateR {
		t.Fatalf("expected R announcement, got %v", out)
	}
	if n.st != StateR {
		t.Fatalf("state = %v, want R", n.st)
	}
}

func TestRule4ResolvesByEarlierStates(t *testing.T) {
	// In R, with one earlier neighbor still in R: blocked.
	n := mkNode(10, 100, StateR, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateR},
	})
	if out := n.Step(1, nil); out != nil {
		t.Fatalf("resolved with an unsettled earlier neighbor: %v", out)
	}
	// The earlier neighbor resolves to M: this node must become M̄.
	out := n.Step(2, []simnet.Message{stateChange(1, StateIn)})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateOut {
		t.Fatalf("expected M̄ resolution, got %v", out)
	}
	// Symmetric case: earlier neighbor out -> node joins.
	m := mkNode(10, 100, StateR, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateOut},
	})
	out = m.Step(1, nil)
	if msg, ok := out.(stateMsg); !ok || msg.St != StateIn {
		t.Fatalf("expected M resolution, got %v", out)
	}
	if m.resolved != 1 {
		t.Fatalf("resolved counter = %d", m.resolved)
	}
}

func TestHelloIntroductionAndReply(t *testing.T) {
	n := mkNode(10, 100, StateIn, nil)
	// Hello from an unknown peer asking for info: record it and reply in
	// the same round (the reply is broadcast at this round's end and
	// delivered next round).
	out := n.Step(1, []simnet.Message{{From: 7, Payload: helloMsg{Prio: 5, St: StateOut, NeedInfo: true}}})
	if h, ok := out.(helloMsg); !ok || h.Prio != 100 || h.NeedInfo {
		t.Fatalf("expected Hello reply with own priority, got %v", out)
	}
	if info, ok := n.nbr[7]; !ok || info.prio != 5 || info.st != StateOut {
		t.Fatal("peer knowledge not recorded")
	}
	// A second Hello from the now-known peer must not trigger a reply.
	if out := n.Step(3, []simnet.Message{{From: 7, Payload: helloMsg{Prio: 5, St: StateOut, NeedInfo: true}}}); out != nil {
		t.Fatalf("replied to known peer: %v", out)
	}
}

func TestRetireOutNodeImmediate(t *testing.T) {
	n := mkNode(10, 100, StateOut, map[graph.NodeID]nbrInfo{1: {prio: 10, st: StateIn}})
	out := n.Step(1, []simnet.Message{{From: graph.None, Payload: evRetire{}}})
	if _, ok := out.(retireMsg); !ok {
		t.Fatalf("expected immediate retirement, got %v", out)
	}
	if n.st != StateGone || !n.Quiescent() {
		t.Fatalf("retired node st=%v quiescent=%v", n.st, n.Quiescent())
	}
	// A gone node ignores everything.
	if out := n.Step(2, []simnet.Message{stateChange(1, StateC)}); out != nil {
		t.Fatalf("gone node acted: %v", out)
	}
}

func TestRetireInNodeEntersC(t *testing.T) {
	n := mkNode(10, 100, StateIn, map[graph.NodeID]nbrInfo{1: {prio: 10, st: StateOut}})
	out := n.Step(1, []simnet.Message{{From: graph.None, Payload: evRetire{}}})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateC {
		t.Fatalf("retiring MIS node must enter C, got %v", out)
	}
	if !n.retiring {
		t.Fatal("retiring flag lost")
	}
	// Walk it through C -> R -> retirement.
	if out := n.Step(3, nil); out == nil {
		t.Fatal("rule 3 should fire at round enteredC+2")
	}
	out = n.Step(4, nil)
	if _, ok := out.(retireMsg); !ok {
		t.Fatalf("expected retirement at resolution, got %v", out)
	}
	if n.st != StateGone {
		t.Fatalf("state = %v, want gone", n.st)
	}
}

func TestMutedNodeListensSilently(t *testing.T) {
	n := mkNode(10, 100, StateOut, map[graph.NodeID]nbrInfo{1: {prio: 10, st: StateIn}})
	n.muted = true
	if out := n.Step(1, []simnet.Message{stateChange(1, StateOut)}); out != nil {
		t.Fatalf("muted node broadcast: %v", out)
	}
	if n.nbr[1].st != StateOut {
		t.Fatal("muted node failed to update knowledge")
	}
	if !n.Quiescent() {
		t.Fatal("muted node not quiescent")
	}
	// Unmute: it announces itself and then evaluates.
	out := n.Step(2, []simnet.Message{{From: graph.None, Payload: evUnmute{}}})
	if h, ok := out.(helloMsg); !ok || h.NeedInfo {
		t.Fatalf("expected warm Hello, got %v", out)
	}
	// With an earlier Out neighbor only, the invariant demands M: enter C.
	out = n.Step(3, nil)
	if msg, ok := out.(stateMsg); !ok || msg.St != StateC {
		t.Fatalf("expected C after unmute evaluation, got %v", out)
	}
}

func TestEventEdgeDownTriggersEvaluation(t *testing.T) {
	// Out node whose only earlier MIS neighbor disappears with the edge.
	n := mkNode(10, 100, StateOut, map[graph.NodeID]nbrInfo{
		1: {prio: 10, st: StateIn},
		2: {prio: 200, st: StateOut},
	})
	out := n.Step(1, []simnet.Message{{From: graph.None, Payload: evEdgeDown{Peer: 1}}})
	if msg, ok := out.(stateMsg); !ok || msg.St != StateC {
		t.Fatalf("expected C after losing the blocker, got %v", out)
	}
	if _, ok := n.nbr[1]; ok {
		t.Fatal("knowledge of removed edge survives")
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateIn: "M", StateOut: "M̄", StateC: "C", StateR: "R", StateGone: "gone", State(9): "?",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}
