package protocol

import (
	"testing"

	"dynmis/internal/graph"
	"dynmis/internal/order"
)

// buildReentryGadget constructs a two-wave topology for an abrupt deletion
// of the hub v* (Lemma 12): a fast branch delivers the C-wave to a high
// node v, which resolves; a slow branch — an ascending path of length
// slowLen — delivers a second wave to v's other earlier neighbor z much
// later, pulling v back into C.
//
// Layout (π values in parentheses):
//
//	hub v* (1) — a (10) — m (60) — v (100)
//	hub v* (1) — b (11) — p1 (20) — p2 (21) — … — p_slowLen — z (50) — v
//
// Initially v* is in the MIS, so both a and b are out with v* as their
// only earlier MIS neighbor: both are seeds of the abrupt-deletion
// cascade (S1), and the two waves race toward v.
func buildReentryGadget(t *testing.T, e *Engine, slowLen int) (v graph.NodeID) {
	t.Helper()
	ord := e.Order()
	const (
		hub = graph.NodeID(0)
		a   = graph.NodeID(1)
		b   = graph.NodeID(2)
		m   = graph.NodeID(3)
		z   = graph.NodeID(4)
	)
	v = graph.NodeID(5)
	ord.Set(hub, 1)
	ord.Set(a, 10)
	ord.Set(b, 11)
	ord.Set(m, 60)
	ord.Set(z, 50)
	ord.Set(v, 100)

	apply(t, e, graph.NodeChange(graph.NodeInsert, hub))
	apply(t, e, graph.NodeChange(graph.NodeInsert, a, hub))
	apply(t, e, graph.NodeChange(graph.NodeInsert, b, hub))
	apply(t, e, graph.NodeChange(graph.NodeInsert, m, a))

	prev := b
	for i := 0; i < slowLen; i++ {
		p := graph.NodeID(100 + i)
		ord.Set(p, order.Priority(20+i))
		apply(t, e, graph.NodeChange(graph.NodeInsert, p, prev))
		prev = p
	}
	apply(t, e, graph.NodeChange(graph.NodeInsert, z, prev))
	apply(t, e, graph.NodeChange(graph.NodeInsert, v, m, z))
	checkOracle(t, e)

	if !e.InMIS(hub) {
		t.Fatal("gadget precondition: hub must be in the MIS")
	}
	if e.InMIS(a) || e.InMIS(b) {
		t.Fatal("gadget precondition: both seeds must be out")
	}
	return v
}

// TestAbruptDeletionReentry searches slow-path lengths for an execution in
// which some node re-enters state C (flips > |S|), verifying that the
// protocol recovers to the greedy oracle in every case — the Lemma 12
// scenario.
func TestAbruptDeletionReentry(t *testing.T) {
	reentries := 0
	for slowLen := 4; slowLen <= 18; slowLen++ {
		e := New(0)
		buildReentryGadget(t, e, slowLen)
		rep := apply(t, e, graph.NodeChange(graph.NodeDeleteAbrupt, 0))
		checkOracle(t, e)
		if rep.Flips > rep.SSize {
			reentries++
			// Lemma 12: every re-entry is chargeable to a distinct
			// seed; with two seeds no node enters C more than twice,
			// so total flips stay ≤ 2|S|.
			if rep.Flips > 2*rep.SSize {
				t.Errorf("slowLen=%d: flips %d exceed 2|S| = %d", slowLen, rep.Flips, 2*rep.SSize)
			}
		}
	}
	if reentries == 0 {
		t.Error("no slow-path length produced a C re-entry; the Lemma 12 path is not exercised")
	}
	t.Logf("re-entry executions found: %d / 15", reentries)
}

// TestAbruptDeletionManySeeds stresses the multi-source case: a hub in
// the MIS with many dependent neighbors, each a seed, on top of a shared
// backbone. Correctness must hold for every seed count.
func TestAbruptDeletionManySeeds(t *testing.T) {
	for _, seeds := range []int{2, 5, 10, 20} {
		e := New(uint64(seeds))
		ord := e.Order()
		hub := graph.NodeID(0)
		ord.Set(hub, 1)
		apply(t, e, graph.NodeChange(graph.NodeInsert, hub))
		// Seeds form a path among themselves so the waves collide.
		prev := graph.None
		for i := 1; i <= seeds; i++ {
			s := graph.NodeID(i)
			ord.Set(s, order.Priority(10+i))
			if prev == graph.None {
				apply(t, e, graph.NodeChange(graph.NodeInsert, s, hub))
			} else {
				apply(t, e, graph.NodeChange(graph.NodeInsert, s, hub, prev))
			}
			prev = s
		}
		checkOracle(t, e)
		rep := apply(t, e, graph.NodeChange(graph.NodeDeleteAbrupt, hub))
		checkOracle(t, e)
		// All seeds were out (blocked only by the hub); after deletion
		// the odd-position ones join: everything flips exactly once
		// here, but the report must stay consistent.
		if rep.SSize < seeds/2 {
			t.Errorf("seeds=%d: |S| = %d suspiciously small", seeds, rep.SSize)
		}
	}
}
