package protocol

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

func TestTracerObservesRecovery(t *testing.T) {
	e := New(1)
	apply(t, e, graph.NodeChange(graph.NodeInsert, 1))
	apply(t, e, graph.NodeChange(graph.NodeInsert, 2, 1))

	var rounds []TraceRound
	e.SetTracer(func(tr TraceRound) { rounds = append(rounds, tr) })
	apply(t, e, graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2))
	e.SetTracer(nil)

	if len(rounds) == 0 {
		t.Fatal("tracer saw no rounds")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Round <= rounds[i-1].Round {
			t.Fatal("trace rounds not increasing")
		}
	}
	last := rounds[len(rounds)-1]
	for v, st := range last.States {
		if st != StateIn && st != StateOut {
			t.Errorf("node %d unsettled in final snapshot: %v", v, st)
		}
	}
	if last.StatesLine() == "" {
		t.Error("empty StatesLine")
	}

	// Removing the tracer must stop observations.
	n := len(rounds)
	apply(t, e, graph.EdgeChange(graph.EdgeInsert, 1, 2))
	if len(rounds) != n {
		t.Error("tracer fired after removal")
	}
}

// TestProtocolScale is a larger soak: a 2000-node network under churn,
// verifying O(1)-shaped costs and oracle equality at checkpoints.
func TestProtocolScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large soak")
	}
	const n = 2000
	rng := rand.New(rand.NewPCG(100, 200))
	e := New(77)
	if _, err := e.ApplyAll(workload.GNP(rng, n, 6/float64(n))); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)

	totalBcasts, steps := 0, 0
	for _, c := range workload.EdgeChurn(rng, e.Graph(), 300) {
		rep, err := e.Apply(c)
		if err != nil {
			t.Fatalf("Apply(%s): %v", c, err)
		}
		totalBcasts += rep.Broadcasts
		steps++
	}
	checkOracle(t, e)
	mean := float64(totalBcasts) / float64(steps)
	if mean > 8 {
		t.Errorf("mean broadcasts per change = %.2f at n=%d, want small constant", mean, n)
	}
	t.Logf("n=%d: %.2f broadcasts per change over %d changes", n, mean, steps)
}

// TestProtocolHeavyTailHubs exercises Barabási graphs, whose hubs stress
// the degree-dependent paths (insertion replies, abrupt hub deletions).
func TestProtocolHeavyTailHubs(t *testing.T) {
	rng := rand.New(rand.NewPCG(300, 400))
	e := New(55)
	if _, err := e.ApplyAll(workload.Barabasi(rng, 300, 2)); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, e)

	// Abruptly delete the five highest-degree hubs, one at a time.
	for i := 0; i < 5; i++ {
		g := e.Graph()
		var hub graph.NodeID = graph.None
		best := -1
		for _, v := range g.Nodes() {
			if d := g.Degree(v); d > best {
				best, hub = d, v
			}
		}
		rep, err := e.Apply(graph.NodeChange(graph.NodeDeleteAbrupt, hub))
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, e)
		if rep.SSize > 0 && rep.Flips > 2*best {
			t.Errorf("hub %d (deg %d): flips %d exceed Lemma 12's seed-count bound", hub, best, rep.Flips)
		}
	}
}
