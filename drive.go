package dynmis

import (
	"context"
	"fmt"
	"iter"

	"dynmis/internal/core"
)

// Source is a stream of topology changes — the one way bulk updates enter
// an engine. It is a plain Go 1.23 iterator, so anything that can yield
// changes is a Source: the generators in dynmis/workload, a recorded
// dynmis/trace replayed with trace.Reader.All, a slice via
// slices.Values, or a hand-written func. Sources are pull-driven and may
// be unbounded; Drive stops when the source is exhausted, the context is
// cancelled, or a change is rejected.
type Source = iter.Seq[Change]

// Summary is the aggregate cost account Drive returns: totals,
// per-application maxima and per-change means of adjustments, rounds,
// broadcasts and bits, plus change counts by kind. It is exactly the fold
// of the per-application Reports (see core.Summary.Observe); under
// WithInstrumentation, Summary.Metrics additionally carries the engine's
// complexity-counter delta over the drive.
type Summary = core.Summary

// SourceOf adapts explicit changes to a Source; for an existing slice,
// slices.Values works directly.
func SourceOf(cs ...Change) Source {
	return func(yield func(Change) bool) {
		for _, c := range cs {
			if !yield(c) {
				return
			}
		}
	}
}

// driveConfig is the resolved option set of one Drive call.
type driveConfig struct {
	window   int
	observer func(applied []Change, rep Report)
}

// DriveOption configures Maintainer.Drive.
type DriveOption func(*driveConfig)

// DriveWindow makes Drive deliver the stream in windows of n changes
// through ApplyBatch — one staged recovery per window (the §6 batch
// extension) — instead of one Apply per change. Window boundaries are
// also the granularity of the change feed and of Summary.Max. n ≤ 1
// selects the per-change default; the final window may be short.
func DriveWindow(n int) DriveOption {
	return func(c *driveConfig) { c.window = n }
}

// DriveObserver invokes fn after every successful engine application with
// the changes it delivered and the Report it returned — per change by
// default, per window under DriveWindow. The slice is reused between
// calls; copy it to retain. Summing the observed Reports reproduces the
// returned Summary exactly.
func DriveObserver(fn func(applied []Change, rep Report)) DriveOption {
	return func(c *driveConfig) { c.observer = fn }
}

// InteractiveSource is the feedback-coupled form of Source: instead of
// yielding a fixed stream, it is asked for each change in turn and shown
// the membership events the previous change produced — the net delta the
// engine published on its change feed. An adaptive adversary
// (dynmis/workload's AdaptiveSource) uses exactly this capability: it
// observes the current MIS through the events and chooses its next
// change as a function of it, which is the adversary model the paper's
// oblivious-adversary assumption (§1.1) rules out.
//
// Next returns the next change and true, or false to end the drive. On
// the first call last is nil; afterwards it holds the previous change's
// events in canonical (ascending node) order. The slice is reused
// between calls — copy it to retain. Record the resolved stream with
// DriveObserver (or trace.Writer) and it becomes an ordinary oblivious
// Source that replays bit-for-bit into any engine.
type InteractiveSource interface {
	Next(last []Event) (Change, bool)
}

// DriveInteractive pulls changes from an InteractiveSource, feeding the
// membership events of each applied change back into the source's next
// decision. Cancellation, error handling, Summary folding and the
// observer contract match Drive exactly; the one restriction is that
// DriveWindow is rejected (ErrInvalidOption), because the feedback
// contract is "the net delta of the change just applied" and windowed
// application has no per-change delta to report.
func (m *Maintainer) DriveInteractive(ctx context.Context, src InteractiveSource, opts ...DriveOption) (Summary, error) {
	var cfg driveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.window > 1 {
		return Summary{}, fmt.Errorf("%w: DriveWindow(%d) with DriveInteractive: feedback is per change", ErrInvalidOption, cfg.window)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		sum    Summary
		single [1]Change
		last   []Event
	)
	tap := m.feedTap()
	finish := m.metricsFinisher()
	for {
		if err := ctx.Err(); err != nil {
			return finish(sum), err
		}
		c, ok := src.Next(last)
		if !ok {
			return finish(sum), nil
		}
		tap.buf = tap.buf[:0]
		tap.active = true
		rep, err := m.impl.Apply(c)
		tap.active = false
		if err != nil {
			return finish(sum), fmt.Errorf("dynmis: drive: change %d: %w", sum.Changes, err)
		}
		sum.Observe(rep, c)
		if cfg.observer != nil {
			single[0] = c
			cfg.observer(single[:], rep)
		}
		last = tap.buf
	}
}

// Drive pulls changes from src and applies them until the source is
// exhausted, returning the aggregate Summary. It is the streaming
// ingestion surface: per-change guarantees (single adjustment, O(1)
// rounds and broadcasts in expectation) compose over the stream, and the
// Summary reports exactly that composition.
//
// Drive is context-cancellable: cancellation is observed between changes
// (between windows under DriveWindow), so the engine is always left in a
// stable configuration with the MIS invariant intact, and Drive returns
// the Summary of everything applied so far together with ctx.Err().
// Changes already pulled but not yet applied when the context is
// cancelled are discarded, never half-applied.
//
// On a rejected change Drive stops with the Summary of the applied
// prefix and the engine error; the engine recovers the already-staged
// prefix of a failed window first (see Maintainer.ApplyBatch), so the
// invariant survives mid-stream errors too.
func (m *Maintainer) Drive(ctx context.Context, src Source, opts ...DriveOption) (Summary, error) {
	var cfg driveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		sum    Summary
		buf    []Change
		single [1]Change
	)
	finish := m.metricsFinisher()
	apply := func(cs []Change) error {
		var (
			rep Report
			err error
		)
		if len(cs) == 1 {
			rep, err = m.impl.Apply(cs[0])
		} else {
			rep, err = m.impl.ApplyBatch(cs)
		}
		if err != nil {
			return fmt.Errorf("dynmis: drive: change %d: %w", sum.Changes, err)
		}
		sum.Observe(rep, cs...)
		if cfg.observer != nil {
			cfg.observer(cs, rep)
		}
		return nil
	}

	for c := range src {
		if err := ctx.Err(); err != nil {
			return finish(sum), err
		}
		if cfg.window <= 1 {
			single[0] = c
			if err := apply(single[:]); err != nil {
				return finish(sum), err
			}
			continue
		}
		buf = append(buf, c)
		if len(buf) >= cfg.window {
			if err := apply(buf); err != nil {
				return finish(sum), err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := ctx.Err(); err != nil {
			return finish(sum), err
		}
		if err := apply(buf); err != nil {
			return finish(sum), err
		}
	}
	return finish(sum), ctx.Err()
}

// metricsFinisher snapshots the instrumentation counters (when a
// collector is attached) and returns the closure the drive loops call on
// every return path, success or not, to stamp a Summary with the delta —
// an interrupted drive still reports the counters of its applied prefix.
func (m *Maintainer) metricsFinisher() func(Summary) Summary {
	if m.coll == nil {
		return func(s Summary) Summary { return s }
	}
	start := m.coll.Snapshot()
	return func(s Summary) Summary {
		d := m.coll.Snapshot().Diff(start)
		s.Metrics = &d
		return s
	}
}

// NodesSeq iterates over the visible node set in unspecified order,
// without the sort and allocation of Nodes — the hot-path form for full
// scans. The maintainer must not be mutated during iteration.
func (m *Maintainer) NodesSeq() iter.Seq[NodeID] { return m.impl.Graph().NodeSeq() }

// MISSeq iterates over the current MIS members in unspecified order,
// without the sort and allocation of MIS. The maintainer must not be
// mutated during iteration.
func (m *Maintainer) MISSeq() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for v := range m.impl.Graph().NodeSeq() {
			if m.impl.InMIS(v) && !yield(v) {
				return
			}
		}
	}
}
