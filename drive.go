package dynmis

import (
	"context"
	"fmt"
	"iter"

	"dynmis/internal/core"
	"dynmis/metrics"
)

// Source is a stream of topology changes — the one way bulk updates enter
// an engine. It is a plain Go 1.23 iterator, so anything that can yield
// changes is a Source: the generators in dynmis/workload, a recorded
// dynmis/trace replayed with trace.Reader.All, a slice via
// slices.Values, or a hand-written func. Sources are pull-driven and may
// be unbounded; Drive stops when the source is exhausted, the context is
// cancelled, or a change is rejected.
type Source = iter.Seq[Change]

// Summary is the aggregate cost account Drive returns: totals,
// per-application maxima and per-change means of adjustments, rounds,
// broadcasts and bits, plus change counts by kind. It is exactly the fold
// of the per-application Reports (see core.Summary.Observe); under
// WithInstrumentation, Summary.Metrics additionally carries the engine's
// complexity-counter delta over the drive.
type Summary = core.Summary

// SourceOf adapts explicit changes to a Source; for an existing slice,
// slices.Values works directly.
func SourceOf(cs ...Change) Source {
	return func(yield func(Change) bool) {
		for _, c := range cs {
			if !yield(c) {
				return
			}
		}
	}
}

// driveConfig is the resolved option set of one Drive call.
type driveConfig struct {
	window   int
	observer func(applied []Change, rep Report)
}

// DriveOption configures Maintainer.Drive.
type DriveOption func(*driveConfig)

// DriveWindow makes Drive deliver the stream in windows of n changes
// through ApplyBatch — one staged recovery per window (the §6 batch
// extension) — instead of one Apply per change. Window boundaries are
// also the granularity of the change feed and of Summary.Max. n ≤ 1
// selects the per-change default; the final window may be short.
func DriveWindow(n int) DriveOption {
	return func(c *driveConfig) { c.window = n }
}

// DriveObserver invokes fn after every successful engine application with
// the changes it delivered and the Report it returned — per change by
// default, per window under DriveWindow. The slice is reused between
// calls; copy it to retain. Summing the observed Reports reproduces the
// returned Summary exactly.
func DriveObserver(fn func(applied []Change, rep Report)) DriveOption {
	return func(c *driveConfig) { c.observer = fn }
}

// Drive pulls changes from src and applies them until the source is
// exhausted, returning the aggregate Summary. It is the streaming
// ingestion surface: per-change guarantees (single adjustment, O(1)
// rounds and broadcasts in expectation) compose over the stream, and the
// Summary reports exactly that composition.
//
// Drive is context-cancellable: cancellation is observed between changes
// (between windows under DriveWindow), so the engine is always left in a
// stable configuration with the MIS invariant intact, and Drive returns
// the Summary of everything applied so far together with ctx.Err().
// Changes already pulled but not yet applied when the context is
// cancelled are discarded, never half-applied.
//
// On a rejected change Drive stops with the Summary of the applied
// prefix and the engine error; the engine recovers the already-staged
// prefix of a failed window first (see Maintainer.ApplyBatch), so the
// invariant survives mid-stream errors too.
func (m *Maintainer) Drive(ctx context.Context, src Source, opts ...DriveOption) (Summary, error) {
	var cfg driveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		sum    Summary
		buf    []Change
		single [1]Change
		start  metrics.Counters
	)
	if m.coll != nil {
		start = m.coll.Snapshot()
	}
	// finish stamps the summary with the engine's instrumentation delta
	// over this drive (when a collector is attached) on every return
	// path, success or not — an interrupted drive still reports the
	// counters of its applied prefix.
	finish := func(s Summary) Summary {
		if m.coll != nil {
			d := m.coll.Snapshot().Diff(start)
			s.Metrics = &d
		}
		return s
	}
	apply := func(cs []Change) error {
		var (
			rep Report
			err error
		)
		if len(cs) == 1 {
			rep, err = m.impl.Apply(cs[0])
		} else {
			rep, err = m.impl.ApplyBatch(cs)
		}
		if err != nil {
			return fmt.Errorf("dynmis: drive: change %d: %w", sum.Changes, err)
		}
		sum.Observe(rep, cs...)
		if cfg.observer != nil {
			cfg.observer(cs, rep)
		}
		return nil
	}

	for c := range src {
		if err := ctx.Err(); err != nil {
			return finish(sum), err
		}
		if cfg.window <= 1 {
			single[0] = c
			if err := apply(single[:]); err != nil {
				return finish(sum), err
			}
			continue
		}
		buf = append(buf, c)
		if len(buf) >= cfg.window {
			if err := apply(buf); err != nil {
				return finish(sum), err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := ctx.Err(); err != nil {
			return finish(sum), err
		}
		if err := apply(buf); err != nil {
			return finish(sum), err
		}
	}
	return finish(sum), ctx.Err()
}

// NodesSeq iterates over the visible node set in unspecified order,
// without the sort and allocation of Nodes — the hot-path form for full
// scans. The maintainer must not be mutated during iteration.
func (m *Maintainer) NodesSeq() iter.Seq[NodeID] { return m.impl.Graph().NodeSeq() }

// MISSeq iterates over the current MIS members in unspecified order,
// without the sort and allocation of MIS. The maintainer must not be
// mutated during iteration.
func (m *Maintainer) MISSeq() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for v := range m.impl.Graph().NodeSeq() {
			if m.impl.InMIS(v) && !yield(v) {
				return
			}
		}
	}
}
