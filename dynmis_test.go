package dynmis

import (
	"math/rand/v2"
	"testing"
)

// mustNew builds a maintainer, failing the test on invalid options.
func mustNew(t *testing.T, opts ...Option) *Maintainer {
	t.Helper()
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFacadeEngines(t *testing.T) {
	engines := []Engine{EngineTemplate, EngineDirect, EngineProtocol, EngineAsyncDirect, EngineSharded}
	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			m := mustNew(t, WithSeed(7), WithEngine(eng))
			if m.Engine() != eng {
				t.Fatalf("Engine() = %v", m.Engine())
			}
			if _, err := m.InsertNode(1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.InsertNode(2, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.InsertNode(3, 1, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := m.RemoveEdge(1, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := m.InsertEdge(1, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := m.RemoveEdgeAbrupt(2, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := m.RemoveNodeAbrupt(1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.RemoveNode(2); err != nil {
				t.Fatal(err)
			}
			if err := m.Verify(); err != nil {
				t.Fatal(err)
			}
			if m.NodeCount() != 1 || !m.InMIS(3) {
				t.Errorf("final state: n=%d MIS=%v", m.NodeCount(), m.MIS())
			}
		})
	}
}

func TestFacadeSameSeedSameOutput(t *testing.T) {
	build := func(eng Engine) []NodeID {
		m := mustNew(t, WithSeed(99), WithEngine(eng))
		rng := rand.New(rand.NewPCG(1, 2))
		var nodes []NodeID
		for v := NodeID(0); v < 40; v++ {
			var nbrs []NodeID
			for _, u := range nodes {
				if rng.Float64() < 0.1 {
					nbrs = append(nbrs, u)
				}
			}
			if _, err := m.InsertNode(v, nbrs...); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, v)
		}
		return m.MIS()
	}
	// All engines share the same priority-drawing discipline (one Ensure
	// per inserted node in insertion order), so equal seeds give equal
	// structures — the engines are interchangeable realizations of one
	// algorithm.
	ref := build(EngineTemplate)
	for _, eng := range []Engine{EngineDirect, EngineProtocol, EngineAsyncDirect, EngineSharded} {
		got := build(eng)
		if len(got) != len(ref) {
			t.Fatalf("%v MIS = %v, want %v", eng, got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v MIS = %v, want %v", eng, got, ref)
			}
		}
	}
}

func TestFacadeMuteUnmute(t *testing.T) {
	m := mustNew(t, WithSeed(3), WithEngine(EngineProtocol))
	if _, err := m.InsertNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertNode(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mute(2); err != nil {
		t.Fatal(err)
	}
	if m.HasNode(2) {
		t.Error("muted node visible")
	}
	if _, err := m.Unmute(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeClusters(t *testing.T) {
	m := mustNew(t, WithSeed(5))
	if _, err := m.InsertNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertNode(2, 1); err != nil {
		t.Fatal(err)
	}
	cl := m.Clusters()
	if len(cl) != 2 {
		t.Fatalf("clusters = %v", cl)
	}
	if cl[1] != cl[2] {
		t.Error("adjacent pair should share a cluster (one of them is the MIS pivot)")
	}
}

func TestFacadeDerivedStructures(t *testing.T) {
	cm, err := NewClustering(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Apply(NodeChange(NodeInsert, 1)); err != nil {
		t.Fatal(err)
	}
	if cm.Cost() != 0 {
		t.Error("single node clustering cost should be 0")
	}

	mm, err := NewMatching(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Apply(NodeChange(NodeInsert, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Apply(NodeChange(NodeInsert, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if got := mm.Matching(); len(got) != 1 || got[0] != (MatchingEdge{U: 1, V: 2}) {
		t.Errorf("matching = %v", got)
	}

	col, err := NewColoring(4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Apply(NodeChange(NodeInsert, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Apply(NodeChange(NodeInsert, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if col.ColorOf(0) == col.ColorOf(1) {
		t.Error("adjacent nodes share a color")
	}
	if _, err := NewColoring(0); err == nil {
		t.Error("palette 0 accepted")
	}
}

func TestFacadeParallelOption(t *testing.T) {
	m := mustNew(t, WithSeed(11), WithEngine(EngineProtocol), WithParallel(4))
	for v := NodeID(0); v < 30; v++ {
		var nbrs []NodeID
		if v > 0 {
			nbrs = append(nbrs, v-1)
		}
		if _, err := m.InsertNode(v, nbrs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLIFOScheduler(t *testing.T) {
	m := mustNew(t, WithSeed(13), WithEngine(EngineAsyncDirect), WithLIFOScheduler())
	for v := NodeID(0); v < 20; v++ {
		var nbrs []NodeID
		if v > 0 {
			nbrs = append(nbrs, v/2)
		}
		if _, err := m.InsertNode(v, nbrs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInvalidChange(t *testing.T) {
	m := mustNew(t)
	if _, err := m.InsertEdge(1, 2); err == nil {
		t.Error("edge between absent nodes accepted")
	}
	if _, err := m.Apply(Change{Kind: ChangeKind(99)}); err == nil {
		t.Error("unknown change kind accepted")
	}
}

func TestEngineString(t *testing.T) {
	if EngineTemplate.String() != "template" || Engine(42).String() == "" {
		t.Error("Engine.String broken")
	}
}
