package dynmis

import (
	"slices"
	"testing"

	"dynmis/workload"
)

// TestRestoreAtContinuesTheIdenticalRun is the property the durability
// layer (dynmis/server) builds on: snapshot a maintainer mid-stream,
// restore it with RestoreAt at the recorded priority-draw position, drive
// the identical tail into both, and the two runs are indistinguishable —
// same State, same MIS, same event stream for the tail.
func TestRestoreAtContinuesTheIdenticalRun(t *testing.T) {
	const seed = 99
	sc, ok := workload.ScenarioByName("churn")
	if !ok {
		t.Fatal("churn scenario missing")
	}
	inst := sc.Instantiate(seed, 80, 600)
	full := slices.Concat(inst.Build, inst.Drive)
	cutAt := len(full) / 2

	orig := mustNew(t, WithSeed(seed), WithEngine(EngineTemplate))
	var origTail []Event
	for i, c := range full {
		if i == cutAt {
			break
		}
		if _, err := orig.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	draws := orig.PriorityDraws()

	orig.Subscribe(func(ev Event) { origTail = append(origTail, ev) })
	for _, c := range full[cutAt:] {
		if _, err := orig.Apply(c); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"template", nil},
		{"sharded", []Option{WithEngine(EngineSharded), WithShards(2)}},
	} {
		rest, err := RestoreAt(snap, seed, draws, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var restTail []Event
		rest.Subscribe(func(ev Event) { restTail = append(restTail, ev) })
		for _, c := range full[cutAt:] {
			if _, err := rest.Apply(c); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		if !slices.Equal(orig.MIS(), rest.MIS()) {
			t.Fatalf("%s: restored MIS diverged:\n orig %v\n rest %v", tc.name, orig.MIS(), rest.MIS())
		}
		if len(origTail) != len(restTail) {
			t.Fatalf("%s: tail event count %d vs %d", tc.name, len(origTail), len(restTail))
		}
		for i := range origTail {
			if origTail[i] != restTail[i] {
				t.Fatalf("%s: tail event %d: %v vs %v", tc.name, i, origTail[i], restTail[i])
			}
		}
		if err := rest.Verify(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}

	// Plain Restore (no stream repositioning) is the contrast: it stays
	// *valid* but is not guaranteed to reproduce the identical run.
	if _, err := Restore(snap, seed); err != nil {
		t.Fatal(err)
	}
}
