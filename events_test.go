package dynmis

import (
	"errors"
	"math/rand/v2"
	"slices"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/workload"
)

// allEngines lists every π-equivalent engine choice for feed and
// capability tests: the engines that draw priorities in the canonical
// per-change sequence and therefore publish byte-identical feeds.
var allEngines = []Engine{EngineTemplate, EngineDirect, EngineProtocol, EngineAsyncDirect, EngineSharded, EngineSequential}

// independentEngines lists the competitor engines: they maintain a
// valid MIS of their own (Engine.Independent reports true), so their
// feeds are checked by replay and invariants, not byte equality.
var independentEngines = []Engine{EngineGuptaKhan, EngineAOSS}

// eventScript builds a change sequence supported by every engine (no
// mute/unmute, which EngineAsyncDirect rejects) against a scratch graph.
// With abruptOnly, deletions are all abrupt, which keeps arbitrary window
// splits valid for AsyncEngine.ApplyBatch (a gracefully deleted node may
// not be referenced again within its batch).
func eventScript(t *testing.T, steps int, abruptOnly bool) []Change {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	scratch := graph.New()
	var cs []Change
	for len(cs) < steps {
		opts := workload.DefaultChurn(1)
		if abruptOnly {
			opts.AbruptFraction = 1
		}
		batch := workload.RandomChurn(rng, scratch, opts)
		for _, c := range batch {
			if c.Kind == NodeMute || c.Kind == NodeUnmute {
				continue
			}
			if err := c.Apply(scratch); err != nil {
				t.Fatalf("scratch apply %s: %v", c, err)
			}
			cs = append(cs, c)
		}
	}
	return cs
}

// TestEventsReplayPerEngine: on every engine, replaying the full event
// stream reproduces the exact final State(), and sequence numbers are
// dense from 1.
func TestEventsReplayPerEngine(t *testing.T) {
	script := eventScript(t, 120, false)
	for _, eng := range slices.Concat(allEngines, independentEngines) {
		t.Run(eng.String(), func(t *testing.T) {
			m := mustNew(t, WithSeed(17), WithEngine(eng))
			var events []Event
			m.Subscribe(func(ev Event) { events = append(events, ev) })
			for _, c := range script {
				if _, err := m.Apply(c); err != nil {
					t.Fatalf("Apply(%s): %v", c, err)
				}
			}
			for i, ev := range events {
				if ev.Seq != uint64(i+1) {
					t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
				}
			}
			if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
				t.Fatalf("%v: replayed state diverges from State()", eng)
			}
			if err := m.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEventsCrossEngineEqual: equal seeds and equal change sequences give
// the identical event stream on every engine — the feed is part of the
// engine-independent contract, not an implementation detail.
func TestEventsCrossEngineEqual(t *testing.T) {
	script := eventScript(t, 150, false)
	collect := func(eng Engine) []Event {
		m := mustNew(t, WithSeed(23), WithEngine(eng))
		var events []Event
		m.Subscribe(func(ev Event) { events = append(events, ev) })
		for _, c := range script {
			if _, err := m.Apply(c); err != nil {
				t.Fatalf("%v: Apply(%s): %v", eng, c, err)
			}
		}
		return events
	}
	ref := collect(EngineTemplate)
	if len(ref) == 0 {
		t.Fatal("script produced no events")
	}
	for _, eng := range allEngines[1:] {
		got := collect(eng)
		if len(got) != len(ref) {
			t.Fatalf("%v published %d events, template %d", eng, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v event %d = %v, template has %v", eng, i, got[i], ref[i])
			}
		}
	}
}

// TestEventsMuteReplay covers the mute/unmute path of the feed on the
// engines that support it: muting publishes a leave, unmuting a join.
func TestEventsMuteReplay(t *testing.T) {
	for _, eng := range []Engine{EngineTemplate, EngineDirect, EngineProtocol, EngineSharded,
		EngineSequential, EngineGuptaKhan, EngineAOSS} {
		t.Run(eng.String(), func(t *testing.T) {
			m := mustNew(t, WithSeed(3), WithEngine(eng))
			var events []Event
			m.Subscribe(func(ev Event) { events = append(events, ev) })
			steps := []Change{
				NodeChange(NodeInsert, 1),
				NodeChange(NodeInsert, 2, 1),
				NodeChange(NodeInsert, 3, 1, 2),
				NodeChange(NodeMute, 2),
				NodeChange(NodeUnmute, 2, 1, 3),
			}
			for _, c := range steps {
				if _, err := m.Apply(c); err != nil {
					t.Fatalf("Apply(%s): %v", c, err)
				}
			}
			var leaves, joins int
			for _, ev := range events {
				switch ev.Cause {
				case CauseLeave:
					leaves++
				case CauseJoin:
					joins++
				}
			}
			if leaves < 1 || joins < 4 {
				t.Fatalf("mute cycle published %d leaves, %d joins: %v", leaves, joins, events)
			}
			if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
				t.Fatalf("replayed state diverges from State()")
			}
		})
	}
}

// TestEventsBatchWindows: batch windows publish one net delta each, and
// the windowed feeds of the combined-recovery engines agree with the
// template's for the same batches.
func TestEventsBatchWindows(t *testing.T) {
	script := eventScript(t, 90, true)
	const window = 7
	collect := func(eng Engine, opts ...Option) []Event {
		m := mustNew(t, append([]Option{WithSeed(29), WithEngine(eng)}, opts...)...)
		var events []Event
		m.Subscribe(func(ev Event) { events = append(events, ev) })
		for lo := 0; lo < len(script); lo += window {
			hi := min(lo+window, len(script))
			if _, err := m.ApplyBatch(script[lo:hi]); err != nil {
				t.Fatalf("%v: ApplyBatch: %v", eng, err)
			}
		}
		if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
			t.Fatalf("%v: windowed replay diverges from State()", eng)
		}
		return events
	}
	ref := collect(EngineTemplate)
	for _, got := range [][]Event{
		collect(EngineSharded, WithShards(4)),
		collect(EngineAsyncDirect),
		collect(EngineDirect),
		collect(EngineProtocol),
		collect(EngineSequential),
	} {
		if len(got) != len(ref) {
			t.Fatalf("windowed stream lengths differ: %d vs %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("windowed event %d = %v, template has %v", i, got[i], ref[i])
			}
		}
	}
}

// TestBatchErrorRecoversPrefix: a mid-batch validation error leaves every
// engine consistent — the staged prefix is recovered, Check passes, and
// the feed's replay still matches State().
func TestBatchErrorRecoversPrefix(t *testing.T) {
	for _, eng := range slices.Concat(allEngines, independentEngines) {
		t.Run(eng.String(), func(t *testing.T) {
			opts := []Option{WithSeed(7), WithEngine(eng)}
			if eng == EngineSharded {
				opts = append(opts, WithShards(3))
			}
			m := mustNew(t, opts...)
			var events []Event
			m.Subscribe(func(ev Event) { events = append(events, ev) })
			if _, err := m.ApplyBatch([]Change{
				NodeChange(NodeInsert, 1),
				NodeChange(NodeInsert, 2, 1),
				NodeChange(NodeInsert, 3, 2),
			}); err != nil {
				t.Fatal(err)
			}
			// Change 0 stages (deleting whatever membership node 2 has),
			// change 1 is invalid: the prefix must still be recovered.
			_, err := m.ApplyBatch([]Change{
				NodeChange(NodeDeleteAbrupt, 2),
				NodeChange(NodeInsert, 1),
			})
			if !errors.Is(err, ErrDuplicateNode) {
				t.Fatalf("err = %v, want ErrDuplicateNode", err)
			}
			if m.HasNode(2) {
				t.Fatal("deleted node 2 still visible after failed batch")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("engine inconsistent after failed batch: %v", err)
			}
			if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
				t.Fatal("feed replay diverges from State() after failed batch")
			}
			// Still usable afterwards.
			if _, err := m.InsertNode(4, 1); err != nil {
				t.Fatal(err)
			}
			if err := m.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOptionValidation: New rejects option values no engine can honor
// with ErrInvalidOption.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative shards", []Option{WithEngine(EngineSharded), WithShards(-1)}},
		{"negative window", []Option{WithEngine(EngineSharded), WithWindow(-2)}},
		{"parallel on template", []Option{WithEngine(EngineTemplate), WithParallel(4)}},
		{"parallel on sharded", []Option{WithEngine(EngineSharded), WithParallel(2)}},
		{"shards on template", []Option{WithEngine(EngineTemplate), WithShards(4)}},
		{"window on default protocol", []Option{WithWindow(64)}},
		{"unknown engine", []Option{WithEngine(Engine(42))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.opts...); !errors.Is(err, ErrInvalidOption) {
				t.Fatalf("New(%s) err = %v, want ErrInvalidOption", tc.name, err)
			}
		})
	}
	// Valid edge values still construct.
	if _, err := New(WithEngine(EngineSharded), WithShards(0), WithWindow(0)); err != nil {
		t.Fatalf("zero shards/window rejected: %v", err)
	}
	if _, err := New(WithEngine(EngineProtocol), WithParallel(4)); err != nil {
		t.Fatalf("parallel protocol rejected: %v", err)
	}
	// The derived constructors share the same validation.
	if _, err := NewClustering(WithShards(-3)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("NewClustering accepted a negative shard count")
	}
	if _, err := NewMatching(WithParallel(2)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("NewMatching accepted WithParallel on the template engine")
	}
	if _, err := NewColoring(4, WithEngine(Engine(9))); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("NewColoring accepted an unknown engine")
	}
	// MustNew panics instead of returning the error.
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid option")
		}
	}()
	MustNew(WithShards(-1))
}

// TestTypedErrors: the root sentinels match every engine's validation
// failures via errors.Is.
func TestTypedErrors(t *testing.T) {
	for _, eng := range slices.Concat(allEngines, independentEngines) {
		t.Run(eng.String(), func(t *testing.T) {
			m := mustNew(t, WithEngine(eng))
			if _, err := m.InsertEdge(1, 2); !errors.Is(err, ErrUnknownNode) || !errors.Is(err, ErrInvalidChange) {
				t.Errorf("edge between absent nodes: err = %v, want ErrUnknownNode", err)
			}
			if _, err := m.InsertNode(1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.InsertNode(1); !errors.Is(err, ErrDuplicateNode) {
				t.Errorf("duplicate node: err = %v, want ErrDuplicateNode", err)
			}
			if _, err := m.InsertNode(2, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := m.InsertEdge(1, 2); !errors.Is(err, ErrDuplicateEdge) {
				t.Errorf("duplicate edge: err = %v, want ErrDuplicateEdge", err)
			}
			if _, err := m.RemoveEdge(1, 7); !errors.Is(err, ErrUnknownEdge) {
				t.Errorf("absent edge: err = %v, want ErrUnknownEdge", err)
			}
			if _, err := m.InsertNode(3, 3); !errors.Is(err, ErrSelfLoop) {
				t.Errorf("self loop: err = %v, want ErrSelfLoop", err)
			}
		})
	}
	async := mustNew(t, WithEngine(EngineAsyncDirect))
	if _, err := async.InsertNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := async.Mute(1); !errors.Is(err, ErrMutedUnsupported) {
		t.Errorf("async mute: err = %v, want ErrMutedUnsupported", err)
	}
}

// TestSnapshotCapability: the Snapshotter capability is engine identity
// free — template and sharded snapshots restore into either engine.
func TestSnapshotCapability(t *testing.T) {
	build := func(eng Engine) *Maintainer {
		m := mustNew(t, WithSeed(77), WithEngine(eng))
		rng := rand.New(rand.NewPCG(5, 6))
		var nodes []NodeID
		for v := NodeID(0); v < 60; v++ {
			var nbrs []NodeID
			for _, u := range nodes {
				if rng.Float64() < 0.08 {
					nbrs = append(nbrs, u)
				}
			}
			if _, err := m.InsertNode(v, nbrs...); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, v)
		}
		return m
	}
	tm, sm := build(EngineTemplate), build(EngineSharded)
	tSnap, err := tm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sSnap, err := sm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	for name, restore := range map[string]func() (*Maintainer, error){
		"template-snap into sharded": func() (*Maintainer, error) {
			return Restore(tSnap, 99, WithEngine(EngineSharded), WithShards(3))
		},
		"sharded-snap into template": func() (*Maintainer, error) { return Restore(sSnap, 99) },
		"sharded-snap into sharded": func() (*Maintainer, error) {
			return Restore(sSnap, 99, WithEngine(EngineSharded))
		},
	} {
		restored, err := restore()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := restored.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, b := tm.MIS(), restored.MIS()
		if len(a) != len(b) {
			t.Fatalf("%s: MIS %v != original %v", name, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: MIS %v != original %v", name, b, a)
			}
		}
		// The restored maintainer keeps maintaining.
		if _, err := restored.InsertNode(1000, 0); err != nil {
			t.Fatalf("%s: insert after restore: %v", name, err)
		}
		if err := restored.Verify(); err != nil {
			t.Fatalf("%s: verify after insert: %v", name, err)
		}
	}

	// Restore refuses engines without the capability.
	if _, err := Restore(tSnap, 1, WithEngine(EngineProtocol)); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("restore into protocol: err = %v, want ErrSnapshotUnsupported", err)
	}
	// Tampered snapshots are rejected by the sharded restore too.
	bad := *sSnap
	bad.Nodes = append([]core.SnapshotNode(nil), sSnap.Nodes...)
	flipped := false
	for i := range bad.Nodes {
		if bad.Nodes[i].InMIS {
			bad.Nodes[i].InMIS = false
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("snapshot had no MIS node to tamper with")
	}
	if _, err := Restore(&bad, 1, WithEngine(EngineSharded)); err == nil {
		t.Error("tampered snapshot restored into the sharded engine")
	}
}

// TestDerivedEngineChoice: the derived structures produce identical
// outputs on every backend for equal seeds.
func TestDerivedEngineChoice(t *testing.T) {
	churn := func(apply func(Change) error) {
		rng := rand.New(rand.NewPCG(31, 37))
		var nodes []NodeID
		for v := NodeID(0); v < 25; v++ {
			var nbrs []NodeID
			for _, u := range nodes {
				if rng.Float64() < 0.12 {
					nbrs = append(nbrs, u)
				}
			}
			if err := apply(NodeChange(NodeInsert, v, nbrs...)); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, v)
		}
	}

	refMatch, err := NewMatching(WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	churn(func(c Change) error { _, err := refMatch.Apply(c); return err })
	for _, eng := range []Engine{EngineSharded, EngineProtocol} {
		mm, err := NewMatching(WithSeed(41), WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		churn(func(c Change) error { _, err := mm.Apply(c); return err })
		if err := mm.Check(); err != nil {
			t.Fatalf("%v matching: %v", eng, err)
		}
		a, b := refMatch.Matching(), mm.Matching()
		if len(a) != len(b) {
			t.Fatalf("%v matching %v != template %v", eng, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v matching %v != template %v", eng, b, a)
			}
		}
	}

	refClu, err := NewClustering(WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	churn(func(c Change) error { _, err := refClu.Apply(c); return err })
	clu, err := NewClustering(WithSeed(43), WithEngine(EngineSharded), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	churn(func(c Change) error { _, err := clu.Apply(c); return err })
	if err := clu.Check(); err != nil {
		t.Fatal(err)
	}
	want, got := refClu.Clusters(), clu.Clusters()
	if len(want) != len(got) {
		t.Fatalf("cluster maps differ: %v vs %v", got, want)
	}
	for v, h := range want {
		if got[v] != h {
			t.Fatalf("node %d clustered to %d, template says %d", v, got[v], h)
		}
	}

	refCol, err := NewColoring(12, WithSeed(47))
	if err != nil {
		t.Fatal(err)
	}
	churn(func(c Change) error { _, err := refCol.Apply(c); return err })
	col, err := NewColoring(12, WithSeed(47), WithEngine(EngineSharded))
	if err != nil {
		t.Fatal(err)
	}
	churn(func(c Change) error { _, err := col.Apply(c); return err })
	if err := col.Check(); err != nil {
		t.Fatal(err)
	}
	for v, c := range refCol.Colors() {
		if col.ColorOf(v) != c {
			t.Fatalf("node %d colored %d, template says %d", v, col.ColorOf(v), c)
		}
	}
}
