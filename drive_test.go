package dynmis_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"maps"
	"slices"
	"testing"

	"dynmis"
	"dynmis/trace"
	"dynmis/workload"
)

// allEngines is the π-equivalent engine matrix for ingestion tests:
// every engine here draws priorities in the canonical per-change
// sequence, so equal seeds give byte-identical feeds and states.
var allEngines = []dynmis.Engine{
	dynmis.EngineTemplate,
	dynmis.EngineDirect,
	dynmis.EngineProtocol,
	dynmis.EngineAsyncDirect,
	dynmis.EngineSharded,
	dynmis.EngineSequential,
}

// independentEngines is the competitor matrix (Engine.Independent
// reports true): each maintains a valid MIS of its own, verified by
// invariants and feed replay rather than byte equality.
var independentEngines = []dynmis.Engine{
	dynmis.EngineGuptaKhan,
	dynmis.EngineAOSS,
}

// churnStream returns a reproducible build+drive change slice with no
// mute changes (so the async engine can ingest it too).
func churnStream(seed uint64, n, steps int) []dynmis.Change {
	rng := workload.Rand(seed)
	build := workload.GNP(rng, n, 6/float64(n))
	drive := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(steps))
	return append(build, drive...)
}

func TestDriveCancellationLeavesInvariantIntact(t *testing.T) {
	cs := churnStream(11, 50, 400)
	cancelAt := len(cs) / 2

	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			m := dynmis.MustNew(dynmis.WithSeed(5), dynmis.WithEngine(e))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			// The source cancels its own consumer mid-stream: the change
			// yielded after cancellation must be discarded, not applied.
			src := func(yield func(dynmis.Change) bool) {
				for i, c := range cs {
					if i == cancelAt {
						cancel()
					}
					if !yield(c) {
						return
					}
				}
			}

			sum, err := m.Drive(ctx, src)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Drive after cancel: err = %v, want context.Canceled", err)
			}
			if sum.Changes != cancelAt {
				t.Fatalf("applied %d changes, want %d (stop between changes)", sum.Changes, cancelAt)
			}
			if cerr := m.Check(); cerr != nil {
				t.Fatalf("invariant broken after cancellation: %v", cerr)
			}

			// The maintainer must equal one that applied exactly the
			// prefix: nothing beyond the cancellation point leaked in.
			ref := dynmis.MustNew(dynmis.WithSeed(5), dynmis.WithEngine(e))
			if _, err := ref.ApplyAll(cs[:cancelAt]); err != nil {
				t.Fatal(err)
			}
			if !maps.Equal(m.State(), ref.State()) {
				t.Fatal("cancelled drive state differs from prefix application")
			}
		})
	}
}

func TestDriveCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := dynmis.MustNew()
	sum, err := m.Drive(ctx, dynmis.SourceOf(churnStream(1, 10, 10)...))
	if !errors.Is(err, context.Canceled) || sum.Changes != 0 {
		t.Fatalf("got %d changes, err %v", sum.Changes, err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDriveWindowedCancellationDiscardsPartialWindow(t *testing.T) {
	cs := churnStream(3, 40, 300)
	cancelAt := 150
	m := dynmis.MustNew(dynmis.WithSeed(9), dynmis.WithEngine(dynmis.EngineSharded), dynmis.WithShards(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := func(yield func(dynmis.Change) bool) {
		for i, c := range cs {
			if i == cancelAt {
				cancel()
			}
			if !yield(c) {
				return
			}
		}
	}
	sum, err := m.Drive(ctx, src, dynmis.DriveWindow(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if sum.Changes%64 != 0 || sum.Changes > cancelAt {
		t.Fatalf("windowed cancel applied %d changes; want a whole number of full windows ≤ %d", sum.Changes, cancelAt)
	}
	if cerr := m.Check(); cerr != nil {
		t.Fatalf("invariant broken: %v", cerr)
	}
}

// TestDriveSummaryIsFoldOfReports is the no-drift property: the Summary
// Drive returns must equal, field for field, the fold of the Reports its
// observer saw — per change and per window.
func TestDriveSummaryIsFoldOfReports(t *testing.T) {
	cs := churnStream(21, 60, 500)
	for _, window := range []int{0, 1, 7, 64, 1 << 20} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			m := dynmis.MustNew(dynmis.WithSeed(2), dynmis.WithEngine(dynmis.EngineTemplate))

			var (
				want    dynmis.Summary
				applies int
			)
			sum, err := m.Drive(context.Background(), slices.Values(cs),
				dynmis.DriveWindow(window),
				dynmis.DriveObserver(func(applied []dynmis.Change, rep dynmis.Report) {
					applies++
					want.Observe(rep, applied...)
				}),
			)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Changes != len(cs) || sum.Applies != applies {
				t.Fatalf("counts: changes %d/%d, applies %d/%d", sum.Changes, len(cs), sum.Applies, applies)
			}
			if sum.Total != want.Total {
				t.Fatalf("Total drifted from fold:\n got %+v\nwant %+v", sum.Total, want.Total)
			}
			if sum.Max != want.Max {
				t.Fatalf("Max drifted from fold:\n got %+v\nwant %+v", sum.Max, want.Max)
			}
			if !maps.Equal(sum.ByKind, want.ByKind) {
				t.Fatalf("ByKind drifted from fold:\n got %v\nwant %v", sum.ByKind, want.ByKind)
			}
			kinds := 0
			for _, n := range sum.ByKind {
				kinds += n
			}
			if kinds != sum.Changes {
				t.Fatalf("ByKind total %d != changes %d", kinds, sum.Changes)
			}
		})
	}
}

func TestDriveWindowEqualsBatchApplication(t *testing.T) {
	cs := churnStream(31, 50, 400)
	const window = 32

	m := dynmis.MustNew(dynmis.WithSeed(4), dynmis.WithEngine(dynmis.EngineTemplate))
	if _, err := m.Drive(context.Background(), slices.Values(cs), dynmis.DriveWindow(window)); err != nil {
		t.Fatal(err)
	}

	ref := dynmis.MustNew(dynmis.WithSeed(4), dynmis.WithEngine(dynmis.EngineTemplate))
	for lo := 0; lo < len(cs); lo += window {
		if _, err := ref.ApplyBatch(cs[lo:min(lo+window, len(cs))]); err != nil {
			t.Fatal(err)
		}
	}
	if !maps.Equal(m.State(), ref.State()) {
		t.Fatal("windowed Drive differs from explicit ApplyBatch loop")
	}
}

func TestDriveStopsOnRejectedChange(t *testing.T) {
	m := dynmis.MustNew(dynmis.WithSeed(1))
	cs := []dynmis.Change{
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 1), // duplicate: rejected
		dynmis.NodeChange(dynmis.NodeInsert, 3),
	}
	sum, err := m.Drive(context.Background(), dynmis.SourceOf(cs...))
	if err == nil {
		t.Fatal("want error for rejected change")
	}
	if sum.Changes != 2 {
		t.Fatalf("summary counts %d changes, want the applied prefix of 2", sum.Changes)
	}
	if cerr := m.Check(); cerr != nil {
		t.Fatalf("invariant broken after rejected change: %v", cerr)
	}
	if m.HasNode(3) {
		t.Fatal("change after the rejection leaked in")
	}
}

// TestTraceReplayAcrossEngines is the acceptance property: a recorded
// workload trace held to the two-tier cross-engine replay contract of
// replayTraceAcrossEngines.
func TestTraceReplayAcrossEngines(t *testing.T) {
	// Record the generated workload once.
	var file bytes.Buffer
	{
		w := trace.NewWriter(&file)
		probe := dynmis.MustNew(dynmis.WithSeed(77), dynmis.WithEngine(dynmis.EngineTemplate))
		src := trace.Tee(slices.Values(churnStream(13, 60, 600)), w)
		if _, err := probe.Drive(context.Background(), src); err != nil {
			t.Fatal(err)
		}
	}
	replayTraceAcrossEngines(t, file.Bytes(), 77)
}

// replayTraceAcrossEngines drives one trace through all eight engines
// under the two-tier contract. Tier 1: every π-equivalent engine
// replays it with the identical event stream and final state for equal
// seeds. Tier 2: the independent competitor engines ingest the same
// trace and are held to invariants instead — every replay passes Check
// and Verify (the two-band certificate order), the published feed folds
// back to State(), and the MIS is non-degenerate. Any trace source —
// recorded oblivious workloads, resolved adaptive-adversary runs,
// imported real-graph edge lists — plugs into the same wall.
func replayTraceAcrossEngines(t *testing.T, traceBytes []byte, seed uint64) {
	t.Helper()
	type outcome struct {
		events []dynmis.Event
		state  map[dynmis.NodeID]dynmis.Membership
		mis    []dynmis.NodeID
	}
	run := func(e dynmis.Engine) outcome {
		t.Helper()
		m := dynmis.MustNew(dynmis.WithSeed(seed), dynmis.WithEngine(e))
		var evs []dynmis.Event
		m.Subscribe(func(ev dynmis.Event) { evs = append(evs, ev) })
		r := trace.NewReader(bytes.NewReader(traceBytes))
		if _, err := m.Drive(context.Background(), r.All()); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("%v: trace decode: %v", e, err)
		}
		if err := m.Check(); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("%v: greedy certificate: %v", e, err)
		}
		return outcome{events: evs, state: m.State(), mis: m.MIS()}
	}

	want := run(allEngines[0])
	if len(want.events) == 0 || len(want.state) == 0 {
		t.Fatal("degenerate reference run")
	}
	for _, e := range allEngines[1:] {
		got := run(e)
		if !slices.Equal(got.events, want.events) {
			t.Errorf("%v: event stream differs from template (%d vs %d events)", e, len(got.events), len(want.events))
		}
		if !maps.Equal(got.state, want.state) {
			t.Errorf("%v: final state differs from template", e)
		}
		if !slices.Equal(got.mis, want.mis) {
			t.Errorf("%v: final MIS differs from template", e)
		}
	}

	// Tier 2: the competitors' feeds and MIS are their own, but the
	// replay guarantee and the invariants must hold on the same trace
	// (run already checks Check and Verify), and the graph they end on
	// must be the recorded one — same node set as the reference.
	for _, e := range independentEngines {
		got := run(e)
		if len(got.events) == 0 || len(got.mis) == 0 {
			t.Errorf("%v: degenerate replay (%d events, |MIS| = %d)", e, len(got.events), len(got.mis))
		}
		if state := dynmis.ReplayEvents(got.events); !maps.Equal(state, got.state) {
			t.Errorf("%v: feed replay diverges from State()", e)
		}
		if len(got.state) != len(want.state) {
			t.Errorf("%v: replay ended on %d nodes, reference has %d", e, len(got.state), len(want.state))
		}
	}
}

func TestReadSideIterators(t *testing.T) {
	m := dynmis.MustNew(dynmis.WithSeed(8))
	if _, err := m.Drive(context.Background(), slices.Values(churnStream(5, 40, 200))); err != nil {
		t.Fatal(err)
	}

	nodes := slices.Collect(m.NodesSeq())
	slices.Sort(nodes)
	if !slices.Equal(nodes, m.Nodes()) {
		t.Fatal("NodesSeq disagrees with Nodes")
	}
	mis := slices.Collect(m.MISSeq())
	slices.Sort(mis)
	if !slices.Equal(mis, m.MIS()) {
		t.Fatal("MISSeq disagrees with MIS")
	}

	// Early break must not panic or corrupt anything.
	for range m.MISSeq() {
		break
	}
	for range m.NodesSeq() {
		break
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDriveNilContext(t *testing.T) {
	m := dynmis.MustNew()
	sum, err := m.Drive(nil, dynmis.SourceOf( //nolint:staticcheck // nil ctx tolerated by contract
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
	))
	if err != nil || sum.Changes != 2 {
		t.Fatalf("nil ctx drive: %d changes, err %v", sum.Changes, err)
	}
}
