// Package metrics is the complexity-instrumentation subsystem of the
// dynmis reproduction: cheap cumulative counters for exactly the
// quantities the source paper (Censor-Hillel, Haramaty, Karnin; PODC
// 2016) and the surrounding dynamic-distributed-algorithms literature
// account for — adjustments, influence-set sizes, cascade lengths,
// touched arena slots, synchronous rounds to quiescence, and simnet
// message traffic (broadcasts, point-to-point sends and deliveries,
// bits).
//
// Engines expose instrumentation through the core.Instrument capability:
// attaching a *Collector turns counting on, attaching nil turns it off.
// When no collector is attached the per-update cost of the subsystem is
// a single nil pointer check on the engine's accounting path — no
// allocation, no atomic, no branch inside the cascade inner loop — which
// is what lets the same binaries serve both production traffic and
// paper-conformance measurement (cmd/validate, docs/VALIDATION.md).
//
// The counters are deliberately plain unsigned integers updated from the
// engine's applying goroutine only. The sharded engine accounts from its
// coordinator goroutine after the window's workers have joined, so even
// the concurrent engine needs no synchronization here.
package metrics

import (
	"fmt"
	"strings"
)

// Counters is the cumulative complexity account. Every field is a sum
// over the instrumented updates except MaxCausalDepth, which is a
// running maximum (matching the asynchronous cost model, where "time" is
// the longest causal chain ever observed, not an additive quantity).
//
// Fields an engine does not model stay zero: the model-level template
// has no rounds or messages, the message-passing engines have no cascade
// steps or touched slots, and only the sharded engine reports hand-offs.
// The JSON tags are the stable wire names used by dynmisd's /metricsz
// endpoint; renaming a tag is a wire-format change.
type Counters struct {
	// Updates is the number of topology changes successfully applied
	// while the collector was attached. Applications that end in an
	// error are not counted at all — even though a failed batch's
	// staged prefix takes effect, instrumentation tracks successful
	// windows only.
	Updates uint64 `json:"updates"`
	// Windows is the number of engine applications the updates arrived
	// in: equal to Updates when applying change by change, and the
	// number of batch windows when applying through ApplyBatch.
	Windows uint64 `json:"windows"`

	// Adjustments is the total number of membership adjustments — nodes
	// whose output differs between the stable configuration before an
	// update and the one after it. Theorem 1 bounds its expectation by
	// one per update; Adjustments/Updates is the measured amortized
	// adjustment complexity that docs/VALIDATION.md tabulates.
	Adjustments uint64 `json:"adjustments"`
	// Influence is the total influence-set size Σ|S|: nodes that changed
	// state at least once during a recovery, including transient flips.
	Influence uint64 `json:"influence"`
	// Flips is the total number of state flips including repeats (the
	// naive template may make up to |S|² of them, §4).
	Flips uint64 `json:"flips"`

	// CascadeSteps is the total number of synchronous cascade steps the
	// model-level template executed (steps in which at least one node
	// flipped) — its "rounds to quiescence".
	CascadeSteps uint64 `json:"cascade_steps"`
	// TouchedSlots is the total number of distinct arena slots the
	// O(touched) accounting examined per window: staged nodes plus
	// cascade-flipped nodes. It is the measured form of the claim that
	// per-update cost is O(touched), never O(n).
	TouchedSlots uint64 `json:"touched_slots"`

	// Rounds is the total number of synchronous network rounds to
	// quiescence across all instrumented updates (message-passing
	// engines only).
	Rounds uint64 `json:"rounds"`
	// Broadcasts counts broadcast operations: one per sending node per
	// round regardless of degree — the paper's broadcast-complexity.
	Broadcasts uint64 `json:"broadcasts"`
	// MessagesSent counts point-to-point message copies produced by
	// broadcast fan-out (one per neighbor), including copies that were
	// never delivered — dropped by a fault injector, or in flight to a
	// node that departed before delivery.
	MessagesSent uint64 `json:"messages_sent"`
	// MessagesDelivered counts point-to-point copies actually delivered
	// to a live recipient. Without faults and departures mid-recovery
	// it equals MessagesSent.
	MessagesDelivered uint64 `json:"messages_delivered"`
	// MessagesDropped counts copies suppressed by a fault injector.
	MessagesDropped uint64 `json:"messages_dropped"`
	// Bits is the total broadcast payload size in bits; the paper
	// restricts messages to O(log n) bits.
	Bits uint64 `json:"bits"`
	// MaxCausalDepth is the longest chain of causally dependent message
	// deliveries observed (asynchronous engine only). It is a maximum,
	// not a sum.
	MaxCausalDepth uint64 `json:"max_causal_depth"`

	// Handoffs is the total number of cascade hand-offs the sharded
	// engine routed (local and cross-shard, attributed by slot
	// ownership).
	Handoffs uint64 `json:"handoffs"`
	// CrossShard is the subset of Handoffs that crossed a shard boundary
	// — the serialization points of a parallel window. Theorem 1 bounds
	// its expectation by O(1) per update regardless of the shard count.
	CrossShard uint64 `json:"cross_shard"`
	// Steals is the number of successful work-steal operations in the
	// sharded engine: an idle worker taking a batch of queued slots from
	// a busier shard's deque. Unlike Handoffs/CrossShard it depends on
	// runtime scheduling, so it is not deterministic across runs.
	Steals uint64 `json:"steals"`
}

// Add accumulates o into c: sums everywhere, except MaxCausalDepth which
// takes the maximum.
func (c *Counters) Add(o Counters) {
	c.Updates += o.Updates
	c.Windows += o.Windows
	c.Adjustments += o.Adjustments
	c.Influence += o.Influence
	c.Flips += o.Flips
	c.CascadeSteps += o.CascadeSteps
	c.TouchedSlots += o.TouchedSlots
	c.Rounds += o.Rounds
	c.Broadcasts += o.Broadcasts
	c.MessagesSent += o.MessagesSent
	c.MessagesDelivered += o.MessagesDelivered
	c.MessagesDropped += o.MessagesDropped
	c.Bits += o.Bits
	c.MaxCausalDepth = max(c.MaxCausalDepth, o.MaxCausalDepth)
	c.Handoffs += o.Handoffs
	c.CrossShard += o.CrossShard
	c.Steals += o.Steals
}

// Diff returns the counters accumulated since prev was captured from the
// same collector: field-wise subtraction for the additive counters.
// MaxCausalDepth carries the current running maximum (the maximum inside
// an interval is not recoverable from two snapshots). prev must be an
// earlier snapshot of the same counter stream.
func (c Counters) Diff(prev Counters) Counters {
	return Counters{
		Updates:           c.Updates - prev.Updates,
		Windows:           c.Windows - prev.Windows,
		Adjustments:       c.Adjustments - prev.Adjustments,
		Influence:         c.Influence - prev.Influence,
		Flips:             c.Flips - prev.Flips,
		CascadeSteps:      c.CascadeSteps - prev.CascadeSteps,
		TouchedSlots:      c.TouchedSlots - prev.TouchedSlots,
		Rounds:            c.Rounds - prev.Rounds,
		Broadcasts:        c.Broadcasts - prev.Broadcasts,
		MessagesSent:      c.MessagesSent - prev.MessagesSent,
		MessagesDelivered: c.MessagesDelivered - prev.MessagesDelivered,
		MessagesDropped:   c.MessagesDropped - prev.MessagesDropped,
		Bits:              c.Bits - prev.Bits,
		MaxCausalDepth:    c.MaxCausalDepth,
		Handoffs:          c.Handoffs - prev.Handoffs,
		CrossShard:        c.CrossShard - prev.CrossShard,
		Steals:            c.Steals - prev.Steals,
	}
}

// PerUpdate is Counters normalized by the update count: the amortized
// per-change complexity measures the paper's theorems bound. The zero
// value (no updates) is all zeros, never NaN.
// The JSON tags mirror Counters' and are equally load-bearing for
// /metricsz consumers.
type PerUpdate struct {
	Adjustments       float64 `json:"adjustments"`
	Influence         float64 `json:"influence"`
	Flips             float64 `json:"flips"`
	CascadeSteps      float64 `json:"cascade_steps"`
	TouchedSlots      float64 `json:"touched_slots"`
	Rounds            float64 `json:"rounds"`
	Broadcasts        float64 `json:"broadcasts"`
	MessagesSent      float64 `json:"messages_sent"`
	MessagesDelivered float64 `json:"messages_delivered"`
	Bits              float64 `json:"bits"`
	Handoffs          float64 `json:"handoffs"`
	CrossShard        float64 `json:"cross_shard"`
	Steals            float64 `json:"steals"`
}

// PerUpdate returns the amortized per-update rates.
func (c Counters) PerUpdate() PerUpdate {
	if c.Updates == 0 {
		return PerUpdate{}
	}
	per := func(total uint64) float64 { return float64(total) / float64(c.Updates) }
	return PerUpdate{
		Adjustments:       per(c.Adjustments),
		Influence:         per(c.Influence),
		Flips:             per(c.Flips),
		CascadeSteps:      per(c.CascadeSteps),
		TouchedSlots:      per(c.TouchedSlots),
		Rounds:            per(c.Rounds),
		Broadcasts:        per(c.Broadcasts),
		MessagesSent:      per(c.MessagesSent),
		MessagesDelivered: per(c.MessagesDelivered),
		Bits:              per(c.Bits),
		Handoffs:          per(c.Handoffs),
		CrossShard:        per(c.CrossShard),
		Steals:            per(c.Steals),
	}
}

// String renders the non-zero counters compactly, leading with the
// amortized adjustment rate (the paper's headline measure).
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Counters(updates=%d", c.Updates)
	if c.Updates > 0 {
		fmt.Fprintf(&b, " adj/upd=%.3f", float64(c.Adjustments)/float64(c.Updates))
	}
	for _, f := range []struct {
		name string
		v    uint64
	}{
		{"windows", c.Windows}, {"adj", c.Adjustments}, {"|S|", c.Influence},
		{"flips", c.Flips}, {"casc-steps", c.CascadeSteps}, {"touched", c.TouchedSlots},
		{"rounds", c.Rounds}, {"bcasts", c.Broadcasts}, {"sent", c.MessagesSent},
		{"delivered", c.MessagesDelivered}, {"dropped", c.MessagesDropped},
		{"bits", c.Bits}, {"depth", c.MaxCausalDepth},
		{"handoffs", c.Handoffs}, {"xshard", c.CrossShard}, {"steals", c.Steals},
	} {
		if f.v != 0 {
			fmt.Fprintf(&b, " %s=%d", f.name, f.v)
		}
	}
	b.WriteString(")")
	return b.String()
}

// NetworkSample is one recovery's network-cost readings, as plain ints
// so the network simulator can hand them over without this package
// depending on it (internal/simnet's Metrics.Sample adapts).
type NetworkSample struct {
	Broadcasts  int
	Sent        int
	Delivered   int
	Dropped     int
	Bits        int
	CausalDepth int
}

// Collector is the attachable counter sink of the core.Instrument
// capability. Engines hold a *Collector that is nil while
// instrumentation is disabled; every accounting site is guarded by that
// nil check, so a detached collector costs nothing.
//
// A Collector is not safe for concurrent use. Engines update it only
// from the goroutine that applies changes (the sharded engine from its
// coordinator, after the window's workers have joined), matching the
// engines' own single-caller contract.
type Collector struct {
	Counters
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Snapshot returns a copy of the current counters; pair two snapshots
// with Counters.Diff for interval accounting.
func (c *Collector) Snapshot() Counters { return c.Counters }

// ObserveNetworkWindow folds one successful application of a
// message-passing engine — updates changes recovered in one window —
// into the counters: the window's cost account plus the network sample
// of its recovery. It is the single fold shared by the synchronous and
// asynchronous engines (internal/direct, internal/protocol), so a new
// counter cannot be added to one engine's accounting and missed in
// another's.
func (c *Collector) ObserveNetworkWindow(updates, adjustments, influence, flips, rounds int, net NetworkSample) {
	c.Updates += uint64(updates)
	c.Windows++
	c.Adjustments += uint64(adjustments)
	c.Influence += uint64(influence)
	c.Flips += uint64(flips)
	c.Rounds += uint64(rounds)
	c.Broadcasts += uint64(net.Broadcasts)
	c.MessagesSent += uint64(net.Sent)
	c.MessagesDelivered += uint64(net.Delivered)
	c.MessagesDropped += uint64(net.Dropped)
	c.Bits += uint64(net.Bits)
	c.MaxCausalDepth = max(c.MaxCausalDepth, uint64(net.CausalDepth))
}

// Reset zeroes all counters.
func (c *Collector) Reset() { c.Counters = Counters{} }
