package metrics

import (
	"strings"
	"testing"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{Updates: 2, Windows: 1, Adjustments: 3, Influence: 4, Flips: 5,
		CascadeSteps: 6, TouchedSlots: 7, Rounds: 8, Broadcasts: 9,
		MessagesSent: 10, MessagesDelivered: 11, MessagesDropped: 1, Bits: 12,
		MaxCausalDepth: 4, Handoffs: 13, CrossShard: 14}
	b := Counters{Updates: 1, Windows: 1, Adjustments: 1, Influence: 1, Flips: 1,
		CascadeSteps: 1, TouchedSlots: 1, Rounds: 1, Broadcasts: 1,
		MessagesSent: 1, MessagesDelivered: 1, MessagesDropped: 1, Bits: 1,
		MaxCausalDepth: 2, Handoffs: 1, CrossShard: 1}
	a.Add(b)
	want := Counters{Updates: 3, Windows: 2, Adjustments: 4, Influence: 5, Flips: 6,
		CascadeSteps: 7, TouchedSlots: 8, Rounds: 9, Broadcasts: 10,
		MessagesSent: 11, MessagesDelivered: 12, MessagesDropped: 2, Bits: 13,
		MaxCausalDepth: 4, Handoffs: 14, CrossShard: 15}
	if a != want {
		t.Fatalf("Add:\n got %+v\nwant %+v", a, want)
	}
}

func TestCountersAddMaxCausalDepthIsMax(t *testing.T) {
	a := Counters{MaxCausalDepth: 1}
	a.Add(Counters{MaxCausalDepth: 7})
	if a.MaxCausalDepth != 7 {
		t.Fatalf("MaxCausalDepth = %d, want 7", a.MaxCausalDepth)
	}
	a.Add(Counters{MaxCausalDepth: 3})
	if a.MaxCausalDepth != 7 {
		t.Fatalf("MaxCausalDepth regressed to %d", a.MaxCausalDepth)
	}
}

func TestCountersDiff(t *testing.T) {
	var c Collector
	c.Updates, c.Adjustments, c.Broadcasts = 10, 4, 20
	before := c.Snapshot()
	c.Updates, c.Adjustments, c.Broadcasts = 15, 6, 29
	c.MaxCausalDepth = 3
	d := c.Snapshot().Diff(before)
	if d.Updates != 5 || d.Adjustments != 2 || d.Broadcasts != 9 {
		t.Fatalf("Diff: %+v", d)
	}
	// The interval maximum is not recoverable; Diff documents that it
	// carries the running maximum.
	if d.MaxCausalDepth != 3 {
		t.Fatalf("Diff MaxCausalDepth = %d, want running max 3", d.MaxCausalDepth)
	}
}

func TestPerUpdate(t *testing.T) {
	c := Counters{Updates: 4, Adjustments: 2, Rounds: 8, Broadcasts: 6, Bits: 100}
	p := c.PerUpdate()
	if p.Adjustments != 0.5 || p.Rounds != 2 || p.Broadcasts != 1.5 || p.Bits != 25 {
		t.Fatalf("PerUpdate: %+v", p)
	}
	// No updates must give zeros, never NaN.
	if z := (Counters{Adjustments: 5}).PerUpdate(); z != (PerUpdate{}) {
		t.Fatalf("zero-update PerUpdate: %+v", z)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{Updates: 10, Adjustments: 5, Broadcasts: 7}
	s := c.String()
	if !strings.Contains(s, "updates=10") || !strings.Contains(s, "adj/upd=0.500") || !strings.Contains(s, "bcasts=7") {
		t.Fatalf("String: %s", s)
	}
	// Zero-valued counters are elided.
	if strings.Contains(s, "rounds=") {
		t.Fatalf("String shows zero counter: %s", s)
	}
	if (Counters{}).String() == "" {
		t.Fatal("empty String on zero value")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Updates = 9
	c.Reset()
	if c.Snapshot() != (Counters{}) {
		t.Fatalf("Reset incomplete: %+v", c.Counters)
	}
}
