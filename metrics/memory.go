package metrics

import (
	"fmt"
	"strings"
)

// Memory is a live memory account of an engine's maintained state: the
// graph arena's retained bytes plus the engine's own slot-indexed
// auxiliary lanes. Engines expose it through the core.MemoryReporter
// capability; dynmisd's /metricsz endpoint and the bench/validate
// harnesses surface it. Every figure is computed from slice capacities
// and entry counts — deterministic for a given operation history, no
// runtime introspection — so memory columns can be committed in
// artifacts (BENCH_dynmis.json, docs/VALIDATION.md) without machine
// noise. The JSON tags are stable wire names; renaming one is a
// wire-format change.
type Memory struct {
	// Nodes/Slots/Edges size the structure: live nodes, arena slots
	// (including free ones awaiting recycling), undirected edges.
	Nodes int64 `json:"nodes"`
	Slots int64 `json:"slots"`
	Edges int64 `json:"edges"`

	// ArenaBytes covers the parallel slot lanes (IDs, adjacency headers,
	// priority, state) at capacity; IndexBytes is the estimated
	// NodeID→slot hash index; FreeBytes the slot and spill-block
	// free-lists.
	ArenaBytes int64 `json:"arena_bytes"`
	IndexBytes int64 `json:"index_bytes"`
	FreeBytes  int64 `json:"free_bytes"`

	// SpillSlabBytes is the shared spill pool's slab storage at
	// capacity; SpillLiveBytes the portion in blocks currently assigned
	// to a node; SpillFreeBlocks the recycled blocks awaiting reuse.
	SpillSlabBytes  int64 `json:"spill_slab_bytes"`
	SpillLiveBytes  int64 `json:"spill_live_bytes"`
	SpillFreeBlocks int64 `json:"spill_free_blocks"`

	// AuxBytes covers the engine's own slot-indexed scratch and state
	// lanes beyond the shared arena (cascade worklists, blocker counts,
	// shard ownership maps, …).
	AuxBytes int64 `json:"aux_bytes"`

	// TotalBytes is the whole account; BytesPerNode amortizes it over
	// live nodes (0 when empty) — the headline figure of the big-graph
	// benchmark tier. SpillUtilization is SpillLive/SpillSlab (1 when no
	// slab exists).
	TotalBytes       int64   `json:"total_bytes"`
	BytesPerNode     float64 `json:"bytes_per_node"`
	SpillUtilization float64 `json:"spill_utilization"`
}

// String renders the account compactly, leading with the headline
// bytes/node figure.
func (m Memory) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory(nodes=%d B/node=%.1f total=%d", m.Nodes, m.BytesPerNode, m.TotalBytes)
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"arena", m.ArenaBytes}, {"index", m.IndexBytes}, {"free", m.FreeBytes},
		{"slab", m.SpillSlabBytes}, {"spill-live", m.SpillLiveBytes}, {"aux", m.AuxBytes},
	} {
		if f.v != 0 {
			fmt.Fprintf(&b, " %s=%d", f.name, f.v)
		}
	}
	b.WriteString(")")
	return b.String()
}
