package trace

import (
	"bytes"
	"errors"
	"io"
	"slices"
	"strings"
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

// sample covers every change kind, including empty and multi-neighbor
// insertions.
func sample() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1, 2),
		graph.EdgeChange(graph.EdgeInsert, 1, 3),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2),
		graph.EdgeChange(graph.EdgeDeleteAbrupt, 1, 3),
		graph.NodeChange(graph.NodeMute, 2),
		graph.NodeChange(graph.NodeUnmute, 2, 3),
		graph.NodeChange(graph.NodeDeleteGraceful, 3),
		graph.NodeChange(graph.NodeDeleteAbrupt, 2),
	}
}

func TestRoundTrip(t *testing.T) {
	cs := sample()
	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, cs)
	}

	// Re-encoding the decoded stream must reproduce the file byte for
	// byte: the encoding is canonical.
	var buf2 bytes.Buffer
	if err := WriteAll(&buf2, slices.Values(got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoding is not byte-identical:\n%q\nvs\n%q", buf.Bytes(), buf2.Bytes())
	}
}

func TestRoundTripWorkload(t *testing.T) {
	// A generated workload — the artifact -record captures — survives the
	// round trip change for change.
	rng := workload.Rand(7)
	build := workload.GNP(rng, 60, 0.05)
	drive := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(500))
	cs := append(append([]graph.Change{}, build...), drive...)

	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatalf("workload round trip mismatch: %d vs %d changes", len(got), len(cs))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Fatalf("empty trace missing header: %q", buf.String())
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: got %v, %v", got, err)
	}
}

func TestSchemaRejection(t *testing.T) {
	for name, input := range map[string]string{
		"empty":      "",
		"wrongVer":   `{"schema":"dynmis-trace/v999"}` + "\n",
		"noSchema":   `{"k":"node-insert","n":1}` + "\n",
		"notJSON":    "plain text\n",
		"otherField": `{"hello":"world"}` + "\n",
	} {
		if _, err := ReadAll(strings.NewReader(input)); !errors.Is(err, ErrSchema) {
			t.Errorf("%s: want ErrSchema, got %v", name, err)
		}
	}
}

func TestMalformedRecords(t *testing.T) {
	head := `{"schema":"dynmis-trace/v1"}` + "\n"
	for name, line := range map[string]string{
		"unknownKind": `{"k":"node-teleport","n":1}`,
		"edgeNoEnds":  `{"k":"edge-insert"}`,
		"nodeNoNode":  `{"k":"node-insert"}`,
		"garbage":     `{{{`,
	} {
		_, err := ReadAll(strings.NewReader(head + line + "\n"))
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: want decode error, got %v", name, err)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(strings.NewReader(`{"schema":"dynmis-trace/v1"}` + "\n" + `{"k":"bogus","n":1}` + "\n"))
	if _, err := r.Read(); err == nil {
		t.Fatal("want error")
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("error must be sticky")
	}
	if r.Err() == nil {
		t.Fatal("Err must report the sticky error")
	}
}

func TestAllStopsCleanlyAtEOF(t *testing.T) {
	cs := sample()
	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got []graph.Change
	for c := range r.All() {
		got = append(got, c)
	}
	if r.Err() != nil {
		t.Fatalf("clean trace left Err = %v", r.Err())
	}
	if !changesEqual(got, cs) {
		t.Fatal("All mismatch")
	}
}

func TestTee(t *testing.T) {
	cs := sample()
	var rec bytes.Buffer
	w := NewWriter(&rec)

	var passed []graph.Change
	for c := range Tee(slices.Values(cs), w) {
		passed = append(passed, c)
	}
	if !changesEqual(passed, cs) {
		t.Fatal("Tee altered the stream")
	}
	got, err := ReadAll(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatal("Tee recording mismatch")
	}
}

func TestTeeFlushesOnEarlyStop(t *testing.T) {
	cs := sample()
	var rec bytes.Buffer
	w := NewWriter(&rec)
	n := 0
	for range Tee(slices.Values(cs), w) {
		n++
		if n == 3 {
			break
		}
	}
	got, err := ReadAll(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs[:3]) {
		t.Fatalf("early stop recorded %d changes, want 3", len(got))
	}
}

// tornEncode encodes cs and truncates the output mid-way through the
// final record, simulating a crash during an append.
func tornEncode(t *testing.T, cs []graph.Change, cut int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut inside the last line: drop the trailing newline plus cut bytes.
	if cut >= 0 && len(data) > cut+1 {
		data = data[:len(data)-1-cut]
	}
	return data
}

func TestTornTailTolerated(t *testing.T) {
	cs := sample()
	for _, cut := range []int{1, 3, 7} {
		data := tornEncode(t, cs, cut)
		// Default reader: the torn line is a sticky decode error.
		if _, err := ReadAll(bytes.NewReader(data)); err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("cut=%d: default reader must fail on a torn tail", cut)
		}
		// Tolerant reader: the torn record is dropped, the prefix survives.
		r := NewReader(bytes.NewReader(data), TolerateTornTail())
		var got []graph.Change
		for {
			c, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("cut=%d: tolerant reader failed: %v", cut, err)
			}
			got = append(got, c)
		}
		if !r.TornTail() {
			t.Fatalf("cut=%d: TornTail not reported", cut)
		}
		if !changesEqual(got, cs[:len(cs)-1]) {
			t.Fatalf("cut=%d: want the %d-change prefix, got %d changes", cut, len(cs)-1, len(got))
		}
	}
}

func TestTornTailOnlyForgivesTheFinalLine(t *testing.T) {
	// A malformed line with complete lines after it is corruption, not a
	// torn tail: the tolerant reader must still fail.
	input := `{"schema":"dynmis-trace/v1"}` + "\n" +
		`{"k":"node-insert","n` + "\n" +
		`{"k":"node-insert","n":2}` + "\n"
	r := NewReader(strings.NewReader(input), TolerateTornTail())
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("mid-trace corruption tolerated: %v", err)
	}
	if r.TornTail() {
		t.Fatal("mid-trace corruption misreported as a torn tail")
	}
}

func TestTornHeaderTolerated(t *testing.T) {
	for name, input := range map[string]string{
		"empty":      "",
		"tornHeader": `{"schema":"dynmis-tr`,
	} {
		r := NewReader(strings.NewReader(input), TolerateTornTail())
		if _, err := r.Read(); err != io.EOF {
			t.Errorf("%s: want io.EOF, got %v", name, err)
		}
		if !r.TornTail() {
			t.Errorf("%s: TornTail not reported", name)
		}
	}
	// A complete header naming the wrong schema is never forgiven.
	r := NewReader(strings.NewReader(`{"schema":"dynmis-trace/v999"}`+"\n"), TolerateTornTail())
	if _, err := r.Read(); !errors.Is(err, ErrSchema) {
		t.Errorf("wrong schema: want ErrSchema, got %v", err)
	}
}

// syncRecorder counts Sync calls to prove Writer.Sync reaches the
// underlying writer's fsync hook.
type syncRecorder struct {
	bytes.Buffer
	syncs int
}

func (s *syncRecorder) Sync() error { s.syncs++; return nil }

func TestWriterSync(t *testing.T) {
	var rec syncRecorder
	w := NewWriter(&rec)
	if err := w.Write(graph.NodeChange(graph.NodeInsert, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if rec.syncs != 1 {
		t.Fatalf("want 1 fsync, got %d", rec.syncs)
	}
	// Sync flushes: the buffered record must be visible.
	got, err := ReadAll(bytes.NewReader(rec.Bytes()))
	if err != nil || len(got) != 1 {
		t.Fatalf("after Sync: got %v, %v", got, err)
	}
	// On a writer without an fsync notion, Sync degrades to Flush.
	var plain bytes.Buffer
	w2 := NewWriter(&plain)
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), Schema) {
		t.Fatal("Sync on an empty writer must still emit the header")
	}
}

func changesEqual(a, b []graph.Change) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].U != b[i].U || a[i].V != b[i].V || a[i].Node != b[i].Node {
			return false
		}
		if !slices.Equal(a[i].Edges, b[i].Edges) {
			return false
		}
	}
	return true
}
