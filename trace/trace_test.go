package trace

import (
	"bytes"
	"errors"
	"io"
	"slices"
	"strings"
	"testing"

	"dynmis/internal/graph"
	"dynmis/workload"
)

// sample covers every change kind, including empty and multi-neighbor
// insertions.
func sample() []graph.Change {
	return []graph.Change{
		graph.NodeChange(graph.NodeInsert, 1),
		graph.NodeChange(graph.NodeInsert, 2, 1),
		graph.NodeChange(graph.NodeInsert, 3, 1, 2),
		graph.EdgeChange(graph.EdgeInsert, 1, 3),
		graph.EdgeChange(graph.EdgeDeleteGraceful, 1, 2),
		graph.EdgeChange(graph.EdgeDeleteAbrupt, 1, 3),
		graph.NodeChange(graph.NodeMute, 2),
		graph.NodeChange(graph.NodeUnmute, 2, 3),
		graph.NodeChange(graph.NodeDeleteGraceful, 3),
		graph.NodeChange(graph.NodeDeleteAbrupt, 2),
	}
}

func TestRoundTrip(t *testing.T) {
	cs := sample()
	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, cs)
	}

	// Re-encoding the decoded stream must reproduce the file byte for
	// byte: the encoding is canonical.
	var buf2 bytes.Buffer
	if err := WriteAll(&buf2, slices.Values(got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoding is not byte-identical:\n%q\nvs\n%q", buf.Bytes(), buf2.Bytes())
	}
}

func TestRoundTripWorkload(t *testing.T) {
	// A generated workload — the artifact -record captures — survives the
	// round trip change for change.
	rng := workload.Rand(7)
	build := workload.GNP(rng, 60, 0.05)
	drive := workload.RandomChurn(rng, workload.BuildGraph(build), workload.DefaultChurn(500))
	cs := append(append([]graph.Change{}, build...), drive...)

	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatalf("workload round trip mismatch: %d vs %d changes", len(got), len(cs))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Fatalf("empty trace missing header: %q", buf.String())
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: got %v, %v", got, err)
	}
}

func TestSchemaRejection(t *testing.T) {
	for name, input := range map[string]string{
		"empty":      "",
		"wrongVer":   `{"schema":"dynmis-trace/v999"}` + "\n",
		"noSchema":   `{"k":"node-insert","n":1}` + "\n",
		"notJSON":    "plain text\n",
		"otherField": `{"hello":"world"}` + "\n",
	} {
		if _, err := ReadAll(strings.NewReader(input)); !errors.Is(err, ErrSchema) {
			t.Errorf("%s: want ErrSchema, got %v", name, err)
		}
	}
}

func TestMalformedRecords(t *testing.T) {
	head := `{"schema":"dynmis-trace/v1"}` + "\n"
	for name, line := range map[string]string{
		"unknownKind": `{"k":"node-teleport","n":1}`,
		"edgeNoEnds":  `{"k":"edge-insert"}`,
		"nodeNoNode":  `{"k":"node-insert"}`,
		"garbage":     `{{{`,
	} {
		_, err := ReadAll(strings.NewReader(head + line + "\n"))
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: want decode error, got %v", name, err)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(strings.NewReader(`{"schema":"dynmis-trace/v1"}` + "\n" + `{"k":"bogus","n":1}` + "\n"))
	if _, err := r.Read(); err == nil {
		t.Fatal("want error")
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("error must be sticky")
	}
	if r.Err() == nil {
		t.Fatal("Err must report the sticky error")
	}
}

func TestAllStopsCleanlyAtEOF(t *testing.T) {
	cs := sample()
	var buf bytes.Buffer
	if err := WriteAll(&buf, slices.Values(cs)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got []graph.Change
	for c := range r.All() {
		got = append(got, c)
	}
	if r.Err() != nil {
		t.Fatalf("clean trace left Err = %v", r.Err())
	}
	if !changesEqual(got, cs) {
		t.Fatal("All mismatch")
	}
}

func TestTee(t *testing.T) {
	cs := sample()
	var rec bytes.Buffer
	w := NewWriter(&rec)

	var passed []graph.Change
	for c := range Tee(slices.Values(cs), w) {
		passed = append(passed, c)
	}
	if !changesEqual(passed, cs) {
		t.Fatal("Tee altered the stream")
	}
	got, err := ReadAll(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs) {
		t.Fatal("Tee recording mismatch")
	}
}

func TestTeeFlushesOnEarlyStop(t *testing.T) {
	cs := sample()
	var rec bytes.Buffer
	w := NewWriter(&rec)
	n := 0
	for range Tee(slices.Values(cs), w) {
		n++
		if n == 3 {
			break
		}
	}
	got, err := ReadAll(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !changesEqual(got, cs[:3]) {
		t.Fatalf("early stop recorded %d changes, want 3", len(got))
	}
}

func changesEqual(a, b []graph.Change) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].U != b[i].U || a[i].V != b[i].V || a[i].Node != b[i].Node {
			return false
		}
		if !slices.Equal(a[i].Edges, b[i].Edges) {
			return false
		}
	}
	return true
}
