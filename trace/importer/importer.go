// Package importer converts SNAP-style edge lists — the lingua franca
// of published real-world graph datasets — into canonical dynmis-trace
// JSONL, so a crawl of an autonomous-system topology or a temporal
// contact network can be replayed into any engine exactly like a
// synthetic workload.
//
// The input is line-oriented: `u v` or `u v timestamp` with the fields
// separated by any whitespace, `#` or `%` comment lines, and blank
// lines, all of which the common SNAP/KONECT exports use. Each new
// endpoint becomes a bare node-insert on first appearance and each edge
// line an edge-insert, so the emitted trace applies cleanly to an empty
// graph. With a positive Window, three-field lines become a sliding
// window over time: an edge expires Window time units after its
// insertion (a graceful edge delete), and a node whose last edge
// expired leaves the graph (a graceful node delete) until an edge
// mentions it again.
//
// The output is produced by a trace.Writer, so it is canonical byte for
// byte: importing the same input with the same options always yields
// identical bytes, and re-encoding the imported trace (trace.ReadAll →
// trace.WriteAll) reproduces it exactly — the round-trip the importer
// fuzz target pins.
package importer

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"

	"dynmis/internal/graph"
	"dynmis/trace"
)

// Policy says what to do with an input line the import could either
// drop or reject.
type Policy uint8

const (
	// PolicySkip drops the offending line and counts it in Stats — the
	// default, because published datasets routinely contain self-loops
	// and repeated edges.
	PolicySkip Policy = iota
	// PolicyError aborts the import on the first offending line.
	PolicyError
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicySkip:
		return "skip"
	case PolicyError:
		return "error"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves the flag spellings of a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "skip":
		return PolicySkip, nil
	case "error":
		return PolicyError, nil
	default:
		return 0, fmt.Errorf("importer: unknown policy %q (want skip or error)", s)
	}
}

// Options configures an Import.
type Options struct {
	// Window, when positive, turns a three-field temporal edge list into
	// a sliding window: an edge inserted at time t expires (graceful
	// edge delete) as soon as a line with timestamp ≥ t+Window is
	// reached, and a node whose last edge expired is deleted until it
	// reappears. Window mode requires every line to carry a timestamp
	// and the timestamps to be non-decreasing (SNAP temporal exports
	// are sorted; a decreasing timestamp is a malformed file, not a
	// reordering request). Zero imports the graph cumulatively,
	// ignoring any timestamp field.
	Window int64
	// Normalize renumbers node IDs densely (0, 1, 2, …) in order of
	// first appearance. Without it raw IDs are used verbatim, and
	// negative raw IDs are rejected (graph.None is -1, so they cannot
	// name nodes).
	Normalize bool
	// SelfLoops says what to do with a line whose endpoints are equal.
	SelfLoops Policy
	// Duplicates says what to do with an edge that is already present.
	// In window mode a skipped duplicate does not refresh the original
	// edge's expiry — the line is dropped entirely.
	Duplicates Policy
}

// Stats is the import accounting: what was read, what was emitted, and
// what each policy dropped.
type Stats struct {
	// Lines is the number of input lines read, including comments and
	// blanks.
	Lines int
	// Comments counts `#`/`%` comment lines and blank lines.
	Comments int
	// Edges is the number of edge-insert changes emitted.
	Edges int
	// Nodes is the number of node-insert changes emitted (re-arrivals
	// after a window expiry count again).
	Nodes int
	// SelfLoops and Duplicates count lines dropped under PolicySkip.
	SelfLoops  int
	Duplicates int
	// ExpiredEdges and ExpiredNodes count the deletions the sliding
	// window emitted.
	ExpiredEdges int
	ExpiredNodes int
	// Changes is the total number of changes written.
	Changes int
}

// windowEdge is one FIFO entry of the sliding window.
type windowEdge struct {
	u, v graph.NodeID
	at   int64
}

// importer is the state of one Import run.
type importer struct {
	opts  Options
	w     *trace.Writer
	g     *graph.Graph           // mirror of the emitted graph
	ids   map[int64]graph.NodeID // raw → emitted ID (stable across window re-arrivals)
	queue []windowEdge           // window FIFO, insertion order = time order
	last  int64                  // newest timestamp seen
	timed bool                   // any timestamp seen yet
	stats Stats
}

// Import converts the edge list on src into a canonical trace on dst
// and reports what it did. On error the trace written so far is valid
// JSONL of the applied prefix; Stats covers exactly that prefix.
func Import(dst io.Writer, src io.Reader, opts Options) (Stats, error) {
	imp := &importer{
		opts: opts,
		w:    trace.NewWriter(dst),
		g:    graph.New(),
		ids:  make(map[int64]graph.NodeID),
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		imp.stats.Lines++
		if err := imp.line(sc.Bytes()); err != nil {
			return imp.stats, fmt.Errorf("importer: line %d: %w", imp.stats.Lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		return imp.stats, fmt.Errorf("importer: %w", err)
	}
	if err := imp.w.Flush(); err != nil {
		return imp.stats, fmt.Errorf("importer: %w", err)
	}
	return imp.stats, nil
}

// errSkip is the internal signal that a policy dropped the line.
var errSkip = errors.New("skip")

// line processes one input line.
func (imp *importer) line(raw []byte) error {
	line := bytes.TrimSpace(raw)
	if len(line) == 0 || line[0] == '#' || line[0] == '%' {
		imp.stats.Comments++
		return nil
	}
	fields := bytes.Fields(line)
	if len(fields) != 2 && len(fields) != 3 {
		return fmt.Errorf("want `u v` or `u v timestamp`, have %d fields", len(fields))
	}
	rawU, err := strconv.ParseInt(string(fields[0]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad source ID %q: %v", fields[0], err)
	}
	rawV, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad target ID %q: %v", fields[1], err)
	}

	if imp.opts.Window > 0 {
		if len(fields) != 3 {
			return errors.New("window mode needs `u v timestamp` lines")
		}
		at, err := strconv.ParseInt(string(fields[2]), 10, 64)
		if err != nil {
			return fmt.Errorf("bad timestamp %q: %v", fields[2], err)
		}
		if imp.timed && at < imp.last {
			return fmt.Errorf("timestamp %d after %d: window mode needs non-decreasing timestamps", at, imp.last)
		}
		imp.last, imp.timed = at, true
		if err := imp.expire(at); err != nil {
			return err
		}
		u, v, err := imp.endpoints(rawU, rawV)
		if err == errSkip {
			return nil
		}
		if err != nil {
			return err
		}
		imp.queue = append(imp.queue, windowEdge{u: u, v: v, at: at})
		return nil
	}

	_, _, err = imp.endpoints(rawU, rawV)
	if err == errSkip {
		return nil
	}
	return err
}

// endpoints applies the self-loop and duplicate policies, materializes
// missing endpoints, and emits the edge. It returns errSkip when a
// policy dropped the line.
func (imp *importer) endpoints(rawU, rawV int64) (u, v graph.NodeID, err error) {
	if rawU == rawV {
		if imp.opts.SelfLoops == PolicyError {
			return 0, 0, fmt.Errorf("self-loop at node %d", rawU)
		}
		imp.stats.SelfLoops++
		return 0, 0, errSkip
	}
	if u, err = imp.node(rawU); err != nil {
		return 0, 0, err
	}
	if v, err = imp.node(rawV); err != nil {
		return 0, 0, err
	}
	if imp.g.HasEdge(u, v) {
		if imp.opts.Duplicates == PolicyError {
			return 0, 0, fmt.Errorf("duplicate edge %d %d", rawU, rawV)
		}
		imp.stats.Duplicates++
		return 0, 0, errSkip
	}
	if err := imp.emit(graph.EdgeChange(graph.EdgeInsert, u, v)); err != nil {
		return 0, 0, err
	}
	imp.stats.Edges++
	return u, v, nil
}

// node resolves a raw ID, emitting a bare node-insert when the node is
// not currently in the graph. The raw→ID mapping is stable for the
// whole import, so a node that expired out of the window keeps its ID
// on re-arrival.
func (imp *importer) node(raw int64) (graph.NodeID, error) {
	id, ok := imp.ids[raw]
	if !ok {
		if imp.opts.Normalize {
			id = graph.NodeID(len(imp.ids))
		} else {
			if raw < 0 {
				return 0, fmt.Errorf("negative node ID %d needs -normalize (graph IDs are non-negative)", raw)
			}
			id = graph.NodeID(raw)
		}
		imp.ids[raw] = id
	}
	if imp.g.HasNode(id) {
		return id, nil
	}
	if err := imp.emit(graph.NodeChange(graph.NodeInsert, id)); err != nil {
		return 0, err
	}
	imp.stats.Nodes++
	return id, nil
}

// expire pops every window edge whose lifetime ended at or before now,
// emitting graceful edge deletes, and deletes nodes their last edge
// left isolated.
func (imp *importer) expire(now int64) error {
	for len(imp.queue) > 0 && imp.queue[0].at+imp.opts.Window <= now {
		e := imp.queue[0]
		imp.queue = imp.queue[1:]
		if err := imp.emit(graph.EdgeChange(graph.EdgeDeleteGraceful, e.u, e.v)); err != nil {
			return err
		}
		imp.stats.ExpiredEdges++
		for _, n := range [2]graph.NodeID{e.u, e.v} {
			if imp.g.Degree(n) == 0 {
				if err := imp.emit(graph.NodeChange(graph.NodeDeleteGraceful, n)); err != nil {
					return err
				}
				imp.stats.ExpiredNodes++
			}
		}
	}
	return nil
}

// emit applies the change to the mirror and writes it to the trace —
// the mirror application is what guarantees every emitted trace applies
// cleanly to an empty graph.
func (imp *importer) emit(c graph.Change) error {
	if err := apply(c, imp.g); err != nil {
		return err
	}
	if err := imp.w.Write(c); err != nil {
		return err
	}
	imp.stats.Changes++
	return nil
}

// apply folds one of the importer's change kinds into the mirror.
func apply(c graph.Change, g *graph.Graph) error {
	switch c.Kind {
	case graph.NodeInsert:
		return g.AddNode(c.Node)
	case graph.NodeDeleteGraceful:
		return g.RemoveNode(c.Node)
	case graph.EdgeInsert:
		return g.AddEdge(c.U, c.V)
	case graph.EdgeDeleteGraceful:
		return g.RemoveEdge(c.U, c.V)
	default:
		return fmt.Errorf("unexpected change kind %v", c.Kind)
	}
}
