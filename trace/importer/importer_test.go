package importer_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"dynmis/internal/graph"
	"dynmis/trace"
	"dynmis/trace/importer"
)

// applyAll folds an imported change stream into a fresh graph, failing
// on the first rejected change — every emitted trace must apply cleanly
// from empty.
func applyAll(t *testing.T, cs []graph.Change) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i, c := range cs {
		if err := applyOne(c, g); err != nil {
			t.Fatalf("change %d (%v): %v", i, c, err)
		}
	}
	return g
}

func applyOne(c graph.Change, g *graph.Graph) error {
	switch c.Kind {
	case graph.NodeInsert:
		return g.AddNode(c.Node)
	case graph.NodeDeleteGraceful:
		return g.RemoveNode(c.Node)
	case graph.EdgeInsert:
		return g.AddEdge(c.U, c.V)
	case graph.EdgeDeleteGraceful:
		return g.RemoveEdge(c.U, c.V)
	default:
		return fmt.Errorf("unexpected kind %v", c.Kind)
	}
}

func importFixture(t *testing.T, name string, opts importer.Options) ([]byte, importer.Stats) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := importer.Import(&out, bytes.NewReader(src), opts)
	if err != nil {
		t.Fatalf("import %s: %v", name, err)
	}
	return out.Bytes(), stats
}

func TestImportKarate(t *testing.T) {
	out, stats := importFixture(t, "karate.txt", importer.Options{})
	want := importer.Stats{Lines: 82, Comments: 4, Nodes: 34, Edges: 78, Changes: 112}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	cs, err := trace.ReadAll(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	g := applyAll(t, cs)
	if g.NodeCount() != 34 || g.EdgeCount() != 78 {
		t.Fatalf("imported graph has %d nodes, %d edges; want 34, 78", g.NodeCount(), g.EdgeCount())
	}
	// Node 1 (the instructor) and node 34 (the president) are the two
	// faction hubs of the published network.
	if d := g.Degree(1); d != 16 {
		t.Errorf("degree(1) = %d, want 16", d)
	}
	if d := g.Degree(34); d != 17 {
		t.Errorf("degree(34) = %d, want 17", d)
	}
}

func TestImportFlorentine(t *testing.T) {
	out, stats := importFixture(t, "florentine.txt", importer.Options{})
	want := importer.Stats{Lines: 26, Comments: 6, Nodes: 15, Edges: 20, Changes: 35}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	cs, err := trace.ReadAll(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	g := applyAll(t, cs)
	// The Medici (node 8) are the highest-degree family — the point of
	// the dataset.
	if d := g.Degree(8); d != 6 {
		t.Errorf("degree(Medici) = %d, want 6", d)
	}
}

// TestImportDeterministic pins the byte-for-byte guarantee: equal input
// and options yield equal output, and the canonical re-encoding
// round-trip (ReadAll → WriteAll) reproduces the import exactly.
func TestImportDeterministic(t *testing.T) {
	for _, name := range []string{"karate.txt", "florentine.txt", "temporal-synthetic.txt"} {
		opts := importer.Options{}
		if strings.HasPrefix(name, "temporal") {
			opts.Window = 10
		}
		a, _ := importFixture(t, name, opts)
		b, _ := importFixture(t, name, opts)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two imports differ", name)
		}
		cs, err := trace.ReadAll(bytes.NewReader(a))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var re bytes.Buffer
		if err := trace.WriteAll(&re, slices.Values(cs)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a, re.Bytes()) {
			t.Errorf("%s: ReadAll→WriteAll is not byte-identical", name)
		}
	}
}

// TestImportWindow steps the synthetic temporal fixture through a
// 10-unit sliding window and checks the expiry account: five edges and
// three nodes age out, and two nodes re-enter on the final line.
func TestImportWindow(t *testing.T) {
	out, stats := importFixture(t, "temporal-synthetic.txt", importer.Options{Window: 10})
	want := importer.Stats{
		Lines: 11, Comments: 3,
		Nodes: 8, Edges: 8,
		ExpiredEdges: 5, ExpiredNodes: 3,
		Changes: 24,
	}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	cs, err := trace.ReadAll(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	g := applyAll(t, cs)
	if g.NodeCount() != 5 || g.EdgeCount() != 3 {
		t.Fatalf("final window graph has %d nodes, %d edges; want 5, 3", g.NodeCount(), g.EdgeCount())
	}
	for _, v := range []graph.NodeID{0, 1, 2, 4, 5} {
		if !g.HasNode(v) {
			t.Errorf("node %d missing from final window", v)
		}
	}
	if g.HasNode(3) {
		t.Error("node 3 should have expired")
	}
}

func TestImportPolicies(t *testing.T) {
	in := "1 1\n1 2\n1 2\n2 1\n"
	var out bytes.Buffer
	stats, err := importer.Import(&out, strings.NewReader(in), importer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 1 is a self-loop; 1 2 repeated and 2 1 (same undirected edge)
	// are duplicates.
	if stats.SelfLoops != 1 || stats.Duplicates != 2 || stats.Edges != 1 {
		t.Fatalf("stats = %+v, want 1 self-loop, 2 duplicates, 1 edge", stats)
	}
	if _, err := importer.Import(&bytes.Buffer{}, strings.NewReader("3 3\n"),
		importer.Options{SelfLoops: importer.PolicyError}); err == nil {
		t.Error("self-loop under PolicyError did not fail")
	}
	if _, err := importer.Import(&bytes.Buffer{}, strings.NewReader("1 2\n2 1\n"),
		importer.Options{Duplicates: importer.PolicyError}); err == nil {
		t.Error("duplicate under PolicyError did not fail")
	}
}

func TestImportNormalize(t *testing.T) {
	in := "# big and negative IDs\n9000000000 -5\n-5 7\n"
	if _, err := importer.Import(&bytes.Buffer{}, strings.NewReader(in), importer.Options{}); err == nil {
		t.Fatal("negative raw ID without Normalize did not fail")
	}
	var out bytes.Buffer
	stats, err := importer.Import(&out, strings.NewReader(in), importer.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 3 || stats.Edges != 2 {
		t.Fatalf("stats = %+v, want 3 nodes, 2 edges", stats)
	}
	cs, err := trace.ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g := applyAll(t, cs)
	// First-appearance order: 9000000000→0, -5→1, 7→2.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("normalized edges wrong; graph %v", g)
	}
}

func TestImportRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts importer.Options
	}{
		{"one field", "7\n", importer.Options{}},
		{"four fields", "1 2 3 4\n", importer.Options{}},
		{"bad id", "a 2\n", importer.Options{}},
		{"bad timestamp", "1 2 x\n", importer.Options{Window: 5}},
		{"missing timestamp", "1 2\n", importer.Options{Window: 5}},
		{"decreasing timestamps", "1 2 9\n2 3 4\n", importer.Options{Window: 5}},
	}
	for _, tc := range cases {
		if _, err := importer.Import(&bytes.Buffer{}, strings.NewReader(tc.in), tc.opts); err == nil {
			t.Errorf("%s: import accepted %q", tc.name, tc.in)
		}
	}
}

// FuzzTraceImport is the importer's fuzz wall: arbitrary bytes under
// arbitrary option combinations must never panic, and every accepted
// import must (a) decode as a valid trace, (b) re-encode byte-
// identically — the canonical-output contract — and (c) apply cleanly
// to an empty graph.
func FuzzTraceImport(f *testing.F) {
	for _, name := range []string{"karate.txt", "florentine.txt", "temporal-synthetic.txt"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, int64(0), false, uint8(0), uint8(0))
		f.Add(data, int64(10), true, uint8(1), uint8(1))
	}
	f.Add([]byte("1 1\n1 2\n1 2\n-3 4\n"), int64(0), true, uint8(0), uint8(0))
	f.Add([]byte("9223372036854775807 -9223372036854775808 9223372036854775807\n"), int64(1), true, uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, window int64, normalize bool, selfLoops, dups uint8) {
		opts := importer.Options{
			Window:     window,
			Normalize:  normalize,
			SelfLoops:  importer.Policy(selfLoops % 2),
			Duplicates: importer.Policy(dups % 2),
		}
		var out bytes.Buffer
		if _, err := importer.Import(&out, bytes.NewReader(data), opts); err != nil {
			return // rejected inputs only need to not panic
		}
		cs, err := trace.ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("accepted import does not decode: %v", err)
		}
		var re bytes.Buffer
		if err := trace.WriteAll(&re, slices.Values(cs)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), re.Bytes()) {
			t.Fatal("accepted import does not round-trip byte-identically")
		}
		g := graph.New()
		for i, c := range cs {
			if err := applyOne(c, g); err != nil {
				t.Fatalf("change %d (%v) rejected: %v", i, c, err)
			}
		}
	})
}
