// Package trace records and replays change streams as versioned JSONL,
// so any run — a workload generator, a production ingest, a failing fuzz
// case — can be captured once and replayed bit-for-bit into any engine.
// A trace file is a header line naming the schema followed by one JSON
// object per change:
//
//	{"schema":"dynmis-trace/v1"}
//	{"k":"node-insert","n":1}
//	{"k":"node-insert","n":2,"e":[1]}
//	{"k":"edge-delete-graceful","u":1,"v":2}
//
// The encoding is canonical — field order is fixed and no optional
// fields are emitted when empty — so recording a replayed trace
// reproduces the input byte for byte, and traces diff cleanly under
// version control. Reader.All exposes a trace as an iterator assignable
// to dynmis.Source; Tee records a Source as it is consumed, which is how
// the cmd tools implement -record.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"

	"dynmis/internal/graph"
)

// Schema is the format identifier written on the header line. Readers
// reject files whose header names any other schema, so the format can
// evolve without silently misreading old captures.
const Schema = "dynmis-trace/v1"

// ErrSchema is returned (wrapped) for a missing or unsupported header.
var ErrSchema = errors.New("trace: unsupported schema")

// header is the first line of every trace file.
type header struct {
	Schema string `json:"schema"`
}

// record is the wire form of one change. Kind strings are the canonical
// ChangeKind names; node/edge fields mirror graph.Change.
type record struct {
	Kind string         `json:"k"`
	U    *graph.NodeID  `json:"u,omitempty"`
	V    *graph.NodeID  `json:"v,omitempty"`
	Node *graph.NodeID  `json:"n,omitempty"`
	Eds  []graph.NodeID `json:"e,omitempty"`
}

// kindNames maps the wire strings back to change kinds; the forward
// direction is ChangeKind.String.
var kindNames = func() map[string]graph.ChangeKind {
	m := make(map[string]graph.ChangeKind)
	for _, k := range []graph.ChangeKind{
		graph.EdgeInsert, graph.EdgeDeleteGraceful, graph.EdgeDeleteAbrupt,
		graph.NodeInsert, graph.NodeDeleteGraceful, graph.NodeDeleteAbrupt,
		graph.NodeMute, graph.NodeUnmute,
	} {
		m[k.String()] = k
	}
	return m
}()

// Writer encodes a change stream as JSONL. Writes are buffered; call
// Flush (or use WriteAll/Tee, which flush) before reading the output.
type Writer struct {
	dst    io.Writer
	bw     *bufio.Writer
	opened bool
	err    error
}

// NewWriter returns a Writer over w. The schema header is written before
// the first change.
func NewWriter(w io.Writer) *Writer {
	return &Writer{dst: w, bw: bufio.NewWriter(w)}
}

// NewContinuation returns a Writer that appends records to a trace whose
// header already exists on w's destination — it never emits a header of
// its own. It is how a write-ahead log reopened after a restart keeps
// appending to the same file (see dynmis/server).
func NewContinuation(w io.Writer) *Writer {
	return &Writer{dst: w, bw: bufio.NewWriter(w), opened: true}
}

// Write appends one change. The first Write emits the header line first.
// After an error every subsequent Write returns the same error.
func (w *Writer) Write(c graph.Change) error {
	if w.err != nil {
		return w.err
	}
	if !w.opened {
		w.opened = true
		if err := w.line(header{Schema: Schema}); err != nil {
			return err
		}
	}
	return w.line(encodeRecord(c))
}

// encodeRecord builds the wire form of one change.
func encodeRecord(c graph.Change) record {
	rec := record{Kind: c.Kind.String()}
	if c.Kind.IsEdge() {
		u, v := c.U, c.V
		rec.U, rec.V = &u, &v
	} else {
		n := c.Node
		rec.Node = &n
		rec.Eds = c.Edges
	}
	return rec
}

// decodeRecord converts a wire record back into a change.
func decodeRecord(rec record) (graph.Change, error) {
	kind, ok := kindNames[rec.Kind]
	if !ok {
		return graph.Change{}, fmt.Errorf("unknown change kind %q", rec.Kind)
	}
	if kind.IsEdge() {
		if rec.U == nil || rec.V == nil {
			return graph.Change{}, fmt.Errorf("%s without endpoints", rec.Kind)
		}
		return graph.EdgeChange(kind, *rec.U, *rec.V), nil
	}
	if rec.Node == nil {
		return graph.Change{}, fmt.Errorf("%s without node", rec.Kind)
	}
	return graph.NodeChange(kind, *rec.Node, rec.Eds...), nil
}

// MarshalChange encodes one change as its canonical single-line JSON
// record, without a trailing newline — the same bytes a Writer emits for
// it. It is the wire form the dynmis/server ingestion endpoints accept,
// so "a line of a trace file" and "a change on the wire" are one format.
func MarshalChange(c graph.Change) ([]byte, error) {
	return json.Marshal(encodeRecord(c))
}

// UnmarshalChange decodes one JSON change record (one trace line after
// the header).
func UnmarshalChange(data []byte) (graph.Change, error) {
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return graph.Change{}, fmt.Errorf("trace: decode change: %w", err)
	}
	c, err := decodeRecord(rec)
	if err != nil {
		return graph.Change{}, fmt.Errorf("trace: decode change: %w", err)
	}
	return c, nil
}

// line marshals v and writes it as one newline-terminated line.
func (w *Writer) line(v any) error {
	data, err := json.Marshal(v)
	if err == nil {
		_, err = w.bw.Write(append(data, '\n'))
	}
	w.err = err
	return err
}

// Flush writes buffered output through, emitting the header first if
// nothing was written yet — so an empty trace is still a valid file.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.opened {
		w.opened = true
		if err := w.line(header{Schema: Schema}); err != nil {
			return err
		}
	}
	w.err = w.bw.Flush()
	return w.err
}

// Sync flushes buffered output and, when the underlying writer supports
// it (an *os.File does), forces it to stable storage with fsync. It is
// the durability hook of the write-ahead-log use: a change whose Sync
// returned nil survives a crash of the process and the machine. On
// writers without an fsync notion Sync is exactly Flush.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if s, ok := w.dst.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Reader decodes a JSONL trace.
type Reader struct {
	sc           *bufio.Scanner
	opened       bool
	line         int
	err          error
	tolerateTorn bool
	torn         bool
}

// ReaderOption configures NewReader.
type ReaderOption func(*Reader)

// TolerateTornTail makes the Reader treat a torn final line — a last
// record left truncated by a crash mid-write, which is not valid JSON —
// as a clean end of trace instead of a sticky decode error; TornTail
// reports whether one was seen. Only the *final* line is forgiven: a
// malformed line with further lines after it is corruption, not a torn
// tail, and still fails. Write-ahead-log recovery reads with this option,
// because a WAL's last record is torn precisely when the crash interrupted
// an unacknowledged append.
func TolerateTornTail() ReaderOption {
	return func(r *Reader) { r.tolerateTorn = true }
}

// NewReader returns a Reader over r. The header is validated on the
// first Read.
func NewReader(r io.Reader, opts ...ReaderOption) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	rd := &Reader{sc: sc}
	for _, o := range opts {
		o(rd)
	}
	return rd
}

// Read returns the next change, or io.EOF at the end of the trace. The
// first call validates the schema header; any format error is sticky.
func (r *Reader) Read() (graph.Change, error) {
	if r.err != nil {
		return graph.Change{}, r.err
	}
	if !r.opened {
		r.opened = true
		data, err := r.next()
		if err != nil {
			if err == io.EOF {
				if r.tolerateTorn {
					// A WAL that crashed before its first flush is an
					// empty file: no change in it was ever acknowledged.
					r.torn = true
					return graph.Change{}, io.EOF
				}
				err = fmt.Errorf("%w: empty input, want header %q", ErrSchema, Schema)
			}
			return graph.Change{}, r.fail(err)
		}
		var h header
		if err := json.Unmarshal(data, &h); err != nil {
			return graph.Change{}, r.tornOrFail(fmt.Errorf("%w: bad header line: %v", ErrSchema, err))
		}
		if h.Schema != Schema {
			return graph.Change{}, r.fail(fmt.Errorf("%w: have %q, want %q", ErrSchema, h.Schema, Schema))
		}
	}
	data, err := r.next()
	if err != nil {
		return graph.Change{}, r.fail(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return graph.Change{}, r.tornOrFail(fmt.Errorf("trace: line %d: %v", r.line, err))
	}
	c, err := decodeRecord(rec)
	if err != nil {
		return graph.Change{}, r.fail(fmt.Errorf("trace: line %d: %v", r.line, err))
	}
	return c, nil
}

// next returns the next non-empty line, or io.EOF.
func (r *Reader) next() ([]byte, error) {
	for r.sc.Scan() {
		r.line++
		if len(r.sc.Bytes()) > 0 {
			return r.sc.Bytes(), nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// fail records a sticky error; io.EOF is terminal but not an error state.
func (r *Reader) fail(err error) error {
	if err != io.EOF {
		r.err = err
	}
	return err
}

// tornOrFail resolves a decode failure on the line just read: under
// TolerateTornTail, a failure on the final line of the input is a torn
// tail and reads as a clean io.EOF; anywhere else (or without the option)
// it is the sticky error err.
func (r *Reader) tornOrFail(err error) error {
	if r.tolerateTorn && !r.more() {
		r.torn = true
		return io.EOF
	}
	return r.fail(err)
}

// more reports whether any non-empty line remains, consuming input to
// find out — it is only called on the way to a terminal state.
func (r *Reader) more() bool {
	for r.sc.Scan() {
		r.line++
		if len(r.sc.Bytes()) > 0 {
			return true
		}
	}
	return false
}

// TornTail reports whether the reader forgave a truncated final line (or
// a truncated/absent header) under TolerateTornTail.
func (r *Reader) TornTail() bool { return r.torn }

// All exposes the remaining trace as a change iterator — assignable to
// dynmis.Source — stopping at the end of the trace or at the first
// malformed line. Check Err after consuming to distinguish the two.
func (r *Reader) All() iter.Seq[graph.Change] {
	return func(yield func(graph.Change) bool) {
		for {
			c, err := r.Read()
			if err != nil || !yield(c) {
				return
			}
		}
	}
}

// Err reports the sticky decode error, nil after a clean end of trace.
func (r *Reader) Err() error { return r.err }

// ReadAll decodes an entire trace.
func ReadAll(r io.Reader) ([]graph.Change, error) {
	tr := NewReader(r)
	var cs []graph.Change
	for {
		c, err := tr.Read()
		if err == io.EOF {
			return cs, nil
		}
		if err != nil {
			return cs, err
		}
		cs = append(cs, c)
	}
}

// WriteAll encodes an entire change stream to w and flushes.
func WriteAll(w io.Writer, src iter.Seq[graph.Change]) error {
	tw := NewWriter(w)
	for c := range src {
		if err := tw.Write(c); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Tee records src as it is consumed: every change that passes through the
// returned source is also written to w, and w is flushed when the source
// is exhausted or abandoned. A recording error stops the stream early;
// check w's next Flush for it. Tee is how -record flags capture exactly
// the changes an engine actually ingested.
func Tee(src iter.Seq[graph.Change], w *Writer) iter.Seq[graph.Change] {
	return func(yield func(graph.Change) bool) {
		defer w.Flush()
		for c := range src {
			if w.Write(c) != nil {
				return
			}
			if !yield(c) {
				return
			}
		}
	}
}
