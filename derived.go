package dynmis

import (
	"dynmis/internal/clustering"
	"dynmis/internal/coloring"
	"dynmis/internal/graph"
	"dynmis/internal/matching"
	"dynmis/internal/seqdyn"
)

// EdgeChange builds an edge change for Apply.
func EdgeChange(kind ChangeKind, u, v NodeID) Change { return graph.EdgeChange(kind, u, v) }

// NodeChange builds a node change for Apply.
func NodeChange(kind ChangeKind, node NodeID, edges ...NodeID) Change {
	return graph.NodeChange(kind, node, edges...)
}

// The derived-structure constructors take the same Option set as New,
// engine choice included: each reduction runs its internal dynamic MIS on
// whichever engine the options select (default EngineTemplate, the
// fastest). Because every engine maintains the identical structure for
// equal seeds, the derived outputs are engine-independent too; only cost
// accounting and throughput differ. EngineAsyncDirect's lack of
// mute/unmute support surfaces through the clustering maintainer (which
// forwards changes verbatim); matching and coloring translate mutes into
// deletions and so work on every engine.

// ClusteringMaintainer keeps a correlation clustering (3-approximate in
// expectation) over a dynamic graph. See internal/clustering for the full
// method set: Apply, Clusters, Cost, Check.
type ClusteringMaintainer = clustering.Maintainer

// NewClustering returns a correlation clustering maintainer over the
// empty graph.
func NewClustering(opts ...Option) (*ClusteringMaintainer, error) {
	cfg, err := resolve(EngineTemplate, opts)
	if err != nil {
		return nil, err
	}
	return clustering.NewWithEngine(cfg.build()), nil
}

// MatchingEdge is an undirected edge of the maintained matching.
type MatchingEdge = matching.Edge

// MatchingMaintainer keeps a maximal matching via the dynamic MIS on the
// line graph (§5). See internal/matching for the full method set.
type MatchingMaintainer = matching.Maintainer

// NewMatching returns a maximal matching maintainer over the empty graph.
func NewMatching(opts ...Option) (*MatchingMaintainer, error) {
	cfg, err := resolve(EngineTemplate, opts)
	if err != nil {
		return nil, err
	}
	return matching.NewWithEngine(cfg.build()), nil
}

// ColoringMaintainer keeps a proper coloring with a fixed palette via the
// clique-blowup reduction (§5); every node degree must stay below the
// palette size. See internal/coloring for the full method set.
type ColoringMaintainer = coloring.Maintainer

// NewColoring returns a coloring maintainer with the given palette size
// (≥ 2).
func NewColoring(palette int, opts ...Option) (*ColoringMaintainer, error) {
	cfg, err := resolve(EngineTemplate, opts)
	if err != nil {
		return nil, err
	}
	return coloring.NewWithEngine(cfg.build(), palette)
}

// SequentialMaintainer is the single-machine dynamic MIS data structure of
// the paper's §6 outlook: no message passing, O(Δ) expected work per
// update. It maintains the same structure as the distributed engines
// (history independent, equal to sequential greedy under its order), and
// since it implements the full core.Engine surface it is also available
// through New as WithEngine(EngineSequential).
type SequentialMaintainer = seqdyn.Engine

// SequentialReport is the sequential cost account; Report.Work carries
// the update-time measure (adjacency entries touched).
type SequentialReport = Report

// NewSequential returns a sequential dynamic MIS over the empty graph,
// typed as the concrete structure rather than a Maintainer.
func NewSequential(seed uint64) *SequentialMaintainer { return seqdyn.New(seed) }
