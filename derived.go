package dynmis

import (
	"dynmis/internal/clustering"
	"dynmis/internal/coloring"
	"dynmis/internal/graph"
	"dynmis/internal/matching"
	"dynmis/internal/seqdyn"
)

// EdgeChange builds an edge change for Apply.
func EdgeChange(kind ChangeKind, u, v NodeID) Change { return graph.EdgeChange(kind, u, v) }

// NodeChange builds a node change for Apply.
func NodeChange(kind ChangeKind, node NodeID, edges ...NodeID) Change {
	return graph.NodeChange(kind, node, edges...)
}

// ClusteringMaintainer keeps a correlation clustering (3-approximate in
// expectation) over a dynamic graph. See internal/clustering for the full
// method set: Apply, Clusters, Cost, Check.
type ClusteringMaintainer = clustering.Maintainer

// NewClustering returns a correlation clustering maintainer over the
// empty graph.
func NewClustering(seed uint64) *ClusteringMaintainer { return clustering.New(seed) }

// MatchingEdge is an undirected edge of the maintained matching.
type MatchingEdge = matching.Edge

// MatchingMaintainer keeps a maximal matching via the dynamic MIS on the
// line graph (§5). See internal/matching for the full method set.
type MatchingMaintainer = matching.Maintainer

// NewMatching returns a maximal matching maintainer over the empty graph.
func NewMatching(seed uint64) *MatchingMaintainer { return matching.New(seed) }

// ColoringMaintainer keeps a proper coloring with a fixed palette via the
// clique-blowup reduction (§5); every node degree must stay below the
// palette size. See internal/coloring for the full method set.
type ColoringMaintainer = coloring.Maintainer

// NewColoring returns a coloring maintainer with the given palette size.
func NewColoring(seed uint64, palette int) (*ColoringMaintainer, error) {
	return coloring.New(seed, palette)
}

// SequentialMaintainer is the single-machine dynamic MIS data structure of
// the paper's §6 outlook: no message passing, O(Δ) expected work per
// update. It maintains the same structure as the distributed engines
// (history independent, equal to sequential greedy under its order).
type SequentialMaintainer = seqdyn.Engine

// SequentialReport is the sequential cost account (adjustments, nodes
// processed, adjacency entries touched).
type SequentialReport = seqdyn.Report

// NewSequential returns a sequential dynamic MIS over the empty graph.
func NewSequential(seed uint64) *SequentialMaintainer { return seqdyn.New(seed) }
