# CI entry points for the dynmis reproduction. `make ci` is the gate a
# commit must pass: static checks, the full test suite under the race
# detector, and a benchmark smoke run that re-verifies every scenario's
# final structure against the MIS invariant.

GO ?= go

.PHONY: ci fmt vet build test race race-matrix bench bench-big bench-big-smoke bench-alloc bench-smoke bench-delta bench-scaling validate validate-smoke validate-adaptive-smoke serve-smoke fuzz fuzz-smoke clean

ci: fmt vet build race bench-smoke bench-alloc validate-smoke validate-adaptive-smoke serve-smoke
	@$(MAKE) bench-scaling || echo "bench-scaling failed (non-blocking: shared or single-core runners cannot guarantee a parallel speedup)"
	@$(MAKE) bench-big-smoke || echo "bench-big-smoke failed (non-blocking: timing- and RAM-sensitive on shared runners; run locally to investigate)"

# gofmt enforcement: fail with the offending file list if any file is not
# gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race matrix: the race detector catches a data race only when the
# schedule actually interleaves the racing accesses, and the sharded
# cascade's work-stealing paths interleave very differently at different
# scheduler widths. Run the suite (shard package first — it is the one
# with real lock-free concurrency) at a narrow and a wide GOMAXPROCS.
# -count=1 is load-bearing: the test cache does not key on GOMAXPROCS,
# so without it the second width would be served from the first's cache.
race-matrix:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/shard/... ./...
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/shard/... ./...

# Smoke-size benchmark: fast, but still exercises all scenarios and both
# engines through the streaming ingestion path, plus a trace
# record/replay round trip, so the harness can't silently rot. Writes
# only under /tmp; the checked-in BENCH_dynmis.json is untouched.
bench-smoke:
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_dynmis_smoke.json
	$(GO) run ./cmd/bench -n 200 -steps 1000 -shards 2 -scenarios churn -serve-steps 0 \
		-record /tmp/dynmis_smoke_trace.jsonl -out /tmp/BENCH_dynmis_smoke_record.json
	$(GO) run ./cmd/bench -shards 2 -replay /tmp/dynmis_smoke_trace.jsonl \
		-out /tmp/BENCH_dynmis_smoke_replay.json

# Perf trajectory report: a short run of every scenario printed as
# per-scenario updates/sec ratios against the committed BENCH_dynmis.json.
# Informational, never a gate — CI runs it as a non-blocking step, and 2000
# steps is sized for signal (~regressions of 2x+), not for noise-free
# precision. Writes only under /tmp.
bench-delta:
	$(GO) run ./cmd/bench -steps 2000 -serve-steps 0 \
		-out /tmp/BENCH_dynmis_delta.json -baseline BENCH_dynmis.json

# Scaling smoke: a tiny churn run at GOMAXPROCS 1 and 4 that asserts the
# sharded engine is at least as fast as the sequential template when
# given cores (-min-speedup 1.0 gates on the headline speedup). `make ci`
# runs it non-blocking: a shared or single-core runner cannot guarantee
# a parallel speedup, but the JSON lands in /tmp (CI uploads it as an
# artifact) so the trajectory is always inspectable.
bench-scaling:
	$(GO) run ./cmd/bench -n 2000 -steps 10000 -scenarios churn \
		-shards 1,4 -gomaxprocs 1,4 -min-speedup 1.0 -serve-steps 0 \
		-out /tmp/BENCH_dynmis_scaling.json

# Daemon gate: boot dynmisd on an ephemeral port, drive a workload burst
# over the wire with dynmisload (concurrent gap-checked subscribers +
# /v1/state verified against a local replay), kill -9 the daemon,
# restart it on the same WAL, and verify the recovered state matches a
# reference replay of the WAL. Sized for CI; the acceptance-scale run is
# SERVE_SMOKE_STEPS=50000 SERVE_SMOKE_SUBS=64 make serve-smoke.
serve-smoke:
	sh scripts/serve_smoke.sh

# Full benchmark: regenerates the checked-in BENCH_dynmis.json,
# including the big-graph tier (so a plain regeneration never drops the
# committed "big" section). Takes several minutes: the big tier streams
# 10^5- and 10^6-node scenarios through four engines.
bench:
	$(GO) run ./cmd/bench -big -out BENCH_dynmis.json

# Big-graph tier alone at full scale (n = 10^5 and 10^6), regenerating
# the committed file's big section alongside the regular tier.
bench-big:
	$(GO) run ./cmd/bench -big -out BENCH_dynmis.json

# CI-sized big tier: n = 10^5 only, fewer steps, bounded to minutes on a
# single core. Writes only under /tmp; `make ci` runs it non-blocking.
bench-big-smoke:
	$(GO) run ./cmd/bench -big -big-n 100000 -big-steps 20000 -quick -serve-steps 0 \
		-out /tmp/BENCH_dynmis_big_smoke.json

# Allocation-regression gate: the steady-state churn benchmark must
# report zero allocations per update once the arena and spill pool have
# warmed up — the property that keeps long-running daemons flat. The
# grep fails the target if the benchmark reports a nonzero allocs/op.
bench-alloc:
	$(GO) test -run '^$$' -bench BenchmarkSteadyStateEdgeChurn -benchmem ./internal/graph | tee /tmp/bench_alloc.txt
	@grep -E 'BenchmarkSteadyStateEdgeChurn.*\s0 B/op\s+0 allocs/op' /tmp/bench_alloc.txt >/dev/null \
		|| { echo "bench-alloc: steady-state churn allocates (want 0 B/op, 0 allocs/op)"; exit 1; }

# Paper-claims validation: regenerates docs/VALIDATION.md by driving
# the workload scenarios through all eight engines with complexity
# instrumentation and tabulating measured amortized adjustments,
# rounds, broadcasts and messages per update against the paper's
# bounds. Deterministic: unchanged flags reproduce the committed file
# byte for byte. Takes a few minutes.
validate:
	$(GO) run ./cmd/validate

# CI-sized validation: a tiny instrumented run across all eight engines
# (exercising the whole metrics path end to end), then the
# docs-freshness check — fails if docs/VALIDATION.md's schema header
# drifts from the generator's schema version. Writes only under /tmp.
validate-smoke:
	$(GO) run ./cmd/validate -quick -out /tmp/VALIDATION_smoke.md
	$(GO) run ./cmd/validate -check

# Adaptive-adversary gate: the full engine × policy matrix (all four
# AdaptiveSource policies, engine-in-the-loop via DriveInteractive,
# all eight engines) at tiny sizes, every run verified against the
# greedy oracle. Writes nothing.
validate-adaptive-smoke:
	$(GO) run ./cmd/validate -adaptive-smoke

# Fuzz walls. The sharded-equivalence target checks the π-equivalent
# tier (byte-equal state and feed vs. the template); the competitor
# target checks the tier-2 contract of the independent engines
# (gupta-khan, aoss, sequential): per-window invariants, feed replay,
# and slot recycling; the importer target checks that arbitrary edge
# lists never panic the SNAP importer and that every accepted import
# round-trips byte-identically. FUZZTIME scales all; fuzz-smoke is the
# CI size.
FUZZTIME ?= 60s

fuzz:
	$(GO) test -fuzz=FuzzShardedEquivalence -fuzztime=$(FUZZTIME) -run '^$$' ./internal/shard
	$(GO) test -fuzz=FuzzCompetitorInvariant -fuzztime=$(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz=FuzzTraceImport -fuzztime=$(FUZZTIME) -run '^$$' ./trace/importer

fuzz-smoke:
	@$(MAKE) fuzz FUZZTIME=30s

clean:
	$(GO) clean ./...
