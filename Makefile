# CI entry points for the dynmis reproduction. `make ci` is the gate a
# commit must pass: static checks, the full test suite under the race
# detector, and a benchmark smoke run that re-verifies every scenario's
# final structure against the MIS invariant.

GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke bench-delta validate validate-smoke clean

ci: fmt vet build race bench-smoke validate-smoke

# gofmt enforcement: fail with the offending file list if any file is not
# gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-size benchmark: fast, but still exercises all scenarios and both
# engines through the streaming ingestion path, plus a trace
# record/replay round trip, so the harness can't silently rot. Writes
# only under /tmp; the checked-in BENCH_dynmis.json is untouched.
bench-smoke:
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_dynmis_smoke.json
	$(GO) run ./cmd/bench -n 200 -steps 1000 -shards 2 -scenarios churn \
		-record /tmp/dynmis_smoke_trace.jsonl -out /tmp/BENCH_dynmis_smoke_record.json
	$(GO) run ./cmd/bench -shards 2 -replay /tmp/dynmis_smoke_trace.jsonl \
		-out /tmp/BENCH_dynmis_smoke_replay.json

# Perf trajectory report: a short run of every scenario printed as
# per-scenario updates/sec ratios against the committed BENCH_dynmis.json.
# Informational, never a gate — CI runs it as a non-blocking step, and 2000
# steps is sized for signal (~regressions of 2x+), not for noise-free
# precision. Writes only under /tmp.
bench-delta:
	$(GO) run ./cmd/bench -steps 2000 -out /tmp/BENCH_dynmis_delta.json \
		-baseline BENCH_dynmis.json

# Full benchmark: regenerates the checked-in BENCH_dynmis.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_dynmis.json

# Paper-claims validation: regenerates docs/VALIDATION.md by driving
# the workload scenarios through all five engines with complexity
# instrumentation and tabulating measured amortized adjustments,
# rounds, broadcasts and messages per update against the paper's
# bounds. Deterministic: unchanged flags reproduce the committed file
# byte for byte. Takes a few minutes.
validate:
	$(GO) run ./cmd/validate

# CI-sized validation: a tiny instrumented run across all five engines
# (exercising the whole metrics path end to end), then the
# docs-freshness check — fails if docs/VALIDATION.md's schema header
# drifts from the generator's schema version. Writes only under /tmp.
validate-smoke:
	$(GO) run ./cmd/validate -quick -out /tmp/VALIDATION_smoke.md
	$(GO) run ./cmd/validate -check

clean:
	$(GO) clean ./...
