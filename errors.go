package dynmis

import (
	"errors"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// Typed sentinel errors. Every error a Maintainer (or a derived
// maintainer) returns wraps one of these values, so callers can branch
// with errors.Is instead of string matching, regardless of which engine
// produced it. The topology sentinels are shared with internal/graph —
// each engine validates changes through the same path — and the
// capability sentinels mark operations an engine does not support.
var (
	// ErrInvalidChange wraps every change-validation failure; the
	// sentinels below narrow the reason.
	ErrInvalidChange = graph.ErrInvalidChange
	// ErrUnknownNode: the change references a node that is not visible.
	ErrUnknownNode = graph.ErrNoNode
	// ErrDuplicateNode: the inserted (or unmuted) node already exists.
	ErrDuplicateNode = graph.ErrNodeExists
	// ErrDuplicateEdge: the inserted edge already exists.
	ErrDuplicateEdge = graph.ErrEdgeExists
	// ErrUnknownEdge: the deleted edge does not exist.
	ErrUnknownEdge = graph.ErrNoEdge
	// ErrSelfLoop: the change would create a self loop.
	ErrSelfLoop = graph.ErrSelfLoop
	// ErrMutedUnsupported: the engine does not model mute/unmute
	// (currently EngineAsyncDirect).
	ErrMutedUnsupported = core.ErrMuteUnsupported
	// ErrSnapshotUnsupported: the engine does not implement the
	// Snapshotter capability (returned by Maintainer.Snapshot and
	// Restore for the message-passing engines).
	ErrSnapshotUnsupported = errors.New("dynmis: engine does not support snapshots")
	// ErrInvalidOption: an Option carried a value no engine can honor
	// (negative shard count or window, WithShards/WithWindow off
	// EngineSharded, WithParallel off EngineProtocol, an unknown engine).
	ErrInvalidOption = errors.New("dynmis: invalid option")
)
