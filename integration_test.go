package dynmis

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/workload"
)

// TestCrossEngineSoak is the repository's end-to-end differential test:
// the same long random change sequence is driven through every engine
// (the four of the paper plus the sharded concurrent one) and the
// sequential data structure, all seeded identically. After every change
// the structures must agree exactly (they are realizations of one
// algorithm), and all must match the greedy oracle at the end.
func TestCrossEngineSoak(t *testing.T) {
	const seed = 2025
	engines := map[string]*Maintainer{
		"template": mustNew(t, WithSeed(seed), WithEngine(EngineTemplate)),
		"direct":   mustNew(t, WithSeed(seed), WithEngine(EngineDirect)),
		"protocol": mustNew(t, WithSeed(seed), WithEngine(EngineProtocol)),
		"async":    mustNew(t, WithSeed(seed), WithEngine(EngineAsyncDirect)),
		"sharded":  mustNew(t, WithSeed(seed), WithEngine(EngineSharded), WithShards(4)),
	}
	seq := NewSequential(seed)

	steps := 400
	if testing.Short() {
		steps = 100
	}
	rng := rand.New(rand.NewPCG(3, 4))
	scratch := graph.New()
	next := NodeID(0)

	for step := 0; step < steps; step++ {
		// Generate one valid change against the scratch topology
		// (identical for every engine).
		cs := workload.RandomChurn(rng, scratch, workload.DefaultChurn(1))
		if len(cs) == 0 {
			continue
		}
		c := cs[0]
		if err := c.Apply(scratch); err != nil {
			t.Fatalf("step %d: scratch apply: %v", step, err)
		}
		if c.Kind == NodeInsert && c.Node >= next {
			next = c.Node + 1
		}

		var ref map[NodeID]Membership
		for name, m := range engines {
			if _, err := m.Apply(c); err != nil {
				t.Fatalf("step %d: %s: Apply(%s): %v", step, name, c, err)
			}
			if ref == nil {
				ref = m.State()
				continue
			}
			if !core.EqualStates(ref, m.State()) {
				t.Fatalf("step %d: %s diverged after %s", step, name, c)
			}
		}
		if _, err := seq.Apply(c); err != nil {
			t.Fatalf("step %d: seqdyn: %v", step, err)
		}
		if !core.EqualStates(ref, seq.State()) {
			t.Fatalf("step %d: seqdyn diverged after %s", step, c)
		}
	}

	for name, m := range engines {
		if err := m.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := seq.Check(); err != nil {
		t.Errorf("seqdyn: %v", err)
	}
}

// TestFacadeApplyBatch exercises the batched path through the facade on
// the combined-recovery engines (template, sharded, async-direct) and the
// sequential fallback (protocol).
func TestFacadeApplyBatch(t *testing.T) {
	batch := []Change{
		NodeChange(NodeInsert, 1),
		NodeChange(NodeInsert, 2, 1),
		NodeChange(NodeInsert, 3, 1, 2),
		EdgeChange(EdgeDeleteGraceful, 1, 2),
	}
	tm := mustNew(t, WithSeed(5), WithEngine(EngineTemplate))
	if _, err := tm.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := tm.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineProtocol, EngineSharded, EngineAsyncDirect} {
		m := mustNew(t, WithSeed(5), WithEngine(eng))
		if _, err := m.ApplyBatch(batch); err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if len(tm.MIS()) != len(m.MIS()) {
			t.Errorf("batched template MIS %v != %v MIS %v", tm.MIS(), eng, m.MIS())
		}
	}
}

// TestSequentialFacade smoke-tests the sequential structure through its
// public alias.
func TestSequentialFacade(t *testing.T) {
	s := NewSequential(9)
	rng := rand.New(rand.NewPCG(9, 9))
	if _, err := s.ApplyAll(workload.GNP(rng, 50, 0.1)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply(EdgeChange(EdgeDeleteGraceful, s.Graph().Edges()[0][0], s.Graph().Edges()[0][1]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work == 0 {
		t.Error("update reported no work")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotThroughFacade persists a maintainer and restores it.
func TestSnapshotThroughFacade(t *testing.T) {
	m := mustNew(t, WithSeed(31), WithEngine(EngineTemplate))
	if _, err := m.InsertNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertNode(2, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := core.UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(decoded, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Verify(); err != nil {
		t.Fatal(err)
	}
	a, b := m.MIS(), restored.MIS()
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("restored MIS %v != original %v", b, a)
	}
	// Engines without the Snapshotter capability refuse to snapshot.
	if _, err := mustNew(t, WithEngine(EngineProtocol)).Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("protocol snapshot err = %v, want ErrSnapshotUnsupported", err)
	}
}
