module dynmis

go 1.23
