module dynmis

go 1.22
