// Clustering: dynamic community detection on an evolving social graph via
// correlation clustering. The maintained clustering is a 3-approximation
// in expectation (random-greedy pivots, Ailon-Charikar-Newman), and it is
// history independent: the communities found depend only on the current
// friendship graph, not on the order in which friendships formed.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	groups    = 5
	groupSize = 12
	pIntra    = 0.7 // friendship probability within a community
	pInter    = 0.03
)

func main() {
	cm, err := dynmis.NewClustering(dynmis.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 3))

	// A planted-partition "social network": dense groups, sparse links
	// between them, built incrementally as people join.
	id := func(g, i int) dynmis.NodeID { return dynmis.NodeID(g*groupSize + i) }
	for g := 0; g < groups; g++ {
		for i := 0; i < groupSize; i++ {
			var friends []dynmis.NodeID
			for pg := 0; pg < groups; pg++ {
				for pi := 0; pi < groupSize; pi++ {
					if pg == g && pi >= i {
						break
					}
					if pg > g {
						break
					}
					p := pInter
					if pg == g {
						p = pIntra
					}
					if rng.Float64() < p {
						friends = append(friends, id(pg, pi))
					}
				}
			}
			if _, err := cm.Apply(dynmis.NodeChange(dynmis.NodeInsert, id(g, i), friends...)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("network: %d people, %d friendships\n", cm.Graph().NodeCount(), cm.Graph().EdgeCount())
	fmt.Printf("clusters found: %d, disagreement cost: %d\n", countClusters(cm.Clusters()), cm.Cost())

	// The community structure survives churn with tiny per-event updates.
	var totalClusterMoves int
	events := 300
	for e := 0; e < events; e++ {
		g := cm.Graph()
		nodes := g.Nodes()
		u := nodes[rng.IntN(len(nodes))]
		v := nodes[rng.IntN(len(nodes))]
		if u == v {
			continue
		}
		kind := dynmis.EdgeInsert
		if g.HasEdge(u, v) {
			kind = dynmis.EdgeDeleteGraceful
		}
		r, err := cm.Apply(dynmis.EdgeChange(kind, u, v))
		if err != nil {
			log.Fatal(err)
		}
		totalClusterMoves += r.ClusterAdjustments
	}
	fmt.Printf("after %d friendship changes: %d clusters, cost %d, %.2f cluster moves/event\n",
		events, countClusters(cm.Clusters()), cm.Cost(), float64(totalClusterMoves)/float64(events))

	if err := cm.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clustering invariants verified")
}

func countClusters(assign map[dynmis.NodeID]dynmis.NodeID) int {
	heads := map[dynmis.NodeID]bool{}
	for _, h := range assign {
		heads[h] = true
	}
	return len(heads)
}
