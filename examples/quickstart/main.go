// Quickstart: maintain an MIS over a small evolving graph and watch the
// per-change cost reports. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynmis"
)

func main() {
	// A maintainer backed by Algorithm 2 (the O(1)-broadcast protocol).
	m := dynmis.MustNew(dynmis.WithSeed(42), dynmis.WithEngine(dynmis.EngineProtocol))

	// Build a small network: a triangle with a pendant node.
	steps := []struct {
		desc  string
		apply func() (dynmis.Report, error)
	}{
		{"insert node 1", func() (dynmis.Report, error) { return m.InsertNode(1) }},
		{"insert node 2 (edge to 1)", func() (dynmis.Report, error) { return m.InsertNode(2, 1) }},
		{"insert node 3 (edges to 1,2)", func() (dynmis.Report, error) { return m.InsertNode(3, 1, 2) }},
		{"insert node 4 (edge to 3)", func() (dynmis.Report, error) { return m.InsertNode(4, 3) }},
		{"delete edge {1,2}", func() (dynmis.Report, error) { return m.RemoveEdge(1, 2) }},
		{"abruptly delete node 1", func() (dynmis.Report, error) { return m.RemoveNodeAbrupt(1) }},
		{"insert edge {2,4}", func() (dynmis.Report, error) { return m.InsertEdge(2, 4) }},
	}

	for _, s := range steps {
		rep, err := s.apply()
		if err != nil {
			log.Fatalf("%s: %v", s.desc, err)
		}
		fmt.Printf("%-30s MIS=%v  adjustments=%d rounds=%d broadcasts=%d\n",
			s.desc, m.MIS(), rep.Adjustments, rep.Rounds, rep.Broadcasts)
	}

	// History independence: the structure only depends on the final
	// graph (and the seed), never on the path that built it.
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: output matches the sequential greedy MIS on the current graph")

	// The derived correlation clustering comes for free.
	fmt.Println("clusters:", m.Clusters())
}
