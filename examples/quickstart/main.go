// Quickstart: maintain an MIS over a small evolving graph by streaming
// the changes through Maintainer.Drive and watching the per-change cost
// reports. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dynmis"
)

func main() {
	// A maintainer backed by Algorithm 2 (the O(1)-broadcast protocol).
	m := dynmis.MustNew(dynmis.WithSeed(42), dynmis.WithEngine(dynmis.EngineProtocol))

	// The whole evolution is one change stream: a triangle with a pendant
	// node, then some churn. Any iterator of changes is a Source — a
	// slice, a generator from dynmis/workload, or a recorded dynmis/trace.
	stream := dynmis.SourceOf(
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 3, 1, 2),
		dynmis.NodeChange(dynmis.NodeInsert, 4, 3),
		dynmis.EdgeChange(dynmis.EdgeDeleteGraceful, 1, 2),
		dynmis.NodeChange(dynmis.NodeDeleteAbrupt, 1),
		dynmis.EdgeChange(dynmis.EdgeInsert, 2, 4),
	)

	// Drive ingests the stream; the observer sees every applied change
	// with its cost report, after the recovery has settled.
	sum, err := m.Drive(context.Background(), stream,
		dynmis.DriveObserver(func(applied []dynmis.Change, rep dynmis.Report) {
			fmt.Printf("%-28s MIS=%v  adjustments=%d rounds=%d broadcasts=%d\n",
				applied[0].String(), m.MIS(), rep.Adjustments, rep.Rounds, rep.Broadcasts)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream summary: %v\n", sum)

	// History independence: the structure only depends on the final
	// graph (and the seed), never on the path that built it.
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: output matches the sequential greedy MIS on the current graph")

	// The derived correlation clustering comes for free.
	fmt.Println("clusters:", m.Clusters())
}
