// Scheduling: TDMA slot assignment in a wireless mesh via dynamic
// (Δ+1)-coloring. Interfering radios (edges) must transmit in different
// time slots (colors). The coloring maintainer keeps a proper assignment
// as links appear and vanish and radios join and leave; because it is
// built on the history-independent dynamic MIS (the clique blow-up of §5),
// the slot structure depends only on the current interference graph.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	radios = 60
	slots  = 10 // palette size; interference degree must stay below it
	maxDeg = slots - 2
	events = 500
)

func main() {
	col, err := dynmis.NewColoring(slots, dynmis.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(6, 6))

	// Deploy radios with a bounded-degree random interference graph.
	var ids []dynmis.NodeID
	for r := 0; r < radios; r++ {
		id := dynmis.NodeID(r)
		var interferers []dynmis.NodeID
		for _, u := range ids {
			if len(interferers) >= maxDeg-1 {
				break
			}
			if col.Graph().Degree(u) < maxDeg-1 && rng.Float64() < 0.06 {
				interferers = append(interferers, u)
			}
		}
		if _, err := col.Apply(dynmis.NodeChange(dynmis.NodeInsert, id, interferers...)); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("mesh: %d radios, %d interference links, %d/%d slots in use\n",
		col.Graph().NodeCount(), col.Graph().EdgeCount(), col.ColorsUsed(), slots)

	// Churn the interference graph (radios move): links appear/vanish.
	var totalAdjust int
	applied := 0
	for e := 0; e < events; e++ {
		g := col.Graph()
		u := ids[rng.IntN(len(ids))]
		v := ids[rng.IntN(len(ids))]
		if u == v {
			continue
		}
		var rep dynmis.Report
		if g.HasEdge(u, v) {
			rep, err = col.Apply(dynmis.EdgeChange(dynmis.EdgeDeleteGraceful, u, v))
		} else {
			if g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
				continue
			}
			rep, err = col.Apply(dynmis.EdgeChange(dynmis.EdgeInsert, u, v))
		}
		if err != nil {
			log.Fatal(err)
		}
		totalAdjust += rep.Adjustments
		applied++
	}

	fmt.Printf("after %d link events: %d/%d slots in use, %.2f slot reassignments per event\n",
		applied, col.ColorsUsed(), slots, float64(totalAdjust)/float64(applied))

	if err := col.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified: no interfering pair shares a slot")
}
