// Matching: dynamic task assignment as a maximal matching. Workers and
// tasks arrive and depart; compatibility edges appear and vanish. The
// maintained maximal matching (dynamic MIS on the line graph, §5 of the
// paper) guarantees no compatible worker-task pair is left idle while both
// are free, and history independence means the assignment never depends on
// arrival order — only on the current compatibility graph.
//
// Run with:
//
//	go run ./examples/matching
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	workers = 40
	tasks   = 40
	pCompat = 0.08
	events  = 400
)

// Workers get IDs 0..workers-1; tasks get 1000+0..tasks-1.
func taskID(t int) dynmis.NodeID { return dynmis.NodeID(1000 + t) }

func main() {
	mm, err := dynmis.NewMatching(dynmis.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 5))

	for w := 0; w < workers; w++ {
		if _, err := mm.Apply(dynmis.NodeChange(dynmis.NodeInsert, dynmis.NodeID(w))); err != nil {
			log.Fatal(err)
		}
	}
	for t := 0; t < tasks; t++ {
		var compat []dynmis.NodeID
		for w := 0; w < workers; w++ {
			if rng.Float64() < pCompat {
				compat = append(compat, dynmis.NodeID(w))
			}
		}
		if _, err := mm.Apply(dynmis.NodeChange(dynmis.NodeInsert, taskID(t), compat...)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("marketplace: %d workers, %d tasks, %d compatible pairs\n",
		workers, tasks, mm.Graph().EdgeCount())
	fmt.Printf("initial assignment: %d pairs matched\n", len(mm.Matching()))

	// Churn: compatibilities change; tasks complete (leave) and new ones
	// arrive.
	nextTask := tasks
	reassigned := 0
	for e := 0; e < events; e++ {
		switch rng.IntN(3) {
		case 0: // compatibility appears or disappears
			w := dynmis.NodeID(rng.IntN(workers))
			t := taskID(rng.IntN(nextTask))
			if !mm.Graph().HasNode(t) {
				continue
			}
			kind := dynmis.EdgeInsert
			if mm.Graph().HasEdge(w, t) {
				kind = dynmis.EdgeDeleteAbrupt
			}
			before := len(mm.Matching())
			if _, err := mm.Apply(dynmis.EdgeChange(kind, w, t)); err != nil {
				log.Fatal(err)
			}
			if len(mm.Matching()) != before {
				reassigned++
			}
		case 1: // task completes
			t := taskID(rng.IntN(nextTask))
			if !mm.Graph().HasNode(t) {
				continue
			}
			if _, err := mm.Apply(dynmis.NodeChange(dynmis.NodeDeleteGraceful, t)); err != nil {
				log.Fatal(err)
			}
		default: // new task arrives
			var compat []dynmis.NodeID
			for w := 0; w < workers; w++ {
				if rng.Float64() < pCompat {
					compat = append(compat, dynmis.NodeID(w))
				}
			}
			if _, err := mm.Apply(dynmis.NodeChange(dynmis.NodeInsert, taskID(nextTask), compat...)); err != nil {
				log.Fatal(err)
			}
			nextTask++
		}
	}

	fmt.Printf("after %d market events: %d pairs matched, %d events changed the matching size\n",
		events, len(mm.Matching()), reassigned)
	if err := mm.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matching invariants verified (maximal, conflict-free)")
}
