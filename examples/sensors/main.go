// Sensors: a duty-cycled sensor field. Sensors form a unit-disk-style
// mesh; the MIS elects aggregation heads. To save battery, sensors
// periodically mute — they stop transmitting but keep listening, exactly
// the paper's mute/unmute change type — and later rejoin for O(1)
// broadcasts because their knowledge stayed warm. A muted sensor leaves
// the visible structure, so coverage (every awake sensor adjacent to a
// head) is maintained among the awake ones at one expected adjustment per
// duty-cycle event.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	side       = 8   // sensors on a side×side grid
	dutyEvents = 600 // mute/unmute events
)

func main() {
	m := dynmis.MustNew(dynmis.WithSeed(21), dynmis.WithEngine(dynmis.EngineProtocol))
	rng := rand.New(rand.NewPCG(8, 9))

	// Deploy the field: a grid mesh (each sensor hears its 4 neighbors).
	id := func(x, y int) dynmis.NodeID { return dynmis.NodeID(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			var nbrs []dynmis.NodeID
			if x > 0 {
				nbrs = append(nbrs, id(x-1, y))
			}
			if y > 0 {
				nbrs = append(nbrs, id(x, y-1))
			}
			if _, err := m.InsertNode(id(x, y), nbrs...); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("deployed %d sensors, %d aggregation heads\n", m.NodeCount(), len(m.MIS()))

	// Remember each sensor's mesh neighborhood for rejoining.
	neighborhood := map[dynmis.NodeID][]dynmis.NodeID{}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			var nbrs []dynmis.NodeID
			if x > 0 {
				nbrs = append(nbrs, id(x-1, y))
			}
			if x < side-1 {
				nbrs = append(nbrs, id(x+1, y))
			}
			if y > 0 {
				nbrs = append(nbrs, id(x, y-1))
			}
			if y < side-1 {
				nbrs = append(nbrs, id(x, y+1))
			}
			neighborhood[id(x, y)] = nbrs
		}
	}

	sleeping := map[dynmis.NodeID]bool{}
	var totalBcasts, totalAdjust, unmutes int
	for e := 0; e < dutyEvents; e++ {
		if len(sleeping) < side*side/3 && rng.IntN(2) == 0 {
			// A random awake sensor goes to sleep.
			awake := m.Nodes()
			victim := awake[rng.IntN(len(awake))]
			rep, err := m.Mute(victim)
			if err != nil {
				log.Fatal(err)
			}
			sleeping[victim] = true
			totalBcasts += rep.Broadcasts
			totalAdjust += rep.Adjustments
			continue
		}
		if len(sleeping) == 0 {
			continue
		}
		// A random sleeping sensor wakes up, reattaching to its awake
		// mesh neighbors.
		var victim dynmis.NodeID
		for s := range sleeping {
			victim = s
			break
		}
		delete(sleeping, victim)
		var nbrs []dynmis.NodeID
		for _, u := range neighborhood[victim] {
			if !sleeping[u] {
				nbrs = append(nbrs, u)
			}
		}
		rep, err := m.Unmute(victim, nbrs...)
		if err != nil {
			log.Fatal(err)
		}
		unmutes++
		totalBcasts += rep.Broadcasts
		totalAdjust += rep.Adjustments
	}

	fmt.Printf("duty cycle: %d events (%d wake-ups), %d sensors asleep now\n",
		dutyEvents, unmutes, len(sleeping))
	fmt.Printf("per event: %.2f broadcasts, %.2f head changes (paper: O(1) expected)\n",
		float64(totalBcasts)/float64(dutyEvents), float64(totalAdjust)/float64(dutyEvents))
	fmt.Printf("awake sensors: %d, heads: %d\n", m.NodeCount(), len(m.MIS()))

	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coverage invariants verified among awake sensors")
}
