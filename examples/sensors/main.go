// Sensors: a duty-cycled sensor field. Sensors form a grid mesh; the MIS
// elects aggregation heads. To save battery, sensors periodically mute —
// they stop transmitting but keep listening, exactly the paper's
// mute/unmute change type — and later rejoin for O(1) broadcasts because
// their knowledge stayed warm. A muted sensor leaves the visible
// structure, so coverage (every awake sensor adjacent to a head) is
// maintained among the awake ones at one expected adjustment per
// duty-cycle event.
//
// The whole duty cycle is one Source: an oblivious generator that tracks
// the sleeping set itself and yields mute/unmute changes, streamed
// through Maintainer.Drive. The Summary's per-kind counts and broadcast
// totals replace hand-rolled accounting.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	side       = 8   // sensors on a side×side grid
	dutyEvents = 600 // mute/unmute events
)

func main() {
	m := dynmis.MustNew(dynmis.WithSeed(21), dynmis.WithEngine(dynmis.EngineProtocol))
	rng := rand.New(rand.NewPCG(8, 9))

	id := func(x, y int) dynmis.NodeID { return dynmis.NodeID(y*side + x) }

	// Deploy the field: a grid mesh (each sensor hears its 4 neighbors),
	// as one insertion stream.
	deploy := func(yield func(dynmis.Change) bool) {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				var nbrs []dynmis.NodeID
				if x > 0 {
					nbrs = append(nbrs, id(x-1, y))
				}
				if y > 0 {
					nbrs = append(nbrs, id(x, y-1))
				}
				if !yield(dynmis.NodeChange(dynmis.NodeInsert, id(x, y), nbrs...)) {
					return
				}
			}
		}
	}
	if _, err := m.Drive(context.Background(), deploy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d sensors, %d aggregation heads\n", m.NodeCount(), len(m.MIS()))

	// Each sensor's full mesh neighborhood, for reattaching on wake-up.
	neighborhood := map[dynmis.NodeID][]dynmis.NodeID{}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			var nbrs []dynmis.NodeID
			if x > 0 {
				nbrs = append(nbrs, id(x-1, y))
			}
			if x < side-1 {
				nbrs = append(nbrs, id(x+1, y))
			}
			if y > 0 {
				nbrs = append(nbrs, id(x, y-1))
			}
			if y < side-1 {
				nbrs = append(nbrs, id(x, y+1))
			}
			neighborhood[id(x, y)] = nbrs
		}
	}

	// The duty cycle as a Source: the generator owns the awake/sleeping
	// bookkeeping, so the stream is oblivious and replayable.
	awake := make([]dynmis.NodeID, 0, side*side)
	for v := range side * side {
		awake = append(awake, dynmis.NodeID(v))
	}
	var sleeping []dynmis.NodeID
	isAsleep := make(map[dynmis.NodeID]bool)

	dutyCycle := func(yield func(dynmis.Change) bool) {
		for e := 0; e < dutyEvents; e++ {
			if len(sleeping) < side*side/3 && rng.IntN(2) == 0 {
				// A random awake sensor goes to sleep.
				i := rng.IntN(len(awake))
				victim := awake[i]
				awake = append(awake[:i], awake[i+1:]...)
				sleeping = append(sleeping, victim)
				isAsleep[victim] = true
				if !yield(dynmis.NodeChange(dynmis.NodeMute, victim)) {
					return
				}
				continue
			}
			if len(sleeping) == 0 {
				continue
			}
			// The longest-sleeping sensor wakes up, reattaching to its
			// awake mesh neighbors.
			victim := sleeping[0]
			sleeping = sleeping[1:]
			delete(isAsleep, victim)
			awake = append(awake, victim)
			var nbrs []dynmis.NodeID
			for _, u := range neighborhood[victim] {
				if !isAsleep[u] {
					nbrs = append(nbrs, u)
				}
			}
			if !yield(dynmis.NodeChange(dynmis.NodeUnmute, victim, nbrs...)) {
				return
			}
		}
	}

	sum, err := m.Drive(context.Background(), dutyCycle)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("duty cycle: %d events (%d wake-ups), %d sensors asleep now\n",
		sum.Changes, sum.ByKind[dynmis.NodeUnmute], len(sleeping))
	fmt.Printf("per event: %.2f broadcasts, %.2f head changes (paper: O(1) expected)\n",
		sum.MeanBroadcasts(), sum.MeanAdjustments())
	fmt.Printf("awake sensors: %d, heads: %d\n", m.NodeCount(), len(m.MIS()))

	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coverage invariants verified among awake sensors")
}
