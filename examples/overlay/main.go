// Overlay: a peer-to-peer overlay network under heavy churn elects
// cluster heads with the dynamic MIS. MIS nodes act as super-peers; every
// ordinary peer is adjacent to a super-peer (maximality), and no two
// super-peers are adjacent (independence), so the head set is sparse and
// covering. The paper's guarantee means each join/leave re-elects, in
// expectation, at most one head — the overlay stays almost perfectly
// stable under churn.
//
// The churn is expressed as a Source — an oblivious generator that owns
// its own view of the membership — and streamed through Maintainer.Drive;
// the returned Summary carries the per-kind event counts and the total
// head re-elections.
//
// Run with:
//
//	go run ./examples/overlay
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	peers      = 150
	churnSteps = 1000
	degree     = 4
)

func main() {
	m := dynmis.MustNew(dynmis.WithSeed(7), dynmis.WithEngine(dynmis.EngineProtocol))
	rng := rand.New(rand.NewPCG(1, 7))

	// Bootstrap: peers join one by one, each connecting to a few random
	// existing peers (a typical unstructured overlay). The generator
	// tracks the alive set itself — sources are oblivious to the engine.
	var alive []dynmis.NodeID
	next := dynmis.NodeID(0)
	join := func() dynmis.Change {
		c := dynmis.NodeChange(dynmis.NodeInsert, next, pickDistinct(rng, alive, degree)...)
		alive = append(alive, next)
		next++
		return c
	}

	bootstrap := func(yield func(dynmis.Change) bool) {
		for i := 0; i < peers; i++ {
			if !yield(join()) {
				return
			}
		}
	}
	if _, err := m.Drive(context.Background(), bootstrap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped overlay: %d peers, %d super-peers\n", m.NodeCount(), len(m.MIS()))

	// Churn: peers crash (abrupt) or leave politely (graceful); new peers
	// join. One streaming Source, one Drive call; the Summary counts the
	// head re-elections every event caused.
	depart := func(kind dynmis.ChangeKind) dynmis.Change {
		i := rng.IntN(len(alive))
		victim := alive[i]
		alive = append(alive[:i], alive[i+1:]...)
		return dynmis.NodeChange(kind, victim)
	}
	churn := func(yield func(dynmis.Change) bool) {
		for step := 0; step < churnSteps; step++ {
			var c dynmis.Change
			switch {
			case rng.Float64() < 0.25 && len(alive) > peers/2: // crash
				c = depart(dynmis.NodeDeleteAbrupt)
			case rng.Float64() < 0.3 && len(alive) > peers/2: // polite leave
				c = depart(dynmis.NodeDeleteGraceful)
			default:
				c = join()
			}
			if !yield(c) {
				return
			}
		}
	}

	sum, err := m.Drive(context.Background(), churn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("churn: %d joins, %d crashes, %d polite leaves\n",
		sum.ByKind[dynmis.NodeInsert], sum.ByKind[dynmis.NodeDeleteAbrupt], sum.ByKind[dynmis.NodeDeleteGraceful])
	fmt.Printf("head re-elections per event: %.3f (paper: ≤ 1 in expectation)\n", sum.MeanAdjustments())
	fmt.Printf("final overlay: %d peers, %d super-peers\n", m.NodeCount(), len(m.MIS()))

	// Every peer must see a super-peer (maximality) — the overlay's
	// service guarantee.
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay invariants verified")
}

// pickDistinct selects up to k distinct random elements of pool.
func pickDistinct(rng *rand.Rand, pool []dynmis.NodeID, k int) []dynmis.NodeID {
	if len(pool) == 0 {
		return nil
	}
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))
	out := make([]dynmis.NodeID, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx])
	}
	return out
}
