// Overlay: a peer-to-peer overlay network under heavy churn elects
// cluster heads with the dynamic MIS. MIS nodes act as super-peers; every
// ordinary peer is adjacent to a super-peer (maximality), and no two
// super-peers are adjacent (independence), so the head set is sparse and
// covering. The paper's guarantee means each join/leave re-elects, in
// expectation, at most one head — the overlay stays almost perfectly
// stable under churn.
//
// Run with:
//
//	go run ./examples/overlay
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynmis"
)

const (
	peers      = 150
	churnSteps = 1000
	degree     = 4
)

func main() {
	m := dynmis.MustNew(dynmis.WithSeed(7), dynmis.WithEngine(dynmis.EngineProtocol))
	rng := rand.New(rand.NewPCG(1, 7))

	// Bootstrap: peers join one by one, each connecting to a few random
	// existing peers (a typical unstructured overlay).
	var alive []dynmis.NodeID
	next := dynmis.NodeID(0)
	join := func() {
		nbrs := pickDistinct(rng, alive, degree)
		if _, err := m.InsertNode(next, nbrs...); err != nil {
			log.Fatal(err)
		}
		alive = append(alive, next)
		next++
	}
	for i := 0; i < peers; i++ {
		join()
	}
	fmt.Printf("bootstrapped overlay: %d peers, %d super-peers\n", m.NodeCount(), len(m.MIS()))

	// Churn: peers crash (abrupt) or leave politely (graceful); new peers
	// join. Track how many head re-elections each event causes.
	var totalAdjust, crashes, leaves, joins int
	for step := 0; step < churnSteps; step++ {
		switch {
		case rng.Float64() < 0.25 && len(alive) > peers/2: // crash
			i := rng.IntN(len(alive))
			victim := alive[i]
			alive = append(alive[:i], alive[i+1:]...)
			rep, err := m.RemoveNodeAbrupt(victim)
			if err != nil {
				log.Fatal(err)
			}
			totalAdjust += rep.Adjustments
			crashes++
		case rng.Float64() < 0.3 && len(alive) > peers/2: // polite leave
			i := rng.IntN(len(alive))
			victim := alive[i]
			alive = append(alive[:i], alive[i+1:]...)
			rep, err := m.RemoveNode(victim)
			if err != nil {
				log.Fatal(err)
			}
			totalAdjust += rep.Adjustments
			leaves++
		default: // join
			join()
			joins++
		}
	}

	fmt.Printf("churn: %d joins, %d crashes, %d polite leaves\n", joins, crashes, leaves)
	fmt.Printf("head re-elections per event: %.3f (paper: ≤ 1 in expectation)\n",
		float64(totalAdjust)/float64(churnSteps))
	fmt.Printf("final overlay: %d peers, %d super-peers\n", m.NodeCount(), len(m.MIS()))

	// Every peer must see a super-peer (maximality) — the overlay's
	// service guarantee.
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay invariants verified")
}

// pickDistinct selects up to k distinct random elements of pool.
func pickDistinct(rng *rand.Rand, pool []dynmis.NodeID, k int) []dynmis.NodeID {
	if len(pool) == 0 {
		return nil
	}
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))
	out := make([]dynmis.NodeID, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx])
	}
	return out
}
