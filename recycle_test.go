package dynmis

// Node-slot recycling tests: the dense arena reuses the slot of a deleted
// node for the next insertion, so deleting and re-inserting the same
// NodeID is the storage core's hardest aliasing case — a stale priority or
// membership lane would silently corrupt π or the MIS. These tests pin
// that priorities are redrawn (never resurrected), that every engine
// agrees on the recycled node's fate, and that the event feed stays
// engine-independent across recycling.

import (
	"slices"
	"testing"

	"dynmis/internal/core"
)

// recycleScript deletes and re-inserts the same IDs repeatedly: a triangle
// core stays put while nodes 10 and 11 churn through delete/re-insert
// cycles with changing neighborhoods (exercising both the graceful and
// abrupt staging paths).
func recycleScript() []Change {
	var cs []Change
	for v := NodeID(1); v <= 3; v++ {
		cs = append(cs, NodeChange(NodeInsert, v))
	}
	cs = append(cs,
		EdgeChange(EdgeInsert, 1, 2),
		EdgeChange(EdgeInsert, 2, 3),
		NodeChange(NodeInsert, 10, 1, 2),
		NodeChange(NodeInsert, 11, 3),
	)
	for round := 0; round < 6; round++ {
		kind := NodeDeleteAbrupt
		if round%2 == 0 {
			kind = NodeDeleteGraceful
		}
		cs = append(cs,
			NodeChange(kind, 10),
			NodeChange(NodeInsert, 10, 2, 3), // same ID, new neighborhood
			NodeChange(kind, 11),
			NodeChange(NodeInsert, 11, 1, 10),
		)
	}
	return cs
}

// TestRecycledNodePrioritiesRedrawn: deleting a node drops its priority,
// and re-inserting the same NodeID draws a fresh one from the stream — on
// the arena-backed engines the lane must follow the map, so a stale lane
// value would make the engine diverge from its own greedy oracle.
func TestRecycledNodePrioritiesRedrawn(t *testing.T) {
	for _, eng := range []Engine{EngineTemplate, EngineSharded} {
		t.Run(eng.String(), func(t *testing.T) {
			m := mustNew(t, WithSeed(5), WithEngine(eng))
			impl := m.impl
			if _, err := m.InsertNode(7); err != nil {
				t.Fatal(err)
			}
			first, ok := impl.Order().Priority(7)
			if !ok {
				t.Fatal("inserted node has no priority")
			}
			if _, err := m.RemoveNodeAbrupt(7); err != nil {
				t.Fatal(err)
			}
			if _, ok := impl.Order().Priority(7); ok {
				t.Fatal("deleted node retains a priority")
			}
			if _, err := m.InsertNode(7); err != nil {
				t.Fatal(err)
			}
			second, ok := impl.Order().Priority(7)
			if !ok {
				t.Fatal("re-inserted node has no priority")
			}
			if second == first {
				t.Fatalf("priority not redrawn on re-insert: %d both times", first)
			}
			// The arena lane must agree with the map for the recycled
			// slot (a stale lane would break LessAt-based cascades).
			i, ok := impl.Graph().Index(7)
			if !ok {
				t.Fatal("re-inserted node has no slot")
			}
			if got := impl.Graph().PrioAt(i); got != uint64(second) {
				t.Fatalf("arena lane holds %d, order holds %d", got, second)
			}
			if err := m.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecycleEventFeedEngineIndependent: delete/re-insert churn over the
// same NodeIDs publishes the identical event stream on every
// π-equivalent engine,
// and every engine still matches its greedy oracle afterwards.
func TestRecycleEventFeedEngineIndependent(t *testing.T) {
	script := recycleScript()
	collect := func(eng Engine) []Event {
		t.Helper()
		m := mustNew(t, WithSeed(23), WithEngine(eng))
		var events []Event
		m.Subscribe(func(ev Event) { events = append(events, ev) })
		for _, c := range script {
			if _, err := m.Apply(c); err != nil {
				t.Fatalf("%v: Apply(%s): %v", eng, c, err)
			}
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
			t.Fatalf("%v: replayed feed diverges from State()", eng)
		}
		return events
	}
	want := collect(EngineTemplate)
	for _, eng := range allEngines[1:] {
		if got := collect(eng); !slices.Equal(got, want) {
			t.Fatalf("%v feed diverges from template across recycling:\n got %v\nwant %v", eng, got, want)
		}
	}
}

// TestRecycleMatchesFreshEngine is the history-independence angle on
// recycling: after heavy delete/re-insert churn, the maintained structure
// equals that of a fresh engine fed only the surviving topology... which
// is exactly what Verify checks against the greedy oracle — here we
// additionally pin that the final states agree across the π-equivalent
// engines.
func TestRecycleMatchesFreshEngine(t *testing.T) {
	script := recycleScript()
	states := make([]map[NodeID]Membership, 0, len(allEngines))
	for _, eng := range allEngines {
		m := mustNew(t, WithSeed(23), WithEngine(eng))
		if _, err := m.ApplyAll(script); err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		states = append(states, m.State())
	}
	for i, st := range states[1:] {
		if !core.EqualStates(st, states[0]) {
			t.Fatalf("%v final state diverges from template", allEngines[i+1])
		}
	}
}
