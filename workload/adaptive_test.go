// The adaptive-adversary property suite lives outside the package
// (like the core tests, see internal/core/batch_test.go): it drives
// real engines through dynmis.DriveInteractive, and dynmis imports
// workload-adjacent internals, so an in-package test would not build.
package workload_test

import (
	"context"
	"slices"
	"testing"

	"dynmis"
	"dynmis/internal/graph"
	"dynmis/workload"
)

// tier1Engines is the π-equivalent engine matrix (Independent() false):
// for equal seeds they all realize the same MIS, so the adversary's
// feedback loop behaves identically against each.
func tier1Engines() []dynmis.Engine {
	var out []dynmis.Engine
	for _, e := range dynmis.Engines() {
		if !e.Independent() {
			out = append(out, e)
		}
	}
	return out
}

// validatingSource wraps an AdaptiveSource and checks every emitted
// change against an independently maintained scratch mirror before the
// engine sees it — the adversary may adapt, but it may never emit a
// change the current topology rejects.
type validatingSource struct {
	t      *testing.T
	inner  *workload.AdaptiveSource
	mirror *graph.Graph
	seen   int
}

func (v *validatingSource) Next(last []dynmis.Event) (dynmis.Change, bool) {
	c, ok := v.inner.Next(last)
	if !ok {
		return c, ok
	}
	v.seen++
	if err := c.Apply(v.mirror); err != nil {
		v.t.Fatalf("change %d (%v) invalid against the mirror: %v", v.seen, c, err)
	}
	return c, ok
}

// TestAdaptivePoliciesEmitOnlyValidChanges is the validity property:
// every policy, driven engine-in-the-loop against every tier-1 engine
// for 10k randomized steps, emits only changes the current graph
// accepts, delivers its full step budget, and leaves the engine
// oracle-verifiable.
func TestAdaptivePoliciesEmitOnlyValidChanges(t *testing.T) {
	const n = 120
	steps := 10000
	if testing.Short() {
		steps = 1500
	}
	for _, sc := range workload.AdaptiveScenarios() {
		for _, e := range tier1Engines() {
			t.Run(sc.Name+"/"+e.String(), func(t *testing.T) {
				const seed = 31
				rng := workload.Rand(seed)
				build := sc.Build(rng, n)
				m := dynmis.MustNew(dynmis.WithSeed(seed), dynmis.WithEngine(e))
				m.Grow(n)
				if _, err := m.Drive(context.Background(), slices.Values(build)); err != nil {
					t.Fatal(err)
				}
				vs := &validatingSource{
					t:      t,
					inner:  sc.NewAdaptive(rng, workload.BuildGraph(build), m.MIS(), steps),
					mirror: workload.BuildGraph(build),
				}
				sum, err := m.DriveInteractive(context.Background(), vs)
				if err != nil {
					t.Fatalf("drive died after %d changes: %v", sum.Changes, err)
				}
				if sum.Changes != steps {
					t.Fatalf("emitted %d changes, want the full budget of %d", sum.Changes, steps)
				}
				if err := m.Verify(); err != nil {
					t.Fatalf("engine failed oracle verification after adaptive drive: %v", err)
				}
			})
		}
	}
}

// adjPerUpdate measures a scenario's amortized adjustment rate on the
// template engine at size n — through DriveInteractive for the adaptive
// scenarios, plain Drive otherwise.
func adjPerUpdate(t *testing.T, sc workload.Scenario, seed uint64, n, steps int) float64 {
	t.Helper()
	n = sc.ClampNodes(n)
	rng := workload.Rand(seed)
	build := sc.Build(rng, n)
	m := dynmis.MustNew(dynmis.WithSeed(seed), dynmis.WithEngine(dynmis.EngineTemplate))
	m.Grow(n)
	if _, err := m.Drive(context.Background(), slices.Values(build)); err != nil {
		t.Fatal(err)
	}
	var (
		sum dynmis.Summary
		err error
	)
	if sc.IsAdaptive() {
		src := sc.NewAdaptive(rng, workload.BuildGraph(build), m.MIS(), steps)
		sum, err = m.DriveInteractive(context.Background(), src)
	} else {
		sum, err = m.Drive(context.Background(), sc.Stream(rng, workload.BuildGraph(build), steps))
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("%s n=%d failed oracle verification: %v", sc.Name, n, err)
	}
	return sum.MeanAdjustments()
}

// TestAdaptiveMISStaysAmortizedConstant pins adaptive-mis against the
// committed single-node-churn worst case on the paper's engines, as a
// scaling claim. Targeting MIS members has a structural absolute cost
// on any engine (each deleted member was in the set, so its deletion
// plus its replacements' insertion cascades are chargeable work); what
// the hidden random order actually buys — and what the committed
// VALIDATION.md scaling table records as ratio 1.00 for
// single-node-churn — is that the rate does not grow with n. So the
// pin: growing n 4×, adaptive-mis's adj/upd growth ratio must stay
// within 2× of single-node-churn's growth ratio measured in this same
// run. A feed-observing adversary that beat the priority redraw would
// show up here as a rate climbing with the number of targets available.
func TestAdaptiveMISStaysAmortizedConstant(t *testing.T) {
	mis, ok := workload.ScenarioByName("adaptive-mis")
	if !ok {
		t.Fatal("adaptive-mis scenario missing")
	}
	snc, ok := workload.ScenarioByName("single-node-churn")
	if !ok {
		t.Fatal("single-node-churn scenario missing")
	}
	const (
		seed  = 42
		small = 100
		large = 400
		steps = 10000
	)
	misSmall := adjPerUpdate(t, mis, seed, small, steps)
	misLarge := adjPerUpdate(t, mis, seed, large, steps)
	sncSmall := adjPerUpdate(t, snc, seed, small, steps)
	sncLarge := adjPerUpdate(t, snc, seed, large, steps)
	if misSmall == 0 || sncSmall == 0 {
		t.Fatalf("degenerate baselines: adaptive-mis %.3f, single-node-churn %.3f", misSmall, sncSmall)
	}
	misScaling := misLarge / misSmall
	sncScaling := sncLarge / sncSmall
	t.Logf("adaptive-mis adj/upd %.3f (n=%d) -> %.3f (n=%d), scaling %.3f", misSmall, small, misLarge, large, misScaling)
	t.Logf("single-node-churn adj/upd %.3f (n=%d) -> %.3f (n=%d), scaling %.3f", sncSmall, small, sncLarge, large, sncScaling)
	if misScaling > 2*sncScaling {
		t.Fatalf("adaptive-mis adj/upd grew %.3fx over a %dx size increase — beyond 2x the single-node-churn worst case's %.3fx; the adaptive adversary is defeating the hidden random order",
			misScaling, large/small, sncScaling)
	}
}
