package workload

import (
	"iter"
	"math/rand/v2"
	"slices"

	"dynmis/internal/graph"
)

// This file is the streaming face of the package: every scenario
// generator is available as a lazy change Source (iter.Seq[graph.Change],
// assignable to dynmis.Source) that yields changes on demand instead of
// materializing a slice. A generator source draws from the rng it was
// given as it is consumed, so it is single-use: iterate it once, or
// record it with dynmis/trace to replay the identical stream into many
// engines. Iterating a consumed generator source panics (see singleUse)
// — a second pass would not replay the stream, it would silently
// generate a different one. The slice-returning functions (RandomChurn,
// SlidingWindow, …) are Collect'ed forms of the same generators, so for
// equal rng states the stream and the slice are identical change for
// change.

// streamRand is the stream constant of the package's canonical rng; every
// tool that instantiates a scenario through Rand/Instantiate shares it,
// so a (seed, scenario, n, steps) tuple names one reproducible workload
// everywhere.
const streamRand = 0xd15_c0de

// Rand returns the canonical workload rng for a seed. All the repo's
// tools (bench, churnsim, dynmis, trace) derive their workloads from it,
// so equal seeds mean equal workloads across tools.
func Rand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, streamRand))
}

// singleUse guards a generator stream against reuse. Generator sources
// consume their rng (and any shadow state) as they run, so a second
// iteration would not replay the stream — it would silently generate a
// different (or empty) one from wherever the first pass left that
// state. That bug class is worth a panic: iterate a generator once, and
// replay by re-deriving it from its constructor with an equal-seeded
// rng, or by recording the stream with dynmis/trace. Even a partial
// first pass consumes state, so it too spends the source.
func singleUse(name string, src iter.Seq[graph.Change]) iter.Seq[graph.Change] {
	spent := false
	return func(yield func(graph.Change) bool) {
		if spent {
			panic("workload: " + name + " is single-use and was iterated twice; " +
				"re-derive it from its constructor with an equal-seeded rng, or record it with dynmis/trace to replay")
		}
		spent = true
		src(yield)
	}
}

// ChurnSource is the streaming form of RandomChurn: a Source yielding
// opts.Steps valid changes starting from the given graph (which is only
// read — a scratch clone tracks validity).
func ChurnSource(rng *rand.Rand, start *graph.Graph, opts ChurnOptions) iter.Seq[graph.Change] {
	weights := []float64{
		opts.NodeInsertWeight,
		opts.NodeDeleteWeight,
		opts.EdgeInsertWeight,
		opts.EdgeDeleteWeight,
	}
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}

	return singleUse("ChurnSource", func(yield func(graph.Change) bool) {
		if totalW == 0 {
			return
		}
		g := start.Clone()
		next := graph.NodeID(0)
		for _, v := range g.Nodes() {
			if v >= next {
				next = v + 1
			}
		}
		pickOp := func() int {
			x := rng.Float64() * totalW
			for i, w := range weights {
				if x < w {
					return i
				}
				x -= w
			}
			return len(weights) - 1
		}

		for emitted := 0; emitted < opts.Steps; {
			nodes := g.Nodes()
			var c graph.Change
			switch pickOp() {
			case 0: // node insert
				var nbrs []graph.NodeID
				for _, v := range nodes {
					if rng.Float64() < opts.AttachProb {
						nbrs = append(nbrs, v)
						if opts.MaxAttach > 0 && len(nbrs) >= opts.MaxAttach {
							break
						}
					}
				}
				c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
				next++
			case 1: // node delete
				if len(nodes) == 0 {
					continue
				}
				kind := graph.NodeDeleteGraceful
				if rng.Float64() < opts.AbruptFraction {
					kind = graph.NodeDeleteAbrupt
				}
				c = graph.NodeChange(kind, nodes[rng.IntN(len(nodes))])
			case 2: // edge insert
				if len(nodes) < 2 {
					continue
				}
				u := nodes[rng.IntN(len(nodes))]
				v := nodes[rng.IntN(len(nodes))]
				if u == v || g.HasEdge(u, v) {
					continue
				}
				c = graph.EdgeChange(graph.EdgeInsert, u, v)
			default: // edge delete
				es := g.Edges()
				if len(es) == 0 {
					continue
				}
				e := es[rng.IntN(len(es))]
				kind := graph.EdgeDeleteGraceful
				if rng.Float64() < opts.AbruptFraction {
					kind = graph.EdgeDeleteAbrupt
				}
				c = graph.EdgeChange(kind, e[0], e[1])
			}
			mustApply(c, g)
			emitted++
			if !yield(c) {
				return
			}
		}
	})
}

// SlidingWindowSource is the streaming form of SlidingWindow: each step
// either inserts a fresh node attached to up to 4 uniformly chosen
// members of the current window or deletes the oldest node, keeping the
// window near its starting size.
func SlidingWindowSource(rng *rand.Rand, start *graph.Graph, steps int) iter.Seq[graph.Change] {
	return singleUse("SlidingWindowSource", func(yield func(graph.Change) bool) {
		window := start.Nodes() // ascending IDs = arrival order
		next := graph.NodeID(0)
		if len(window) > 0 {
			next = window[len(window)-1] + 1
		}
		target := len(window)

		for emitted := 0; emitted < steps; emitted++ {
			var c graph.Change
			insert := len(window) <= 1 || (len(window) < 2*target && rng.IntN(2) == 0)
			if insert {
				var nbrs []graph.NodeID
				for _, i := range rng.Perm(len(window)) {
					nbrs = append(nbrs, window[i])
					if len(nbrs) == 4 {
						break
					}
				}
				c = graph.NodeChange(graph.NodeInsert, next, nbrs...)
				window = append(window, next)
				next++
			} else {
				oldest := window[0]
				window = window[1:]
				kind := graph.NodeDeleteGraceful
				if rng.IntN(2) == 0 {
					kind = graph.NodeDeleteAbrupt
				}
				c = graph.NodeChange(kind, oldest)
			}
			if !yield(c) {
				return
			}
		}
	})
}

// PowerLawSource is the streaming form of PowerLawChurn: preferential
// attachment growth with uniform decay.
func PowerLawSource(rng *rand.Rand, start *graph.Graph, steps int) iter.Seq[graph.Change] {
	return singleUse("PowerLawSource", func(yield func(graph.Change) bool) {
		g := start.Clone()
		// endpoint list with one entry per half-edge plus one per node:
		// sampling uniformly from it is degree+1-proportional sampling.
		var endpoints []graph.NodeID
		for _, v := range g.Nodes() {
			endpoints = append(endpoints, v)
			for range g.Neighbors(v) {
				endpoints = append(endpoints, v)
			}
		}
		next := graph.NodeID(0)
		if ns := g.Nodes(); len(ns) > 0 {
			next = ns[len(ns)-1] + 1
		}

		for emitted := 0; emitted < steps; {
			if g.NodeCount() > 1 && rng.IntN(4) == 0 {
				nodes := g.Nodes()
				victim := nodes[rng.IntN(len(nodes))]
				c := graph.NodeChange(graph.NodeDeleteAbrupt, victim)
				mustApply(c, g)
				emitted++
				if !yield(c) {
					return
				}
				// Lazily repair the endpoint list: drop stale entries when
				// sampled (below) instead of rebuilding it per deletion.
				continue
			}
			seen := make(map[graph.NodeID]bool, 3)
			var nbrs []graph.NodeID
			for tries := 0; len(nbrs) < 3 && tries < 32 && len(endpoints) > 0; tries++ {
				i := rng.IntN(len(endpoints))
				u := endpoints[i]
				if !g.HasNode(u) {
					endpoints[i] = endpoints[len(endpoints)-1]
					endpoints = endpoints[:len(endpoints)-1]
					continue
				}
				if !seen[u] {
					seen[u] = true
					nbrs = append(nbrs, u)
				}
			}
			c := graph.NodeChange(graph.NodeInsert, next, nbrs...)
			mustApply(c, g)
			emitted++
			endpoints = append(endpoints, next)
			for range nbrs {
				endpoints = append(endpoints, next)
			}
			endpoints = append(endpoints, nbrs...)
			next++
			if !yield(c) {
				return
			}
		}
	})
}

// SingleNodeChurnSource is the streaming form of SingleNodeChurn: on a
// warmed-up star (§5 Example 1) it repeatedly deletes the hub — the
// maximum-degree node of the start graph — and re-inserts it with its
// full former neighborhood, alternating strictly so every step churns
// the one worst-placed node in the graph.
//
// This is the worst-case single-node pattern for adjustment complexity:
// whenever the hub wins the priority lottery against all n-1 leaves
// (probability ~1/n per re-insertion, since priorities are redrawn), the
// insertion demotes every leaf and the following deletion promotes them
// all back — Θ(n) adjustments for those two changes. The random order
// makes the *expected* cost O(1) per change (Theorem 1), so measured
// amortized adjustments stay flat as n grows while the per-change
// maximum scales with n; cmd/validate tabulates exactly this contrast.
func SingleNodeChurnSource(rng *rand.Rand, start *graph.Graph, steps int) iter.Seq[graph.Change] {
	hub, best := graph.None, -1
	for _, v := range start.Nodes() {
		if d := start.Degree(v); d > best {
			hub, best = v, d
		}
	}
	leaves := start.Neighbors(hub)

	return singleUse("SingleNodeChurnSource", func(yield func(graph.Change) bool) {
		if hub == graph.None {
			// An empty warm-up has no hub to churn.
			return
		}
		present := true
		for emitted := 0; emitted < steps; emitted++ {
			var c graph.Change
			if present {
				kind := graph.NodeDeleteGraceful
				if rng.IntN(2) == 0 {
					kind = graph.NodeDeleteAbrupt
				}
				c = graph.NodeChange(kind, hub)
			} else {
				c = graph.NodeChange(graph.NodeInsert, hub, leaves...)
			}
			present = !present
			if !yield(c) {
				return
			}
		}
	})
}

// AdversarialSource is the streaming form of AdversarialDeletions: the
// §1.1 lower-bound pattern on a warmed-up K_{k,k}. It draws nothing
// from the rng, but it is wrapped single-use like every other generator
// so the Scenario.Stream contract is uniform across scenarios.
func AdversarialSource(_ *rand.Rand, start *graph.Graph, steps int) iter.Seq[graph.Change] {
	nodes := start.Nodes()
	half := len(nodes) / 2
	left, right := nodes[:half], nodes[half:]

	return singleUse("AdversarialSource", func(yield func(graph.Change) bool) {
		if len(left) == 0 {
			// A warm-up of fewer than two nodes has no L side; the loop
			// below would never make progress.
			return
		}
		for emitted := 0; emitted < steps; {
			for _, v := range left {
				if emitted >= steps {
					break
				}
				emitted++
				if !yield(graph.NodeChange(graph.NodeDeleteGraceful, v)) {
					return
				}
			}
			for _, v := range left {
				if emitted >= steps {
					break
				}
				emitted++
				if !yield(graph.NodeChange(graph.NodeInsert, v, right...)) {
					return
				}
			}
		}
	})
}

// Instance is one fully materialized scenario run: the warm-up sequence
// that constructs the initial graph and the timed drive stream, both
// generated from the canonical rng of Rand — so a (seed, n, steps) tuple
// names the identical workload in every tool, and the drive slice can be
// replayed into any number of engines.
type Instance struct {
	Scenario Scenario
	// Nodes is the effective warm-up size after the scenario's MaxNodes
	// clamp.
	Nodes int
	// Build constructs the initial graph.
	Build []graph.Change
	// Drive is the timed update stream, valid after Build.
	Drive []graph.Change
}

// Source returns the instance's drive stream as a (re-iterable) Source.
func (i Instance) Source() iter.Seq[graph.Change] { return slices.Values(i.Drive) }

// ClampNodes applies the scenario's MaxNodes cap to a requested warm-up
// size.
func (s Scenario) ClampNodes(n int) int {
	if s.MaxNodes > 0 && n > s.MaxNodes {
		return s.MaxNodes
	}
	return n
}

// Instantiate materializes the scenario at the given seed and size. It is
// the shared warm-up/drive construction used by cmd/bench, cmd/churnsim
// and the experiment harness.
func (s Scenario) Instantiate(seed uint64, n, steps int) Instance {
	n = s.ClampNodes(n)
	rng := Rand(seed)
	build := s.Build(rng, n)
	drive := s.Drive(rng, BuildGraph(build), steps)
	return Instance{Scenario: s, Nodes: n, Build: build, Drive: drive}
}
