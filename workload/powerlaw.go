package workload

import (
	"iter"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// PowerLawHubOptions tunes PowerLawHubSource: preferential-attachment
// churn whose hubs saturate at a *target maximum degree* instead of
// growing unboundedly with n. Real large graphs (social, overlay,
// peer-to-peer) have heavy tails but bounded hubs — follower caps,
// connection limits, NIC fan-out — and the big-graph benchmark tier
// wants exactly that shape: a million nodes, hubs of a few thousand.
type PowerLawHubOptions struct {
	// Steps is the number of changes to generate.
	Steps int
	// TargetHubDegree caps every node's degree: attachments are drawn
	// preferentially (degree-proportional over edge endpoints) but a
	// saturated candidate is rejected, so the degree distribution is
	// power-law below the cap with hubs parked at it. Values < 1
	// mean 64.
	TargetHubDegree int
	// AttachPerNode is how many attachments a fresh node requests
	// (capped by the live population). Values < 1 mean 3.
	AttachPerNode int
	// DeleteFraction is the probability a step deletes a uniform live
	// node instead of inserting (half graceful, half abrupt). The
	// default 0 never deletes; the big-tier churn uses 0.5.
	DeleteFraction float64
}

func (o PowerLawHubOptions) withDefaults() PowerLawHubOptions {
	if o.TargetHubDegree < 1 {
		o.TargetHubDegree = 64
	}
	if o.AttachPerNode < 1 {
		o.AttachPerNode = 3
	}
	return o
}

// PowerLawHubSource streams opts.Steps valid changes starting from the
// given graph (which is only read — a scratch clone tracks validity):
// capped preferential attachment with uniform decay. Unlike
// PowerLawSource it never scans the node or edge set, so a step is
// O(attachments) regardless of n — the property that makes it usable
// at the 10^6-node benchmark tier.
func PowerLawHubSource(rng *rand.Rand, start *graph.Graph, opts PowerLawHubOptions) iter.Seq[graph.Change] {
	opts = opts.withDefaults()
	return singleUse("PowerLawHubSource", func(yield func(graph.Change) bool) {
		gen := newHubGen(start.Clone())
		gen.run(rng, opts, yield)
	})
}

// PowerLawHub generates a heavy-tailed graph of n nodes with hubs
// saturating at targetHub, as a streaming insertion sequence — the
// warm-up builder of the big-graph tier (it materializes no change
// slice, so a 10^6-node build allocates only the generator's own
// shadow state). attach is the per-node attachment request (< 1 = 3).
func PowerLawHub(rng *rand.Rand, n, attach, targetHub int) iter.Seq[graph.Change] {
	opts := PowerLawHubOptions{Steps: n, TargetHubDegree: targetHub, AttachPerNode: attach}
	return PowerLawHubSource(rng, graph.New(), opts)
}

// PowerLawHubChanges is the materialized form of PowerLawHub for tests
// and small instances.
func PowerLawHubChanges(rng *rand.Rand, n, attach, targetHub int) []graph.Change {
	var cs []graph.Change
	for c := range PowerLawHub(rng, n, attach, targetHub) {
		cs = append(cs, c)
	}
	return cs
}

// hubGen is the generator's shadow state: a private graph tracking
// validity and degrees, the live-node slice for O(1) uniform sampling,
// and the degree-proportional endpoint urn (entries of departed nodes
// are dropped lazily as sampling touches them, keeping deletions O(1)).
// The big tier shares one hubGen between its build and drive streams so
// the drive continues exactly where the build stopped, with no clone.
type hubGen struct {
	g    *graph.Graph
	live []graph.NodeID
	urn  []graph.NodeID
	next graph.NodeID
	seen map[graph.NodeID]bool // attachment de-dup scratch
}

// newHubGen seeds the shadow state from g, taking ownership of it.
func newHubGen(g *graph.Graph) *hubGen {
	gen := &hubGen{g: g, seen: make(map[graph.NodeID]bool, 8)}
	for v := range g.NodeSeq() {
		gen.live = append(gen.live, v)
		gen.urn = append(gen.urn, v)
		if v >= gen.next {
			gen.next = v + 1
		}
	}
	for _, e := range g.Edges() {
		gen.urn = append(gen.urn, e[0], e[1])
	}
	return gen
}

// run emits opts.Steps changes, folding each into the shadow state.
func (gen *hubGen) run(rng *rand.Rand, opts PowerLawHubOptions, yield func(graph.Change) bool) {
	opts = opts.withDefaults()
	for emitted := 0; emitted < opts.Steps; emitted++ {
		if !yield(gen.step(rng, opts)) {
			return
		}
	}
}

// step generates and applies one change.
func (gen *hubGen) step(rng *rand.Rand, opts PowerLawHubOptions) graph.Change {
	var c graph.Change
	if len(gen.live) > 1 && rng.Float64() < opts.DeleteFraction {
		i := rng.IntN(len(gen.live))
		victim := gen.live[i]
		gen.live[i] = gen.live[len(gen.live)-1]
		gen.live = gen.live[:len(gen.live)-1]
		kind := graph.NodeDeleteGraceful
		if rng.IntN(2) == 0 {
			kind = graph.NodeDeleteAbrupt
		}
		c = graph.NodeChange(kind, victim)
	} else {
		nbrs := gen.drawAttachments(rng, opts)
		c = graph.NodeChange(graph.NodeInsert, gen.next, nbrs...)
		gen.live = append(gen.live, gen.next)
		gen.urn = append(gen.urn, gen.next)
		for _, u := range nbrs {
			gen.urn = append(gen.urn, gen.next, u)
		}
		gen.next++
	}
	mustApply(c, gen.g)
	return c
}

// drawAttachments samples up to AttachPerNode distinct unsaturated live
// targets: degree-proportionally from the urn three times out of four,
// uniformly otherwise (the uniform arm keeps low-degree nodes reachable
// and bounds the tail when hubs saturate).
func (gen *hubGen) drawAttachments(rng *rand.Rand, opts PowerLawHubOptions) []graph.NodeID {
	want := min(opts.AttachPerNode, len(gen.live))
	var nbrs []graph.NodeID
	clear(gen.seen)
	for tries := 0; len(nbrs) < want && tries < 16*want; tries++ {
		var t graph.NodeID
		if len(gen.urn) > 0 && rng.IntN(4) > 0 {
			i := rng.IntN(len(gen.urn))
			t = gen.urn[i]
			if !gen.g.HasNode(t) {
				gen.urn[i] = gen.urn[len(gen.urn)-1]
				gen.urn = gen.urn[:len(gen.urn)-1]
				continue
			}
		} else {
			t = gen.live[rng.IntN(len(gen.live))]
		}
		if gen.seen[t] || gen.g.Degree(t) >= opts.TargetHubDegree {
			continue
		}
		gen.seen[t] = true
		nbrs = append(nbrs, t)
	}
	return nbrs
}
