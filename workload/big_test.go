package workload

import (
	"math"
	"slices"
	"testing"

	"dynmis/internal/graph"
)

// TestPowerLawHubDegreeTarget is the satellite property test for the
// hub-degree parameter: on a graph large enough that uncapped
// preferential attachment would blow past the target, the generated
// maximum degree must land at the cap — never above it, and within
// tolerance below it (the hub actually saturates).
func TestPowerLawHubDegreeTarget(t *testing.T) {
	const n, attach, target = 20_000, 3, 200
	// Uncapped Barabási–Albert max degree grows like attach·√n ≈ 424
	// here, comfortably past the 200 cap, so the cap must bind.
	if uncapped := float64(attach) * math.Sqrt(n); uncapped < 1.5*target {
		t.Fatalf("test misconfigured: uncapped hub estimate %.0f does not exceed target %d", uncapped, target)
	}
	g := graph.New()
	for c := range PowerLawHub(Rand(41), n, attach, target) {
		mustApply(c, g)
	}
	maxDeg := 0
	for v := range g.NodeSeq() {
		maxDeg = max(maxDeg, g.Degree(v))
	}
	if maxDeg > target {
		t.Fatalf("max degree %d exceeds target hub degree %d", maxDeg, target)
	}
	if maxDeg < target*8/10 {
		t.Fatalf("max degree %d never approached target %d (want ≥ %d)", maxDeg, target, target*8/10)
	}
}

// TestPowerLawHubHeavyTail checks the distribution below the cap is
// actually skewed: the top percentile of nodes must hold a
// disproportionate share of edge endpoints (a uniform-degree graph
// would give the top 1% exactly 1%).
func TestPowerLawHubHeavyTail(t *testing.T) {
	const n = 10_000
	g := graph.New()
	for c := range PowerLawHub(Rand(7), n, 3, 500) {
		mustApply(c, g)
	}
	degs := make([]int, 0, n)
	total := 0
	for v := range g.NodeSeq() {
		d := g.Degree(v)
		degs = append(degs, d)
		total += d
	}
	slices.Sort(degs)
	topShare := 0
	for _, d := range degs[len(degs)-len(degs)/100:] {
		topShare += d
	}
	if frac := float64(topShare) / float64(total); frac < 0.05 {
		t.Fatalf("top 1%% of nodes hold only %.1f%% of endpoints — not heavy-tailed", 100*frac)
	}
}

// TestPowerLawHubSourceChurnValid drives the churn form (deletes
// enabled) through a replica graph to confirm every change applies, and
// pins determinism for equal seeds.
func TestPowerLawHubSourceChurnValid(t *testing.T) {
	opts := PowerLawHubOptions{Steps: 2_000, TargetHubDegree: 64, AttachPerNode: 3, DeleteFraction: 0.4}
	start := BuildGraph(GNP(Rand(3), 60, 0.08))

	g := start.Clone()
	var first []string
	for c := range PowerLawHubSource(Rand(11), start, opts) {
		if err := c.Apply(g); err != nil {
			t.Fatalf("invalid change %v: %v", c, err)
		}
		first = append(first, c.String())
	}
	if len(first) != opts.Steps {
		t.Fatalf("stream yielded %d changes, want %d", len(first), opts.Steps)
	}
	replay := slices.Collect(PowerLawHubSource(Rand(11), start, opts))
	for i, c := range replay {
		if c.String() != first[i] {
			t.Fatalf("replay diverges at change %d: %v vs %s", i, c, first[i])
		}
	}
}

// TestUnitDiskGridMatchesQuadratic pins the grid builder against the
// all-pairs reference: same rng, same point set, same graph.
func TestUnitDiskGridMatchesQuadratic(t *testing.T) {
	const n, radius = 600, 0.05
	want := BuildGraph(UnitDisk(Rand(29), n, radius))
	got := graph.New()
	for c := range UnitDiskGrid(Rand(29), n, radius) {
		mustApply(c, got)
	}
	if !want.Equal(got) {
		t.Fatal("grid unit-disk graph differs from the quadratic reference")
	}
}

// TestCityScaleRadius pins the preset to its documented expected
// degree.
func TestCityScaleRadius(t *testing.T) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		r := CityScaleRadius(n)
		if deg := ExpectedUnitDiskDegree(n, r); math.Abs(deg-12) > 1e-9 {
			t.Fatalf("n=%d: CityScaleRadius gives expected degree %v, want 12", n, deg)
		}
	}
}

// TestGeometricChurnSourceValid drives the standalone geometric churn
// from an empty field and checks validity plus rough size stability.
func TestGeometricChurnSourceValid(t *testing.T) {
	g := graph.New()
	for c := range GeometricChurnSource(Rand(5), 0.05, 3_000, 0.45) {
		if err := c.Apply(g); err != nil {
			t.Fatalf("invalid change %v: %v", c, err)
		}
	}
	if n := g.NodeCount(); n < 100 {
		t.Fatalf("field collapsed to %d nodes", n)
	}
}

// TestBigScenarios exercises the registry at a small n: the build
// stream delivers exactly n inserts, the drive continues validly from
// the built state, equal seeds replay identically, and the power-law
// build respects the hub cap.
func TestBigScenarios(t *testing.T) {
	const n, steps = 3_000, 1_500
	for _, sc := range BigScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			build, drive := sc.Streams(Rand(13), n, steps)
			g := graph.New()
			builds := 0
			for c := range build {
				if c.Kind != graph.NodeInsert {
					t.Fatalf("build emitted non-insert %v", c)
				}
				mustApply(c, g)
				builds++
			}
			if builds != n {
				t.Fatalf("build yielded %d changes, want %d", builds, n)
			}
			var sig []string
			drives := 0
			for c := range drive {
				if err := c.Apply(g); err != nil {
					t.Fatalf("drive change %d invalid: %v", drives, err)
				}
				sig = append(sig, c.String())
				drives++
			}
			if drives != steps {
				t.Fatalf("drive yielded %d changes, want %d", drives, steps)
			}
			if sc.Name == "big-power-law" {
				for v := range g.NodeSeq() {
					if d := g.Degree(v); d > BigHubDegree {
						t.Fatalf("node %v degree %d exceeds hub cap %d", v, d, BigHubDegree)
					}
				}
			}

			// Replay: equal seeds must reproduce the identical drive.
			build2, drive2 := sc.Streams(Rand(13), n, steps)
			for range build2 {
			}
			i := 0
			for c := range drive2 {
				if c.String() != sig[i] {
					t.Fatalf("replay diverges at drive change %d: %v vs %s", i, c, sig[i])
				}
				i++
			}
		})
	}

	if _, err := BigScenarioByName("big-power-law"); err != nil {
		t.Fatal(err)
	}
	if _, err := BigScenarioByName("no-such"); err == nil {
		t.Fatal("BigScenarioByName accepted an unknown name")
	}
}

// TestBigGeometricDriveChurnsBuiltField pins the review fix for the
// stale-live-slice bug: the drive stream must treat the n build-era
// nodes as live, so its deletions land on the pre-built field rather
// than only on nodes the drive itself inserted. With deleteFraction 1/2
// and a uniform victim choice over ~n live nodes, a drive of n/2 steps
// that never deletes a build-era ID is astronomically unlikely — it can
// only mean the drive captured an empty live set.
func TestBigGeometricDriveChurnsBuiltField(t *testing.T) {
	const n, steps = 2_000, 1_000
	sc, err := BigScenarioByName("big-geometric")
	if err != nil {
		t.Fatal(err)
	}
	build, drive := sc.Streams(Rand(17), n, steps)
	g := graph.New()
	for c := range build {
		mustApply(c, g)
	}
	buildEraDeletes := 0
	for c := range drive {
		if err := c.Apply(g); err != nil {
			t.Fatalf("invalid drive change %v: %v", c, err)
		}
		if c.Kind != graph.NodeInsert && int(c.Node) < n {
			buildEraDeletes++
		}
	}
	if buildEraDeletes == 0 {
		t.Fatalf("drive of %d steps deleted no build-era node (IDs < %d): drive does not see the built field as live", steps, n)
	}
	// Deletions over the mostly-build-era live set should overwhelmingly
	// hit build-era IDs, not just once by luck.
	if buildEraDeletes < steps/10 {
		t.Fatalf("only %d of %d drive steps deleted build-era nodes — live set looks mostly drive-local", buildEraDeletes, steps)
	}
}
