package workload

import (
	"fmt"
	"iter"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// The big-graph tier cannot go through Scenario/Instantiate: an
// Instance materializes every change, and at 10^6 nodes that slice
// alone would dwarf the engine whose footprint the tier exists to
// measure. A BigScenario instead hands out two lazy streams — a warm-up
// build of about n nodes and a drive of steps churn changes — produced
// by one generator whose shadow state (grid index, attachment urn) is
// shared between them. Nothing is ever materialized; both streams are
// single-use (each step consumes rng and shadow state; a second
// iteration panics), and replay is only by re-invoking Streams with an
// equal-seeded rng — which yields the identical sequence, so every
// engine in a benchmark run sees the same workload.
type BigScenario struct {
	Name        string
	Description string
	// Streams returns the paired lazy streams for size n. The build
	// stream must be fully consumed before the drive stream is touched:
	// drive continues from the state build left behind.
	Streams func(rng *rand.Rand, n, steps int) (build, drive iter.Seq[graph.Change])
}

// bigDeleteFraction keeps big-tier churn roughly size-stable while
// still exercising growth: 1/2 of steps delete, 1/2 insert.
const bigDeleteFraction = 0.5

// BigHubDegree is the big tier's target maximum degree: hubs of a few
// thousand, the shape of real bounded-fan-out networks, independent of
// n (so 10^5 and 10^6 runs stress the same spill size classes).
const BigHubDegree = 2048

// BigScenarios returns the big-graph benchmark tier.
func BigScenarios() []BigScenario {
	return []BigScenario{
		{
			Name: "big-power-law",
			Description: fmt.Sprintf(
				"capped preferential attachment (3 per node, hubs saturate at %d) with delete/insert churn",
				BigHubDegree),
			Streams: func(rng *rand.Rand, n, steps int) (iter.Seq[graph.Change], iter.Seq[graph.Change]) {
				return bigPowerLaw(rng, n, steps)
			},
		},
		{
			Name:        "big-geometric",
			Description: "city-scale unit-disk field (expected degree 12) with arrival/departure churn",
			Streams: func(rng *rand.Rand, n, steps int) (iter.Seq[graph.Change], iter.Seq[graph.Change]) {
				return bigGeometric(rng, n, steps)
			},
		},
	}
}

// BigScenarioByName returns the named big scenario.
func BigScenarioByName(name string) (BigScenario, error) {
	for _, s := range BigScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return BigScenario{}, fmt.Errorf("workload: unknown big scenario %q", name)
}

// bigPowerLaw builds an n-node capped-preferential-attachment graph and
// drives hub churn over it. One hubGen is shared between the streams —
// the drive continues from the exact shadow state the build left, with
// no intermediate clone or materialization.
func bigPowerLaw(rng *rand.Rand, n, steps int) (build, drive iter.Seq[graph.Change]) {
	g := graph.New()
	g.Grow(n)
	gen := newHubGen(g)
	opts := PowerLawHubOptions{TargetHubDegree: BigHubDegree, AttachPerNode: 3}

	build = singleUse("big-power-law build", func(yield func(graph.Change) bool) {
		bo := opts
		bo.Steps = n
		gen.run(rng, bo, yield)
	})
	drive = singleUse("big-power-law drive", func(yield func(graph.Change) bool) {
		do := opts
		do.Steps = steps
		do.DeleteFraction = bigDeleteFraction
		gen.run(rng, do, yield)
	})
	return build, drive
}

// bigGeometric builds a city-scale unit-disk field and drives
// arrival/departure churn over the same grid index.
func bigGeometric(rng *rand.Rand, n, steps int) (build, drive iter.Seq[graph.Change]) {
	radius := CityScaleRadius(n)
	cg := newCellGrid(radius)
	live := make([]int32, 0, n)

	build = singleUse("big-geometric build", func(yield func(graph.Change) bool) {
		for v := int32(0); v < int32(n); v++ {
			p := [2]float64{rng.Float64(), rng.Float64()}
			nbrs := cg.neighbors(p)
			cg.add(v, p)
			live = append(live, v)
			if !yield(graph.NodeChange(graph.NodeInsert, graph.NodeID(v), nbrs...)) {
				return
			}
		}
	})
	// live is shared by pointer: the drive must see the n build-era
	// nodes appended above, not the empty header that existed when the
	// streams were constructed, so churn deletions reach the pre-built
	// field rather than only drive-inserted nodes.
	drive = singleUse("big-geometric drive", geometricChurn(rng, cg, &live, int32(n), steps, bigDeleteFraction))
	return build, drive
}
