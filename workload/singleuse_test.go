package workload

import (
	"fmt"
	"iter"
	"strings"
	"testing"

	"dynmis/internal/graph"
)

// expectSingleUsePanic is deferred by the reuse tests: the enclosing
// function must die with the singleUse diagnostic.
func expectSingleUsePanic(t *testing.T) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatal("re-iterating a consumed generator source did not panic")
	}
	if msg := fmt.Sprint(r); !strings.Contains(msg, "single-use") {
		t.Fatalf("unexpected panic re-iterating a consumed source: %v", r)
	}
}

// TestScenarioStreamsSingleUse is the regression test for the silent-
// reuse bug: a generator source consumes its rng, so re-iterating one
// used to yield a stream that looked plausible but matched nothing —
// now it panics, for every named oblivious scenario.
func TestScenarioStreamsSingleUse(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			rng := Rand(7)
			n := sc.ClampNodes(48)
			build := sc.Build(rng, n)
			src := sc.Stream(rng, BuildGraph(build), 16)
			count := 0
			for range src {
				count++
			}
			if count != 16 {
				t.Fatalf("first pass yielded %d changes, want 16", count)
			}
			defer expectSingleUsePanic(t)
			for range src {
				t.Fatal("consumed source yielded a change")
			}
		})
	}
}

// TestScenarioStreamPartialConsumesSource pins the stricter half of the
// contract: even an abandoned first pass has consumed rng state, so the
// source is spent the moment iteration starts.
func TestScenarioStreamPartialConsumesSource(t *testing.T) {
	sc, ok := ScenarioByName("churn")
	if !ok {
		t.Fatal("churn scenario missing")
	}
	rng := Rand(7)
	build := sc.Build(rng, 48)
	src := sc.Stream(rng, BuildGraph(build), 16)
	for range src {
		break // abandon after one change
	}
	defer expectSingleUsePanic(t)
	for range src {
	}
}

// TestBigScenarioStreamsSingleUse covers the big tier: its build and
// drive streams share one generator's shadow state, so re-iterating
// either would corrupt rather than replay — both must panic.
func TestBigScenarioStreamsSingleUse(t *testing.T) {
	for _, sc := range BigScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			build, drive := sc.Streams(Rand(7), 64, 16)
			for range build {
			}
			for range drive {
			}
			for _, s := range []struct {
				name string
				src  iter.Seq[graph.Change]
			}{{"build", build}, {"drive", drive}} {
				func() {
					defer expectSingleUsePanic(t)
					for range s.src {
						t.Fatalf("consumed %s stream yielded a change", s.name)
					}
				}()
			}
		})
	}
}
