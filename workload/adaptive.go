package workload

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// This file is the adaptive-adversary subsystem. Every other generator
// in the package honors the paper's oblivious-adversary assumption
// (§1.1): the change sequence is fixed before the algorithm draws a
// single priority. An AdaptiveSource deliberately violates it — it
// subscribes to the engine's membership feed through the
// dynmis.InteractiveSource capability and chooses each change as a
// function of the *current* MIS. That is exactly the adversary the
// paper's O(1) amortized-adjustment proof excludes, and exactly the
// adversary that exposes competitor weak spots such as Gupta–Khan's
// O(Δ) bound under targeted max-degree churn.
//
// An adaptive run is engine-in-the-loop, so different engines may see
// different change sequences (each reacts to its own MIS) — but the
// π-equivalent engines maintain identical MISs for equal seeds, so they
// resolve identical streams too. Record the resolved stream (the
// changes actually emitted) and it becomes an ordinary oblivious trace
// that replays bit-for-bit into all eight engines.

// AdaptivePolicy selects how an AdaptiveSource exploits its view of the
// current MIS.
type AdaptivePolicy uint8

const (
	// PolicyOblivious is the control: the same insert/delete shape as the
	// adaptive policies, but the victim of every deletion is chosen
	// uniformly from all nodes, ignoring the feedback entirely. Comparing
	// any adaptive policy against this control isolates the value of
	// adaptivity from the op mix.
	PolicyOblivious AdaptivePolicy = iota + 1
	// PolicyTargetMIS deletes a uniformly random *current MIS member*
	// every deletion step — each deletion is guaranteed to force at least
	// one adjustment plus the repair cascade around the victim.
	PolicyTargetMIS
	// PolicyTargetHub deletes the maximum-degree current MIS member
	// (smallest ID on ties) — the member whose removal uncovers the most
	// neighbors at once.
	PolicyTargetHub
	// PolicyGKWorstCase drives max-degree churn at a designated hub to
	// stress Gupta–Khan's O(Δ) amortized bound: it feeds fresh leaves
	// onto the current maximum-degree MIS member until its degree
	// reaches a threshold, then inserts an edge from a smaller-ID MIS
	// member to it. Gupta–Khan deterministically evicts the larger-ID
	// endpoint — the fattened hub — and promotes every leaf it
	// exclusively covered (Θ(degree) adjustments from one edge insert),
	// while a π engine flips whichever endpoint has the larger priority,
	// so the adversary's aim only lands half the time and the cascade is
	// bounded by Theorem 1 in expectation.
	PolicyGKWorstCase
)

// String names the policy.
func (p AdaptivePolicy) String() string {
	switch p {
	case PolicyOblivious:
		return "oblivious"
	case PolicyTargetMIS:
		return "target-mis"
	case PolicyTargetHub:
		return "target-hub"
	case PolicyGKWorstCase:
		return "gk-worst-case"
	default:
		return fmt.Sprintf("AdaptivePolicy(%d)", uint8(p))
	}
}

// adaptiveAttach caps a replenishing node's uniform attachments, the
// same fan-in the sliding-window generator uses.
const adaptiveAttach = 4

// AdaptiveSource issues changes as a function of the current MIS. It
// implements the dynmis.InteractiveSource capability: drive it with
// Maintainer.DriveInteractive, which shows it the membership events of
// each applied change before asking for the next one.
//
// The source maintains an exact mirror of the engine's graph (it
// applies its own emitted changes to a clone of the warm-up graph) and
// an exact mirror of the engine's MIS (seeded with the post-warm-up MIS
// and folded forward from the feedback events), so every emitted change
// is valid by construction and every targeting decision observes the
// engine's true current state.
type AdaptiveSource struct {
	policy  AdaptivePolicy
	rng     *rand.Rand
	g       *graph.Graph
	mis     map[graph.NodeID]bool
	next    graph.NodeID // next fresh node ID
	target  int          // node count the replenish rule restores
	trigger int          // GK: hub degree that arms the eviction
	steps   int
	emitted int
	pending [2]graph.NodeID // GK: trigger edge awaiting cleanup
	armed   bool
	cool    int                   // GK: steps until the next trigger may fire
	eval    graph.NodeID          // GK: hub whose eviction is judged next step
	tough   map[graph.NodeID]bool // GK: hubs that survived their trigger
}

// NewAdaptiveSource builds an adaptive adversary over a warmed-up
// engine. start is the engine's current graph (cloned, never written)
// and mis its current MIS — pass Maintainer.MIS() after driving the
// scenario's Build phase. steps bounds the number of changes emitted.
func NewAdaptiveSource(policy AdaptivePolicy, rng *rand.Rand, start *graph.Graph, mis []graph.NodeID, steps int) *AdaptiveSource {
	switch policy {
	case PolicyOblivious, PolicyTargetMIS, PolicyTargetHub, PolicyGKWorstCase:
	default:
		panic(fmt.Sprintf("workload: unknown adaptive policy %v", policy))
	}
	s := &AdaptiveSource{
		policy: policy,
		rng:    rng,
		g:      start.Clone(),
		mis:    make(map[graph.NodeID]bool, len(mis)),
		target: start.NodeCount(),
		steps:  steps,
		eval:   graph.None,
	}
	s.trigger = max(8, s.target/32)
	for _, v := range start.Nodes() {
		if v >= s.next {
			s.next = v + 1
		}
	}
	for _, v := range mis {
		if !s.g.HasNode(v) {
			panic(fmt.Sprintf("workload: adaptive MIS seed node %d absent from start graph", v))
		}
		s.mis[v] = true
	}
	return s
}

// Next folds the previous change's membership events into the MIS
// mirror, then emits the policy's next change. It returns false once
// the step budget is spent. Next implements dynmis.InteractiveSource.
func (s *AdaptiveSource) Next(last []core.Event) (graph.Change, bool) {
	for _, ev := range last {
		if ev.Cause == core.CauseLeave || ev.To != core.In {
			delete(s.mis, ev.Node)
			continue
		}
		s.mis[ev.Node] = true
	}
	if s.emitted >= s.steps {
		return graph.Change{}, false
	}

	var c graph.Change
	switch s.policy {
	case PolicyTargetMIS:
		c = s.stepTarget(false)
	case PolicyTargetHub:
		c = s.stepTarget(true)
	case PolicyGKWorstCase:
		c = s.stepGK()
	default:
		c = s.stepOblivious()
	}
	mustApply(c, s.g)
	s.emitted++
	return c, true
}

// Emitted reports how many changes the source has issued so far.
func (s *AdaptiveSource) Emitted() int { return s.emitted }

// misMembers returns the mirrored MIS in ascending ID order — the
// deterministic base set every targeting decision samples from.
func (s *AdaptiveSource) misMembers() []graph.NodeID {
	ms := make([]graph.NodeID, 0, len(s.mis))
	for v := range s.mis {
		ms = append(ms, v)
	}
	slices.Sort(ms)
	return ms
}

// deleteNode builds a graceful or abrupt deletion with equal
// probability, the DefaultChurn mix.
func (s *AdaptiveSource) deleteNode(v graph.NodeID) graph.Change {
	kind := graph.NodeDeleteGraceful
	if s.rng.IntN(2) == 0 {
		kind = graph.NodeDeleteAbrupt
	}
	return graph.NodeChange(kind, v)
}

// replenish inserts a fresh node attached to up to adaptiveAttach
// uniformly chosen existing nodes.
func (s *AdaptiveSource) replenish() graph.Change {
	nodes := s.g.Nodes()
	var nbrs []graph.NodeID
	for _, i := range s.rng.Perm(len(nodes)) {
		nbrs = append(nbrs, nodes[i])
		if len(nbrs) == adaptiveAttach {
			break
		}
	}
	c := graph.NodeChange(graph.NodeInsert, s.next, nbrs...)
	s.next++
	return c
}

// stepOblivious is the control policy: replenish below target,
// otherwise delete a uniformly random node — MIS-blind.
func (s *AdaptiveSource) stepOblivious() graph.Change {
	nodes := s.g.Nodes()
	if len(nodes) < s.target || len(nodes) == 0 {
		return s.replenish()
	}
	return s.deleteNode(nodes[s.rng.IntN(len(nodes))])
}

// stepTarget implements TargetMIS (hub=false) and TargetHub (hub=true):
// replenish below target, otherwise delete a current MIS member — a
// uniformly random one, or the maximum-degree one.
func (s *AdaptiveSource) stepTarget(hub bool) graph.Change {
	if s.g.NodeCount() < s.target {
		return s.replenish()
	}
	ms := s.misMembers()
	if len(ms) == 0 {
		return s.replenish()
	}
	if !hub {
		return s.deleteNode(ms[s.rng.IntN(len(ms))])
	}
	victim, best := ms[0], -1
	for _, v := range ms {
		if d := s.g.Degree(v); d > best {
			victim, best = v, d
		}
	}
	return s.deleteNode(victim)
}

// gkCooldown spaces triggers out: without it an engine that dodges the
// eviction would be re-triggered every other step, turning the run into
// a pure edge toggle instead of the fatten-and-evict cycle the policy
// is about.
const gkCooldown = 4

// stepGK is the Gupta–Khan stressor state machine. Its cycle: feed
// fresh leaves onto the maximum-degree MIS member until it reaches the
// trigger degree, then insert an edge from a smaller-ID MIS member (the
// anchor) to it. Gupta–Khan deterministically evicts the larger-ID
// endpoint — the fattened hub — and promotes every exclusively covered
// leaf: a guaranteed Θ(trigger) adjustment burst, every cycle. A π
// engine flips whichever endpoint drew the larger priority, so the aim
// lands only half the time — and a hub that survives its trigger is
// marked "tough": its leaves are culled while still covered (zero
// adjustments, an option Gupta–Khan never offers because its hubs never
// survive) and it is not targeted again. The asymmetry the policy
// exploits is exactly determinism: against Gupta–Khan every fattened
// leaf is paid for in promotions; against a randomized engine half the
// investment is reclaimed for free.
//
// Step order:
//
//  1. if a trigger edge is pending, delete it (cleanup), and judge the
//     previous hub next step: still a member → tough;
//  2. trigger, when the fattest non-tough member has reached the
//     trigger degree, an anchor exists, and the cooldown has passed;
//  3. below target, feed a fresh leaf onto the fattening hub;
//  4. otherwise cull, cheapest first: a covered leaf of a tough hub, a
//     spent hub (evicted, still fat — its leaves turn isolated and
//     recycle), an isolated node, a uniformly random non-member, and as
//     a last resort the thinnest member.
func (s *AdaptiveSource) stepGK() graph.Change {
	if s.armed {
		s.armed = false
		s.cool = gkCooldown
		s.eval = s.pending[1]
		return graph.EdgeChange(graph.EdgeDeleteGraceful, s.pending[0], s.pending[1])
	}
	if s.eval != graph.None {
		if s.mis[s.eval] {
			if s.tough == nil {
				s.tough = make(map[graph.NodeID]bool)
			}
			s.tough[s.eval] = true
		}
		s.eval = graph.None
	}
	if s.cool > 0 {
		s.cool--
	}

	ms := s.misMembers()
	hub, best := graph.None, -1
	for i, v := range ms {
		// The smallest-ID member can only ever be an anchor (the victim
		// needs a smaller-ID partner), so it is never the fattening hub.
		if i == 0 || s.tough[v] {
			continue
		}
		if d := s.g.Degree(v); d > best {
			hub, best = v, d
		}
	}
	if best >= s.trigger && s.cool == 0 {
		// The anchor must have a smaller ID than the hub so Gupta–Khan's
		// evict-the-larger rule lands on the hub, and must not already be
		// its neighbor (two MIS members never are, but the mirror check
		// keeps the emitted change valid unconditionally).
		for _, u := range ms {
			if u >= hub {
				break
			}
			if !s.g.HasEdge(u, hub) {
				s.pending = [2]graph.NodeID{u, hub}
				s.armed = true
				return graph.EdgeChange(graph.EdgeInsert, u, hub)
			}
		}
	}

	if s.g.NodeCount() < s.target || len(ms) == 0 {
		if hub == graph.None {
			return s.replenish()
		}
		c := graph.NodeChange(graph.NodeInsert, s.next, hub)
		s.next++
		return c
	}
	var isolated, out []graph.NodeID
	spent, spentDeg := graph.None, s.trigger/2
	for _, v := range s.g.Nodes() {
		if s.g.Degree(v) == 0 {
			isolated = append(isolated, v)
			continue
		}
		if s.mis[v] {
			continue
		}
		out = append(out, v)
		if d := s.g.Degree(v); d >= spentDeg {
			spent, spentDeg = v, d
		}
	}
	// Ascending-ID iteration keeps the resolved stream deterministic for
	// a given seed — map order would not be.
	toughs := make([]graph.NodeID, 0, len(s.tough))
	for t := range s.tough {
		toughs = append(toughs, t)
	}
	slices.Sort(toughs)
	for _, t := range toughs {
		if !s.g.HasNode(t) || !s.mis[t] {
			delete(s.tough, t)
			continue
		}
		for _, l := range s.g.Neighbors(t) {
			if !s.mis[l] && s.g.Degree(l) == 1 {
				return s.deleteNode(l)
			}
		}
	}
	switch {
	case spent != graph.None:
		return s.deleteNode(spent)
	case len(isolated) > 0:
		return s.deleteNode(isolated[s.rng.IntN(len(isolated))])
	case len(out) > 0:
		return s.deleteNode(out[s.rng.IntN(len(out))])
	default:
		thin, td := ms[0], s.g.Degree(ms[0])
		for _, v := range ms[1:] {
			if d := s.g.Degree(v); d < td {
				thin, td = v, d
			}
		}
		return s.deleteNode(thin)
	}
}
