package workload

import (
	"iter"
	"math"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// This file is the big-tier geometric layer. The quadratic all-pairs
// scan in UnitDisk is fine at workshop sizes but hopeless at 10^6
// nodes; the grid variants below bucket points into radius-sized cells
// so that building is O(n + m) and a single arrival or departure is
// O(expected degree). The same grid doubles as an incremental index,
// which is what makes a streaming churn source possible at city scale.

// UnitDiskRadiusForDegree returns the radius at which a unit-disk graph
// on n uniform points has expected degree deg (ignoring border
// effects): deg = n·π·r².
func UnitDiskRadiusForDegree(n int, deg float64) float64 {
	return math.Sqrt(deg / (float64(n) * math.Pi))
}

// CityScaleRadius is the big-tier geometric preset: the radius giving
// expected degree 12 at size n — dense enough that MIS recomputation
// has real work per change, sparse enough that a million-node field
// stays around six million edges (a metro-area radio deployment, not a
// clique).
func CityScaleRadius(n int) float64 { return UnitDiskRadiusForDegree(n, 12) }

// cellGrid buckets unit-square points into cells of side ≥ radius, so
// all neighbors of a point lie in its 3×3 cell block. Membership is
// kept swap-deletable for O(1) departures.
type cellGrid struct {
	side   int // cells per axis
	radius float64
	cells  [][]int32 // cell -> member ids
	pos    [][2]float64
	where  []int32 // id -> index within its cell, -1 when absent
}

func newCellGrid(radius float64) *cellGrid {
	side := int(1 / radius)
	if side < 1 {
		side = 1
	}
	return &cellGrid{
		side:   side,
		radius: radius,
		cells:  make([][]int32, side*side),
	}
}

func (cg *cellGrid) cellOf(p [2]float64) int {
	cx := min(int(p[0]*float64(cg.side)), cg.side-1)
	cy := min(int(p[1]*float64(cg.side)), cg.side-1)
	return cy*cg.side + cx
}

// neighbors returns the ids within radius of p, scanning only the 3×3
// cell block around p's cell.
func (cg *cellGrid) neighbors(p [2]float64) []graph.NodeID {
	r2 := cg.radius * cg.radius
	cx := min(int(p[0]*float64(cg.side)), cg.side-1)
	cy := min(int(p[1]*float64(cg.side)), cg.side-1)
	var out []graph.NodeID
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= cg.side {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= cg.side {
				continue
			}
			for _, id := range cg.cells[y*cg.side+x] {
				q := cg.pos[id]
				ddx, ddy := p[0]-q[0], p[1]-q[1]
				if ddx*ddx+ddy*ddy <= r2 {
					out = append(out, graph.NodeID(id))
				}
			}
		}
	}
	return out
}

// add registers id at p. The id must be fresh or previously removed.
func (cg *cellGrid) add(id int32, p [2]float64) {
	for int(id) >= len(cg.pos) {
		cg.pos = append(cg.pos, [2]float64{})
		cg.where = append(cg.where, -1)
	}
	cg.pos[id] = p
	c := cg.cellOf(p)
	cg.where[id] = int32(len(cg.cells[c]))
	cg.cells[c] = append(cg.cells[c], id)
}

// remove unregisters id (swap-delete within its cell).
func (cg *cellGrid) remove(id int32) {
	c := cg.cellOf(cg.pos[id])
	members := cg.cells[c]
	i := cg.where[id]
	last := members[len(members)-1]
	members[i] = last
	cg.where[last] = i
	cg.cells[c] = members[:len(members)-1]
	cg.where[id] = -1
}

// UnitDiskGrid streams the insertion sequence of a random geometric
// graph on n uniform points with the given radius, in O(n + m) via
// cell bucketing. With the same rng it samples the identical point set
// as UnitDisk and therefore yields the identical graph (each arriving
// node attaches to all earlier nodes in range), but it materializes no
// change slice and never compares an out-of-range pair.
func UnitDiskGrid(rng *rand.Rand, n int, radius float64) iter.Seq[graph.Change] {
	return singleUse("UnitDiskGrid", func(yield func(graph.Change) bool) {
		cg := newCellGrid(radius)
		for v := 0; v < n; v++ {
			p := [2]float64{rng.Float64(), rng.Float64()}
			nbrs := cg.neighbors(p)
			cg.add(int32(v), p)
			if !yield(graph.NodeChange(graph.NodeInsert, graph.NodeID(v), nbrs...)) {
				return
			}
		}
	})
}

// UnitDiskGridChanges is the materialized form of UnitDiskGrid for
// tests and small instances.
func UnitDiskGridChanges(rng *rand.Rand, n int, radius float64) []graph.Change {
	var cs []graph.Change
	for c := range UnitDiskGrid(rng, n, radius) {
		cs = append(cs, c)
	}
	return cs
}

// GeometricChurnSource streams steps changes of arrival/departure churn
// over a geometric field: each step either removes a uniform live node
// (probability deleteFraction, half graceful, half abrupt) or inserts a
// fresh node at a uniform position attached to everything in radio
// range. The grid index makes each step O(expected degree), so the
// source runs at the 10^6-node tier.
//
// The returned sequence is SINGLE-USE: each step mutates the shared
// grid index and rng, so iterating it a second time cannot replay —
// it panics. Replay by calling GeometricChurnSource again with an
// equal-seeded rng.
//
// This standalone variant starts from an empty field (the graph grows
// toward its churn equilibrium) and exists for tests; driving churn
// over a pre-built field needs the field's point layout, which only the
// builder has, so the big tier uses BigGeometric — it shares one grid
// between the build stream and the drive stream.
func GeometricChurnSource(rng *rand.Rand, radius float64, steps int, deleteFraction float64) iter.Seq[graph.Change] {
	cg := newCellGrid(radius)
	var live []int32
	return singleUse("GeometricChurnSource", geometricChurn(rng, cg, &live, 0, steps, deleteFraction))
}

// geometricChurn is the shared drive loop: churn over an existing grid
// whose live members are listed in *live (swap-deletable), with fresh
// IDs starting at next. The live slice is taken by pointer so a caller
// that populates it after constructing the sequence (bigGeometric's
// build stream) is still seen, and so the loop's own mutations never
// race a stale copy of the header. Like every churn source here the
// returned sequence is single-use: it consumes rng and grid state.
func geometricChurn(rng *rand.Rand, cg *cellGrid, live *[]int32, next int32, steps int, deleteFraction float64) iter.Seq[graph.Change] {
	return func(yield func(graph.Change) bool) {
		for emitted := 0; emitted < steps; emitted++ {
			var c graph.Change
			if len(*live) > 1 && rng.Float64() < deleteFraction {
				i := rng.IntN(len(*live))
				victim := (*live)[i]
				(*live)[i] = (*live)[len(*live)-1]
				*live = (*live)[:len(*live)-1]
				cg.remove(victim)
				kind := graph.NodeDeleteGraceful
				if rng.IntN(2) == 0 {
					kind = graph.NodeDeleteAbrupt
				}
				c = graph.NodeChange(kind, graph.NodeID(victim))
			} else {
				p := [2]float64{rng.Float64(), rng.Float64()}
				nbrs := cg.neighbors(p)
				cg.add(next, p)
				*live = append(*live, next)
				c = graph.NodeChange(graph.NodeInsert, graph.NodeID(next), nbrs...)
				next++
			}
			if !yield(c) {
				return
			}
		}
	}
}
