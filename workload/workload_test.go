package workload

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/graph"
)

func TestGNPShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := BuildGraph(GNP(rng, 100, 0.1))
	if g.NodeCount() != 100 {
		t.Fatalf("n = %d, want 100", g.NodeCount())
	}
	// Expected edges = p * C(100,2) = 495; allow wide slack.
	if m := g.EdgeCount(); m < 300 || m > 700 {
		t.Errorf("m = %d, far from expectation 495", m)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	if g := BuildGraph(GNP(rng, 20, 0)); g.EdgeCount() != 0 {
		t.Error("p=0 should give no edges")
	}
	if g := BuildGraph(GNP(rng, 20, 1)); g.EdgeCount() != 20*19/2 {
		t.Errorf("p=1 should give complete graph, got m=%d", g.EdgeCount())
	}
}

func TestStar(t *testing.T) {
	g := BuildGraph(Star(10))
	if g.NodeCount() != 10 || g.EdgeCount() != 9 {
		t.Fatalf("star(10) = %v", g)
	}
	if g.Degree(0) != 9 {
		t.Errorf("center degree = %d, want 9", g.Degree(0))
	}
	for v := graph.NodeID(1); v < 10; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("leaf %d degree = %d, want 1", v, g.Degree(v))
		}
	}
}

func TestPathAndCycle(t *testing.T) {
	p := BuildGraph(Path(6))
	if p.NodeCount() != 6 || p.EdgeCount() != 5 {
		t.Fatalf("path(6) = %v", p)
	}
	c := BuildGraph(Cycle(6))
	if c.NodeCount() != 6 || c.EdgeCount() != 6 {
		t.Fatalf("cycle(6) = %v", c)
	}
	for _, v := range c.Nodes() {
		if c.Degree(v) != 2 {
			t.Errorf("cycle node %d degree = %d", v, c.Degree(v))
		}
	}
}

func TestGrid(t *testing.T) {
	g := BuildGraph(Grid(4, 3))
	if g.NodeCount() != 12 {
		t.Fatalf("grid(4,3) n = %d", g.NodeCount())
	}
	// Edges: 3 rows × 3 horizontal + 4 cols × 2 vertical = 9 + 8 = 17.
	if g.EdgeCount() != 17 {
		t.Errorf("grid(4,3) m = %d, want 17", g.EdgeCount())
	}
}

func TestThreePaths(t *testing.T) {
	g := BuildGraph(ThreePaths(5))
	if g.NodeCount() != 20 || g.EdgeCount() != 15 {
		t.Fatalf("3paths(5) = %v", g)
	}
	// Each component is a path of 4 nodes: degrees 1,2,2,1.
	for p := 0; p < 5; p++ {
		base := graph.NodeID(4 * p)
		if g.Degree(base) != 1 || g.Degree(base+1) != 2 || g.Degree(base+2) != 2 || g.Degree(base+3) != 1 {
			t.Errorf("path %d degree profile wrong", p)
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := BuildGraph(CompleteBipartite(4))
	if g.NodeCount() != 8 || g.EdgeCount() != 16 {
		t.Fatalf("K44 = %v", g)
	}
	if g.HasEdge(0, 1) || g.HasEdge(4, 5) {
		t.Error("intra-side edges present")
	}
	if !g.HasEdge(0, 4) {
		t.Error("cross edge missing")
	}
}

func TestBipartiteMinusMatching(t *testing.T) {
	g := BuildGraph(BipartiteMinusMatching(8))
	if g.NodeCount() != 8 {
		t.Fatalf("n = %d", g.NodeCount())
	}
	// 4×4 bipartite (16) minus perfect matching (4) = 12 edges.
	if g.EdgeCount() != 12 {
		t.Errorf("m = %d, want 12", g.EdgeCount())
	}
	if g.HasEdge(0, 4) {
		t.Error("matched pair (0,4) should have no edge")
	}
	if !g.HasEdge(0, 5) {
		t.Error("cross edge (0,5) missing")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd n should panic")
		}
	}()
	BipartiteMinusMatching(7)
}

func TestLowerBoundDeletions(t *testing.T) {
	g := BuildGraph(CompleteBipartite(3))
	for _, c := range LowerBoundDeletions(3) {
		if err := c.Apply(g); err != nil {
			t.Fatal(err)
		}
	}
	if g.NodeCount() != 3 || g.EdgeCount() != 0 {
		t.Errorf("after deletions: %v", g)
	}
}

func TestRandomChurnValidAndSized(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	start := BuildGraph(GNP(rng, 30, 0.1))
	cs := RandomChurn(rng, start, DefaultChurn(500))
	if len(cs) != 500 {
		t.Fatalf("generated %d changes, want 500", len(cs))
	}
	// Replay on a fresh copy: every change must be valid in order.
	g := start.Clone()
	for i, c := range cs {
		if err := c.Apply(g); err != nil {
			t.Fatalf("change %d (%s): %v", i, c, err)
		}
	}
	// The default mix keeps the graph non-degenerate.
	if g.NodeCount() == 0 {
		t.Error("graph died under default churn")
	}
}

func TestRandomChurnZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	if cs := RandomChurn(rng, graph.New(), ChurnOptions{Steps: 10}); cs != nil {
		t.Errorf("zero weights should generate nothing, got %d", len(cs))
	}
}

func TestEdgeChurnValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	start := BuildGraph(GNP(rng, 25, 0.15))
	cs := EdgeChurn(rng, start, 200)
	if len(cs) != 200 {
		t.Fatalf("generated %d changes", len(cs))
	}
	g := start.Clone()
	for i, c := range cs {
		if !c.Kind.IsEdge() {
			t.Fatalf("change %d is not an edge change: %s", i, c)
		}
		if err := c.Apply(g); err != nil {
			t.Fatalf("change %d: %v", i, c)
		}
	}
	if g.NodeCount() != 25 {
		t.Error("edge churn must not change the node set")
	}
}

func TestInsertionSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	g := BuildGraph(GNP(rng, 40, 0.12))
	h := BuildGraph(InsertionSequence(g))
	if !g.Equal(h) {
		t.Error("InsertionSequence does not reconstruct the graph")
	}
}
