package workload

import (
	"math/rand/v2"
	"testing"

	"dynmis/internal/core"
	"dynmis/internal/graph"
)

// Every scenario must generate a valid warm-up + drive sequence, and any
// engine applying it must end at a verifiable MIS.
func TestScenariosValidAndMaintainable(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(17, 19))
			build := sc.Build(rng, 60)
			g := graph.New()
			for i, c := range build {
				if err := c.Apply(g); err != nil {
					t.Fatalf("build change %d (%s): %v", i, c, err)
				}
			}
			drive := sc.Drive(rng, g, 400)
			if len(drive) != 400 {
				t.Fatalf("drive produced %d changes, want 400", len(drive))
			}
			for i, c := range drive {
				if err := c.Apply(g); err != nil {
					t.Fatalf("drive change %d (%s): %v", i, c, err)
				}
			}

			tpl := core.NewTemplate(23)
			if _, err := tpl.ApplyAll(append(append([]graph.Change{}, build...), drive...)); err != nil {
				t.Fatal(err)
			}
			if err := core.CheckMIS(tpl.Graph(), tpl.State()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The drive stream must be reproducible for a fixed rng seed so that every
// engine in a benchmark run sees an identical stream.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		gen := func() []graph.Change {
			rng := rand.New(rand.NewPCG(3, 5))
			build := sc.Build(rng, 40)
			return sc.Drive(rng, BuildGraph(build), 200)
		}
		a, b := gen(), gen()
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", sc.Name)
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("%s: change %d differs: %s vs %s", sc.Name, i, a[i], b[i])
			}
		}
	}
}

func TestScenarioByName(t *testing.T) {
	if _, ok := ScenarioByName("churn"); !ok {
		t.Fatal("churn scenario missing")
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Fatal("unknown scenario resolved")
	}
}
