package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestUnitDiskShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	cs, pos := UnitDiskWithPositions(rng, 200, 0.12)
	g := BuildGraph(cs)
	if g.NodeCount() != 200 || len(pos) != 200 {
		t.Fatalf("n=%d positions=%d", g.NodeCount(), len(pos))
	}
	// Every edge must respect the radius; every non-edge must exceed it.
	r2 := 0.12 * 0.12
	for _, e := range g.Edges() {
		dx := pos[e[0]][0] - pos[e[1]][0]
		dy := pos[e[0]][1] - pos[e[1]][1]
		if dx*dx+dy*dy > r2+1e-12 {
			t.Fatalf("edge %v exceeds radius", e)
		}
	}
	// Mean degree should be near n·π·r² (border effects shrink it a bit).
	want := ExpectedUnitDiskDegree(200, 0.12)
	got := 2 * float64(g.EdgeCount()) / 200
	if got > want || got < want*0.5 {
		t.Errorf("mean degree %.2f, expected a bit under %.2f", got, want)
	}
}

func TestUnitDiskExtremes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	if g := BuildGraph(UnitDisk(rng, 30, 0)); g.EdgeCount() != 0 {
		t.Error("radius 0 should give no edges")
	}
	if g := BuildGraph(UnitDisk(rng, 30, math.Sqrt2)); g.EdgeCount() != 30*29/2 {
		t.Errorf("radius √2 should give the complete graph, got m=%d", g.EdgeCount())
	}
}

func TestBarabasiShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := BuildGraph(Barabasi(rng, 300, 2))
	if g.NodeCount() != 300 {
		t.Fatalf("n=%d", g.NodeCount())
	}
	// Roughly m edges per arriving node (after the first few).
	if m := g.EdgeCount(); m < 500 || m > 600 {
		t.Errorf("m=%d, want ≈ 2·(n-1)", m)
	}
	// Preferential attachment must produce a hub noticeably above the
	// mean degree.
	mean := 2 * float64(g.EdgeCount()) / 300
	if float64(g.MaxDegree()) < 3*mean {
		t.Errorf("max degree %d not hub-like (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestBarabasiMinimumM(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := BuildGraph(Barabasi(rng, 50, 0)) // clamped to 1
	if g.EdgeCount() < 45 {
		t.Errorf("m clamped to 1 should give ≈ n-1 edges, got %d", g.EdgeCount())
	}
}
