// Package workload generates the dynamic workloads that drive a dynmis
// engine: named benchmark scenarios (churn, sliding-window, power-law,
// single-node-churn, adversarial-deletion) whose drive phases are lazy
// change Sources
// (iter.Seq — assignable to dynmis.Source and consumable by
// Maintainer.Drive), plus the static topologies of the paper's examples:
// G(n,p) graphs, stars (§5 Example 1), disjoint 3-edge paths (Example 2),
// complete bipartite graphs minus a perfect matching (Example 3), and the
// K_{k,k} lower-bound gadget (§1.1).
//
// All builders return change sequences or Sources (not graphs) so they
// can drive any engine; BuildGraph materializes a sequence when a static
// graph is needed, and dynmis/trace records any Source for bit-for-bit
// replay. Scenario.Instantiate binds a scenario to the canonical rng of
// Rand, which is how every cmd tool constructs its workloads.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// BuildGraph applies a change sequence to an empty graph and returns the
// result. It panics on invalid sequences: builders in this package are
// expected to produce valid ones.
func BuildGraph(cs []graph.Change) *graph.Graph {
	g := graph.New()
	for _, c := range cs {
		if err := c.Apply(g); err != nil {
			panic(fmt.Sprintf("workload: invalid generated sequence: %v", err))
		}
	}
	return g
}

// InsertionSequence turns an existing graph into the change sequence that
// constructs it: one node insertion per node (in ascending ID order)
// carrying its edges to already-inserted neighbors.
func InsertionSequence(g *graph.Graph) []graph.Change {
	var cs []graph.Change
	seen := make(map[graph.NodeID]bool, g.NodeCount())
	for _, v := range g.Nodes() {
		var nbrs []graph.NodeID
		for _, u := range g.Neighbors(v) {
			if seen[u] {
				nbrs = append(nbrs, u)
			}
		}
		cs = append(cs, graph.NodeChange(graph.NodeInsert, v, nbrs...))
		seen[v] = true
	}
	return cs
}

// GNP generates an Erdős–Rényi G(n,p) graph with nodes 0..n-1 as an
// insertion sequence. Edges are sampled by geometric skipping over the
// linearized upper-triangular pair index — each skip length is the gap
// between successive Bernoulli successes — so generation costs O(n + m)
// RNG draws instead of the naive O(n²), which is what makes the n ≥ 100k
// benchmark topologies feasible. Output is deterministic per rng state.
func GNP(rng *rand.Rand, n int, p float64) []graph.Change {
	g := graph.New()
	for v := 0; v < n; v++ {
		mustAddNode(g, graph.NodeID(v))
	}
	switch {
	case p <= 0 || n < 2:
		// No edges.
	case p >= 1:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				mustAddEdge(g, graph.NodeID(u), graph.NodeID(v))
			}
		}
	default:
		// Pairs (u,v), u<v, enumerated row-major as indices 0..total-1;
		// skip = floor(log(U)/log(1-p)) jumps straight to the next edge.
		logq := math.Log1p(-p)
		total := int64(n) * int64(n-1) / 2
		rowOf := func(k int64) (int, int64) {
			// Invert k = u*n - u*(u+3)/2 + v - 1... binary-search the row
			// start instead of closed-form to avoid float edge cases.
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if rowStart(mid, n) <= k {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			return lo, k - rowStart(lo, n)
		}
		for k := int64(-1); ; {
			u := rng.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			skip := math.Log(u) / logq
			if skip >= float64(total) { // also catches +Inf
				break
			}
			k += 1 + int64(skip)
			if k >= total {
				break
			}
			row, off := rowOf(k)
			mustAddEdge(g, graph.NodeID(row), graph.NodeID(row+1+int(off)))
		}
	}
	return InsertionSequence(g)
}

// rowStart returns the linearized index of pair (u, u+1): the number of
// upper-triangular pairs in rows before u.
func rowStart(u, n int) int64 {
	return int64(u)*int64(n) - int64(u)*int64(u+1)/2
}

// Star generates a star with center 0 and n-1 leaves (§5 Example 1).
func Star(n int) []graph.Change {
	cs := []graph.Change{graph.NodeChange(graph.NodeInsert, 0)}
	for v := 1; v < n; v++ {
		cs = append(cs, graph.NodeChange(graph.NodeInsert, graph.NodeID(v), 0))
	}
	return cs
}

// Path generates a simple path on n nodes 0-1-…-(n-1).
func Path(n int) []graph.Change {
	var cs []graph.Change
	for v := 0; v < n; v++ {
		if v == 0 {
			cs = append(cs, graph.NodeChange(graph.NodeInsert, 0))
		} else {
			cs = append(cs, graph.NodeChange(graph.NodeInsert, graph.NodeID(v), graph.NodeID(v-1)))
		}
	}
	return cs
}

// Cycle generates a cycle on n ≥ 3 nodes.
func Cycle(n int) []graph.Change {
	cs := Path(n)
	cs = append(cs, graph.EdgeChange(graph.EdgeInsert, 0, graph.NodeID(n-1)))
	return cs
}

// Grid generates a w×h grid graph; node (x,y) has ID y*w+x.
func Grid(w, h int) []graph.Change {
	g := graph.New()
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			mustAddNode(g, id(x, y))
			if x > 0 {
				mustAddEdge(g, id(x-1, y), id(x, y))
			}
			if y > 0 {
				mustAddEdge(g, id(x, y-1), id(x, y))
			}
		}
	}
	return InsertionSequence(g)
}

// ThreePaths generates paths/4 disjoint 3-edge paths (4 nodes each), the
// G_{3paths} family of §5 Example 2. IDs are consecutive per path.
func ThreePaths(paths int) []graph.Change {
	var cs []graph.Change
	for p := 0; p < paths; p++ {
		base := graph.NodeID(4 * p)
		cs = append(cs,
			graph.NodeChange(graph.NodeInsert, base),
			graph.NodeChange(graph.NodeInsert, base+1, base),
			graph.NodeChange(graph.NodeInsert, base+2, base+1),
			graph.NodeChange(graph.NodeInsert, base+3, base+2),
		)
	}
	return cs
}

// CompleteBipartite generates K_{k,k}: side L is IDs 0..k-1, side R is IDs
// k..2k-1 (the §1.1 lower-bound gadget).
func CompleteBipartite(k int) []graph.Change {
	g := graph.New()
	for v := 0; v < 2*k; v++ {
		mustAddNode(g, graph.NodeID(v))
	}
	for l := 0; l < k; l++ {
		for r := k; r < 2*k; r++ {
			mustAddEdge(g, graph.NodeID(l), graph.NodeID(r))
		}
	}
	return InsertionSequence(g)
}

// BipartiteMinusMatching generates the §5 Example 3 graph: a complete
// bipartite graph on sides {0..n/2-1} and {n/2..n-1} minus the perfect
// matching pairing u_i with v_i. n must be even.
func BipartiteMinusMatching(n int) []graph.Change {
	if n%2 != 0 {
		panic("workload: BipartiteMinusMatching needs even n")
	}
	half := n / 2
	g := graph.New()
	for v := 0; v < n; v++ {
		mustAddNode(g, graph.NodeID(v))
	}
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			if i == j {
				continue // the removed perfect matching
			}
			mustAddEdge(g, graph.NodeID(i), graph.NodeID(half+j))
		}
	}
	return InsertionSequence(g)
}

// LowerBoundDeletions returns the adversarial deletion sequence of §1.1
// for K_{k,k}: delete the nodes of side L (IDs 0..k-1) one by one. Against
// the deterministic ID-greedy algorithm, the deletion of the last L node
// flips the entire R side.
func LowerBoundDeletions(k int) []graph.Change {
	var cs []graph.Change
	for l := 0; l < k; l++ {
		cs = append(cs, graph.NodeChange(graph.NodeDeleteGraceful, graph.NodeID(l)))
	}
	return cs
}

func mustAddNode(g *graph.Graph, v graph.NodeID) {
	if err := g.AddNode(v); err != nil {
		panic(err)
	}
}

func mustAddEdge(g *graph.Graph, u, v graph.NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
