package workload

import (
	"iter"
	"math/rand/v2"
	"slices"

	"dynmis/internal/graph"
)

// Scenario is a named dynamic workload: a warm-up phase that constructs
// the initial graph and a drive phase that produces the timed update
// stream. Both phases are generated from the caller's rng only — the
// oblivious-adversary assumption of the paper — so every engine can be
// driven with an identical stream. The drive phase is a lazy Source
// (Stream); Drive materializes it, and Instantiate binds both phases to
// the canonical rng of Rand.
type Scenario struct {
	// Name is the stable identifier used in BENCH_dynmis.json and on the
	// -scenarios flags.
	Name string
	// Description says what the workload stresses.
	Description string
	// MaxNodes caps the warm-up size n (0 = uncapped); scenarios with
	// super-linear warm-up cost (the K_{k,k} gadget) set it.
	MaxNodes int
	// Build returns the warm-up sequence constructing the initial graph
	// of roughly n nodes.
	Build func(rng *rand.Rand, n int) []graph.Change
	// Stream returns a Source of exactly steps timed changes, valid when
	// applied after the warm-up. g is the warmed-up graph (read-only).
	// The source draws from rng as it is consumed, so it is single-use.
	// Adaptive scenarios have no Stream (it is nil): their drive phase
	// depends on engine output and is built with NewAdaptive instead.
	Stream func(rng *rand.Rand, g *graph.Graph, steps int) iter.Seq[graph.Change]
	// Adaptive selects the adaptive-adversary policy of the drive phase;
	// zero for the oblivious scenarios.
	Adaptive AdaptivePolicy
}

// IsAdaptive reports whether the scenario's drive phase is an adaptive
// adversary (engine-in-the-loop) rather than an oblivious stream.
func (s Scenario) IsAdaptive() bool { return s.Adaptive != 0 }

// NewAdaptive builds the scenario's adaptive drive source over a
// warmed-up engine: g is the engine's current graph and mis its current
// MIS (Maintainer.MIS() after driving Build). It panics on oblivious
// scenarios — those have a Stream.
func (s Scenario) NewAdaptive(rng *rand.Rand, g *graph.Graph, mis []graph.NodeID, steps int) *AdaptiveSource {
	if !s.IsAdaptive() {
		panic("workload: scenario " + s.Name + " is oblivious; use Stream/Drive")
	}
	return NewAdaptiveSource(s.Adaptive, rng, g, mis, steps)
}

// Drive materializes the scenario's drive stream as a slice.
func (s Scenario) Drive(rng *rand.Rand, g *graph.Graph, steps int) []graph.Change {
	if s.IsAdaptive() {
		panic("workload: scenario " + s.Name + " is adaptive (engine-in-the-loop); drive it with NewAdaptive + Maintainer.DriveInteractive")
	}
	return slices.Collect(s.Stream(rng, g, steps))
}

// Scenarios returns the benchmark suite: mixed churn, a sliding window
// over a node stream, preferential-attachment (power-law) growth with
// random decay, worst-case single-node churn on a star hub, and the
// adversarial deletion pattern of the paper's §1.1 lower-bound gadget.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "churn",
			Description: "balanced node/edge insert+delete mix on G(n,p), graph size roughly stable",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 8/float64(n))
			},
			Stream: func(rng *rand.Rand, g *graph.Graph, steps int) iter.Seq[graph.Change] {
				return ChurnSource(rng, g, DefaultChurn(steps))
			},
		},
		{
			Name:        "sliding-window",
			Description: "streaming graph: arrivals attach to recent nodes, oldest nodes expire",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 6/float64(n))
			},
			Stream: SlidingWindowSource,
		},
		{
			Name:        "power-law",
			Description: "preferential attachment growth with uniform decay — hubs accumulate high degree",
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return GNP(rng, n, 4/float64(n))
			},
			Stream: PowerLawSource,
		},
		{
			Name:        "single-node-churn",
			Description: "star hub deleted and re-inserted every step — worst-case single-node pattern, E[adj] stays O(1)",
			MaxNodes:    2000, // hub churn costs Θ(n) per step by design; cap so -n sweeps stay feasible
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return Star(n)
			},
			Stream: SingleNodeChurnSource,
		},
		{
			Name:        "adversarial-deletion",
			Description: "K_{k,k} lower-bound gadget (§1.1): repeatedly strip one side and rebuild it",
			MaxNodes:    200, // the K_{k,k} warm-up is quadratic in k
			Build: func(rng *rand.Rand, n int) []graph.Change {
				return CompleteBipartite(n / 2)
			},
			Stream: AdversarialSource,
		},
	}
}

// AdaptiveScenarios returns the adaptive-adversary suite: every drive
// phase observes the engine's membership feed and targets the current
// MIS (see AdaptivePolicy), with an MIS-blind control of the same op
// shape. They warm up on the same G(n,p) the churn scenario uses, so
// adaptive-vs-oblivious differences come from the targeting alone. They
// are not part of Scenarios(): an adaptive drive cannot be materialized
// ahead of an engine, so the harnesses wire them through NewAdaptive +
// DriveInteractive (cmd/bench resolves them against a template engine,
// cmd/validate runs them engine-in-the-loop per engine).
func AdaptiveScenarios() []Scenario {
	build := func(rng *rand.Rand, n int) []graph.Change {
		return GNP(rng, n, 8/float64(n))
	}
	return []Scenario{
		{
			Name:        "adaptive-oblivious",
			Description: "control: same insert/delete shape as the adaptive policies, victims chosen MIS-blind",
			Build:       build,
			Adaptive:    PolicyOblivious,
		},
		{
			Name:        "adaptive-mis",
			Description: "adaptive adversary deletes a uniformly random current MIS member every deletion step",
			Build:       build,
			Adaptive:    PolicyTargetMIS,
		},
		{
			Name:        "adaptive-hub",
			Description: "adaptive adversary deletes the maximum-degree current MIS member every deletion step",
			Build:       build,
			Adaptive:    PolicyTargetHub,
		},
		{
			Name:        "adaptive-gk",
			Description: "fattens the max-degree MIS member with fresh leaves, then triggers Gupta–Khan's evict-larger-ID rule on it",
			Build:       build,
			Adaptive:    PolicyGKWorstCase,
		},
	}
}

// ScenarioByName returns the named scenario — oblivious or adaptive —
// or false.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range AdaptiveScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// SlidingWindow is the materialized form of SlidingWindowSource. It
// models time-decaying graphs (connection tables, session overlays) where
// membership is dominated by arrival order.
func SlidingWindow(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	return slices.Collect(SlidingWindowSource(rng, start, steps))
}

// PowerLawChurn is the materialized form of PowerLawSource: most steps
// insert a node whose ~3 attachments are sampled with probability
// proportional to degree+1 (the Barabási–Albert rule), and the rest
// delete a uniform node. Hubs emerge quickly, so updates concentrate on a
// few high-degree vertices — the hardest case for a vertex-sharded engine
// because hub neighborhoods span every shard.
func PowerLawChurn(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	return slices.Collect(PowerLawSource(rng, start, steps))
}

// SingleNodeChurn is the materialized form of SingleNodeChurnSource:
// alternating deletion and full re-insertion of the warm-up graph's
// maximum-degree node (the star hub in the packaged scenario). It is the
// worst-case single-node pattern: the per-change adjustment maximum
// scales with the hub's degree, while the random order keeps the
// amortized cost O(1) (Theorem 1).
func SingleNodeChurn(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	return slices.Collect(SingleNodeChurnSource(rng, start, steps))
}

// AdversarialDeletions is the materialized form of AdversarialSource: on
// a warmed-up K_{k,k} (sides L = first half of the node IDs, R = second
// half) it repeatedly deletes all of L node by node — the pattern that
// forces a deterministic greedy algorithm into Ω(k) adjustments on the
// last deletion — then rebuilds L with its full bipartite attachment. The
// random order π keeps the expected adjustment cost O(1) per change
// (Theorem 1); this scenario is what demonstrates it.
func AdversarialDeletions(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	return slices.Collect(AdversarialSource(rng, start, steps))
}
