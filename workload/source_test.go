package workload

import (
	"slices"
	"testing"

	"dynmis/internal/graph"
)

// TestSourcesMatchSlices pins the stream/slice duality: for equal rng
// states, every streaming generator yields exactly the changes its
// materialized counterpart returns.
func TestSourcesMatchSlices(t *testing.T) {
	start := BuildGraph(GNP(Rand(3), 80, 0.06))
	bip := BuildGraph(CompleteBipartite(10))

	cases := []struct {
		name   string
		slice  func() []graph.Change
		stream func() []graph.Change
	}{
		{
			"churn",
			func() []graph.Change { return RandomChurn(Rand(9), start, DefaultChurn(400)) },
			func() []graph.Change { return slices.Collect(ChurnSource(Rand(9), start, DefaultChurn(400))) },
		},
		{
			"sliding-window",
			func() []graph.Change { return SlidingWindow(Rand(9), start, 400) },
			func() []graph.Change { return slices.Collect(SlidingWindowSource(Rand(9), start, 400)) },
		},
		{
			"power-law",
			func() []graph.Change { return PowerLawChurn(Rand(9), start, 400) },
			func() []graph.Change { return slices.Collect(PowerLawSource(Rand(9), start, 400)) },
		},
		{
			"adversarial",
			func() []graph.Change { return AdversarialDeletions(Rand(9), bip, 100) },
			func() []graph.Change { return slices.Collect(AdversarialSource(Rand(9), bip, 100)) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.slice(), tc.stream()
			if len(a) == 0 {
				t.Fatal("degenerate: empty workload")
			}
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i].String() != b[i].String() {
					t.Fatalf("change %d differs: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestSourcesAreValidStreams drives each generator's output through a
// scratch graph to confirm every yielded change is applicable in order.
func TestSourcesAreValidStreams(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			inst := sc.Instantiate(5, 120, 300)
			g := graph.New()
			for i, c := range slices.Concat(inst.Build, inst.Drive) {
				if err := c.Apply(g); err != nil {
					t.Fatalf("change %d invalid: %v", i, err)
				}
			}
			if len(inst.Drive) != 300 {
				t.Fatalf("drive has %d changes, want 300", len(inst.Drive))
			}
		})
	}
}

// TestSourceEarlyBreak confirms generators stop cleanly when their
// consumer abandons the stream.
func TestSourceEarlyBreak(t *testing.T) {
	start := BuildGraph(GNP(Rand(3), 40, 0.1))
	n := 0
	for range ChurnSource(Rand(1), start, DefaultChurn(1000)) {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("consumed %d changes", n)
	}
}

// TestInstantiate pins the shared construction path: deterministic for
// equal seeds, distinct across seeds, and honoring MaxNodes.
func TestInstantiate(t *testing.T) {
	sc, _ := ScenarioByName("churn")
	a := sc.Instantiate(11, 100, 200)
	b := sc.Instantiate(11, 100, 200)
	if len(a.Drive) != len(b.Drive) || a.Drive[0].String() != b.Drive[0].String() {
		t.Fatal("Instantiate is not deterministic for equal seeds")
	}
	got := slices.Collect(a.Source())
	if len(got) != len(a.Drive) {
		t.Fatal("Instance.Source does not replay Drive")
	}

	adv, _ := ScenarioByName("adversarial-deletion")
	inst := adv.Instantiate(11, 5000, 10)
	if inst.Nodes != adv.MaxNodes {
		t.Fatalf("MaxNodes clamp: have %d, want %d", inst.Nodes, adv.MaxNodes)
	}
}
