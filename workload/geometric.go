package workload

import (
	"math"
	"math/rand/v2"

	"dynmis/internal/graph"
)

// UnitDisk generates a random geometric graph: n points uniform in the
// unit square, an edge between every pair at distance ≤ radius. It is the
// standard model for wireless sensor fields and ad-hoc radio networks —
// the deployment setting the paper's mute/unmute change type is designed
// for. Node v's ID is its index; Positions returns the layout for callers
// that want to drive geometry-aware churn.
func UnitDisk(rng *rand.Rand, n int, radius float64) []graph.Change {
	g, _ := unitDisk(rng, n, radius)
	return InsertionSequence(g)
}

// UnitDiskWithPositions is UnitDisk but also returns the point layout,
// indexed by node ID.
func UnitDiskWithPositions(rng *rand.Rand, n int, radius float64) ([]graph.Change, [][2]float64) {
	g, pos := unitDisk(rng, n, radius)
	return InsertionSequence(g), pos
}

func unitDisk(rng *rand.Rand, n int, radius float64) (*graph.Graph, [][2]float64) {
	pos := make([][2]float64, n)
	g := graph.New()
	for v := 0; v < n; v++ {
		pos[v] = [2]float64{rng.Float64(), rng.Float64()}
		mustAddNode(g, graph.NodeID(v))
	}
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := pos[u][0] - pos[v][0]
			dy := pos[u][1] - pos[v][1]
			if dx*dx+dy*dy <= r2 {
				mustAddEdge(g, graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g, pos
}

// Barabasi generates a preferential-attachment graph: nodes arrive one at
// a time and attach m edges to existing nodes chosen proportionally to
// their degree (plus one). It yields the heavy-tailed degree
// distributions typical of real overlay and social networks, stressing
// the hub-deletion paths of the algorithm.
func Barabasi(rng *rand.Rand, n, m int) []graph.Change {
	if m < 1 {
		m = 1
	}
	g := graph.New()
	// Degree-proportional sampling via a repeated-endpoints urn.
	var urn []graph.NodeID
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		mustAddNode(g, id)
		attach := make(map[graph.NodeID]bool)
		for len(attach) < m && len(attach) < v {
			var target graph.NodeID
			if len(urn) == 0 {
				target = graph.NodeID(rng.IntN(v))
			} else {
				target = urn[rng.IntN(len(urn))]
			}
			if target != id {
				attach[target] = true
			}
		}
		for u := range attach {
			mustAddEdge(g, id, u)
			urn = append(urn, id, u)
		}
		urn = append(urn, id)
	}
	return InsertionSequence(g)
}

// ExpectedUnitDiskDegree returns the expected degree n·π·r² (ignoring
// border effects), a helper for choosing radii in experiments.
func ExpectedUnitDiskDegree(n int, radius float64) float64 {
	return float64(n) * math.Pi * radius * radius
}
