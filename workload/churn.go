package workload

import (
	"math/rand/v2"
	"slices"

	"dynmis/internal/graph"
)

// ChurnOptions tunes RandomChurn. Weights need not sum to 1; they are
// normalized. The oblivious-adversary assumption of the paper is honored
// by construction: the sequence is generated without any knowledge of the
// algorithm's randomness.
type ChurnOptions struct {
	// Steps is the number of changes to generate.
	Steps int
	// NodeInsertWeight .. EdgeDeleteWeight set the change mix.
	NodeInsertWeight float64
	NodeDeleteWeight float64
	EdgeInsertWeight float64
	EdgeDeleteWeight float64
	// AbruptFraction is the probability that a deletion is abrupt
	// rather than graceful.
	AbruptFraction float64
	// AttachProb is the probability that a fresh node attaches to each
	// existing node (so mean attach degree ≈ AttachProb·n).
	AttachProb float64
	// MaxAttach caps a fresh node's attachments (0 = unlimited).
	MaxAttach int
}

// DefaultChurn is a balanced mix that keeps the graph size roughly stable.
func DefaultChurn(steps int) ChurnOptions {
	return ChurnOptions{
		Steps:            steps,
		NodeInsertWeight: 2,
		NodeDeleteWeight: 2,
		EdgeInsertWeight: 3,
		EdgeDeleteWeight: 3,
		AbruptFraction:   0.5,
		AttachProb:       0.1,
		MaxAttach:        16,
	}
}

// RandomChurn generates a valid random change sequence starting from the
// given graph (which is only read — a scratch copy tracks validity). The
// returned changes can be fed to any engine in order. It is the
// materialized form of ChurnSource: for equal rng states the slice and
// the stream are identical change for change.
func RandomChurn(rng *rand.Rand, start *graph.Graph, opts ChurnOptions) []graph.Change {
	return slices.Collect(ChurnSource(rng, start, opts))
}

// EdgeChurn generates a sequence of single-edge changes (insert or delete
// with equal probability) that keeps the graph connected to its starting
// density; it is the workload for the per-change-type cost experiments.
func EdgeChurn(rng *rand.Rand, start *graph.Graph, steps int) []graph.Change {
	g := start.Clone()
	nodes := g.Nodes()
	var cs []graph.Change
	for len(cs) < steps && len(nodes) >= 2 {
		if rng.IntN(2) == 0 {
			u := nodes[rng.IntN(len(nodes))]
			v := nodes[rng.IntN(len(nodes))]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			c := graph.EdgeChange(graph.EdgeInsert, u, v)
			mustApply(c, g)
			cs = append(cs, c)
		} else {
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.IntN(len(es))]
			c := graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])
			mustApply(c, g)
			cs = append(cs, c)
		}
	}
	return cs
}

func mustApply(c graph.Change, g *graph.Graph) {
	if err := c.Apply(g); err != nil {
		panic("workload: generated invalid change: " + err.Error())
	}
}
