package dynmis_test

import (
	"context"
	"slices"
	"testing"

	"dynmis"
	"dynmis/metrics"
)

// TestDriveMetricsAcrossEngines drives an identical churn stream into
// every instrumented engine and checks the tentpole contracts of the
// complexity-instrumentation subsystem end to end: Summary.Metrics is
// the per-drive counter delta, its adjustment account agrees with the
// Report fold the summary already carries, the engine-specific counters
// move exactly where the engine models them, and the π-equivalent engines agree
// on the paper-level measures (adjustments) for equal seeds.
func TestDriveMetricsAcrossEngines(t *testing.T) {
	cs := churnStream(19, 60, 500)
	adjByEngine := make(map[dynmis.Engine]uint64)

	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			m := dynmis.MustNew(dynmis.WithSeed(3), dynmis.WithEngine(e), dynmis.WithInstrumentation())
			sum, err := m.Drive(context.Background(), slices.Values(cs))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Metrics == nil {
				t.Fatal("Summary.Metrics nil despite WithInstrumentation")
			}
			c := *sum.Metrics
			if c.Updates != uint64(sum.Changes) || c.Windows != uint64(sum.Applies) {
				t.Fatalf("counter counts %d/%d vs summary %d/%d", c.Updates, c.Windows, sum.Changes, sum.Applies)
			}
			// The counter fold and the Report fold must be the same
			// account of the same drive.
			if c.Adjustments != uint64(sum.Total.Adjustments) {
				t.Fatalf("Adjustments: counters %d, reports %d", c.Adjustments, sum.Total.Adjustments)
			}
			if c.Influence != uint64(sum.Total.SSize) || c.Flips != uint64(sum.Total.Flips) {
				t.Fatalf("S/flips: counters %d/%d, reports %d/%d", c.Influence, c.Flips, sum.Total.SSize, sum.Total.Flips)
			}
			// Engine-specific counters move only where modeled.
			switch e {
			case dynmis.EngineTemplate:
				if c.TouchedSlots == 0 {
					t.Fatal("template: TouchedSlots stayed zero")
				}
				if c.Broadcasts != 0 || c.MessagesSent != 0 {
					t.Fatalf("template reported network traffic: %+v", c)
				}
			case dynmis.EngineSharded:
				if c.TouchedSlots == 0 || c.Handoffs == 0 {
					t.Fatalf("sharded: touched/handoffs stayed zero: %+v", c)
				}
				// CrossShard is the boundary-crossing subset of Handoffs,
				// and every steal moves at least one already-counted
				// hand-off, so neither can exceed the hand-off total.
				if c.CrossShard > c.Handoffs || c.Steals > c.Handoffs {
					t.Fatalf("sharded: cross-shard %d / steals %d exceed handoffs %d",
						c.CrossShard, c.Steals, c.Handoffs)
				}
			case dynmis.EngineDirect, dynmis.EngineProtocol:
				if c.Broadcasts == 0 || c.MessagesSent == 0 || c.Rounds == 0 || c.Bits == 0 {
					t.Fatalf("%v: network counters stayed zero: %+v", e, c)
				}
				if c.MessagesDelivered != c.MessagesSent {
					t.Fatalf("no faults injected but sent %d != delivered %d", c.MessagesSent, c.MessagesDelivered)
				}
			case dynmis.EngineAsyncDirect:
				if c.Broadcasts == 0 || c.MaxCausalDepth == 0 {
					t.Fatalf("async: counters stayed zero: %+v", c)
				}
			}
			// The cumulative facade account equals the single drive's
			// delta here, since the maintainer was fresh.
			cum, ok := m.Metrics()
			if !ok {
				t.Fatal("Metrics() reported instrumentation disabled")
			}
			if cum != c {
				t.Fatalf("cumulative counters diverge from the drive delta:\n got %+v\nwant %+v", cum, c)
			}
			adjByEngine[e] = c.Adjustments
		})
	}

	// Equal seeds, equal streams, per-change application: history
	// independence makes the adjustment account engine-independent.
	want := adjByEngine[dynmis.EngineTemplate]
	for e, got := range adjByEngine {
		if got != want {
			t.Fatalf("engine %v measured %d adjustments, template %d", e, got, want)
		}
	}
}

// TestBatchInstrumentationCountsWindows pins the window semantics of
// the capability contract on every engine, including the ones whose
// ApplyBatch delegates to per-change application: a windowed drive
// counts one window per batch, and a failing batch moves no counters at
// all (even though its staged prefix stays applied).
func TestBatchInstrumentationCountsWindows(t *testing.T) {
	cs := churnStream(37, 40, 300)
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			m := dynmis.MustNew(dynmis.WithSeed(7), dynmis.WithEngine(e), dynmis.WithInstrumentation())
			sum, err := m.Drive(context.Background(), slices.Values(cs), dynmis.DriveWindow(50))
			if err != nil {
				t.Fatal(err)
			}
			c := *sum.Metrics
			if c.Updates != uint64(sum.Changes) || c.Windows != uint64(sum.Applies) {
				t.Fatalf("windowed drive: counters %d updates / %d windows, summary %d / %d",
					c.Updates, c.Windows, sum.Changes, sum.Applies)
			}

			before, _ := m.Metrics()
			bad := []dynmis.Change{
				dynmis.Change{Kind: dynmis.NodeInsert, Node: 777_777},
				dynmis.Change{Kind: dynmis.NodeInsert, Node: 777_777}, // duplicate of the prefix insert
			}
			if _, err := m.ApplyBatch(bad); err == nil {
				t.Fatal("expected mid-batch error")
			}
			if after, _ := m.Metrics(); after != before {
				t.Fatalf("failed batch moved the counters:\n got %+v\nwant %+v", after, before)
			}
		})
	}
}

// TestDriveMetricsDeltaPerDrive pins that Summary.Metrics is the delta
// of the drive, not the cumulative account, and that ResetMetrics
// rebases the cumulative counters without touching summaries already
// returned.
func TestDriveMetricsDeltaPerDrive(t *testing.T) {
	cs := churnStream(23, 40, 300)
	half := len(cs) / 2
	m := dynmis.MustNew(dynmis.WithSeed(5), dynmis.WithEngine(dynmis.EngineTemplate), dynmis.WithInstrumentation())

	sum1, err := m.Drive(context.Background(), slices.Values(cs[:half]))
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := m.Drive(context.Background(), slices.Values(cs[half:]))
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Metrics.Updates != uint64(len(cs)-half) {
		t.Fatalf("second drive delta counts %d updates, want %d", sum2.Metrics.Updates, len(cs)-half)
	}
	var total metrics.Counters
	total.Add(*sum1.Metrics)
	total.Add(*sum2.Metrics)
	cum, _ := m.Metrics()
	if cum != total {
		t.Fatalf("cumulative != sum of drive deltas:\n got %+v\nwant %+v", cum, total)
	}

	m.ResetMetrics()
	if after, _ := m.Metrics(); after != (metrics.Counters{}) {
		t.Fatalf("ResetMetrics left %+v", after)
	}
	if sum1.Metrics.Updates == 0 {
		t.Fatal("ResetMetrics mutated a returned summary")
	}
}

// TestUninstrumentedMaintainer pins the default-off behavior: no
// Summary.Metrics, Metrics() reports disabled, and ResetMetrics is a
// no-op.
func TestUninstrumentedMaintainer(t *testing.T) {
	m := dynmis.MustNew(dynmis.WithSeed(2))
	sum, err := m.Drive(context.Background(), slices.Values(churnStream(29, 30, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Metrics != nil {
		t.Fatalf("uninstrumented drive returned metrics: %+v", sum.Metrics)
	}
	if c, ok := m.Metrics(); ok || c != (metrics.Counters{}) {
		t.Fatalf("Metrics() = %+v, %v on uninstrumented maintainer", c, ok)
	}
	m.ResetMetrics() // must not panic
}

// TestInstrumentedRestore pins that WithInstrumentation composes with
// Restore for the snapshot-capable engines.
func TestInstrumentedRestore(t *testing.T) {
	src := dynmis.MustNew(dynmis.WithSeed(7), dynmis.WithEngine(dynmis.EngineTemplate))
	if _, err := src.Drive(context.Background(), slices.Values(churnStream(31, 30, 200))); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynmis.Restore(snap, 9, dynmis.WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertNode(1_000_000); err != nil {
		t.Fatal(err)
	}
	c, ok := m.Metrics()
	if !ok || c.Updates != 1 {
		t.Fatalf("restored maintainer counters: %+v, %v", c, ok)
	}
}
