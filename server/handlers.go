package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"dynmis"
	"dynmis/trace"
)

// StateNode is one row of the /v1/state document.
type StateNode struct {
	Node  dynmis.NodeID `json:"node"`
	InMIS bool          `json:"in_mis"`
}

// StateDoc is the /v1/state response: the full membership configuration,
// consistent with the logical watermark Seq — subscribe with from=Seq to
// continue exactly where this snapshot leaves off.
type StateDoc struct {
	Schema string      `json:"schema"`
	Role   string      `json:"role"`
	Seq    uint64      `json:"seq"`
	Nodes  []StateNode `json:"nodes"`
}

// StateSchema identifies the /v1/state document format.
const StateSchema = "dynmis-state/v1"

// MISDoc is the /v1/mis response.
type MISDoc struct {
	Seq uint64          `json:"seq"`
	MIS []dynmis.NodeID `json:"mis"`
}

// StreamEnd is the terminal record of an event stream: End marks a
// graceful daemon shutdown after the full backlog was delivered; Error
// ("lagged") tells the subscriber it fell behind retention and must
// resync from /v1/state.
type StreamEnd struct {
	End   bool   `json:"end,omitempty"`
	Error string `json:"error,omitempty"`
	Seq   uint64 `json:"seq"`
}

// errorDoc is the JSON error body used by every non-2xx response.
type errorDoc struct {
	Error  string `json:"error"`
	Leader string `json:"leader,omitempty"`
	Floor  uint64 `json:"floor,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
}

// routes is the wire surface shared by the leader and the replica: each
// role plugs in its own snapshot accessors; a nil ingest means read-only
// (the replica redirects writers to its leader).
type routes struct {
	role     string
	leader   string // leader URL, for the replica's 403s
	hub      *hub
	state    func() ([]StateNode, uint64)
	mis      func() ([]dynmis.NodeID, uint64)
	metricsz func() Metricsz
	ingest   func([]dynmis.Change) (IngestResult, error)
}

// mux wires the endpoints of docs/WIRE.md.
func (rt *routes) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/changes", rt.handleChanges)
	mux.HandleFunc("POST /v1/stream", rt.handleStream)
	mux.HandleFunc("GET /v1/events", rt.handleEvents)
	mux.HandleFunc("GET /v1/state", rt.handleState)
	mux.HandleFunc("GET /v1/mis", rt.handleMIS)
	mux.HandleFunc("GET /metricsz", rt.handleMetricsz)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// ingestError maps an ingest failure to a status: 503 while shutting
// down or after a WAL failure — the client should not retry here.
func ingestStatus(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// rejectReadOnly answers ingestion on a replica.
func (rt *routes) rejectReadOnly(w http.ResponseWriter) bool {
	if rt.ingest != nil {
		return false
	}
	writeJSON(w, http.StatusForbidden, errorDoc{Error: "read replica: ingest at the leader", Leader: rt.leader})
	return true
}

// handleChanges ingests one JSON body: either a single change record or an
// array of records, in the trace wire format. The whole body is one ingest
// batch (one durability point); the acknowledgment reports per-change
// accept/reject counts.
func (rt *routes) handleChanges(w http.ResponseWriter, r *http.Request) {
	if rt.rejectReadOnly(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "read body: " + err.Error()})
		return
	}
	body = bytes.TrimSpace(body)
	var raws []json.RawMessage
	if len(body) > 0 && body[0] == '[' {
		if err := json.Unmarshal(body, &raws); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "decode array: " + err.Error()})
			return
		}
	} else {
		raws = []json.RawMessage{body}
	}
	cs := make([]dynmis.Change, 0, len(raws))
	for i, raw := range raws {
		c, err := trace.UnmarshalChange(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("change %d: %v", i, err)})
			return
		}
		cs = append(cs, c)
	}
	res, err := rt.ingest(cs)
	if err != nil {
		writeJSON(w, ingestStatus(err), errorDoc{Error: err.Error(), Seq: res.Seq})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// streamChunk bounds how many NDJSON changes are ingested per durability
// point while streaming.
const streamChunk = 256

// handleStream ingests an NDJSON body: one trace change record per line,
// applied in chunks so a long-running stream acknowledges (and under
// FsyncAlways, fsyncs) incrementally rather than buffering the whole
// request. The response is the aggregate acknowledgment.
func (rt *routes) handleStream(w http.ResponseWriter, r *http.Request) {
	if rt.rejectReadOnly(w) {
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var (
		total IngestResult
		chunk []dynmis.Change
		line  int
	)
	flush := func() (error, int) {
		if len(chunk) == 0 {
			return nil, 0
		}
		res, err := rt.ingest(chunk)
		total.Accepted += res.Accepted
		total.Rejected += res.Rejected
		total.Seq = res.Seq
		for _, e := range res.Errors {
			if len(total.Errors) < maxIngestErrors {
				total.Errors = append(total.Errors, e)
			}
		}
		chunk = chunk[:0]
		if err != nil {
			return err, ingestStatus(err)
		}
		return nil, 0
	}
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		c, err := trace.UnmarshalChange(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("line %d: %v", line, err), Seq: total.Seq})
			return
		}
		chunk = append(chunk, c)
		if len(chunk) >= streamChunk {
			if err, status := flush(); err != nil {
				writeJSON(w, status, errorDoc{Error: err.Error(), Seq: total.Seq})
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "read stream: " + err.Error(), Seq: total.Seq})
		return
	}
	if err, status := flush(); err != nil {
		writeJSON(w, status, errorDoc{Error: err.Error(), Seq: total.Seq})
		return
	}
	writeJSON(w, http.StatusOK, total)
}

// handleEvents is the subscription endpoint: it streams every membership
// event with seq > from, gap-free and in order, as NDJSON (default) or SSE
// (Accept: text/event-stream or ?format=sse). A resume position below the
// retained history is answered with 409 and the retention floor — the
// client resyncs from /v1/state and subscribes from its seq. The stream
// ends with a terminal record: {"end":true} on graceful shutdown,
// {"error":"lagged"} when the subscriber fell behind retention.
func (rt *routes) handleEvents(w http.ResponseWriter, r *http.Request) {
	from := uint64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad from: " + err.Error()})
			return
		}
		from = v
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		// SSE reconnects resume automatically via Last-Event-ID.
		if s := r.Header.Get("Last-Event-ID"); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				from = v
			}
		}
	}

	flusher, _ := w.(http.Flusher)
	var (
		bw      = bufio.NewWriter(w)
		started bool
		sendErr error
	)
	start := func() {
		if started {
			return
		}
		started = true
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
	}
	send := func(evs []WireEvent) error {
		start()
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if sse {
				fmt.Fprintf(bw, "id: %d\nevent: change\ndata: %s\n\n", ev.Seq, data)
			} else {
				bw.Write(data)
				bw.WriteByte('\n')
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	terminal := func(end StreamEnd) {
		start()
		data, _ := json.Marshal(end)
		if sse {
			kind := "end"
			if end.Error != "" {
				kind = "error"
			}
			fmt.Fprintf(bw, "event: %s\ndata: %s\n\n", kind, data)
		} else {
			bw.Write(data)
			bw.WriteByte('\n')
		}
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}

	err := rt.hub.stream(r.Context(), from, 0, func(evs []WireEvent) error {
		sendErr = send(evs)
		return sendErr
	})
	switch {
	case errors.Is(err, errTruncated) && !started:
		floor, seq := rt.hub.bounds()
		writeJSON(w, http.StatusConflict, errorDoc{
			Error: errTruncated.Error(), Floor: floor, Seq: seq,
		})
	case errors.Is(err, errLagged):
		terminal(StreamEnd{Error: "lagged", Seq: rt.hub.watermark()})
	case errors.Is(err, errHubClosed):
		terminal(StreamEnd{End: true, Seq: rt.hub.watermark()})
	case sendErr != nil || r.Context().Err() != nil:
		// The client went away; nothing left to tell it.
	}
}

func (rt *routes) handleState(w http.ResponseWriter, r *http.Request) {
	nodes, seq := rt.state()
	writeJSON(w, http.StatusOK, StateDoc{Schema: StateSchema, Role: rt.role, Seq: seq, Nodes: nodes})
}

func (rt *routes) handleMIS(w http.ResponseWriter, r *http.Request) {
	mis, seq := rt.mis()
	if mis == nil {
		mis = []dynmis.NodeID{}
	}
	writeJSON(w, http.StatusOK, MISDoc{Seq: seq, MIS: mis})
}

func (rt *routes) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.metricsz())
}

func (rt *routes) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": rt.role, "seq": rt.hub.watermark()})
}
