package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"dynmis"
	"dynmis/trace"
)

// FsyncPolicy says when an accepted change must reach stable storage
// relative to its acknowledgment.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the WAL before every acknowledgment: an acked
	// change survives a machine crash. Strongest and slowest; batched
	// ingestion amortizes the fsync over the whole request.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval flushes on every append and fsyncs on a background
	// ticker: a crash loses at most the last interval of acked changes.
	FsyncInterval
	// FsyncNever flushes on every append and leaves fsync to the OS (and
	// to graceful shutdown): a process crash loses nothing, a machine
	// crash may lose the OS-buffered tail.
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("server: unknown fsync policy %q (want always, interval or never)", s)
}

// countingFile wraps the WAL file to count bytes written and forward
// fsync, so trace.Writer.Sync reaches the file through the count.
type countingFile struct {
	f *os.File
	n atomic.Int64
}

func (c *countingFile) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingFile) Sync() error { return c.f.Sync() }

// wal is the write-ahead log: the trace package writing to an append-only
// file. The server appends every accepted change *after* the engine
// applied it and acknowledges only after the policy's durability point, so
// the log is exactly the sequence of acknowledged-or-being-acknowledged
// changes — replaying it from the empty graph with the engine's seed
// reproduces the engine bit for bit (history independence plus the
// deterministic priority stream).
type wal struct {
	cf       *countingFile
	w        *trace.Writer
	policy   FsyncPolicy
	interval time.Duration
	fsyncs   atomic.Uint64
	stop     chan struct{}
	stopped  chan struct{}
}

// recoverWAL reads the WAL at path, tolerating (and physically truncating)
// a torn final line left by a crash mid-append, and returns the decoded
// changes plus whether a torn tail was repaired. A missing file returns no
// changes.
func recoverWAL(path string) (cs []dynmis.Change, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("server: read wal: %w", err)
	}
	r := trace.NewReader(bytes.NewReader(data), trace.TolerateTornTail())
	for {
		c, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, fmt.Errorf("server: wal %s is corrupt: %w", path, err)
		}
		cs = append(cs, c)
	}
	if r.TornTail() {
		// Drop the torn bytes so appends continue on a clean line. The torn
		// record was never acknowledged under FsyncAlways; under the weaker
		// policies losing it is the documented trade.
		clean := 0
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			clean = i + 1
		}
		if err := os.Truncate(path, int64(clean)); err != nil {
			return nil, true, fmt.Errorf("server: truncate torn wal tail: %w", err)
		}
	}
	return cs, r.TornTail(), nil
}

// openWAL opens (creating if needed) the WAL for appending. On a fresh
// file the schema header is written and synced immediately, so even an
// empty WAL is a valid trace.
func openWAL(path string, policy FsyncPolicy, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: stat wal: %w", err)
	}
	cf := &countingFile{f: f}
	cf.n.Store(st.Size())
	w := &wal{cf: cf, policy: policy, interval: interval}
	if st.Size() == 0 {
		// Fresh file: materialize the header durably before any ack can
		// depend on it.
		tw := trace.NewWriter(cf)
		if err := tw.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: init wal: %w", err)
		}
		w.w = tw
		w.fsyncs.Add(1)
	} else {
		// Existing (recovered) file: the header is already on disk; a
		// fresh Writer must not emit a second one, so write through a
		// headerless continuation.
		w.w = trace.NewContinuation(cf)
	}
	if policy == FsyncInterval {
		if interval <= 0 {
			w.interval = 50 * time.Millisecond
		}
		w.stop = make(chan struct{})
		w.stopped = make(chan struct{})
		go w.fsyncLoop()
	}
	return w, nil
}

// fsyncLoop is the FsyncInterval background syncer.
func (w *wal) fsyncLoop() {
	defer close(w.stopped)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A concurrent append holds the server's ingest lock, not
			// ours; trace.Writer is not concurrency-safe, so interval
			// syncs go straight to the file (appends flush eagerly).
			if w.cf.Sync() == nil {
				w.fsyncs.Add(1)
			}
		case <-w.stop:
			return
		}
	}
}

// write appends one change without establishing durability; commit does
// that once per ingest batch. The caller holds the server's ingest lock.
func (w *wal) write(c dynmis.Change) error {
	if err := w.w.Write(c); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	return nil
}

// commit establishes the policy's durability point for everything written
// so far: fsync under FsyncAlways, flush-to-OS otherwise. The caller holds
// the server's ingest lock.
func (w *wal) commit() error {
	if w.policy == FsyncAlways {
		return w.sync()
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("server: wal flush: %w", err)
	}
	return nil
}

// sync flushes and fsyncs regardless of policy (snapshots and shutdown
// need a hard durability point).
func (w *wal) sync() error {
	if err := w.w.Sync(); err != nil {
		return fmt.Errorf("server: wal fsync: %w", err)
	}
	w.fsyncs.Add(1)
	return nil
}

// bytes reports the WAL size in bytes (preexisting plus appended).
func (w *wal) bytes() int64 { return w.cf.n.Load() }

// close flushes, fsyncs and closes the log.
func (w *wal) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.stopped
	}
	err := w.sync()
	if cerr := w.cf.f.Close(); err == nil {
		err = cerr
	}
	return err
}
